file(REMOVE_RECURSE
  "libfs_pm.a"
)
