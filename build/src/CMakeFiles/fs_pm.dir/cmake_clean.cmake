file(REMOVE_RECURSE
  "CMakeFiles/fs_pm.dir/pm/pm_device.cc.o"
  "CMakeFiles/fs_pm.dir/pm/pm_device.cc.o.d"
  "CMakeFiles/fs_pm.dir/pm/pm_pool.cc.o"
  "CMakeFiles/fs_pm.dir/pm/pm_pool.cc.o.d"
  "libfs_pm.a"
  "libfs_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
