# Empty dependencies file for fs_pm.
# This may be replaced when dependencies are built.
