# Empty dependencies file for fs_alloc.
# This may be replaced when dependencies are built.
