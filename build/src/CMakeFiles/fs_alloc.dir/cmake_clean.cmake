file(REMOVE_RECURSE
  "CMakeFiles/fs_alloc.dir/alloc/lazy_allocator.cc.o"
  "CMakeFiles/fs_alloc.dir/alloc/lazy_allocator.cc.o.d"
  "libfs_alloc.a"
  "libfs_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
