file(REMOVE_RECURSE
  "CMakeFiles/fs_batch.dir/batch/hb_engine.cc.o"
  "CMakeFiles/fs_batch.dir/batch/hb_engine.cc.o.d"
  "libfs_batch.a"
  "libfs_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
