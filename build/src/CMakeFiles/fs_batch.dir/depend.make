# Empty dependencies file for fs_batch.
# This may be replaced when dependencies are built.
