file(REMOVE_RECURSE
  "libfs_batch.a"
)
