file(REMOVE_RECURSE
  "CMakeFiles/fs_log.dir/log/layout.cc.o"
  "CMakeFiles/fs_log.dir/log/layout.cc.o.d"
  "CMakeFiles/fs_log.dir/log/log_cleaner.cc.o"
  "CMakeFiles/fs_log.dir/log/log_cleaner.cc.o.d"
  "CMakeFiles/fs_log.dir/log/oplog.cc.o"
  "CMakeFiles/fs_log.dir/log/oplog.cc.o.d"
  "libfs_log.a"
  "libfs_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
