# Empty compiler generated dependencies file for fs_log.
# This may be replaced when dependencies are built.
