file(REMOVE_RECURSE
  "libfs_log.a"
)
