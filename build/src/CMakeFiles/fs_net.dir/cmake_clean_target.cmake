file(REMOVE_RECURSE
  "libfs_net.a"
)
