file(REMOVE_RECURSE
  "CMakeFiles/fs_net.dir/net/flatrpc.cc.o"
  "CMakeFiles/fs_net.dir/net/flatrpc.cc.o.d"
  "libfs_net.a"
  "libfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
