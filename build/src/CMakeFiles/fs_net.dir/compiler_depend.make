# Empty compiler generated dependencies file for fs_net.
# This may be replaced when dependencies are built.
