file(REMOVE_RECURSE
  "libfs_workload.a"
)
