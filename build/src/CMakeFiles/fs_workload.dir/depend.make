# Empty dependencies file for fs_workload.
# This may be replaced when dependencies are built.
