file(REMOVE_RECURSE
  "CMakeFiles/fs_workload.dir/workload/workload.cc.o"
  "CMakeFiles/fs_workload.dir/workload/workload.cc.o.d"
  "libfs_workload.a"
  "libfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
