# Empty compiler generated dependencies file for fs_server.
# This may be replaced when dependencies are built.
