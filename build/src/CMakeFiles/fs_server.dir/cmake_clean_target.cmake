file(REMOVE_RECURSE
  "libfs_server.a"
)
