file(REMOVE_RECURSE
  "CMakeFiles/fs_server.dir/core/server.cc.o"
  "CMakeFiles/fs_server.dir/core/server.cc.o.d"
  "libfs_server.a"
  "libfs_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
