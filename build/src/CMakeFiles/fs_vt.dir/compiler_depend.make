# Empty compiler generated dependencies file for fs_vt.
# This may be replaced when dependencies are built.
