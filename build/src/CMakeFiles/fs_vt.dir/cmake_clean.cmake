file(REMOVE_RECURSE
  "CMakeFiles/fs_vt.dir/vt/clock.cc.o"
  "CMakeFiles/fs_vt.dir/vt/clock.cc.o.d"
  "libfs_vt.a"
  "libfs_vt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_vt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
