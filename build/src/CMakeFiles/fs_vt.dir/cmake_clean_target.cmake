file(REMOVE_RECURSE
  "libfs_vt.a"
)
