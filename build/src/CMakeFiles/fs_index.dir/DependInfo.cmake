
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/cceh.cc" "src/CMakeFiles/fs_index.dir/index/cceh.cc.o" "gcc" "src/CMakeFiles/fs_index.dir/index/cceh.cc.o.d"
  "/root/repo/src/index/fast_fair.cc" "src/CMakeFiles/fs_index.dir/index/fast_fair.cc.o" "gcc" "src/CMakeFiles/fs_index.dir/index/fast_fair.cc.o.d"
  "/root/repo/src/index/fptree.cc" "src/CMakeFiles/fs_index.dir/index/fptree.cc.o" "gcc" "src/CMakeFiles/fs_index.dir/index/fptree.cc.o.d"
  "/root/repo/src/index/level_hashing.cc" "src/CMakeFiles/fs_index.dir/index/level_hashing.cc.o" "gcc" "src/CMakeFiles/fs_index.dir/index/level_hashing.cc.o.d"
  "/root/repo/src/index/masstree.cc" "src/CMakeFiles/fs_index.dir/index/masstree.cc.o" "gcc" "src/CMakeFiles/fs_index.dir/index/masstree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
