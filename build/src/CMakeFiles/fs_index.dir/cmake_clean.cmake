file(REMOVE_RECURSE
  "CMakeFiles/fs_index.dir/index/cceh.cc.o"
  "CMakeFiles/fs_index.dir/index/cceh.cc.o.d"
  "CMakeFiles/fs_index.dir/index/fast_fair.cc.o"
  "CMakeFiles/fs_index.dir/index/fast_fair.cc.o.d"
  "CMakeFiles/fs_index.dir/index/fptree.cc.o"
  "CMakeFiles/fs_index.dir/index/fptree.cc.o.d"
  "CMakeFiles/fs_index.dir/index/level_hashing.cc.o"
  "CMakeFiles/fs_index.dir/index/level_hashing.cc.o.d"
  "CMakeFiles/fs_index.dir/index/masstree.cc.o"
  "CMakeFiles/fs_index.dir/index/masstree.cc.o.d"
  "libfs_index.a"
  "libfs_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
