file(REMOVE_RECURSE
  "CMakeFiles/fs_core.dir/core/baseline.cc.o"
  "CMakeFiles/fs_core.dir/core/baseline.cc.o.d"
  "CMakeFiles/fs_core.dir/core/flatstore.cc.o"
  "CMakeFiles/fs_core.dir/core/flatstore.cc.o.d"
  "CMakeFiles/fs_core.dir/core/fsck.cc.o"
  "CMakeFiles/fs_core.dir/core/fsck.cc.o.d"
  "libfs_core.a"
  "libfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
