file(REMOVE_RECURSE
  "CMakeFiles/fs_common.dir/common/epoch.cc.o"
  "CMakeFiles/fs_common.dir/common/epoch.cc.o.d"
  "libfs_common.a"
  "libfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
