file(REMOVE_RECURSE
  "CMakeFiles/flatstore_cli.dir/flatstore_cli.cpp.o"
  "CMakeFiles/flatstore_cli.dir/flatstore_cli.cpp.o.d"
  "flatstore_cli"
  "flatstore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatstore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
