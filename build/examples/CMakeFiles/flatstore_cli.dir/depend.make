# Empty dependencies file for flatstore_cli.
# This may be replaced when dependencies are built.
