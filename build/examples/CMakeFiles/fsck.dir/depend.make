# Empty dependencies file for fsck.
# This may be replaced when dependencies are built.
