file(REMOVE_RECURSE
  "CMakeFiles/fsck.dir/fsck.cpp.o"
  "CMakeFiles/fsck.dir/fsck.cpp.o.d"
  "fsck"
  "fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
