file(REMOVE_RECURSE
  "CMakeFiles/etc_cache.dir/etc_cache.cpp.o"
  "CMakeFiles/etc_cache.dir/etc_cache.cpp.o.d"
  "etc_cache"
  "etc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
