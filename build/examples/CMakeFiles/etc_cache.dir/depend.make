# Empty dependencies file for etc_cache.
# This may be replaced when dependencies are built.
