# Empty dependencies file for hotpath_alloc_test.
# This may be replaced when dependencies are built.
