file(REMOVE_RECURSE
  "CMakeFiles/hotpath_alloc_test.dir/hotpath_alloc_test.cc.o"
  "CMakeFiles/hotpath_alloc_test.dir/hotpath_alloc_test.cc.o.d"
  "hotpath_alloc_test"
  "hotpath_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpath_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
