file(REMOVE_RECURSE
  "CMakeFiles/alloc_concurrency_test.dir/alloc_concurrency_test.cc.o"
  "CMakeFiles/alloc_concurrency_test.dir/alloc_concurrency_test.cc.o.d"
  "alloc_concurrency_test"
  "alloc_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
