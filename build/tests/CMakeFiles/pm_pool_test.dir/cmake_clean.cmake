file(REMOVE_RECURSE
  "CMakeFiles/pm_pool_test.dir/pm_pool_test.cc.o"
  "CMakeFiles/pm_pool_test.dir/pm_pool_test.cc.o.d"
  "pm_pool_test"
  "pm_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
