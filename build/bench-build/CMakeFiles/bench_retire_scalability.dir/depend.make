# Empty dependencies file for bench_retire_scalability.
# This may be replaced when dependencies are built.
