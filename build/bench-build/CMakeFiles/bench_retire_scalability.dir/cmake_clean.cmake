file(REMOVE_RECURSE
  "../bench/bench_retire_scalability"
  "../bench/bench_retire_scalability.pdb"
  "CMakeFiles/bench_retire_scalability.dir/bench_retire_scalability.cc.o"
  "CMakeFiles/bench_retire_scalability.dir/bench_retire_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retire_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
