# Empty dependencies file for bench_fig08_put_tree.
# This may be replaced when dependencies are built.
