file(REMOVE_RECURSE
  "../bench/bench_fig07_put_hash"
  "../bench/bench_fig07_put_hash.pdb"
  "CMakeFiles/bench_fig07_put_hash.dir/bench_fig07_put_hash.cc.o"
  "CMakeFiles/bench_fig07_put_hash.dir/bench_fig07_put_hash.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_put_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
