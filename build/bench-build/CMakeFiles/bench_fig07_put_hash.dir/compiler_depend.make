# Empty compiler generated dependencies file for bench_fig07_put_hash.
# This may be replaced when dependencies are built.
