# Empty dependencies file for bench_fig13_gc.
# This may be replaced when dependencies are built.
