file(REMOVE_RECURSE
  "../bench/bench_fig13_gc"
  "../bench/bench_fig13_gc.pdb"
  "CMakeFiles/bench_fig13_gc.dir/bench_fig13_gc.cc.o"
  "CMakeFiles/bench_fig13_gc.dir/bench_fig13_gc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
