
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_gc.cc" "bench-build/CMakeFiles/bench_fig13_gc.dir/bench_fig13_gc.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig13_gc.dir/bench_fig13_gc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
