file(REMOVE_RECURSE
  "../bench/bench_fig09_etc"
  "../bench/bench_fig09_etc.pdb"
  "CMakeFiles/bench_fig09_etc.dir/bench_fig09_etc.cc.o"
  "CMakeFiles/bench_fig09_etc.dir/bench_fig09_etc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_etc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
