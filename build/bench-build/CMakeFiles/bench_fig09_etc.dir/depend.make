# Empty dependencies file for bench_fig09_etc.
# This may be replaced when dependencies are built.
