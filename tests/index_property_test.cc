// Property-style tests of the index contract extensions the engine relies
// on: Upsert old-value reporting, EraseIfEqual, CAS-vs-writer races, scan
// consistency against a model, and ForEach completeness. Parameterized
// across all five structures (TEST_P sweeps).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "common/random.h"
#include "index/cceh.h"
#include "index/fast_fair.h"
#include "index/fptree.h"
#include "index/kv_index.h"
#include "index/level_hashing.h"
#include "index/masstree.h"

namespace flatstore {
namespace index {
namespace {

using Factory = std::unique_ptr<KvIndex> (*)();

struct Case {
  const char* name;
  Factory make;
};

std::unique_ptr<KvIndex> MakeCceh() {
  return std::make_unique<Cceh>(PmContext{}, 2);
}
std::unique_ptr<KvIndex> MakeLevel() {
  return std::make_unique<LevelHashing>(PmContext{}, 4);
}
std::unique_ptr<KvIndex> MakeFastFair() {
  return std::make_unique<FastFair>(PmContext{});
}
std::unique_ptr<KvIndex> MakeFpTree() {
  return std::make_unique<FpTree>(PmContext{});
}
std::unique_ptr<KvIndex> MakeMasstree() {
  return std::make_unique<Masstree>();
}

const Case kCases[] = {
    {"CCEH", MakeCceh},         {"LevelHashing", MakeLevel},
    {"FastFair", MakeFastFair}, {"FPTree", MakeFpTree},
    {"Masstree", MakeMasstree},
};

class IndexPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  std::unique_ptr<KvIndex> Make() { return GetParam().make(); }
};

TEST_P(IndexPropertyTest, UpsertReportsOldValue) {
  auto idx = Make();
  uint64_t old = 0;
  EXPECT_FALSE(idx->Upsert(1, 100, &old));  // fresh: no old value
  EXPECT_TRUE(idx->Upsert(1, 200, &old));
  EXPECT_EQ(old, 100u);
  EXPECT_TRUE(idx->Upsert(1, 300, &old));
  EXPECT_EQ(old, 200u);
}

TEST_P(IndexPropertyTest, EraseReportsOldValue) {
  auto idx = Make();
  idx->Insert(5, 55);
  uint64_t old = 0;
  EXPECT_TRUE(idx->Erase(5, &old));
  EXPECT_EQ(old, 55u);
  EXPECT_FALSE(idx->Erase(5, &old));
}

TEST_P(IndexPropertyTest, EraseIfEqualSemantics) {
  auto idx = Make();
  idx->Insert(9, 90);
  EXPECT_FALSE(idx->EraseIfEqual(9, 91));  // wrong expected: no-op
  uint64_t v;
  EXPECT_TRUE(idx->Get(9, &v));
  EXPECT_TRUE(idx->EraseIfEqual(9, 90));
  EXPECT_FALSE(idx->Get(9, &v));
  EXPECT_FALSE(idx->EraseIfEqual(9, 90));  // absent key
  EXPECT_EQ(idx->Size(), 0u);
}

TEST_P(IndexPropertyTest, RandomizedUpsertEraseModelCheck) {
  auto idx = Make();
  std::map<uint64_t, uint64_t> model;
  Rng rng(99);
  for (int i = 0; i < 40000; i++) {
    uint64_t key = rng.Uniform(2000);
    switch (rng.Uniform(5)) {
      case 0:
      case 1:
      case 2: {
        uint64_t val = rng.Next() >> 1;
        uint64_t old = 0;
        bool had = idx->Upsert(key, val, &old);
        auto it = model.find(key);
        ASSERT_EQ(had, it != model.end());
        if (had) {
          ASSERT_EQ(old, it->second);
        }
        model[key] = val;
        break;
      }
      case 3: {
        uint64_t old = 0;
        bool had = idx->Erase(key, &old);
        auto it = model.find(key);
        ASSERT_EQ(had, it != model.end());
        if (had) {
          ASSERT_EQ(old, it->second);
          model.erase(it);
        }
        break;
      }
      case 4: {
        // EraseIfEqual with a 50/50 right/wrong expectation.
        auto it = model.find(key);
        uint64_t expected =
            (it != model.end() && rng.Uniform(2) == 0) ? it->second
                                                       : rng.Next();
        bool erased = idx->EraseIfEqual(key, expected);
        ASSERT_EQ(erased, it != model.end() && expected == it->second);
        if (erased) model.erase(it);
        break;
      }
    }
  }
  EXPECT_EQ(idx->Size(), model.size());
}

TEST_P(IndexPropertyTest, ForEachVisitsExactlyLiveEntries) {
  auto idx = Make();
  std::map<uint64_t, uint64_t> model;
  Rng rng(7);
  for (int i = 0; i < 5000; i++) {
    uint64_t k = rng.Uniform(4000);
    idx->Insert(k, k * 2 + 1);
    model[k] = k * 2 + 1;
  }
  for (uint64_t k = 0; k < 4000; k += 3) {
    if (idx->Delete(k)) model.erase(k);
  }
  std::map<uint64_t, uint64_t> seen;
  idx->ForEach([&](uint64_t k, uint64_t v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate visit " << k;
  });
  EXPECT_EQ(seen, model);
}

TEST_P(IndexPropertyTest, CasRacesWithWriterStaySane) {
  // The cleaner CASes values while the owner upserts — no torn values,
  // final state must be one of the written values.
  auto idx = Make();
  constexpr uint64_t kKey = 77;
  idx->Insert(kKey, 1);
  std::atomic<bool> stop{false};
  std::thread cleaner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t v;
      if (idx->Get(kKey, &v)) idx->CompareExchange(kKey, v, v + 1000000);
    }
  });
  for (uint64_t i = 2; i < 3000; i++) {
    uint64_t old;
    idx->Upsert(kKey, i, &old);
  }
  stop.store(true);
  cleaner.join();
  uint64_t final = 0;
  ASSERT_TRUE(idx->Get(kKey, &final));
  // Final value is either the last write or a CAS bump of it.
  EXPECT_TRUE(final == 2999 || final == 2999 + 1000000) << final;
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexPropertyTest,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(info.param.name);
                         });

// Ordered-only: scans agree with a sorted model after heavy churn.
class OrderedPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(OrderedPropertyTest, ScanMatchesModelAfterChurn) {
  auto base = GetParam().make();
  auto* idx = dynamic_cast<OrderedKvIndex*>(base.get());
  if (idx == nullptr) GTEST_SKIP() << "hash index";
  std::map<uint64_t, uint64_t> model;
  Rng rng(11);
  for (int i = 0; i < 30000; i++) {
    uint64_t k = rng.Uniform(10000);
    if (rng.Uniform(4) == 0) {
      idx->Delete(k);
      model.erase(k);
    } else {
      idx->Insert(k, i);
      model[k] = static_cast<uint64_t>(i);
    }
  }
  for (uint64_t start : {0ull, 123ull, 5000ull, 9990ull}) {
    std::vector<KvPair> got;
    idx->Scan(start, 50, &got);
    auto it = model.lower_bound(start);
    for (const KvPair& p : got) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(p.key, it->first);
      ASSERT_EQ(p.value, it->second);
      ++it;
    }
    size_t expected =
        std::min<size_t>(50, static_cast<size_t>(std::distance(
                                 model.lower_bound(start), model.end())));
    ASSERT_EQ(got.size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Ordered, OrderedPropertyTest,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace index
}  // namespace flatstore
