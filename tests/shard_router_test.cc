// ShardRouter (consistent-hash ring) tests: deterministic placement,
// reasonable balance, and — the property the ring exists for — bounded
// key movement when shards join or leave: only keys adjacent to the
// changed shard's virtual nodes move, and they move to/from that shard
// exclusively.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/shard_router.h"

namespace flatstore {
namespace net {
namespace {

constexpr uint64_t kKeys = 20000;

TEST(ShardRouter, EmptyRingRoutesNowhere) {
  ShardRouter router;
  EXPECT_EQ(router.num_shards(), 0);
  EXPECT_EQ(router.ShardForKey(42), -1);
}

TEST(ShardRouter, SingleShardTakesEverything) {
  ShardRouter router;
  router.AddShard(7);
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_EQ(router.ShardForKey(k), 7);
  }
}

TEST(ShardRouter, DeterministicAcrossInstances) {
  ShardRouter a;
  ShardRouter b;
  for (int s = 0; s < 4; s++) {
    a.AddShard(s);
    b.AddShard(s);
  }
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_EQ(a.ShardForKey(k), b.ShardForKey(k));
  }
}

TEST(ShardRouter, InsertionOrderDoesNotMatter) {
  ShardRouter a;
  ShardRouter b;
  for (int s = 0; s < 4; s++) a.AddShard(s);
  for (int s = 3; s >= 0; s--) b.AddShard(s);
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_EQ(a.ShardForKey(k), b.ShardForKey(k));
  }
}

TEST(ShardRouter, AddShardIsIdempotent) {
  ShardRouter router;
  router.AddShard(0);
  router.AddShard(1);
  router.AddShard(1);
  EXPECT_EQ(router.num_shards(), 2);
  ShardRouter once;
  once.AddShard(0);
  once.AddShard(1);
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_EQ(router.ShardForKey(k), once.ShardForKey(k));
  }
}

TEST(ShardRouter, RoughlyBalanced) {
  ShardRouter router;
  constexpr int kShards = 4;
  for (int s = 0; s < kShards; s++) router.AddShard(s);
  std::map<int, uint64_t> counts;
  for (uint64_t k = 0; k < kKeys; k++) counts[router.ShardForKey(k)]++;
  ASSERT_EQ(counts.size(), kShards);
  for (const auto& [shard, n] : counts) {
    // 64 vnodes per shard keeps the spread modest; accept 2x skew.
    EXPECT_GT(n, kKeys / (2 * kShards)) << "shard " << shard;
    EXPECT_LT(n, kKeys / 2) << "shard " << shard;
  }
}

TEST(ShardRouter, AddMovesKeysOnlyToTheNewShard) {
  ShardRouter before;
  ShardRouter after;
  for (int s = 0; s < 3; s++) {
    before.AddShard(s);
    after.AddShard(s);
  }
  after.AddShard(3);
  uint64_t moved = 0;
  for (uint64_t k = 0; k < kKeys; k++) {
    const int was = before.ShardForKey(k);
    const int now = after.ShardForKey(k);
    if (was != now) {
      ASSERT_EQ(now, 3) << "key " << k
                        << " moved between two surviving shards";
      moved++;
    }
  }
  // Expect ~1/4 of the space to transfer; assert it stays bounded
  // (whole-space reshuffles would move ~3/4).
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(ShardRouter, RemoveMovesOnlyTheDepartedShardsKeys) {
  ShardRouter before;
  for (int s = 0; s < 4; s++) before.AddShard(s);
  ShardRouter after = before;
  after.RemoveShard(2);
  EXPECT_EQ(after.num_shards(), 3);
  EXPECT_FALSE(after.HasShard(2));
  for (uint64_t k = 0; k < kKeys; k++) {
    const int was = before.ShardForKey(k);
    const int now = after.ShardForKey(k);
    if (was != 2) {
      ASSERT_EQ(now, was) << "key " << k << " moved off a surviving shard";
    } else {
      ASSERT_NE(now, 2);
    }
  }
}

TEST(ShardRouter, RemoveLastShardEmptiesRing) {
  ShardRouter router;
  router.AddShard(0);
  router.RemoveShard(0);
  EXPECT_EQ(router.num_shards(), 0);
  EXPECT_EQ(router.ShardForKey(1), -1);
}

}  // namespace
}  // namespace net
}  // namespace flatstore
