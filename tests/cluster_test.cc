// RunCluster tests. The load-bearing claim: a one-shard cluster is
// byte-for-byte RunServer — same request stream, same simulated clocks,
// same latency distribution — because the single-shard path *is* the
// shared serving loop, not a parallel implementation of it. Plus the
// sharded sanity checks: ops are conserved across shards and every key
// lands on exactly the shard the consistent-hash router names.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/flatstore.h"
#include "core/server.h"
#include "net/shard_router.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace core {
namespace {

// One self-contained engine: device + pool + store + adapter.
struct Node {
  std::unique_ptr<pm::PmDevice> device;
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<FlatStore> store;
  std::unique_ptr<FlatStoreAdapter> adapter;
};

Node MakeNode() {
  Node n;
  n.device = std::make_unique<pm::PmDevice>();
  pm::PmPool::Options po;
  po.size = 256ull << 20;
  po.device = n.device.get();
  n.pool = std::make_unique<pm::PmPool>(po);
  FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  fo.hash_initial_depth = 5;
  n.store = FlatStore::Create(n.pool.get(), fo);
  n.adapter = std::make_unique<FlatStoreAdapter>(n.store.get());
  return n;
}

ServerConfig SmallConfig() {
  ServerConfig cfg;
  cfg.num_conns = 12;
  cfg.client_window = 8;
  cfg.ops_per_conn = 500;
  cfg.workload.key_space = 1 << 12;
  cfg.workload.value_len = 64;
  cfg.workload.get_ratio = 0.3;
  cfg.seed = 7;
  return cfg;
}

TEST(Cluster, SingleShardMatchesRunServerExactly) {
  const ServerConfig cfg = SmallConfig();

  Node solo = MakeNode();
  const ServerResult server = RunServer(solo.adapter.get(), cfg);

  Node shard = MakeNode();
  ClusterConfig ccfg;
  ccfg.server = cfg;
  const ClusterResult cluster = RunCluster({shard.adapter.get()}, ccfg);

  EXPECT_EQ(cluster.ops, server.ops);
  EXPECT_EQ(cluster.sim_ns, server.sim_ns);
  EXPECT_DOUBLE_EQ(cluster.mops, server.mops);
  EXPECT_EQ(cluster.latency.Percentile(50), server.latency.Percentile(50));
  EXPECT_EQ(cluster.latency.Percentile(99), server.latency.Percentile(99));
  ASSERT_EQ(cluster.shards.size(), 1u);
  EXPECT_EQ(cluster.shards[0].ops, server.ops);
}

TEST(Cluster, TwoShardsConserveOpsAndPartitionKeys) {
  ServerConfig cfg = SmallConfig();
  cfg.workload.get_ratio = 0.0;  // Put-only so stores fill deterministically

  Node a = MakeNode();
  Node b = MakeNode();
  ClusterConfig ccfg;
  ccfg.server = cfg;
  const ClusterResult result =
      RunCluster({a.adapter.get(), b.adapter.get()}, ccfg);

  // Every issued request completed somewhere, exactly once.
  const uint64_t expected =
      static_cast<uint64_t>(cfg.num_conns) * cfg.ops_per_conn;
  EXPECT_EQ(result.ops, expected);
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_EQ(result.shards[0].ops + result.shards[1].ops, expected);
  EXPECT_GT(result.shards[0].ops, 0u);
  EXPECT_GT(result.shards[1].ops, 0u);

  // Each written key lives on the shard the router names — and only
  // there. The test ring must match RunCluster's (same vnodes + seed).
  net::ShardRouter router(ccfg.router_vnodes);
  router.AddShard(0);
  router.AddShard(1);
  uint64_t checked = 0;
  for (uint64_t key = 0; key < cfg.workload.key_space; key++) {
    std::string va;
    std::string vb;
    const bool on_a = a.store->Get(key, &va);
    const bool on_b = b.store->Get(key, &vb);
    if (!on_a && !on_b) continue;  // key never drawn by the workload
    checked++;
    EXPECT_NE(on_a, on_b) << "key " << key << " on both shards";
    EXPECT_EQ(router.ShardForKey(key), on_a ? 0 : 1) << "key " << key;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Cluster, OpenLoopAggregatesAcrossShards) {
  ServerConfig cfg = SmallConfig();
  cfg.open_loop = true;
  cfg.offered_mops = 1.0;

  Node a = MakeNode();
  Node b = MakeNode();
  ClusterConfig ccfg;
  ccfg.server = cfg;
  const ClusterResult result =
      RunCluster({a.adapter.get(), b.adapter.get()}, ccfg);

  const uint64_t expected =
      static_cast<uint64_t>(cfg.num_conns) * cfg.ops_per_conn;
  EXPECT_EQ(result.ops, expected);
  // Achieved rate can't beat offered by more than schedule jitter.
  EXPECT_LT(result.mops, cfg.offered_mops * 1.1);
  EXPECT_GT(result.mops, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
