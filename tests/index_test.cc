// Parameterized correctness tests across all five index structures, plus
// structure-specific and persistence-behaviour tests.
//
// The parameterized block runs the same behavioural contract (upsert
// semantics, lookup, delete, CAS, size accounting, random interleavings
// checked against std::map) against CCEH, Level-Hashing, FAST&FAIR,
// FPTree, and Masstree in volatile mode.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>

#include "common/random.h"
#include "index/cceh.h"
#include "index/fast_fair.h"
#include "index/fptree.h"
#include "index/kv_index.h"
#include "index/level_hashing.h"
#include "index/masstree.h"

namespace flatstore {
namespace index {
namespace {

using Factory = std::unique_ptr<KvIndex> (*)(const PmContext&);

struct IndexCase {
  const char* name;
  Factory make;
  bool ordered;
};

std::unique_ptr<KvIndex> MakeCceh(const PmContext& ctx) {
  return std::make_unique<Cceh>(ctx, /*initial_depth=*/2);
}
std::unique_ptr<KvIndex> MakeLevel(const PmContext& ctx) {
  return std::make_unique<LevelHashing>(ctx, /*initial_level_bits=*/4);
}
std::unique_ptr<KvIndex> MakeFastFair(const PmContext& ctx) {
  return std::make_unique<FastFair>(ctx);
}
std::unique_ptr<KvIndex> MakeFpTree(const PmContext& ctx) {
  return std::make_unique<FpTree>(ctx);
}
std::unique_ptr<KvIndex> MakeMasstree(const PmContext& ctx) {
  return std::make_unique<Masstree>(ctx);
}

const IndexCase kCases[] = {
    {"CCEH", MakeCceh, false},
    {"LevelHashing", MakeLevel, false},
    {"FastFair", MakeFastFair, true},
    {"FPTree", MakeFpTree, true},
    {"Masstree", MakeMasstree, true},
};

class IndexContractTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  std::unique_ptr<KvIndex> Make() { return GetParam().make(PmContext{}); }
};

TEST_P(IndexContractTest, InsertGetRoundTrip) {
  auto idx = Make();
  EXPECT_TRUE(idx->Insert(42, 1000));
  uint64_t v = 0;
  ASSERT_TRUE(idx->Get(42, &v));
  EXPECT_EQ(v, 1000u);
  EXPECT_FALSE(idx->Get(43, &v));
}

TEST_P(IndexContractTest, UpsertUpdatesInPlace) {
  auto idx = Make();
  EXPECT_TRUE(idx->Insert(7, 1));
  EXPECT_FALSE(idx->Insert(7, 2));  // update, not new
  uint64_t v = 0;
  ASSERT_TRUE(idx->Get(7, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(idx->Size(), 1u);
}

TEST_P(IndexContractTest, DeleteRemoves) {
  auto idx = Make();
  idx->Insert(5, 50);
  EXPECT_TRUE(idx->Delete(5));
  uint64_t v;
  EXPECT_FALSE(idx->Get(5, &v));
  EXPECT_FALSE(idx->Delete(5));  // second delete is a miss
  EXPECT_EQ(idx->Size(), 0u);
}

TEST_P(IndexContractTest, CompareExchangeSemantics) {
  auto idx = Make();
  idx->Insert(9, 100);
  EXPECT_FALSE(idx->CompareExchange(9, 999, 200));  // wrong expected
  uint64_t v;
  idx->Get(9, &v);
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(idx->CompareExchange(9, 100, 200));
  idx->Get(9, &v);
  EXPECT_EQ(v, 200u);
  EXPECT_FALSE(idx->CompareExchange(12345, 0, 1));  // absent key
}

TEST_P(IndexContractTest, ZeroKeyAndZeroValueAreLegal) {
  auto idx = Make();
  EXPECT_TRUE(idx->Insert(0, 0));
  uint64_t v = 99;
  ASSERT_TRUE(idx->Get(0, &v));
  EXPECT_EQ(v, 0u);
}

TEST_P(IndexContractTest, BulkSequentialKeys) {
  auto idx = Make();
  constexpr uint64_t kN = 20000;
  for (uint64_t k = 0; k < kN; k++) {
    ASSERT_TRUE(idx->Insert(k, k * 3)) << "key " << k;
  }
  EXPECT_EQ(idx->Size(), kN);
  for (uint64_t k = 0; k < kN; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(idx->Get(k, &v)) << "key " << k;
    ASSERT_EQ(v, k * 3);
  }
}

TEST_P(IndexContractTest, RandomizedAgainstStdMap) {
  auto idx = Make();
  std::map<uint64_t, uint64_t> model;
  Rng rng(2026);
  for (int op = 0; op < 60000; op++) {
    uint64_t key = rng.Uniform(3000);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // put
        uint64_t val = rng.Next() >> 1;
        bool fresh = idx->Insert(key, val);
        EXPECT_EQ(fresh, model.find(key) == model.end());
        model[key] = val;
        break;
      }
      case 2: {  // get
        uint64_t v = 0;
        bool hit = idx->Get(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(hit, it != model.end()) << "key " << key;
        if (hit) {
      ASSERT_EQ(v, it->second);
    }
        break;
      }
      case 3: {  // delete
        bool hit = idx->Delete(key);
        EXPECT_EQ(hit, model.erase(key) == 1);
        break;
      }
    }
  }
  EXPECT_EQ(idx->Size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(idx->Get(k, &got));
    ASSERT_EQ(got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexContractTest,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<IndexCase>& info) {
                           return std::string(info.param.name);
                         });

// ---- Ordered-index contract (scan) ------------------------------------

class OrderedIndexTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  std::unique_ptr<OrderedKvIndex> Make() {
    auto base = GetParam().make(PmContext{});
    auto* ordered = dynamic_cast<OrderedKvIndex*>(base.get());
    EXPECT_NE(ordered, nullptr);
    base.release();
    return std::unique_ptr<OrderedKvIndex>(ordered);
  }
};

TEST_P(OrderedIndexTest, ScanReturnsSortedRange) {
  auto idx = Make();
  // Insert shuffled keys 0,10,20,...
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 5000; k++) keys.push_back(k * 10);
  std::mt19937_64 g(7);
  std::shuffle(keys.begin(), keys.end(), g);
  for (uint64_t k : keys) idx->Insert(k, k + 1);

  std::vector<KvPair> out;
  EXPECT_EQ(idx->Scan(1000, 100, &out), 100u);
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out[0].key, 1000u);
  for (size_t i = 0; i < out.size(); i++) {
    ASSERT_EQ(out[i].key, 1000 + i * 10);
    ASSERT_EQ(out[i].value, out[i].key + 1);
  }
}

TEST_P(OrderedIndexTest, ScanFromMissingKeyStartsAtSuccessor) {
  auto idx = Make();
  for (uint64_t k = 0; k < 100; k++) idx->Insert(k * 10, k);
  std::vector<KvPair> out;
  EXPECT_EQ(idx->Scan(55, 3, &out), 3u);
  EXPECT_EQ(out[0].key, 60u);
  EXPECT_EQ(out[1].key, 70u);
  EXPECT_EQ(out[2].key, 80u);
}

TEST_P(OrderedIndexTest, ScanPastEndTruncates) {
  auto idx = Make();
  for (uint64_t k = 0; k < 10; k++) idx->Insert(k, k);
  std::vector<KvPair> out;
  EXPECT_EQ(idx->Scan(5, 100, &out), 5u);  // keys 5..9
}

TEST_P(OrderedIndexTest, ScanSkipsDeleted) {
  auto idx = Make();
  for (uint64_t k = 0; k < 20; k++) idx->Insert(k, k);
  idx->Delete(3);
  idx->Delete(4);
  std::vector<KvPair> out;
  idx->Scan(0, 20, &out);
  ASSERT_EQ(out.size(), 18u);
  for (const auto& p : out) EXPECT_TRUE(p.key != 3 && p.key != 4);
}

INSTANTIATE_TEST_SUITE_P(
    OrderedIndexes, OrderedIndexTest,
    ::testing::ValuesIn([] {
      std::vector<IndexCase> ordered;
      for (const auto& c : kCases) {
        if (c.ordered) ordered.push_back(c);
      }
      return ordered;
    }()),
    [](const ::testing::TestParamInfo<IndexCase>& info) {
      return std::string(info.param.name);
    });

// ---- structure-specific tests ------------------------------------------

TEST(CcehStructure, DirectoryDoublesUnderLoad) {
  Cceh idx({}, /*initial_depth=*/2);
  uint32_t depth0 = idx.global_depth();
  for (uint64_t k = 0; k < 50000; k++) idx.Insert(k, k);
  EXPECT_GT(idx.global_depth(), depth0);
  EXPECT_GT(idx.segment_count(), 4u);
  // Everything still reachable after many splits.
  for (uint64_t k = 0; k < 50000; k += 97) {
    uint64_t v;
    ASSERT_TRUE(idx.Get(k, &v));
    ASSERT_EQ(v, k);
  }
}

TEST(LevelHashingStructure, ResizesWhenFull) {
  LevelHashing idx({}, /*initial_level_bits=*/4);  // 16+8 buckets = 96 slots
  for (uint64_t k = 0; k < 5000; k++) idx.Insert(k, k);
  EXPECT_GT(idx.resizes(), 0u);
  EXPECT_GE(idx.top_buckets(), 1024u);
  for (uint64_t k = 0; k < 5000; k++) {
    uint64_t v;
    ASSERT_TRUE(idx.Get(k, &v));
  }
}

TEST(FastFairStructure, TreeGrowsInHeight) {
  FastFair idx({});
  EXPECT_EQ(idx.Height(), 1);
  for (uint64_t k = 0; k < 10000; k++) idx.Insert(k, k);
  EXPECT_GE(idx.Height(), 3);
}

// ---- persistent-mode flush behaviour ------------------------------------

class PersistentIndexTest : public ::testing::Test {
 protected:
  PersistentIndexTest() {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pool_ = std::make_unique<pm::PmPool>(o);
    alloc_ = std::make_unique<alloc::LazyAllocator>(
        pool_.get(), alloc::kChunkSize, o.size - alloc::kChunkSize, 1);
    ctx_ = PmContext{pool_.get(), alloc_.get(), 0};
  }

  uint64_t LinesFor(KvIndex* idx, uint64_t first_key, uint64_t n) {
    auto before = pool_->stats().Get();
    for (uint64_t k = 0; k < n; k++) idx->Insert(first_key + k, k);
    return pm::Delta(before, pool_->stats().Get()).lines_flushed;
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  PmContext ctx_;
};

TEST_F(PersistentIndexTest, VolatileModeNeverFlushes) {
  auto before = pool_->stats().Get();
  Cceh idx({}, 4);  // volatile: no pool
  for (uint64_t k = 0; k < 1000; k++) idx.Insert(k, k);
  EXPECT_EQ(pm::Delta(before, pool_->stats().Get()).lines_flushed, 0u);
}

TEST_F(PersistentIndexTest, HashInsertFlushesAtLeastOneLine) {
  Cceh idx(ctx_, 8);
  // Steady state (no splits with 256 segments / 1k keys): >= 1 line per
  // insert.
  uint64_t lines = LinesFor(&idx, 0, 1000);
  EXPECT_GE(lines, 1000u);
}

TEST_F(PersistentIndexTest, TreeInsertFlushesMoreThanHash) {
  // The motivating observation (§2.2): tree shifting amplifies flushes.
  Cceh hash(ctx_, 8);
  uint64_t hash_lines = LinesFor(&hash, 0, 5000);
  FastFair tree(ctx_);
  uint64_t tree_lines = LinesFor(&tree, 1ull << 32, 5000);
  EXPECT_GT(tree_lines, hash_lines);
}

TEST_F(PersistentIndexTest, FpTreeCommitsViaBitmapWord) {
  FpTree idx(ctx_);
  idx.Insert(1, 10);
  auto before = pool_->stats().Get();
  idx.Insert(2, 20);  // same leaf: entry line + header line (+fence)
  auto d = pm::Delta(before, pool_->stats().Get());
  EXPECT_EQ(d.lines_flushed, 2u);
  EXPECT_EQ(d.fences, 1u);
}

TEST_F(PersistentIndexTest, PersistentTreesRemainCorrect) {
  FastFair ff(ctx_);
  FpTree fp(ctx_);
  for (uint64_t k = 0; k < 20000; k++) {
    ff.Insert(k * 7 % 20011, k);
    fp.Insert(k * 7 % 20011, k);
  }
  EXPECT_EQ(ff.Size(), fp.Size());
  for (uint64_t k = 0; k < 20011; k += 13) {
    uint64_t a = 0, b = 0;
    bool ha = ff.Get(k, &a);
    bool hb = fp.Get(k, &b);
    ASSERT_EQ(ha, hb) << k;
    if (ha) {
      ASSERT_EQ(a, b);
    }
  }
}

}  // namespace
}  // namespace index
}  // namespace flatstore
