// Crash-recovery and clean-shutdown tests (paper §3.5), using the PM
// pool's shadow crash model: only explicitly persisted lines survive
// SimulateCrash(), and SetFlushBudget cuts power after an arbitrary
// number of line flushes (including mid-operation).
//
// The core durability contract verified here:
//   * every op acknowledged before the crash is present after recovery
//     (value-exact), including deletes;
//   * the boundary op is atomic: fully present or fully absent;
//   * the allocator's bitmaps are rebuilt consistently (no live block is
//     re-issued, no dead block leaks);
//   * version counters continue monotonically so post-recovery ops work.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "common/random.h"
#include "core/flatstore.h"
#include "harness/crash_explorer.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce, size_t len) {
  std::string v(len, char('A' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, std::min<size_t>(8, len));
  if (len >= 16) std::memcpy(&v[8], &nonce, 8);
  return v;
}

FlatStoreOptions SmallOptions(IndexKind kind = IndexKind::kHash) {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.index = kind;
  return fo;
}

std::unique_ptr<pm::PmPool> CrashPool(uint64_t size = 256ull << 20) {
  pm::PmPool::Options o;
  o.size = size;
  o.crash_tracking = true;
  return std::make_unique<pm::PmPool>(o);
}

TEST(Recovery, CrashAfterPutsRecoversEverything) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 3000; k++) {
    std::string v = ValueFor(k, 0, 16 + k % 400);  // inline + out-of-log mix
    store->Put(k, v);
    model[k] = v;
  }
  store.reset();
  pool->SimulateCrash();

  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(recovered->Size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got)) << k;
    ASSERT_EQ(got, v) << k;
  }
}

TEST(Recovery, NewestVersionWinsAfterOverwrites) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  for (int round = 0; round < 5; round++) {
    for (uint64_t k = 0; k < 500; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 32));
    }
  }
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(recovered->Size(), 500u);
  for (uint64_t k = 0; k < 500; k++) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got));
    ASSERT_EQ(got, ValueFor(k, 4, 32)) << "stale version for key " << k;
  }
}

TEST(Recovery, DeletesSurviveAsTombstones) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  for (uint64_t k = 0; k < 1000; k++) store->Put(k, ValueFor(k, 0, 24));
  for (uint64_t k = 0; k < 1000; k += 2) store->Delete(k);
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(recovered->Size(), 500u);
  for (uint64_t k = 0; k < 1000; k++) {
    std::string got;
    if (k % 2 == 0) {
      EXPECT_FALSE(recovered->Get(k, &got)) << k;
    } else {
      ASSERT_TRUE(recovered->Get(k, &got)) << k;
    }
  }
  // Deleted keys can be re-put after recovery.
  recovered->Put(0, "reborn");
  std::string got;
  ASSERT_TRUE(recovered->Get(0, &got));
  EXPECT_EQ(got, "reborn");
}

TEST(Recovery, AllocatorBitmapsRebuiltFromLog) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  // Large values force allocator blocks; overwrite to create dead blocks.
  for (uint64_t k = 0; k < 200; k++) store->Put(k, ValueFor(k, 0, 1000));
  for (uint64_t k = 0; k < 200; k += 2) store->Put(k, ValueFor(k, 1, 1000));
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  // Exactly 200 live 1008-byte blocks (1024-class) were re-marked.
  // Allocated bytes = blocks + log chunks; writing new values must not
  // corrupt old ones (would happen if a live block were re-issued).
  for (uint64_t k = 1000; k < 1200; k++) {
    recovered->Put(k, ValueFor(k, 7, 1000));
  }
  for (uint64_t k = 0; k < 200; k++) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got));
    ASSERT_EQ(got, ValueFor(k, k % 2 == 0 ? 1 : 0, 1000)) << k;
  }
}

TEST(Recovery, MidOperationPowerCutIsAtomic) {
  // The main crash-injection property test. Formerly 12 rounds with a
  // randomly drawn flush budget; now the CrashExplorer cuts power at
  // EVERY flush index of a fixed mixed workload (clean cuts — the
  // adversarial torn/unordered/eviction modes run in
  // crash_explorer_test), verifying the prefix contract each time.
  testing::ExplorerOptions opts;
  opts.pool_size = 128ull << 20;
  opts.store = SmallOptions();
  opts.modes = {pm::PmPool::CrashMode::kClean};
  testing::Workload w = [](testing::WorkloadCtx& ctx) {
    // Warm-up phase fully durable, outside the enumerated window.
    Rng rng(0xC8A54);
    uint64_t nonce = 0;
    for (uint64_t k = 0; k < 64; k++) {
      ctx.Put(k, ValueFor(k, nonce, 16 + k * 7 % 500));
    }
    ctx.Arm();
    // Fixed-seed mixed traffic: same op sequence in every replay, so the
    // flush at index N is always issued by the same operation.
    for (uint64_t i = 0; i < 40; i++) {
      uint64_t k = rng.Uniform(96);
      nonce++;
      if (rng.Uniform(4) == 0 && k < 64) {
        ctx.Delete(k);
      } else {
        ctx.Put(k, ValueFor(k, nonce, 8 + rng.Uniform(500)));
      }
    }
  };
  testing::CrashExplorer explorer("recovery-mixed", opts);
  testing::ExplorerResult res = explorer.Explore(w);
  EXPECT_GT(res.total_flushes, 40u);
  EXPECT_TRUE(res.ok()) << res.Summary();
}

TEST(Recovery, DoubleCrashIsIdempotent) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  for (uint64_t k = 0; k < 500; k++) store->Put(k, ValueFor(k, 0, 64));
  store.reset();
  pool->SimulateCrash();
  auto r1 = FlatStore::Open(pool.get(), SmallOptions());
  r1->Put(999999, "between crashes");
  r1.reset();
  pool->SimulateCrash();
  auto r2 = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(r2->Size(), 501u);
  std::string got;
  ASSERT_TRUE(r2->Get(999999, &got));
  EXPECT_EQ(got, "between crashes");
}

TEST(Recovery, RecoveredStoreContinuesVersioning) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  store->Put(7, "v1");
  store->Put(7, "v2");
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  // A post-recovery overwrite must supersede the recovered version even
  // through another crash.
  recovered->Put(7, "v3");
  recovered.reset();
  pool->SimulateCrash();
  auto again = FlatStore::Open(pool.get(), SmallOptions());
  std::string got;
  ASSERT_TRUE(again->Get(7, &got));
  EXPECT_EQ(got, "v3");
}

TEST(CleanShutdown, CheckpointRestoresWithoutReplayIndexing) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 2000; k++) {
    std::string v = ValueFor(k, 3, 16 + k % 300);
    store->Put(k, v);
    model[k] = v;
  }
  store->Shutdown();
  store.reset();
  pool->SimulateCrash();  // shutdown state itself must be durable

  auto reopened = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(reopened->Size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(reopened->Get(k, &got)) << k;
    ASSERT_EQ(got, v);
  }
  // The shutdown flag was consumed: a crash now requires full replay and
  // still works.
  reopened->Put(5, "after clean open");
  reopened.reset();
  pool->SimulateCrash();
  auto crashed = FlatStore::Open(pool.get(), SmallOptions());
  std::string got;
  ASSERT_TRUE(crashed->Get(5, &got));
  EXPECT_EQ(got, "after clean open");
}

TEST(CleanShutdown, MasstreeCheckpointToo) {
  auto pool = CrashPool();
  auto store =
      FlatStore::Create(pool.get(), SmallOptions(IndexKind::kMasstree));
  for (uint64_t k = 0; k < 1000; k++) store->Put(k, ValueFor(k, 0, 20));
  store->Shutdown();
  store.reset();
  pool->SimulateCrash();
  auto reopened =
      FlatStore::Open(pool.get(), SmallOptions(IndexKind::kMasstree));
  EXPECT_EQ(reopened->Size(), 1000u);
  std::vector<std::pair<uint64_t, std::string>> out;
  EXPECT_EQ(reopened->Scan(10, 5, &out), 5u);
  EXPECT_EQ(out[0].first, 10u);
}

TEST(Recovery, CrashDuringShutdownFallsBackToReplay) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  for (uint64_t k = 0; k < 800; k++) store->Put(k, ValueFor(k, 0, 32));
  // Cut power midway through the checkpoint write.
  pool->SetFlushBudget(20);
  store->Shutdown();
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(recovered->Size(), 800u);
  std::string got;
  ASSERT_TRUE(recovered->Get(0, &got));
}

TEST(Recovery, EmptyStoreRecovers) {
  auto pool = CrashPool(64ull << 20);
  auto store = FlatStore::Create(pool.get(), SmallOptions());
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), SmallOptions());
  EXPECT_EQ(recovered->Size(), 0u);
  recovered->Put(1, "first");
  std::string got;
  ASSERT_TRUE(recovered->Get(1, &got));
}

TEST(Recovery, MasstreeCrashReplay) {
  auto pool = CrashPool();
  auto store =
      FlatStore::Create(pool.get(), SmallOptions(IndexKind::kMasstree));
  for (uint64_t k = 0; k < 2000; k++) store->Put(k, ValueFor(k, 0, 48));
  for (uint64_t k = 0; k < 2000; k += 3) store->Delete(k);
  store.reset();
  pool->SimulateCrash();
  auto recovered =
      FlatStore::Open(pool.get(), SmallOptions(IndexKind::kMasstree));
  for (uint64_t k = 0; k < 2000; k++) {
    std::string got;
    EXPECT_EQ(recovered->Get(k, &got), k % 3 != 0) << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
