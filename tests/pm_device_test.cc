// Property tests of the PM device timing model. These pin down the
// qualitative behaviours from paper §2.3 / Fig. 1 that the engines rely on:
//   (1) coalescing within a 256 B block (log-entry batching is cheap);
//   (2) sequential streams beat random blocks at low concurrency;
//   (3) per-DIMM serialization => bandwidth does not scale with threads;
//   (4) re-flushing a just-flushed line stalls ~800 ns;
//   (5) padding batches to cachelines avoids that stall.

#include <gtest/gtest.h>

#include <vector>

#include "common/cacheline.h"
#include "common/hash.h"
#include "pm/pm_device.h"

namespace flatstore {
namespace pm {
namespace {

// Runs `n` flushes produced by `next_off`, spaced by per-op issue gap, and
// returns the total simulated duration.
template <typename OffsetFn>
uint64_t RunStream(PmDevice& dev, int n, OffsetFn next_off) {
  uint64_t clock = 0;
  for (int i = 0; i < n; i++) {
    uint64_t done = dev.FlushLine(next_off(i), clock);
    clock = done + vt::kPmFlushLatency;  // synchronous flush+fence
  }
  return clock;
}

TEST(PmDevice, CoalescingWithinBlock) {
  PmDevice dev;
  // 4 lines of one 256 B block vs 4 lines of 4 distinct random blocks.
  uint64_t same_block =
      RunStream(dev, 4, [](int i) { return 64ull * i; });  // block 0
  dev.Reset();
  uint64_t random_blocks = RunStream(
      dev, 4, [](int i) { return (1 + 7ull * i) * kPmBlockSize * 513; });
  EXPECT_LT(same_block, random_blocks);
}

TEST(PmDevice, SequentialBeatsRandomSingleThread) {
  PmDevice dev;
  constexpr int kOps = 2000;
  uint64_t seq = RunStream(dev, kOps, [](int i) { return 64ull * i; });
  dev.Reset();
  // Random: jump around a large region, distinct blocks.
  uint64_t rnd = RunStream(dev, kOps, [](int i) {
    return ((i * 2654435761ull) % (1ull << 30)) & ~63ull;
  });
  EXPECT_LT(seq, rnd);
  EXPECT_GT(static_cast<double>(rnd) / seq, 1.3);  // clear gap
}

TEST(PmDevice, BandwidthSaturatesWithThreads) {
  // Simulate t concurrent flushers in lockstep (round-robin issue at the
  // same timestamps) and measure aggregate throughput: going from 1 to 8
  // flushers must help; going from 16 to 64 must not help much.
  auto aggregate_mops = [](int threads) {
    PmDevice dev;
    std::vector<uint64_t> clocks(threads, 0);
    constexpr int kOpsPerThread = 800;
    for (int i = 0; i < kOpsPerThread; i++) {
      for (int t = 0; t < threads; t++) {
        // Hashed, distinct 256 B blocks so neither coalescing nor the
        // in-place penalty interferes with the pure bandwidth question.
        uint64_t off = HashKey(static_cast<uint64_t>(t) * 1000003 + i) %
                       (1ull << 28) & ~255ull;
        uint64_t done = dev.FlushLine(off, clocks[t]);
        clocks[t] = done + vt::kPmFlushLatency;
      }
    }
    uint64_t span = 0;
    for (auto c : clocks) span = std::max(span, c);
    return static_cast<double>(kOpsPerThread) * threads / span * 1000.0;
  };

  double t1 = aggregate_mops(1);
  double t8 = aggregate_mops(8);
  double t16 = aggregate_mops(16);
  double t64 = aggregate_mops(64);
  EXPECT_GT(t8, t1 * 2.0);     // concurrency helps at first
  EXPECT_LT(t64, t16 * 1.35);  // ...then the DIMMs are the bottleneck
}

TEST(PmDevice, InPlaceReflushStalls) {
  PmDevice dev;
  uint64_t off = 0;
  uint64_t first = dev.FlushLine(off, 0);
  // Immediately re-flush the same line: delayed by the in-place penalty.
  uint64_t second = dev.FlushLine(off, first + 10);
  EXPECT_GE(second - first, vt::kPmInPlaceDelay);
  // A *different* line in another block suffers no such stall.
  dev.Reset();
  first = dev.FlushLine(0, 0);
  uint64_t other = dev.FlushLine(kPmBlockSize * 1024, first + 10);
  EXPECT_LT(other - first, vt::kPmInPlaceDelay);
}

TEST(PmDevice, ReflushAfterWindowIsCheap) {
  PmDevice dev;
  uint64_t first = dev.FlushLine(0, 0);
  uint64_t late_issue = first + vt::kPmInPlaceWindow + 1;
  uint64_t second = dev.FlushLine(0, late_issue);
  EXPECT_LT(second - late_issue, vt::kPmInPlaceDelay);
}

TEST(PmDevice, PaddingAvoidsSharedLineStall) {
  // Two back-to-back "batches". Unpadded: batch 2 starts in the same
  // cacheline batch 1 ended in -> re-flush stall. Padded: batch 2 starts
  // on a fresh line -> no stall. This is exactly paper §3.2 "Padding".
  auto run = [](bool padded) {
    PmDevice dev;
    uint64_t clock = 0;
    uint64_t tail = 0;
    for (int batch = 0; batch < 50; batch++) {
      uint64_t bytes = 48;  // 3 entries of 16 B: not line-aligned
      uint64_t start = tail;
      uint64_t end = tail + bytes;
      for (uint64_t line = CachelineAlignDown(start);
           line < CachelineAlignUp(end); line += kCachelineSize) {
        uint64_t done = dev.FlushLine(line, clock);
        clock = done + vt::kPmFlushLatency;
      }
      tail = padded ? CachelineAlignUp(end) : end;
    }
    return clock;
  };
  uint64_t unpadded = run(false);
  uint64_t padded = run(true);
  EXPECT_LT(padded, unpadded / 2);  // stalls dominate the unpadded run
}

TEST(PmDevice, ResetClearsHistory) {
  PmDevice dev;
  dev.FlushLine(0, 0);
  dev.Reset();
  // After reset there is no "recent flush" of line 0: no stall.
  uint64_t done = dev.FlushLine(0, 10);
  EXPECT_LT(done - 10, vt::kPmInPlaceDelay);
}

TEST(PmDevice, ReadLatencyConstant) {
  PmDevice dev;
  EXPECT_EQ(dev.ReadLine(0, 100), 100 + vt::kPmReadLatency);
}

}  // namespace
}  // namespace pm
}  // namespace flatstore
