// Fixture: the negative case — exercises every rule's *compliant* form;
// fs_lint must report zero violations here. Not compiled — parsed by
// fs_lint_test only.

#include <atomic>
#include <cstring>
#include <vector>

#define FS_HOT

struct Pool {
  void* At(unsigned long off);
  void Persist(const void* p, unsigned long len);
  void Fence();
  void PersistFence(const void* p, unsigned long len);
};

std::atomic<unsigned long> stat{0};

void CommitFenced(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
  pool->Fence();
}

void CommitCombined(Pool* pool, void* rec, unsigned long len) {
  pool->PersistFence(rec, len);
}

// fs-lint: deferred-fence(the caller batches several records under one fence)
void CommitDeferred(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
}

void WritePersisted(Pool* pool, unsigned long off, const char* src) {
  char* dst = static_cast<char*>(pool->At(off));
  std::memcpy(dst, src, 64);
  pool->PersistFence(dst, 64);
}

void WriteWaived(Pool* pool, unsigned long off) {
  char* dst = static_cast<char*>(pool->At(off));
  // fs-lint: pm-write(scratch region; recovery never reads it)
  std::memset(dst, 0, 64);
}

void BumpTagged() {
  // relaxed: monotonic stat counter, no ordering required.
  stat.fetch_add(1, std::memory_order_relaxed);
}

FS_HOT unsigned long ServeClean() {
  // relaxed: stat read, no ordering required.
  return stat.load(std::memory_order_relaxed);
}

void ColdSetup(std::vector<int>* v) { v->reserve(128); }
