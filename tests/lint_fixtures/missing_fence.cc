// Fixture: Persist() reaching a return with no Fence()/PersistFence()
// must be flagged by fence-after-persist. Not compiled — parsed by
// fs_lint_test only.

struct Pool {
  void Persist(const void* p, unsigned long len);
  void Fence();
};

bool CommitRecord(Pool* pool, void* rec, unsigned long len, bool fast) {
  pool->Persist(rec, len);
  if (fast) return true;  // VIOLATION: unfenced path out
  pool->Fence();
  return true;
}

void CommitNoFenceAtAll(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
}  // VIOLATION: falls off the end unfenced

void CommitProperly(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
  pool->Fence();
}  // ok: fenced before the end
