// fs_lint fixture: the remote-write rule. Writes through PM pointers
// that *name* another socket's memory (remote_* / peer_*) must carry a
// fs-lint: remote-write(<reason>) waiver; socket-local writes and the
// waived replication path are clean. This file is parsed by
// fs_lint_test, never compiled.

struct Pool {
  void* At(unsigned long off);
  void PersistFence(const void* p, unsigned long n);
};

// Violation: raw field store through another socket's chunk.
void MigrateEntry(Pool* pool, unsigned long off, char b) {
  char* remote_chunk = static_cast<char*>(pool->At(off));
  remote_chunk[0] = b;
  pool->PersistFence(remote_chunk, 1);
}

// Violation: memcpy into a peer socket's log tail.
void CopyToPeer(Pool* pool, const char* src, unsigned long n) {
  char* peer_tail = static_cast<char*>(pool->At(64));
  memcpy(peer_tail, src, n);
  pool->PersistFence(peer_tail, n);
}

// Clean: the sanctioned replication fan-out, waived with a reason.
void ReplicateRecord(Pool* pool, const char* src, unsigned long n) {
  char* remote_slot = static_cast<char*>(pool->At(128));
  // fs-lint: remote-write(replication fan-out persists on the follower's
  // socket by design; the surcharge is the price of redundancy)
  memcpy(remote_slot, src, n);
  pool->PersistFence(remote_slot, n);
}

// Clean: a socket-local append — no remote marker near the pointer.
void AppendLocal(Pool* pool, char b) {
  char* head = static_cast<char*>(pool->At(0));
  head[0] = b;
  pool->PersistFence(head, 1);
}
