// Fixture: lock-order cycles. Two functions that take the same pair of
// locks in opposite orders form a potential deadlock; both witness
// acquisitions are reported. A lock-order waiver drops the edge.
// Not compiled — parsed by fs_lint_test only.

struct SpinLock {
  void lock();
  void unlock();
};

template <typename T>
struct LockGuard {
  explicit LockGuard(T& l);
};

struct TwoLocks {
  SpinLock alpha_lock;
  SpinLock beta_lock;

  void AlphaThenBeta() {
    LockGuard<SpinLock> ga(alpha_lock);
    LockGuard<SpinLock> gb(beta_lock);  // VIOLATION: half of the cycle
  }

  void BetaThenAlpha() {
    LockGuard<SpinLock> gb(beta_lock);
    LockGuard<SpinLock> ga(alpha_lock);  // VIOLATION: closes the cycle
  }
};

struct OrderedLocks {
  SpinLock outer_lock;
  SpinLock inner_lock;

  // Consistent order everywhere: no cycle.
  void OuterThenInnerA() {
    LockGuard<SpinLock> go(outer_lock);
    LockGuard<SpinLock> gi(inner_lock);  // ok
  }

  void OuterThenInnerB() {
    LockGuard<SpinLock> go(outer_lock);
    LockGuard<SpinLock> gi(inner_lock);  // ok: same order, deduped edge
  }

  // A REQUIRES annotation seeds the held-set without a guard in the body.
  void WithOuterHeld() REQUIRES(outer_lock) {
    LockGuard<SpinLock> gi(inner_lock);  // ok: still outer -> inner
  }
};

struct InitLocks {
  SpinLock cfg_lock;
  SpinLock table_lock;

  void CfgThenTable() {
    LockGuard<SpinLock> gc(cfg_lock);
    LockGuard<SpinLock> gt(table_lock);  // ok
  }

  // The reverse order runs only before threads exist: waive the edge.
  void TableThenCfg() {
    LockGuard<SpinLock> gt(table_lock);
    // fs-lint: lock-order(startup path runs before any thread is spawned)
    LockGuard<SpinLock> gc(cfg_lock);  // ok: waived
  }
};
