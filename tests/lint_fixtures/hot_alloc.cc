// Fixture: heap allocation and blocking locks inside an FS_HOT function
// must be flagged by hot-path. Not compiled — parsed by fs_lint_test
// only (FS_HOT and the lock types are recognized lexically).

#include <mutex>
#include <vector>

#define FS_HOT

std::mutex mu;
std::vector<int> backlog;

FS_HOT void ServeBadly(int v) {
  std::lock_guard<std::mutex> g(mu);  // VIOLATION: blocking lock in FS_HOT
  backlog.push_back(v);               // VIOLATION: allocation in FS_HOT
}

FS_HOT bool ServeWell(int* out) {
  if (!mu.try_lock()) return false;  // ok: try_lock never blocks
  *out = backlog.empty() ? 0 : backlog.back();
  mu.unlock();
  return true;
}

void SetupPath(int n) {
  backlog.reserve(static_cast<unsigned long>(n));  // ok: not FS_HOT
}
