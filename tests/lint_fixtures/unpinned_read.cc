// Fixture: epoch-pin discipline. Decoding a log entry requires an
// epoch pin (Guard/GuestGuard in scope, or a manual Pin) on every path,
// and the obligation follows log-reading helpers to their callers.
// Not compiled — parsed by fs_lint_test only.

struct EpochManager {
  void Pin(int slot);
  void Unpin(int slot);
};

struct Guard {
  Guard(EpochManager* m, int slot);
};

struct GuestGuard {
  GuestGuard(EpochManager* m);
};

bool DecodeEntry(const unsigned char* p, unsigned long cap, void* out);

// No pin at all: a cleaner can retire the chunk mid-decode.
void ScanUnpinned(const unsigned char* base, void* out) {
  DecodeEntry(base, 64, out);  // VIOLATION: no epoch pin in scope
}

// Pinned on one path only: the pin dies with the if-block's scope.
void ScanHalfPinned(EpochManager* mgr, const unsigned char* base, void* out,
                    bool pin) {
  if (pin) {
    GuestGuard g(mgr);
    DecodeEntry(base, 64, out);  // ok: pinned here
  }
  DecodeEntry(base, 64, out);  // VIOLATION: pin not held on every path
}

// Scoped pin covering the read.
void ScanPinned(EpochManager* mgr, const unsigned char* base, void* out) {
  GuestGuard g(mgr);
  DecodeEntry(base, 64, out);  // ok
}

// Manual pin/unpin pair.
void ScanManual(EpochManager* mgr, const unsigned char* base, void* out) {
  mgr->Pin(0);
  DecodeEntry(base, 64, out);  // ok
  mgr->Unpin(0);
}

// Contract: callers hold the pin. The marker waives the body and turns
// the obligation into a summary bit that callers must discharge.
// fs-lint: epoch-held(all callers run inside the drain guard)
void ScanByContract(const unsigned char* base, void* out) {
  DecodeEntry(base, 64, out);  // ok: annotated
}

// Calling a log-reading helper without a pin is flagged at the call.
void CallsHelperUnpinned(const unsigned char* base, void* out) {
  ScanByContract(base, out);  // VIOLATION: helper reads the log unpinned
}

// The same call under a pin is fine.
void CallsHelperPinned(EpochManager* mgr, const unsigned char* base,
                       void* out) {
  GuestGuard g(mgr);
  ScanByContract(base, out);  // ok
}
