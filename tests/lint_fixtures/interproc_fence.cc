// Fixture: interprocedural fence tracking through the summary DB. A
// helper that always fences clears its caller's obligation (even two
// levels deep); a deferred-fence helper hands the obligation to its
// caller, who must discharge it before returning.
// Not compiled — parsed by fs_lint_test only.

struct Pool {
  void Persist(const void* p, unsigned long len);
  void Fence();
};

// Helper that persists and fences: callers owe nothing.
void FlushRecord(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
  pool->Fence();
}

// The caller's own persist is drained by the helper's fence.
void CommitViaHelper(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
  FlushRecord(pool, rec, len);  // ok: callee always fences
}

// Fencing is transitive through a second wrapper level.
void FlushTwice(Pool* pool, void* rec, unsigned long len) {
  FlushRecord(pool, rec, len);
}

void CommitViaTwoLevels(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
  FlushTwice(pool, rec, len);  // ok: fences transitively
}

// Helper that persists but defers the fence to its caller by contract.
// fs-lint: deferred-fence(the batch loop fences once for the group)
void StageRecord(Pool* pool, void* rec, unsigned long len) {
  pool->Persist(rec, len);
}

// A caller that forgets the helper's deferred obligation.
void CommitForgetsHelperFence(Pool* pool, void* rec, unsigned long len) {
  StageRecord(pool, rec, len);
}  // VIOLATION: the staged persist is never fenced

// A caller that discharges it.
void CommitDischargesHelperFence(Pool* pool, void* rec, unsigned long len) {
  StageRecord(pool, rec, len);
  pool->Fence();
}  // ok
