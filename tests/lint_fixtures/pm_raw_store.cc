// Fixture: raw writes through PM-derived pointers that never reach a
// Persist must be flagged by pm-store. Not compiled — parsed by
// fs_lint_test only.

#include <cstring>

struct Header {
  unsigned long used;
};

struct Pool {
  void* At(unsigned long off);
  void Persist(const void* p, unsigned long len);
  void Fence();
};

void ScribbleUnpersisted(Pool* pool, unsigned long off, const char* src) {
  char* dst = static_cast<char*>(pool->At(off));
  std::memcpy(dst, src, 64);  // VIOLATION: PM write, no Persist follows
}

void StoreFieldUnpersisted(Pool* pool, unsigned long off) {
  Header* h = static_cast<Header*>(pool->At(off));
  h->used = 42;  // VIOLATION: PM field store, no Persist follows
}

void ScribblePersisted(Pool* pool, unsigned long off, const char* src) {
  char* dst = static_cast<char*>(pool->At(off));
  std::memcpy(dst, src, 64);
  pool->Persist(dst, 64);  // ok: the write reaches a Persist
  pool->Fence();
}

void ScribbleWaived(Pool* pool, unsigned long off, const char* src) {
  char* dst = static_cast<char*>(pool->At(off));
  // fs-lint: pm-write(recovery scan rebuilds this field; durability not required)
  std::memcpy(dst, src, 64);  // ok: waived with a reason
}
