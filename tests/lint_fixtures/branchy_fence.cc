// Fixture: path-sensitive fence checking on the CFG. A fence on one
// branch must not excuse the other; a crash path owes no fence; a
// flag-correlated fence is waived at the site with fence-guarded.
// Not compiled — parsed by fs_lint_test only.

struct Pool {
  void Persist(const void* p, unsigned long len);
  void PersistFence(const void* p, unsigned long len);
  void Fence();
};

// Only the `flush` arm fences: the fall-through path is dirty.
void BranchFence(Pool* pool, void* rec, unsigned long len, bool flush) {
  pool->Persist(rec, len);
  if (flush) {
    pool->Fence();
  }
}  // VIOLATION: the !flush path leaves the persist unfenced

// Both arms fence: clean although no single fence dominates the exit.
void BothArmsFence(Pool* pool, void* rec, unsigned long len, bool fast) {
  pool->Persist(rec, len);
  if (fast) {
    pool->Fence();
  } else {
    pool->PersistFence(rec, len);
  }
}  // ok

// An early return before the persist owes nothing.
bool PersistAfterGate(Pool* pool, void* rec, unsigned long len) {
  if (rec == nullptr) return false;  // ok: no persist pending yet
  pool->Persist(rec, len);
  pool->Fence();
  return true;
}

// A crash path is not a way out of the function.
void PersistOrDie(Pool* pool, void* rec, unsigned long len, bool ok) {
  pool->Persist(rec, len);
  if (!ok) {
    FLATSTORE_CHECK(false) << "lost the record";  // ok: noreturn
  }
  pool->Fence();
}

// Flag-correlated fence the dataflow cannot see: waive at the persist
// site. Unlike deferred-fence this exports no obligation to callers.
void GuardedFence(Pool* pool, void* rec, unsigned long len, bool dirty) {
  if (dirty) {
    // fs-lint: fence-guarded(fenced below under the same dirty flag)
    pool->Persist(rec, len);
  }
  if (dirty) {
    pool->Fence();
  }
}  // ok: waived
