// Fixture: memory_order_relaxed without a `// relaxed: <reason>` tag
// must be flagged by relaxed-needs-reason. Not compiled — parsed by
// fs_lint_test only.

#include <atomic>

std::atomic<unsigned long> counter{0};

void BumpUntagged() {
  counter.fetch_add(1, std::memory_order_relaxed);  // VIOLATION: no tag
}

void BumpTagged() {
  // relaxed: monotonic stat counter, no ordering required.
  counter.fetch_add(1, std::memory_order_relaxed);  // ok: tagged above
}

unsigned long ReadTaggedInline() {
  return counter.load(std::memory_order_relaxed);  // relaxed: stat read, ok
}
