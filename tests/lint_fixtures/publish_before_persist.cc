// Fixture: persist-before-publish ordering. A store to a recovery-root
// location (superblock field, release-store of a tail/commit word) must
// not become visible while earlier PM writes are still unfenced.
// Not compiled — parsed by fs_lint_test only.

struct Superblock {
  unsigned long head_off;
  unsigned long commit_seq;
};

struct AtomicU64 {
  void store(unsigned long v, int order);
};

struct Tail {
  AtomicU64 commit_tail;
};

struct Pool {
  void* At(unsigned long off);
  Superblock* superblock();
  void Persist(const void* p, unsigned long len);
  void PersistFence(const void* p, unsigned long len);
  void Fence();
};

// The superblock pointer flips before the payload's fence: recovery can
// chase head_off into unpersisted bytes.
void PublishUnfenced(Pool* pool, unsigned long off, const char* src,
                     unsigned long len) {
  char* dst = static_cast<char*>(pool->At(off));
  for (unsigned long i = 0; i < len; i++) dst[i] = src[i];
  pool->Persist(dst, len);
  Superblock* sb = pool->superblock();
  sb->head_off = off;  // VIOLATION: the payload persist is not fenced yet
  pool->PersistFence(&sb->head_off, 8);
}

// Release-store publication of a commit word has the same obligation.
void ReleasePublishUnfenced(Pool* pool, unsigned long off, Tail* t,
                            unsigned long len) {
  char* dst = static_cast<char*>(pool->At(off));
  dst[0] = 1;
  pool->Persist(dst, len);
  t->commit_tail.store(off, std::memory_order_release);  // VIOLATION
  pool->Fence();
}

// The canonical order: persist, fence, then publish.
void PublishFenced(Pool* pool, unsigned long off, const char* src,
                   unsigned long len) {
  char* dst = static_cast<char*>(pool->At(off));
  for (unsigned long i = 0; i < len; i++) dst[i] = src[i];
  pool->PersistFence(dst, len);
  Superblock* sb = pool->superblock();
  sb->head_off = off;  // ok: payload fenced before the publication
  pool->PersistFence(&sb->head_off, 8);
}

// A run of superblock fields must not flag one another: a publish store
// is the publication itself, not pending payload.
void PublishPair(Pool* pool, unsigned long a, unsigned long b) {
  Superblock* sb = pool->superblock();
  sb->head_off = a;    // ok
  sb->commit_seq = b;  // ok
  pool->PersistFence(sb, 16);
}

// Waived: publication gated by a later validity bit.
void PublishGated(Pool* pool, unsigned long off, const char* src,
                  unsigned long len) {
  char* dst = static_cast<char*>(pool->At(off));
  for (unsigned long i = 0; i < len; i++) dst[i] = src[i];
  pool->Persist(dst, len);
  Superblock* sb = pool->superblock();
  // fs-lint: publish-ok(head_off is dead until commit_seq is fenced later)
  sb->head_off = off;
  pool->PersistFence(sb, 16);
}
