// Tests of the offline pool checker: clean pools pass, crash images pass,
// GC-churned pools pass, and injected corruptions are detected.

#include <gtest/gtest.h>

#include "core/flatstore.h"
#include "core/fsck.h"

namespace flatstore {
namespace core {
namespace {

FlatStoreOptions Opts() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.9;
  return fo;
}

std::unique_ptr<pm::PmPool> MakePool() {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  o.crash_tracking = true;
  return std::make_unique<pm::PmPool>(o);
}

std::string V(uint64_t k, size_t len = 64) {
  std::string v(len, char('a' + k % 26));
  return v;
}

TEST(Fsck, FreshPoolIsClean) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 2000; k++) store->Put(k, V(k, 40 + k % 400));
  for (uint64_t k = 0; k < 100; k++) store->Delete(k * 7);
  FsckReport r = FsckPool(*pool);
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_GT(r.log_entries, 2000u);
  EXPECT_GT(r.tombstones, 50u);
  EXPECT_GT(r.value_blocks, 100u);  // values > 256 B
  EXPECT_EQ(r.live_keys, store->Size());
}

TEST(Fsck, CrashImageIsClean) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 1000; k++) store->Put(k, V(k));
  pool->SetFlushBudget(100);
  for (uint64_t k = 1000; k < 1200 && !pool->PowerLost(); k++) {
    store->Put(k, V(k));
  }
  store.reset();
  pool->SimulateCrash();
  FsckReport r = FsckPool(*pool);
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST(Fsck, AfterGcAndCheckpoint) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (int round = 0; round < 60; round++) {
    for (uint64_t k = 0; k < 2000; k++) store->Put(k, V(k + round, 120));
    store->RunCleanersOnce();
  }
  store->CheckpointNow();
  FsckReport r = FsckPool(*pool);
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_EQ(r.checkpoint_items, 2000u);
}

TEST(Fsck, DetectsSmashedSuperblock) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "x");
  pool->base()[0] ^= 0xFF;  // corrupt the magic
  FsckReport r = FsckPool(*pool);
  EXPECT_FALSE(r.ok);
}

TEST(Fsck, DetectsCorruptRegistry) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 100; k++) store->Put(k, V(k));
  // Point a registry record at a misaligned offset.
  log::RootArea root(pool.get());
  log::ChunkRecord* regs = root.registry();
  for (uint64_t s = 0; s < log::kRegistrySlots; s++) {
    if (regs[s].chunk_off != 0) {
      regs[s].chunk_off += 8;
      break;
    }
  }
  FsckReport r = FsckPool(*pool);
  EXPECT_FALSE(r.ok);
}

TEST(Fsck, DetectsTornTail) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 100; k++) store->Put(k, V(k));
  // Forge a tail record pointing outside any registered chunk.
  log::RootArea root(pool.get());
  root.WriteTail(0, /*seq=*/1 << 20, /*tail=*/pool->size() - 64);
  FsckReport r = FsckPool(*pool);
  EXPECT_FALSE(r.ok);
}

TEST(Fsck, CountsTxnCommits) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 50; k++) store->Put(k, V(k));
  FlatStore::Txn txn(store.get());
  uint64_t k1 = 100;
  uint64_t k2 = k1 + 1;
  while (store->CoreForKey(k2) != store->CoreForKey(k1)) k2++;
  txn.Put(k1, "txn-a").Put(k2, "txn-b");
  ASSERT_EQ(txn.Commit(), TxnStatus::kCommitted);
  FsckReport r = FsckPool(*pool);
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_EQ(r.txn_commits, 1u);
  EXPECT_EQ(r.orphan_chains, 0u);
  EXPECT_EQ(r.live_keys, store->Size());
}

// A txn chain whose commit record never made it (forged directly into
// the log, as a torn fused persist would leave it): fsck must warn and
// count the orphan, and recovery must drop the members as never
// committed.
TEST(Fsck, FlagsOrphanTxnChains) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 50; k++) store->Put(k, V(k));

  uint8_t e1[log::kMaxEntrySize];
  uint8_t e2[log::kMaxEntrySize];
  const std::string v = "orphaned-member";
  const uint32_t l1 = log::EncodePutValue(
      e1, 7001, 1, v.data(), static_cast<uint32_t>(v.size()));
  const uint32_t l2 = log::EncodePutValue(
      e2, 7002, 1, v.data(), static_cast<uint32_t>(v.size()));
  log::MarkTxnMember(e1);
  log::MarkTxnMember(e2);
  log::OpLog::EntryRef refs[2] = {{e1, l1}, {e2, l2}};
  uint64_t offs[2];
  ASSERT_TRUE(store->LogForCore(0)->AppendBatch(refs, 2, offs));

  FsckReport r = FsckPool(*pool);
  EXPECT_TRUE(r.ok) << r.Summary();  // a warning, not corruption
  EXPECT_EQ(r.orphan_chains, 1u);
  EXPECT_EQ(r.orphan_entries, 2u);
  bool mentioned = false;
  for (const auto& issue : r.issues) {
    if (issue.what.find("without a valid commit") != std::string::npos) {
      mentioned = true;
    }
  }
  EXPECT_TRUE(mentioned) << r.Summary();

  // Crash recovery drops the chain: the forged keys never surface.
  store.reset();  // no Shutdown: Open replays the logs
  auto rec = FlatStore::Open(pool.get(), Opts());
  std::string got;
  EXPECT_FALSE(rec->Get(7001, &got));
  EXPECT_FALSE(rec->Get(7002, &got));
  ASSERT_TRUE(rec->Get(10, &got));  // unrelated data intact
  EXPECT_EQ(got, V(10));
}

TEST(Fsck, SummaryMentionsCounts) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "x");
  FsckReport r = FsckPool(*pool);
  std::string s = r.Summary();
  EXPECT_NE(s.find("OK"), std::string::npos);
  EXPECT_NE(s.find("log chunks"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
