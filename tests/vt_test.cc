// Unit tests for the virtual-time clock and thread binding.

#include <gtest/gtest.h>

#include <thread>

#include "vt/clock.h"

namespace flatstore {
namespace {

TEST(Clock, AdvanceAndAdvanceTo) {
  vt::Clock c;
  EXPECT_EQ(c.now(), 0u);
  c.Advance(100);
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(50);  // in the past: no-op
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(250);
  EXPECT_EQ(c.now(), 250u);
}

TEST(Clock, PendingFenceHorizon) {
  vt::Clock c;
  c.RaisePendingFence(500);
  c.RaisePendingFence(300);  // lower: ignored
  EXPECT_EQ(c.pending_fence(), 500u);
  c.AdvanceTo(c.pending_fence());
  c.ClearPendingFence();
  EXPECT_EQ(c.now(), 500u);
  EXPECT_EQ(c.pending_fence(), 0u);
}

TEST(Clock, ResetZeroes) {
  vt::Clock c;
  c.Advance(10);
  c.RaisePendingFence(20);
  c.Reset();
  EXPECT_EQ(c.now(), 0u);
  EXPECT_EQ(c.pending_fence(), 0u);
}

TEST(CurrentClock, ChargeWithoutBindingIsNoop) {
  EXPECT_EQ(vt::CurrentClock(), nullptr);
  vt::Charge(100);  // must not crash
  EXPECT_EQ(vt::Now(), 0u);
}

TEST(CurrentClock, ScopedBinding) {
  vt::Clock c;
  {
    vt::ScopedClock bind(&c);
    EXPECT_EQ(vt::CurrentClock(), &c);
    vt::Charge(42);
    EXPECT_EQ(vt::Now(), 42u);
    {
      vt::Clock inner;
      vt::ScopedClock bind2(&inner);
      vt::Charge(1);
      EXPECT_EQ(vt::Now(), 1u);
    }
    EXPECT_EQ(vt::CurrentClock(), &c);  // restored
  }
  EXPECT_EQ(vt::CurrentClock(), nullptr);
  EXPECT_EQ(c.now(), 42u);
}

TEST(CurrentClock, PerThreadIsolation) {
  vt::Clock main_clock;
  vt::ScopedClock bind(&main_clock);
  std::thread t([] {
    // A fresh thread has no binding regardless of the parent's.
    EXPECT_EQ(vt::CurrentClock(), nullptr);
    vt::Clock c;
    vt::ScopedClock b(&c);
    vt::Charge(7);
    EXPECT_EQ(vt::Now(), 7u);
  });
  t.join();
  EXPECT_EQ(main_clock.now(), 0u);
}

}  // namespace
}  // namespace flatstore
