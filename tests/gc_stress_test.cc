// Sustained-churn stress for the staged cleaner (ctest label: gc-stress).
//
// A serving thread overwrites a working set for many rounds while the
// background cleaners run with a bounded quantum, hot/cold segregation,
// and an armed allocator backpressure watermark — the production
// configuration, at miniature scale. The test holds if (a) every key
// still reads back its final value, (b) the cleaner actually reclaimed
// space (the pool is sized so churn without cleaning would exhaust it),
// and (c) the write-amplification accounting stays self-consistent.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "core/flatstore.h"
#include "pm/pm_stats.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t round, size_t len) {
  std::string v(len, char('a' + (key * 31 + round) % 26));
  std::memcpy(&v[0], &key, 8);
  std::memcpy(&v[8], &round, 8);
  return v;
}

TEST(GcStress, ChurnUnderBoundedQuantumAndBackpressure) {
  // 20k keys x ~150 B x 9 writes each = ~27 MB of log traffic through a
  // 96 MB pool: without reclamation the allocator runs dry well before
  // the final round.
  constexpr uint64_t kKeys = 20000;
  constexpr uint64_t kRounds = 8;
  constexpr size_t kValLen = 136;

  pm::PmPool::Options po;
  po.size = 96ull << 20;
  pm::PmPool pool(po);

  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 8;
  fo.gc_live_ratio = 0.9;
  fo.gc_quantum_bytes = 64 * 1024;
  fo.gc_segregate = true;
  fo.gc_cold_age = 64;
  fo.gc_backpressure_watermark = 6;
  auto store = FlatStore::Create(&pool, fo);

  for (uint64_t k = 0; k < kKeys; k++) {
    store->Put(k, ValueFor(k, 0, kValLen));
  }
  store->StartCleaners();

  for (uint64_t r = 1; r <= kRounds; r++) {
    // Skip one residue class per round: ~1/8 of every sealed chunk stays
    // live, so victims carry survivors (exercising relocation, not just
    // whole-chunk drops).
    for (uint64_t k = 0; k < kKeys; k++) {
      if (k % 8 == r % 8) continue;
      store->Put(k, ValueFor(k, r, kValLen));
    }
    // Rotate so the round's garbage becomes collectible behind us.
    store->SealActiveLogChunks();
  }

  // Let the bounded-quantum cleaners drain the backlog. Wait for a
  // survivor-carrying victim too (fully-dead chunks retire first under
  // cost-benefit — they score highest — and relocate nothing).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((store->ChunksCleaned() < 4 ||
          pool.stats().Get().gc_bytes_relocated == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  store->StopCleaners();
  ASSERT_GE(store->ChunksCleaned(), 4u) << "cleaner made no headway";

  // (a) durability: each key's last-written round survives.
  std::string v;
  for (uint64_t k = 0; k < kKeys; k++) {
    const uint64_t last = k % 8 == kRounds % 8 ? kRounds - 1 : kRounds;
    ASSERT_TRUE(store->Get(k, &v)) << "key " << k << " lost";
    ASSERT_EQ(v, ValueFor(k, last, kValLen)) << "key " << k;
  }

  // (b)+(c) accounting: victims were retired, survivors were cheaper
  // than the space they freed, and the histogram-backed WA ratio is a
  // finite, sane number for this churn profile.
  const auto s = pool.stats().Get();
  EXPECT_GT(s.gc_victims, 0u);
  EXPECT_GT(s.gc_bytes_reclaimed, s.gc_bytes_relocated)
      << "cleaning must free more than it rewrites";
  const double wa = pm::GcWriteAmp(s);
  EXPECT_GT(wa, 0.0);
  EXPECT_LT(wa, 1.0);
  EXPECT_EQ(s.gc_survivor_bytes_hot + s.gc_survivor_bytes_cold,
            s.gc_bytes_relocated)
      << "per-temperature survivor counters must partition the total";
}

// The same churn with the cleaners stopped mid-stream and restarted:
// parked pipeline jobs must resume, not restart or leak victims.
TEST(GcStress, CleanerRestartResumesParkedJobs) {
  constexpr uint64_t kKeys = 8000;
  constexpr size_t kValLen = 136;

  pm::PmPool::Options po;
  po.size = 96ull << 20;
  pm::PmPool pool(po);

  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 8;
  fo.gc_live_ratio = 0.9;
  fo.gc_quantum_bytes = 16 * 1024;  // tiny: jobs certainly span restarts
  auto store = FlatStore::Create(&pool, fo);

  for (uint64_t k = 0; k < kKeys; k++) {
    store->Put(k, ValueFor(k, 0, kValLen));
  }
  for (uint64_t r = 1; r <= 3; r++) {
    for (uint64_t k = 0; k < kKeys; k++) {
      store->Put(k, ValueFor(k, r, kValLen));
    }
    store->SealActiveLogChunks();
  }

  for (int cycle = 0; cycle < 6; cycle++) {
    store->StartCleaners();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    store->StopCleaners();
  }
  // Finish whatever is still parked, synchronously. A bounded pass can
  // retire nothing (scan-only), so drive a generous fixed budget of
  // passes rather than looping on the return value.
  for (int i = 0; i < 4000; i++) store->RunCleanersOnce();

  EXPECT_GT(store->ChunksCleaned(), 0u);
  std::string v;
  for (uint64_t k = 0; k < kKeys; k += 7) {
    ASSERT_TRUE(store->Get(k, &v)) << "key " << k << " lost";
    ASSERT_EQ(v, ValueFor(k, 3, kValLen)) << "key " << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
