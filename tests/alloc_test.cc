// Tests of the lazy-persist allocator: class selection, alignment
// guarantees needed by the 40-bit Ptr encoding, per-core partitioning,
// free/reuse, raw chunks, exhaustion, and — most importantly — bitmap
// reconstruction after a crash (the "lazy persist" property).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "alloc/lazy_allocator.h"

namespace flatstore {
namespace alloc {
namespace {

class LazyAllocatorTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRegion = 64ull << 20;  // 16 chunks

  LazyAllocatorTest() {
    pm::PmPool::Options o;
    o.size = kRegion + kChunkSize;  // first chunk reserved (superblock)
    o.crash_tracking = true;
    pool_ = std::make_unique<pm::PmPool>(o);
    alloc_ =
        std::make_unique<LazyAllocator>(pool_.get(), kChunkSize, kRegion, 4);
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<LazyAllocator> alloc_;
};

TEST(SizeClasses, ClassForPicksSmallestFit) {
  EXPECT_EQ(LazyAllocator::ClassFor(1), 512u);
  EXPECT_EQ(LazyAllocator::ClassFor(512), 512u);
  EXPECT_EQ(LazyAllocator::ClassFor(513), 768u);
  EXPECT_EQ(LazyAllocator::ClassFor(1000), 1024u);
  EXPECT_EQ(LazyAllocator::ClassFor(1048576), 1048576u);
  EXPECT_EQ(LazyAllocator::ClassFor(1048577), 0u);  // raw chunk
}

TEST(SizeClasses, AllMultiplesOf256) {
  for (uint32_t cls : kSizeClasses) EXPECT_EQ(cls % 256, 0u) << cls;
}

TEST_F(LazyAllocatorTest, BlocksAre256Aligned) {
  // The 40-bit Ptr drops the low 8 bits, so this alignment is load-bearing.
  for (uint64_t size : {300u, 700u, 5000u, 100000u}) {
    uint64_t off = alloc_->Alloc(0, size);
    ASSERT_NE(off, 0u);
    EXPECT_EQ(off % 256, 0u) << "size " << size;
  }
}

TEST_F(LazyAllocatorTest, DistinctBlocksNoOverlap) {
  std::set<uint64_t> offs;
  for (int i = 0; i < 1000; i++) {
    uint64_t off = alloc_->Alloc(0, 512);
    ASSERT_NE(off, 0u);
    EXPECT_TRUE(offs.insert(off).second) << "duplicate block";
  }
  // All within one or two 512-class chunks, spaced by >= 512.
  std::vector<uint64_t> v(offs.begin(), offs.end());
  for (size_t i = 1; i < v.size(); i++) EXPECT_GE(v[i] - v[i - 1], 512u);
}

TEST_F(LazyAllocatorTest, FreeAllowsReuse) {
  uint64_t a = alloc_->Alloc(0, 512);
  alloc_->Free(a);
  EXPECT_FALSE(alloc_->IsAllocated(a));
  // The freed block is reusable (same chunk stays current).
  std::set<uint64_t> seen;
  bool reused = false;
  for (uint32_t i = 0; i < LazyAllocator::BlocksPerChunk(512) + 1 && !reused; i++) {
    reused = alloc_->Alloc(0, 512) == a;
  }
  EXPECT_TRUE(reused);
}

TEST_F(LazyAllocatorTest, PerCoreChunksAreDisjoint) {
  uint64_t a = alloc_->Alloc(0, 512);
  uint64_t b = alloc_->Alloc(1, 512);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_NE(a / kChunkSize, b / kChunkSize)
      << "different cores must fill different chunks";
}

TEST_F(LazyAllocatorTest, DifferentClassesDifferentChunks) {
  uint64_t a = alloc_->Alloc(0, 512);
  uint64_t b = alloc_->Alloc(0, 4096);
  EXPECT_NE(a / kChunkSize, b / kChunkSize);
}

TEST_F(LazyAllocatorTest, ChunkRollsOverWhenFull) {
  uint32_t blocks = LazyAllocator::BlocksPerChunk(1048576);  // 3 per chunk
  std::set<uint64_t> chunks;
  for (uint32_t i = 0; i < blocks + 1; i++) {
    uint64_t off = alloc_->Alloc(0, 1000000);
    ASSERT_NE(off, 0u);
    chunks.insert(off / kChunkSize);
  }
  EXPECT_EQ(chunks.size(), 2u);
}

TEST_F(LazyAllocatorTest, RawChunkAllocFree) {
  uint64_t before = alloc_->free_chunks();
  uint64_t c = alloc_->AllocRawChunk(2);
  ASSERT_NE(c, 0u);
  EXPECT_EQ(c % kChunkSize, 0u);
  EXPECT_EQ(alloc_->free_chunks(), before - 1);
  EXPECT_TRUE(alloc_->IsAllocated(c + kChunkHeaderSize));
  alloc_->FreeRawChunk(c);
  EXPECT_EQ(alloc_->free_chunks(), before);
}

TEST_F(LazyAllocatorTest, HugeValueUsesRawChunk) {
  uint64_t off = alloc_->Alloc(0, 2 << 20);  // 2 MB > largest class
  ASSERT_NE(off, 0u);
  EXPECT_EQ(off % kChunkSize, kChunkHeaderSize);
  alloc_->Free(off);  // routed to FreeRawChunk
}

TEST_F(LazyAllocatorTest, ExhaustionReturnsZero) {
  // 16 chunks of 1 MB class = 3 blocks each.
  int got = 0;
  while (alloc_->Alloc(0, 1000000) != 0) got++;
  EXPECT_EQ(got, 16 * 3);
  EXPECT_EQ(alloc_->free_chunks(), 0u);
}

TEST_F(LazyAllocatorTest, AllocatedBytesTracksUsage) {
  EXPECT_EQ(alloc_->allocated_bytes(), 0u);
  alloc_->Alloc(0, 512);
  alloc_->Alloc(0, 512);
  EXPECT_EQ(alloc_->allocated_bytes(), 1024u);
}

TEST_F(LazyAllocatorTest, BitmapRecoveredFromPointersAfterCrash) {
  // Allocate blocks across classes/cores; bitmaps are never flushed.
  std::vector<uint64_t> live;
  for (int i = 0; i < 50; i++) live.push_back(alloc_->Alloc(i % 4, 512));
  for (int i = 0; i < 20; i++) live.push_back(alloc_->Alloc(i % 4, 4096));
  uint64_t freed = live.back();
  live.pop_back();
  alloc_->Free(freed);

  // Crash: everything unflushed (i.e., every bitmap) is wiped; only the
  // chunk headers' magic+class survive (persisted at format time).
  pool_->SimulateCrash();

  // Recovery driven by the "log": mark each live pointer.
  alloc_->StartRecovery();
  for (uint64_t off : live) alloc_->MarkBlockAllocated(off);
  alloc_->FinishRecovery();

  for (uint64_t off : live) EXPECT_TRUE(alloc_->IsAllocated(off));
  EXPECT_FALSE(alloc_->IsAllocated(freed));

  // Post-recovery allocation never hands out a live block.
  std::set<uint64_t> live_set(live.begin(), live.end());
  for (int i = 0; i < 200; i++) {
    uint64_t off = alloc_->Alloc(0, 512);
    ASSERT_NE(off, 0u);
    EXPECT_EQ(live_set.count(off), 0u) << "recovered-live block re-issued";
  }
}

TEST_F(LazyAllocatorTest, RecoveryReclaimsUnreferencedChunks) {
  // Fill several chunks, then "crash" with no live pointers at all:
  // every chunk must come back as free.
  for (int i = 0; i < 100; i++) alloc_->Alloc(0, 65536);
  pool_->SimulateCrash();
  alloc_->StartRecovery();
  alloc_->FinishRecovery();
  EXPECT_EQ(alloc_->free_chunks(), alloc_->total_chunks());
}

TEST_F(LazyAllocatorTest, MarkBlockAllocatedIsIdempotent) {
  uint64_t off = alloc_->Alloc(0, 512);
  pool_->SimulateCrash();
  alloc_->StartRecovery();
  alloc_->MarkBlockAllocated(off);
  alloc_->MarkBlockAllocated(off);  // replay may see a key twice
  alloc_->FinishRecovery();
  uint64_t bytes = alloc_->allocated_bytes();
  EXPECT_EQ(bytes, 512u);
}

TEST_F(LazyAllocatorTest, CleanShutdownPersistsBitmaps) {
  uint64_t a = alloc_->Alloc(0, 512);
  alloc_->PersistMetadata();
  pool_->SimulateCrash();
  // After a clean shutdown the bitmap itself survives; no replay needed.
  ChunkHeader* h = pool_->PtrAt<ChunkHeader>(a & ~(kChunkSize - 1));
  BitmapView bm(h->bitmap, LazyAllocator::BlocksPerChunk(512));
  EXPECT_TRUE(bm.Test((a % kChunkSize - kChunkHeaderSize) / 512));
}

TEST_F(LazyAllocatorTest, CrossCoreFreeReturnsToOwner) {
  // Core 0 allocates; a "cleaner" frees it; core 0 can reuse the space.
  uint32_t blocks = LazyAllocator::BlocksPerChunk(1048576);
  std::vector<uint64_t> offs;
  for (uint32_t i = 0; i < blocks; i++) {
    offs.push_back(alloc_->Alloc(0, 1048576));  // fill chunk completely
  }
  uint64_t full_chunk = offs[0] / kChunkSize;
  alloc_->Free(offs[1]);  // chunk becomes partial again
  // Next allocations eventually reuse the freed block in that chunk.
  bool reused = false;
  for (uint32_t i = 0; i < blocks * 16u && !reused; i++) {
    uint64_t off = alloc_->Alloc(0, 1048576);
    if (off == 0) break;
    reused = off / kChunkSize == full_chunk;
  }
  EXPECT_TRUE(reused);
}

}  // namespace
}  // namespace alloc
}  // namespace flatstore
