// Epoch-based reclamation tests: pin/advance/deferred-free ordering, the
// guest-slot path, a torture loop racing readers against a reclaimer, and
// the FlatStore-level regression that the cleaner never frees a chunk
// while a reader still holds a decoded entry.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "core/flatstore.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace common {
namespace {

TEST(Epoch, PinBlocksAdvanceUnpinAllows) {
  EpochManager em(/*owned_slots=*/2, /*guest_slots=*/2);
  const uint64_t e0 = em.current_epoch();
  em.Pin(0);
  EXPECT_EQ(em.SlotEpoch(0), e0);
  EXPECT_TRUE(em.AnyPinned());
  // A slot pinned at the current epoch does not block one advance...
  EXPECT_TRUE(em.TryAdvance());
  // ...but blocks the next (the slot now lags the global epoch).
  EXPECT_FALSE(em.TryAdvance());
  em.Unpin(0);
  EXPECT_FALSE(em.AnyPinned());
  EXPECT_TRUE(em.TryAdvance());
  EXPECT_EQ(em.current_epoch(), e0 + 2);
  EXPECT_EQ(em.advances(), 2u);
}

TEST(Epoch, DeferredRunsOnlyAfterTwoAdvances) {
  EpochManager em(1);
  em.Pin(0);
  int ran = 0;
  em.Defer([&ran] { ran = 1; });
  EXPECT_EQ(em.deferred_pending(), 1u);
  // The pinned reader holds the epoch: nothing may run.
  EXPECT_EQ(em.ReclaimDeferred(), 0u);
  EXPECT_EQ(ran, 0);
  em.Unpin(0);
  // Unpinned: two advances free the deferral.
  EXPECT_EQ(em.ReclaimDeferred(), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(em.deferred_pending(), 0u);
  EXPECT_EQ(em.deferred_frees(), 1u);
  EXPECT_GE(em.deferred_hwm(), 1u);
}

TEST(Epoch, DeferredRunInFifoOrder) {
  EpochManager em(1);
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    em.Defer([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(em.DrainDeferred(), 5u);
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; i++) EXPECT_EQ(order[i], i);
}

TEST(Epoch, GuestPinBlocksReclamation) {
  EpochManager em(/*owned_slots=*/1, /*guest_slots=*/2);
  int ran = 0;
  {
    EpochManager::GuestGuard g(&em);
    EXPECT_GE(g.slot(), em.owned_slots());
    em.Defer([&ran] { ran = 1; });
    EXPECT_EQ(em.ReclaimDeferred(), 0u);
    EXPECT_EQ(ran, 0);
    // A second guest can pin concurrently.
    EpochManager::GuestGuard g2(&em);
    EXPECT_NE(g2.slot(), g.slot());
  }
  EXPECT_EQ(em.ReclaimDeferred(), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(Epoch, NestedGuardsViaDistinctSlots) {
  EpochManager em(2);
  EpochManager::Guard a(&em, 0);
  {
    EpochManager::Guard b(&em, 1);
    EXPECT_TRUE(em.AnyPinned());
  }
  EXPECT_NE(em.SlotEpoch(0), EpochManager::kIdle);
  EXPECT_EQ(em.SlotEpoch(1), EpochManager::kIdle);
}

// Torture: readers chase a shared pointer under epoch pins while a
// reclaimer keeps swapping it out and defer-deleting the old node. A
// reader must never observe a node whose deleter already ran. (Under
// -DFLATSTORE_SANITIZE=thread|address the dereference itself would flag
// a use-after-free; without a sanitizer the poisoned magic catches most
// misorderings.)
TEST(EpochTorture, ReadersRaceReclaimer) {
  constexpr uint64_t kAlive = 0xA11FE;
  constexpr uint64_t kDead = 0xDEAD;
  struct Node {
    std::atomic<uint64_t> magic{kAlive};
  };

  constexpr int kReaders = 4;
  EpochManager em(kReaders, /*guest_slots=*/2);
  std::atomic<Node*> current{new Node};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_reads{0};

  std::vector<std::thread> readers;
  for (int slot = 0; slot < kReaders; slot++) {
    readers.emplace_back([&, slot] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Guard g(&em, slot);
        Node* n = current.load(std::memory_order_acquire);
        if (n->magic.load(std::memory_order_relaxed) != kAlive) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < 20000; i++) {
    Node* fresh = new Node;
    Node* old = current.exchange(fresh, std::memory_order_acq_rel);
    em.Defer([old, kDead] {
      old->magic.store(kDead, std::memory_order_relaxed);
      delete old;
    });
    if ((i & 15) == 0) em.ReclaimDeferred();
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  em.DrainDeferred(/*max_rounds=*/64);
  EXPECT_EQ(em.deferred_pending(), 0u);
  delete current.load();
}

}  // namespace
}  // namespace common

namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce, size_t len) {
  std::string v(len, char('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, std::min<size_t>(8, len));
  return v;
}

// Regression for the unlink/free split: while any reader holds an epoch
// pin, a cleaning pass may *unlink* victims (CAS-swing the index, mark
// them retired) but must not physically free them — the reader may still
// dereference an entry pointer it decoded before the swing.
TEST(EpochReclamation, CleanerNeverFreesWhileReaderPinned) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.9;
  auto store = FlatStore::Create(&pool, fo);

  // Overwrite a small key set until plenty of sealed mostly-dead chunks
  // exist.
  for (int round = 0; round < 30; round++) {
    for (uint64_t k = 0; k < 2000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 200));
    }
  }

  common::EpochManager* em = store->epochs();
  const uint64_t free_before = store->allocator()->free_chunks();

  {
    // The "reader": holds a pin across the cleaning pass, like a Get that
    // decoded an entry pointer just before the cleaner's index swing.
    common::EpochManager::GuestGuard reader(em);

    const size_t work = store->RunCleanersOnce();
    EXPECT_GT(work, 0u);
    EXPECT_GT(store->ChunksCleaned(), 0u);  // victims were unlinked...
    EXPECT_EQ(em->deferred_frees(), 0u);    // ...but nothing was freed
    EXPECT_GT(em->deferred_pending(), 0u);
    EXPECT_EQ(store->allocator()->free_chunks(), free_before);

    // The relocated data is already reachable through the index.
    std::string v;
    ASSERT_TRUE(store->Get(7, &v));
    EXPECT_EQ(v, ValueFor(7, 29, 200));
  }

  // Reader gone: the next pass reclaims everything that was deferred.
  store->RunCleanersOnce();
  EXPECT_EQ(em->deferred_pending(), 0u);
  EXPECT_GT(em->deferred_frees(), 0u);
  EXPECT_GT(store->allocator()->free_chunks(), free_before);

  // Counters mirror into the pool's stats.
  const pm::PmStats::Snapshot s = pool.stats().Get();
  EXPECT_GT(s.epoch_advances, 0u);
  EXPECT_GT(s.epoch_deferred_frees, 0u);
  EXPECT_GT(s.epoch_deferred_hwm, 0u);

  // Data intact after the full unlink + deferred-free cycle.
  for (uint64_t k = 0; k < 2000; k += 13) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 29, 200)) << k;
  }
}

// Serving threads (one per core, the owned-slot contract) run a mixed
// get/put workload against their own cores while background cleaners
// unlink and free chunks underneath: every read must stay coherent and
// the epoch must keep advancing.
TEST(EpochReclamation, ServingThreadsRaceBackgroundCleaners) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.9;
  auto store = FlatStore::Create(&pool, fo);

  // Partition a key set by owning core.
  constexpr uint64_t kKeys = 2000;
  constexpr size_t kValueLen = 250;
  std::vector<std::vector<uint64_t>> keys(4);
  for (uint64_t k = 0; k < kKeys; k++) {
    keys[static_cast<size_t>(store->CoreForKey(k))].push_back(k);
  }

  // Preload every key so the in-run reads below always find a committed
  // version.
  for (uint64_t k = 0; k < kKeys; k++) {
    store->Put(k, ValueFor(k, 0, kValueLen));
  }

  store->StartCleaners();
  std::atomic<uint64_t> read_errors{0};
  auto serve = [&](int core) {
    const auto& mine = keys[static_cast<size_t>(core)];
    for (int round = 0; round < 40; round++) {
      for (size_t i = 0; i < mine.size(); i++) {
        const uint64_t k = mine[i];
        const std::string v =
            ValueFor(k, static_cast<uint64_t>(round), kValueLen);
        FlatStore::OpHandle h;
        while (store->BeginPut(core, k, v.data(),
                               static_cast<uint32_t>(v.size()),
                               &h) != OpStatus::kOk) {
          store->Pump(core);
          store->Drain(core, SIZE_MAX, nullptr);
        }
        if ((i & 7) == 0) {
          // Read a key with no write in flight: any committed round's
          // value carries the key in its first 8 bytes and kValueLen size.
          const uint64_t rk = mine[(i * 31 + 7) % mine.size()];
          if (!store->KeyBusy(core, rk)) {
            std::string rv;
            if (!store->GetOnCore(core, rk, &rv) ||
                rv.size() != kValueLen ||
                std::memcmp(rv.data(), &rk, 8) != 0) {
              read_errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
      store->Pump(core);
      store->Drain(core, SIZE_MAX, nullptr);
    }
    while (store->Inflight(core) > 0) {
      store->Pump(core);
      store->Drain(core, SIZE_MAX, nullptr);
    }
  };
  std::vector<std::thread> servers;
  for (int c = 0; c < 4; c++) servers.emplace_back(serve, c);
  for (auto& t : servers) t.join();
  store->StopCleaners();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_GT(store->epochs()->advances(), 0u);
  EXPECT_GT(store->ChunksCleaned(), 0u);
  for (uint64_t k = 0; k < kKeys; k += 11) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 39, kValueLen)) << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
