// Per-shard crash independence (the shared-nothing claim): in a sharded
// deployment one shard losing power and recovering must neither lose its
// own acknowledged writes nor disturb the surviving shard — its store,
// its keys, its ability to keep serving. Exercised across every
// adversarial crash mode the pool's shadow model offers.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "core/flatstore.h"
#include "net/shard_router.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, size_t len) {
  std::string v(len, char('a' + key % 26));
  std::memcpy(&v[0], &key, std::min<size_t>(8, len));
  return v;
}

FlatStoreOptions SmallOptions() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  return fo;
}

std::unique_ptr<pm::PmPool> CrashPool() {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  o.crash_tracking = true;
  return std::make_unique<pm::PmPool>(o);
}

// Crash shard 0 of a two-shard deployment under `mode`; the other shard
// never crashes. Writes are router-partitioned exactly as a cluster run
// would place them.
void CrashOneShard(pm::PmPool::CrashMode mode, uint64_t seed) {
  SCOPED_TRACE(pm::PmPool::CrashModeName(mode));
  auto pool_a = CrashPool();
  auto pool_b = CrashPool();
  auto shard_a = FlatStore::Create(pool_a.get(), SmallOptions());
  auto shard_b = FlatStore::Create(pool_b.get(), SmallOptions());

  net::ShardRouter router;
  router.AddShard(0);
  router.AddShard(1);

  std::map<uint64_t, std::string> acked_a;
  std::map<uint64_t, std::string> acked_b;
  constexpr uint64_t kKeys = 1500;
  for (uint64_t k = 0; k < kKeys; k++) {
    std::string v = ValueFor(k, 16 + k % 200);
    if (router.ShardForKey(k) == 0) {
      shard_a->Put(k, v);
      acked_a[k] = v;
    } else {
      shard_b->Put(k, v);
      acked_b[k] = v;
    }
  }
  ASSERT_GT(acked_a.size(), 0u);
  ASSERT_GT(acked_b.size(), 0u);

  // Power-cut shard A only.
  pool_a->SetCrashMode(mode, seed);
  shard_a.reset();
  pool_a->SimulateCrash();

  auto recovered = FlatStore::Open(pool_a.get(), SmallOptions());
  for (const auto& [k, v] : acked_a) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got)) << "shard A lost key " << k;
    ASSERT_EQ(got, v) << "shard A corrupted key " << k;
  }
  EXPECT_EQ(recovered->Size(), acked_a.size());

  // Shard B is untouched: full contents intact, still writable.
  for (const auto& [k, v] : acked_b) {
    std::string got;
    ASSERT_TRUE(shard_b->Get(k, &got)) << "shard B lost key " << k;
    ASSERT_EQ(got, v) << "shard B corrupted key " << k;
  }
  const uint64_t probe = kKeys + 1;
  shard_b->Put(probe, "still-serving");
  std::string got;
  ASSERT_TRUE(shard_b->Get(probe, &got));
  EXPECT_EQ(got, "still-serving");

  // The recovered shard rejoins and keeps serving its share.
  recovered->Put(kKeys + 2, "rejoined");
  ASSERT_TRUE(recovered->Get(kKeys + 2, &got));
  EXPECT_EQ(got, "rejoined");
}

TEST(ShardCrash, CleanCut) {
  CrashOneShard(pm::PmPool::CrashMode::kClean, 11);
}
TEST(ShardCrash, TornLines) {
  CrashOneShard(pm::PmPool::CrashMode::kTorn, 12);
}
TEST(ShardCrash, UnorderedTail) {
  CrashOneShard(pm::PmPool::CrashMode::kUnordered, 13);
}
TEST(ShardCrash, CacheEviction) {
  CrashOneShard(pm::PmPool::CrashMode::kEviction, 14);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
