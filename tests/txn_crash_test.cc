// All-or-nothing crash atomicity of transactions, asserted directly.
//
// The matrix case in crash_explorer_test validates txn crash images with
// the old-or-new-per-key oracle; this suite enforces the stronger §5.3
// guarantee: for EVERY flush budget inside a committing transaction,
// under every PmPool crash mode and seed, the recovered store exposes
// either every member's effect or none of them — a torn commit record
// means "nothing happened". A second test pins the abort path: a txn that
// fails its CAS stages nothing, so every cut recovers to the old state
// with no trace of the aborted members.

#include <gtest/gtest.h>

#include <string>

#include "core/flatstore.h"
#include "harness/crash_explorer.h"

namespace flatstore {
namespace testing {
namespace {

core::FlatStoreOptions SmallStore() {
  core::FlatStoreOptions o;
  o.num_cores = 1;
  o.group_size = 1;
  o.hash_initial_depth = 4;
  return o;
}

std::string Val(char fill, size_t n) { return std::string(n, fill); }

std::unique_ptr<pm::PmPool> MakePool() {
  pm::PmPool::Options po;
  po.size = 32ull << 20;
  po.crash_tracking = true;
  return std::make_unique<pm::PmPool>(po);
}

uint32_t AppendBang(void*, const void* cur, uint32_t cur_len, uint8_t* out,
                    uint32_t cap) {
  EXPECT_NE(cur, nullptr);
  EXPECT_LT(cur_len, cap);
  std::memcpy(out, cur, cur_len);
  out[cur_len] = '!';
  return cur_len + 1;
}

// One transaction touching keys 1..5 through every member shape: inline
// put, out-of-log put, CAS on the preloaded value, RMW appending a byte,
// and a delete.
constexpr uint64_t kTxnKeys = 5;

std::string OldVal(uint64_t i) { return Val('o', 20 + 3 * i); }

// Expected post-commit value of key i+1 (empty = deleted).
std::string NewVal(uint64_t i) {
  switch (i) {
    case 0:
      return Val('n', 40);
    case 1:
      return Val('n', 400);  // out-of-log member
    case 2:
      return Val('c', 64);   // CAS result
    case 3:
      return OldVal(3) + "!";  // RMW result
    default:
      return std::string();  // deleted
  }
}

core::TxnStatus RunCommitTxn(core::FlatStore* store) {
  const std::string v0 = NewVal(0);
  const std::string v1 = NewVal(1);
  const std::string v2 = NewVal(2);
  const std::string expected = OldVal(2);
  core::TxnOp ops[kTxnKeys];
  ops[0].kind = core::TxnOpKind::kPut;
  ops[0].key = 1;
  ops[0].value = v0.data();
  ops[0].len = static_cast<uint32_t>(v0.size());
  ops[1].kind = core::TxnOpKind::kPut;
  ops[1].key = 2;
  ops[1].value = v1.data();
  ops[1].len = static_cast<uint32_t>(v1.size());
  ops[2].kind = core::TxnOpKind::kCas;
  ops[2].key = 3;
  ops[2].expected = expected.data();
  ops[2].expected_len = static_cast<uint32_t>(expected.size());
  ops[2].value = v2.data();
  ops[2].len = static_cast<uint32_t>(v2.size());
  ops[3].kind = core::TxnOpKind::kRmw;
  ops[3].key = 4;
  ops[3].rmw = &AppendBang;
  ops[4].kind = core::TxnOpKind::kDelete;
  ops[4].key = 5;
  return store->CommitTxnOnCore(0, ops, kTxnKeys);
}

void Preload(core::FlatStore* store) {
  for (uint64_t i = 0; i < kTxnKeys; i++) {
    store->Put(i + 1, OldVal(i));
  }
}

// Classifies the recovered state of key i+1: +1 new, -1 old, 0 neither.
int KeyState(core::FlatStore* store, uint64_t i) {
  std::string got;
  const bool present = store->Get(i + 1, &got);
  const std::string want_new = NewVal(i);
  if (want_new.empty()) {  // deleted member
    if (!present) return 1;
    return got == OldVal(i) ? -1 : 0;
  }
  if (!present) return 0;
  if (got == want_new) return 1;
  return got == OldVal(i) ? -1 : 0;
}

TEST(TxnCrash, CommitIsAllOrNothing) {
  const auto options = SmallStore();

  // Dry run: count the line flushes the transaction issues.
  uint64_t total = 0;
  {
    auto pool = MakePool();
    auto store = core::FlatStore::Create(pool.get(), options);
    Preload(store.get());
    const uint64_t start = pool->stats().Get().lines_flushed;
    ASSERT_EQ(RunCommitTxn(store.get()), core::TxnStatus::kCommitted);
    total = pool->stats().Get().lines_flushed - start;
  }
  ASSERT_GT(total, 0u);

  const std::vector<uint64_t> seeds = CrashSeedsFromEnv({1, 7});
  uint64_t points = 0;
  uint64_t committed_points = 0;
  for (pm::PmPool::CrashMode mode :
       {pm::PmPool::CrashMode::kClean, pm::PmPool::CrashMode::kTorn,
        pm::PmPool::CrashMode::kUnordered,
        pm::PmPool::CrashMode::kEviction}) {
    const size_t nseeds =
        mode == pm::PmPool::CrashMode::kClean ? 1 : seeds.size();
    for (size_t s = 0; s < nseeds; s++) {
      for (uint64_t budget = 1; budget <= total; budget++) {
        auto pool = MakePool();
        auto store = core::FlatStore::Create(pool.get(), options);
        Preload(store.get());
        pool->SetCrashMode(mode, seeds[s]);
        pool->SetFlushBudget(static_cast<int64_t>(budget));
        RunCommitTxn(store.get());
        store.reset();  // post-cut teardown: flushes no longer persist
        pool->SimulateCrash();

        auto rec = core::FlatStore::Open(pool.get(), options);
        int verdict = 0;  // 0 = undecided, +1 = all new, -1 = all old
        for (uint64_t i = 0; i < kTxnKeys; i++) {
          const int st = KeyState(rec.get(), i);
          ASSERT_NE(st, 0)
              << pm::PmPool::CrashModeName(mode) << " flush " << budget
              << " seed " << seeds[s] << ": key " << i + 1
              << " is neither old nor new";
          if (verdict == 0) verdict = st;
          ASSERT_EQ(st, verdict)
              << pm::PmPool::CrashModeName(mode) << " flush " << budget
              << " seed " << seeds[s] << ": key " << i + 1
              << " breaks all-or-nothing (partial txn recovered)";
        }
        if (verdict > 0) committed_points++;
        points++;
      }
    }
  }
  EXPECT_GT(points, 0u);
  // The full budget cuts after the commit is durable, so both outcomes
  // occur across the matrix.
  EXPECT_GT(committed_points, 0u);
  EXPECT_LT(committed_points, points);
}

TEST(TxnCrash, FailedCasRecoversToOldAtEveryCut) {
  const auto options = SmallStore();

  // The txn stages an out-of-log put (its value block is allocated and
  // l-persisted before the CAS resolves), then fails the CAS: the abort
  // frees the block and stages nothing. Key 9 exists only inside the
  // aborted txn and must never surface.
  auto run_aborting_txn = [](core::FlatStore* store) {
    const std::string big = Val('x', 500);
    const std::string wrong = "mismatch";
    core::TxnOp ops[2];
    ops[0].kind = core::TxnOpKind::kPut;
    ops[0].key = 9;
    ops[0].value = big.data();
    ops[0].len = static_cast<uint32_t>(big.size());
    ops[1].kind = core::TxnOpKind::kCas;
    ops[1].key = 1;
    ops[1].expected = wrong.data();
    ops[1].expected_len = static_cast<uint32_t>(wrong.size());
    ops[1].value = big.data();
    ops[1].len = static_cast<uint32_t>(big.size());
    size_t failed = 99;
    EXPECT_EQ(store->CommitTxnOnCore(0, ops, 2, &failed),
              core::TxnStatus::kCasMismatch);
    EXPECT_EQ(failed, 1u);
  };

  uint64_t total = 0;
  {
    auto pool = MakePool();
    auto store = core::FlatStore::Create(pool.get(), options);
    Preload(store.get());
    const uint64_t start = pool->stats().Get().lines_flushed;
    run_aborting_txn(store.get());
    // The aborted value block's l-persist flushes make the window
    // non-empty even though nothing reaches the log.
    total = pool->stats().Get().lines_flushed - start;
  }
  ASSERT_GT(total, 0u);

  const std::vector<uint64_t> seeds = CrashSeedsFromEnv({1, 7});
  for (pm::PmPool::CrashMode mode :
       {pm::PmPool::CrashMode::kClean, pm::PmPool::CrashMode::kTorn,
        pm::PmPool::CrashMode::kUnordered,
        pm::PmPool::CrashMode::kEviction}) {
    const size_t nseeds =
        mode == pm::PmPool::CrashMode::kClean ? 1 : seeds.size();
    for (size_t s = 0; s < nseeds; s++) {
      for (uint64_t budget = 1; budget <= total; budget++) {
        auto pool = MakePool();
        auto store = core::FlatStore::Create(pool.get(), options);
        Preload(store.get());
        pool->SetCrashMode(mode, seeds[s]);
        pool->SetFlushBudget(static_cast<int64_t>(budget));
        run_aborting_txn(store.get());
        store.reset();
        pool->SimulateCrash();

        auto rec = core::FlatStore::Open(pool.get(), options);
        std::string got;
        for (uint64_t i = 0; i < kTxnKeys; i++) {
          ASSERT_TRUE(rec->Get(i + 1, &got))
              << pm::PmPool::CrashModeName(mode) << " flush " << budget
              << " seed " << seeds[s] << ": preloaded key " << i + 1
              << " vanished";
          ASSERT_EQ(got, OldVal(i))
              << pm::PmPool::CrashModeName(mode) << " flush " << budget
              << " seed " << seeds[s] << ": aborted txn mutated key "
              << i + 1;
        }
        ASSERT_FALSE(rec->Get(9, &got))
            << pm::PmPool::CrashModeName(mode) << " flush " << budget
            << " seed " << seeds[s] << ": aborted txn's key surfaced";
      }
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace flatstore
