// Persistent ordered tier (DESIGN.md §11): log-to-tier conversion,
// merged hash-store scans, scan equivalence against the full-iteration
// baseline under puts/deletes/GC churn, tombstone handling, and
// incremental (bounded) recovery that skips tiered chunks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/fsck.h"
#include "core/flatstore.h"
#include "tier/tier.h"

namespace flatstore {
namespace core {
namespace {

using ScanRows = std::vector<std::pair<uint64_t, std::string>>;

std::string ValueFor(uint64_t key, uint64_t nonce, size_t len) {
  std::string v(len, static_cast<char>('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, std::min<size_t>(8, len));
  return v;
}

FlatStoreOptions TierOptions(int cores = 2) {
  FlatStoreOptions fo;
  fo.num_cores = cores;
  fo.group_size = cores;
  fo.hash_initial_depth = 4;
  fo.tier_enabled = true;
  return fo;
}

std::unique_ptr<pm::PmPool> MakePool(uint64_t mb = 128) {
  pm::PmPool::Options o;
  o.size = mb << 20;
  return std::make_unique<pm::PmPool>(o);
}

TEST(Tier, ConvertAndServe) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), TierOptions());
  for (uint64_t k = 0; k < 512; k++) {
    store->Put(k, ValueFor(k, 1, 40));
  }
  store->SealActiveLogChunks();
  // Advance each core's durable tail into a fresh chunk: the tail chunk
  // itself never tiers (recovery's tail record must stay replayable).
  for (uint64_t k = 512; k < 520; k++) {
    store->Put(k, ValueFor(k, 1, 40));
  }
  EXPECT_GT(store->RunTieringOnce(), 0u);
  EXPECT_GT(store->ChunksTiered(), 0u);
  ASSERT_NE(store->tier(), nullptr);
  EXPECT_GT(store->tier()->node_count(), 0u);
  // Point reads still come through the volatile index.
  for (uint64_t k = 0; k < 512; k += 13) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v)) << k;
    EXPECT_EQ(v, ValueFor(k, 1, 40));
  }
  // Range scan over the merged path: ordered, complete, correct bytes.
  ScanRows rows;
  EXPECT_EQ(store->Scan(100, 50, &rows), 50u);
  for (size_t i = 0; i < rows.size(); i++) {
    EXPECT_EQ(rows[i].first, 100 + i);
    EXPECT_EQ(rows[i].second, ValueFor(100 + i, 1, 40));
  }
}

TEST(Tier, SupersededEntriesNeverResurface) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), TierOptions());
  for (uint64_t k = 0; k < 256; k++) {
    store->Put(k, ValueFor(k, 1, 60));
  }
  store->SealActiveLogChunks();
  // Supersede half the keys and delete a few AFTER sealing: the tier
  // conversion must keep only entries the index still points at.
  for (uint64_t k = 0; k < 256; k += 2) {
    store->Put(k, ValueFor(k, 2, 72));
  }
  for (uint64_t k = 1; k < 32; k += 2) {
    ASSERT_TRUE(store->Delete(k));
  }
  EXPECT_GT(store->RunTieringOnce(), 0u);
  ScanRows rows;
  store->Scan(0, 256, &rows);
  for (const auto& [k, v] : rows) {
    if (k % 2 == 0) {
      EXPECT_EQ(v, ValueFor(k, 2, 72)) << k;
    } else {
      EXPECT_GE(k, 32u) << "deleted key resurfaced in scan";
      EXPECT_EQ(v, ValueFor(k, 1, 60)) << k;
    }
  }
}

// The acceptance check: the merged volatile+tier scan must be
// byte-identical to the full volatile-index iteration at every quiesced
// point of a put/delete/GC/tiering churn schedule.
TEST(Tier, ScanEquivalentToFullIterationUnderChurn) {
  auto pool = MakePool(256);
  auto opts = TierOptions();
  opts.gc_live_ratio = 0.9;
  auto store = FlatStore::Create(pool.get(), opts);
  constexpr uint64_t kKeys = 1500;
  for (uint64_t k = 0; k < kKeys; k++) {
    store->Put(k, ValueFor(k, 0, 50));
  }
  auto compare = [&](uint64_t start, uint64_t count) {
    ScanRows merged, full;
    const uint64_t a = store->Scan(start, count, &merged);
    const uint64_t b = store->ScanFullIteration(start, count, &full);
    ASSERT_EQ(a, b) << "start=" << start << " count=" << count;
    ASSERT_EQ(merged, full) << "start=" << start << " count=" << count;
  };
  for (int round = 1; round <= 4; round++) {
    // Churn: overwrites, deletes, re-puts — then GC and tiering passes.
    for (uint64_t k = 0; k < kKeys; k += 3) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 50 + round));
    }
    for (uint64_t k = 1; k < kKeys; k += 97) store->Delete(k);
    for (uint64_t k = 1; k < kKeys; k += 194) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 33));
    }
    store->SealActiveLogChunks();
    store->RunCleanersOnce();
    store->RunTieringOnce();
    compare(0, kKeys);
    compare(kKeys / 3, 100);
    compare(kKeys - 40, 200);  // tail: fewer than `count` keys remain
    compare(kKeys + 1000, 10);  // empty range
  }
  EXPECT_GT(store->ChunksTiered(), 0u);
}

// Scans racing live writers must stay well-formed: strictly ascending
// keys, no crashes, every returned value a version some Put wrote.
TEST(Tier, ConcurrentScanSmoke) {
  auto pool = MakePool(256);
  auto store = FlatStore::Create(pool.get(), TierOptions());
  constexpr uint64_t kKeys = 1024;
  for (uint64_t k = 0; k < kKeys; k++) {
    store->Put(k, ValueFor(k, 0, 48));
  }
  store->SealActiveLogChunks();
  store->RunTieringOnce();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t nonce = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint64_t k = 0; k < kKeys; k += 5) {
        store->Put(k, ValueFor(k, nonce, 48));
      }
      nonce++;
    }
  });
  for (int i = 0; i < 50; i++) {
    ScanRows rows;
    store->Scan((i * 37) % kKeys, 120, &rows);
    for (size_t j = 1; j < rows.size(); j++) {
      ASSERT_LT(rows[j - 1].first, rows[j].first);
    }
    for (const auto& [k, v] : rows) {
      ASSERT_EQ(v.size(), 48u) << k;
      uint64_t embedded = 0;
      std::memcpy(&embedded, v.data(), 8);
      ASSERT_EQ(embedded, k);
    }
  }
  stop.store(true);
  writer.join();
}

TEST(Tier, RecoverySkipsTieredChunksAndKeepsData) {
  auto pool = MakePool();
  {
    auto store = FlatStore::Create(pool.get(), TierOptions());
    for (uint64_t k = 0; k < 600; k++) {
      store->Put(k, ValueFor(k, 3, 44));
    }
    store->SealActiveLogChunks();
    for (uint64_t k = 0; k < 64; k++) {
      store->Put(k, ValueFor(k, 4, 52));  // un-tiered suffix
    }
    ASSERT_GT(store->RunTieringOnce(), 0u);
    // No Shutdown(): simulate a crash so Open takes the replay path.
  }
  core::FsckReport rep = core::FsckPool(*pool);
  EXPECT_TRUE(rep.ok) << rep.Summary();
  EXPECT_GT(rep.tiered_chunks, 0u);
  EXPECT_GT(rep.tier_nodes, 0u);
  auto store = FlatStore::Open(pool.get(), TierOptions());
  const auto& rs = store->recovery_stats();
  EXPECT_GT(rs.tier_nodes_loaded, 0u);
  EXPECT_GT(rs.chunks_skipped_tiered, 0u);
  for (uint64_t k = 0; k < 600; k++) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v)) << k;
    EXPECT_EQ(v, ValueFor(k, k < 64 ? 4 : 3, k < 64 ? 52 : 44)) << k;
  }
  // The merged scan works right after recovery (delta sets rebuilt).
  ScanRows rows, full;
  ASSERT_EQ(store->Scan(0, 600, &rows),
            store->ScanFullIteration(0, 600, &full));
  EXPECT_EQ(rows, full);
}

TEST(Tier, TieredTombstoneStaysDeadAcrossReopen) {
  auto pool = MakePool();
  {
    auto store = FlatStore::Create(pool.get(), TierOptions());
    for (uint64_t k = 0; k < 128; k++) {
      store->Put(k, ValueFor(k, 5, 40));
    }
    ASSERT_TRUE(store->Delete(7));
    ASSERT_TRUE(store->Delete(11));
    store->SealActiveLogChunks();
    for (uint64_t k = 200; k < 208; k++) {
      store->Put(k, ValueFor(k, 5, 40));  // advance tails past the seal
    }
    ASSERT_GT(store->RunTieringOnce(), 0u);
    std::string v;
    EXPECT_FALSE(store->Get(7, &v));
  }
  auto store = FlatStore::Open(pool.get(), TierOptions());
  std::string v;
  EXPECT_FALSE(store->Get(7, &v));
  EXPECT_FALSE(store->Get(11, &v));
  ASSERT_TRUE(store->Get(8, &v));
  EXPECT_EQ(v, ValueFor(8, 5, 40));
  ScanRows rows;
  store->Scan(0, 128, &rows);
  for (const auto& [k, val] : rows) {
    EXPECT_NE(k, 7u);
    EXPECT_NE(k, 11u);
  }
}

TEST(Tier, RepeatedConversionAcrossReopens) {
  auto pool = MakePool(256);
  for (int gen = 0; gen < 3; gen++) {
    auto store = gen == 0 ? FlatStore::Create(pool.get(), TierOptions())
                          : FlatStore::Open(pool.get(), TierOptions());
    for (uint64_t k = 0; k < 400; k++) {
      store->Put(k + static_cast<uint64_t>(gen) * 1000,
                 ValueFor(k, static_cast<uint64_t>(gen), 46));
    }
    store->SealActiveLogChunks();
    store->RunTieringOnce();
  }
  auto store = FlatStore::Open(pool.get(), TierOptions());
  for (int gen = 0; gen < 3; gen++) {
    for (uint64_t k = 0; k < 400; k += 11) {
      std::string v;
      const uint64_t key = k + static_cast<uint64_t>(gen) * 1000;
      ASSERT_TRUE(store->Get(key, &v)) << key;
      EXPECT_EQ(v, ValueFor(k, static_cast<uint64_t>(gen), 46));
    }
  }
  ScanRows rows, full;
  ASSERT_EQ(store->Scan(0, 1200, &rows),
            store->ScanFullIteration(0, 1200, &full));
  EXPECT_EQ(rows, full);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
