// End-to-end tests of the server runtime: simulated clients drive engines
// over FlatRPC; completion counts, data integrity, latency sanity, mixed
// workloads, and engine interchangeability under the identical setup.

#include <gtest/gtest.h>

#include "core/server.h"

namespace flatstore {
namespace core {
namespace {

struct Harness {
  explicit Harness(IndexKind kind = IndexKind::kHash, int cores = 4) {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pool = std::make_unique<pm::PmPool>(o);
    FlatStoreOptions fo;
    fo.num_cores = cores;
    fo.group_size = cores;
    fo.index = kind;
    store = FlatStore::Create(pool.get(), fo);
    adapter = std::make_unique<FlatStoreAdapter>(store.get());
  }
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<FlatStore> store;
  std::unique_ptr<FlatStoreAdapter> adapter;
};

TEST(Server, AllOpsCompleteAndLand) {
  Harness h;
  ServerConfig cfg;
  cfg.num_conns = 4;
  cfg.client_threads = 1;
  cfg.ops_per_conn = 2000;
  cfg.workload.key_space = 4096;
  cfg.workload.value_len = 64;
  ServerResult r = RunServer(h.adapter.get(), cfg);
  EXPECT_EQ(r.ops, 8000u);
  EXPECT_GT(r.sim_ns, 0u);
  EXPECT_GT(r.mops, 0.0);
  EXPECT_EQ(r.latency.count(), 8000u);
  // All puts landed: every key that was put is readable with 64 B.
  EXPECT_GT(h.store->Size(), 1000u);
  EXPECT_LE(h.store->Size(), 4096u);
}

TEST(Server, LatencyIsAtLeastOneRoundTrip) {
  Harness h;
  ServerConfig cfg;
  cfg.num_conns = 1;
  cfg.client_threads = 1;
  cfg.client_window = 1;
  cfg.ops_per_conn = 500;
  cfg.workload.key_space = 1024;
  ServerResult r = RunServer(h.adapter.get(), cfg);
  EXPECT_GE(r.latency.min(), 2 * vt::kNetOneWay);
  EXPECT_LT(r.latency.Percentile(99), 100000u) << "latency blew up";
}

TEST(Server, MixedWorkloadWithGetsAndDeletes) {
  Harness h;
  ServerConfig cfg;
  cfg.num_conns = 4;
  cfg.ops_per_conn = 2500;
  cfg.workload.key_space = 2048;
  cfg.workload.get_ratio = 0.5;
  cfg.workload.delete_ratio = 0.05;
  cfg.workload.dist = workload::KeyDist::kZipfian;
  ServerResult r = RunServer(h.adapter.get(), cfg);
  EXPECT_EQ(r.ops, 10000u);
}

TEST(Server, EtcWorkloadRuns) {
  Harness h;
  ServerConfig cfg;
  cfg.num_conns = 4;
  cfg.ops_per_conn = 2000;
  cfg.workload.key_space = 1 << 16;
  cfg.workload.etc_values = true;
  cfg.workload.dist = workload::KeyDist::kZipfian;
  cfg.workload.get_ratio = 0.5;
  ServerResult r = RunServer(h.adapter.get(), cfg);
  EXPECT_EQ(r.ops, 8000u);
}

TEST(Server, MasstreeEngineWorksToo) {
  Harness h(IndexKind::kMasstree, 2);
  ServerConfig cfg;
  cfg.num_conns = 2;
  cfg.ops_per_conn = 1500;
  cfg.workload.key_space = 2048;
  ServerResult r = RunServer(h.adapter.get(), cfg);
  EXPECT_EQ(r.ops, 3000u);
  EXPECT_GT(h.store->Size(), 500u);
}

TEST(Server, BaselineEngineUnderSameHarness) {
  pm::PmPool::Options o;
  o.size = 512ull << 20;
  pm::PmPool pool(o);
  BaselineStore::Options bo;
  bo.num_cores = 4;
  bo.kind = BaselineKind::kCceh;
  auto store = BaselineStore::Create(&pool, bo);
  BaselineAdapter adapter(store.get());
  ServerConfig cfg;
  cfg.num_conns = 4;
  cfg.ops_per_conn = 2000;
  cfg.workload.key_space = 4096;
  ServerResult r = RunServer(&adapter, cfg);
  EXPECT_EQ(r.ops, 8000u);
  EXPECT_GT(r.mops, 0.0);
}

TEST(Server, PipelinedHbBeatsNoBatchingInSimTime) {
  // The core performance claim, end to end: with many connections posting
  // concurrently, pipelined HB yields higher simulated throughput than
  // per-request persists (kNone).
  auto run = [](batch::BatchMode mode) {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pm::PmDevice device;
    o.device = &device;
    pm::PmPool pool(o);
    FlatStoreOptions fo;
    fo.num_cores = 4;
    fo.group_size = 4;
    fo.batch_mode = mode;
    auto store = FlatStore::Create(&pool, fo);
    FlatStoreAdapter adapter(store.get());
    ServerConfig cfg;
    cfg.num_conns = 8;
    cfg.client_threads = 2;
    cfg.ops_per_conn = 3000;
    cfg.workload.key_space = 1 << 16;
    cfg.workload.value_len = 64;
    return RunServer(&adapter, cfg).mops;
  };
  double pipelined = run(batch::BatchMode::kPipelinedHB);
  double none = run(batch::BatchMode::kNone);
  EXPECT_GT(pipelined, none * 1.2)
      << "pipelined=" << pipelined << " none=" << none;
}

TEST(Server, GetAfterPutSameKeySeesTheWrite) {
  // The conflict queue's purpose (paper 3.3 Discussion): a Get posted
  // after a Put on the same key must not be reordered ahead of it. With a
  // single connection and one hot key, every Get must observe the
  // preceding Put (responses are FIFO per connection).
  Harness h;
  ServerConfig cfg;
  cfg.num_conns = 1;
  cfg.client_window = 8;  // Put and Get in flight together
  cfg.ops_per_conn = 2000;
  cfg.workload.key_space = 1;  // a single, maximally hot key
  cfg.workload.value_len = 32;
  cfg.workload.get_ratio = 0.5;
  ServerResult r = RunServer(h.adapter.get(), cfg);
  EXPECT_EQ(r.ops, 2000u);
  // After the run the key must hold the last Put's value (32 bytes).
  std::string v;
  ASSERT_TRUE(h.store->Get(0, &v));
  EXPECT_EQ(v.size(), 32u);
}

TEST(Server, DeterministicAcrossRuns) {
  // The co-simulation must be bit-for-bit repeatable for a given seed.
  auto run = [] {
    Harness h;
    ServerConfig cfg;
    cfg.num_conns = 8;
    cfg.ops_per_conn = 1500;
    cfg.workload.key_space = 4096;
    cfg.workload.dist = workload::KeyDist::kZipfian;
    return RunServer(h.adapter.get(), cfg);
  };
  ServerResult a = run();
  ServerResult b = run();
  EXPECT_EQ(a.sim_ns, b.sim_ns);
  EXPECT_EQ(a.latency.Percentile(99), b.latency.Percentile(99));
}

TEST(Server, PreloadPopulatesKeys) {
  Harness h;
  workload::Config w;
  w.key_space = 1000;
  w.value_len = 32;
  Preload(h.adapter.get(), w, 1000);
  EXPECT_EQ(h.store->Size(), 1000u);
  std::string v;
  EXPECT_TRUE(h.store->Get(999, &v));
  EXPECT_EQ(v.size(), 32u);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
