// Tests of the compacted log: entry encode/decode bit layout, OpLog batch
// append (flush counts, padding, tail records, rollover), the chunk
// registry, the chunk reader's padding-skip rule, and tail recovery after
// crashes.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "log/layout.h"
#include "log/log_entry.h"
#include "log/log_reader.h"
#include "common/random.h"
#include "log/oplog.h"

namespace flatstore {
namespace log {
namespace {

TEST(LogEntry, PtrEntryRoundTrip) {
  uint8_t buf[kPtrEntrySize];
  uint32_t len = EncodePutPtr(buf, 0xDEADBEEFCAFEull, 77, 0x123400);
  EXPECT_EQ(len, kPtrEntrySize);
  DecodedEntry e;
  ASSERT_TRUE(DecodeEntry(buf, sizeof(buf), &e));
  EXPECT_EQ(e.op, OpType::kPut);
  EXPECT_FALSE(e.embedded);
  EXPECT_EQ(e.version, 77u);
  EXPECT_EQ(e.key, 0xDEADBEEFCAFEull);
  EXPECT_EQ(e.ptr, 0x123400u);
  EXPECT_EQ(e.entry_len, kPtrEntrySize);
}

TEST(LogEntry, ValueEntryRoundTrip) {
  uint8_t buf[kMaxEntrySize];
  uint8_t value[256];
  for (int i = 0; i < 256; i++) value[i] = static_cast<uint8_t>(i);
  for (uint32_t vlen : {1u, 8u, 100u, 255u, 256u}) {
    uint32_t len = EncodePutValue(buf, 42, 3, value, vlen);
    EXPECT_EQ(len, kValueEntryHeader + vlen);
    DecodedEntry e;
    ASSERT_TRUE(DecodeEntry(buf, sizeof(buf), &e));
    EXPECT_TRUE(e.embedded);
    EXPECT_EQ(e.value_len, vlen);
    EXPECT_EQ(std::memcmp(e.value, value, vlen), 0);
  }
}

TEST(LogEntry, DeleteTombstoneCarriesCoveredSeq) {
  uint8_t buf[kPtrEntrySize];
  EncodeDelete(buf, 5, 9, 31337);
  DecodedEntry e;
  ASSERT_TRUE(DecodeEntry(buf, sizeof(buf), &e));
  EXPECT_EQ(e.op, OpType::kDelete);
  EXPECT_EQ(e.ptr, 31337u);  // covered sequence, not shifted
  EXPECT_EQ(e.version, 9u);
}

TEST(LogEntry, PaperBitOffsets) {
  // Fig. 3: Op at bit 0 (2b), Emd at bit 2, Version at [4,24), Key at
  // byte 3, Ptr at byte 11.
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 0x1122334455667788ull, 0xABCDE, 0xAABBCCDD00ull << 8);
  EXPECT_EQ(buf[0] & 0x3, 1);          // kPut
  EXPECT_EQ((buf[0] >> 2) & 0x3, 0);   // not embedded
  uint32_t version = (static_cast<uint32_t>(buf[0]) >> 4) |
                     (static_cast<uint32_t>(buf[1]) << 4) |
                     (static_cast<uint32_t>(buf[2]) << 12);
  EXPECT_EQ(version, 0xABCDEu);
  uint64_t key;
  std::memcpy(&key, buf + 3, 8);
  EXPECT_EQ(key, 0x1122334455667788ull);
}

TEST(LogEntry, VersionWraps20Bits) {
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 1, (1u << 20) | 5, 0x100);  // version overflows
  DecodedEntry e;
  ASSERT_TRUE(DecodeEntry(buf, sizeof(buf), &e));
  EXPECT_EQ(e.version, 5u);
}

TEST(LogEntry, ZeroBytesDoNotDecode) {
  uint8_t buf[kPtrEntrySize] = {};
  DecodedEntry e;
  EXPECT_FALSE(DecodeEntry(buf, sizeof(buf), &e));
}

TEST(LogEntry, SixteenEntriesSpanFourLines) {
  // The headline compaction claim: 16 ptr-based entries = 256 B = 4 lines
  // (vs. 16 lines if entries were line-sized).
  EXPECT_EQ(16 * kPtrEntrySize, 256u);
}

TEST(PackedIndexValue, RoundTrip) {
  uint64_t p = PackIndexValue(0x123456789ull, 0xFFFFF);
  EXPECT_EQ(UnpackOffset(p), 0x123456789ull);
  EXPECT_EQ(UnpackVersion(p), 0xFFFFFu);
}

// ---- OpLog fixture ------------------------------------------------------

class OpLogTest : public ::testing::Test {
 protected:
  OpLogTest() {
    pm::PmPool::Options o;
    o.size = 128ull << 20;
    o.crash_tracking = true;
    pool_ = std::make_unique<pm::PmPool>(o);
    root_ = std::make_unique<RootArea>(pool_.get());
    root_->Format(/*num_cores=*/2);
    alloc_ = std::make_unique<alloc::LazyAllocator>(
        pool_.get(), alloc::kChunkSize, o.size - alloc::kChunkSize, 2);
    log_ = std::make_unique<OpLog>(root_.get(), alloc_.get(), 0);
  }

  // Appends `n` ptr-based entries as one batch; returns their offsets.
  std::vector<uint64_t> AppendPtrBatch(int n, uint32_t version = 1) {
    std::vector<std::vector<uint8_t>> bufs(n);
    std::vector<OpLog::EntryRef> refs(n);
    for (int i = 0; i < n; i++) {
      bufs[i].resize(kPtrEntrySize);
      EncodePutPtr(bufs[i].data(), next_key_++, version, 0x100u * 256);
      refs[i] = {bufs[i].data(), kPtrEntrySize};
    }
    std::vector<uint64_t> offs(n);
    EXPECT_TRUE(log_->AppendBatch(refs.data(), refs.size(), offs.data()));
    return offs;
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<RootArea> root_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  std::unique_ptr<OpLog> log_;
  uint64_t next_key_ = 1;
};

TEST_F(OpLogTest, RootAreaFormatAndDetect) {
  EXPECT_TRUE(root_->IsFormatted());
  EXPECT_EQ(root_->superblock()->num_cores, 2u);
}

TEST_F(OpLogTest, BatchOf16EntriesFlushesFourLinesPlusTail) {
  AppendPtrBatch(1);  // allocate the first chunk out of the way
  auto before = pool_->stats().Get();
  AppendPtrBatch(16);
  auto d = pm::Delta(before, pool_->stats().Get());
  // 16 x 16 B entries, batch-aligned: 4 data lines + 1 tail line.
  EXPECT_EQ(d.lines_flushed, 5u);
  EXPECT_EQ(d.fences, 2u);  // entries fence + tail fence
}

TEST_F(OpLogTest, BatchingAmortizesFlushes) {
  AppendPtrBatch(1);
  auto before = pool_->stats().Get();
  for (int i = 0; i < 16; i++) AppendPtrBatch(1);  // unbatched
  uint64_t unbatched = pm::Delta(before, pool_->stats().Get()).lines_flushed;
  before = pool_->stats().Get();
  AppendPtrBatch(16);  // batched
  uint64_t batched = pm::Delta(before, pool_->stats().Get()).lines_flushed;
  EXPECT_EQ(unbatched, 32u);  // 1 entry line + 1 tail line each
  EXPECT_EQ(batched, 5u);
}

TEST_F(OpLogTest, PaddingKeepsBatchesOnDistinctLines) {
  auto offs1 = AppendPtrBatch(3);  // 48 B: not line aligned
  auto offs2 = AppendPtrBatch(1);
  EXPECT_EQ(offs2[0] % kCachelineSize, 0u);
  EXPECT_NE(CachelineIndex(offs2[0]),
            CachelineIndex(offs1.back() + kPtrEntrySize - 1));
}

TEST_F(OpLogTest, UnpaddedBatchesShareLines) {
  OpLog::Options o;
  o.pad_batches = false;
  OpLog raw(root_.get(), alloc_.get(), 1, o);
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 1, 1, 0x100u * 256);
  OpLog::EntryRef ref{buf, kPtrEntrySize};
  uint64_t off1, off2;
  ASSERT_TRUE(raw.AppendBatch(&ref, 1, &off1));
  ASSERT_TRUE(raw.AppendBatch(&ref, 1, &off2));
  EXPECT_EQ(off2, off1 + kPtrEntrySize);  // back to back, same line
}

TEST_F(OpLogTest, TailRecordsRotateAcrossLines) {
  AppendPtrBatch(1);
  AppendPtrBatch(1);
  uint64_t seq;
  uint64_t tail = root_->ReadTail(0, &seq);
  EXPECT_EQ(seq, log_->tail_seq());
  EXPECT_EQ(tail, log_->tail());
  // The two tail records landed on different cachelines.
  auto* area = root_->tails(0);
  EXPECT_EQ(area->lines[1].slot.seq, 1u);
  EXPECT_EQ(area->lines[2].slot.seq, 2u);
}

TEST_F(OpLogTest, ReaderIteratesBatchesAcrossPadding) {
  AppendPtrBatch(3);
  AppendPtrBatch(5);
  AppendPtrBatch(1);
  auto usage = log_->UsageSnapshot();
  ASSERT_EQ(usage.size(), 1u);
  uint64_t chunk = usage.begin()->first;
  LogChunkReader reader(pool_.get(), chunk, log_->CommittedBytes(chunk));
  DecodedEntry e;
  uint64_t off;
  uint64_t keys_seen = 0;
  while (reader.Next(&e, &off)) {
    EXPECT_EQ(e.key, ++keys_seen);
  }
  EXPECT_EQ(keys_seen, 9u);
}

TEST_F(OpLogTest, ChunkRolloverSealsAndRegisters) {
  // Fill more than one chunk with large embedded entries.
  std::vector<uint8_t> value(256, 0xAB);
  uint8_t buf[kMaxEntrySize];
  const int entries_per_chunk =
      static_cast<int>(kLogDataBytes / (kValueEntryHeader + 256 + 52)) + 16;
  for (int i = 0; i < entries_per_chunk; i++) {
    uint32_t len = EncodePutValue(buf, static_cast<uint64_t>(i), 1,
                                  value.data(), 256);
    OpLog::EntryRef ref{buf, len};
    uint64_t off;
    ASSERT_TRUE(log_->AppendBatch(&ref, 1, &off));
  }
  auto usage = log_->UsageSnapshot();
  ASSERT_EQ(usage.size(), 2u);
  int sealed = 0;
  for (const auto& [off, u] : usage) sealed += u.sealed ? 1 : 0;
  EXPECT_EQ(sealed, 1);
  // Both chunks registered.
  int registered = 0;
  for (uint64_t s = 0; s < kRegistrySlots; s++) {
    if (root_->registry()[s].chunk_off != 0) registered++;
  }
  EXPECT_EQ(registered, 2);
  // Reading both chunks yields every key exactly once.
  uint64_t total = 0;
  for (const auto& [off, u] : usage) {
    LogChunkReader reader(pool_.get(), off, log_->CommittedBytes(off));
    DecodedEntry e;
    uint64_t eo;
    while (reader.Next(&e, &eo)) total++;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(entries_per_chunk));
}

TEST_F(OpLogTest, NoteDeadDrivesVictimSelection) {
  auto offs = AppendPtrBatch(16);
  // Fill & seal the chunk by rolling to a new one.
  std::vector<uint8_t> value(256, 1);
  uint8_t buf[kMaxEntrySize];
  while (log_->UsageSnapshot().size() < 2) {
    uint32_t len = EncodePutValue(buf, 999999, 1, value.data(), 256);
    OpLog::EntryRef ref{buf, len};
    uint64_t off;
    ASSERT_TRUE(log_->AppendBatch(&ref, 1, &off));
  }
  EXPECT_TRUE(log_->PickVictims(0.5, 8).empty());  // everything live
  auto usage = log_->UsageSnapshot();
  uint64_t first_chunk = usage.begin()->first;
  uint32_t total = usage.begin()->second.total;
  for (uint32_t i = 0; i < total; i++) {
    log_->NoteDead(first_chunk + kLogDataOff + i);  // any offset in chunk
  }
  auto victims = log_->PickVictims(0.5, 8);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], first_chunk);
}

TEST_F(OpLogTest, ReleaseChunkUnregistersAndFrees) {
  AppendPtrBatch(4);
  // Roll over to seal chunk 1.
  std::vector<uint8_t> value(256, 1);
  uint8_t buf[kMaxEntrySize];
  while (log_->UsageSnapshot().size() < 2) {
    uint32_t len = EncodePutValue(buf, 7, 1, value.data(), 256);
    OpLog::EntryRef ref{buf, len};
    uint64_t off;
    ASSERT_TRUE(log_->AppendBatch(&ref, 1, &off));
  }
  uint64_t victim = log_->UsageSnapshot().begin()->first;
  uint64_t free_before = alloc_->free_chunks();
  log_->ReleaseChunk(victim);
  EXPECT_EQ(alloc_->free_chunks(), free_before + 1);
  EXPECT_EQ(log_->UsageSnapshot().size(), 1u);
}

TEST_F(OpLogTest, TailSurvivesCrash) {
  AppendPtrBatch(5);
  AppendPtrBatch(3);
  uint64_t committed_tail = log_->tail();
  uint64_t committed_seq = log_->tail_seq();
  pool_->SimulateCrash();
  uint64_t seq;
  EXPECT_EQ(root_->ReadTail(0, &seq), committed_tail);
  EXPECT_EQ(seq, committed_seq);
}

TEST_F(OpLogTest, CrashMidBatchKeepsOldTail) {
  AppendPtrBatch(4);
  uint64_t old_tail = log_->tail();
  // Cut power after 1 more flush: the next batch's entries may land but
  // the tail record must not.
  pool_->SetFlushBudget(1);
  AppendPtrBatch(8);
  pool_->SimulateCrash();
  uint64_t seq;
  EXPECT_EQ(root_->ReadTail(0, &seq), old_tail);
  // Replay to the recovered tail sees exactly the first batch.
  uint64_t chunk = AlignDown(old_tail, alloc::kChunkSize);
  LogChunkReader reader(pool_.get(), chunk,
                        old_tail - (chunk + kLogDataOff));
  DecodedEntry e;
  uint64_t off;
  int n = 0;
  while (reader.Next(&e, &off)) n++;
  EXPECT_EQ(n, 4);
}

TEST_F(OpLogTest, CleanerAppendCommitsViaUsedFinal) {
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 77, 2, 0x200u * 256);
  OpLog::EntryRef ref{buf, kPtrEntrySize};
  uint64_t off;
  ASSERT_TRUE(log_->CleanerAppendBatch(&ref, 1, &off));
  // Tail untouched; the cleaner chunk is registered and carries its
  // committed extent in used_final.
  EXPECT_EQ(log_->tail(), 0u);
  auto usage = log_->UsageSnapshot();
  ASSERT_EQ(usage.size(), 1u);
  uint64_t chunk = usage.begin()->first;
  EXPECT_TRUE(usage.begin()->second.cleaner);
  EXPECT_EQ(log_->CommittedBytes(chunk), kPtrEntrySize);
  // Readable after a crash (used_final was persisted).
  pool_->SimulateCrash();
  LogChunkReader reader(pool_.get(), chunk, kPtrEntrySize);
  DecodedEntry e;
  uint64_t eo;
  ASSERT_TRUE(reader.Next(&e, &eo));
  EXPECT_EQ(e.key, 77u);
}

TEST_F(OpLogTest, ReusedChunkDoesNotResurrectStaleEntries) {
  // Incarnation A fills a full cacheline of entries, then the chunk is
  // freed and reused by incarnation B, which writes a single entry. After
  // a crash, replaying B's chunk must see exactly B's entry — A's stale
  // bytes in the padding gap must not decode (they are durable in the
  // shadow from A's persists!).
  auto offs_a = AppendPtrBatch(4);  // 64 B: exactly one line, persisted
  const uint64_t chunk = AlignDown(offs_a[0], alloc::kChunkSize);
  log_->ReleaseChunk(chunk);

  OpLog reincarnation(root_.get(), alloc_.get(), 0);
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 424242, 1, 0x100u * 256);
  OpLog::EntryRef ref{buf, kPtrEntrySize};
  uint64_t off;
  ASSERT_TRUE(reincarnation.AppendBatch(&ref, 1, &off));
  ASSERT_EQ(AlignDown(off, alloc::kChunkSize), chunk) << "chunk not reused";
  // Second batch: the padding gap between the two batches now lies inside
  // the committed range — exactly where A's stale bytes would sit.
  EncodePutPtr(buf, 424243, 1, 0x100u * 256);
  uint64_t off2;
  ASSERT_TRUE(reincarnation.AppendBatch(&ref, 1, &off2));

  pool_->SimulateCrash();
  uint64_t committed = reincarnation.tail() - (chunk + kLogDataOff);
  LogChunkReader reader(pool_.get(), chunk, committed);
  DecodedEntry e;
  uint64_t eo;
  int n = 0;
  while (reader.Next(&e, &eo)) {
    EXPECT_TRUE(e.key == 424242u || e.key == 424243u)
        << "stale entry resurrected: key " << e.key;
    n++;
  }
  EXPECT_EQ(n, 2);
}

TEST_F(OpLogTest, VictimSelectionSparesTheTailChunk) {
  // Forced rotation seals the active chunk while the durable tail record
  // still points into it. Even fully dead it must not become a victim:
  // retiring it would leave a crash-time tail referencing a freed chunk.
  auto offs = AppendPtrBatch(4);
  const uint64_t chunk = AlignDown(offs[0], alloc::kChunkSize);
  for (uint64_t off : offs) log_->NoteDead(off);
  log_->SealActiveChunk();
  EXPECT_TRUE(log_->PickVictims(1.0, 8).empty());
  // Once the tail moves to a fresh chunk the old one is fair game.
  AppendPtrBatch(1);
  auto victims = log_->PickVictims(1.0, 8);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], chunk);
}

TEST_F(OpLogTest, TornTailSlotFailsCheckAndFallsBack) {
  AppendPtrBatch(4);
  const uint64_t good_tail = log_->tail();
  const uint64_t good_seq = log_->tail_seq();
  AppendPtrBatch(2);
  // Tear the newest tail record the way an 8-byte-atomic medium can: its
  // seq word persisted but its tail word did not. The check word no
  // longer validates, so recovery must fall back to the previous slot.
  auto* area = root_->tails(0);
  TailSlot& newest = area->lines[2].slot;
  ASSERT_EQ(newest.seq, 2u);
  newest.tail = 0;  // torn away
  uint64_t seq;
  EXPECT_EQ(root_->ReadTail(0, &seq), good_tail);
  EXPECT_EQ(seq, good_seq);
}

TEST_F(OpLogTest, GarbageTailSlotsNeverValidate) {
  AppendPtrBatch(3);
  const uint64_t good_tail = log_->tail();
  auto* area = root_->tails(0);
  // A slot full of stale garbage with a huge seq must lose to the honest
  // record: without the check word it would hijack recovery.
  TailSlot& junk = area->lines[5].slot;
  junk.seq = ~0ull;
  junk.tail = 0xDEAD000;
  junk.check = 12345;  // not TailCheck(seq, tail)
  uint64_t seq;
  EXPECT_EQ(root_->ReadTail(0, &seq), good_tail);
  EXPECT_EQ(seq, 1u);
}

TEST_F(OpLogTest, ProvisionalRegistryRecordIsScrubbedAndSkipped) {
  auto offs = AppendPtrBatch(2);  // one real, committed chunk
  const uint64_t real_chunk = AlignDown(offs[0], alloc::kChunkSize);
  // Forge the crash state RegisterChunk's step (1) leaves behind: the
  // slot is claimed provisional but the final offset was never stored.
  ChunkRecord* recs = root_->registry();
  uint64_t slot = kRegistrySlots;
  for (uint64_t s = 0; s < kRegistrySlots; s++) {
    if (recs[s].chunk_off == 0) {
      slot = s;
      break;
    }
  }
  ASSERT_LT(slot, kRegistrySlots);
  const uint64_t ghost_chunk = real_chunk + alloc::kChunkSize;
  recs[slot].chunk_off = ghost_chunk | kChunkProvisional;
  recs[slot].core = 99;  // garbage — never durably committed
  recs[slot].seq = 7;

  // The mirror must not believe in the ghost chunk...
  root_->RebuildMirror();
  int core;
  uint32_t cseq;
  EXPECT_FALSE(root_->ChunkInfo(ghost_chunk, &core, &cseq));
  EXPECT_TRUE(root_->ChunkInfo(real_chunk, &core, &cseq));
  // ...and the scrub frees exactly the forged slot.
  EXPECT_EQ(root_->ScrubProvisionalRecords(), 1u);
  EXPECT_EQ(recs[slot].chunk_off, 0u);
  EXPECT_EQ(root_->ScrubProvisionalRecords(), 0u);
  EXPECT_TRUE(root_->ChunkInfo(real_chunk, &core, &cseq));
}

TEST_F(OpLogTest, AdoptRecoveredStateResumesAppend) {
  AppendPtrBatch(5);
  uint64_t tail = log_->tail();
  auto usage = log_->UsageSnapshot();
  // Build a fresh OpLog as recovery would.
  OpLog recovered(root_.get(), alloc_.get(), 0);
  recovered.AdoptRecoveredState(tail, log_->tail_seq(), usage);
  EXPECT_EQ(recovered.tail(), tail);
  // Appending continues in the same chunk, after the old tail.
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 1234, 1, 0x100u * 256);
  OpLog::EntryRef ref{buf, kPtrEntrySize};
  uint64_t off;
  ASSERT_TRUE(recovered.AppendBatch(&ref, 1, &off));
  EXPECT_GT(off, tail);
  EXPECT_EQ(AlignDown(off, alloc::kChunkSize),
            AlignDown(tail, alloc::kChunkSize));
}

TEST(LogEntryFuzz, RandomBytesNeverMisbehave) {
  // DecodeEntry over random buffers: must never claim an entry longer
  // than the readable window, and successful decodes must be
  // re-encodable to identical semantics.
  Rng rng(0xF122);
  uint8_t buf[kMaxEntrySize + 8];
  for (int round = 0; round < 20000; round++) {
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    const uint64_t window = 1 + rng.Uniform(sizeof(buf));
    DecodedEntry e;
    if (!DecodeEntry(buf, window, &e)) continue;
    ASSERT_LE(e.entry_len, window);
    ASSERT_TRUE(e.op == OpType::kPut || e.op == OpType::kDelete ||
                e.op == OpType::kTxnCommit);
    if (e.op == OpType::kTxnCommit) {
      // Commit records are fixed-size and never carry an inline value.
      ASSERT_EQ(e.entry_len, kPtrEntrySize);
      ASSERT_FALSE(e.embedded);
    }
    if (e.embedded) {
      ASSERT_GE(e.value_len, 1u);
      ASSERT_LE(e.value_len, kMaxInlineValue);
      ASSERT_EQ(e.value, buf + 12);
    }
  }
}

TEST(LogReaderFuzz, RandomChunkContentTerminates) {
  // A reader over arbitrary bytes must terminate and never report an
  // entry beyond the committed window.
  pm::PmPool::Options o;
  o.size = 8ull << 20;
  pm::PmPool pool(o);
  Rng rng(0x5EED);
  auto* data = static_cast<uint8_t*>(pool.At(kLogDataOff));
  for (int round = 0; round < 200; round++) {
    const uint64_t committed = rng.Uniform(64 * 1024);
    for (uint64_t i = 0; i < committed; i++) {
      data[i] = static_cast<uint8_t>(rng.Next());
    }
    LogChunkReader reader(&pool, 0, committed);
    DecodedEntry e;
    uint64_t off;
    uint64_t entries = 0;
    while (reader.Next(&e, &off)) {
      ASSERT_GE(off, kLogDataOff);
      ASSERT_LE(off - kLogDataOff + e.entry_len, committed);
      entries++;
      ASSERT_LT(entries, committed + 1) << "reader failed to terminate";
    }
  }
}

}  // namespace
}  // namespace log
}  // namespace flatstore
