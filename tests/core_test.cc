// Integration tests of the FlatStore engine and the baseline engines:
// CRUD semantics across all index kinds, inline vs out-of-log values, the
// conflict queue, flush accounting (the paper's 3-flush Put and N+2 batch
// claims), space reclamation on overwrite, scans, and the async protocol
// under real threads.
// Crash recovery has its own file (recovery_test.cc).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/baseline.h"
#include "core/flatstore.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, size_t len) {
  std::string v(len, char('a' + key % 26));
  // Stamp the key into the value so cross-key corruption is detectable.
  for (size_t i = 0; i + 8 <= len && i < 64; i += 8) {
    std::memcpy(&v[i], &key, 8);
  }
  return v;
}

class FlatStoreTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  FlatStoreTest() {
    pm::PmPool::Options o;
    o.size = 256ull << 20;
    pool_ = std::make_unique<pm::PmPool>(o);
    FlatStoreOptions fo;
    fo.num_cores = 4;
    fo.group_size = 4;
    fo.index = GetParam();
    store_ = FlatStore::Create(pool_.get(), fo);
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<FlatStore> store_;
};

TEST_P(FlatStoreTest, PutGetRoundTrip) {
  store_->Put(1, "hello");
  std::string v;
  ASSERT_TRUE(store_->Get(1, &v));
  EXPECT_EQ(v, "hello");
  EXPECT_FALSE(store_->Get(2, &v));
  EXPECT_EQ(store_->Size(), 1u);
}

TEST_P(FlatStoreTest, OverwriteReturnsLatest) {
  store_->Put(7, "first");
  store_->Put(7, "second");
  store_->Put(7, "third");
  std::string v;
  ASSERT_TRUE(store_->Get(7, &v));
  EXPECT_EQ(v, "third");
  EXPECT_EQ(store_->Size(), 1u);
}

TEST_P(FlatStoreTest, DeleteRemovesAndReportsMiss) {
  store_->Put(5, "x");
  EXPECT_TRUE(store_->Delete(5));
  std::string v;
  EXPECT_FALSE(store_->Get(5, &v));
  EXPECT_FALSE(store_->Delete(5));
  EXPECT_EQ(store_->Size(), 0u);
}

TEST_P(FlatStoreTest, PutAfterDeleteWorks) {
  store_->Put(5, "x");
  store_->Delete(5);
  store_->Put(5, "y");
  std::string v;
  ASSERT_TRUE(store_->Get(5, &v));
  EXPECT_EQ(v, "y");
}

TEST_P(FlatStoreTest, ValueSizesAcrossInlineBoundary) {
  // 1 B .. 256 B go into the log; larger go through the allocator.
  for (size_t len : {1u, 8u, 255u, 256u, 257u, 300u, 1024u, 4096u, 100000u}) {
    uint64_t key = 1000 + len;
    std::string val = ValueFor(key, len);
    store_->Put(key, val);
    std::string got;
    ASSERT_TRUE(store_->Get(key, &got)) << len;
    ASSERT_EQ(got, val) << len;
  }
}

TEST_P(FlatStoreTest, ManyKeysAllCores) {
  constexpr uint64_t kN = 20000;
  for (uint64_t k = 0; k < kN; k++) store_->Put(k, ValueFor(k, 24));
  EXPECT_EQ(store_->Size(), kN);
  for (uint64_t k = 0; k < kN; k += 7) {
    std::string v;
    ASSERT_TRUE(store_->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 24));
  }
}

TEST_P(FlatStoreTest, OverwritesFreeOldLargeBlocks) {
  // 100 overwrites of a 1 KB value must not accumulate 100 blocks.
  for (int i = 0; i < 100; i++) store_->Put(9, ValueFor(9, 1024));
  // One live block (plus log chunks + index-free space), far below 100 KB
  // of leaked blocks.
  uint64_t value_bytes = 0;
  // allocated_bytes counts blocks + raw (log) chunks; isolate blocks by
  // checking the 1.5 KB class usage indirectly: total allocated bytes
  // minus raw chunks must be ~one block.
  uint64_t raw = 0;
  for (auto& [off, u] :
       store_->LogForCore(store_->CoreForKey(9))->UsageSnapshot()) {
    (void)off;
    (void)u;
    raw += alloc::kChunkSize;
  }
  // Sum raw chunks across all cores.
  raw = 0;
  for (int c = 0; c < 4; c++) {
    raw += store_->LogForCore(c)->UsageSnapshot().size() * alloc::kChunkSize;
  }
  value_bytes = store_->allocator()->allocated_bytes() - raw;
  EXPECT_LE(value_bytes, 4096u);
}

TEST_P(FlatStoreTest, ConflictQueueOrdersSameKeyWrites) {
  const uint64_t key = 42;
  const int core = store_->CoreForKey(key);
  FlatStore::OpHandle h1, h2, h3;
  // Same-key writes pipeline (versions chain); Gets must observe KeyBusy
  // until the chain drains — that is the paper's reordering protection.
  ASSERT_EQ(store_->BeginPut(core, key, "aa", 2, &h1), OpStatus::kOk);
  ASSERT_EQ(store_->BeginPut(core, key, "bb", 2, &h2), OpStatus::kOk);
  ASSERT_EQ(store_->BeginPut(core, key, "cc", 2, &h3), OpStatus::kOk);
  EXPECT_TRUE(store_->KeyBusy(core, key));
  store_->Pump(core);
  EXPECT_EQ(store_->Drain(core, SIZE_MAX, nullptr), 3u);
  EXPECT_FALSE(store_->KeyBusy(core, key));
  // FIFO drains applied the chain in order: the last write wins.
  std::string v;
  ASSERT_TRUE(store_->GetOnCore(core, key, &v));
  EXPECT_EQ(v, "cc");
  // Delete chained behind a put, then re-put: still coherent.
  ASSERT_EQ(store_->BeginPut(core, key, "dd", 2, &h1), OpStatus::kOk);
  ASSERT_EQ(store_->BeginDelete(core, key, &h2), OpStatus::kOk);
  store_->Pump(core);
  store_->Drain(core, SIZE_MAX, nullptr);
  EXPECT_FALSE(store_->GetOnCore(core, key, &v));
}

TEST_P(FlatStoreTest, AsyncProtocolMultiThreaded) {
  constexpr int kCores = 4;
  constexpr uint64_t kOpsPerCore = 3000;
  std::vector<std::thread> threads;
  for (int c = 0; c < kCores; c++) {
    threads.emplace_back([&, c] {
      vt::Clock clock;
      vt::ScopedClock bind(&clock);
      uint64_t issued = 0, done = 0, key_cursor = 0;
      while (done < kOpsPerCore) {
        while (issued < kOpsPerCore && store_->Inflight(c) < 32) {
          // Next key owned by this core.
          uint64_t key;
          do {
            key = key_cursor++;
          } while (store_->CoreForKey(key) != c);
          std::string v = ValueFor(key, 16);
          FlatStore::OpHandle h;
          OpStatus st = store_->BeginPut(c, key, v.data(),
                                         static_cast<uint32_t>(v.size()), &h);
          if (st != OpStatus::kOk) break;
          issued++;
        }
        store_->Pump(c);
        done += store_->Drain(c, SIZE_MAX, nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store_->Size(), kOpsPerCore * kCores);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FlatStoreTest,
                         ::testing::Values(IndexKind::kHash,
                                           IndexKind::kMasstree,
                                           IndexKind::kFastFairVolatile),
                         [](const ::testing::TestParamInfo<IndexKind>& i) {
                           switch (i.param) {
                             case IndexKind::kHash:
                               return "H";
                             case IndexKind::kMasstree:
                               return "M";
                             default:
                               return "FF";
                           }
                         });

// ---- non-parameterized engine behaviour ---------------------------------

TEST(FlatStoreFlushes, SmallPutCostsThreeFlushSites) {
  // Paper §3.2: an unbatched Put = record + log entry + tail pointer; for
  // inline values the record rides inside the entry, so only entry line +
  // tail line remain.
  pm::PmPool::Options o;
  o.size = 64ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  auto store = FlatStore::Create(&pool, fo);
  store->Put(1, "warmup");           // log chunk allocation out of the way
  store->Put(4, ValueFor(4, 512));   // 768-class value chunk, too
  auto before = pool.stats().Get();
  store->Put(2, "tiny");
  auto d = pm::Delta(before, pool.stats().Get());
  EXPECT_EQ(d.lines_flushed, 2u);  // entry line + tail line

  before = pool.stats().Get();
  store->Put(3, ValueFor(3, 512));  // out-of-log value
  d = pm::Delta(before, pool.stats().Get());
  // 512 B record = 9 lines (520 B incl. header), + entry + tail.
  EXPECT_EQ(d.lines_flushed, 9 + 2u);
}

TEST(FlatStoreFlushes, HorizontalBatchCostsNPlus2ForLargeValues) {
  // Paper §3.3: batching N ptr-based Puts reduces PM writes from 3N to
  // N + 2 "writes" (N records, one merged entry flush, one tail update).
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  auto store = FlatStore::Create(&pool, fo);
  // Warm up chunks on every core.
  for (uint64_t k = 0; k < 64; k++) store->Put(k, ValueFor(k, 300));

  // Stage 4 large-value puts on each core (16 total), then let core 0
  // lead one horizontal batch.
  auto before = pool.stats().Get();
  std::string val = ValueFor(99, 300);  // 300 B -> 512-class block
  uint64_t key = 1000;
  for (int c = 0; c < 4; c++) {
    for (int i = 0; i < 4; i++) {
      while (store->CoreForKey(key) != c) key++;
      FlatStore::OpHandle h;
      ASSERT_EQ(store->BeginPut(c, key, val.data(),
                                static_cast<uint32_t>(val.size()), &h),
                OpStatus::kOk);
      key++;
    }
  }
  store->Pump(0);  // leader steals all 16
  auto d = pm::Delta(before, pool.stats().Get());
  // Persist *calls*: 16 records + 1 entry sweep + 1 tail = N + 2.
  EXPECT_EQ(d.persist_calls, 16 + 2u);
  // Lines: 16 records x 5 lines (308 B) + 4 entry lines + 1 tail line.
  EXPECT_EQ(d.lines_flushed, 16 * 5 + 4 + 1u);
  for (int c = 0; c < 4; c++) store->Drain(c, SIZE_MAX, nullptr);
}

TEST(FlatStoreScan, OrderedScanThroughMasstree) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.index = IndexKind::kMasstree;
  auto store = FlatStore::Create(&pool, fo);
  for (uint64_t k = 0; k < 1000; k++) {
    store->Put(k * 2, ValueFor(k * 2, 16));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  EXPECT_EQ(store->Scan(100, 10, &out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].first, 100 + 2 * i);
    EXPECT_EQ(out[i].second, ValueFor(out[i].first, 16));
  }
}

TEST(FlatStoreRouting, KeysSpreadAcrossCores) {
  pm::PmPool::Options o;
  o.size = 64ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 8;
  fo.group_size = 4;
  auto store = FlatStore::Create(&pool, fo);
  std::vector<int> counts(8, 0);
  for (uint64_t k = 0; k < 80000; k++) counts[store->CoreForKey(k)]++;
  for (int c : counts) {
    EXPECT_GT(c, 80000 / 8 * 0.9);
    EXPECT_LT(c, 80000 / 8 * 1.1);
  }
}

// ---- baselines ------------------------------------------------------------

class BaselineTest : public ::testing::TestWithParam<BaselineKind> {
 protected:
  BaselineTest() {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pool_ = std::make_unique<pm::PmPool>(o);
    BaselineStore::Options bo;
    bo.num_cores = 4;
    bo.kind = GetParam();
    store_ = BaselineStore::Create(pool_.get(), bo);
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<BaselineStore> store_;
};

TEST_P(BaselineTest, CrudRoundTrip) {
  store_->Put(1, "alpha");
  store_->Put(2, ValueFor(2, 500));
  std::string v;
  ASSERT_TRUE(store_->Get(1, &v));
  EXPECT_EQ(v, "alpha");
  ASSERT_TRUE(store_->Get(2, &v));
  EXPECT_EQ(v, ValueFor(2, 500));
  store_->Put(1, "beta");
  ASSERT_TRUE(store_->Get(1, &v));
  EXPECT_EQ(v, "beta");
  EXPECT_TRUE(store_->Delete(1));
  EXPECT_FALSE(store_->Get(1, &v));
  EXPECT_EQ(store_->Size(), 1u);
}

TEST_P(BaselineTest, BulkLoadAndVerify) {
  for (uint64_t k = 0; k < 20000; k++) store_->Put(k, ValueFor(k, 32));
  EXPECT_EQ(store_->Size(), 20000u);
  for (uint64_t k = 0; k < 20000; k += 13) {
    std::string v;
    ASSERT_TRUE(store_->Get(k, &v));
    ASSERT_EQ(v, ValueFor(k, 32));
  }
}

TEST_P(BaselineTest, OverwriteFreesOldBlock) {
  store_->Put(9, ValueFor(9, 1024));
  const uint64_t baseline_bytes = store_->allocator()->allocated_bytes();
  for (int i = 0; i < 50; i++) store_->Put(9, ValueFor(9, 1024));
  // Old blocks are freed on overwrite: allocation growth stays a tiny
  // multiple of one block (index nodes may grow slightly).
  EXPECT_LE(store_->allocator()->allocated_bytes(),
            baseline_bytes + 8 * 1536);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineTest,
    ::testing::Values(BaselineKind::kCceh, BaselineKind::kLevelHashing,
                      BaselineKind::kFpTree, BaselineKind::kFastFair),
    [](const ::testing::TestParamInfo<BaselineKind>& i) {
      switch (i.param) {
        case BaselineKind::kCceh:
          return "CCEH";
        case BaselineKind::kLevelHashing:
          return "Level";
        case BaselineKind::kFpTree:
          return "FPTree";
        default:
          return "FastFair";
      }
    });

TEST(BaselineVsFlatStore, FlatStoreFlushesFewerLines) {
  // The headline comparison: same workload, strictly fewer flushed lines
  // for FlatStore (even unbatched, single core).
  auto run_flatstore = [] {
    pm::PmPool::Options o;
    o.size = 256ull << 20;
    pm::PmPool pool(o);
    FlatStoreOptions fo;
    fo.num_cores = 1;
    fo.group_size = 1;
    auto s = FlatStore::Create(&pool, fo);
    auto before = pool.stats().Get();
    for (uint64_t k = 0; k < 5000; k++) s->Put(k, ValueFor(k, 64));
    return pm::Delta(before, pool.stats().Get()).lines_flushed;
  };
  auto run_baseline = [](BaselineKind kind) {
    pm::PmPool::Options o;
    o.size = 256ull << 20;
    pm::PmPool pool(o);
    BaselineStore::Options bo;
    bo.num_cores = 1;
    bo.kind = kind;
    auto s = BaselineStore::Create(&pool, bo);
    auto before = pool.stats().Get();
    for (uint64_t k = 0; k < 5000; k++) s->Put(k, ValueFor(k, 64));
    return pm::Delta(before, pool.stats().Get()).lines_flushed;
  };
  uint64_t flat = run_flatstore();
  // Even without batching, FlatStore never flushes more lines than the
  // best hash baseline (the big win — batching — is asserted in
  // batch_test.cc and the Fig. 11 benchmark); tree baselines amplify
  // writes through shifting/splitting and lose outright.
  EXPECT_LE(flat, run_baseline(BaselineKind::kCceh) * 101 / 100);
  EXPECT_LT(flat * 3 / 2, run_baseline(BaselineKind::kFastFair));
}

}  // namespace
}  // namespace core
}  // namespace flatstore
