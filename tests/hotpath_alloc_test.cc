// Steady-state allocation test for the serving hot paths.
//
// The asynchronous protocol (BeginPut -> Pump -> Drain -> GetOnCore) must
// not touch the heap once warm: the HB engine batches through fixed
// per-core scratch arrays, the pending-op queue is a fixed ring, and the
// in-flight key table is a pre-sized open-addressed table. This binary
// overrides the global allocation functions to count every heap call and
// asserts the steady-state delta is zero.
//
// Known cold-path allocations stay out of the measured window: chunk
// rollover (a std::map insert in OpLog) is avoided by keeping the
// measured write volume far below one 4 MB chunk, and out-of-log values
// (> 256 B) are avoided by using inline-sized values.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/flatstore.h"
#include "net/flatrpc.h"
#include "net/shard_router.h"
#include "pm/pm_pool.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flatstore {
namespace core {
namespace {

TEST(HotPathAlloc, PutGetDrainCycleIsAllocationFree) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 4;
  auto store = FlatStore::Create(&pool, fo);

  constexpr uint64_t kKeys = 64;
  constexpr uint32_t kValueLen = 64;  // inline (<= 256 B): no block alloc
  uint8_t value[kValueLen];
  std::memset(value, 0x42, sizeof(value));

  std::vector<FlatStore::Completion> done;
  done.reserve(2 * batch::HbEngine::kPoolSlots);
  std::string read_value;
  read_value.reserve(512);

  auto cycle = [&] {
    for (uint64_t k = 0; k < kKeys; k++) {
      FlatStore::OpHandle h;
      ASSERT_EQ(store->BeginPut(0, k, value, kValueLen, &h), OpStatus::kOk);
    }
    store->Pump(0);
    done.clear();
    store->Drain(0, SIZE_MAX, &done);
    ASSERT_EQ(done.size(), kKeys);
    for (uint64_t k = 0; k < kKeys; k++) {
      ASSERT_TRUE(store->GetOnCore(0, k, &read_value));
      ASSERT_EQ(read_value.size(), kValueLen);
    }
  };

  // Warm-up: index insertions, CCEH growth, ring/table/scratch
  // high-water marks.
  for (int i = 0; i < 10; i++) cycle();

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; i++) cycle();
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "serving hot loop heap-allocated " << (after - before)
      << " times across 100 warm put/pump/drain/get cycles";
}

// The batched read pipeline: once the ReadResult strings reached their
// high-water capacity, repeated MultiGet batches (epoch pin, prefetch
// hints, probes, log/block reads) must not touch the heap — all per-batch
// state is stack-resident (kMaxReadBatch bounds it).
TEST(HotPathAlloc, MultiGetBatchIsAllocationFree) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 4;
  auto store = FlatStore::Create(&pool, fo);

  constexpr size_t kBatch = 32;
  std::string value(64, 'v');  // inline-sized
  for (uint64_t k = 0; k < kBatch; k++) store->Put(k, value);

  uint64_t keys[kBatch];
  for (size_t i = 0; i < kBatch; i++) {
    // Mix in absent keys: the kAbsent path must be alloc-free too.
    keys[i] = (i % 5 == 4) ? 1000 + i : i;
  }
  std::vector<ReadResult> results(kBatch);

  // Warm-up: result strings grow to their steady capacity.
  for (int i = 0; i < 10; i++) {
    store->MultiGetOnCore(0, keys, kBatch, results.data());
  }

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; i++) {
    store->MultiGetOnCore(0, keys, kBatch, results.data());
  }
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "MultiGet heap-allocated " << (after - before)
      << " times across 100 warm batches";
}

// The batched write pipeline: a warm MultiPutOnCore batch (version
// resolution with prefetch hints, batch encode, fused StageBatch, pump,
// batched drain) must not touch the heap — all per-batch state lives in
// stack arrays bounded by kMaxWriteBatch, and the drain's per-round
// scratch is likewise stack-resident.
TEST(HotPathAlloc, MultiPutBatchIsAllocationFree) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 4;
  auto store = FlatStore::Create(&pool, fo);

  constexpr size_t kBatch = kMaxWriteBatch;
  constexpr uint32_t kValueLen = 48;  // inline: no out-of-log block alloc
  uint8_t value[kValueLen];
  std::memset(value, 0x5a, sizeof(value));

  WriteOp ops[kBatch];
  OpStatus statuses[kBatch];
  for (size_t i = 0; i < kBatch; i++) {
    ops[i] = {static_cast<uint64_t>(i), value, kValueLen, false};
  }

  // Warm-up: index insertions and scratch high-water marks; the measured
  // window then overwrites the same keys (retirement included).
  for (int i = 0; i < 10; i++) {
    ASSERT_EQ(store->MultiPutOnCore(0, ops, kBatch, statuses), kBatch);
  }

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; i++) {
    ASSERT_EQ(store->MultiPutOnCore(0, ops, kBatch, statuses), kBatch);
  }
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "MultiPut heap-allocated " << (after - before)
      << " times across 100 warm batches";
}

// The transaction commit path: a warm BeginTxn (conflict scan, prefetched
// index probes, chain encode into a stack buffer, fused StageBatch, pump,
// drain) must not touch the heap — the chain buffer, member slices, and
// per-op scratch are all stack arrays bounded by kMaxTxnOps.
TEST(HotPathAlloc, TxnCommitIsAllocationFree) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 4;
  auto store = FlatStore::Create(&pool, fo);

  constexpr size_t kOps = 8;
  constexpr uint32_t kValueLen = 48;  // inline: no out-of-log block alloc
  uint8_t value[kValueLen];
  std::memset(value, 0x7e, sizeof(value));

  TxnOp ops[kOps];
  for (size_t i = 0; i < kOps; i++) {
    ops[i].kind = TxnOpKind::kPut;
    ops[i].key = i;
    ops[i].value = value;
    ops[i].len = kValueLen;
  }
  // One CAS member (expected = the value the cycle keeps writing) and one
  // raw-callback RMW: their compare/readback paths must be alloc-free too.
  ops[kOps - 2].kind = TxnOpKind::kCas;
  ops[kOps - 2].expected = value;
  ops[kOps - 2].expected_len = kValueLen;
  ops[kOps - 1].kind = TxnOpKind::kRmw;
  ops[kOps - 1].rmw = [](void*, const void*, uint32_t, uint8_t* out,
                         uint32_t) -> uint32_t {
    std::memset(out, 0x7e, 48);
    return 48;
  };

  // Seed the CAS target so the compare matches from the first cycle.
  store->Put(ops[kOps - 2].key,
             std::string(reinterpret_cast<char*>(value), kValueLen));

  auto cycle = [&] {
    ASSERT_EQ(store->CommitTxnOnCore(0, ops, kOps), TxnStatus::kCommitted);
  };
  // Warm-up: index insertions and scratch high-water marks.
  for (int i = 0; i < 10; i++) cycle();

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; i++) cycle();
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "txn commit path heap-allocated " << (after - before)
      << " times across 100 warm transactions";
}

// The cluster client's per-request routing decision: ShardForKey is a
// hash plus a binary search over the prebuilt ring — no heap traffic once
// the ring exists.
TEST(HotPathAlloc, ShardRouterLookupIsAllocationFree) {
  net::ShardRouter router;
  for (int s = 0; s < 4; s++) router.AddShard(s);

  uint64_t sink = 0;
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (uint64_t k = 0; k < 100000; k++) {
    sink += static_cast<uint64_t>(router.ShardForKey(k));
  }
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_GT(sink, 0u);
  EXPECT_EQ(after - before, 0u)
      << "ShardForKey heap-allocated " << (after - before)
      << " times across 100k lookups";
}

// The open-loop admission path: post a future-stamped request, find the
// earliest pending head (the event-horizon scan RunLoop performs before
// every poll pass), pop it, answer it. All of it rides the preallocated
// SPSC rings.
TEST(HotPathAlloc, OpenLoopAdmissionIsAllocationFree) {
  net::FlatRpc::Options opt;
  opt.num_cores = 2;
  opt.num_conns = 8;
  net::FlatRpc rpc(opt);
  vt::Clock clock;
  vt::ScopedClock bind(&clock);

  net::Request req{};
  req.type = net::MsgType::kGet;
  req.key = 1;

  auto cycle = [&](uint64_t stamp) {
    for (int c = 0; c < opt.num_conns; c++) {
      req.seq = stamp + static_cast<uint64_t>(c);
      req.post_time = stamp + static_cast<uint64_t>(c);  // distinct arrivals
      ASSERT_TRUE(rpc.PostRequest(c, /*core=*/0, req));
    }
    for (int i = 0; i < opt.num_conns; i++) {
      int conn = -1;
      net::Request* head = rpc.PollEarliestRequest(0, &conn);
      ASSERT_NE(head, nullptr);
      // Earliest-first: heads come back in post_time order.
      ASSERT_EQ(head->post_time, stamp + static_cast<uint64_t>(i));
      net::Response resp{};
      resp.seq = head->seq;
      rpc.PostResponse(0, conn, &resp);
      rpc.PopRequest(0, conn);
      net::Response out;
      while (rpc.PollResponse(conn, &out)) {
      }
    }
  };

  for (uint64_t i = 0; i < 10; i++) cycle(i * 1000);  // warm-up

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (uint64_t i = 10; i < 110; i++) cycle(i * 1000);
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "open-loop admission heap-allocated " << (after - before)
      << " times across 100 warm post/poll/pop cycles";
}

// Same engine, write volume crossing a chunk boundary: the rollover path
// (registry + usage-map insert) is *allowed* to allocate — this guards
// the test above against silently measuring too much volume, and
// documents where the remaining cold-path allocations live.
TEST(HotPathAlloc, ChunkRolloverIsTheColdPath) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 4;
  auto store = FlatStore::Create(&pool, fo);

  // ~64 KB per round with 256 B inline entries: a few hundred rounds
  // cross several 4 MB chunk boundaries.
  std::string v(250, 'x');
  for (int round = 0; round < 400; round++) {
    for (uint64_t k = 0; k < 64; k++) {
      store->Put(k, v);
    }
  }
  // The store survived multiple rollovers; the newest values are intact.
  std::string rv;
  for (uint64_t k = 0; k < 64; k++) {
    ASSERT_TRUE(store->Get(k, &rv));
    ASSERT_EQ(rv.size(), v.size());
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
