// Crash-schedule fuzzer: randomized workloads with power cuts at random
// flush counts, multiple crash/recover cycles per seed, GC churn in the
// loop, and an fsck pass over every crash image. Complements the
// exhaustive (but small-workload) enumeration in crash_explorer_test with
// long random trajectories: each cycle draws one of the four PmPool crash
// modes, so torn tail records, reordered unfenced flushes, and spurious
// cache evictions all land on organically grown multi-chunk states.
//
// The DurabilityOracle from the crash harness does the bookkeeping the
// old hand-rolled maps did: acked ops must survive exactly, the boundary
// op may resolve either way, and whichever side won is folded back in so
// checking continues across cycles.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "core/flatstore.h"
#include "core/fsck.h"
#include "harness/crash_explorer.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce) {
  std::string v(8 + (key * 31 + nonce) % 500, char('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, 8);
  return v;
}

FlatStoreOptions Opts() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.85;
  return fo;
}

pm::PmPool::CrashMode DrawMode(Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0: return pm::PmPool::CrashMode::kClean;
    case 1: return pm::PmPool::CrashMode::kTorn;
    case 2: return pm::PmPool::CrashMode::kUnordered;
    default: return pm::PmPool::CrashMode::kEviction;
  }
}

class CrashFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashFuzzTest, MultiCycleDurability) {
  Rng rng(GetParam());
  pm::PmPool::Options po;
  po.size = 192ull << 20;
  po.crash_tracking = true;
  pm::PmPool pool(po);
  auto store = FlatStore::Create(&pool, Opts());

  testing::DurabilityOracle oracle;
  testing::WorkloadCtx ctx;
  ctx.pool = &pool;
  ctx.oracle = &oracle;
  uint64_t nonce = 0;

  for (int cycle = 0; cycle < 4; cycle++) {
    ctx.store = store.get();
    // Phase A: guaranteed-durable traffic (plus occasional GC / ckpt).
    const uint64_t key_range = 150 + rng.Uniform(150);
    for (uint64_t i = 0; i < 400; i++) {
      uint64_t k = rng.Uniform(key_range);
      nonce++;
      if (rng.Uniform(5) == 0) {
        ctx.Delete(k);
      } else {
        ctx.Put(k, ValueFor(k, nonce));
      }
    }
    // Force a rotation so even a slow-growing log hands the cleaner a
    // sealed victim; then let GC / checkpoints churn durable state.
    if (rng.Uniform(2) == 0) {
      store->SealActiveLogChunks();
      store->RunCleanersOnce();
    }
    if (rng.Uniform(3) == 0) store->CheckpointNow();

    // Phase B: arm one of the four crash modes and cut power after a
    // random number of line flushes.
    const pm::PmPool::CrashMode mode = DrawMode(&rng);
    pool.SetCrashMode(mode, rng.Next());
    pool.SetFlushBudget(1 + static_cast<int64_t>(rng.Uniform(600)));
    for (uint64_t i = 0; i < 500 && !pool.PowerLost(); i++) {
      uint64_t k = rng.Uniform(key_range);
      nonce++;
      if (rng.Uniform(5) == 0) {
        ctx.Delete(k);
      } else {
        ctx.Put(k, ValueFor(k, nonce));
      }
    }

    store.reset();
    pool.SimulateCrash();

    // The crash image itself must be structurally sound.
    FsckReport fsck = FsckPool(pool);
    std::string issues;
    for (const auto& issue : fsck.issues) {
      if (issue.fatal) issues += "\n  " + issue.what;
    }
    ASSERT_TRUE(fsck.ok) << "cycle " << cycle << " mode "
                         << pm::PmPool::CrashModeName(mode) << ": "
                         << fsck.Summary() << issues;

    store = FlatStore::Open(&pool, Opts());
    const std::string err = oracle.Check(store.get());
    ASSERT_TRUE(err.empty()) << "cycle " << cycle << " mode "
                             << pm::PmPool::CrashModeName(mode) << ": "
                             << err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzzTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

TEST(CrashDuringRecovery, DoubleFaultStaysConsistent) {
  // Cut power *while recovery itself is running* (recovery persists a
  // little: flag reset, empty-chunk unregistration), then recover again.
  pm::PmPool::Options po;
  po.size = 128ull << 20;
  po.crash_tracking = true;
  pm::PmPool pool(po);
  auto store = FlatStore::Create(&pool, Opts());
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 800; k++) {
    model[k] = ValueFor(k, 0);
    store->Put(k, model[k]);
  }
  store->CheckpointNow();
  for (uint64_t k = 0; k < 200; k++) {
    model[k] = ValueFor(k, 1);
    store->Put(k, model[k]);
  }
  store.reset();
  pool.SimulateCrash();

  for (int budget : {1, 3, 10}) {
    // Recovery gets only `budget` durable line flushes, then "crashes".
    pool.SetFlushBudget(budget);
    auto half_recovered = FlatStore::Open(&pool, Opts());
    half_recovered.reset();
    pool.SimulateCrash();
  }

  // A final, unconstrained recovery must still see every write.
  auto recovered = FlatStore::Open(&pool, Opts());
  ASSERT_EQ(recovered->Size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got)) << k;
    ASSERT_EQ(got, v) << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
