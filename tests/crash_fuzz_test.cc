// Crash-schedule fuzzer: randomized workloads with power cuts at random
// flush counts, multiple crash/recover cycles per seed, GC churn in the
// loop, and an fsck pass over every crash image. The durability oracle
// tracks acknowledged state exactly as recovery_test does, across cycles.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "common/random.h"
#include "core/flatstore.h"
#include "core/fsck.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce) {
  std::string v(8 + (key * 31 + nonce) % 500, char('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, 8);
  return v;
}

FlatStoreOptions Opts() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.85;
  return fo;
}

class CrashFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashFuzzTest, MultiCycleDurability) {
  Rng rng(GetParam());
  pm::PmPool::Options po;
  po.size = 192ull << 20;
  po.crash_tracking = true;
  pm::PmPool pool(po);
  auto store = FlatStore::Create(&pool, Opts());

  // Oracle: required state (fully acked) and boundary ops (either/or).
  std::map<uint64_t, std::optional<std::string>> durable;
  uint64_t nonce = 0;

  for (int cycle = 0; cycle < 4; cycle++) {
    // Phase A: guaranteed-durable traffic (plus occasional GC / ckpt).
    const uint64_t key_range = 150 + rng.Uniform(150);
    for (uint64_t i = 0; i < 400; i++) {
      uint64_t k = rng.Uniform(key_range);
      nonce++;
      if (rng.Uniform(5) == 0 && durable.count(k) != 0 && durable[k]) {
        store->Delete(k);
        durable[k] = std::nullopt;
      } else {
        std::string v = ValueFor(k, nonce);
        store->Put(k, v);
        durable[k] = v;
      }
    }
    if (rng.Uniform(2) == 0) store->RunCleanersOnce();
    if (rng.Uniform(3) == 0) store->CheckpointNow();

    // Phase B: cut power after a random number of line flushes.
    pool.SetFlushBudget(1 + static_cast<int64_t>(rng.Uniform(600)));
    std::map<uint64_t, std::optional<std::string>> boundary;
    for (uint64_t i = 0; i < 500 && !pool.PowerLost(); i++) {
      uint64_t k = rng.Uniform(key_range);
      nonce++;
      if (rng.Uniform(5) == 0 && durable.count(k) != 0 && durable[k]) {
        store->Delete(k);
        boundary[k] = std::nullopt;
      } else {
        std::string v = ValueFor(k, nonce);
        store->Put(k, v);
        boundary[k] = v;
      }
      if (!pool.PowerLost()) {
        durable[k] = boundary[k];
        boundary.erase(k);
      }
    }

    store.reset();
    pool.SimulateCrash();

    // The crash image itself must be structurally sound.
    FsckReport fsck = FsckPool(pool);
    ASSERT_TRUE(fsck.ok) << "cycle " << cycle << ": " << fsck.Summary();

    store = FlatStore::Open(&pool, Opts());

    for (const auto& [k, expect] : durable) {
      std::string got;
      const bool present = store->Get(k, &got);
      if (boundary.count(k) != 0) {
        const auto& alt = boundary.at(k);
        bool old_ok = expect ? (present && got == *expect) : !present;
        bool new_ok = alt ? (present && got == *alt) : !present;
        ASSERT_TRUE(old_ok || new_ok)
            << "cycle " << cycle << " torn key " << k;
        // Whichever state we observed is the durable one going forward.
        if (new_ok && !old_ok) durable[k] = alt;
      } else if (expect) {
        ASSERT_TRUE(present) << "cycle " << cycle << " lost key " << k;
        ASSERT_EQ(got, *expect) << "cycle " << cycle << " key " << k;
      } else {
        ASSERT_FALSE(present)
            << "cycle " << cycle << " resurrected key " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzzTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

TEST(CrashDuringRecovery, DoubleFaultStaysConsistent) {
  // Cut power *while recovery itself is running* (recovery persists a
  // little: flag reset, empty-chunk unregistration), then recover again.
  pm::PmPool::Options po;
  po.size = 128ull << 20;
  po.crash_tracking = true;
  pm::PmPool pool(po);
  auto store = FlatStore::Create(&pool, Opts());
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 800; k++) {
    model[k] = ValueFor(k, 0);
    store->Put(k, model[k]);
  }
  store->CheckpointNow();
  for (uint64_t k = 0; k < 200; k++) {
    model[k] = ValueFor(k, 1);
    store->Put(k, model[k]);
  }
  store.reset();
  pool.SimulateCrash();

  for (int budget : {1, 3, 10}) {
    // Recovery gets only `budget` durable line flushes, then "crashes".
    pool.SetFlushBudget(budget);
    auto half_recovered = FlatStore::Open(&pool, Opts());
    half_recovered.reset();
    pool.SimulateCrash();
  }

  // A final, unconstrained recovery must still see every write.
  auto recovered = FlatStore::Open(&pool, Opts());
  ASSERT_EQ(recovered->Size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got)) << k;
    ASSERT_EQ(got, v) << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
