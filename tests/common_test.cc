// Unit tests for the src/common substrate: hashing, RNG and zipfian
// distributions, histogram percentiles, bitmap view, cacheline math.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/bitmap.h"
#include "common/cacheline.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/spin_lock.h"

namespace flatstore {
namespace {

TEST(Cacheline, AlignmentHelpers) {
  EXPECT_EQ(CachelineAlignDown(0), 0u);
  EXPECT_EQ(CachelineAlignDown(63), 0u);
  EXPECT_EQ(CachelineAlignDown(64), 64u);
  EXPECT_EQ(CachelineAlignUp(0), 0u);
  EXPECT_EQ(CachelineAlignUp(1), 64u);
  EXPECT_EQ(CachelineAlignUp(64), 64u);
  EXPECT_EQ(CachelineAlignUp(65), 128u);
}

TEST(Cacheline, SpanCounting) {
  EXPECT_EQ(CachelineSpan(0, 0), 0u);
  EXPECT_EQ(CachelineSpan(0, 1), 1u);
  EXPECT_EQ(CachelineSpan(0, 64), 1u);
  EXPECT_EQ(CachelineSpan(0, 65), 2u);
  EXPECT_EQ(CachelineSpan(63, 2), 2u);   // straddles a boundary
  EXPECT_EQ(CachelineSpan(60, 16), 2u);
  EXPECT_EQ(CachelineSpan(0, 1024), 16u);
}

TEST(Cacheline, PmBlockIndex) {
  EXPECT_EQ(PmBlockIndex(0), 0u);
  EXPECT_EQ(PmBlockIndex(255), 0u);
  EXPECT_EQ(PmBlockIndex(256), 1u);
}

TEST(Hash, DeterministicAndSeedSensitive) {
  uint64_t a = Hash64("hello", 5);
  EXPECT_EQ(a, Hash64("hello", 5));
  EXPECT_NE(a, Hash64("hellp", 5));
  EXPECT_NE(a, Hash64("hello", 5, /*seed=*/1));
}

TEST(Hash, MatchesBufferPathForKeys) {
  // HashKey(k) must equal Hash64 over the 8 raw key bytes.
  for (uint64_t k : {0ull, 1ull, 42ull, 0xDEADBEEFCAFEBABEull}) {
    EXPECT_EQ(HashKey(k), Hash64(&k, sizeof(k)));
  }
}

TEST(Hash, LongBufferCoversAllBranches) {
  std::vector<uint8_t> buf(100);
  for (size_t i = 0; i < buf.size(); i++) buf[i] = static_cast<uint8_t>(i);
  // Lengths hitting the 32-byte loop, 8/4/1-byte tails.
  std::set<uint64_t> seen;
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 63u, 100u}) {
    seen.insert(Hash64(buf.data(), len));
  }
  EXPECT_EQ(seen.size(), 12u);  // all distinct
}

TEST(Hash, Distribution) {
  // Buckets of hashed sequential keys should be roughly uniform.
  constexpr int kBuckets = 16;
  constexpr int kKeys = 160000;
  int counts[kBuckets] = {0};
  for (uint64_t k = 0; k < kKeys; k++) counts[HashKey(k) % kBuckets]++;
  for (int c : counts) {
    EXPECT_GT(c, kKeys / kBuckets * 0.9);
    EXPECT_LT(c, kKeys / kBuckets * 1.1);
  }
}

TEST(Hash, FingerprintNeverZero) {
  for (uint64_t k = 0; k < 10000; k++) EXPECT_NE(Fingerprint8(k), 0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; i++) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  // Different seed diverges (overwhelmingly likely in first draw).
  Rng a2(7);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(Rng, UniformRange) {
  Rng r(1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
  double d = 0;
  for (int i = 0; i < 10000; i++) d += r.NextDouble();
  EXPECT_NEAR(d / 10000, 0.5, 0.02);
}

TEST(Zipfian, RanksAreSkewed) {
  ZipfianGenerator z(1000000, 0.99);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; i++) counts[z.NextRank()]++;
  // Rank 0 should be the most popular and take a few percent of draws.
  int rank0 = counts[0];
  EXPECT_GT(rank0, kDraws / 100);
  for (const auto& [rank, c] : counts) {
    EXPECT_LE(c, rank0 * 2) << "rank " << rank;
  }
}

TEST(Zipfian, ScrambledSpreadsHotKeys) {
  ZipfianGenerator z(100000, 0.99);
  // The two hottest scrambled ids should not be adjacent small integers.
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[z.Next()]++;
  uint64_t hottest = 0;
  int best = 0;
  for (const auto& [id, c] : counts) {
    if (c > best) {
      best = c;
      hottest = id;
    }
  }
  EXPECT_GT(best, 1000);          // skew survives scrambling
  EXPECT_NE(hottest, 0u);         // ...but rank 0 is remapped
}

TEST(Zipfian, RespectsDomain) {
  ZipfianGenerator z(100, 0.99);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(z.NextRank(), 100u);
    EXPECT_LT(z.Next(), 100u);
  }
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Percentiles are bucket lower edges: allow the ~6 % bucket resolution.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990, 70);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(Histogram, LargeValuesClamp) {
  Histogram h;
  h.Record(UINT64_MAX);  // must not crash / overflow buckets
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Percentile(100), 0u);
}

TEST(Bitmap, SetTestClear) {
  uint64_t words[BitmapView::WordsFor(130)] = {};
  BitmapView bm(words, 130);
  EXPECT_EQ(bm.CountSet(), 0u);
  bm.Set(0);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.CountSet(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.CountSet(), 2u);
}

TEST(Bitmap, FindFirstClear) {
  uint64_t words[2] = {};
  BitmapView bm(words, 100);
  EXPECT_EQ(bm.FindFirstClear(), 0u);
  for (uint64_t i = 0; i < 70; i++) bm.Set(i);
  EXPECT_EQ(bm.FindFirstClear(), 70u);
  for (uint64_t i = 70; i < 100; i++) bm.Set(i);
  EXPECT_EQ(bm.FindFirstClear(), 100u);  // == size(): full
}

TEST(Bitmap, ResetZeroes) {
  uint64_t words[1] = {};
  BitmapView bm(words, 64);
  for (uint64_t i = 0; i < 64; i++) bm.Set(i);
  bm.Reset();
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(SpinLock, TryLockSemantics) {
  SpinLock l;
  EXPECT_TRUE(l.try_lock());
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

}  // namespace
}  // namespace flatstore
