// Tests of tools/fs_lint: every seeded fixture under tests/lint_fixtures
// must be flagged with the expected rule, the clean fixture must produce
// zero violations, and the waiver/window semantics documented in
// tools/fs_lint/lint.h must hold exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace fslint {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(FS_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Violation> RunFixture(const std::string& name) {
  return LintPath(Fixture(name));
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

// --- fixture files ---

TEST(FsLintFixtures, MissingFenceFlagsBothUnfencedPaths) {
  auto vs = RunFixture("missing_fence.cc");
  EXPECT_EQ(CountRule(vs, "fence-after-persist"), 2u);
  // The early return and the fall-off-the-end function; the properly
  // fenced CommitProperly contributes nothing.
  EXPECT_EQ(vs.size(), 2u);
}

TEST(FsLintFixtures, PmRawStoreFlagsMemcpyAndFieldStore) {
  auto vs = RunFixture("pm_raw_store.cc");
  EXPECT_EQ(CountRule(vs, "pm-store"), 2u);
  // The persisted and the waived variants are both clean.
  EXPECT_EQ(vs.size(), 2u);
}

TEST(FsLintFixtures, UnjustifiedRelaxedFlagsOnlyTheUntaggedSite) {
  auto vs = RunFixture("unjustified_relaxed.cc");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "relaxed-needs-reason");
}

TEST(FsLintFixtures, HotAllocFlagsLockAndAllocation) {
  auto vs = RunFixture("hot_alloc.cc");
  EXPECT_EQ(CountRule(vs, "hot-path"), 2u);
  // try_lock in ServeWell and reserve() in the cold SetupPath are fine.
  EXPECT_EQ(vs.size(), 2u);
}

TEST(FsLintFixtures, RemoteWriteFlagsStoreAndMemcpy) {
  auto vs = RunFixture("remote_write.cc");
  EXPECT_EQ(CountRule(vs, "remote-write"), 2u);
  // The waived replication path and the local append are clean; every
  // store reaches a PersistFence, so pm-store stays quiet.
  EXPECT_EQ(vs.size(), 2u) << (vs.empty() ? "" : Format(vs[0]));
}

TEST(FsLintFixtures, CleanFixtureHasZeroViolations) {
  auto vs = RunFixture("clean.cc");
  EXPECT_TRUE(vs.empty()) << (vs.empty() ? "" : Format(vs[0]));
}

TEST(FsLintFixtures, TreeWalkAggregatesEveryFixture) {
  auto vs = LintTree(FS_LINT_FIXTURE_DIR);
  EXPECT_EQ(vs.size(), 9u);
  EXPECT_EQ(CountRule(vs, "fence-after-persist"), 2u);
  EXPECT_EQ(CountRule(vs, "pm-store"), 2u);
  EXPECT_EQ(CountRule(vs, "relaxed-needs-reason"), 1u);
  EXPECT_EQ(CountRule(vs, "hot-path"), 2u);
  EXPECT_EQ(CountRule(vs, "remote-write"), 2u);
}

// --- rule semantics on inline snippets ---

TEST(FsLintRules, PmLayerIsExemptFromFenceAndStoreRules) {
  const std::string code =
      "struct P { void* At(unsigned long); void Persist(const void*, int); };\n"
      "void F(P* p) {\n"
      "  char* d = static_cast<char*>(p->At(0));\n"
      "  d[0] = 1;\n"
      "  p->Persist(d, 1);\n"
      "}\n";
  // Outside src/pm this has an unfenced Persist; inside src/pm both
  // rules are off (the layer implements the primitives themselves).
  EXPECT_EQ(LintFile("src/log/f.cc", code).size(), 1u);
  EXPECT_TRUE(LintFile("src/pm/f.cc", code).empty());
}

TEST(FsLintRules, EmptyWaiverReasonIsItselfAViolation) {
  const std::string code =
      "// fs-lint: deferred-fence()\n"
      "void F(int* p) { *p = 1; }\n";
  auto vs = LintFile("src/log/f.cc", code);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "waiver-needs-reason");
}

TEST(FsLintRules, RelaxedTagWindowIsExactlyFiveLines) {
  const std::string tag = "// relaxed: single-writer cursor.\n";
  const std::string site = "int F(std::atomic<int>* a) {\n"
                           "  return a->load(std::memory_order_relaxed);\n"
                           "}\n";
  // 3 blank lines + the signature line: tag sits 5 lines above the
  // relaxed site — covered.
  EXPECT_TRUE(LintFile("src/net/f.cc", tag + "\n\n\n" + site).empty());
  // One more blank line: tag sits 6 lines above — out of the window.
  EXPECT_EQ(LintFile("src/net/f.cc", tag + "\n\n\n\n" + site).size(), 1u);
}

TEST(FsLintRules, TokensInCommentsAndStringsAreIgnored) {
  const std::string code =
      "void F(const char** out) {\n"
      "  // Persist(x) then memory_order_relaxed — just prose.\n"
      "  *out = \"Persist( memory_order_relaxed lock_guard\";\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/log/f.cc", code).empty());
}

TEST(FsLintRules, BlanketRelaxedDefaultCoversWholeFile) {
  const std::string code =
      "// fs-lint: relaxed-default(stat counters only)\n"
      "unsigned long F(std::atomic<unsigned long>* a) {\n"
      "  return a->load(std::memory_order_relaxed);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/log/f.cc", code).empty());
}

TEST(FsLintRules, PersistFenceAloneSatisfiesTheFenceRule) {
  const std::string code =
      "void F(Pool* p, void* r) { p->PersistFence(r, 8); }\n";
  EXPECT_TRUE(LintFile("src/log/f.cc", code).empty());
}

TEST(FsLintRules, NetLayerIsExemptFromRemoteWrite) {
  const std::string code =
      "struct P { void* At(unsigned long); "
      "void PersistFence(const void*, int); };\n"
      "void F(P* p) {\n"
      "  char* remote_buf = static_cast<char*>(p->At(0));\n"
      "  remote_buf[0] = 1;\n"
      "  p->PersistFence(remote_buf, 1);\n"
      "}\n";
  // The same write is a remote-write violation in the log layer but
  // sanctioned inside src/net (the router/replication fabric).
  auto vs = LintFile("src/log/f.cc", code);
  ASSERT_EQ(vs.size(), 1u) << Format(vs[0]);
  EXPECT_EQ(vs[0].rule, "remote-write");
  EXPECT_TRUE(LintFile("src/net/f.cc", code).empty());
}

TEST(FsLintRules, EmptyRemoteWriteWaiverIsItselfAViolation) {
  const std::string code =
      "// fs-lint: remote-write()\n"
      "void F(int* p) { *p = 1; }\n";
  auto vs = LintFile("src/log/f.cc", code);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "waiver-needs-reason");
}

TEST(FsLintRules, MissingFileReportsIoViolation) {
  auto vs = LintPath(Fixture("does_not_exist.cc"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "io");
}

}  // namespace
}  // namespace fslint
