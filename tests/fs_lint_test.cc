// Tests of tools/fs_lint v2: every seeded fixture under
// tests/lint_fixtures must be flagged with the expected rule at the
// expected line, the clean counterparts must stay quiet, and the
// tokenizer / CFG / summary / baseline machinery documented in
// tools/fs_lint/*.h must hold exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cfg.h"
#include "lex.h"
#include "lint.h"

namespace fslint {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(FS_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Violation> RunFixture(const std::string& name) {
  return LintPath(Fixture(name));
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

std::vector<int> LinesOfRule(const std::vector<Violation>& vs,
                             const std::string& rule) {
  std::vector<int> lines;
  for (const Violation& v : vs) {
    if (v.rule == rule) lines.push_back(v.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string Dump(const std::vector<Violation>& vs) {
  std::string s;
  for (const Violation& v : vs) s += Format(v) + "\n";
  return s;
}

// --- v1 fixture files (lexical rules, now running on the CFG) ---

TEST(FsLintFixtures, MissingFenceFlagsBothUnfencedPaths) {
  auto vs = RunFixture("missing_fence.cc");
  EXPECT_EQ(CountRule(vs, "fence-after-persist"), 2u);
  // The early return and the fall-off-the-end function; the properly
  // fenced CommitProperly contributes nothing.
  EXPECT_EQ(vs.size(), 2u) << Dump(vs);
}

TEST(FsLintFixtures, PmRawStoreFlagsMemcpyAndFieldStore) {
  auto vs = RunFixture("pm_raw_store.cc");
  EXPECT_EQ(CountRule(vs, "pm-store"), 2u);
  // The persisted and the waived variants are both clean.
  EXPECT_EQ(vs.size(), 2u) << Dump(vs);
}

TEST(FsLintFixtures, UnjustifiedRelaxedFlagsOnlyTheUntaggedSite) {
  auto vs = RunFixture("unjustified_relaxed.cc");
  ASSERT_EQ(vs.size(), 1u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "relaxed-needs-reason");
}

TEST(FsLintFixtures, HotAllocFlagsLockAndAllocation) {
  auto vs = RunFixture("hot_alloc.cc");
  EXPECT_EQ(CountRule(vs, "hot-path"), 2u);
  // try_lock in ServeWell and reserve() in the cold SetupPath are fine.
  EXPECT_EQ(vs.size(), 2u) << Dump(vs);
}

TEST(FsLintFixtures, RemoteWriteFlagsStoreAndMemcpy) {
  auto vs = RunFixture("remote_write.cc");
  EXPECT_EQ(CountRule(vs, "remote-write"), 2u);
  // The waived replication path and the local append are clean; every
  // store reaches a PersistFence, so pm-store stays quiet.
  EXPECT_EQ(vs.size(), 2u) << Dump(vs);
}

TEST(FsLintFixtures, CleanFixtureHasZeroViolations) {
  auto vs = RunFixture("clean.cc");
  EXPECT_TRUE(vs.empty()) << Dump(vs);
}

// --- v2 fixture files (path-sensitive / interprocedural rules) ---

TEST(FsLintFixtures, BranchyFenceFlagsOnlyTheUnfencedArm) {
  auto vs = RunFixture("branchy_fence.cc");
  // BranchFence fences on the `flush` arm only: one finding at its
  // closing brace. BothArmsFence, the early return, the noreturn crash
  // path, and the fence-guarded waiver are all clean.
  EXPECT_EQ(LinesOfRule(vs, "fence-after-persist"), (std::vector<int>{18}));
  EXPECT_EQ(vs.size(), 1u) << Dump(vs);
}

TEST(FsLintFixtures, PublishBeforePersistFlagsBothPublicationForms) {
  auto vs = RunFixture("publish_before_persist.cc");
  // The superblock field store and the release-store of the commit word,
  // each while a persist is pending. The fenced, paired-publish, and
  // publish-ok variants are clean.
  EXPECT_EQ(LinesOfRule(vs, "persist-before-publish"),
            (std::vector<int>{35, 45}));
  EXPECT_EQ(vs.size(), 2u) << Dump(vs);
}

TEST(FsLintFixtures, UnpinnedReadFlagsEveryPathWithoutAPin) {
  auto vs = RunFixture("unpinned_read.cc");
  // No pin at all (23), pin held on only one path (33), and the call to
  // an epoch-held helper without a pin (58). Scoped, manual, annotated,
  // and pinned-caller variants are clean.
  EXPECT_EQ(LinesOfRule(vs, "epoch-pin"), (std::vector<int>{23, 33, 58}));
  EXPECT_EQ(vs.size(), 3u) << Dump(vs);
}

TEST(FsLintFixtures, LockCycleFlagsBothWitnessEdges) {
  auto vs = RunFixture("lock_cycle.cc");
  // alpha->beta and beta->alpha are each reported at their witness
  // acquisition. The consistently ordered pair, the REQUIRES-seeded
  // edge, and the lock-order-waived init path produce nothing.
  EXPECT_EQ(LinesOfRule(vs, "lock-order-cycle"), (std::vector<int>{22, 27}));
  ASSERT_EQ(vs.size(), 2u) << Dump(vs);
  EXPECT_NE(vs[0].message.find("TwoLocks::alpha_lock"), std::string::npos);
  EXPECT_NE(vs[0].message.find("TwoLocks::beta_lock"), std::string::npos);
}

TEST(FsLintFixtures, InterprocFenceTracksObligationsThroughHelpers) {
  auto vs = RunFixture("interproc_fence.cc");
  // Only the caller that drops StageRecord's deferred obligation is
  // flagged; callers fenced by FlushRecord (even via FlushTwice) and the
  // caller that fences after StageRecord are clean.
  EXPECT_EQ(LinesOfRule(vs, "fence-after-persist"), (std::vector<int>{43}));
  EXPECT_EQ(vs.size(), 1u) << Dump(vs);
}

TEST(FsLintFixtures, TreeWalkAggregatesEveryFixture) {
  auto vs = LintTree(FS_LINT_FIXTURE_DIR);
  EXPECT_EQ(vs.size(), 18u) << Dump(vs);
  EXPECT_EQ(CountRule(vs, "fence-after-persist"), 4u);
  EXPECT_EQ(CountRule(vs, "pm-store"), 2u);
  EXPECT_EQ(CountRule(vs, "relaxed-needs-reason"), 1u);
  EXPECT_EQ(CountRule(vs, "hot-path"), 2u);
  EXPECT_EQ(CountRule(vs, "remote-write"), 2u);
  EXPECT_EQ(CountRule(vs, "persist-before-publish"), 2u);
  EXPECT_EQ(CountRule(vs, "epoch-pin"), 3u);
  EXPECT_EQ(CountRule(vs, "lock-order-cycle"), 2u);
}

// --- tokenizer ---

TEST(FsLintLex, StringsCharsAndPreprocessorProduceNoTokens) {
  LexFile lex = Lex(
      "int a = 1;  // trailing comment\n"
      "const char* s = \"Persist( { ) junk\";\n"
      "#define EVIL { ( \\\n"
      "    } )\n"
      "char c = '{';\n");
  int braces = 0;
  for (const Tok& t : lex.toks) {
    EXPECT_NE(t.text, "Persist");
    EXPECT_NE(t.text, "EVIL");
    EXPECT_NE(t.text, "junk");
    if (t.text == "{" || t.text == "}") braces++;
  }
  // Every brace in the input is inside a string, char literal, or macro
  // body — none of them is code in this translation unit.
  EXPECT_EQ(braces, 0);
  ASSERT_GE(lex.num_lines, 1);
  EXPECT_NE(lex.comments[0].find("trailing comment"), std::string::npos);
}

TEST(FsLintLex, WaiverReasonExtraction) {
  std::string r;
  EXPECT_TRUE(WaiverReason("// fs-lint: deferred-fence(batch commit point)",
                           "deferred-fence", &r));
  EXPECT_EQ(r, "batch commit point");
  EXPECT_TRUE(WaiverReason("fs-lint: pm-write()", "pm-write", &r));
  EXPECT_EQ(r, "");
  EXPECT_FALSE(WaiverReason("no marker in this comment", "pm-write", &r));
}

TEST(FsLintLex, NearbyCommentWindowIsInclusive) {
  LexFile lex = Lex("// tag-alpha\n\n\nint a;\n");
  EXPECT_TRUE(HasNearbyComment(lex, 3, "tag-alpha", 5));
  EXPECT_TRUE(HasNearbyComment(lex, 3, "tag-alpha", 3));
  EXPECT_FALSE(HasNearbyComment(lex, 3, "tag-alpha", 2));
  EXPECT_FALSE(HasNearbyComment(lex, 3, "tag-missing", 5));
}

// --- function extraction and CFG construction ---

TEST(FsLintCfg, NestedBracesStayOneFunctionWithScopeExits) {
  ParsedFile pf = Parse("f.cc",
                        "void N() {\n"
                        "  {\n"
                        "    {\n"
                        "      int x = 0;\n"
                        "    }\n"
                        "  }\n"
                        "}\n");
  ASSERT_EQ(pf.fns.size(), 1u);
  int scope_exits = 0;
  for (const CfgNode& n : pf.fns[0].nodes) {
    if (n.scope_exit_of >= 0) scope_exits++;
  }
  // One synthetic scope-exit per nested compound.
  EXPECT_GE(scope_exits, 2);
  EXPECT_TRUE(Reaches(pf.fns[0], FunctionDef::kEntry, FunctionDef::kExit));
}

TEST(FsLintCfg, LambdaIsLiftedIntoItsOwnFunction) {
  ParsedFile pf = Parse("f.cc",
                        "void Outer(int* v, int n) {\n"
                        "  int total = 0;\n"
                        "  ForEach(v, n, [&](int x) { total += x; });\n"
                        "  total++;\n"
                        "}\n");
  ASSERT_EQ(pf.fns.size(), 2u);
  const FunctionDef& outer = pf.fns[0];
  const FunctionDef& lambda = pf.fns[1];
  EXPECT_FALSE(outer.is_lambda);
  EXPECT_TRUE(lambda.is_lambda);
  EXPECT_NE(lambda.qual.find("Outer::[lambda@"), std::string::npos);
  // The enclosing function records the span so its scanners skip it.
  EXPECT_EQ(outer.lambda_spans.size(), 1u);
}

TEST(FsLintCfg, NoreturnStatementsEdgeToExitAndAreMarked) {
  ParsedFile pf = Parse("f.cc",
                        "void Dies(bool ok) {\n"
                        "  if (!ok) {\n"
                        "    abort();\n"
                        "  }\n"
                        "}\n");
  ASSERT_EQ(pf.fns.size(), 1u);
  const FunctionDef& fn = pf.fns[0];
  int noreturn_nodes = 0;
  for (const CfgNode& n : fn.nodes) {
    if (n.is_noreturn) {
      noreturn_nodes++;
      ASSERT_EQ(n.succ.size(), 1u);
      EXPECT_EQ(n.succ[0], FunctionDef::kExit);
    }
  }
  EXPECT_EQ(noreturn_nodes, 1);
  EXPECT_NE(DumpCfg(fn, pf.lex).find("[noreturn]"), std::string::npos);
}

TEST(FsLintCfg, StatementsAfterReturnAreUnreachable) {
  ParsedFile pf = Parse("f.cc",
                        "int G() {\n"
                        "  return 1;\n"
                        "  int dead = 2;\n"
                        "}\n");
  ASSERT_EQ(pf.fns.size(), 1u);
  const FunctionDef& fn = pf.fns[0];
  bool found_return = false, found_dead = false;
  for (size_t i = 2; i < fn.nodes.size(); i++) {
    const int n = static_cast<int>(i);
    if (fn.nodes[i].is_return) {
      found_return = true;
      EXPECT_TRUE(Reaches(fn, FunctionDef::kEntry, n));
    } else if (fn.nodes[i].scope_exit_of < 0) {
      found_dead = true;
      EXPECT_FALSE(Reaches(fn, FunctionDef::kEntry, n));
    }
  }
  EXPECT_TRUE(found_return);
  EXPECT_TRUE(found_dead);
}

TEST(FsLintCfg, MarkerWindowIsClampedAtThePreviousFunction) {
  ParsedFile pf = Parse("f.cc",
                        "void A() {\n"
                        "  int x = 0;\n"
                        "  // fs-lint: deferred-fence(tail batch)\n"
                        "  x++;\n"
                        "}\n"
                        "void B() {\n"
                        "}\n");
  ASSERT_EQ(pf.fns.size(), 2u);
  // B's five-line marker window would reach A's body; the clamp stops it
  // at the line after A's closing brace so A's waiver cannot leak.
  EXPECT_EQ(pf.fns[1].marker_lo, pf.fns[0].end_line + 1);
}

// --- rule semantics on inline snippets ---

TEST(FsLintRules, PmLayerIsExemptFromFenceAndStoreRules) {
  const std::string code =
      "struct P { void* At(unsigned long); void Persist(const void*, int); };\n"
      "void F(P* p) {\n"
      "  char* d = static_cast<char*>(p->At(0));\n"
      "  d[0] = 1;\n"
      "  p->Persist(d, 1);\n"
      "}\n";
  // Outside src/pm this has an unfenced Persist; inside src/pm both
  // rules are off (the layer implements the primitives themselves).
  EXPECT_EQ(LintFile("src/log/f.cc", code).size(), 1u);
  EXPECT_TRUE(LintFile("src/pm/f.cc", code).empty());
}

TEST(FsLintRules, DoWhileBodyCountsButWhileBodyMayBeSkipped) {
  const std::string head =
      "struct P { void Persist(const void*, unsigned long); void Fence(); };\n";
  const std::string dowhile = head +
      "void F(P* p, void* r, bool more) {\n"
      "  p->Persist(r, 8);\n"
      "  do {\n"
      "    p->Fence();\n"
      "  } while (more);\n"
      "}\n";
  const std::string whileloop = head +
      "void F(P* p, void* r, bool more) {\n"
      "  p->Persist(r, 8);\n"
      "  while (more) {\n"
      "    p->Fence();\n"
      "  }\n"
      "}\n";
  // A do/while body runs at least once, so its fence covers every path;
  // a while body can be skipped entirely.
  EXPECT_TRUE(LintFile("src/log/f.cc", dowhile).empty());
  EXPECT_EQ(LintFile("src/log/f.cc", whileloop).size(), 1u);
}

TEST(FsLintRules, SwitchFallthroughReachesTheFence) {
  const std::string head =
      "struct P { void Persist(const void*, unsigned long); void Fence(); };\n";
  const std::string breaks_out = head +
      "void F(P* p, void* r, int k) {\n"
      "  p->Persist(r, 8);\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "      p->Fence();\n"
      "      break;\n"
      "    case 1:\n"
      "      break;\n"
      "    default:\n"
      "      p->Fence();\n"
      "  }\n"
      "}\n";
  const std::string falls_through = head +
      "void F(P* p, void* r, int k) {\n"
      "  p->Persist(r, 8);\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "    default:\n"
      "      p->Fence();\n"
      "  }\n"
      "}\n";
  // `case 1: break;` exits the switch unfenced; a case that falls
  // through into the fencing default is covered.
  EXPECT_EQ(LintFile("src/log/f.cc", breaks_out).size(), 1u);
  EXPECT_TRUE(LintFile("src/log/f.cc", falls_through).empty());
}

TEST(FsLintRules, EmptyWaiverReasonIsItselfAViolation) {
  const std::string code =
      "// fs-lint: deferred-fence()\n"
      "void F(int* p) { *p = 1; }\n";
  auto vs = LintFile("src/log/f.cc", code);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "waiver-needs-reason");
}

TEST(FsLintRules, RelaxedTagWindowIsExactlyFiveLines) {
  const std::string tag = "// relaxed: single-writer cursor.\n";
  const std::string site = "int F(std::atomic<int>* a) {\n"
                           "  return a->load(std::memory_order_relaxed);\n"
                           "}\n";
  // 3 blank lines + the signature line: tag sits 5 lines above the
  // relaxed site — covered.
  EXPECT_TRUE(LintFile("src/net/f.cc", tag + "\n\n\n" + site).empty());
  // One more blank line: tag sits 6 lines above — out of the window.
  EXPECT_EQ(LintFile("src/net/f.cc", tag + "\n\n\n\n" + site).size(), 1u);
}

TEST(FsLintRules, TokensInCommentsAndStringsAreIgnored) {
  const std::string code =
      "void F(const char** out) {\n"
      "  // Persist(x) then memory_order_relaxed — just prose.\n"
      "  *out = \"Persist( memory_order_relaxed lock_guard\";\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/log/f.cc", code).empty());
}

TEST(FsLintRules, BlanketRelaxedDefaultCoversWholeFile) {
  const std::string code =
      "// fs-lint: relaxed-default(stat counters only)\n"
      "unsigned long F(std::atomic<unsigned long>* a) {\n"
      "  return a->load(std::memory_order_relaxed);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/log/f.cc", code).empty());
}

TEST(FsLintRules, PersistFenceAloneSatisfiesTheFenceRule) {
  const std::string code =
      "void F(Pool* p, void* r) { p->PersistFence(r, 8); }\n";
  EXPECT_TRUE(LintFile("src/log/f.cc", code).empty());
}

TEST(FsLintRules, NetLayerIsExemptFromRemoteWrite) {
  const std::string code =
      "struct P { void* At(unsigned long); "
      "void PersistFence(const void*, int); };\n"
      "void F(P* p) {\n"
      "  char* remote_buf = static_cast<char*>(p->At(0));\n"
      "  remote_buf[0] = 1;\n"
      "  p->PersistFence(remote_buf, 1);\n"
      "}\n";
  // The same write is a remote-write violation in the log layer but
  // sanctioned inside src/net (the router/replication fabric).
  auto vs = LintFile("src/log/f.cc", code);
  ASSERT_EQ(vs.size(), 1u) << Format(vs[0]);
  EXPECT_EQ(vs[0].rule, "remote-write");
  EXPECT_TRUE(LintFile("src/net/f.cc", code).empty());
}

TEST(FsLintRules, EmptyRemoteWriteWaiverIsItselfAViolation) {
  const std::string code =
      "// fs-lint: remote-write()\n"
      "void F(int* p) { *p = 1; }\n";
  auto vs = LintFile("src/log/f.cc", code);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "waiver-needs-reason");
}

TEST(FsLintRules, MissingFileReportsIoViolation) {
  auto vs = LintPath(Fixture("does_not_exist.cc"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "io");
}

// --- whole-run result: stats, registry, dedupe ---

TEST(FsLintResult, LintPathsCountsFilesFunctionsAndWaivers) {
  LintResult r = LintPaths({std::string(FS_LINT_FIXTURE_DIR)});
  EXPECT_EQ(r.violations.size(), 18u) << Dump(r.violations);
  EXPECT_GE(r.files, 11);
  EXPECT_GE(r.functions, 30);
  // The registry collects every annotation the fixtures carry.
  std::map<std::string, int> markers;
  for (const Waiver& w : r.waivers) markers[w.marker]++;
  for (const char* m : {"deferred-fence", "fence-guarded", "publish-ok",
                        "epoch-held", "lock-order"}) {
    EXPECT_GE(markers[m], 1) << "registry is missing marker " << m;
  }
}

TEST(FsLintResult, DuplicateRootsDeduplicateViolations) {
  LintResult r =
      LintPaths({Fixture("missing_fence.cc"), Fixture("missing_fence.cc")});
  EXPECT_EQ(r.violations.size(), 2u) << Dump(r.violations);
}

TEST(FsLintResult, JsonAndReportRenderTheRun) {
  LintResult r = LintPaths({Fixture("branchy_fence.cc")});
  const std::string json = ToJson(r);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": ["), std::string::npos);
  EXPECT_NE(json.find("\"waivers\": ["), std::string::npos);
  EXPECT_NE(json.find("fence-after-persist"), std::string::npos);
  const std::string report = ToReport(r);
  EXPECT_NE(report.find("fence-guarded"), std::string::npos);
  EXPECT_NE(report.find("open findings"), std::string::npos);
}

// --- baseline differential ---

TEST(FsLintBaseline, KeyBlanksLineNumbersSoFindingsTrackCodeMotion) {
  Violation a{"src/log/f.cc", 10, "persist-before-publish",
              "store publishes 'sb->x' while the persist at line 32, 33 is "
              "not yet fenced"};
  Violation b{"src/log/f.cc", 99, "persist-before-publish",
              "store publishes 'sb->x' while the persist at line 7, 9 is "
              "not yet fenced"};
  EXPECT_EQ(BaselineKey(a), BaselineKey(b));
  Violation c = a;
  c.rule = "pm-store";
  EXPECT_NE(BaselineKey(a), BaselineKey(c));
}

TEST(FsLintBaseline, SaveLoadDiffRoundTrip) {
  LintResult r = LintPaths({std::string(FS_LINT_FIXTURE_DIR)});
  ASSERT_EQ(r.violations.size(), 18u);

  std::map<std::string, int> base;
  ASSERT_TRUE(LoadBaseline(SaveBaseline(r), &base));
  // Everything baselined: the differential is clean.
  EXPECT_TRUE(DiffBaseline(r.violations, base).empty());

  // An empty baseline surfaces every finding.
  std::map<std::string, int> empty_base;
  ASSERT_TRUE(LoadBaseline("{\"version\": 1, \"findings\": {}}", &empty_base));
  EXPECT_EQ(DiffBaseline(r.violations, empty_base).size(),
            r.violations.size());

  // Occurrences beyond the baselined count survive the diff.
  std::map<std::string, int> partial = base;
  for (auto& [key, count] : partial) {
    count -= 1;
    break;
  }
  EXPECT_EQ(DiffBaseline(r.violations, partial).size(), 1u);

  EXPECT_FALSE(LoadBaseline("not json at all", &base));
}

}  // namespace
}  // namespace fslint
