// Transaction API tests (§5.3): commit/abort semantics, CAS reporting,
// in-txn read-your-writes, backpressure, crash-recovery of committed
// chains, the wire codec, and the server adapter + end-to-end runtime.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flatstore.h"
#include "core/server.h"
#include "core/txn_wire.h"

namespace flatstore {
namespace core {
namespace {

FlatStoreOptions Opts(int cores = 1) {
  FlatStoreOptions fo;
  fo.num_cores = cores;
  fo.group_size = cores;
  fo.hash_initial_depth = 4;
  return fo;
}

std::unique_ptr<pm::PmPool> MakePool(bool crash_tracking = false) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  o.crash_tracking = crash_tracking;
  return std::make_unique<pm::PmPool>(o);
}

std::string V(uint64_t k, size_t len = 48) {
  return std::string(len, char('a' + k % 26));
}

// Keys 0..n-1 all route to core 0 under num_cores=1; multi-core tests
// probe CoreForKey explicitly.
TEST(Txn, CommitEqualsSequentialPuts) {
  auto pool_a = MakePool();
  auto pool_b = MakePool();
  auto txn_store = FlatStore::Create(pool_a.get(), Opts());
  auto seq_store = FlatStore::Create(pool_b.get(), Opts());

  constexpr size_t kOps = 6;
  std::string vals[kOps];
  TxnOp ops[kOps];
  for (size_t i = 0; i < kOps; i++) {
    vals[i] = V(i, 24 + 7 * i);
    if (i == 3) vals[i] = V(i, 400);  // out-of-log member
    ops[i].kind = TxnOpKind::kPut;
    ops[i].key = i;
    ops[i].value = vals[i].data();
    ops[i].len = static_cast<uint32_t>(vals[i].size());
  }
  ASSERT_EQ(txn_store->CommitTxnOnCore(0, ops, kOps), TxnStatus::kCommitted);
  for (size_t i = 0; i < kOps; i++) seq_store->Put(i, vals[i]);

  EXPECT_EQ(txn_store->Size(), seq_store->Size());
  for (size_t i = 0; i < kOps; i++) {
    std::string a, b;
    ASSERT_TRUE(txn_store->Get(i, &a)) << i;
    ASSERT_TRUE(seq_store->Get(i, &b)) << i;
    EXPECT_EQ(a, b) << i;
    EXPECT_EQ(a, vals[i]) << i;
  }
}

TEST(Txn, CasSuccessAppliesWholeTxn) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "old-one");
  const std::string expected = "old-one";
  const std::string nv1 = "new-one";
  const std::string nv2 = V(2, 32);

  TxnOp ops[2];
  ops[0].kind = TxnOpKind::kCas;
  ops[0].key = 1;
  ops[0].expected = expected.data();
  ops[0].expected_len = static_cast<uint32_t>(expected.size());
  ops[0].value = nv1.data();
  ops[0].len = static_cast<uint32_t>(nv1.size());
  ops[1].kind = TxnOpKind::kPut;
  ops[1].key = 2;
  ops[1].value = nv2.data();
  ops[1].len = static_cast<uint32_t>(nv2.size());
  ASSERT_EQ(store->CommitTxnOnCore(0, ops, 2), TxnStatus::kCommitted);

  std::string got;
  ASSERT_TRUE(store->Get(1, &got));
  EXPECT_EQ(got, nv1);
  ASSERT_TRUE(store->Get(2, &got));
  EXPECT_EQ(got, nv2);
}

TEST(Txn, CasMismatchReportsFailingOpAndLeavesNoTrace) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "actual");
  store->Put(2, "two");
  const uint64_t size_before = store->Size();
  const uint64_t tail_before = store->LogForCore(0)->tail();

  // An out-of-log put BEFORE the failing CAS: its value block must be
  // allocated, persisted, and then freed by the abort.
  const std::string big = V(9, 500);
  const std::string wrong = "not-the-value";
  const std::string nv = "never-applied";
  TxnOp ops[3];
  ops[0].kind = TxnOpKind::kPut;
  ops[0].key = 3;
  ops[0].value = big.data();
  ops[0].len = static_cast<uint32_t>(big.size());
  ops[1].kind = TxnOpKind::kCas;
  ops[1].key = 1;
  ops[1].expected = wrong.data();
  ops[1].expected_len = static_cast<uint32_t>(wrong.size());
  ops[1].value = nv.data();
  ops[1].len = static_cast<uint32_t>(nv.size());
  ops[2].kind = TxnOpKind::kPut;
  ops[2].key = 2;
  ops[2].value = nv.data();
  ops[2].len = static_cast<uint32_t>(nv.size());

  size_t failed = 99;
  EXPECT_EQ(store->CommitTxnOnCore(0, ops, 3, &failed),
            TxnStatus::kCasMismatch);
  EXPECT_EQ(failed, 1u);

  // Nothing staged: log tail, size, and in-flight count are untouched.
  EXPECT_EQ(store->LogForCore(0)->tail(), tail_before);
  EXPECT_EQ(store->Size(), size_before);
  EXPECT_EQ(store->Inflight(0), 0u);
  std::string got;
  ASSERT_TRUE(store->Get(1, &got));
  EXPECT_EQ(got, "actual");
  ASSERT_TRUE(store->Get(2, &got));
  EXPECT_EQ(got, "two");
  EXPECT_FALSE(store->Get(3, &got));
}

TEST(Txn, CasExpectAbsent) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "present");
  const std::string nv = "inserted";

  // Expect-absent on a present key: mismatch.
  TxnOp op;
  op.kind = TxnOpKind::kCas;
  op.key = 1;
  op.expected = nullptr;  // expect absent
  op.value = nv.data();
  op.len = static_cast<uint32_t>(nv.size());
  size_t failed = 99;
  EXPECT_EQ(store->CommitTxnOnCore(0, &op, 1, &failed),
            TxnStatus::kCasMismatch);
  EXPECT_EQ(failed, 0u);

  // Expect-absent on an absent key: insert succeeds.
  op.key = 7;
  EXPECT_EQ(store->CommitTxnOnCore(0, &op, 1), TxnStatus::kCommitted);
  std::string got;
  ASSERT_TRUE(store->Get(7, &got));
  EXPECT_EQ(got, nv);
}

TEST(Txn, ReadYourWritesInsideTxn) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(5, "base");

  FlatStore::Txn txn(store.get());
  txn.Put(5, "staged");
  // The RMW sees the staged value, not the committed one.
  txn.Rmw(5, [](std::string_view cur, bool present) {
    EXPECT_TRUE(present);
    return std::string(cur) + "+rmw";
  });
  txn.Delete(6);             // absent: no-op member
  txn.Put(6, "reinserted");  // and the later put still lands

  // Preview through the builder before committing.
  std::string preview;
  ASSERT_TRUE(txn.Get(5, &preview));
  EXPECT_EQ(preview, "staged+rmw");
  ASSERT_TRUE(txn.Get(6, &preview));
  EXPECT_EQ(preview, "reinserted");

  ASSERT_EQ(txn.Commit(), TxnStatus::kCommitted);
  std::string got;
  ASSERT_TRUE(store->Get(5, &got));
  EXPECT_EQ(got, "staged+rmw");
  ASSERT_TRUE(store->Get(6, &got));
  EXPECT_EQ(got, "reinserted");
}

TEST(Txn, RmwThroughRawCallback) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(3, "count:");

  struct Ctx {
    char suffix;
  } ctx{'x'};
  TxnOp op;
  op.kind = TxnOpKind::kRmw;
  op.key = 3;
  op.rmw = [](void* c, const void* cur, uint32_t cur_len, uint8_t* out,
              uint32_t cap) -> uint32_t {
    EXPECT_NE(cur, nullptr);
    EXPECT_LE(cur_len + 1, cap);
    std::memcpy(out, cur, cur_len);
    out[cur_len] = static_cast<uint8_t>(static_cast<Ctx*>(c)->suffix);
    return cur_len + 1;
  };
  op.rmw_ctx = &ctx;
  ASSERT_EQ(store->CommitTxnOnCore(0, &op, 1), TxnStatus::kCommitted);
  std::string got;
  ASSERT_TRUE(store->Get(3, &got));
  EXPECT_EQ(got, "count:x");
}

TEST(Txn, DeleteOfAbsentKeysStagesNothing) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "keep");
  const uint64_t tail_before = store->LogForCore(0)->tail();

  TxnOp ops[2];
  ops[0].kind = TxnOpKind::kDelete;
  ops[0].key = 100;
  ops[1].kind = TxnOpKind::kDelete;
  ops[1].key = 101;
  // All members resolve to no-ops: trivially committed, nothing staged.
  EXPECT_EQ(store->CommitTxnOnCore(0, ops, 2), TxnStatus::kCommitted);
  EXPECT_EQ(store->LogForCore(0)->tail(), tail_before);
  EXPECT_EQ(store->Inflight(0), 0u);
}

TEST(Txn, EmptyTxnCommits) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  FlatStore::OpHandle h = 0;
  EXPECT_EQ(store->BeginTxn(0, nullptr, 0, &h), TxnStatus::kCommitted);
  EXPECT_EQ(h, FlatStore::kNoOpHandle);
  FlatStore::Txn txn(store.get());
  EXPECT_EQ(txn.Commit(), TxnStatus::kCommitted);
}

TEST(Txn, InflightKeyFailsWholeTxnWithBusy) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  const std::string v = V(1);
  FlatStore::OpHandle h;
  ASSERT_EQ(store->BeginPut(0, 9, v.data(),
                            static_cast<uint32_t>(v.size()), &h),
            OpStatus::kOk);  // staged, not drained: key 9 is in flight

  TxnOp ops[2];
  ops[0].kind = TxnOpKind::kPut;
  ops[0].key = 1;
  ops[0].value = v.data();
  ops[0].len = static_cast<uint32_t>(v.size());
  ops[1].kind = TxnOpKind::kPut;
  ops[1].key = 9;
  ops[1].value = v.data();
  ops[1].len = static_cast<uint32_t>(v.size());
  FlatStore::OpHandle commit;
  size_t failed = 99;
  EXPECT_EQ(store->BeginTxn(0, ops, 2, &commit, &failed), TxnStatus::kBusy);
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(store->Inflight(0), 1u);  // only the BeginPut

  store->Pump(0);
  store->Drain(0, SIZE_MAX, nullptr);
  EXPECT_EQ(store->BeginTxn(0, ops, 2, &commit, &failed),
            TxnStatus::kCommitted);
  store->Pump(0);
  store->Drain(0, SIZE_MAX, nullptr);
  EXPECT_EQ(store->Inflight(0), 0u);
}

TEST(Txn, BackpressureAbortsWholeTxn) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  const std::string v = V(2, 32);

  // Fill the request pool without pumping.
  uint64_t k = 1000;
  while (true) {
    FlatStore::OpHandle h;
    const OpStatus st =
        store->BeginPut(0, k, v.data(), static_cast<uint32_t>(v.size()), &h);
    if (st == OpStatus::kBackpressure) break;
    ASSERT_EQ(st, OpStatus::kOk);
    k++;
  }
  const uint64_t tail_before = store->LogForCore(0)->tail();
  const size_t inflight_before = store->Inflight(0);

  TxnOp ops[2];
  ops[0].kind = TxnOpKind::kPut;
  ops[0].key = 1;
  ops[0].value = v.data();
  ops[0].len = static_cast<uint32_t>(v.size());
  ops[1].kind = TxnOpKind::kPut;
  ops[1].key = 2;
  ops[1].value = v.data();
  ops[1].len = static_cast<uint32_t>(v.size());
  FlatStore::OpHandle commit;
  EXPECT_EQ(store->BeginTxn(0, ops, 2, &commit), TxnStatus::kBackpressure);
  EXPECT_EQ(store->LogForCore(0)->tail(), tail_before);
  EXPECT_EQ(store->Inflight(0), inflight_before);

  while (store->Inflight(0) > 0) {
    store->Pump(0);
    store->Drain(0, SIZE_MAX, nullptr);
  }
  EXPECT_EQ(store->BeginTxn(0, ops, 2, &commit), TxnStatus::kCommitted);
  store->Pump(0);
  store->Drain(0, SIZE_MAX, nullptr);
  std::string got;
  ASSERT_TRUE(store->Get(1, &got));
  EXPECT_EQ(got, v);
}

TEST(Txn, OneCompletionPerTxnWithCommitHandle) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  const std::string v = V(4);
  TxnOp ops[3];
  for (size_t i = 0; i < 3; i++) {
    ops[i].kind = TxnOpKind::kPut;
    ops[i].key = i;
    ops[i].value = v.data();
    ops[i].len = static_cast<uint32_t>(v.size());
  }
  FlatStore::OpHandle commit;
  ASSERT_EQ(store->BeginTxn(0, ops, 3, &commit), TxnStatus::kCommitted);
  EXPECT_NE(commit, FlatStore::kNoOpHandle);
  EXPECT_EQ(store->Inflight(0), 4u);  // 3 members + commit record
  store->Pump(0);
  std::vector<FlatStore::Completion> done;
  store->Drain(0, SIZE_MAX, &done);
  ASSERT_EQ(done.size(), 1u);  // members complete silently
  EXPECT_EQ(done[0].handle, commit);
  EXPECT_EQ(store->Inflight(0), 0u);
}

TEST(Txn, CommittedTxnsSurviveCrashRecovery) {
  auto pool = MakePool(/*crash_tracking=*/true);
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "pre");
  FlatStore::Txn t1(store.get());
  t1.Put(1, "txn-one").Put(2, V(2, 300)).Delete(1);
  ASSERT_EQ(t1.Commit(), TxnStatus::kCommitted);
  FlatStore::Txn t2(store.get());
  t2.Cas(2, V(2, 300), "swapped").Rmw(8, [](std::string_view, bool present) {
    EXPECT_FALSE(present);
    return std::string("fresh");
  });
  ASSERT_EQ(t2.Commit(), TxnStatus::kCommitted);

  store.reset();  // no Shutdown: Open must replay the log
  pool->SimulateCrash();
  auto rec = FlatStore::Open(pool.get(), Opts());
  std::string got;
  EXPECT_FALSE(rec->Get(1, &got));  // the txn's delete wins
  ASSERT_TRUE(rec->Get(2, &got));
  EXPECT_EQ(got, "swapped");
  ASSERT_TRUE(rec->Get(8, &got));
  EXPECT_EQ(got, "fresh");
}

TEST(Txn, BuilderChecksCoreRouting) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts(2));
  // Two keys on the same core commit fine.
  uint64_t k1 = 0;
  uint64_t k2 = k1 + 1;
  while (store->CoreForKey(k2) != store->CoreForKey(k1)) k2++;
  FlatStore::Txn txn(store.get());
  txn.Put(k1, "a").Put(k2, "b");
  EXPECT_EQ(txn.Commit(), TxnStatus::kCommitted);
  std::string got;
  ASSERT_TRUE(store->Get(k2, &got));
  EXPECT_EQ(got, "b");
}

// ---- wire codec -----------------------------------------------------------

TEST(TxnWire, RoundTrip) {
  const std::string v1 = "value-one";
  const std::string v2 = V(2, 128);
  const std::string exp = "expected-bytes";
  TxnOp in[4];
  in[0].kind = TxnOpKind::kPut;
  in[0].key = 11;
  in[0].value = v1.data();
  in[0].len = static_cast<uint32_t>(v1.size());
  in[1].kind = TxnOpKind::kDelete;
  in[1].key = 22;
  in[2].kind = TxnOpKind::kCas;
  in[2].key = 33;
  in[2].expected = exp.data();
  in[2].expected_len = static_cast<uint32_t>(exp.size());
  in[2].value = v2.data();
  in[2].len = static_cast<uint32_t>(v2.size());
  in[3].kind = TxnOpKind::kCas;  // expect-absent form
  in[3].key = 44;
  in[3].value = v1.data();
  in[3].len = static_cast<uint32_t>(v1.size());

  uint8_t buf[net::kMaxMsgValue];
  const uint32_t len = EncodeTxnOps(buf, sizeof(buf), in, 4);
  ASSERT_GT(len, 0u);

  TxnOp out[kMaxTxnOps];
  size_t n = 0;
  ASSERT_TRUE(DecodeTxnOps(buf, len, out, kMaxTxnOps, &n));
  ASSERT_EQ(n, 4u);
  for (size_t i = 0; i < 4; i++) {
    EXPECT_EQ(out[i].kind, in[i].kind) << i;
    EXPECT_EQ(out[i].key, in[i].key) << i;
    EXPECT_EQ(out[i].len, in[i].len) << i;
    if (in[i].value != nullptr) {
      EXPECT_EQ(std::memcmp(out[i].value, in[i].value, in[i].len), 0) << i;
    }
  }
  EXPECT_EQ(out[2].expected_len, exp.size());
  EXPECT_EQ(std::memcmp(out[2].expected, exp.data(), exp.size()), 0);
  EXPECT_EQ(out[3].expected, nullptr);  // expect-absent survives the trip
}

TEST(TxnWire, RejectsMalformedInput) {
  const std::string v = "payload";
  TxnOp op;
  op.kind = TxnOpKind::kPut;
  op.key = 5;
  op.value = v.data();
  op.len = static_cast<uint32_t>(v.size());
  uint8_t buf[256];
  const uint32_t len = EncodeTxnOps(buf, sizeof(buf), &op, 1);
  ASSERT_GT(len, 0u);

  TxnOp out[4];
  size_t n;
  EXPECT_FALSE(DecodeTxnOps(buf, 0, out, 4, &n));        // empty
  EXPECT_FALSE(DecodeTxnOps(buf, len - 1, out, 4, &n));  // truncated value
  EXPECT_FALSE(DecodeTxnOps(buf, len + 1, out, 4, &n));  // trailing junk
  buf[1] = 9;  // unknown op kind
  EXPECT_FALSE(DecodeTxnOps(buf, len, out, 4, &n));
  buf[1] = 0;
  buf[0] = 200;  // count beyond caller capacity
  EXPECT_FALSE(DecodeTxnOps(buf, len, out, 4, &n));

  // kRmw has no wire form.
  TxnOp rmw;
  rmw.kind = TxnOpKind::kRmw;
  rmw.key = 1;
  EXPECT_EQ(EncodeTxnOps(buf, sizeof(buf), &rmw, 1), 0u);
}

// ---- server adapter + runtime ---------------------------------------------

TEST(TxnServer, AdapterCompletesTxnWithOneTag) {
  auto pool = MakePool();
  auto store = FlatStore::Create(pool.get(), Opts());
  FlatStoreAdapter adapter(store.get());
  const std::string v = V(1);
  TxnOp ops[2];
  for (size_t i = 0; i < 2; i++) {
    ops[i].kind = TxnOpKind::kPut;
    ops[i].key = i;
    ops[i].value = v.data();
    ops[i].len = static_cast<uint32_t>(v.size());
  }
  ASSERT_EQ(adapter.SubmitTxn(0, ops, 2, /*tag=*/77),
            EngineAdapter::Submit::kPending);
  std::vector<EngineAdapter::Done> done;
  while (adapter.Drain(0, &done) == 0) adapter.Pump(0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 77u);

  // A no-effect txn (delete of absent) completes synchronously.
  TxnOp noop;
  noop.kind = TxnOpKind::kDelete;
  noop.key = 999;
  EXPECT_EQ(adapter.SubmitTxn(0, &noop, 1, 78),
            EngineAdapter::Submit::kDoneNow);

  // A failing CAS reports without staging.
  const std::string wrong = "wrong";
  TxnOp cas;
  cas.kind = TxnOpKind::kCas;
  cas.key = 0;
  cas.expected = wrong.data();
  cas.expected_len = static_cast<uint32_t>(wrong.size());
  cas.value = v.data();
  cas.len = static_cast<uint32_t>(v.size());
  EXPECT_EQ(adapter.SubmitTxn(0, &cas, 1, 79),
            EngineAdapter::Submit::kCasMismatch);
}

TEST(TxnServer, RunServerWithTxnTraffic) {
  pm::PmPool::Options o;
  o.size = 512ull << 20;
  pm::PmPool pool(o);
  auto store = FlatStore::Create(&pool, Opts(2));
  FlatStoreAdapter adapter(store.get());

  ServerConfig cfg;
  cfg.num_conns = 4;
  cfg.client_threads = 1;
  cfg.ops_per_conn = 2000;
  cfg.workload.key_space = 4096;
  cfg.workload.value_len = 64;
  cfg.txn_every = 3;
  cfg.txn_size = 4;
  ServerResult r = RunServer(&adapter, cfg);
  EXPECT_EQ(r.ops, 8000u);
  EXPECT_EQ(r.latency.count(), 8000u);
  EXPECT_GT(store->Size(), 1000u);
}

TEST(TxnServer, BaselineAnswersUnsupported) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  BaselineStore::Options bo;
  bo.num_cores = 2;
  bo.kind = BaselineKind::kCceh;
  auto base = BaselineStore::Create(&pool, bo);
  BaselineAdapter adapter(base.get());

  ServerConfig cfg;
  cfg.num_conns = 2;
  cfg.client_threads = 1;
  cfg.ops_per_conn = 600;
  cfg.workload.key_space = 1024;
  cfg.txn_every = 4;
  // kUnsupported responses still complete every request.
  ServerResult r = RunServer(&adapter, cfg);
  EXPECT_EQ(r.ops, 1200u);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
