// Tests of the workload generators: determinism, op-mix ratios, key
// distributions, and the ETC trimodal size model.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/workload.h"

namespace flatstore {
namespace workload {
namespace {

TEST(Generator, DeterministicPerSeed) {
  Config cfg;
  Generator a(cfg, 42), b(cfg, 42), c(cfg, 43);
  bool diverged = false;
  for (int i = 0; i < 1000; i++) {
    Op oa = a.Next(), ob = b.Next(), oc = c.Next();
    EXPECT_EQ(oa.key, ob.key);
    EXPECT_EQ(oa.type, ob.type);
    diverged |= oa.key != oc.key;
  }
  EXPECT_TRUE(diverged);
}

TEST(Generator, OpMixRatios) {
  Config cfg;
  cfg.get_ratio = 0.5;
  cfg.delete_ratio = 0.1;
  cfg.scan_ratio = 0.2;
  Generator g(cfg, 7);
  int gets = 0, dels = 0, puts = 0, scans = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; i++) {
    switch (g.Next().type) {
      case OpType::kGet:
        gets++;
        break;
      case OpType::kDelete:
        dels++;
        break;
      case OpType::kScan:
        scans++;
        break;
      case OpType::kPut:
        puts++;
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(gets) / kN, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(dels) / kN, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(scans) / kN, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(puts) / kN, 0.2, 0.01);
}

TEST(Generator, ScanLengthsSpanConfiguredRange) {
  Config cfg;
  cfg.scan_ratio = 1.0;
  cfg.scan_len_max = 100;
  Generator g(cfg, 9);
  uint32_t lo = UINT32_MAX, hi = 0;
  for (int i = 0; i < 10000; i++) {
    Op op = g.Next();
    ASSERT_EQ(op.type, OpType::kScan);
    ASSERT_GE(op.scan_len, 1u);
    ASSERT_LE(op.scan_len, 100u);
    lo = std::min(lo, op.scan_len);
    hi = std::max(hi, op.scan_len);
  }
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 100u);
}

TEST(Generator, UniformKeysCoverSpace) {
  Config cfg;
  cfg.key_space = 1000;
  Generator g(cfg, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[g.Next().key]++;
  EXPECT_GT(counts.size(), 990u);
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 1000u);
    EXPECT_LT(c, 100000 / 1000 * 2);
  }
}

TEST(Generator, ZipfianIsSkewed) {
  Config cfg;
  cfg.key_space = 1 << 20;
  cfg.dist = KeyDist::kZipfian;
  Generator g(cfg, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[g.Next().key]++;
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  // The hottest key takes a few percent of all accesses at theta 0.99.
  EXPECT_GT(max_count, 1000);
}

TEST(Generator, FixedValueLen) {
  Config cfg;
  cfg.value_len = 128;
  Generator g(cfg, 1);
  for (int i = 0; i < 100; i++) {
    Op op = g.Next();
    if (op.type == OpType::kPut) {
      EXPECT_EQ(op.value_len, 128u);
    }
  }
}

TEST(Etc, StableSizesPerKey) {
  constexpr uint64_t kSpace = 1 << 20;
  for (uint64_t k : {0ull, 1000ull, 500000ull, 1000000ull}) {
    EXPECT_EQ(Generator::EtcValueLen(k, kSpace),
              Generator::EtcValueLen(k, kSpace));
  }
}

TEST(Etc, TrimodalBoundaries) {
  constexpr uint64_t kSpace = 1 << 20;
  const auto tiny_end = static_cast<uint64_t>(kSpace * kEtcTinyFrac);
  const auto small_end =
      static_cast<uint64_t>(kSpace * (kEtcTinyFrac + kEtcSmallFrac));
  for (uint64_t k = 0; k < tiny_end; k += 9973) {
    uint32_t len = Generator::EtcValueLen(k, kSpace);
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, kEtcTinyMax);
  }
  for (uint64_t k = tiny_end; k < small_end; k += 9973) {
    uint32_t len = Generator::EtcValueLen(k, kSpace);
    EXPECT_GT(len, kEtcTinyMax);
    EXPECT_LE(len, kEtcSmallMax);
  }
  for (uint64_t k = small_end; k < kSpace; k += 997) {
    uint32_t len = Generator::EtcValueLen(k, kSpace);
    EXPECT_GT(len, kEtcSmallMax);
    EXPECT_LE(len, kEtcLargeMax);
  }
}

TEST(Etc, AccessMixFollowsKeyClasses) {
  Config cfg;
  cfg.key_space = 1 << 20;
  cfg.etc_values = true;
  cfg.dist = KeyDist::kZipfian;
  Generator g(cfg, 11);
  const auto small_end = static_cast<uint64_t>(
      cfg.key_space * (kEtcTinyFrac + kEtcSmallFrac));
  int large = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; i++) {
    if (g.Next().key >= small_end) large++;
  }
  // ~5 % of accesses go to the large class.
  EXPECT_NEAR(static_cast<double>(large) / kN, 0.05, 0.01);
}

TEST(Etc, PutsCarryEtcSizes) {
  Config cfg;
  cfg.key_space = 1 << 16;
  cfg.etc_values = true;
  Generator g(cfg, 13);
  for (int i = 0; i < 1000; i++) {
    Op op = g.Next();
    if (op.type != OpType::kPut) continue;
    EXPECT_EQ(op.value_len, Generator::EtcValueLen(op.key, cfg.key_space));
  }
}

}  // namespace
}  // namespace workload
}  // namespace flatstore
