// Tests of the FlatRPC simulation: SPSC rings, NIC QP-cache model, agent
// delegation timing, request/response routing, and quiescence.

#include <gtest/gtest.h>

#include <thread>

#include "net/flatrpc.h"

namespace flatstore {
namespace net {
namespace {

TEST(SpscRing, PushPopOrder) {
  SpscRing<int, 4> ring;
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.Front(), nullptr);
  for (int i = 0; i < 4; i++) EXPECT_TRUE(ring.Push(i));
  EXPECT_FALSE(ring.Push(99));  // full
  for (int i = 0; i < 4; i++) {
    int* v = ring.Front();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
    ring.Pop();
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int, 4> ring;
  for (int round = 0; round < 10; round++) {
    EXPECT_TRUE(ring.Push(round));
    int* v = ring.Front();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, round);
    ring.Pop();
  }
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<uint64_t, 64> ring;
  constexpr uint64_t kN = 100000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kN; i++) {
      while (!ring.Push(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kN) {
    uint64_t* v = ring.Front();
    if (v == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, expected);
    ring.Pop();
    expected++;
  }
  producer.join();
}

TEST(NicModel, NoMissCostWithinCache) {
  NicModel nic(vt::kNicQpCacheEntries);
  EXPECT_EQ(nic.PerMessageCost(), 0u);
  NicModel small(4);
  EXPECT_EQ(small.PerMessageCost(), 0u);
}

TEST(NicModel, MissCostGrowsWithQps) {
  NicModel a(vt::kNicQpCacheEntries * 2);
  NicModel b(vt::kNicQpCacheEntries * 8);
  EXPECT_GT(a.PerMessageCost(), 0u);
  EXPECT_GT(b.PerMessageCost(), a.PerMessageCost());
  EXPECT_LT(b.PerMessageCost(), vt::kQpCacheMissCost);
}

TEST(NicModel, DelegatedVerbCost) {
  // The agent charges a fixed per-verb cost (no cross-clock FIFO chain:
  // see the comment in NicModel::PostDelegated).
  NicModel nic(8);
  EXPECT_EQ(nic.PostDelegated(1000), 1000 + vt::kAgentMmioCost);
  NicModel busy_nic(vt::kNicQpCacheEntries * 4);
  EXPECT_GT(busy_nic.PostDelegated(1000), 1000 + vt::kAgentMmioCost);
}

TEST(FlatRpc, RequestRoundTrip) {
  FlatRpc::Options o;
  o.num_cores = 2;
  o.num_conns = 3;
  FlatRpc rpc(o);

  Request req{};
  req.type = MsgType::kPut;
  req.key = 42;
  req.seq = 7;
  req.post_time = 500;
  ASSERT_TRUE(rpc.PostRequest(/*conn=*/1, /*core=*/0, req));
  EXPECT_FALSE(rpc.Quiescent());

  int conn = -1;
  Request* got = rpc.PollRequest(0, &conn);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(conn, 1);
  EXPECT_EQ(got->key, 42u);
  EXPECT_GE(rpc.ArrivalTime(*got), 500 + vt::kNetOneWay);
  rpc.PopRequest(0, conn);

  // Nothing for core 1.
  EXPECT_EQ(rpc.PollRequest(1, &conn), nullptr);

  Response resp{};
  resp.seq = 7;
  vt::Clock clock;
  clock.Advance(2000);
  {
    vt::ScopedClock bind(&clock);
    rpc.PostResponse(/*core=*/0, /*conn=*/1, &resp);
  }
  EXPECT_GE(resp.nic_time, 2000u);

  Response out;
  EXPECT_FALSE(rpc.PollResponse(0, &out));  // wrong conn
  ASSERT_TRUE(rpc.PollResponse(1, &out));
  EXPECT_EQ(out.seq, 7u);
  EXPECT_GE(FlatRpc::ResponseArrival(out), resp.nic_time + vt::kNetOneWay);
  EXPECT_TRUE(rpc.Quiescent());
}

TEST(FlatRpc, RoundRobinAcrossConnections) {
  FlatRpc::Options o;
  o.num_cores = 1;
  o.num_conns = 4;
  FlatRpc rpc(o);
  for (int c = 0; c < 4; c++) {
    Request req{};
    req.key = static_cast<uint64_t>(c);
    ASSERT_TRUE(rpc.PostRequest(c, 0, req));
  }
  // Polling must visit all four connections, not starve any.
  std::set<uint64_t> seen;
  for (int i = 0; i < 4; i++) {
    int conn;
    Request* r = rpc.PollRequest(0, &conn);
    ASSERT_NE(r, nullptr);
    seen.insert(r->key);
    rpc.PopRequest(0, conn);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(FlatRpc, DelegatedResponseCostsLessOnSender) {
  // A non-agent core pays only the handoff; the agent core pays the MMIO.
  FlatRpc::Options o;
  o.num_cores = 2;
  o.num_conns = 1;
  FlatRpc rpc(o);
  Response resp{};
  vt::Clock agent_clock, other_clock;
  {
    vt::ScopedClock bind(&agent_clock);
    rpc.PostResponse(/*core=*/0, 0, &resp);
  }
  Response out;
  rpc.PollResponse(0, &out);
  {
    vt::ScopedClock bind(&other_clock);
    rpc.PostResponse(/*core=*/1, 0, &resp);
  }
  EXPECT_EQ(agent_clock.now(), vt::kMmioPostCost);
  EXPECT_EQ(other_clock.now(), vt::kDelegateHandoffCost);
}

TEST(FlatRpc, AllToAllUsesManyQps) {
  FlatRpc::Options flat;
  flat.num_cores = 16;
  flat.num_conns = 32;
  FlatRpc rpc_flat(flat);
  EXPECT_EQ(rpc_flat.nic().active_qps(), 32);
  EXPECT_EQ(rpc_flat.nic().PerMessageCost(), 0u);

  flat.all_to_all = true;
  FlatRpc rpc_all(flat);
  EXPECT_EQ(rpc_all.nic().active_qps(), 512);
  EXPECT_GT(rpc_all.nic().PerMessageCost(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace flatstore
