// NUMA placement tests: the vt socket surcharges, the allocator's
// per-socket chunk pools (and the placement-off interleave mode), the
// engine's socket-aligned HB groups, the braided per-socket index, and —
// the end-to-end claim — that socket-local placement beats interleaved
// spread on a two-socket rig.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "core/flatstore.h"
#include "core/server.h"
#include "index/masstree.h"
#include "index/numa_sharded_index.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace {

std::unique_ptr<pm::PmPool> TwoSocketPool(pm::PmDevice* dev,
                                          uint64_t size = 256ull << 20) {
  pm::PmPool::Options o;
  o.size = size;
  o.device = dev;
  o.num_sockets = 2;
  return std::make_unique<pm::PmPool>(o);
}

TEST(NumaVt, RemoteLoadSurchargeFollowsCurrentSocket) {
  vt::Clock clock;
  clock.set_socket(0);
  vt::ScopedClock bind(&clock);
  EXPECT_EQ(vt::RemoteLoadSurcharge(0), 0u);
  EXPECT_EQ(vt::RemoteLoadSurcharge(1), vt::kRemoteSocketLoadPenalty);
  EXPECT_EQ(vt::RemoteLoadSurcharge(vt::kSocketNone), 0u);
  EXPECT_EQ(vt::RemoteLoadSurcharge(vt::kSocketInterleaved),
            vt::kRemoteSocketLoadPenalty / 2);
}

TEST(NumaVt, ChargeMissAtAddsSurchargeForRemoteHome) {
  vt::Clock clock;
  clock.set_socket(1);
  vt::ScopedClock bind(&clock);
  const uint64_t t0 = clock.now();
  vt::ChargeMissAt(/*home_socket=*/1, vt::kCpuCacheMiss);
  const uint64_t local = clock.now() - t0;
  const uint64_t t1 = clock.now();
  vt::ChargeMissAt(/*home_socket=*/0, vt::kCpuCacheMiss);
  const uint64_t remote = clock.now() - t1;
  EXPECT_EQ(remote - local, vt::kRemoteSocketLoadPenalty);
}

TEST(NumaPool, SocketSpansAreContiguousHalves) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  EXPECT_EQ(pool->num_sockets(), 2);
  EXPECT_EQ(pool->SocketOf(0), 0);
  EXPECT_EQ(pool->SocketOf(pool->size() - 1), 1);
}

TEST(NumaAlloc, FreeChunksPooledPerSocket) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  alloc::LazyAllocator alloc(pool.get(), alloc::kChunkSize,
                             pool->size() - alloc::kChunkSize, /*num_cores=*/4);
  const uint64_t total = alloc.free_chunks();
  EXPECT_GT(total, 0u);
  EXPECT_EQ(alloc.free_chunks_on(0) + alloc.free_chunks_on(1), total);
  EXPECT_GT(alloc.free_chunks_on(0), 0u);
  EXPECT_GT(alloc.free_chunks_on(1), 0u);
}

TEST(NumaAlloc, SocketForCoreSplitsContiguously) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  alloc::LazyAllocator alloc(pool.get(), alloc::kChunkSize,
                             pool->size() - alloc::kChunkSize, /*num_cores=*/8);
  for (int c = 0; c < 4; c++) EXPECT_EQ(alloc.SocketForCore(c), 0) << c;
  for (int c = 4; c < 8; c++) EXPECT_EQ(alloc.SocketForCore(c), 1) << c;
}

TEST(NumaAlloc, RawChunksComeFromTheCoresSocket) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  alloc::LazyAllocator alloc(pool.get(), alloc::kChunkSize,
                             pool->size() - alloc::kChunkSize, /*num_cores=*/2);
  const uint64_t a = alloc.AllocRawChunk(/*core=*/0);
  const uint64_t b = alloc.AllocRawChunk(/*core=*/1);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(pool->SocketOf(a), 0);
  EXPECT_EQ(pool->SocketOf(b), 1);
}

TEST(NumaAlloc, LocalExhaustionFallsBackToRemoteSocket) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev, 64ull << 20);
  alloc::LazyAllocator alloc(pool.get(), alloc::kChunkSize,
                             pool->size() - alloc::kChunkSize, /*num_cores=*/2);
  // Drain socket 0's pool through core 0.
  while (alloc.free_chunks_on(0) > 0) {
    ASSERT_NE(alloc.AllocRawChunk(0), 0u);
  }
  ASSERT_GT(alloc.free_chunks_on(1), 0u);
  // Capacity beats locality: core 0 now gets a socket-1 chunk.
  const uint64_t off = alloc.AllocRawChunk(0);
  ASSERT_NE(off, 0u);
  EXPECT_EQ(pool->SocketOf(off), 1);
}

TEST(NumaAlloc, InterleaveModeDealsRoundRobin) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  alloc::LazyAllocator alloc(pool.get(), alloc::kChunkSize,
                             pool->size() - alloc::kChunkSize, /*num_cores=*/2);
  alloc.SetSocketInterleave(true);
  std::vector<int> sockets;
  for (int i = 0; i < 4; i++) {
    const uint64_t off = alloc.AllocRawChunk(/*core=*/0);
    ASSERT_NE(off, 0u);
    sockets.push_back(pool->SocketOf(off));
  }
  EXPECT_EQ(sockets, (std::vector<int>{0, 1, 0, 1}));
}

TEST(NumaEngine, GroupSizeShrinksToSocketBoundary) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  core::FlatStoreOptions fo;
  fo.num_cores = 8;
  fo.group_size = 8;  // straddles both sockets
  fo.hash_initial_depth = 4;
  auto store = core::FlatStore::Create(pool.get(), fo);
  EXPECT_EQ(store->options().group_size, 4);
  EXPECT_EQ(store->SocketForCore(0), 0);
  EXPECT_EQ(store->SocketForCore(7), 1);
}

TEST(NumaEngine, PlacementOffKeepsRequestedGroupSize) {
  pm::PmDevice dev(2);
  auto pool = TwoSocketPool(&dev);
  core::FlatStoreOptions fo;
  fo.num_cores = 8;
  fo.group_size = 8;
  fo.hash_initial_depth = 4;
  fo.socket_local_placement = false;
  auto store = core::FlatStore::Create(pool.get(), fo);
  EXPECT_EQ(store->options().group_size, 8);
}

TEST(NumaIndex, ShardedIndexRoutesAndMergesScans) {
  std::vector<std::unique_ptr<index::OrderedKvIndex>> shards;
  shards.push_back(std::make_unique<index::Masstree>());
  shards.push_back(std::make_unique<index::Masstree>());
  index::NumaShardedIndex idx(std::move(shards), /*num_cores=*/8,
                              /*seed=*/0xC04E);
  constexpr uint64_t kKeys = 2000;
  for (uint64_t k = 0; k < kKeys; k++) {
    ASSERT_FALSE(idx.Upsert(k, k * 10, nullptr));
  }
  EXPECT_EQ(idx.Size(), kKeys);
  std::set<int> used;
  for (uint64_t k = 0; k < kKeys; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Get(k, &v)) << k;
    ASSERT_EQ(v, k * 10);
    used.insert(idx.ShardForKey(k));
  }
  EXPECT_EQ(used.size(), 2u);  // both sockets hold keys

  // Scan must interleave the per-socket shards back into key order.
  std::vector<index::KvPair> out;
  ASSERT_EQ(idx.Scan(100, 50, &out), 50u);
  for (size_t i = 0; i < out.size(); i++) {
    ASSERT_EQ(out[i].key, 100 + i);
    ASSERT_EQ(out[i].value, (100 + i) * 10);
  }

  // Erase goes to the owning shard.
  uint64_t old = 0;
  ASSERT_TRUE(idx.Erase(123, &old));
  EXPECT_EQ(old, 1230u);
  EXPECT_FALSE(idx.Get(123, &old));
  EXPECT_EQ(idx.Size(), kKeys - 1);
}

// End to end: a two-socket Put run with socket-local placement must beat
// the interleaved-spread configuration (remote persists on ~half the
// flush traffic, half-surcharged index misses).
TEST(NumaEngine, SocketLocalPlacementBeatsSpread) {
  auto run = [](bool placed) {
    auto dev = std::make_unique<pm::PmDevice>(2);
    pm::PmPool::Options po;
    po.size = 512ull << 20;
    po.device = dev.get();
    po.num_sockets = 2;
    auto pool = std::make_unique<pm::PmPool>(po);
    core::FlatStoreOptions fo;
    fo.num_cores = 8;
    fo.group_size = 4;
    fo.hash_initial_depth = 5;
    fo.socket_local_placement = placed;
    auto store = core::FlatStore::Create(pool.get(), fo);
    core::FlatStoreAdapter adapter(store.get());
    core::ServerConfig cfg;
    cfg.num_conns = 24;
    cfg.client_window = 8;
    cfg.ops_per_conn = 400;
    cfg.workload.key_space = 1 << 14;
    cfg.workload.value_len = 64;
    return core::RunServer(&adapter, cfg).mops;
  };
  const double placed = run(true);
  const double spread = run(false);
  EXPECT_GT(placed, spread);
}

}  // namespace
}  // namespace flatstore
