// Cost-benefit victim selection, hot/cold survivor segregation, pipelined
// quantum-bounded cleaning, and allocator backpressure (§3.4).
//
// OpLog-level tests drive PickVictims directly over hand-built chunk
// populations; FlatStore-level tests verify the end-to-end behavior of
// the staged cleaner (temperature lanes, WA accounting, resumable
// quanta, pressure-boosted budgets).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/flatstore.h"
#include "log/layout.h"
#include "log/log_entry.h"
#include "log/log_reader.h"
#include "log/oplog.h"
#include "pm/pm_stats.h"

namespace flatstore {
namespace log {
namespace {

class GcPolicyTest : public ::testing::Test {
 protected:
  GcPolicyTest() {
    pm::PmPool::Options o;
    o.size = 128ull << 20;
    pool_ = std::make_unique<pm::PmPool>(o);
    root_ = std::make_unique<RootArea>(pool_.get());
    root_->Format(/*num_cores=*/2);
    alloc_ = std::make_unique<alloc::LazyAllocator>(
        pool_.get(), alloc::kChunkSize, o.size - alloc::kChunkSize, 2);
    log_ = std::make_unique<OpLog>(root_.get(), alloc_.get(), 0);
  }

  // Appends `n` ptr-based entries as one batch; returns their offsets.
  std::vector<uint64_t> AppendPtrBatch(int n, uint32_t version = 1) {
    std::vector<std::vector<uint8_t>> bufs(n);
    std::vector<OpLog::EntryRef> refs(n);
    for (int i = 0; i < n; i++) {
      bufs[i].resize(kPtrEntrySize);
      EncodePutPtr(bufs[i].data(), next_key_++, version, 0x100u * 256);
      refs[i] = {bufs[i].data(), kPtrEntrySize};
    }
    std::vector<uint64_t> offs(n);
    EXPECT_TRUE(log_->AppendBatch(refs.data(), refs.size(), offs.data()));
    return offs;
  }

  // Appends one inline-value entry of `vlen` value bytes as its own batch.
  uint64_t AppendValueEntry(uint32_t vlen, uint32_t version = 1) {
    std::vector<uint8_t> value(vlen, 0x5A);
    std::vector<uint8_t> buf(kValueEntryHeader + vlen);
    const uint32_t len =
        EncodePutValue(buf.data(), next_key_++, version, value.data(), vlen);
    OpLog::EntryRef ref{buf.data(), len};
    uint64_t off = 0;
    EXPECT_TRUE(log_->AppendBatch(&ref, 1, &off));
    return off;
  }

  static uint64_t ChunkOf(uint64_t entry_off) {
    return AlignDown(entry_off, alloc::kChunkSize);
  }

  // Ticks the logical write clock by `n` (each serving batch = one tick).
  void TickClock(int n) {
    for (int i = 0; i < n; i++) AppendPtrBatch(1);
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<RootArea> root_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  std::unique_ptr<OpLog> log_;
  uint64_t next_key_ = 1;
};

TEST_F(GcPolicyTest, CostBenefitPrefersOlderAtEqualLiveRatio) {
  auto offs_a = AppendPtrBatch(16);
  log_->SealActiveChunk();
  auto offs_b = AppendPtrBatch(16);
  log_->SealActiveChunk();
  const uint64_t chunk_a = ChunkOf(offs_a[0]);
  const uint64_t chunk_b = ChunkOf(offs_b[0]);
  ASSERT_NE(chunk_a, chunk_b);

  // Kill half of A, age it 20 ticks, then kill half of B: equal live
  // ratios (0.5), but A's last write/death event is 20 ticks older.
  for (int i = 0; i < 8; i++) log_->NoteDead(offs_a[i], kPtrEntrySize);
  TickClock(20);
  for (int i = 0; i < 8; i++) log_->NoteDead(offs_b[i], kPtrEntrySize);

  VictimQuery q;  // defaults: kCostBenefit, cap 0.98
  q.max = 8;
  auto victims = log_->PickVictims(q);
  ASSERT_GE(victims.size(), 2u);
  EXPECT_EQ(victims[0].chunk_off, chunk_a) << "older chunk must rank first";
  EXPECT_EQ(victims[1].chunk_off, chunk_b);
  EXPECT_GT(victims[0].age, victims[1].age);
  EXPECT_DOUBLE_EQ(victims[0].live_ratio, victims[1].live_ratio);
}

TEST_F(GcPolicyTest, CostBenefitPrefersEmptierAtEqualAge) {
  auto offs_a = AppendPtrBatch(16);
  log_->SealActiveChunk();
  auto offs_b = AppendPtrBatch(16);
  log_->SealActiveChunk();
  const uint64_t chunk_a = ChunkOf(offs_a[0]);
  const uint64_t chunk_b = ChunkOf(offs_b[0]);

  // Kill 4/16 of A and 12/16 of B in the same clock window, then age
  // both equally: same age, but B frees three times the space.
  for (int i = 0; i < 4; i++) log_->NoteDead(offs_a[i], kPtrEntrySize);
  for (int i = 0; i < 12; i++) log_->NoteDead(offs_b[i], kPtrEntrySize);
  TickClock(10);

  VictimQuery q;
  q.max = 8;
  auto victims = log_->PickVictims(q);
  ASSERT_GE(victims.size(), 2u);
  EXPECT_EQ(victims[0].chunk_off, chunk_b) << "emptier chunk must rank first";
  EXPECT_EQ(victims[1].chunk_off, chunk_a);
  EXPECT_LT(victims[0].live_ratio, victims[1].live_ratio);
}

TEST_F(GcPolicyTest, EqualScoresTieBreakByOldestSequence) {
  auto offs_a = AppendPtrBatch(16);
  log_->SealActiveChunk();
  auto offs_b = AppendPtrBatch(16);
  log_->SealActiveChunk();

  // Identical kill pattern in the same window: equal ratio and age.
  for (int i = 0; i < 8; i++) log_->NoteDead(offs_a[i], kPtrEntrySize);
  for (int i = 0; i < 8; i++) log_->NoteDead(offs_b[i], kPtrEntrySize);
  TickClock(5);

  VictimQuery q;
  q.max = 8;
  auto victims = log_->PickVictims(q);
  ASSERT_GE(victims.size(), 2u);
  EXPECT_EQ(victims[0].chunk_off, ChunkOf(offs_a[0]))
      << "ties must break toward the older sequence (deterministic)";
}

TEST_F(GcPolicyTest, IncrementalByteCountersMatchRescanOracle) {
  // Mixed-size population across two chunks, deaths notified with and
  // without explicit lengths — the incrementally maintained byte counters
  // must agree with a from-scratch rescan of the chunk contents.
  struct Entry {
    uint64_t off;
    uint32_t len;
  };
  std::vector<Entry> entries;
  for (int round = 0; round < 3; round++) {
    for (uint64_t off : AppendPtrBatch(8)) {
      entries.push_back({off, kPtrEntrySize});
    }
    for (uint32_t vlen : {40u, 100u, 256u}) {
      entries.push_back({AppendValueEntry(vlen),
                         kValueEntryHeader + vlen});
    }
  }
  log_->SealActiveChunk();

  std::map<uint64_t, uint64_t> dead_bytes;  // chunk -> killed bytes
  for (size_t i = 0; i < entries.size(); i += 3) {
    // Alternate explicit-length and decode-in-place notification paths.
    log_->NoteDead(entries[i].off, i % 2 == 0 ? entries[i].len : 0);
    dead_bytes[ChunkOf(entries[i].off)] += entries[i].len;
  }

  for (const auto& [chunk, u] : log_->UsageSnapshot()) {
    // Oracle: rescan the chunk for total bytes.
    uint64_t scanned_total = 0;
    LogChunkReader reader(pool_.get(), chunk, log_->CommittedBytes(chunk));
    DecodedEntry e;
    uint64_t off;
    while (reader.Next(&e, &off)) scanned_total += e.entry_len;
    EXPECT_EQ(u.total_bytes, scanned_total) << "chunk " << chunk;
    const uint64_t killed =
        dead_bytes.count(chunk) != 0 ? dead_bytes[chunk] : 0;
    EXPECT_EQ(u.live_bytes, scanned_total - killed) << "chunk " << chunk;
  }
}

TEST_F(GcPolicyTest, CleanerLanesSeparateByTemperatureAndInheritAge) {
  uint8_t buf[kPtrEntrySize];
  EncodePutPtr(buf, 7, 1, 0x100u * 256);
  OpLog::EntryRef ref{buf, kPtrEntrySize};
  uint64_t hot_off = 0, cold_off = 0;
  ASSERT_TRUE(log_->CleanerAppendBatch(&ref, 1, &hot_off, Temp::kHot,
                                       /*age_clock=*/3));
  ASSERT_TRUE(log_->CleanerAppendBatch(&ref, 1, &cold_off, Temp::kCold,
                                       /*age_clock=*/5));
  ASSERT_NE(ChunkOf(hot_off), ChunkOf(cold_off))
      << "temperature lanes must use distinct chunks";
  auto usage = log_->UsageSnapshot();
  const ChunkUsage& hot = usage.at(ChunkOf(hot_off));
  const ChunkUsage& cold = usage.at(ChunkOf(cold_off));
  EXPECT_TRUE(hot.cleaner);
  EXPECT_TRUE(cold.cleaner);
  EXPECT_EQ(hot.temp, Temp::kHot);
  EXPECT_EQ(cold.temp, Temp::kCold);
  // Relocation chunks inherit the victim's stamp, not "now".
  EXPECT_EQ(hot.last_write_clock, 3u);
  EXPECT_EQ(cold.last_write_clock, 5u);
}

TEST(AllocatorBackpressure, PressureTracksFreeListAgainstWatermark) {
  pm::PmPool::Options o;
  o.size = 64ull << 20;  // 16 chunks; 15 allocatable
  pm::PmPool pool(o);
  alloc::LazyAllocator alloc(&pool, alloc::kChunkSize,
                             o.size - alloc::kChunkSize, 1);
  EXPECT_EQ(alloc.MemoryPressure(), 0) << "signal disarmed by default";

  alloc.SetFreeChunkLowWatermark(8);
  EXPECT_EQ(alloc.MemoryPressure(), 0) << "15 free > watermark 8";

  std::vector<uint64_t> taken;
  while (alloc.free_chunks() > 8) taken.push_back(alloc.AllocRawChunk(0));
  EXPECT_EQ(alloc.MemoryPressure(), 1) << "at the watermark";
  while (alloc.free_chunks() > 2) taken.push_back(alloc.AllocRawChunk(0));
  EXPECT_EQ(alloc.MemoryPressure(), 2) << "below a quarter of the watermark";

  while (!taken.empty()) {
    alloc.FreeRawChunk(taken.back());
    taken.pop_back();
  }
  EXPECT_EQ(alloc.MemoryPressure(), 0) << "recovers as chunks return";
}

}  // namespace
}  // namespace log

namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce, size_t len) {
  std::string v(len, char('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, std::min<size_t>(8, len));
  return v;
}

FlatStoreOptions SegOptions() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.95;
  return fo;
}

// Builds garbage: fills a sealed chunk per core, then supersedes 3/4 of
// the keys so the sealed chunks fall well under the live-ratio cap.
void StageGarbage(FlatStore* store) {
  for (uint64_t k = 0; k < 4000; k++) {
    store->Put(k, ValueFor(k, 0, 200));
  }
  store->SealActiveLogChunks();
  for (uint64_t k = 0; k < 3000; k++) {
    store->Put(k, ValueFor(k, 1, 200));
  }
}

TEST(HotColdSegregation, ColdAgeZeroRoutesAllSurvivorsCold) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  auto opts = SegOptions();
  opts.gc_cold_age = 0;  // every victim classifies as cold
  auto store = FlatStore::Create(&pool, opts);
  StageGarbage(store.get());
  while (store->RunCleanersOnce() > 0) {
  }
  ASSERT_GT(store->ChunksCleaned(), 0u);

  const auto s = pool.stats().Get();
  EXPECT_GT(s.gc_bytes_relocated, 0u);
  EXPECT_GT(s.gc_bytes_reclaimed, 0u);
  EXPECT_GT(s.gc_survivor_bytes_cold, 0u);
  EXPECT_EQ(s.gc_survivor_bytes_hot, 0u);
  // Survivors (1/4 of the data) cost well under one byte of rewrite per
  // reclaimed byte.
  EXPECT_LT(pm::GcWriteAmp(s), 1.0);
  EXPECT_GT(s.gc_victims, 0u);

  for (int c = 0; c < 2; c++) {
    for (const auto& [off, u] : store->LogForCore(c)->UsageSnapshot()) {
      if (u.cleaner) {
        EXPECT_EQ(u.temp, log::Temp::kCold) << "chunk " << off;
      }
    }
  }
  // Data intact after relocation.
  std::string v;
  for (uint64_t k = 3000; k < 4000; k += 97) {
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 0, 200)) << k;
  }
  for (uint64_t k = 0; k < 3000; k += 97) {
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 1, 200)) << k;
  }
}

TEST(HotColdSegregation, SegregationOffKeepsEverySurvivorHot) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  auto opts = SegOptions();
  opts.gc_segregate = false;
  opts.gc_cold_age = 0;  // would be cold — but segregation is off
  auto store = FlatStore::Create(&pool, opts);
  StageGarbage(store.get());
  while (store->RunCleanersOnce() > 0) {
  }
  ASSERT_GT(store->ChunksCleaned(), 0u);

  const auto s = pool.stats().Get();
  EXPECT_GT(s.gc_survivor_bytes_hot, 0u);
  EXPECT_EQ(s.gc_survivor_bytes_cold, 0u);
  for (int c = 0; c < 2; c++) {
    for (const auto& [off, u] : store->LogForCore(c)->UsageSnapshot()) {
      if (u.cleaner) {
        EXPECT_EQ(u.temp, log::Temp::kHot) << "chunk " << off;
      }
    }
  }
}

TEST(QuantumCleaning, BoundedPassesResumeAcrossCalls) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  auto opts = SegOptions();
  opts.gc_quantum_bytes = 32 * 1024;  // far below one victim's extent
  auto store = FlatStore::Create(&pool, opts);
  StageGarbage(store.get());

  // A single bounded pass cannot scan + relocate a ~450 KB victim; the
  // work must spread across multiple resumed passes.
  int passes = 0;
  while (store->ChunksCleaned() == 0) {
    store->RunCleanersOnce();
    passes++;
    ASSERT_LT(passes, 1000) << "bounded cleaning never completed";
  }
  EXPECT_GT(passes, 1) << "quantum did not bound the pass";

  // Drain the rest and verify nothing was lost mid-pipeline.
  while (store->RunCleanersOnce() > 0) {
  }
  std::string v;
  for (uint64_t k = 0; k < 4000; k += 131) {
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, k < 3000 ? 1 : 0, 200)) << k;
  }
}

TEST(QuantumCleaning, PressureLiftsTheBudget) {
  // With the pool nearly exhausted (pressure level 2) the same tiny
  // quantum must not pace the cleaner: one pass runs unbounded and
  // retires a victim immediately.
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  auto opts = SegOptions();
  opts.gc_quantum_bytes = 4096;
  opts.gc_backpressure_watermark = 10000;  // free count is always <= wm/4
  auto store = FlatStore::Create(&pool, opts);
  StageGarbage(store.get());
  ASSERT_EQ(store->allocator()->MemoryPressure(), 2);

  store->RunCleanersOnce();
  EXPECT_GT(store->ChunksCleaned(), 0u)
      << "pressure level 2 must unbound the quantum";
}

// The cleaner must never separate a live txn chain from a covering
// commit record: relocated members keep their chain flag and are grouped
// contiguously under a fresh commit in the cleaner chunk, so a replay of
// the relocated chunk yields them as committed — zero orphan chains.
TEST(TxnGc, CleanerRelocatesChainsWithCommits) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.95;
  auto store = FlatStore::Create(&pool, fo);

  // 50 transactions of 4 inline puts each: 200 live txn-chain members.
  constexpr uint64_t kTxns = 50;
  constexpr size_t kOpsPerTxn = 4;
  auto txn_key = [](uint64_t t, size_t i) { return 10000 + 4 * t + i; };
  for (uint64_t t = 0; t < kTxns; t++) {
    std::string vals[kOpsPerTxn];
    core::TxnOp ops[kOpsPerTxn];
    for (size_t i = 0; i < kOpsPerTxn; i++) {
      vals[i] = ValueFor(txn_key(t, i), 5, 64);
      ops[i].kind = core::TxnOpKind::kPut;
      ops[i].key = txn_key(t, i);
      ops[i].value = vals[i].data();
      ops[i].len = static_cast<uint32_t>(vals[i].size());
    }
    ASSERT_EQ(store->CommitTxnOnCore(0, ops, kOpsPerTxn),
              core::TxnStatus::kCommitted);
  }
  // Filler sharing the chunk, superseded below so the chunk becomes a
  // victim while every txn member stays live.
  for (uint64_t k = 0; k < 2000; k++) store->Put(k, ValueFor(k, 0, 200));
  store->SealActiveLogChunks();
  for (uint64_t k = 0; k < 2000; k++) store->Put(k, ValueFor(k, 1, 200));

  while (store->RunCleanersOnce() > 0) {
  }
  ASSERT_GT(store->ChunksCleaned(), 0u);

  // Every txn key survived relocation with its value intact.
  std::string v;
  for (uint64_t t = 0; t < kTxns; t++) {
    for (size_t i = 0; i < kOpsPerTxn; i++) {
      ASSERT_TRUE(store->Get(txn_key(t, i), &v)) << txn_key(t, i);
      ASSERT_EQ(v, ValueFor(txn_key(t, i), 5, 64)) << txn_key(t, i);
    }
  }

  // Walk every cleaner-written chunk with the chain-aware reader: the
  // relocated members must still carry the chain flag and be covered by
  // fresh commit records — no orphans, no dropped entries.
  log::OpLog* log = store->LogForCore(0);
  uint64_t reloc_members = 0;
  uint64_t reloc_commits = 0;
  uint64_t cleaner_chunks = 0;
  for (const auto& [off, u] : log->UsageSnapshot()) {
    if (!u.cleaner) continue;
    cleaner_chunks++;
    log::ChainedChunkReader reader(&pool, off, log->CommittedBytes(off));
    log::DecodedEntry e;
    uint64_t eoff;
    while (reader.Next(&e, &eoff)) {
      if (e.op == log::OpType::kTxnCommit) {
        reloc_commits++;
      } else if (e.txn) {
        reloc_members++;
      }
    }
    EXPECT_EQ(reader.orphan_chains(), 0u) << "chunk " << off;
    EXPECT_EQ(reader.dropped_entries(), 0u) << "chunk " << off;
  }
  EXPECT_GT(cleaner_chunks, 0u);
  EXPECT_EQ(reloc_members, kTxns * kOpsPerTxn);
  EXPECT_GT(reloc_commits, 0u);
  // Grouped relocation re-chains members under sub-batch commits: far
  // fewer commits than original txns, but at least one per sub-batch.
  EXPECT_LE(reloc_commits, (reloc_members + 31) / 32 + cleaner_chunks);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
