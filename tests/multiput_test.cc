// Batched write pipeline tests.
//
//  * Index contract: PrefetchInsert + InsertWithHint must agree with
//    Upsert on every index — existed-return, old_value, final contents —
//    including a default (invalid) hint, which takes the base-class
//    fallback, and hints made stale by splits/resizes between phases.
//  * Engine: MultiPutOnCore must leave the store in the same state as
//    the equivalent sequence of single Put/Delete calls (overwrites,
//    deletes-in-batch, duplicate keys resolving last-write-wins), stage
//    the whole batch as one fused HB group, and spend strictly fewer
//    fences than the per-op path.
//  * Server: the fused write path (write_batch=16, doorbell-chained
//    responses) must complete the identical workload as the legacy
//    per-request path (write_batch=1).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/server.h"
#include "index/cceh.h"
#include "index/fast_fair.h"
#include "index/fptree.h"
#include "index/kv_index.h"
#include "index/level_hashing.h"
#include "index/masstree.h"

namespace flatstore {
namespace {

// ---- index-level contract --------------------------------------------------

using Factory = std::unique_ptr<index::KvIndex> (*)(const index::PmContext&);

struct IndexCase {
  const char* name;
  Factory make;
};

std::unique_ptr<index::KvIndex> MakeCceh(const index::PmContext& ctx) {
  return std::make_unique<index::Cceh>(ctx, /*initial_depth=*/2);
}
std::unique_ptr<index::KvIndex> MakeLevel(const index::PmContext& ctx) {
  return std::make_unique<index::LevelHashing>(ctx, /*initial_level_bits=*/4);
}
std::unique_ptr<index::KvIndex> MakeFastFair(const index::PmContext& ctx) {
  return std::make_unique<index::FastFair>(ctx);
}
std::unique_ptr<index::KvIndex> MakeFpTree(const index::PmContext& ctx) {
  return std::make_unique<index::FpTree>(ctx);
}
std::unique_ptr<index::KvIndex> MakeMasstree(const index::PmContext& ctx) {
  return std::make_unique<index::Masstree>(ctx);
}

const IndexCase kCases[] = {
    {"CCEH", MakeCceh},
    {"LevelHashing", MakeLevel},
    {"FastFair", MakeFastFair},
    {"FPTree", MakeFpTree},  // no override: exercises the base fallback
    {"Masstree", MakeMasstree},
};

class TwoPhaseInsertTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  std::unique_ptr<index::KvIndex> Make() {
    return GetParam().make(index::PmContext{});
  }
};

// Mirror the same op stream through Upsert on one index and through
// PrefetchInsert + InsertWithHint on another: existed-returns, old
// values, and the final contents must be identical.
TEST_P(TwoPhaseInsertTest, AgreesWithUpsert) {
  auto plain = Make();
  auto hinted = Make();
  // Mixed fresh inserts and overwrites (every third key written twice).
  for (uint64_t round = 0; round < 2; round++) {
    for (uint64_t k = 0; k < 600; k++) {
      if (round == 1 && k % 3 != 0) continue;
      const uint64_t v = k * 10 + round;
      uint64_t old_p = 0, old_h = 0;
      const bool existed_p = plain->Upsert(k, v, &old_p);
      index::LookupHint hint;
      hinted->PrefetchInsert(k, &hint);
      const bool existed_h = hinted->InsertWithHint(k, v, &old_h, hint);
      ASSERT_EQ(existed_h, existed_p) << "key " << k << " round " << round;
      if (existed_p) EXPECT_EQ(old_h, old_p) << "key " << k;
    }
  }
  for (uint64_t k = 0; k < 600; k++) {
    uint64_t vp = 0, vh = 0;
    ASSERT_EQ(plain->Get(k, &vp), hinted->Get(k, &vh)) << "key " << k;
    EXPECT_EQ(vh, vp) << "key " << k;
  }
}

TEST_P(TwoPhaseInsertTest, DefaultHintFallsBackToUpsert) {
  auto idx = Make();
  idx->Insert(7, 77);
  index::LookupHint hint;  // valid=false: never prefetched
  uint64_t old_v = 0;
  ASSERT_TRUE(idx->InsertWithHint(7, 700, &old_v, hint));
  EXPECT_EQ(old_v, 77u);
  EXPECT_FALSE(idx->InsertWithHint(8, 80, &old_v, hint));
  uint64_t v = 0;
  ASSERT_TRUE(idx->Get(7, &v));
  EXPECT_EQ(v, 700u);
  ASSERT_TRUE(idx->Get(8, &v));
  EXPECT_EQ(v, 80u);
}

// Hints taken before heavy insertion must still place writes correctly
// after the structure reshaped itself (CCEH splits, Level-Hashing
// resizes, tree leaves split) — by revalidating and falling back, never
// by writing into a stale bucket/leaf.
TEST_P(TwoPhaseInsertTest, SurvivesStructuralChangesBetweenPhases) {
  auto idx = Make();
  constexpr uint64_t kPinned = 64;
  for (uint64_t k = 0; k < kPinned; k++) idx->Insert(k, k + 500);

  // Hints for existing keys (overwrite targets) and absent keys (fresh
  // inserts), both taken before the growth phase.
  index::LookupHint over_hints[kPinned];
  index::LookupHint fresh_hints[kPinned];
  for (uint64_t k = 0; k < kPinned; k++) {
    idx->PrefetchInsert(k, &over_hints[k]);
    idx->PrefetchInsert(100000 + k, &fresh_hints[k]);
  }

  // Grow the index well past several split/resize thresholds.
  for (uint64_t k = 1000; k < 9000; k++) idx->Insert(k, k);

  for (uint64_t k = 0; k < kPinned; k++) {
    uint64_t old_v = 0;
    ASSERT_TRUE(idx->InsertWithHint(k, k + 900, &old_v, over_hints[k]))
        << "key " << k;
    EXPECT_EQ(old_v, k + 500) << "key " << k;
    ASSERT_FALSE(
        idx->InsertWithHint(100000 + k, k + 7, &old_v, fresh_hints[k]))
        << "key " << 100000 + k;
  }
  for (uint64_t k = 0; k < kPinned; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(idx->Get(k, &v)) << "key " << k;
    EXPECT_EQ(v, k + 900) << "key " << k;
    ASSERT_TRUE(idx->Get(100000 + k, &v)) << "key " << 100000 + k;
    EXPECT_EQ(v, k + 7) << "key " << 100000 + k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, TwoPhaseInsertTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

// ---- engine-level MultiPutOnCore -------------------------------------------

namespace core_tests {

using core::FlatStore;
using core::OpStatus;
using core::WriteOp;

struct Store {
  explicit Store(core::IndexKind kind, int cores = 1) {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pool = std::make_unique<pm::PmPool>(o);
    core::FlatStoreOptions fo;
    fo.num_cores = cores;
    fo.group_size = cores;
    fo.index = kind;
    fo.hash_initial_depth = 4;
    store = FlatStore::Create(pool.get(), fo);
  }
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<FlatStore> store;
};

class MultiPutTest : public ::testing::TestWithParam<core::IndexKind> {};

std::string ValueFor(uint64_t key, uint64_t salt = 0) {
  // Mix inline (<= 256 B) and out-of-log block values.
  const size_t len =
      (key % 3 == 0) ? 1024 + (key + salt) % 100 : 16 + (key + salt) % 200;
  return std::string(len, static_cast<char>('a' + (key + salt) % 26));
}

// One mixed batch against a store that applies the same ops as single
// synchronous calls: final contents and per-op statuses must match.
TEST_P(MultiPutTest, BatchMatchesSequenceOfSingles) {
  Store batched(GetParam());
  Store single(GetParam());
  // Pre-populate both stores so the batch sees overwrites and live
  // delete targets.
  for (uint64_t k = 0; k < 40; k++) {
    batched.store->Put(k, ValueFor(k));
    single.store->Put(k, ValueFor(k));
  }

  // The batch: fresh inserts, overwrites, deletes of present and absent
  // keys, inline and out-of-log values.
  std::vector<std::string> vals;
  vals.reserve(core::kMaxWriteBatch);
  std::vector<WriteOp> ops;
  for (uint64_t k = 100; k < 110; k++) {  // fresh
    vals.push_back(ValueFor(k, 1));
    ops.push_back({k, vals.back().data(),
                   static_cast<uint32_t>(vals.back().size()), false});
  }
  for (uint64_t k = 0; k < 10; k++) {  // overwrite
    vals.push_back(ValueFor(k, 2));
    ops.push_back({k, vals.back().data(),
                   static_cast<uint32_t>(vals.back().size()), false});
  }
  for (uint64_t k = 20; k < 25; k++) {  // delete present
    ops.push_back({k, nullptr, 0, true});
  }
  ops.push_back({999, nullptr, 0, true});  // delete absent

  std::vector<OpStatus> statuses(ops.size());
  const size_t applied = batched.store->MultiPutOnCore(
      0, ops.data(), ops.size(), statuses.data());
  EXPECT_EQ(applied, ops.size() - 1) << "only the absent delete skips";

  for (size_t i = 0; i < ops.size(); i++) {
    const WriteOp& op = ops[i];
    if (op.tombstone) {
      const bool existed = single.store->Delete(op.key);
      EXPECT_EQ(statuses[i],
                existed ? OpStatus::kOk : OpStatus::kNotFound)
          << "op " << i;
    } else {
      single.store->Put(
          op.key,
          std::string_view(static_cast<const char*>(op.value), op.len));
      EXPECT_EQ(statuses[i], OpStatus::kOk) << "op " << i;
    }
  }

  for (uint64_t k = 0; k < 1000; k++) {
    std::string vb, vs;
    const bool fb = batched.store->Get(k, &vb);
    const bool fs = single.store->Get(k, &vs);
    ASSERT_EQ(fb, fs) << "key " << k;
    if (fb) EXPECT_EQ(vb, vs) << "key " << k;
  }
}

// Duplicate keys within one batch chain versions newest-first and
// resolve last-write-wins; put-then-delete ends absent; delete-then-put
// ends present.
TEST_P(MultiPutTest, DuplicateKeysResolveInBatchOrder) {
  Store s(GetParam());
  s.store->Put(1, "one-old");
  s.store->Put(2, "two-old");

  const std::string a = "first", b = "second", c = "third";
  WriteOp ops[7];
  ops[0] = {1, a.data(), static_cast<uint32_t>(a.size()), false};
  ops[1] = {1, b.data(), static_cast<uint32_t>(b.size()), false};
  ops[2] = {1, c.data(), static_cast<uint32_t>(c.size()), false};  // LWW
  ops[3] = {2, a.data(), static_cast<uint32_t>(a.size()), false};
  ops[4] = {2, nullptr, 0, true};  // put-then-delete: ends absent
  ops[5] = {3, nullptr, 0, true};  // delete absent
  ops[6] = {3, b.data(), static_cast<uint32_t>(b.size()), false};

  OpStatus statuses[7];
  const size_t applied = s.store->MultiPutOnCore(0, ops, 7, statuses);
  EXPECT_EQ(applied, 6u);
  EXPECT_EQ(statuses[4], OpStatus::kOk) << "delete of key written earlier "
                                           "in the batch chains onto it";
  EXPECT_EQ(statuses[5], OpStatus::kNotFound);

  std::string v;
  ASSERT_TRUE(s.store->Get(1, &v));
  EXPECT_EQ(v, "third");
  EXPECT_FALSE(s.store->Get(2, &v));
  ASSERT_TRUE(s.store->Get(3, &v));
  EXPECT_EQ(v, "second");
}

// The whole point: one batch = one fused group = one log reservation =
// one persist sweep. Check the stat counters and that a 32-op batch
// spends strictly fewer fences than 32 single synchronous puts.
TEST_P(MultiPutTest, FusedBatchSpendsFewerFencesThanSingles) {
  Store s(GetParam());
  std::vector<std::string> vals;
  WriteOp ops[core::kMaxWriteBatch];
  vals.reserve(core::kMaxWriteBatch);
  for (uint64_t k = 0; k < core::kMaxWriteBatch; k++) {
    vals.push_back(std::string(64, static_cast<char>('a' + k % 26)));
    ops[k] = {5000 + k, vals.back().data(),
              static_cast<uint32_t>(vals.back().size()), false};
  }

  // Warm the serving log chunk so neither window pays the one-time
  // chunk-allocation fences.
  s.store->Put(4999, vals[0]);

  const uint64_t groups0 = s.store->hb()->fused_groups();
  pm::PmStats::Snapshot b0 = s.pool->stats().Get();
  OpStatus statuses[core::kMaxWriteBatch];
  ASSERT_EQ(s.store->MultiPutOnCore(0, ops, core::kMaxWriteBatch, statuses),
            core::kMaxWriteBatch);
  pm::PmStats::Snapshot b1 = s.pool->stats().Get();

  EXPECT_EQ(s.store->hb()->fused_groups(), groups0 + 1)
      << "whole batch staged as one fused group";
  EXPECT_GE(s.store->hb()->fused_entries(), core::kMaxWriteBatch);

  for (uint64_t k = 0; k < core::kMaxWriteBatch; k++) {
    s.store->Put(6000 + k, vals[k]);
  }
  pm::PmStats::Snapshot b2 = s.pool->stats().Get();

  const uint64_t batch_fences = pm::Delta(b0, b1).fences;
  const uint64_t single_fences = pm::Delta(b1, b2).fences;
  EXPECT_LT(batch_fences, single_fences)
      << "fused batch: " << batch_fences << " fences vs "
      << single_fences << " for the same ops one-by-one";
  // All values are inline: the batch is one AppendBatch (two fences).
  EXPECT_LE(batch_fences, 2u + 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MultiPutTest,
    ::testing::Values(core::IndexKind::kHash, core::IndexKind::kMasstree,
                      core::IndexKind::kFastFairVolatile),
    [](const auto& info) -> std::string {
      switch (info.param) {
        case core::IndexKind::kHash: return "Hash";
        case core::IndexKind::kMasstree: return "Masstree";
        case core::IndexKind::kFastFairVolatile: return "FastFair";
      }
      return "Unknown";
    });

// ---- server-level: fused write path vs legacy ------------------------------

TEST(MultiPutServer, BatchedPathCompletesSameWorkloadAsLegacy) {
  core::ServerResult results[2];
  for (int i = 0; i < 2; i++) {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pm::PmPool pool(o);
    core::FlatStoreOptions fo;
    fo.num_cores = 4;
    fo.group_size = 4;
    auto store = FlatStore::Create(&pool, fo);
    core::FlatStoreAdapter adapter(store.get());

    core::ServerConfig cfg;
    cfg.num_conns = 8;
    cfg.client_threads = 1;
    cfg.ops_per_conn = 2000;
    cfg.write_batch = i == 0 ? 1 : 16;
    cfg.workload.key_space = 4096;
    cfg.workload.value_len = 64;
    cfg.workload.get_ratio = 0.3;  // write-heavy
    cfg.workload.delete_ratio = 0.05;
    core::Preload(&adapter, cfg.workload, cfg.workload.key_space);
    results[i] = core::RunServer(&adapter, cfg);
    if (i == 1) {
      EXPECT_GT(store->hb()->fused_groups(), 0u)
          << "batched run must actually take the fused path";
    }
  }
  EXPECT_EQ(results[0].ops, results[1].ops);
  EXPECT_EQ(results[0].latency.count(), results[1].latency.count());
  EXPECT_GT(results[1].mops, 0.0);
}

}  // namespace core_tests
}  // namespace
}  // namespace flatstore
