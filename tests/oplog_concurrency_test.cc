// Concurrency tests for the two OpLog races fixed by the thread-safety
// pass (see oplog.h):
//
//  * next_chunk_seq_ is fetch_add'ed by BOTH append paths' rollovers —
//    the old plain increment could hand two chunks the same sequence
//    number. The first test drives serving and cleaner rollovers from
//    two threads and asserts every chunk sequence is unique.
//
//  * chunk_/tail_/tail_seq_/cleaner_chunk_ are written by the append
//    paths and read by the cleaner's victim-selection path without the
//    usage lock. The second test hammers PickVictims/CommittedBytes/
//    tail() from a reader thread during appends; under
//    -DFLATSTORE_SANITIZE=thread (the tsan_smoke label) any residual
//    race is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "log/layout.h"
#include "log/log_entry.h"
#include "log/oplog.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace log {
namespace {

class OpLogConcurrencyTest : public ::testing::Test {
 protected:
  OpLogConcurrencyTest() {
    pm::PmPool::Options o;
    o.size = 256ull << 20;
    pool_ = std::make_unique<pm::PmPool>(o);
    root_ = std::make_unique<RootArea>(pool_.get());
    root_->Format(/*num_cores=*/2);
    alloc_ = std::make_unique<alloc::LazyAllocator>(
        pool_.get(), alloc::kChunkSize, o.size - alloc::kChunkSize, 2);
    log_ = std::make_unique<OpLog>(root_.get(), alloc_.get(), 0);
  }

  // One ptr-entry batch through the given append path.
  bool Append(bool cleaner, int n, uint64_t key_base) {
    std::vector<std::vector<uint8_t>> bufs(static_cast<size_t>(n));
    std::vector<OpLog::EntryRef> refs(static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
      bufs[static_cast<size_t>(i)].resize(kPtrEntrySize);
      EncodePutPtr(bufs[static_cast<size_t>(i)].data(),
                   key_base + static_cast<uint64_t>(i), 1, 0x100u * 256);
      refs[static_cast<size_t>(i)] = {bufs[static_cast<size_t>(i)].data(),
                                      kPtrEntrySize};
    }
    std::vector<uint64_t> offs(static_cast<size_t>(n));
    return cleaner ? log_->CleanerAppendBatch(refs.data(), refs.size(),
                                              offs.data())
                   : log_->AppendBatch(refs.data(), refs.size(), offs.data());
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<RootArea> root_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  std::unique_ptr<OpLog> log_;
};

TEST_F(OpLogConcurrencyTest, ConcurrentRolloversAssignUniqueChunkSeqs) {
  constexpr int kRounds = 12;
  std::thread serving([&] {
    for (int r = 0; r < kRounds; r++) {
      ASSERT_TRUE(Append(/*cleaner=*/false, 8, 1000u * (r + 1)));
      log_->SealActiveChunk();  // force a serving-path rollover next append
    }
  });
  std::thread cleaner([&] {
    for (int r = 0; r < kRounds; r++) {
      ASSERT_TRUE(Append(/*cleaner=*/true, 8, 500000u + 1000u * (r + 1)));
      log_->RotateCleanerChunk();  // force a cleaner-path rollover
    }
  });
  serving.join();
  cleaner.join();

  const std::map<uint64_t, ChunkUsage> usage = log_->UsageSnapshot();
  // Both paths rolled over every round, so a healthy run registers at
  // least kRounds chunks per path (plus the two initial ones).
  ASSERT_GE(usage.size(), static_cast<size_t>(2 * kRounds));
  std::set<uint32_t> seqs;
  for (const auto& [off, u] : usage) {
    EXPECT_TRUE(seqs.insert(u.seq).second)
        << "duplicate chunk seq " << u.seq << " at chunk offset " << off;
  }
}

TEST_F(OpLogConcurrencyTest, VictimScanRacesAppendsSafely) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t tail = log_->tail();
      if (tail != 0) {
        // The committed extent of whatever chunk holds the tail must
        // never exceed a chunk's data capacity.
        const uint64_t chunk_off = (tail / alloc::kChunkSize) *
                                   alloc::kChunkSize;
        EXPECT_LE(log_->CommittedBytes(chunk_off), kLogDataBytes);
      }
      const std::vector<uint64_t> victims = log_->PickVictims(1.1, 8);
      for (uint64_t v : victims) {
        EXPECT_NE(v, 0u);
        EXPECT_EQ(v % alloc::kChunkSize, 0u);
      }
      (void)log_->MinSeq();
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int r = 0; r < 40; r++) {
    ASSERT_TRUE(Append(/*cleaner=*/false, 16, 1000u * (r + 1)));
    if (r % 5 == 4) log_->SealActiveChunk();
    if (r % 8 == 7) {
      ASSERT_TRUE(Append(/*cleaner=*/true, 16, 900000u + 1000u * r));
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(scans.load(std::memory_order_relaxed), 0u);
  // Final consistency: the tail is inside a registered chunk.
  const uint64_t tail = log_->tail();
  ASSERT_NE(tail, 0u);
  const auto usage = log_->UsageSnapshot();
  const uint64_t tail_chunk = (tail / alloc::kChunkSize) * alloc::kChunkSize;
  EXPECT_TRUE(usage.count(tail_chunk) != 0);
}

}  // namespace
}  // namespace log
}  // namespace flatstore
