// Log-cleaning (GC) integration tests: the cleaner must reclaim space
// under sustained updates in a deliberately small pool, concurrently with
// the serving path, without ever corrupting data; tombstones must
// eventually die once their covered chunks are reclaimed; and recovery
// must work from a state that includes cleaner-written chunks.

#include <gtest/gtest.h>

#include <string>

#include "core/server.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce, size_t len) {
  std::string v(len, char('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, std::min<size_t>(8, len));
  return v;
}

FlatStoreOptions GcOptions() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.9;  // aggressive: clean chunks below 90 % live
  return fo;
}

TEST(GarbageCollection, SynchronousPassReclaimsDeadChunks) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  auto store = FlatStore::Create(&pool, GcOptions());
  // Overwrite a small key set many times: old entries become garbage.
  for (int round = 0; round < 40; round++) {
    for (uint64_t k = 0; k < 2000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 200));
    }
  }
  uint64_t free_before = store->allocator()->free_chunks();
  // One synchronous cleaning pass over every group.
  std::vector<log::OpLog*> raw;
  for (int c = 0; c < 2; c++) raw.push_back(store->LogForCore(c));
  store->StartCleaners();
  // Wait until the cleaners stop making progress.
  uint64_t cleaned = 0;
  for (int i = 0; i < 200; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    uint64_t now = store->ChunksCleaned();
    if (now == cleaned && now > 0) break;
    cleaned = now;
  }
  store->StopCleaners();
  EXPECT_GT(store->ChunksCleaned(), 0u);
  EXPECT_GT(store->allocator()->free_chunks(), free_before);
  // Data intact after relocation.
  for (uint64_t k = 0; k < 2000; k += 7) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 39, 200)) << k;
  }
}

TEST(GarbageCollection, SmallPoolSurvivesSustainedOverwrites) {
  // Without GC this workload would exhaust the pool: each round writes
  // ~2.6 MB of log entries into a ~56-chunk region.
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  auto opts = GcOptions();
  opts.gc_live_ratio = 0.95;
  auto store = FlatStore::Create(&pool, opts);
  store->StartCleaners();
  for (int round = 0; round < 120; round++) {
    for (uint64_t k = 0; k < 5000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 120));
    }
  }
  store->StopCleaners();
  EXPECT_GT(store->ChunksCleaned(), 10u);
  for (uint64_t k = 0; k < 5000; k += 11) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v));
    ASSERT_EQ(v, ValueFor(k, 119, 120));
  }
}

TEST(GarbageCollection, TombstonesEventuallyDie) {
  pm::PmPool::Options o;
  o.size = 128ull << 20;
  pm::PmPool pool(o);
  auto store = FlatStore::Create(&pool, GcOptions());
  // Create keys, delete them, then churn other keys so the chunks holding
  // the deleted versions get cleaned — at which point the tombstones'
  // covered chunks disappear and the tombstone index entries must go too.
  for (uint64_t k = 0; k < 1000; k++) store->Put(k, ValueFor(k, 0, 100));
  for (uint64_t k = 0; k < 1000; k++) store->Delete(k);
  // Enough churn to roll every core's serving chunk over (the tombstone
  // chunk must seal before it can be victimized).
  for (int round = 0; round < 70; round++) {
    for (uint64_t k = 10000; k < 12000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 100));
    }
  }
  store->StartCleaners();
  for (int i = 0; i < 100; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  store->StopCleaners();
  // Raw index sizes include tombstones; after cleaning, most of the 1000
  // tombstones must be gone.
  uint64_t raw = 0;
  for (int c = 0; c < 2; c++) raw += store->IndexForCore(c)->Size();
  EXPECT_LT(raw, 2000u + 300u) << "tombstones not reclaimed";
  // Deleted keys stay deleted; churned keys stay readable.
  std::string v;
  EXPECT_FALSE(store->Get(5, &v));
  EXPECT_TRUE(store->Get(10005, &v)) << "churned key lost";
}

TEST(GarbageCollection, CrashAfterCleaningRecovers) {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  o.crash_tracking = true;
  auto pool = std::make_unique<pm::PmPool>(o);
  auto store = FlatStore::Create(pool.get(), GcOptions());
  for (int round = 0; round < 30; round++) {
    for (uint64_t k = 0; k < 2000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 200));
    }
  }
  store->StartCleaners();
  for (int i = 0; i < 50; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  store->StopCleaners();
  ASSERT_GT(store->ChunksCleaned(), 0u);
  store.reset();
  pool->SimulateCrash();

  auto recovered = FlatStore::Open(pool.get(), GcOptions());
  EXPECT_EQ(recovered->Size(), 2000u);
  for (uint64_t k = 0; k < 2000; k += 13) {
    std::string v;
    ASSERT_TRUE(recovered->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 29, 200)) << k;
  }
}

TEST(GarbageCollection, ConcurrentCleaningWithServing) {
  // Cleaners run while the serving thread keeps writing — the CAS path
  // and retire locks must keep everything consistent.
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  pm::PmPool pool(o);
  auto store = FlatStore::Create(&pool, GcOptions());
  for (uint64_t k = 0; k < 3000; k++) store->Put(k, ValueFor(k, 0, 150));
  store->StartCleaners();
  for (int round = 1; round <= 25; round++) {
    for (uint64_t k = 0; k < 3000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round), 150));
    }
  }
  store->StopCleaners();
  for (uint64_t k = 0; k < 3000; k++) {
    std::string v;
    ASSERT_TRUE(store->Get(k, &v)) << k;
    ASSERT_EQ(v, ValueFor(k, 25, 150)) << k;
  }
}

TEST(GarbageCollection, StolenEntriesSurviveCleaning) {
  // Regression: horizontal batching stores *stolen* entries in the
  // leader's log, so a chunk mixes keys owned by every core of the group.
  // The cleaner must check liveness in the key's owner partition, not the
  // log owner's — otherwise it frees chunks that other cores' indexes
  // still reference. Drive the engine through the server co-simulation
  // (which steals aggressively), then clean, then verify every key.
  pm::PmPool::Options o;
  o.size = 512ull << 20;
  pm::PmPool pool(o);
  FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.95;
  auto store = FlatStore::Create(&pool, fo);
  FlatStoreAdapter adapter(store.get());

  ServerConfig cfg;
  cfg.num_conns = 16;
  cfg.client_window = 8;
  cfg.ops_per_conn = 4000;
  cfg.workload.key_space = 4096;  // heavy overwrites -> dead chunks
  cfg.workload.value_len = 200;
  for (int round = 0; round < 6; round++) {
    cfg.seed = static_cast<uint64_t>(round) + 1;
    RunServer(&adapter, cfg);
    store->RunCleanersOnce();
  }
  EXPECT_GT(store->ChunksCleaned(), 0u);
  // Every indexed key must still be readable (no dangling entries).
  uint64_t checked = 0;
  for (uint64_t k = 0; k < 4096; k++) {
    std::string v;
    if (store->Get(k, &v)) {
      EXPECT_EQ(v.size(), 200u) << k;
      checked++;
    }
  }
  EXPECT_GT(checked, 3000u);
}

}  // namespace
}  // namespace core
}  // namespace flatstore
