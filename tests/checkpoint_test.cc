// Tests of the online-checkpoint extension (paper §3.5: "FlatStore also
// supports to checkpoint the volatile index into PMs periodically when
// the CPU is not busy"): a crash after an online checkpoint recovers via
// checkpoint load + delta replay of the log suffix, and GC correctly
// invalidates a checkpoint whose chunks it frees.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/flatstore.h"

namespace flatstore {
namespace core {
namespace {

std::string ValueFor(uint64_t key, uint64_t nonce) {
  std::string v(32 + key % 200, char('a' + (key + nonce) % 26));
  std::memcpy(&v[0], &key, 8);
  return v;
}

FlatStoreOptions Opts() {
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  fo.gc_live_ratio = 0.9;
  return fo;
}

std::unique_ptr<pm::PmPool> CrashPool() {
  pm::PmPool::Options o;
  o.size = 256ull << 20;
  o.crash_tracking = true;
  return std::make_unique<pm::PmPool>(o);
}

TEST(OnlineCheckpoint, CrashAfterCheckpointUsesDeltaReplay) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), Opts());
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 1500; k++) {
    store->Put(k, ValueFor(k, 0));
    model[k] = ValueFor(k, 0);
  }
  store->CheckpointNow();

  // Keep serving: overwrite some, add new, delete others.
  for (uint64_t k = 0; k < 500; k++) {
    store->Put(k, ValueFor(k, 1));
    model[k] = ValueFor(k, 1);
  }
  for (uint64_t k = 2000; k < 2500; k++) {
    store->Put(k, ValueFor(k, 2));
    model[k] = ValueFor(k, 2);
  }
  for (uint64_t k = 600; k < 700; k++) {
    store->Delete(k);
    model.erase(k);
  }
  store.reset();
  pool->SimulateCrash();

  auto recovered = FlatStore::Open(pool.get(), Opts());
  EXPECT_EQ(recovered->Size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(recovered->Get(k, &got)) << k;
    ASSERT_EQ(got, v) << k;
  }
  std::string got;
  EXPECT_FALSE(recovered->Get(650, &got));
}

TEST(OnlineCheckpoint, RepeatedCheckpointsLastOneWins) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 500; k++) store->Put(k, ValueFor(k, 0));
  store->CheckpointNow();
  for (uint64_t k = 0; k < 500; k++) store->Put(k, ValueFor(k, 1));
  store->CheckpointNow();
  for (uint64_t k = 0; k < 100; k++) store->Put(k, ValueFor(k, 2));
  store.reset();
  pool->SimulateCrash();

  auto recovered = FlatStore::Open(pool.get(), Opts());
  std::string got;
  ASSERT_TRUE(recovered->Get(50, &got));
  EXPECT_EQ(got, ValueFor(50, 2));  // post-checkpoint delta applied
  ASSERT_TRUE(recovered->Get(400, &got));
  EXPECT_EQ(got, ValueFor(400, 1));
}

TEST(OnlineCheckpoint, GcInvalidatesArmedCheckpoint) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), Opts());
  for (uint64_t k = 0; k < 1000; k++) store->Put(k, ValueFor(k, 0));
  store->CheckpointNow();
  EXPECT_EQ(store->root()->superblock()->clean_shutdown, 1u);

  // Churn until the cleaner frees chunks the checkpoint may reference.
  for (int round = 1; round <= 100; round++) {
    for (uint64_t k = 0; k < 1000; k++) {
      store->Put(k, ValueFor(k, static_cast<uint64_t>(round)));
    }
    if (store->RunCleanersOnce() > 0) break;
  }
  ASSERT_GT(store->ChunksCleaned(), 0u);
  EXPECT_EQ(store->root()->superblock()->clean_shutdown, 0u)
      << "checkpoint must be invalidated once chunks are freed";

  // Crash now: full replay (the checkpoint is gone) stays correct.
  store.reset();
  pool->SimulateCrash();
  auto recovered = FlatStore::Open(pool.get(), Opts());
  EXPECT_EQ(recovered->Size(), 1000u);
}

TEST(OnlineCheckpoint, ServingContinuesAfterCheckpoint) {
  auto pool = CrashPool();
  auto store = FlatStore::Create(pool.get(), Opts());
  store->Put(1, "before");
  store->CheckpointNow();
  store->Put(1, "after");
  std::string got;
  ASSERT_TRUE(store->Get(1, &got));
  EXPECT_EQ(got, "after");
}

}  // namespace
}  // namespace core
}  // namespace flatstore
