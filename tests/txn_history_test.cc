// Linearizability of concurrent transactions.
//
// N threads issue CAS / RMW / multi-put transactions and reads over a
// shared store (two cores, two threads per core; per-core mutexes
// serialize the engine's single-writer-per-core contract while the
// horizontal-batching group persists both cores' entries together).
// Every operation records an invocation timestamp BEFORE acquiring its
// core's lock and a response timestamp after the call returns, so
// intervals genuinely overlap; a Wing & Gong backtracking checker then
// searches for a serial order consistent with the real-time partial
// order in which every observed result matches a sequential store model.
//
// Runs are seeded and the generator is deterministic per (seed, thread);
// a failure prints the seed and the full history for replay. The checker
// itself is validated against a handcrafted non-linearizable history.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flatstore.h"

namespace flatstore {
namespace core {
namespace {

// ---- history model ---------------------------------------------------------

struct HistoryOp {
  enum Kind { kTxnPut, kCas, kRmw, kRead } kind;
  uint64_t invoke = 0;
  uint64_t response = 0;
  int thread = 0;
  std::vector<std::pair<uint64_t, std::string>> writes;  // kTxnPut
  uint64_t key = 0;                      // kCas / kRmw / kRead
  std::optional<std::string> expected;   // kCas (nullopt = expect absent)
  std::string value;                     // kCas new value / kRmw marker
  bool cas_committed = false;            // kCas observed outcome
  std::optional<std::string> observed;   // kRead (nullopt = absent)
};

// The sequential RMW rule, mirrored exactly by the store-side callback:
// append the marker, resetting first if the value has grown past 200 B
// (keeps every value inside the 256 B inline bound).
std::string RmwApply(const std::optional<std::string>& cur,
                     const std::string& marker) {
  if (!cur.has_value() || cur->size() > 200) return marker;
  return *cur + marker;
}

using Model = std::map<uint64_t, std::string>;

// Tries to linearize `op` next against `model`. On success applies its
// effect and returns true; `undo` receives the keys to restore.
bool ApplyOp(const HistoryOp& op, Model* model,
             std::vector<std::pair<uint64_t, std::optional<std::string>>>*
                 undo) {
  auto save = [&](uint64_t key) {
    auto it = model->find(key);
    undo->push_back({key, it == model->end()
                              ? std::nullopt
                              : std::optional<std::string>(it->second)});
  };
  switch (op.kind) {
    case HistoryOp::kTxnPut:
      for (const auto& [k, v] : op.writes) {
        save(k);
        (*model)[k] = v;
      }
      return true;
    case HistoryOp::kCas: {
      const auto it = model->find(op.key);
      const bool match = !op.expected.has_value()
                             ? it == model->end()
                             : (it != model->end() &&
                                it->second == *op.expected);
      if (match != op.cas_committed) return false;
      if (match) {
        save(op.key);
        (*model)[op.key] = op.value;
      }
      return true;
    }
    case HistoryOp::kRmw: {
      const auto it = model->find(op.key);
      const std::optional<std::string> cur =
          it == model->end() ? std::nullopt
                             : std::optional<std::string>(it->second);
      save(op.key);
      (*model)[op.key] = RmwApply(cur, op.value);
      return true;
    }
    case HistoryOp::kRead: {
      const auto it = model->find(op.key);
      if (!op.observed.has_value()) return it == model->end();
      return it != model->end() && it->second == *op.observed;
    }
  }
  return false;
}

// Wing & Gong: depth-first search over linearization orders. An op may go
// next only if no other pending op's response precedes its invocation.
class LinearizabilityChecker {
 public:
  explicit LinearizabilityChecker(const std::vector<HistoryOp>& ops)
      : ops_(ops), done_(ops.size(), false) {}

  bool Check() { return Search(ops_.size()); }

 private:
  bool Search(size_t remaining) {
    if (remaining == 0) return true;
    uint64_t min_response = UINT64_MAX;
    for (size_t i = 0; i < ops_.size(); i++) {
      if (!done_[i]) min_response = std::min(min_response, ops_[i].response);
    }
    for (size_t i = 0; i < ops_.size(); i++) {
      if (done_[i] || ops_[i].invoke > min_response) continue;
      std::vector<std::pair<uint64_t, std::optional<std::string>>> undo;
      if (!ApplyOp(ops_[i], &model_, &undo)) continue;
      done_[i] = true;
      if (Search(remaining - 1)) return true;
      done_[i] = false;
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        if (it->second.has_value()) {
          model_[it->first] = *it->second;
        } else {
          model_.erase(it->first);
        }
      }
    }
    return false;
  }

  const std::vector<HistoryOp>& ops_;
  std::vector<bool> done_;
  Model model_;
};

std::string DumpHistory(const std::vector<HistoryOp>& ops) {
  std::ostringstream out;
  for (const HistoryOp& op : ops) {
    out << "[" << op.invoke << "," << op.response << "] t" << op.thread
        << " ";
    switch (op.kind) {
      case HistoryOp::kTxnPut:
        out << "txn-put";
        for (const auto& [k, v] : op.writes) out << " " << k << "=" << v;
        break;
      case HistoryOp::kCas:
        out << "cas " << op.key << " exp="
            << (op.expected.has_value() ? *op.expected : "<absent>")
            << " new=" << op.value
            << (op.cas_committed ? " committed" : " mismatch");
        break;
      case HistoryOp::kRmw:
        out << "rmw " << op.key << " marker=" << op.value;
        break;
      case HistoryOp::kRead:
        out << "read " << op.key << " -> "
            << (op.observed.has_value() ? *op.observed : "<absent>");
        break;
    }
    out << "\n";
  }
  return out.str();
}

// ---- concurrent driver -----------------------------------------------------

struct RmwCtx {
  const char* marker;
  uint32_t marker_len;
};

uint32_t RmwCallback(void* ctx, const void* cur, uint32_t cur_len,
                     uint8_t* out, uint32_t cap) {
  const auto* c = static_cast<const RmwCtx*>(ctx);
  if (cur == nullptr || cur_len > 200) {
    std::memcpy(out, c->marker, c->marker_len);
    return c->marker_len;
  }
  EXPECT_LE(cur_len + c->marker_len, cap);
  std::memcpy(out, cur, cur_len);
  std::memcpy(out + cur_len, c->marker, c->marker_len);
  return cur_len + c->marker_len;
}

// xorshift64: deterministic per (seed, thread).
struct Rng {
  uint64_t s;
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  uint64_t Uniform(uint64_t n) { return Next() % n; }
};

std::vector<HistoryOp> RunConcurrentHistory(uint64_t seed, int ops_per_thread) {
  pm::PmPool::Options po;
  po.size = 128ull << 20;
  pm::PmPool pool(po);
  FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 4;
  auto store = FlatStore::Create(&pool, fo);

  // Three keys per core, probed from the routing function.
  constexpr int kCores = 2;
  constexpr size_t kKeysPerCore = 3;
  std::vector<uint64_t> keys[kCores];
  for (uint64_t k = 0; keys[0].size() < kKeysPerCore ||
                       keys[1].size() < kKeysPerCore;
       k++) {
    const int c = store->CoreForKey(k);
    if (keys[c].size() < kKeysPerCore) keys[c].push_back(k);
  }

  std::mutex core_mu[kCores];
  std::atomic<uint64_t> clock{0};
  constexpr int kThreads = 4;
  std::vector<HistoryOp> per_thread[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      const int core = t % kCores;
      const std::vector<uint64_t>& my_keys = keys[core];
      Rng rng{seed * 1000003 + static_cast<uint64_t>(t) * 7919 + 1};
      // The thread's last read observation per key seeds its CAS
      // expectations (so mismatches and commits both occur).
      std::map<uint64_t, std::optional<std::string>> last_seen;
      for (int i = 0; i < ops_per_thread; i++) {
        HistoryOp op;
        op.thread = t;
        const uint64_t kind = rng.Uniform(4);
        const uint64_t key = my_keys[rng.Uniform(my_keys.size())];
        std::string marker = "t" + std::to_string(t) + "." +
                             std::to_string(i) + ";";
        op.invoke = clock.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(core_mu[core]);
        switch (kind) {
          case 0: {  // multi-put txn over 2 keys
            op.kind = HistoryOp::kTxnPut;
            const uint64_t k2 = my_keys[rng.Uniform(my_keys.size())];
            op.writes.push_back({key, marker + "a"});
            if (k2 != key) op.writes.push_back({k2, marker + "b"});
            TxnOp ops[2];
            for (size_t w = 0; w < op.writes.size(); w++) {
              ops[w].kind = TxnOpKind::kPut;
              ops[w].key = op.writes[w].first;
              ops[w].value = op.writes[w].second.data();
              ops[w].len =
                  static_cast<uint32_t>(op.writes[w].second.size());
            }
            EXPECT_EQ(store->CommitTxnOnCore(core, ops, op.writes.size()),
                      TxnStatus::kCommitted);
            break;
          }
          case 1: {  // CAS keyed on the thread's last observation
            op.kind = HistoryOp::kCas;
            op.key = key;
            const auto it = last_seen.find(key);
            op.expected =
                it == last_seen.end() ? std::nullopt : it->second;
            op.value = marker + "c";
            TxnOp cas;
            cas.kind = TxnOpKind::kCas;
            cas.key = key;
            if (op.expected.has_value()) {
              cas.expected = op.expected->data();
              cas.expected_len =
                  static_cast<uint32_t>(op.expected->size());
            }
            cas.value = op.value.data();
            cas.len = static_cast<uint32_t>(op.value.size());
            const TxnStatus st = store->CommitTxnOnCore(core, &cas, 1);
            EXPECT_TRUE(st == TxnStatus::kCommitted ||
                        st == TxnStatus::kCasMismatch);
            op.cas_committed = st == TxnStatus::kCommitted;
            break;
          }
          case 2: {  // RMW append
            op.kind = HistoryOp::kRmw;
            op.key = key;
            op.value = marker;
            RmwCtx ctx{marker.data(),
                       static_cast<uint32_t>(marker.size())};
            TxnOp rmw;
            rmw.kind = TxnOpKind::kRmw;
            rmw.key = key;
            rmw.rmw = &RmwCallback;
            rmw.rmw_ctx = &ctx;
            EXPECT_EQ(store->CommitTxnOnCore(core, &rmw, 1),
                      TxnStatus::kCommitted);
            break;
          }
          default: {  // read
            op.kind = HistoryOp::kRead;
            op.key = key;
            std::string got;
            if (store->GetOnCore(core, key, &got)) {
              op.observed = got;
            }
            last_seen[key] = op.observed;
            break;
          }
        }
        op.response = clock.fetch_add(1, std::memory_order_relaxed);
        per_thread[t].push_back(op);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<HistoryOp> history;
  for (int t = 0; t < kThreads; t++) {
    history.insert(history.end(), per_thread[t].begin(),
                   per_thread[t].end());
  }
  return history;
}

// ---- tests -----------------------------------------------------------------

TEST(TxnHistory, CheckerAcceptsSequentialHistory) {
  std::vector<HistoryOp> h(3);
  h[0] = {HistoryOp::kTxnPut, 0, 1, 0, {{1, "a"}}, 0, {}, "", false, {}};
  h[1] = {HistoryOp::kRead, 2, 3, 0, {}, 1, {}, "", false, {"a"}};
  h[2] = {HistoryOp::kCas, 4, 5, 0, {}, 1, {"a"}, "b", true, {}};
  EXPECT_TRUE(LinearizabilityChecker(h).Check());
}

TEST(TxnHistory, CheckerRejectsNonLinearizableHistory) {
  // The read observes "b" strictly BEFORE the only write of "b" is
  // invoked: no serial order can explain it.
  std::vector<HistoryOp> h(2);
  h[0] = {HistoryOp::kRead, 0, 1, 0, {}, 1, {}, "", false, {"b"}};
  h[1] = {HistoryOp::kTxnPut, 2, 3, 1, {{1, "b"}}, 0, {}, "", false, {}};
  EXPECT_FALSE(LinearizabilityChecker(h).Check());

  // A CAS that claims commit against a value nobody ever wrote.
  std::vector<HistoryOp> h2(1);
  h2[0] = {HistoryOp::kCas, 0, 1, 0, {}, 1, {"ghost"}, "x", true, {}};
  EXPECT_FALSE(LinearizabilityChecker(h2).Check());
}

TEST(TxnHistory, CheckerAcceptsOverlappingCasRace) {
  // Two expect-absent CAS ops on one key overlap; exactly one committed.
  // Linearizable: the winner first, the loser second.
  std::vector<HistoryOp> h(2);
  h[0] = {HistoryOp::kCas, 0, 3, 0, {}, 1, std::nullopt, "x", true, {}};
  h[1] = {HistoryOp::kCas, 1, 2, 1, {}, 1, std::nullopt, "y", false, {}};
  EXPECT_TRUE(LinearizabilityChecker(h).Check());
  // Both claiming commit is impossible.
  h[1].cas_committed = true;
  EXPECT_FALSE(LinearizabilityChecker(h).Check());
}

TEST(TxnHistory, ConcurrentTxnsAreLinearizable) {
  for (uint64_t seed : {11ull, 42ull, 1337ull}) {
    std::vector<HistoryOp> history = RunConcurrentHistory(seed, 30);
    ASSERT_EQ(history.size(), 4u * 30u);
    EXPECT_TRUE(LinearizabilityChecker(history).Check())
        << "seed " << seed
        << ": no serial order explains this history:\n"
        << DumpHistory(history);
  }
}

}  // namespace
}  // namespace core
}  // namespace flatstore
