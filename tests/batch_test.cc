// Tests of the horizontal-batching engine: staging/stealing mechanics,
// the four batching modes, flush-count amortization, pipelined lock
// behaviour in simulated time, and multi-threaded stealing correctness.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "batch/hb_engine.h"
#include "log/log_reader.h"

namespace flatstore {
namespace batch {
namespace {

class HbEngineTest : public ::testing::Test {
 protected:
  static constexpr int kCores = 4;

  HbEngineTest() {
    pm::PmPool::Options o;
    o.size = 256ull << 20;
    pool_ = std::make_unique<pm::PmPool>(o);
    root_ = std::make_unique<log::RootArea>(pool_.get());
    root_->Format(kCores);
    alloc_ = std::make_unique<alloc::LazyAllocator>(
        pool_.get(), alloc::kChunkSize, o.size - alloc::kChunkSize, kCores);
    for (int c = 0; c < kCores; c++) {
      logs_.push_back(
          std::make_unique<log::OpLog>(root_.get(), alloc_.get(), c));
    }
  }

  std::unique_ptr<HbEngine> MakeEngine(BatchMode mode, int group_size = 4) {
    std::vector<log::OpLog*> raw;
    for (auto& l : logs_) raw.push_back(l.get());
    return std::make_unique<HbEngine>(std::move(raw), group_size, mode);
  }

  // Encodes a ptr entry for `key`.
  static std::vector<uint8_t> Entry(uint64_t key) {
    std::vector<uint8_t> buf(log::kPtrEntrySize);
    log::EncodePutPtr(buf.data(), key, 1, 0x100u * 256);
    return buf;
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<log::RootArea> root_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  std::vector<std::unique_ptr<log::OpLog>> logs_;
};

TEST_F(HbEngineTest, StageAndWaitRoundTrip) {
  auto eng = MakeEngine(BatchMode::kPipelinedHB);
  auto e = Entry(42);
  uint64_t h;
  ASSERT_TRUE(eng->Stage(0, e.data(), e.size(), &h));
  auto [off, done] = eng->Wait(0, h);
  EXPECT_NE(off, 0u);
  // The entry is really in core 0's log.
  log::DecodedEntry d;
  ASSERT_TRUE(log::DecodeEntry(
      static_cast<const uint8_t*>(pool_->At(off)), 16, &d));
  EXPECT_EQ(d.key, 42u);
  eng->Release(0, h);
}

TEST_F(HbEngineTest, LeaderStealsFollowerEntries) {
  auto eng = MakeEngine(BatchMode::kPipelinedHB);
  // Stage on cores 1..3. Leadership goes to the first core with staged
  // work after the baton (core 1 here); it must steal the others'
  // entries and persist them all into ITS OWN OpLog as one batch.
  std::vector<uint64_t> handles(kCores);
  for (int c = 1; c < kCores; c++) {
    auto e = Entry(100 + static_cast<uint64_t>(c));
    ASSERT_TRUE(eng->Stage(c, e.data(), e.size(), &handles[c]));
  }
  EXPECT_EQ(eng->TryPersist(0), 0u);  // core 0 has nothing staged: defers
  EXPECT_EQ(eng->TryPersist(1), 3u);  // designated pending core leads
  EXPECT_EQ(logs_[1]->entries_appended(), 3u);
  EXPECT_EQ(logs_[2]->entries_appended(), 0u);
  for (int c = 1; c < kCores; c++) {
    uint64_t off, t;
    EXPECT_TRUE(eng->IsDone(c, handles[c], &off, &t));
  }
}

TEST_F(HbEngineTest, VerticalBatchingOnlySelf) {
  auto eng = MakeEngine(BatchMode::kVertical);
  uint64_t h1, h3;
  auto e = Entry(7);
  ASSERT_TRUE(eng->Stage(1, e.data(), e.size(), &h1));
  ASSERT_TRUE(eng->Stage(3, e.data(), e.size(), &h3));
  EXPECT_EQ(eng->TryPersist(1), 1u);  // only its own
  uint64_t off, t;
  EXPECT_TRUE(eng->IsDone(1, h1, &off, &t));
  EXPECT_FALSE(eng->IsDone(3, h3, &off, &t));
  EXPECT_EQ(eng->TryPersist(3), 1u);
}

TEST_F(HbEngineTest, GroupingLimitsStealScope) {
  auto eng = MakeEngine(BatchMode::kPipelinedHB, /*group_size=*/2);
  // Cores {0,1} and {2,3} form separate groups.
  uint64_t h1, h2;
  auto e = Entry(7);
  ASSERT_TRUE(eng->Stage(1, e.data(), e.size(), &h1));
  ASSERT_TRUE(eng->Stage(2, e.data(), e.size(), &h2));
  EXPECT_EQ(eng->TryPersist(1), 1u);  // persists core 1's group only
  uint64_t off, t;
  EXPECT_TRUE(eng->IsDone(1, h1, &off, &t));
  EXPECT_FALSE(eng->IsDone(2, h2, &off, &t));
}

TEST_F(HbEngineTest, BatchingAmortizesLineFlushes) {
  auto eng = MakeEngine(BatchMode::kPipelinedHB);
  // Warm up chunk allocation on every core (any of them may lead).
  auto e = Entry(1);
  for (int c = 0; c < kCores; c++) {
    uint64_t h;
    ASSERT_TRUE(eng->Stage(c, e.data(), e.size(), &h));
    uint8_t dummy[log::kPtrEntrySize];
    log::EncodePutPtr(dummy, 1, 1, 0x100u * 256);
    log::OpLog::EntryRef ref{dummy, log::kPtrEntrySize};
    uint64_t off;
    ASSERT_TRUE(logs_[c]->AppendBatch(&ref, 1, &off));  // allocate chunk c
    eng->Wait(c, h);
    eng->Release(c, h);
  }

  auto before = pool_->stats().Get();
  std::vector<uint64_t> handles;
  for (int c = 0; c < kCores; c++) {
    for (int i = 0; i < 4; i++) {  // 16 entries total
      uint64_t hh;
      ASSERT_TRUE(eng->Stage(c, e.data(), e.size(), &hh));
      handles.push_back(hh);
    }
  }
  // Leadership is round-robin (the baton may sit at any core after the
  // warm-up): pump cores until one of them leads the merged batch.
  size_t persisted = 0;
  for (int c = 0; c < kCores && persisted == 0; c++) {
    persisted = eng->TryPersist(c);
  }
  EXPECT_EQ(persisted, 16u);
  auto d = pm::Delta(before, pool_->stats().Get());
  // 16 x 16 B entries = 4 data lines + 1 tail line.
  EXPECT_EQ(d.lines_flushed, 5u);
}

TEST_F(HbEngineTest, PipelinedReleasesLockBeforePersistInSimTime) {
  // In simulated time the pipelined leader's collection window must be
  // much shorter than the naive leader's (which holds through persist).
  pm::PmDevice device;
  pm::PmPool::Options o;
  o.size = 64ull << 20;
  o.device = &device;
  pm::PmPool timed_pool(o);
  log::RootArea root(&timed_pool);
  root.Format(1);
  alloc::LazyAllocator alloc(&timed_pool, alloc::kChunkSize,
                             o.size - alloc::kChunkSize, 1);
  log::OpLog olog(&root, &alloc, 0);
  std::vector<log::OpLog*> raw{&olog};

  auto run = [&](BatchMode mode) {
    HbEngine eng(raw, 1, mode);
    vt::Clock clock;
    vt::ScopedClock bind(&clock);
    auto e = Entry(9);
    uint64_t h;
    EXPECT_TRUE(eng.Stage(0, e.data(), e.size(), &h));
    eng.TryPersist(0);
    return clock.now();
  };
  // Both modes do the same work for a single batch; this is a smoke check
  // that simulated time advances through the device model at all.
  EXPECT_GT(run(BatchMode::kPipelinedHB), 0u);
  EXPECT_GT(run(BatchMode::kNaiveHB), 0u);
}

TEST_F(HbEngineTest, PoolFullReportsBackpressure) {
  auto eng = MakeEngine(BatchMode::kPipelinedHB);
  auto e = Entry(5);
  uint64_t h;
  size_t staged = 0;
  while (eng->Stage(0, e.data(), e.size(), &h)) staged++;
  EXPECT_EQ(staged, HbEngine::kPoolSlots);
  // Draining makes room again.
  EXPECT_GT(eng->TryPersist(0), 0u);
  uint64_t off, t;
  ASSERT_TRUE(eng->IsDone(0, 0, &off, &t));
  eng->Release(0, 0);
  EXPECT_TRUE(eng->Stage(0, e.data(), e.size(), &h));
}

TEST_F(HbEngineTest, ConcurrentCoresAllComplete) {
  auto eng = MakeEngine(BatchMode::kPipelinedHB);
  constexpr int kOpsPerCore = 5000;
  std::atomic<uint64_t> total_done{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kCores; c++) {
    threads.emplace_back([&, c] {
      vt::Clock clock;
      vt::ScopedClock bind(&clock);
      std::vector<uint64_t> outstanding;
      uint64_t done = 0;
      uint64_t next_key = static_cast<uint64_t>(c) << 32;
      int staged = 0;
      while (done < kOpsPerCore) {
        // Stage a few ops.
        while (staged < kOpsPerCore && outstanding.size() < 64) {
          auto e = Entry(next_key++);
          uint64_t h;
          if (!eng->Stage(c, e.data(), e.size(), &h)) break;
          outstanding.push_back(h);
          staged++;
        }
        eng->TryPersist(c);
        // Drain completions in FIFO order.
        while (!outstanding.empty()) {
          uint64_t off, t;
          if (!eng->IsDone(c, outstanding.front(), &off, &t)) break;
          eng->Release(c, outstanding.front());
          outstanding.erase(outstanding.begin());
          done++;
        }
      }
      total_done.fetch_add(done);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total_done.load(), static_cast<uint64_t>(kCores) * kOpsPerCore);

  // Every staged entry landed in exactly one log; entries are intact.
  uint64_t total_logged = 0;
  for (auto& l : logs_) total_logged += l->entries_appended();
  EXPECT_EQ(total_logged, static_cast<uint64_t>(kCores) * kOpsPerCore);
  EXPECT_GT(eng->batches(), 0u);
}

TEST_F(HbEngineTest, ModeNames) {
  EXPECT_STREQ(BatchModeName(BatchMode::kNone), "none");
  EXPECT_STREQ(BatchModeName(BatchMode::kVertical), "vertical");
  EXPECT_STREQ(BatchModeName(BatchMode::kNaiveHB), "naive-hb");
  EXPECT_STREQ(BatchModeName(BatchMode::kPipelinedHB), "pipelined-hb");
}

}  // namespace
}  // namespace batch
}  // namespace flatstore
