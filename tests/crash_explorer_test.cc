// Exhaustive crash-state exploration of the engine's core workloads.
//
// Each test builds a small scripted workload and lets the CrashExplorer
// cut power at EVERY flush index it issues, under all four PmPool crash
// modes (clean, torn, unordered, eviction), validating each crash image
// with fsck + recovery + a durability oracle + a write probe. A failure
// prints one deterministic repro line; feed its (mode, flush, seed) back
// into CrashExplorer::RunPoint to replay it.
//
// Workloads are deliberately tiny (a few hundred flushes): the point is
// exhaustive enumeration, and the per-4MB-chunk heavy lifting (forced log
// rotation via SealActiveLogChunks) keeps GC reachable without megabytes
// of fill traffic.

#include <string>

#include "gtest/gtest.h"
#include "harness/crash_explorer.h"

namespace flatstore {
namespace testing {
namespace {

core::FlatStoreOptions SmallStore(int cores) {
  core::FlatStoreOptions o;
  o.num_cores = cores;
  o.group_size = cores;
  o.hash_initial_depth = 4;
  return o;
}

std::string Val(char fill, size_t n) { return std::string(n, fill); }

// Mixed-size puts with overwrites: inline values, the 256 B inline
// boundary, and out-of-log blocks (which take the two-fence l-persist
// path before the log append).
void PutWorkload(WorkloadCtx& ctx) {
  for (uint64_t k = 1; k <= 8; k++) {
    ctx.Put(k, Val('a' + static_cast<char>(k % 26), 8 + 13 * k));
  }
  ctx.Put(100, Val('x', 256));  // largest inline value
  ctx.Put(101, Val('y', 257));  // smallest out-of-log value
  ctx.Put(102, Val('z', 600));
  for (uint64_t k = 1; k <= 8; k += 2) {
    ctx.Put(k, Val('A' + static_cast<char>(k % 26), 24 * k));  // overwrite
  }
  ctx.Put(102, Val('w', 900));  // out-of-log overwrite
}

// Deletes crossed with re-puts: tombstones, delete-of-absent, and
// delete + re-insert version chains.
void DeleteWorkload(WorkloadCtx& ctx) {
  for (uint64_t k = 1; k <= 10; k++) {
    ctx.Put(k, Val('d', 32 + 7 * k));
  }
  for (uint64_t k = 1; k <= 10; k += 2) ctx.Delete(k);
  ctx.Delete(999);  // absent key
  ctx.Put(3, Val('r', 48));  // re-put after delete
  ctx.Put(5, Val('s', 300));
  ctx.Delete(5);
  ctx.Delete(2);
  ctx.Delete(4);
}

// Log cleaning: stage a mostly-dead sealed chunk before arming, then
// enumerate every flush of the cleaning pass itself — survivor copy,
// used_final commit, index swing, chunk unlink, and the registry journal
// commit (UnregisterChunk) in the deferred release all fall inside the
// window.
void GcWorkload(WorkloadCtx& ctx) {
  for (uint64_t k = 1; k <= 12; k++) {
    ctx.Put(k, Val('g', 64));
  }
  ctx.store->SealActiveLogChunks();  // chunk 1 sealed at 12 entries
  for (uint64_t k = 1; k <= 10; k++) {
    ctx.Put(k, Val('h', 72));  // supersede: chunk 1 drops to 2/12 live
  }
  ctx.Arm();
  ctx.store->RunCleanersOnce();  // relocates 2 survivors, retires chunk 1
  // The volatile counter proves cleaning really ran in every replay (it
  // works even after the simulated power cut, which only affects PM).
  EXPECT_GT(ctx.store->ChunksCleaned(), 0u);
  ctx.Put(50, Val('p', 40));
  ctx.Delete(2);
}

// Online checkpoints: the second CheckpointNow rewrites the first (the
// crash-hardened path: the stale checkpoint must be disarmed before its
// covered fields change), with live traffic in between and after.
void CheckpointWorkload(WorkloadCtx& ctx) {
  for (uint64_t k = 1; k <= 10; k++) {
    ctx.Put(k, Val('c', 40 + 3 * k));
  }
  ctx.Arm();
  ctx.Put(11, Val('c', 64));
  ctx.store->CheckpointNow();
  ctx.Put(12, Val('m', 90));
  ctx.Delete(3);
  ctx.store->CheckpointNow();
  ctx.Put(13, Val('n', 300));
}

// Fused batched writes (MultiPutOnCore): every flush inside the batch —
// the out-of-log l-persists sharing one trailing fence, the single fused
// AppendBatch (one reservation, one persist sweep, one tail record), and
// the batched drain's retirements — becomes a crash point. A torn fused
// persist may durably apply any prefix of the batch; the oracle accepts
// old-or-new independently per key, which the prefix satisfies. Keys are
// distinct within each batch (the oracle's boundary tracks one pending
// value per key; intra-batch chains are covered by multiput_test).
void MultiPutWorkload(WorkloadCtx& ctx) {
  struct Op {
    uint64_t key;
    std::string value;  // empty + tombstone set => delete
    bool tombstone;
  };
  auto run_batch = [&ctx](const std::vector<Op>& batch) {
    if (ctx.PowerLost()) return;
    core::WriteOp ops[core::kMaxWriteBatch];
    core::OpStatus statuses[core::kMaxWriteBatch];
    for (size_t i = 0; i < batch.size(); i++) {
      const Op& op = batch[i];
      ops[i] = {op.key, op.value.data(),
                static_cast<uint32_t>(op.value.size()), op.tombstone};
      if (op.tombstone) {
        ctx.oracle->WillDelete(op.key);
      } else {
        ctx.oracle->WillPut(op.key, op.value);
      }
    }
    ctx.store->MultiPutOnCore(0, ops, batch.size(), statuses);
    if (ctx.PowerLost()) return;
    for (const Op& op : batch) ctx.oracle->Acked(op.key);
  };

  // Durable base: overwrite and delete targets for the batches below.
  for (uint64_t k = 1; k <= 8; k++) {
    ctx.Put(k, Val('m', 24 + 9 * k));
  }

  // Batch 1: fresh inserts, inline sizes plus one out-of-log value (the
  // l-persist + deferred-fence path ahead of the fused append).
  std::vector<Op> b1;
  for (uint64_t k = 10; k <= 17; k++) {
    b1.push_back({k, Val('f', 16 + 11 * (k - 10)), false});
  }
  b1.push_back({18, Val('F', 300), false});
  run_batch(b1);

  // Batch 2: overwrites, deletes of present and absent keys, and an
  // out-of-log overwrite — mixed kinds in one fused group.
  std::vector<Op> b2;
  for (uint64_t k = 1; k <= 5; k++) {
    b2.push_back({k, Val('o', 40 + 5 * k), false});
  }
  b2.push_back({7, std::string(), true});
  b2.push_back({8, std::string(), true});
  b2.push_back({999, std::string(), true});  // absent: kNotFound, unstaged
  b2.push_back({18, Val('O', 600), false});
  run_batch(b2);

  // Batch 3: cross-batch version chains onto batch 1's keys.
  run_batch({{10, Val('t', 52), false},
             {11, std::string(), true},
             {21, Val('t', 28), false}});
}

// Transactions (§5.3): committed, aborted (CAS-fail), and CAS-success
// chains, with inline, out-of-log, RMW, and delete members. Every flush
// of the chain encode, the fused group persist, and the commit record
// becomes a crash point; the oracle folds each txn's keys in as a unit
// (all WillPut before the commit, all Acked after), so a recovered image
// must show every key old-or-new — and the all-or-nothing requirement on
// top of that is asserted directly by txn_crash_test.
void TxnWorkload(WorkloadCtx& ctx) {
  for (uint64_t k = 1; k <= 6; k++) {
    ctx.Put(k, Val('t', 20 + 9 * k));
  }

  auto commit = [&ctx](const std::vector<core::TxnOp>& ops,
                       core::TxnStatus want) {
    if (ctx.PowerLost()) return;
    for (const core::TxnOp& op : ops) {
      if (want != core::TxnStatus::kCommitted) continue;
      if (op.kind == core::TxnOpKind::kDelete) {
        ctx.oracle->WillDelete(op.key);
      } else if (op.kind != core::TxnOpKind::kRmw) {
        ctx.oracle->WillPut(
            op.key, std::string(static_cast<const char*>(op.value), op.len));
      }
    }
    EXPECT_EQ(ctx.store->CommitTxnOnCore(0, ops.data(), ops.size()), want);
    if (ctx.PowerLost()) return;
    if (want != core::TxnStatus::kCommitted) return;
    for (const core::TxnOp& op : ops) {
      if (op.kind != core::TxnOpKind::kRmw) ctx.oracle->Acked(op.key);
    }
  };
  auto put = [](uint64_t key, const std::string& v) {
    core::TxnOp op;
    op.kind = core::TxnOpKind::kPut;
    op.key = key;
    op.value = v.data();
    op.len = static_cast<uint32_t>(v.size());
    return op;
  };

  // Txn 1 commits: inline puts, an out-of-log put, a delete.
  const std::string t1a = Val('T', 24);
  const std::string t1b = Val('U', 400);
  core::TxnOp del;
  del.kind = core::TxnOpKind::kDelete;
  del.key = 3;
  commit({put(1, t1a), put(2, t1b), del}, core::TxnStatus::kCommitted);

  // Txn 2 aborts on a failing CAS (after an out-of-log member whose
  // value block is allocated, persisted, and freed): nothing staged.
  const std::string big = Val('V', 300);
  const std::string wrong = "never-this";
  core::TxnOp cas;
  cas.kind = core::TxnOpKind::kCas;
  cas.key = 4;
  cas.expected = wrong.data();
  cas.expected_len = static_cast<uint32_t>(wrong.size());
  cas.value = big.data();
  cas.len = static_cast<uint32_t>(big.size());
  commit({put(30, big), cas}, core::TxnStatus::kCasMismatch);

  // Txn 3 commits through a successful CAS on known state.
  const std::string t3 = Val('W', 48);
  core::TxnOp cas_ok;
  cas_ok.kind = core::TxnOpKind::kCas;
  cas_ok.key = 1;
  cas_ok.expected = t1a.data();
  cas_ok.expected_len = static_cast<uint32_t>(t1a.size());
  cas_ok.value = t3.data();
  cas_ok.len = static_cast<uint32_t>(t3.size());
  commit({cas_ok, put(5, t3)}, core::TxnStatus::kCommitted);
}

// Log-to-tier conversion (DESIGN.md §11): a sealed, partly superseded
// chunk is converted into persistent tier nodes and detached from replay.
// Every flush inside the conversion — arena chunk formatting, the
// reserve fence, node persists, L0 link publishes, the kChunkTiered
// commit store, and the advisory frontier update — becomes a crash
// point. Before the commit a crash must replay the chunk (tier nodes are
// harmless version-duel duplicates); after it, recovery must load the
// nodes instead. Live traffic follows so post-conversion appends land in
// the delta sets too.
void TieringWorkload(WorkloadCtx& ctx) {
  for (uint64_t k = 1; k <= 12; k++) {
    ctx.Put(k, Val('t', 40 + 5 * k));
  }
  ctx.Put(13, Val('T', 300));  // out-of-log value behind a tier node
  ctx.store->SealActiveLogChunks();  // chunk 1 sealed at 13 entries
  for (uint64_t k = 1; k <= 5; k++) {
    ctx.Put(k, Val('u', 64));  // supersede: tier must skip these
  }
  ctx.Delete(6);  // live tombstone: tiered, then vetoed from the index
  ctx.Arm();
  ctx.store->RunTieringOnce();
  // Volatile counter: proves conversion really ran in every replay.
  EXPECT_GT(ctx.store->ChunksTiered(), 0u);
  ctx.Put(50, Val('v', 40));  // post-conversion delta-set traffic
  ctx.Delete(8);
  ctx.Put(9, Val('w', 72));
}

struct MatrixCase {
  const char* name;
  int cores;
  Workload workload;
  bool tier = false;  // run the store with the persistent tier enabled
};

class CrashMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

// The tentpole acceptance test: every flush index x every crash mode for
// put / delete / GC / checkpoint workloads.
TEST_P(CrashMatrixTest, EveryFlushIndexEveryMode) {
  const MatrixCase& c = GetParam();
  ExplorerOptions opts;
  opts.store = SmallStore(c.cores);
  opts.store.tier_enabled = c.tier;
  opts.seeds = CrashSeedsFromEnv({1, 7});
  CrashExplorer explorer(c.name, opts);
  ExplorerResult res = explorer.Explore(c.workload);
  EXPECT_GT(res.total_flushes, 0u);
  EXPECT_TRUE(res.ok()) << res.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrashMatrixTest,
    ::testing::Values(MatrixCase{"put", 2, PutWorkload},
                      MatrixCase{"delete", 2, DeleteWorkload},
                      MatrixCase{"gc", 1, GcWorkload},
                      MatrixCase{"checkpoint", 1, CheckpointWorkload},
                      MatrixCase{"multiput", 1, MultiPutWorkload},
                      MatrixCase{"txn", 1, TxnWorkload},
                      MatrixCase{"tiering", 1, TieringWorkload, true}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(info.param.name);
    });

// Prefix-atomicity of one fused commit, asserted directly (the oracle in
// the matrix test above only checks old-or-new per key, not ordering):
// for EVERY flush budget inside a fused MultiPut batch, under every
// crash mode, the recovered store must expose a *prefix* of the batch —
// no entry visible while a predecessor in the same fused chain is
// missing. This is what makes a torn fused persist safe: the log scan
// stops at the first non-durable entry, so later entries whose lines
// happened to commit (unordered/eviction modes) are never replayed.
TEST(MultiPutCrash, FusedCommitIsPrefixAtomic) {
  constexpr uint64_t kBatch = 12;
  const auto options = SmallStore(1);
  auto old_val = [](uint64_t i) { return Val('o', 20 + 3 * i); };
  auto new_val = [](uint64_t i) { return Val('n', 33 + 5 * i); };

  // The scripted scenario: preload old values durably, then one fused
  // batch overwriting all of them (inline sizes plus one out-of-log
  // value so the l-persist flushes are inside the window too).
  auto make_pool = [] {
    pm::PmPool::Options po;
    po.size = 32ull << 20;
    po.crash_tracking = true;
    return std::make_unique<pm::PmPool>(po);
  };
  auto run_batch = [&](core::FlatStore* store) {
    std::string vals[kBatch];
    core::WriteOp ops[kBatch];
    core::OpStatus statuses[kBatch];
    for (uint64_t i = 0; i < kBatch; i++) {
      vals[i] = new_val(i);
      if (i == kBatch / 2) vals[i] = Val('n', 400);  // out-of-log
      ops[i] = {i + 1, vals[i].data(),
                static_cast<uint32_t>(vals[i].size()), false};
    }
    store->MultiPutOnCore(0, ops, kBatch, statuses);
  };

  // Dry run: count the line flushes the batch issues.
  uint64_t total = 0;
  {
    auto pool = make_pool();
    auto store = core::FlatStore::Create(pool.get(), options);
    for (uint64_t i = 0; i < kBatch; i++) store->Put(i + 1, old_val(i));
    const uint64_t start = pool->stats().Get().lines_flushed;
    run_batch(store.get());
    total = pool->stats().Get().lines_flushed - start;
  }
  ASSERT_GT(total, 0u);

  const std::vector<uint64_t> seeds = CrashSeedsFromEnv({1, 7});
  uint64_t points = 0;
  for (pm::PmPool::CrashMode mode :
       {pm::PmPool::CrashMode::kClean, pm::PmPool::CrashMode::kTorn,
        pm::PmPool::CrashMode::kUnordered,
        pm::PmPool::CrashMode::kEviction}) {
    const size_t nseeds =
        mode == pm::PmPool::CrashMode::kClean ? 1 : seeds.size();
    for (size_t s = 0; s < nseeds; s++) {
      for (uint64_t budget = 1; budget <= total; budget++) {
        auto pool = make_pool();
        auto store = core::FlatStore::Create(pool.get(), options);
        for (uint64_t i = 0; i < kBatch; i++) store->Put(i + 1, old_val(i));
        pool->SetCrashMode(mode, seeds[s]);
        pool->SetFlushBudget(static_cast<int64_t>(budget));
        run_batch(store.get());
        store.reset();  // post-cut teardown: flushes no longer persist
        pool->SimulateCrash();

        auto rec = core::FlatStore::Open(pool.get(), options);
        bool missing_predecessor = false;
        for (uint64_t i = 0; i < kBatch; i++) {
          const std::string want_new =
              i == kBatch / 2 ? Val('n', 400) : new_val(i);
          std::string got;
          ASSERT_TRUE(rec->Get(i + 1, &got))
              << pm::PmPool::CrashModeName(mode) << " flush " << budget
              << " seed " << seeds[s] << ": preloaded key " << i + 1
              << " vanished";
          if (got == want_new) {
            EXPECT_FALSE(missing_predecessor)
                << pm::PmPool::CrashModeName(mode) << " flush " << budget
                << " seed " << seeds[s] << ": batch entry " << i
                << " visible after a missing predecessor";
          } else {
            ASSERT_EQ(got, old_val(i))
                << pm::PmPool::CrashModeName(mode) << " flush " << budget
                << " seed " << seeds[s] << ": key " << i + 1
                << " is neither old nor new";
            missing_predecessor = true;
          }
        }
        points++;
      }
    }
  }
  EXPECT_GT(points, 0u);
}

// Crash between the cleaner's chunk unlink and the registry journal
// commit, deterministically: every entry of the victim is dead, so the
// armed window is dominated by the retire sequence (index swing,
// BeginRetire, epoch-deferred UnregisterChunk + free). Enumerating every
// flush index necessarily includes the cut points on both sides of the
// journal commit — the scenario the random fuzzer only hit by seed luck.
TEST(CrashExplorerTest, GcRetireJournalWindow) {
  ExplorerOptions opts;
  opts.store = SmallStore(1);
  opts.seeds = CrashSeedsFromEnv({1, 7});
  Workload w = [](WorkloadCtx& ctx) {
    for (uint64_t k = 1; k <= 8; k++) ctx.Put(k, Val('j', 80));
    ctx.store->SealActiveLogChunks();
    for (uint64_t k = 1; k <= 8; k++) ctx.Put(k, Val('k', 80));
    ctx.Arm();  // window: exactly the cleaning pass + teardown
    ctx.store->RunCleanersOnce();
    EXPECT_GT(ctx.store->ChunksCleaned(), 0u);
  };
  CrashExplorer explorer("gc-retire", opts);
  ExplorerResult res = explorer.Explore(w);
  EXPECT_GT(res.total_flushes, 0u);
  EXPECT_TRUE(res.ok()) << res.Summary();
}

// Pipelined cleaning under a tiny per-pass quantum: the scan, relocate,
// and retire stages of ONE victim spread across many RunCleanersOnce
// calls, so the flush enumeration cuts power at every stage boundary —
// mid-scan (no PM writes yet), after a survivor copy but before its
// used_final commit, after the commit but before the victim retires.
// cold_age=0 also routes the survivors through the cold lane, covering
// the cold cleaner chunk's flagged registration.
TEST(CrashExplorerTest, GcStagedQuantumBoundaries) {
  ExplorerOptions opts;
  opts.store = SmallStore(1);
  opts.store.gc_quantum_bytes = 256;  // ~6 scan slices per 12-entry chunk
  opts.store.gc_cold_age = 0;
  opts.seeds = CrashSeedsFromEnv({1, 7});
  Workload w = [](WorkloadCtx& ctx) {
    for (uint64_t k = 1; k <= 12; k++) ctx.Put(k, Val('q', 64));
    ctx.store->SealActiveLogChunks();
    for (uint64_t k = 1; k <= 10; k++) ctx.Put(k, Val('r', 72));
    ctx.Arm();
    // Fixed pass count (flush-deterministic); far more than the ~8 the
    // pipeline needs, so cleaning always completes inside the window.
    for (int i = 0; i < 15; i++) ctx.store->RunCleanersOnce();
    EXPECT_GT(ctx.store->ChunksCleaned(), 0u);
    ctx.Put(60, Val('s', 40));
  };
  CrashExplorer explorer("gc-staged-quantum", opts);
  ExplorerResult res = explorer.Explore(w);
  EXPECT_GT(res.total_flushes, 0u);
  EXPECT_TRUE(res.ok()) << res.Summary();
}

// Relocation split across sub-batches: 33 survivors force two
// CleanerAppendBatch commits (32 + 1), so the enumeration includes the
// half-relocated-victim states between the first sub-batch's used_final
// commit and the second's — the window fsck's duplicate-version rule
// (byte-identical + cleaner-flagged chunk) exists for.
TEST(CrashExplorerTest, GcStagedRelocSubBatches) {
  ExplorerOptions opts;
  opts.store = SmallStore(1);
  opts.store.gc_quantum_bytes = 512;
  opts.seeds = CrashSeedsFromEnv({1, 7});
  Workload w = [](WorkloadCtx& ctx) {
    for (uint64_t k = 1; k <= 67; k++) ctx.Put(k, Val('u', 24));
    ctx.store->SealActiveLogChunks();
    // Supersede 34 of 67: live ratio 0.49 < 0.6 cap, 33 survivors.
    for (uint64_t k = 1; k <= 34; k++) ctx.Put(k, Val('v', 24));
    ctx.Arm();
    for (int i = 0; i < 25; i++) ctx.store->RunCleanersOnce();
    EXPECT_GT(ctx.store->ChunksCleaned(), 0u);
    ctx.Delete(40);
  };
  CrashExplorer explorer("gc-staged-reloc", opts);
  ExplorerResult res = explorer.Explore(w);
  EXPECT_GT(res.total_flushes, 0u);
  EXPECT_TRUE(res.ok()) << res.Summary();
}

// A repro line's (mode, flush, seed) triple must replay to the same
// verdict — spot-check a few points both ways.
TEST(CrashExplorerTest, RunPointIsDeterministic) {
  ExplorerOptions opts;
  opts.store = SmallStore(2);
  CrashExplorer explorer("put", opts);
  for (uint64_t f : {1u, 17u, 40u}) {
    const std::string a =
        explorer.RunPoint(pm::PmPool::CrashMode::kTorn, f, 3, PutWorkload);
    const std::string b =
        explorer.RunPoint(pm::PmPool::CrashMode::kTorn, f, 3, PutWorkload);
    EXPECT_EQ(a, b) << "flush " << f;
  }
}

TEST(CrashExplorerTest, SeedsFromEnvParses) {
  ASSERT_EQ(setenv("FLATSTORE_CRASH_SEEDS", "3,11,0x20", 1), 0);
  EXPECT_EQ(CrashSeedsFromEnv({1}),
            (std::vector<uint64_t>{3, 11, 0x20}));
  ASSERT_EQ(setenv("FLATSTORE_CRASH_SEEDS", "", 1), 0);
  EXPECT_EQ(CrashSeedsFromEnv({1, 2}), (std::vector<uint64_t>{1, 2}));
  ASSERT_EQ(unsetenv("FLATSTORE_CRASH_SEEDS"), 0);
  EXPECT_EQ(CrashSeedsFromEnv({5}), (std::vector<uint64_t>{5}));
}

// The explorer must refuse nondeterministic workloads instead of emitting
// repro lines that would not replay.
TEST(CrashExplorerTest, RejectsNondeterministicWorkloads) {
  ExplorerOptions opts;
  opts.store = SmallStore(1);
  int calls = 0;
  Workload w = [&calls](WorkloadCtx& ctx) {
    ctx.Put(1, Val('n', 32));
    if (++calls % 2 == 0) ctx.Put(2, Val('n', 500));  // extra flushes
  };
  CrashExplorer explorer("flaky", opts);
  ExplorerResult res = explorer.Explore(w);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_NE(res.failures[0].find("nondeterministic"), std::string::npos);
  EXPECT_EQ(res.points_run, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace flatstore
