// Tests of the emulated PM pool: persistence semantics under the shadow
// crash model, flush budgets (power cut mid-operation), offset mapping,
// statistics, and timing integration with the virtual clock.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pm/pm_pool.h"

namespace flatstore {
namespace pm {
namespace {

PmPool::Options CrashOpts(uint64_t size = 8ull << 20) {
  PmPool::Options o;
  o.size = size;
  o.crash_tracking = true;
  return o;
}

TEST(PmPool, SizeRoundedUpTo4MB) {
  PmPool pool(PmPool::Options{.size = 1, .crash_tracking = false});
  EXPECT_EQ(pool.size(), 4ull << 20);
}

TEST(PmPool, OffsetRoundTrip) {
  PmPool pool(CrashOpts());
  char* p = pool.base() + 12345;
  EXPECT_EQ(pool.At(pool.OffsetOf(p)), p);
  EXPECT_EQ(pool.OffsetOf(pool.At(999)), 999u);
}

TEST(PmPool, UnpersistedStoresVanishOnCrash) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0xAB, 128);
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 0);
  EXPECT_EQ(p[127], 0);
}

TEST(PmPool, PersistedStoresSurviveCrash) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0xAB, 128);
  pool.PersistFence(p, 128);
  std::memset(p + 128, 0xCD, 64);  // not persisted
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0xAB);
  EXPECT_EQ(static_cast<unsigned char>(p[127]), 0xAB);
  EXPECT_EQ(p[128], 0);  // unflushed line rolled back
}

TEST(PmPool, PersistGranularityIsWholeCachelines) {
  // Persisting byte 0 makes the *whole first line* durable (adversarial
  // model still persists at line granularity, like real hardware).
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0x11, 64);
  pool.PersistFence(p, 1);
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(p[63]), 0x11);
}

TEST(PmPool, UnalignedRangeCoversStraddledLines) {
  PmPool pool(CrashOpts());
  char* p = pool.base() + 60;  // straddles line 0 and line 1
  std::memset(p, 0x22, 8);
  pool.PersistFence(p, 8);
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(pool.base()[60]), 0x22);
  EXPECT_EQ(static_cast<unsigned char>(pool.base()[67]), 0x22);
}

TEST(PmPool, CrashIsRepeatable) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  p[0] = 1;
  pool.PersistFence(p, 1);
  p[1] = 2;  // lost
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], 0);
  p[2] = 3;
  pool.PersistFence(p + 2, 1);
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[2], 3);
}

TEST(PmPool, FlushBudgetCutsPowerMidSequence) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  pool.SetFlushBudget(2);
  // Three line flushes; only the first two reach the durable image.
  for (int i = 0; i < 3; i++) {
    p[i * 64] = static_cast<char>(i + 1);
    pool.PersistFence(p + i * 64, 1);
  }
  EXPECT_TRUE(pool.PowerLost());
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[64], 2);
  EXPECT_EQ(p[128], 0);  // third flush was beyond the budget
}

TEST(PmPool, NegativeBudgetMeansUnlimited) {
  PmPool pool(CrashOpts());
  pool.SetFlushBudget(-1);
  char* p = pool.base();
  for (int i = 0; i < 100; i++) {
    p[i * 64] = 1;
    pool.PersistFence(p + i * 64, 1);
  }
  EXPECT_FALSE(pool.PowerLost());
  pool.SimulateCrash();
  for (int i = 0; i < 100; i++) EXPECT_EQ(p[i * 64], 1);
}

TEST(PmPool, StatsCountLinesAndFences) {
  PmPool pool(CrashOpts());
  auto before = pool.stats().Get();
  pool.Persist(pool.base(), 256);  // 4 lines
  pool.Persist(pool.base() + 4096, 1);
  pool.Fence();
  auto d = Delta(before, pool.stats().Get());
  EXPECT_EQ(d.persist_calls, 2u);
  EXPECT_EQ(d.lines_flushed, 5u);
  EXPECT_EQ(d.fences, 1u);
  EXPECT_EQ(d.bytes_persisted, 257u);
}

TEST(PmPool, TimingChargesClockThroughDevice) {
  PmDevice device;
  PmPool::Options o;
  o.size = 8ull << 20;
  o.device = &device;
  PmPool pool(o);

  vt::Clock clock;
  vt::ScopedClock bind(&clock);
  pool.Persist(pool.base(), 64);
  uint64_t after_persist = clock.now();
  EXPECT_GE(after_persist, vt::kClwbIssueCost);
  EXPECT_GT(clock.pending_fence(), after_persist);  // flush in flight
  pool.Fence();
  // Fence waits out the device service + ADR latency.
  EXPECT_GE(clock.now(),
            vt::kPmBlockService + vt::kPmFlushLatency);
  EXPECT_EQ(clock.pending_fence(), 0u);
}

TEST(PmPool, NoClockNoCharge) {
  PmDevice device;
  PmPool::Options o;
  o.size = 4ull << 20;
  o.device = &device;
  PmPool pool(o);
  // No bound clock: persist/fence must be safe no-ops timing-wise.
  pool.PersistFence(pool.base(), 4096);
  SUCCEED();
}

TEST(PmPool, ZeroLengthPersistIsNoop) {
  PmPool pool(CrashOpts());
  auto before = pool.stats().Get();
  pool.Persist(pool.base(), 0);
  auto d = Delta(before, pool.stats().Get());
  EXPECT_EQ(d.persist_calls, 0u);
  EXPECT_EQ(d.lines_flushed, 0u);
}

// --- flush-budget edge semantics -------------------------------------------

TEST(PmPool, BudgetExhaustsMidMultiLinePersist) {
  // A single Persist spanning four lines with budget 2: exactly the first
  // two lines become durable, and the cut is visible (PowerLost) already
  // inside the call's effects — not only at the next SetFlushBudget poll.
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0x5A, 256);
  pool.SetFlushBudget(2);
  pool.PersistFence(p, 256);
  EXPECT_TRUE(pool.PowerLost());
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0x5A);
  EXPECT_EQ(static_cast<unsigned char>(p[127]), 0x5A);
  EXPECT_EQ(p[128], 0);
  EXPECT_EQ(p[255], 0);
}

TEST(PmPool, ZeroBudgetLosesPowerBeforeAnyFlush) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  pool.SetFlushBudget(0);
  EXPECT_TRUE(pool.PowerLost());
  p[0] = 1;
  pool.PersistFence(p, 1);
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 0);
}

TEST(PmPool, BudgetReArmsAfterSimulateCrash) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  pool.SetFlushBudget(1);
  p[0] = 1;
  pool.PersistFence(p, 1);
  EXPECT_TRUE(pool.PowerLost());
  pool.SimulateCrash();
  // The crash disables the budget: recovery-time persists are unlimited.
  EXPECT_FALSE(pool.PowerLost());
  p[64] = 2;
  pool.PersistFence(p + 64, 1);
  // A new budget must arm a fresh cut cycle (loss state fully reset).
  pool.SetFlushBudget(1);
  p[128] = 3;
  pool.PersistFence(p + 128, 1);
  p[192] = 4;
  pool.PersistFence(p + 192, 1);
  EXPECT_TRUE(pool.PowerLost());
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[64], 2);
  EXPECT_EQ(p[128], 3);
  EXPECT_EQ(p[192], 0);  // beyond the re-armed budget
}

// --- adversarial crash modes ------------------------------------------------

TEST(PmPool, TornModeTearsExactlyTheCutLine) {
  // Budget 2 under kTorn: line 0 persists whole, line 1 (the exhausting
  // flush) keeps an 8-byte-word subset, line 2 is lost entirely.
  bool saw_partial = false;
  for (uint64_t seed = 0; seed < 24; seed++) {
    PmPool pool(CrashOpts());
    char* p = pool.base();
    std::memset(p, 0x11, 3 * 64);
    pool.SetCrashMode(PmPool::CrashMode::kTorn, seed);
    pool.SetFlushBudget(2);
    for (int i = 0; i < 3; i++) pool.PersistFence(p + i * 64, 1);
    pool.SimulateCrash();
    for (int b = 0; b < 64; b++) EXPECT_EQ(p[b], 0x11);
    for (int b = 128; b < 192; b++) EXPECT_EQ(p[b], 0);
    int new_words = 0;
    for (int w = 0; w < 8; w++) {
      uint64_t word;
      std::memcpy(&word, p + 64 + 8 * w, 8);
      // Every word is atomically old (zero) or new — never shredded.
      EXPECT_TRUE(word == 0 || word == 0x1111111111111111ull);
      if (word != 0) new_words++;
    }
    if (new_words > 0 && new_words < 8) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial) << "no seed in the sweep produced a torn line";
}

TEST(PmPool, TornModeIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    PmPool pool(CrashOpts());
    char* p = pool.base();
    std::memset(p, 0x77, 64);
    pool.SetCrashMode(PmPool::CrashMode::kTorn, seed);
    pool.SetFlushBudget(1);
    pool.PersistFence(p, 1);
    pool.SimulateCrash();
    return std::vector<char>(p, p + 64);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_EQ(run(9), run(9));
}

TEST(PmPool, UnorderedModeFencedLinesAlwaysPersist) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  pool.SetCrashMode(PmPool::CrashMode::kUnordered, 3);
  std::memset(p, 0x33, 128);
  pool.Persist(p, 128);
  pool.Fence();  // both lines ordered and committed
  pool.SetFlushBudget(1);
  p[256] = 1;
  pool.Persist(p + 256, 1);  // exhausts the budget, unfenced
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0x33);
  EXPECT_EQ(static_cast<unsigned char>(p[127]), 0x33);
}

TEST(PmPool, UnorderedModeUnfencedSubsetPersists) {
  // Four lines flushed, power cut before the fence: each line
  // independently persists whole or not at all. Some seed in the sweep
  // must drop a line while keeping a later one (the reordering kClean can
  // never produce).
  bool saw_reorder = false;
  for (uint64_t seed = 0; seed < 32; seed++) {
    PmPool pool(CrashOpts());
    char* p = pool.base();
    std::memset(p, 0x44, 4 * 64);
    pool.SetCrashMode(PmPool::CrashMode::kUnordered, seed);
    pool.SetFlushBudget(4);
    pool.Persist(p, 4 * 64);  // budget exhausts on the 4th line
    pool.SimulateCrash();
    bool persisted[4], dropped_before_persisted = false;
    for (int i = 0; i < 4; i++) {
      const unsigned char first = p[i * 64];
      EXPECT_TRUE(first == 0 || first == 0x44);
      for (int b = 0; b < 64; b++) EXPECT_EQ(p[i * 64 + b], first);
      persisted[i] = first != 0;
    }
    for (int i = 0; i < 4; i++) {
      for (int j = i + 1; j < 4; j++) {
        if (!persisted[i] && persisted[j]) dropped_before_persisted = true;
      }
    }
    if (dropped_before_persisted) saw_reorder = true;
  }
  EXPECT_TRUE(saw_reorder) << "no seed reordered the unfenced flushes";
}

TEST(PmPool, EvictionModeMayPersistUnflushedLines) {
  // A dirty-but-never-flushed line must sometimes survive the cut: code
  // that relies on unflushed data being LOST is broken on real PM.
  bool saw_eviction = false;
  for (uint64_t seed = 0; seed < 32; seed++) {
    PmPool pool(CrashOpts());
    char* p = pool.base();
    p[0] = 1;
    pool.PersistFence(p, 1);   // durable regardless
    std::memset(p + 64, 0x66, 64);  // dirty, never flushed
    pool.SetCrashMode(PmPool::CrashMode::kEviction, seed);
    pool.SetFlushBudget(1);
    p[128] = 2;
    pool.PersistFence(p + 128, 1);  // exhausts the budget
    pool.SimulateCrash();
    EXPECT_EQ(p[0], 1);
    const unsigned char dirty = p[64];
    EXPECT_TRUE(dirty == 0 || dirty == 0x66);
    for (int b = 0; b < 64; b++) EXPECT_EQ(p[64 + b], dirty);
    if (dirty == 0x66) saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction) << "no seed ever evicted the dirty line";
}

TEST(PmPool, EvictionResolvesAtSimulateCrashWithoutBudget) {
  // Even without a flush budget, a SimulateCrash in eviction mode treats
  // itself as the power cut: dirty lines may persist.
  bool saw_eviction = false;
  for (uint64_t seed = 0; seed < 32; seed++) {
    PmPool pool(CrashOpts());
    char* p = pool.base();
    std::memset(p, 0x29, 64);  // dirty
    pool.SetCrashMode(PmPool::CrashMode::kEviction, seed);
    pool.SimulateCrash();
    const unsigned char dirty = p[0];
    EXPECT_TRUE(dirty == 0 || dirty == 0x29);
    if (dirty == 0x29) saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction);
}

TEST(PmPool, CrashModeSurvivesAcrossCutCycles) {
  // The mode and its seed stream carry over SimulateCrash so multi-cycle
  // scenarios (crash fuzzing) stay in the adversarial regime.
  PmPool pool(CrashOpts());
  pool.SetCrashMode(PmPool::CrashMode::kTorn, 1);
  pool.SetFlushBudget(1);
  pool.base()[0] = 1;
  pool.PersistFence(pool.base(), 1);
  pool.SimulateCrash();
  EXPECT_EQ(pool.crash_mode(), PmPool::CrashMode::kTorn);
}

}  // namespace
}  // namespace pm
}  // namespace flatstore
