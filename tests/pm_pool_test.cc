// Tests of the emulated PM pool: persistence semantics under the shadow
// crash model, flush budgets (power cut mid-operation), offset mapping,
// statistics, and timing integration with the virtual clock.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pm/pm_pool.h"

namespace flatstore {
namespace pm {
namespace {

PmPool::Options CrashOpts(uint64_t size = 8ull << 20) {
  PmPool::Options o;
  o.size = size;
  o.crash_tracking = true;
  return o;
}

TEST(PmPool, SizeRoundedUpTo4MB) {
  PmPool pool(PmPool::Options{.size = 1, .crash_tracking = false});
  EXPECT_EQ(pool.size(), 4ull << 20);
}

TEST(PmPool, OffsetRoundTrip) {
  PmPool pool(CrashOpts());
  char* p = pool.base() + 12345;
  EXPECT_EQ(pool.At(pool.OffsetOf(p)), p);
  EXPECT_EQ(pool.OffsetOf(pool.At(999)), 999u);
}

TEST(PmPool, UnpersistedStoresVanishOnCrash) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0xAB, 128);
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 0);
  EXPECT_EQ(p[127], 0);
}

TEST(PmPool, PersistedStoresSurviveCrash) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0xAB, 128);
  pool.PersistFence(p, 128);
  std::memset(p + 128, 0xCD, 64);  // not persisted
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0xAB);
  EXPECT_EQ(static_cast<unsigned char>(p[127]), 0xAB);
  EXPECT_EQ(p[128], 0);  // unflushed line rolled back
}

TEST(PmPool, PersistGranularityIsWholeCachelines) {
  // Persisting byte 0 makes the *whole first line* durable (adversarial
  // model still persists at line granularity, like real hardware).
  PmPool pool(CrashOpts());
  char* p = pool.base();
  std::memset(p, 0x11, 64);
  pool.PersistFence(p, 1);
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(p[63]), 0x11);
}

TEST(PmPool, UnalignedRangeCoversStraddledLines) {
  PmPool pool(CrashOpts());
  char* p = pool.base() + 60;  // straddles line 0 and line 1
  std::memset(p, 0x22, 8);
  pool.PersistFence(p, 8);
  pool.SimulateCrash();
  EXPECT_EQ(static_cast<unsigned char>(pool.base()[60]), 0x22);
  EXPECT_EQ(static_cast<unsigned char>(pool.base()[67]), 0x22);
}

TEST(PmPool, CrashIsRepeatable) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  p[0] = 1;
  pool.PersistFence(p, 1);
  p[1] = 2;  // lost
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], 0);
  p[2] = 3;
  pool.PersistFence(p + 2, 1);
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[2], 3);
}

TEST(PmPool, FlushBudgetCutsPowerMidSequence) {
  PmPool pool(CrashOpts());
  char* p = pool.base();
  pool.SetFlushBudget(2);
  // Three line flushes; only the first two reach the durable image.
  for (int i = 0; i < 3; i++) {
    p[i * 64] = static_cast<char>(i + 1);
    pool.PersistFence(p + i * 64, 1);
  }
  EXPECT_TRUE(pool.PowerLost());
  pool.SimulateCrash();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[64], 2);
  EXPECT_EQ(p[128], 0);  // third flush was beyond the budget
}

TEST(PmPool, NegativeBudgetMeansUnlimited) {
  PmPool pool(CrashOpts());
  pool.SetFlushBudget(-1);
  char* p = pool.base();
  for (int i = 0; i < 100; i++) {
    p[i * 64] = 1;
    pool.PersistFence(p + i * 64, 1);
  }
  EXPECT_FALSE(pool.PowerLost());
  pool.SimulateCrash();
  for (int i = 0; i < 100; i++) EXPECT_EQ(p[i * 64], 1);
}

TEST(PmPool, StatsCountLinesAndFences) {
  PmPool pool(CrashOpts());
  auto before = pool.stats().Get();
  pool.Persist(pool.base(), 256);  // 4 lines
  pool.Persist(pool.base() + 4096, 1);
  pool.Fence();
  auto d = Delta(before, pool.stats().Get());
  EXPECT_EQ(d.persist_calls, 2u);
  EXPECT_EQ(d.lines_flushed, 5u);
  EXPECT_EQ(d.fences, 1u);
  EXPECT_EQ(d.bytes_persisted, 257u);
}

TEST(PmPool, TimingChargesClockThroughDevice) {
  PmDevice device;
  PmPool::Options o;
  o.size = 8ull << 20;
  o.device = &device;
  PmPool pool(o);

  vt::Clock clock;
  vt::ScopedClock bind(&clock);
  pool.Persist(pool.base(), 64);
  uint64_t after_persist = clock.now();
  EXPECT_GE(after_persist, vt::kClwbIssueCost);
  EXPECT_GT(clock.pending_fence(), after_persist);  // flush in flight
  pool.Fence();
  // Fence waits out the device service + ADR latency.
  EXPECT_GE(clock.now(),
            vt::kPmBlockService + vt::kPmFlushLatency);
  EXPECT_EQ(clock.pending_fence(), 0u);
}

TEST(PmPool, NoClockNoCharge) {
  PmDevice device;
  PmPool::Options o;
  o.size = 4ull << 20;
  o.device = &device;
  PmPool pool(o);
  // No bound clock: persist/fence must be safe no-ops timing-wise.
  pool.PersistFence(pool.base(), 4096);
  SUCCEED();
}

TEST(PmPool, ZeroLengthPersistIsNoop) {
  PmPool pool(CrashOpts());
  auto before = pool.stats().Get();
  pool.Persist(pool.base(), 0);
  auto d = Delta(before, pool.stats().Get());
  EXPECT_EQ(d.persist_calls, 0u);
  EXPECT_EQ(d.lines_flushed, 0u);
}

}  // namespace
}  // namespace pm
}  // namespace flatstore
