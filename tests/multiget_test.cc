// Batched read pipeline tests.
//
//  * Index contract: PrefetchGet + GetWithHint must agree with Get on
//    every index, including absent keys, a default (invalid) hint —
//    which takes the base-class fallback — and a hint made stale by
//    splits/resizes between the two phases.
//  * Engine: MultiGetOnCore must match GetOnCore key-for-key across all
//    three index kinds (mixed inline/out-of-log values, absent keys,
//    tombstones), defer keys with in-flight writes, and serve them after
//    the drain with the post-drain value (linearizability).
//  * Server: the batched read path must complete the identical workload
//    as the legacy per-request path (read_batch=1).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/server.h"
#include "index/cceh.h"
#include "index/fast_fair.h"
#include "index/fptree.h"
#include "index/kv_index.h"
#include "index/level_hashing.h"
#include "index/masstree.h"

namespace flatstore {
namespace {

// ---- index-level contract --------------------------------------------------

using Factory = std::unique_ptr<index::KvIndex> (*)(const index::PmContext&);

struct IndexCase {
  const char* name;
  Factory make;
};

std::unique_ptr<index::KvIndex> MakeCceh(const index::PmContext& ctx) {
  return std::make_unique<index::Cceh>(ctx, /*initial_depth=*/2);
}
std::unique_ptr<index::KvIndex> MakeLevel(const index::PmContext& ctx) {
  return std::make_unique<index::LevelHashing>(ctx, /*initial_level_bits=*/4);
}
std::unique_ptr<index::KvIndex> MakeFastFair(const index::PmContext& ctx) {
  return std::make_unique<index::FastFair>(ctx);
}
std::unique_ptr<index::KvIndex> MakeFpTree(const index::PmContext& ctx) {
  return std::make_unique<index::FpTree>(ctx);
}
std::unique_ptr<index::KvIndex> MakeMasstree(const index::PmContext& ctx) {
  return std::make_unique<index::Masstree>(ctx);
}

const IndexCase kCases[] = {
    {"CCEH", MakeCceh},
    {"LevelHashing", MakeLevel},
    {"FastFair", MakeFastFair},
    {"FPTree", MakeFpTree},  // no override: exercises the base fallback
    {"Masstree", MakeMasstree},
};

class TwoPhaseLookupTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  std::unique_ptr<index::KvIndex> Make() {
    return GetParam().make(index::PmContext{});
  }
};

TEST_P(TwoPhaseLookupTest, AgreesWithGetIncludingAbsentKeys) {
  auto idx = Make();
  for (uint64_t k = 0; k < 512; k++) idx->Insert(k * 2, k * 2 + 1000);
  for (uint64_t k = 0; k < 1024; k++) {
    uint64_t direct = 0, hinted = 0;
    const bool found = idx->Get(k, &direct);
    index::LookupHint hint;
    idx->PrefetchGet(k, &hint);
    ASSERT_EQ(idx->GetWithHint(k, hint, &hinted), found) << "key " << k;
    if (found) EXPECT_EQ(hinted, direct) << "key " << k;
  }
}

TEST_P(TwoPhaseLookupTest, DefaultHintFallsBackToFullLookup) {
  auto idx = Make();
  idx->Insert(7, 77);
  index::LookupHint hint;  // valid=false: never prefetched
  uint64_t v = 0;
  ASSERT_TRUE(idx->GetWithHint(7, hint, &v));
  EXPECT_EQ(v, 77u);
  EXPECT_FALSE(idx->GetWithHint(8, hint, &v));
}

// A hint taken before heavy insertion must still resolve correctly after
// the structure reshaped itself (CCEH splits, Level-Hashing resizes,
// tree leaves split) — via revalidation fallback or sibling walks.
TEST_P(TwoPhaseLookupTest, SurvivesStructuralChangesBetweenPhases) {
  auto idx = Make();
  constexpr uint64_t kPinned = 64;
  for (uint64_t k = 0; k < kPinned; k++) idx->Insert(k, k + 500);

  index::LookupHint hints[kPinned];
  for (uint64_t k = 0; k < kPinned; k++) idx->PrefetchGet(k, &hints[k]);

  // Grow the index well past several split/resize thresholds.
  for (uint64_t k = 1000; k < 9000; k++) idx->Insert(k, k);

  for (uint64_t k = 0; k < kPinned; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(idx->GetWithHint(k, hints[k], &v)) << "key " << k;
    EXPECT_EQ(v, k + 500) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, TwoPhaseLookupTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

// ---- engine-level MultiGetOnCore -------------------------------------------

namespace core_tests {

using core::FlatStore;
using core::GetResult;
using core::ReadResult;

struct Store {
  explicit Store(core::IndexKind kind, int cores = 2) {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pool = std::make_unique<pm::PmPool>(o);
    core::FlatStoreOptions fo;
    fo.num_cores = cores;
    fo.group_size = cores;
    fo.index = kind;
    fo.hash_initial_depth = 4;
    store = FlatStore::Create(pool.get(), fo);
  }
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<FlatStore> store;
};

class MultiGetTest : public ::testing::TestWithParam<core::IndexKind> {};

std::string ValueFor(uint64_t key) {
  // Mix inline (<= 256 B) and out-of-log block values.
  const size_t len = (key % 3 == 0) ? 1024 + key % 100 : 16 + key % 200;
  return std::string(len, static_cast<char>('a' + key % 26));
}

TEST_P(MultiGetTest, MatchesSingleGetsWithAbsentAndTombstones) {
  Store s(GetParam());
  constexpr uint64_t kKeys = 300;
  for (uint64_t k = 0; k < kKeys; k++) s.store->Put(k, ValueFor(k));
  // Tombstone every 7th key.
  for (uint64_t k = 0; k < kKeys; k += 7) ASSERT_TRUE(s.store->Delete(k));

  for (int core = 0; core < 2; core++) {
    // Batch the core's keys (present, deleted, and never-written ones).
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < kKeys + 100 && keys.size() < core::kMaxReadBatch;
         k++) {
      if (s.store->CoreForKey(k) == core) keys.push_back(k);
    }
    ASSERT_FALSE(keys.empty());
    std::vector<ReadResult> results(keys.size());
    const size_t served =
        s.store->MultiGetOnCore(core, keys.data(), keys.size(),
                                results.data());
    EXPECT_EQ(served, keys.size()) << "nothing in flight: no deferrals";
    for (size_t i = 0; i < keys.size(); i++) {
      std::string single;
      const bool found = s.store->GetOnCore(core, keys[i], &single);
      if (found) {
        ASSERT_EQ(results[i].status, GetResult::kFound) << "key " << keys[i];
        EXPECT_EQ(results[i].value, single) << "key " << keys[i];
      } else {
        ASSERT_EQ(results[i].status, GetResult::kAbsent) << "key " << keys[i];
      }
    }
  }
}

TEST_P(MultiGetTest, InFlightWritesDeferThenServePostDrainValue) {
  Store s(GetParam(), /*cores=*/1);
  s.store->Put(1, "old-one");
  s.store->Put(2, "two");
  s.store->Put(3, "three");

  // Stage (l-persist) a write on key 1 without draining it.
  FlatStore::OpHandle h;
  ASSERT_EQ(s.store->BeginPut(0, 1, "new-one", 7, &h), core::OpStatus::kOk);
  ASSERT_TRUE(s.store->KeyBusy(0, 1));

  uint64_t keys[3] = {1, 2, 3};
  ReadResult results[3];
  EXPECT_EQ(s.store->MultiGetOnCore(0, keys, 3, results), 2u);
  EXPECT_EQ(results[0].status, GetResult::kDeferred);
  ASSERT_EQ(results[1].status, GetResult::kFound);
  EXPECT_EQ(results[1].value, "two");
  ASSERT_EQ(results[2].status, GetResult::kFound);
  EXPECT_EQ(results[2].value, "three");

  // Complete the write; the retried read must see the new value.
  s.store->Pump(0);
  s.store->Drain(0, SIZE_MAX, nullptr);
  ASSERT_FALSE(s.store->KeyBusy(0, 1));
  EXPECT_EQ(s.store->MultiGetOnCore(0, keys, 1, results), 1u);
  ASSERT_EQ(results[0].status, GetResult::kFound);
  EXPECT_EQ(results[0].value, "new-one");
}

TEST_P(MultiGetTest, ReusedResultsArrayDoesNotLeakStatuses) {
  Store s(GetParam(), /*cores=*/1);
  s.store->Put(5, "five");
  ReadResult results[2];
  results[0].status = GetResult::kDeferred;  // stale garbage from a prior use
  results[1].status = GetResult::kFound;
  results[1].value = "stale";
  uint64_t keys[2] = {5, 6};  // 6 absent
  EXPECT_EQ(s.store->MultiGetOnCore(0, keys, 2, results), 2u);
  ASSERT_EQ(results[0].status, GetResult::kFound);
  EXPECT_EQ(results[0].value, "five");
  EXPECT_EQ(results[1].status, GetResult::kAbsent);
  EXPECT_TRUE(results[1].value.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MultiGetTest,
    ::testing::Values(core::IndexKind::kHash, core::IndexKind::kMasstree,
                      core::IndexKind::kFastFairVolatile),
    [](const auto& info) -> std::string {
      switch (info.param) {
        case core::IndexKind::kHash: return "Hash";
        case core::IndexKind::kMasstree: return "Masstree";
        case core::IndexKind::kFastFairVolatile: return "FastFair";
      }
      return "Unknown";
    });

// ---- server-level: batched vs legacy read path -----------------------------

TEST(MultiGetServer, BatchedPathCompletesSameWorkloadAsLegacy) {
  core::ServerResult results[2];
  for (int i = 0; i < 2; i++) {
    pm::PmPool::Options o;
    o.size = 512ull << 20;
    pm::PmPool pool(o);
    core::FlatStoreOptions fo;
    fo.num_cores = 4;
    fo.group_size = 4;
    auto store = FlatStore::Create(&pool, fo);
    core::FlatStoreAdapter adapter(store.get());

    core::ServerConfig cfg;
    cfg.num_conns = 8;
    cfg.client_threads = 1;
    cfg.ops_per_conn = 2000;
    cfg.read_batch = i == 0 ? 1 : 16;
    cfg.workload.key_space = 4096;
    cfg.workload.value_len = 64;
    cfg.workload.get_ratio = 0.9;
    cfg.workload.delete_ratio = 0.02;
    core::Preload(&adapter, cfg.workload, cfg.workload.key_space);
    results[i] = core::RunServer(&adapter, cfg);
  }
  EXPECT_EQ(results[0].ops, results[1].ops);
  EXPECT_EQ(results[0].latency.count(), results[1].latency.count());
  EXPECT_GT(results[1].mops, 0.0);
}

}  // namespace core_tests
}  // namespace
}  // namespace flatstore
