#include "harness/crash_explorer.h"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

#include "core/fsck.h"

namespace flatstore {
namespace testing {

namespace {

// FLATSTORE_CHECK failures abort the process, which would otherwise eat
// the repro. Each crash point announces itself here first; a SIGABRT
// handler prints it with async-signal-safe writes.
char g_current_point[256];

void AbortHandler(int) {
  if (g_current_point[0] != '\0') {
    (void)!write(STDERR_FILENO, g_current_point, strlen(g_current_point));
    (void)!write(STDERR_FILENO, " stage=abort (FLATSTORE_CHECK fired)\n",
                 37);
  }
  std::signal(SIGABRT, SIG_DFL);
  std::abort();
}

void InstallAbortHandler() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGABRT, AbortHandler); });
}

std::string Printable(const std::optional<std::string>& v) {
  if (!v.has_value()) return "absent";
  if (v->size() > 16) {
    return "\"" + v->substr(0, 13) + "...\"(" + std::to_string(v->size()) +
           " B)";
  }
  return "\"" + *v + "\"";
}

}  // namespace

// ---- DurabilityOracle ------------------------------------------------------

void DurabilityOracle::WillPut(uint64_t key, std::string value) {
  boundary_[key] = std::move(value);
}

void DurabilityOracle::WillDelete(uint64_t key) {
  boundary_[key] = std::nullopt;
}

void DurabilityOracle::Acked(uint64_t key) {
  auto it = boundary_.find(key);
  if (it == boundary_.end()) return;
  durable_[key] = std::move(it->second);
  boundary_.erase(it);
}

std::string DurabilityOracle::Check(core::FlatStore* store) {
  for (const auto& [key, want] : durable_) {
    if (boundary_.count(key)) continue;  // old-or-new, handled below
    std::string got;
    const bool found = store->Get(key, &got);
    if (want.has_value() ? (!found || got != *want) : found) {
      return "key " + std::to_string(key) + " expected " + Printable(want) +
             ", got " +
             Printable(found ? std::optional<std::string>(got)
                             : std::nullopt);
    }
  }
  // In-flight ops: either the old durable state or the new one is legal.
  for (auto& [key, want_new] : boundary_) {
    std::string got;
    const bool found = store->Get(key, &got);
    const std::optional<std::string> observed =
        found ? std::optional<std::string>(got) : std::nullopt;
    auto it = durable_.find(key);
    const std::optional<std::string> want_old =
        it != durable_.end() ? it->second : std::nullopt;
    if (observed != want_new && observed != want_old) {
      return "in-flight key " + std::to_string(key) + " expected " +
             Printable(want_old) + " or " + Printable(want_new) + ", got " +
             Printable(observed);
    }
    durable_[key] = observed;  // whichever side won is now the truth
  }
  boundary_.clear();
  return "";
}

// ---- WorkloadCtx -----------------------------------------------------------

void WorkloadCtx::Put(uint64_t key, std::string value) {
  if (pool->PowerLost()) return;
  if (oracle != nullptr) oracle->WillPut(key, value);
  store->Put(key, value);
  if (oracle != nullptr && !pool->PowerLost()) oracle->Acked(key);
}

void WorkloadCtx::Delete(uint64_t key) {
  if (pool->PowerLost()) return;
  if (oracle != nullptr) oracle->WillDelete(key);
  store->Delete(key);
  if (oracle != nullptr && !pool->PowerLost()) oracle->Acked(key);
}

void WorkloadCtx::Arm() {
  if (explorer_ != nullptr) explorer_->Armed();
}

// ---- CrashExplorer ---------------------------------------------------------

std::vector<uint64_t> CrashSeedsFromEnv(std::vector<uint64_t> fallback) {
  const char* env = std::getenv("FLATSTORE_CRASH_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<uint64_t> seeds;
  std::stringstream ss(env);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 0));
  }
  return seeds.empty() ? fallback : seeds;
}

std::string ExplorerResult::Summary() const {
  std::ostringstream out;
  out << (ok() ? "PASS" : "FAIL") << ": " << points_run
      << " crash points over a " << total_flushes << "-flush window";
  for (const std::string& f : failures) out << "\n" << f;
  return out.str();
}

CrashExplorer::CrashExplorer(std::string workload_name,
                             ExplorerOptions options)
    : name_(std::move(workload_name)), opts_(std::move(options)) {
  InstallAbortHandler();
}

uint64_t CrashExplorer::DryRun(const Workload& workload) {
  pm::PmPool::Options popt;
  popt.size = opts_.pool_size;
  popt.crash_tracking = true;
  pm::PmPool pool(popt);
  DurabilityOracle oracle;
  auto store = core::FlatStore::Create(&pool, opts_.store);

  dry_ = true;
  armed_ = false;
  cur_pool_ = &pool;
  arm_marker_ = pool.stats().Get().lines_flushed;

  WorkloadCtx ctx;
  ctx.store = store.get();
  ctx.pool = &pool;
  ctx.oracle = &oracle;
  ctx.explorer_ = this;
  workload(ctx);
  workload_arms_ = armed_;

  store.reset();  // teardown flushes are crash points too
  const uint64_t window = pool.stats().Get().lines_flushed - arm_marker_;
  cur_pool_ = nullptr;
  return window;
}

void CrashExplorer::Armed() {
  armed_ = true;
  if (dry_) {
    arm_marker_ = cur_pool_->stats().Get().lines_flushed;
  } else {
    cur_pool_->SetCrashMode(arm_mode_, arm_seed_);
    cur_pool_->SetFlushBudget(arm_budget_);
  }
}

std::string CrashExplorer::RunPoint(pm::PmPool::CrashMode mode,
                                    uint64_t flush_index, uint64_t seed,
                                    const Workload& workload) {
  // A dry run teaches us whether the workload arms itself; without that,
  // pre-arming here would fight a later explicit Arm() (budget reset).
  if (!dry_done_) {
    DryRun(workload);
    dry_done_ = true;
  }

  std::ostringstream prefix;
  prefix << "[crash-explorer] FAIL workload=" << name_
         << " mode=" << pm::PmPool::CrashModeName(mode)
         << " flush=" << flush_index << " seed=" << seed;
  std::snprintf(g_current_point, sizeof(g_current_point), "%s",
                prefix.str().c_str());
  auto fail = [&](const char* stage, const std::string& detail) {
    return prefix.str() + " stage=" + stage + ": " + detail;
  };

  pm::PmPool::Options popt;
  popt.size = opts_.pool_size;
  popt.crash_tracking = true;
  pm::PmPool pool(popt);
  DurabilityOracle oracle;
  auto store = core::FlatStore::Create(&pool, opts_.store);

  dry_ = false;
  armed_ = false;
  cur_pool_ = &pool;
  arm_mode_ = mode;
  arm_seed_ = seed;
  arm_budget_ = static_cast<int64_t>(flush_index);

  WorkloadCtx ctx;
  ctx.store = store.get();
  ctx.pool = &pool;
  ctx.oracle = &oracle;
  ctx.explorer_ = this;
  if (!workload_arms_) Armed();
  workload(ctx);
  store.reset();
  cur_pool_ = nullptr;

  pool.SimulateCrash();

  core::FsckReport report = core::FsckPool(pool);
  if (!report.ok) {
    std::string first;
    for (const core::FsckIssue& i : report.issues) {
      if (i.fatal) {
        first = i.what;
        break;
      }
    }
    return fail("fsck", first.empty() ? report.Summary() : first);
  }

  auto recovered = core::FlatStore::Open(&pool, opts_.store);
  std::string err = oracle.Check(recovered.get());
  if (!err.empty()) return fail("oracle", err);

  // The recovered store must accept new traffic.
  constexpr uint64_t kProbeKey = 0xC4A54E9704417ull;
  recovered->Put(kProbeKey, "explorer-probe");
  std::string v;
  if (!recovered->Get(kProbeKey, &v) || v != "explorer-probe") {
    return fail("probe", "post-recovery put/get round-trip failed");
  }
  recovered->Delete(kProbeKey);
  g_current_point[0] = '\0';
  return "";
}

ExplorerResult CrashExplorer::Explore(const Workload& workload) {
  ExplorerResult res;
  const uint64_t w1 = DryRun(workload);
  const uint64_t w2 = DryRun(workload);
  dry_done_ = true;
  if (w1 != w2) {
    res.failures.push_back(
        "[crash-explorer] workload=" + name_ +
        " is nondeterministic: dry runs flushed " + std::to_string(w1) +
        " vs " + std::to_string(w2) + " lines — every repro would be void");
    return res;
  }
  res.total_flushes = w1;

  for (pm::PmPool::CrashMode mode : opts_.modes) {
    // kClean draws no randomness; running it per seed would duplicate.
    const std::vector<uint64_t> seeds =
        mode == pm::PmPool::CrashMode::kClean ? std::vector<uint64_t>{0}
                                              : opts_.seeds;
    for (uint64_t seed : seeds) {
      for (uint64_t f = 1; f <= w1; f += opts_.stride) {
        std::string err = RunPoint(mode, f, seed, workload);
        res.points_run++;
        if (!err.empty()) {
          res.failures.push_back(std::move(err));
          if (res.failures.size() >= opts_.max_failures) return res;
        }
      }
    }
  }
  return res;
}

}  // namespace testing
}  // namespace flatstore
