// Deterministic crash-state exploration harness.
//
// A CrashExplorer takes a scripted workload, dry-runs it once to count the
// cacheline flushes it issues, then re-executes it once per (crash mode,
// flush index, seed) triple — cutting power at exactly that flush under
// that adversarial PmPool mode — and validates every resulting crash
// image with fsck, recovery, a durability oracle, and a post-recovery
// write probe. Instead of sampling a handful of random cut points, every
// flush of the workload becomes a crash point.
//
// Any failure produces a single deterministic repro line of the form
//
//   [crash-explorer] FAIL workload=gc mode=torn flush=137 seed=2
//       stage=oracle: key 42 expected "v1", got absent
//
// which RunPoint() can replay exactly. The harness is test-only but lives
// in its own library so every suite (and future PRs' durability claims)
// can build workloads on it.
//
// The seed list honours the FLATSTORE_CRASH_SEEDS environment variable
// ("1,2,3"): CI widens nightly coverage without code edits.

#ifndef FLATSTORE_TESTS_HARNESS_CRASH_EXPLORER_H_
#define FLATSTORE_TESTS_HARNESS_CRASH_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/flatstore.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace testing {

// Tracks what a crashed store is REQUIRED to recover. Acknowledged ops
// must survive exactly; the (at most one) op in flight when power died may
// legally resolve to either its old or its new state — whichever the
// recovered store reports is folded back in so checking can continue
// across multiple crash cycles.
class DurabilityOracle {
 public:
  // Declare an op about to be issued (value = nullopt for a delete).
  void WillPut(uint64_t key, std::string value);
  void WillDelete(uint64_t key);
  // The op completed with power still on: it must now be durable.
  void Acked(uint64_t key);

  // Verifies `store` against the required state. Returns "" on success or
  // a one-line diagnosis of the first violation.
  std::string Check(core::FlatStore* store);

  size_t tracked_keys() const { return durable_.size(); }

 private:
  // nullopt = key required absent (deleted / never durably written).
  std::map<uint64_t, std::optional<std::string>> durable_;
  std::map<uint64_t, std::optional<std::string>> boundary_;
};

class CrashExplorer;

// Handle a scripted workload drives the store through. Put/Delete issue
// the op and keep the oracle in sync; both become no-ops once the
// simulated power cut has fired, so no post-mortem traffic is issued.
// Usable standalone (explorer == nullptr) by tests that script their own
// crash choreography but want the oracle bookkeeping.
struct WorkloadCtx {
  core::FlatStore* store = nullptr;
  pm::PmPool* pool = nullptr;
  DurabilityOracle* oracle = nullptr;

  void Put(uint64_t key, std::string value);
  void Delete(uint64_t key);
  bool PowerLost() const { return pool->PowerLost(); }

  // Opens the enumerable crash window here: flushes before Arm() are run
  // in the clean mode with no budget and are never crash points. Without
  // an explicit call the window opens when the workload starts. Lets a
  // workload stage expensive durable preconditions (fill chunks, make
  // garbage) and focus enumeration on the interesting phase (a GC pass, a
  // checkpoint).
  void Arm();

 private:
  friend class CrashExplorer;
  CrashExplorer* explorer_ = nullptr;
};

using Workload = std::function<void(WorkloadCtx&)>;

struct ExplorerOptions {
  uint64_t pool_size = 32ull << 20;
  core::FlatStoreOptions store;
  std::vector<pm::PmPool::CrashMode> modes = {
      pm::PmPool::CrashMode::kClean, pm::PmPool::CrashMode::kTorn,
      pm::PmPool::CrashMode::kUnordered, pm::PmPool::CrashMode::kEviction};
  // Seeds for the randomised modes (kClean draws no randomness and always
  // runs exactly once per flush index).
  std::vector<uint64_t> seeds = {1};
  // Enumerate every stride-th flush index (1 = exhaustive).
  uint64_t stride = 1;
  // Stop after this many failures (each is an independent repro line).
  size_t max_failures = 5;
};

struct ExplorerResult {
  uint64_t total_flushes = 0;  // size of the enumerable window (dry run)
  uint64_t points_run = 0;     // crash images built and validated
  std::vector<std::string> failures;  // one deterministic repro line each

  bool ok() const { return failures.empty(); }
  // Human-readable outcome (repro lines included on failure).
  std::string Summary() const;
};

// Parses FLATSTORE_CRASH_SEEDS ("7,9,13"); returns `fallback` when the
// variable is unset or empty.
std::vector<uint64_t> CrashSeedsFromEnv(std::vector<uint64_t> fallback);

class CrashExplorer {
 public:
  CrashExplorer(std::string workload_name, ExplorerOptions options);

  // Dry-runs the workload twice (flush-count determinism check), then
  // enumerates every (mode, flush index, seed) crash point.
  ExplorerResult Explore(const Workload& workload);

  // Replays one crash point (the triple printed in a repro line).
  // Returns "" when the image passes fsck + recovery + oracle + probe.
  std::string RunPoint(pm::PmPool::CrashMode mode, uint64_t flush_index,
                       uint64_t seed, const Workload& workload);

 private:
  friend struct WorkloadCtx;

  // Called from WorkloadCtx::Arm().
  void Armed();
  // Runs the workload against a fresh pool with no budget; returns the
  // number of flushes in the armed window (workload + store teardown).
  uint64_t DryRun(const Workload& workload);

  std::string name_;
  ExplorerOptions opts_;

  // State of the run currently executing.
  bool dry_ = false;
  bool armed_ = false;
  bool dry_done_ = false;       // a dry run has established workload_arms_
  bool workload_arms_ = false;  // learned in the first dry run
  pm::PmPool* cur_pool_ = nullptr;
  uint64_t arm_marker_ = 0;  // lines_flushed at Arm (dry runs)
  pm::PmPool::CrashMode arm_mode_ = pm::PmPool::CrashMode::kClean;
  uint64_t arm_seed_ = 0;
  int64_t arm_budget_ = -1;
};

}  // namespace testing
}  // namespace flatstore

#endif  // FLATSTORE_TESTS_HARNESS_CRASH_EXPLORER_H_
