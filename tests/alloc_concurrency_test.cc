// Concurrency stress tests of the lazy-persist allocator: many threads
// allocating and freeing concurrently (serving cores + cleaner frees
// happen in parallel in the real deployment) must never double-issue a
// block, corrupt bitmaps, or lose capacity.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "common/random.h"

namespace flatstore {
namespace alloc {
namespace {

class AllocConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr int kThreads = 4;
  static constexpr uint64_t kRegion = 256ull << 20;

  AllocConcurrencyTest() {
    pm::PmPool::Options o;
    o.size = kRegion + kChunkSize;
    pool_ = std::make_unique<pm::PmPool>(o);
    alloc_ = std::make_unique<LazyAllocator>(pool_.get(), kChunkSize,
                                             kRegion, kThreads);
  }

  std::unique_ptr<pm::PmPool> pool_;
  std::unique_ptr<LazyAllocator> alloc_;
};

TEST_F(AllocConcurrencyTest, ParallelAllocsAreDisjoint) {
  std::vector<std::vector<uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 20000; i++) {
        uint64_t size = 300 + rng.Uniform(700);
        uint64_t off = alloc_->Alloc(t, size);
        ASSERT_NE(off, 0u);
        per_thread[t].push_back(off);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::unordered_set<uint64_t> all;
  for (const auto& v : per_thread) {
    for (uint64_t off : v) {
      ASSERT_TRUE(all.insert(off).second) << "block issued twice: " << off;
      ASSERT_TRUE(alloc_->IsAllocated(off));
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * 20000);
}

TEST_F(AllocConcurrencyTest, CrossThreadFreeRace) {
  // Thread t allocates; thread (t+1)%N frees — the cleaner pattern.
  // Ping-pong through bounded queues; every block must round-trip.
  struct Queue {
    std::mutex mu;
    std::vector<uint64_t> items;
  };
  std::vector<Queue> queues(kThreads);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> freed{0};

  std::vector<std::thread> freers;
  for (int t = 0; t < kThreads; t++) {
    freers.emplace_back([&, t] {
      while (true) {
        std::vector<uint64_t> batch;
        {
          std::lock_guard<std::mutex> g(queues[t].mu);
          batch.swap(queues[t].items);
        }
        for (uint64_t off : batch) {
          alloc_->Free(off);
          freed.fetch_add(1, std::memory_order_relaxed);
        }
        if (batch.empty()) {
          if (done.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> g(queues[t].mu);
            if (queues[t].items.empty()) break;
          }
          std::this_thread::yield();
        }
      }
    });
  }

  constexpr uint64_t kOpsPerThread = 15000;
  std::vector<std::thread> allocators;
  for (int t = 0; t < kThreads; t++) {
    allocators.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 77);
      for (uint64_t i = 0; i < kOpsPerThread; i++) {
        uint64_t off = alloc_->Alloc(t, 300 + rng.Uniform(1500));
        ASSERT_NE(off, 0u);
        std::lock_guard<std::mutex> g(queues[(t + 1) % kThreads].mu);
        queues[(t + 1) % kThreads].items.push_back(off);
      }
    });
  }
  for (auto& th : allocators) th.join();
  done.store(true, std::memory_order_release);
  for (auto& th : freers) th.join();

  EXPECT_EQ(freed.load(), kOpsPerThread * kThreads);
  // Everything freed: usage back to zero.
  EXPECT_EQ(alloc_->allocated_bytes(), 0u);
}

// Regression for two lock-discipline bugs the thread-safety annotation
// pass surfaced (PR 4):
//  * FormatValueChunk wrote the fresh chunk's ChunkState (raw flag,
//    owner, bitmap cursor) without its lock while IsAllocated /
//    allocated_bytes readers held it;
//  * Free read st.raw before taking the chunk lock, racing a concurrent
//    recycle of the same chunk between the raw and value pools.
// Mixed raw/value churn plus live readers drives both windows; under
// -DFLATSTORE_SANITIZE=thread (tsan_smoke) any regression is a hard
// data-race report, and in normal builds the end-state invariants catch
// lost formatting.
TEST_F(AllocConcurrencyTest, ChunkRecycleRacesReadersAndFrees) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> last_off{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t off = last_off.load(std::memory_order_acquire);
      if (off != 0) {
        alloc_->IsAllocated(off);  // value is racy by design; TSan
        (void)alloc_->allocated_bytes();  // checks the locking
      }
      std::this_thread::yield();
    }
  });

  std::thread raw_churn([&] {
    // Recycles whole chunks through the raw pool: every round trips a
    // chunk free-list pop + format, flipping ChunkState::raw.
    for (int i = 0; i < 3000; i++) {
      const uint64_t chunk = alloc_->AllocRawChunk(kThreads - 1);
      if (chunk != 0) alloc_->FreeRawChunk(chunk);
    }
  });

  std::vector<std::thread> value_churn;
  for (int t = 0; t < kThreads - 1; t++) {
    value_churn.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 31);
      // Free immediately so chunks fully drain and return to the free
      // list, where the raw churn thread can grab and re-format them.
      for (int i = 0; i < 10000; i++) {
        const uint64_t off = alloc_->Alloc(t, 300 + rng.Uniform(1500));
        ASSERT_NE(off, 0u);
        last_off.store(off, std::memory_order_release);
        alloc_->Free(off);
      }
    });
  }

  for (auto& th : value_churn) th.join();
  raw_churn.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Fully drained, but value chunks legitimately stay parked as a
  // core's current/partial chunk — so assert on bytes, not chunk counts.
  EXPECT_EQ(alloc_->allocated_bytes(), 0u);
}

TEST_F(AllocConcurrencyTest, RawChunkChurnUnderContention) {
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; i++) {
        uint64_t chunk = alloc_->AllocRawChunk(t);
        if (chunk == 0) continue;  // transiently exhausted: fine
        total.fetch_add(1, std::memory_order_relaxed);
        alloc_->FreeRawChunk(chunk);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(total.load(), 0u);
  EXPECT_EQ(alloc_->free_chunks(), alloc_->total_chunks());
}

}  // namespace
}  // namespace alloc
}  // namespace flatstore
