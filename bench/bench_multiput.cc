// Batched write pipeline — MultiPut batch-size sweep. ETC 50:50 mix
// (50 % Put / 50 % Get) under uniform and zipfian key draws for
// FlatStore-H and FlatStore-M, at two levels:
//
//  * core sweep (the headline rows): one serving core driven directly —
//    batch 1 is the legacy synchronous single-op put path (one
//    AppendBatch, i.e. one persist sweep + two fences, per op); batch
//    b > 1 admits b writes per MultiPutOnCore call, which resolves
//    versions behind prefetch-interleaved index probes, l-persists all
//    out-of-log values under one trailing fence, and stages the batch
//    as ONE fused HB group (one log reservation, one persist sweep, one
//    fence pair for the whole batch). Expected shape: Mops >= 1.5x the
//    single-op path by batch 16, and fences per op strictly decreasing
//    with the batch (~2/b plus the out-of-log l-persists).
//  * server sweep (end-to-end context): the full client/server
//    co-simulation sweeping ServerConfig::write_batch. Here batch 1 is
//    already fence-amortized across cores by pipelined-HB leader
//    batching, so the win is admission-side only (prefetch overlap,
//    fused staging, doorbell-chained responses) and is smaller.
//
// Every row lands in BENCH_multiput.json with a "level" discriminator
// and a fences_per_op field (the standard Row schema has none), which
// CI's bench-smoke checks.

#include "bench_common.h"
#include "vt/clock.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("MultiPut batch sweep (ETC 50:50, Mops/s)");
BenchJson g_json("multiput");

constexpr uint64_t kMpKeys = 1 << 18;    // server sweep: preloaded range
constexpr uint64_t kCoreKeys = 1 << 16;  // core sweep: preloaded range

const char* DistName(workload::KeyDist dist) {
  return dist == workload::KeyDist::kUniform ? "uniform" : "zipfian";
}

// ---- core-level sweep ------------------------------------------------------

void RunCorePoint(benchmark::State& state, Rig& rig, const char* name) {
  const workload::KeyDist dist = state.range(0) == 0
                                     ? workload::KeyDist::kUniform
                                     : workload::KeyDist::kZipfian;
  const size_t batch = static_cast<size_t>(state.range(1));
  core::FlatStore* store = rig.flat.get();

  // The core runs on this host thread: bind a simulated clock so every
  // modelled cost (PM service, index misses, fences) advances it.
  vt::Clock clock;
  vt::ScopedClock bind(&clock);

  workload::Config wc;
  wc.key_space = BenchKeys(kCoreKeys);
  wc.etc_values = true;
  wc.dist = dist;
  wc.get_ratio = 0.5;

  // Preload every key so Gets hit and Puts overwrite (steady state).
  std::vector<char> buf(workload::kEtcLargeMax, 'x');
  for (uint64_t k = 0; k < wc.key_space; k++) {
    const uint32_t len = workload::Generator::EtcValueLen(k, wc.key_space);
    store->Put(k, std::string_view(buf.data(), len));
  }

  workload::Generator gen(wc, /*seed=*/1);
  const uint64_t ops_total = OpsPerPoint();
  core::WriteOp wops[core::kMaxWriteBatch];
  core::OpStatus statuses[core::kMaxWriteBatch];
  std::string got;
  got.reserve(2 * workload::kEtcLargeMax);

  uint64_t done = 0;
  const pm::PmStats::Snapshot before = rig.pool->stats().Get();
  const uint64_t t0 = vt::Now();
  for (auto _ : state) {
    size_t staged = 0;
    while (done < ops_total) {
      const workload::Op op = gen.Next();
      if (op.type == workload::OpType::kGet) {
        store->GetOnCore(0, op.key, &got);
        done++;
        continue;
      }
      if (batch <= 1) {  // the legacy synchronous single-op put path
        store->Put(op.key, std::string_view(buf.data(), op.value_len));
        done++;
        continue;
      }
      wops[staged++] = {op.key, buf.data(), op.value_len, false};
      if (staged == batch) {
        done += store->MultiPutOnCore(0, wops, staged, statuses);
        staged = 0;
      }
    }
    if (staged > 0) done += store->MultiPutOnCore(0, wops, staged, statuses);
  }
  const uint64_t t1 = vt::Now();
  const pm::PmStats::Snapshot delta =
      pm::Delta(before, rig.pool->stats().Get());

  const double mops =
      1000.0 * static_cast<double>(done) / static_cast<double>(t1 - t0);
  const double fpo =
      static_cast<double>(delta.fences) / static_cast<double>(done);
  state.counters["sim_mops"] = mops;
  state.counters["fences_per_op"] = fpo;

  const std::string label = std::string("core ") + DistName(dist) + " b=" +
                            std::to_string(batch);
  Row row;
  row.system = name;
  row.config = label;
  row.mops = mops;
  row.ops = done;
  row.sim_ns = t1 - t0;
  g_table.Add(row);
  g_json.AddRow()
      .Str("system", name)
      .Str("config", label)
      .Str("level", "core")
      .Str("dist", DistName(dist))
      .Int("write_batch", static_cast<uint64_t>(batch))
      .Num("mops", mops)
      .Int("ops", done)
      .Int("fences", delta.fences)
      .Num("fences_per_op", fpo);
}

void BM_CoreH(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/512);
  RunCorePoint(state, rig, "FlatStore-H");
}
void BM_CoreM(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = 1;
  fo.group_size = 1;
  fo.index = core::IndexKind::kMasstree;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/512);
  RunCorePoint(state, rig, "FlatStore-M");
}

// ---- server-level sweep ----------------------------------------------------

core::ServerConfig Config(workload::KeyDist dist, int write_batch) {
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.write_batch = write_batch;
  cfg.workload.key_space = kMpKeys;
  cfg.workload.etc_values = true;
  cfg.workload.dist = dist;
  cfg.workload.get_ratio = 0.5;
  return cfg;
}

void RunServerSweep(benchmark::State& state, Rig& rig, const char* name) {
  const workload::KeyDist dist = state.range(0) == 0
                                     ? workload::KeyDist::kUniform
                                     : workload::KeyDist::kZipfian;
  const int write_batch = static_cast<int>(state.range(1));
  auto cfg = Config(dist, write_batch);
  Preload(rig.adapter.get(), cfg.workload, BenchKeys(kMpKeys));
  const std::string label = std::string("server ") + DistName(dist) +
                            " b=" + std::to_string(write_batch);

  const pm::PmStats::Snapshot before = rig.pool->stats().Get();
  RunPoint(state, rig.adapter.get(), cfg, &g_table, name, label);
  const pm::PmStats::Snapshot delta =
      pm::Delta(before, rig.pool->stats().Get());

  // Every point completes its full per-connection quota.
  const uint64_t ops = cfg.ops_per_conn * static_cast<uint64_t>(kConns);
  g_json.AddRow()
      .Str("system", name)
      .Str("config", label)
      .Str("level", "server")
      .Str("dist", DistName(dist))
      .Int("write_batch", static_cast<uint64_t>(write_batch))
      .Num("mops", state.counters["sim_mops"])
      .Int("ops", ops)
      .Int("fences", delta.fences)
      .Num("fences_per_op", static_cast<double>(delta.fences) /
                                static_cast<double>(ops));
}

void BM_ServerH(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/3072);
  RunServerSweep(state, rig, "FlatStore-H");
}
void BM_ServerM(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.index = core::IndexKind::kMasstree;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/3072);
  RunServerSweep(state, rig, "FlatStore-M");
}

// range(0): 0 = uniform, 1 = zipfian; range(1): write batch.
#define MP_SWEEP(fn) \
  BENCHMARK(fn)->ArgsProduct({{0, 1}, {1, 2, 4, 8, 16, 32}}) \
      ->Iterations(1)->Unit(benchmark::kMillisecond)
MP_SWEEP(BM_CoreH);
MP_SWEEP(BM_CoreM);
MP_SWEEP(BM_ServerH);
MP_SWEEP(BM_ServerM);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_json.Write();
  return 0;
}
