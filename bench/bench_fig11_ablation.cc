// Figure 11 — benefit of each optimization (paper §5.4): CCEH (the best
// hash baseline), "Base" (log-structured FlatStore-H with batching
// disabled), "+Naive HB", and "+Pipelined HB", for 8/64/128 B values.
// A padding ablation (DESIGN.md §6) is included as an extra row pair.
//
// Expected shape: Base beats CCEH by tens of percent (fewer persistence
// sites per Put), naive HB adds batching but serializes followers,
// pipelined HB wins everywhere.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Figure 11: ablation (Put Mops/s)");

core::ServerConfig Config(uint32_t vlen) {
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.workload.key_space = kKeySpace;
  cfg.workload.value_len = vlen;
  return cfg;
}

void BM_Mode(benchmark::State& state, batch::BatchMode mode,
             const char* name, bool pad = true) {
  const uint32_t vlen = static_cast<uint32_t>(state.range(0));
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.batch_mode = mode;
  fo.pad_batches = pad;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);
  RunPoint(state, rig.adapter.get(), Config(vlen), &g_table, name,
           std::to_string(vlen) + "B");
}
void BM_Base(benchmark::State& state) {
  BM_Mode(state, batch::BatchMode::kNone, "Base (no batching)");
}
void BM_NaiveHB(benchmark::State& state) {
  BM_Mode(state, batch::BatchMode::kNaiveHB, "+Naive HB");
}
void BM_PipelinedHB(benchmark::State& state) {
  BM_Mode(state, batch::BatchMode::kPipelinedHB, "+Pipelined HB");
}
void BM_NoPadding(benchmark::State& state) {
  BM_Mode(state, batch::BatchMode::kPipelinedHB, "+Pipelined HB (no pad)",
          /*pad=*/false);
}

void BM_Cceh(benchmark::State& state) {
  const uint32_t vlen = static_cast<uint32_t>(state.range(0));
  core::BaselineStore::Options bo;
  bo.num_cores = kCores;
  bo.kind = core::BaselineKind::kCceh;
  bo.cceh_initial_depth = 6;
  Rig rig = MakeBaselineRig(bo);
  RunPoint(state, rig.adapter.get(), Config(vlen), &g_table, "CCEH",
           std::to_string(vlen) + "B");
}

#define ABLATION_SWEEP(fn) \
  BENCHMARK(fn)->Arg(8)->Arg(64)->Arg(128)->Iterations(1)->Unit( \
      benchmark::kMillisecond)
ABLATION_SWEEP(BM_Cceh);
ABLATION_SWEEP(BM_Base);
ABLATION_SWEEP(BM_NaiveHB);
ABLATION_SWEEP(BM_PipelinedHB);
ABLATION_SWEEP(BM_NoPadding);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("fig11_ablation");
  return 0;
}
