// Figure 8 — Put performance of the tree-indexed systems: FlatStore-M
// (Masstree index), FlatStore-FF (volatile FAST&FAIR index), and the
// persistent baselines FPTree and FAST&FAIR. Value length ∈ {8, 64, 128,
// 256, 512, 1024} B, uniform and zipfian-0.99.
//
// Expected shape (paper §5.1): FlatStore-M 3.4-6.3x over the persistent
// trees (node shifting/splitting amplifies their writes); FlatStore-M >
// FlatStore-FF (permutation leaves beat shifting even in DRAM); the gap
// closes for large values.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Figure 8: Put throughput (Mops/s), tree-indexed systems");

core::ServerConfig Config(uint32_t vlen, bool skew) {
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.workload.key_space = kKeySpace;
  cfg.workload.value_len = vlen;
  cfg.workload.dist =
      skew ? workload::KeyDist::kZipfian : workload::KeyDist::kUniform;
  return cfg;
}

std::string Label(uint32_t vlen, bool skew) {
  return std::string(skew ? "skew" : "uniform") + "/" +
         std::to_string(vlen) + "B";
}

void BM_Flat(benchmark::State& state, core::IndexKind kind,
             const char* name) {
  const uint32_t vlen = static_cast<uint32_t>(state.range(0));
  const bool skew = state.range(1) != 0;
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.index = kind;
  Rig rig = MakeFlatRig(fo);
  RunPoint(state, rig.adapter.get(), Config(vlen, skew), &g_table, name,
           Label(vlen, skew));
}
void BM_FlatStoreM(benchmark::State& state) {
  BM_Flat(state, core::IndexKind::kMasstree, "FlatStore-M");
}
void BM_FlatStoreFF(benchmark::State& state) {
  BM_Flat(state, core::IndexKind::kFastFairVolatile, "FlatStore-FF");
}

void BM_TreeBaseline(benchmark::State& state, core::BaselineKind kind) {
  const uint32_t vlen = static_cast<uint32_t>(state.range(0));
  const bool skew = state.range(1) != 0;
  core::BaselineStore::Options bo;
  bo.num_cores = kCores;
  bo.kind = kind;
  Rig rig = MakeBaselineRig(bo);
  RunPoint(state, rig.adapter.get(), Config(vlen, skew), &g_table,
           core::BaselineKindName(kind), Label(vlen, skew));
}
void BM_FpTree(benchmark::State& state) {
  BM_TreeBaseline(state, core::BaselineKind::kFpTree);
}
void BM_FastFair(benchmark::State& state) {
  BM_TreeBaseline(state, core::BaselineKind::kFastFair);
}

#define TREE_SWEEP(fn)                                   \
  BENCHMARK(fn)                                          \
      ->ArgsProduct({{8, 64, 128, 256, 512, 1024}, {0, 1}}) \
      ->Iterations(1)                                    \
      ->Unit(benchmark::kMillisecond)
TREE_SWEEP(BM_FlatStoreM);
TREE_SWEEP(BM_FlatStoreFF);
TREE_SWEEP(BM_FpTree);
TREE_SWEEP(BM_FastFair);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("fig08_put_tree");
  return 0;
}
