// Figure 12 — latency vs. throughput: Pipelined HB vs. Vertical Batching
// for client batch sizes (windows) 1, 4 and 8, sweeping the number of
// client connections. Each point reports simulated throughput and p50
// latency, forming the paper's latency/throughput curves.
//
// Expected shape: with few clients (batch 1), pipelined HB matches
// vertical at first and then wins in both throughput and latency as
// clients grow (a single core cannot accumulate batches, but a leader
// can steal across cores); with plentiful batching (batch 8), the curves
// converge with pipelined HB at or above vertical.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Figure 12: Pipelined HB vs Vertical batching");

void BM_Lat(benchmark::State& state, batch::BatchMode mode,
            const char* name) {
  const int window = static_cast<int>(state.range(0));
  const int conns = static_cast<int>(state.range(1));
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.batch_mode = mode;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);

  core::ServerConfig cfg;
  cfg.num_conns = conns;
  cfg.client_window = window;
  cfg.ops_per_conn =
      std::min<uint64_t>(32000, OpsPerPoint()) / static_cast<uint64_t>(conns);
  cfg.workload.key_space = kKeySpace;
  cfg.workload.value_len = 64;
  RunPoint(state, rig.adapter.get(), cfg, &g_table, name,
           "win=" + std::to_string(window) + "/conns=" +
               std::to_string(conns));
}
void BM_Pipelined(benchmark::State& state) {
  BM_Lat(state, batch::BatchMode::kPipelinedHB, "Pipelined HB");
}
void BM_Vertical(benchmark::State& state) {
  BM_Lat(state, batch::BatchMode::kVertical, "Vertical");
}

BENCHMARK(BM_Pipelined)
    ->ArgsProduct({{1, 4, 8}, {1, 2, 4, 8, 16, 32, 64}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vertical)
    ->ArgsProduct({{1, 4, 8}, {1, 2, 4, 8, 16, 32, 64}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("fig12_latency");
  return 0;
}
