// Hot/cold survivor segregation A/B: the same zipfian-churn workload run
// with the cost-benefit cleaner twice, segregation on vs off.
//
// Under a skewed update stream, a victim's survivors are exactly its
// cold tail — the keys the zipfian head never rewrites. With segregation
// off, those survivors land in the same cleaner chunk as hot survivors;
// once the hot ones die the mixed chunk becomes a victim again and the
// cold entries are relocated a second (third, ...) time. With
// segregation on, cold survivors are parked together in near-100 %-live
// chunks that victim selection never picks, so each cold byte is copied
// roughly once. The A/B shows up as strictly lower cumulative relocation
// traffic (and so a lower write-amplification ratio) for the segregated
// run over a long enough churn horizon.

#include "bench_common.h"
#include "pm/pm_stats.h"

namespace flatstore {
namespace bench {
namespace {

struct SegPoint {
  bool segregate;
  double steady_mops;
  double wa_ratio;
  uint64_t chunks_cleaned;
  uint64_t bytes_relocated;
  uint64_t bytes_reclaimed;
  uint64_t survivor_bytes_hot;
  uint64_t survivor_bytes_cold;
};
std::vector<SegPoint> g_points;

constexpr int kSegments = 12;  // long horizon: re-cleaning must show up
constexpr int kSteadyTail = 3;

SegPoint RunSegPoint(bool segregate) {
  core::FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  fo.hash_initial_depth = 6;
  fo.gc_policy = log::VictimQuery::Policy::kCostBenefit;
  fo.gc_segregate = segregate;
  fo.gc_live_ratio = 0.9;  // aggressive: survivors dominate the traffic
  fo.gc_cold_age = 256;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/256);

  core::ServerConfig cfg;
  cfg.num_conns = 12;
  cfg.client_window = 8;
  cfg.ops_per_conn = std::max<uint64_t>(200, OpsPerPoint() / 16);
  cfg.workload.key_space = BenchKeys(1 << 16);
  cfg.workload.etc_values = true;
  cfg.workload.dist = workload::KeyDist::kZipfian;
  cfg.workload.get_ratio = 0.5;
  Preload(rig.adapter.get(), cfg.workload, cfg.workload.key_space);

  double steady_sum = 0;
  for (int seg = 0; seg < kSegments; seg++) {
    cfg.seed = static_cast<uint64_t>(seg) + 1;
    core::ServerResult r = core::RunServer(rig.adapter.get(), cfg);
    if (seg >= kSegments - kSteadyTail) steady_sum += r.mops;
    rig.device->Reset();  // cleaner traffic lands in the next window
    vt::Clock cleaner_clock;
    vt::ScopedClock bind(&cleaner_clock);
    rig.flat->RunCleanersOnce();
  }

  const auto s = rig.pool->stats().Get();
  SegPoint p;
  p.segregate = segregate;
  p.steady_mops = steady_sum / kSteadyTail;
  p.wa_ratio = pm::GcWriteAmp(s);
  p.chunks_cleaned = rig.flat->ChunksCleaned();
  p.bytes_relocated = s.gc_bytes_relocated;
  p.bytes_reclaimed = s.gc_bytes_reclaimed;
  p.survivor_bytes_hot = s.gc_survivor_bytes_hot;
  p.survivor_bytes_cold = s.gc_survivor_bytes_cold;
  return p;
}

void BM_GcSegregation(benchmark::State& state) {
  for (auto _ : state) {
    g_points.clear();
    g_points.push_back(RunSegPoint(/*segregate=*/true));
    g_points.push_back(RunSegPoint(/*segregate=*/false));
  }
  state.counters["seg_wa"] = g_points[0].wa_ratio;
  state.counters["noseg_wa"] = g_points[1].wa_ratio;
  state.counters["seg_mops"] = g_points[0].steady_mops;
  state.counters["noseg_mops"] = g_points[1].steady_mops;
}
BENCHMARK(BM_GcSegregation)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n== GC segregation A/B (zipfian 50%% update, 256 MB pool) ==\n");
  std::printf("%-12s %10s %8s %10s %14s %14s\n", "segregation", "Mops/s",
              "WA", "cleaned", "surv hot B", "surv cold B");
  for (const auto& p : flatstore::bench::g_points) {
    std::printf("%-12s %10.2f %8.3f %10lu %14lu %14lu\n",
                p.segregate ? "on" : "off", p.steady_mops, p.wa_ratio,
                static_cast<unsigned long>(p.chunks_cleaned),
                static_cast<unsigned long>(p.survivor_bytes_hot),
                static_cast<unsigned long>(p.survivor_bytes_cold));
  }
  flatstore::bench::BenchJson j("gc_segregation");
  for (const auto& p : flatstore::bench::g_points) {
    j.AddRow()
        .Str("segregation", p.segregate ? "on" : "off")
        .Num("mops", p.steady_mops)
        .Num("wa_ratio", p.wa_ratio)
        .Int("chunks_cleaned", p.chunks_cleaned)
        .Int("bytes_relocated", p.bytes_relocated)
        .Int("bytes_reclaimed", p.bytes_reclaimed)
        .Int("survivor_bytes_hot", p.survivor_bytes_hot)
        .Int("survivor_bytes_cold", p.survivor_bytes_cold);
  }
  j.Write();
  return 0;
}
