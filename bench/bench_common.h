// Shared plumbing for the per-figure benchmark binaries.
//
// Every bench point builds a fresh pool + engine, runs the deterministic
// client/server co-simulation (core/server.h), and reports *simulated*
// throughput/latency. Each point is registered as a google-benchmark with
// a single iteration (the simulation is deterministic; re-running it
// yields the identical result) and exposes its metrics as counters. After
// the benchmark run, each binary prints a compact paper-style table that
// EXPERIMENTS.md quotes.

#ifndef FLATSTORE_BENCH_BENCH_COMMON_H_
#define FLATSTORE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/server.h"

namespace flatstore {
namespace bench {

// A fully assembled engine under test.
struct Rig {
  std::unique_ptr<pm::PmDevice> device;
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<core::FlatStore> flat;
  std::unique_ptr<core::BaselineStore> baseline;
  std::unique_ptr<core::EngineAdapter> adapter;
};

// Builds a FlatStore rig (timed PM device attached).
inline Rig MakeFlatRig(const core::FlatStoreOptions& options,
                       uint64_t pool_mb = 2048) {
  Rig rig;
  rig.device = std::make_unique<pm::PmDevice>();
  pm::PmPool::Options po;
  po.size = pool_mb << 20;
  po.device = rig.device.get();
  rig.pool = std::make_unique<pm::PmPool>(po);
  rig.flat = core::FlatStore::Create(rig.pool.get(), options);
  rig.adapter = std::make_unique<core::FlatStoreAdapter>(rig.flat.get());
  return rig;
}

// Builds a baseline rig.
inline Rig MakeBaselineRig(const core::BaselineStore::Options& options,
                           uint64_t pool_mb = 2048) {
  Rig rig;
  rig.device = std::make_unique<pm::PmDevice>();
  pm::PmPool::Options po;
  po.size = pool_mb << 20;
  po.device = rig.device.get();
  rig.pool = std::make_unique<pm::PmPool>(po);
  rig.baseline = core::BaselineStore::Create(rig.pool.get(), options);
  rig.adapter = std::make_unique<core::BaselineAdapter>(rig.baseline.get());
  return rig;
}

// Default evaluation scale (paper: 36 cores, 12x24 client threads,
// 192 M keys — scaled to CI size; see DESIGN.md §1).
inline constexpr int kCores = 16;
inline constexpr int kConns = 96;
inline constexpr uint64_t kKeySpace = 1ull << 20;
inline constexpr uint64_t kOpsPerPoint = 48000;

// One measured row.
struct Row {
  std::string system;
  std::string config;
  double mops = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double avg_batch = 0;
};

// Accumulates rows for the end-of-run table.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void Add(Row row) { rows_.push_back(std::move(row)); }

  // Prints the paper-style table to stdout.
  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::printf("%-24s %-24s %10s %10s %10s\n", "system", "config",
                "Mops/s", "p50(us)", "p99(us)");
    for (const Row& r : rows_) {
      std::printf("%-24s %-24s %10.2f %10.2f %10.2f\n", r.system.c_str(),
                  r.config.c_str(), r.mops,
                  static_cast<double>(r.p50_ns) / 1000.0,
                  static_cast<double>(r.p99_ns) / 1000.0);
    }
    std::fflush(stdout);
  }

 private:
  std::string title_;
  std::vector<Row> rows_;
};

// Runs one server simulation and records it into `table` + benchmark
// counters.
inline void RunPoint(benchmark::State& state, core::EngineAdapter* adapter,
                     const core::ServerConfig& config, Table* table,
                     const std::string& system, const std::string& label,
                     double avg_batch = 0) {
  core::ServerResult result;
  for (auto _ : state) {
    result = core::RunServer(adapter, config);
  }
  state.counters["sim_mops"] = result.mops;
  state.counters["p50_us"] =
      static_cast<double>(result.latency.Percentile(50)) / 1000.0;
  state.counters["p99_us"] =
      static_cast<double>(result.latency.Percentile(99)) / 1000.0;
  Row row;
  row.system = system;
  row.config = label;
  row.mops = result.mops;
  row.p50_ns = result.latency.Percentile(50);
  row.p99_ns = result.latency.Percentile(99);
  row.avg_batch = avg_batch;
  table->Add(row);
}

}  // namespace bench
}  // namespace flatstore

#endif  // FLATSTORE_BENCH_BENCH_COMMON_H_
