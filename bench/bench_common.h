// Shared plumbing for the per-figure benchmark binaries.
//
// Every bench point builds a fresh pool + engine, runs the deterministic
// client/server co-simulation (core/server.h), and reports *simulated*
// throughput/latency. Each point is registered as a google-benchmark with
// a single iteration (the simulation is deterministic; re-running it
// yields the identical result) and exposes its metrics as counters. After
// the benchmark run, each binary prints a compact paper-style table that
// EXPERIMENTS.md quotes.

#ifndef FLATSTORE_BENCH_BENCH_COMMON_H_
#define FLATSTORE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/server.h"
#include "vt/costs.h"

namespace flatstore {
namespace bench {

// A fully assembled engine under test.
struct Rig {
  std::unique_ptr<pm::PmDevice> device;
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<core::FlatStore> flat;
  std::unique_ptr<core::BaselineStore> baseline;
  std::unique_ptr<core::EngineAdapter> adapter;
};

// Builds a FlatStore rig (timed PM device attached). `num_sockets` > 1
// models a multi-socket server: the device gets one DIMM set per socket
// and the pool is cut into per-socket spans (NUMA placement follows
// options.socket_local_placement).
inline Rig MakeFlatRig(const core::FlatStoreOptions& options,
                       uint64_t pool_mb = 2048, int num_sockets = 1) {
  Rig rig;
  rig.device = std::make_unique<pm::PmDevice>(num_sockets);
  pm::PmPool::Options po;
  po.size = pool_mb << 20;
  po.device = rig.device.get();
  po.num_sockets = num_sockets;
  rig.pool = std::make_unique<pm::PmPool>(po);
  rig.flat = core::FlatStore::Create(rig.pool.get(), options);
  rig.adapter = std::make_unique<core::FlatStoreAdapter>(rig.flat.get());
  return rig;
}

// Builds a baseline rig.
inline Rig MakeBaselineRig(const core::BaselineStore::Options& options,
                           uint64_t pool_mb = 2048) {
  Rig rig;
  rig.device = std::make_unique<pm::PmDevice>();
  pm::PmPool::Options po;
  po.size = pool_mb << 20;
  po.device = rig.device.get();
  rig.pool = std::make_unique<pm::PmPool>(po);
  rig.baseline = core::BaselineStore::Create(rig.pool.get(), options);
  rig.adapter = std::make_unique<core::BaselineAdapter>(rig.baseline.get());
  return rig;
}

// Default evaluation scale (paper: 36 cores, 12x24 client threads,
// 192 M keys — scaled to CI size; see DESIGN.md §1).
inline constexpr int kCores = 16;
inline constexpr int kConns = 96;
inline constexpr uint64_t kKeySpace = 1ull << 20;
inline constexpr uint64_t kOpsPerPoint = 48000;

// Scale knobs for CI smoke runs: FLATSTORE_BENCH_OPS overrides the ops
// per point, FLATSTORE_BENCH_KEYS caps preloaded key ranges. Unset (the
// normal case) leaves the defaults above untouched.
inline uint64_t EnvScale(const char* name, uint64_t def) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return def;
  const uint64_t v = std::strtoull(e, nullptr, 10);
  return v > 0 ? v : def;
}
inline uint64_t OpsPerPoint() {
  static const uint64_t v = EnvScale("FLATSTORE_BENCH_OPS", kOpsPerPoint);
  return v;
}
inline uint64_t BenchKeys(uint64_t def) {
  static const uint64_t cap = EnvScale("FLATSTORE_BENCH_KEYS", 0);
  return cap > 0 && cap < def ? cap : def;
}

// One measured row.
struct Row {
  std::string system;
  std::string config;
  double mops = 0;
  uint64_t ops = 0;      // completed operations behind `mops`
  uint64_t sim_ns = 0;   // max simulated core time
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double avg_batch = 0;
};

// Machine-readable results: every bench binary drops BENCH_<name>.json
// into its working directory so CI can smoke-check results without
// scraping stdout tables. Schema:
//   {"bench": "<name>", "rows": [{"<metric>": <value>, ...}, ...]}
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    // Run metadata stamped into every file so a results directory is
    // self-describing: topology knobs and the vt cost constants the
    // numbers were produced under (comparing JSONs across commits is
    // meaningless if the cost model moved). Benches override the
    // topology fields (sockets/shards) per run via Meta*.
    MetaInt("sockets", 1);
    MetaInt("shards", 1);
    MetaInt("server_cores", kCores);
    MetaInt("client_conns", kConns);
    MetaInt("ops_per_point", OpsPerPoint());
    MetaInt("vt_remote_load_penalty", vt::kRemoteSocketLoadPenalty);
    MetaInt("vt_remote_persist_penalty", vt::kRemoteSocketPersistPenalty);
    MetaInt("vt_pm_dimms_per_socket", vt::kPmDimms);
    MetaInt("vt_mem_parallelism", vt::kMemParallelism);
  }

  // Meta fields (top-level "meta" object; setting an existing key
  // replaces its value).
  BenchJson& MetaStr(const char* key, const std::string& v) {
    MetaField(key, "\"" + Escaped(v) + "\"");
    return *this;
  }
  BenchJson& MetaNum(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    MetaField(key, buf);
    return *this;
  }
  BenchJson& MetaInt(const char* key, uint64_t v) {
    MetaField(key, std::to_string(v));
    return *this;
  }

  // Starts a new row; chain Str/Num/Int to populate it.
  BenchJson& AddRow() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& Str(const char* key, const std::string& v) {
    Field(key, "\"" + Escaped(v) + "\"");
    return *this;
  }
  BenchJson& Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    Field(key, buf);
    return *this;
  }
  BenchJson& Int(const char* key, uint64_t v) {
    Field(key, std::to_string(v));
    return *this;
  }

  // Writes BENCH_<name>.json (overwriting a previous run's file).
  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"meta\": {", Escaped(name_).c_str());
    for (size_t i = 0; i < meta_.size(); i++) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ", ", meta_[i].c_str());
    }
    std::fprintf(f, "}, \"rows\": [");
    for (size_t i = 0; i < rows_.size(); i++) {
      std::fprintf(f, "%s{%s}", i == 0 ? "" : ", ", rows_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  void Field(const char* key, const std::string& value) {
    std::string& row = rows_.back();
    if (!row.empty()) row += ", ";
    row += "\"";
    row += key;
    row += "\": ";
    row += value;
  }
  void MetaField(const char* key, const std::string& value) {
    const std::string prefix = "\"" + std::string(key) + "\": ";
    for (std::string& m : meta_) {
      if (m.compare(0, prefix.size(), prefix) == 0) {
        m = prefix + value;
        return;
      }
    }
    meta_.push_back(prefix + value);
  }

  std::string name_;
  std::vector<std::string> meta_;  // pre-encoded "\"key\": value" pairs
  std::vector<std::string> rows_;
};

// Accumulates rows for the end-of-run table.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void Add(Row row) { rows_.push_back(std::move(row)); }

  // Meta fields forwarded into the JSON on top of BenchJson's defaults
  // (e.g. the bench's socket/shard topology).
  Table& MetaStr(const char* key, const std::string& v) {
    meta_.push_back([k = std::string(key), v](BenchJson& j) {
      j.MetaStr(k.c_str(), v);
    });
    return *this;
  }
  Table& MetaInt(const char* key, uint64_t v) {
    meta_.push_back([k = std::string(key), v](BenchJson& j) {
      j.MetaInt(k.c_str(), v);
    });
    return *this;
  }
  Table& MetaNum(const char* key, double v) {
    meta_.push_back([k = std::string(key), v](BenchJson& j) {
      j.MetaNum(k.c_str(), v);
    });
    return *this;
  }

  // Prints the paper-style table to stdout.
  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::printf("%-24s %-24s %10s %10s %10s\n", "system", "config",
                "Mops/s", "p50(us)", "p99(us)");
    for (const Row& r : rows_) {
      std::printf("%-24s %-24s %10.2f %10.2f %10.2f\n", r.system.c_str(),
                  r.config.c_str(), r.mops,
                  static_cast<double>(r.p50_ns) / 1000.0,
                  static_cast<double>(r.p99_ns) / 1000.0);
    }
    std::fflush(stdout);
  }

  // Dumps every row into BENCH_<bench_name>.json.
  void WriteJson(const std::string& bench_name) const {
    BenchJson j(bench_name);
    for (const auto& m : meta_) m(j);
    for (const Row& r : rows_) {
      j.AddRow()
          .Str("system", r.system)
          .Str("config", r.config)
          .Num("mops", r.mops)
          .Int("ops", r.ops)
          .Int("sim_ns", r.sim_ns)
          .Int("p50_ns", r.p50_ns)
          .Int("p99_ns", r.p99_ns)
          .Num("avg_batch", r.avg_batch);
    }
    j.Write();
  }

 private:
  std::string title_;
  std::vector<Row> rows_;
  std::vector<std::function<void(BenchJson&)>> meta_;
};

// Runs one server simulation and records it into `table` + benchmark
// counters.
inline void RunPoint(benchmark::State& state, core::EngineAdapter* adapter,
                     const core::ServerConfig& config, Table* table,
                     const std::string& system, const std::string& label,
                     double avg_batch = 0) {
  core::ServerResult result;
  for (auto _ : state) {
    result = core::RunServer(adapter, config);
  }
  state.counters["sim_mops"] = result.mops;
  state.counters["p50_us"] =
      static_cast<double>(result.latency.Percentile(50)) / 1000.0;
  state.counters["p99_us"] =
      static_cast<double>(result.latency.Percentile(99)) / 1000.0;
  Row row;
  row.system = system;
  row.config = label;
  row.mops = result.mops;
  row.ops = result.ops;
  row.sim_ns = result.sim_ns;
  row.p50_ns = result.latency.Percentile(50);
  row.p99_ns = result.latency.Percentile(99);
  row.avg_batch = avg_batch != 0 ? avg_batch : result.avg_batch;
  table->Add(row);
}

// ---- open-loop (offered-load) sweeps ----

// Runs one open-loop point: Poisson arrivals offering `offered_mops` in
// aggregate across the configured connections. Achieved throughput tracks
// the offered load below saturation and tops out at service capacity
// above it — where latency, measured from each request's *scheduled*
// arrival, blows up instead.
inline core::ServerResult RunOpenLoopPoint(core::EngineAdapter* adapter,
                                           core::ServerConfig config,
                                           double offered_mops) {
  config.open_loop = true;
  config.offered_mops = offered_mops;
  return core::RunServer(adapter, config);
}

// Sweeps offered load over `points` (Mops/s), adding one row per point
// labelled "<label_prefix>offered=<x>", and returns the saturation
// throughput — the highest achieved Mops/s across the sweep.
inline double OpenLoopSweep(core::EngineAdapter* adapter,
                            const core::ServerConfig& config,
                            const std::vector<double>& points, Table* table,
                            const std::string& system,
                            const std::string& label_prefix = "") {
  double saturation = 0;
  for (double offered : points) {
    core::ServerResult r = RunOpenLoopPoint(adapter, config, offered);
    char label[64];
    std::snprintf(label, sizeof(label), "%soffered=%.3g",
                  label_prefix.c_str(), offered);
    Row row;
    row.system = system;
    row.config = label;
    row.mops = r.mops;
    row.ops = r.ops;
    row.sim_ns = r.sim_ns;
    row.p50_ns = r.latency.Percentile(50);
    row.p99_ns = r.latency.Percentile(99);
    table->Add(row);
    saturation = std::max(saturation, r.mops);
  }
  return saturation;
}

}  // namespace bench
}  // namespace flatstore

#endif  // FLATSTORE_BENCH_BENCH_COMMON_H_
