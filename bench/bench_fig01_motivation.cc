// Figure 1 — motivation microbenchmarks on the emulated Optane DCPMM.
//
//  (a) raw 64 B random-write throughput vs. FAST&FAIR Put throughput as
//      the thread count grows (the paper reports a 17x gap at 20 threads);
//  (b) sequential vs. random 256 B write bandwidth (similar at high
//      concurrency);
//  (c) write latency: sequential, random, and in-place (repeated flush of
//      one line — the ~800 ns stall).
//
// "Threads" are simulated writers driven round-robin with per-writer
// virtual clocks against the shared device model.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/hash.h"
#include "core/baseline.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace {

// Simulates `threads` concurrent writers, each performing `ops` writes of
// `size` bytes produced by `offset_fn(thread, i)`. Returns aggregate
// simulated Mops/s.
template <typename OffsetFn>
double RawWriters(int threads, uint64_t ops, uint32_t size,
                  OffsetFn offset_fn) {
  pm::PmDevice device;
  pm::PmPool::Options o;
  o.size = 512ull << 20;
  o.device = &device;
  pm::PmPool pool(o);
  std::vector<vt::Clock> clocks(static_cast<size_t>(threads));
  char buf[4096] = {};

  for (uint64_t i = 0; i < ops; i++) {
    for (int t = 0; t < threads; t++) {
      vt::ScopedClock bind(&clocks[t]);
      uint64_t off = offset_fn(t, i) % (o.size - size);
      std::memcpy(pool.base() + off, buf, size);
      pool.PersistFence(pool.base() + off, size);
    }
  }
  uint64_t span = 0;
  for (const auto& c : clocks) span = std::max(span, c.now());
  return static_cast<double>(ops) * threads * 1000.0 /
         static_cast<double>(span);
}

// FAST&FAIR persistent Put throughput with `threads` simulated cores
// (sharded drivers calling the shared tree, as in the paper's setup).
double FastFairPuts(int threads, uint64_t ops_per_thread) {
  pm::PmDevice device;
  pm::PmPool::Options o;
  o.size = 2048ull << 20;
  o.device = &device;
  pm::PmPool pool(o);
  core::BaselineStore::Options bo;
  bo.num_cores = threads;
  bo.kind = core::BaselineKind::kFastFair;
  auto store = core::BaselineStore::Create(&pool, bo);

  std::vector<vt::Clock> clocks(static_cast<size_t>(threads));
  char value[8] = {};
  // Preload so the tree has a realistic height (the paper's key range is
  // 192 M; a near-empty tree would flatter FAST&FAIR). Untimed.
  for (uint64_t k = 0; k < 400000; k++) {
    uint64_t key = HashKey(k ^ 0xFEEDull);
    store->PutOnCore(static_cast<int>(key % static_cast<uint64_t>(threads)),
                     key, value, 8);
  }
  for (uint64_t i = 0; i < ops_per_thread; i++) {
    for (int t = 0; t < threads; t++) {
      vt::ScopedClock bind(&clocks[t]);
      uint64_t key = HashKey(static_cast<uint64_t>(t) * ops_per_thread + i);
      store->PutOnCore(t, key, value, 8);
    }
  }
  uint64_t span = 0;
  for (const auto& c : clocks) span = std::max(span, c.now());
  return static_cast<double>(ops_per_thread) * threads * 1000.0 /
         static_cast<double>(span);
}

struct F1a {
  int threads;
  double optane_mops;
  double ff_mops;
};
struct F1b {
  int threads;
  double seq_gbps;
  double rnd_gbps;
};

std::vector<F1a> g_a;
std::vector<F1b> g_b;
double g_lat_seq, g_lat_rnd, g_lat_inplace;

void BM_Fig1a(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  F1a row{threads, 0, 0};
  for (auto _ : state) {
    row.optane_mops = RawWriters(threads, 4000, 64, [](int t, uint64_t i) {
      return HashKey(static_cast<uint64_t>(t) * 1000003 + i) & ~63ull;
    });
    row.ff_mops = FastFairPuts(threads, 3000);
  }
  state.counters["optane_mops"] = row.optane_mops;
  state.counters["fastfair_mops"] = row.ff_mops;
  g_a.push_back(row);
}
BENCHMARK(BM_Fig1a)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig1b(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  F1b row{threads, 0, 0};
  for (auto _ : state) {
    double seq_mops = RawWriters(threads, 4000, 256, [](int t, uint64_t i) {
      // Disjoint sequential streams, one per thread, phase-staggered so
      // the streams spread across the interleaved DIMMs.
      return (static_cast<uint64_t>(t) << 23) +
             static_cast<uint64_t>(t % 16) * 4096 + i * 256;
    });
    double rnd_mops = RawWriters(threads, 4000, 256, [](int t, uint64_t i) {
      return HashKey(static_cast<uint64_t>(t) * 7919 + i) & ~255ull;
    });
    row.seq_gbps = seq_mops * 256.0 / 1000.0;  // Mops * B -> GB/s
    row.rnd_gbps = rnd_mops * 256.0 / 1000.0;
  }
  state.counters["seq_gbps"] = row.seq_gbps;
  state.counters["rnd_gbps"] = row.rnd_gbps;
  g_b.push_back(row);
}
BENCHMARK(BM_Fig1b)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Arg(32)->Arg(40)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig1c(benchmark::State& state) {
  for (auto _ : state) {
    pm::PmDevice device;
    pm::PmPool::Options o;
    o.size = 256ull << 20;
    o.device = &device;
    pm::PmPool pool(o);
    char buf[64] = {};
    auto one_write = [&](uint64_t off) {
      vt::Clock clock;
      vt::ScopedClock bind(&clock);
      std::memcpy(pool.base() + off, buf, 64);
      pool.PersistFence(pool.base() + off, 64);
      return clock.now();
    };
    // Sequential: consecutive lines (after warming the stream).
    one_write(0);
    g_lat_seq = static_cast<double>(one_write(64));
    // Random: a line in a cold block.
    g_lat_rnd = static_cast<double>(one_write(77 << 20));
    // In-place: immediately re-flush the same line.
    one_write(99 << 20);
    g_lat_inplace = static_cast<double>(one_write(99 << 20));
  }
  state.counters["seq_ns"] = g_lat_seq;
  state.counters["rnd_ns"] = g_lat_rnd;
  state.counters["inplace_ns"] = g_lat_inplace;
}
BENCHMARK(BM_Fig1c)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n== Figure 1(a): Put throughput vs threads (Mops/s) ==\n");
  std::printf("%8s %16s %16s %8s\n", "threads", "Optane-64B-rnd",
              "FAST&FAIR", "gap");
  for (const auto& r : flatstore::g_a) {
    std::printf("%8d %16.1f %16.2f %7.1fx\n", r.threads, r.optane_mops,
                r.ff_mops, r.optane_mops / r.ff_mops);
  }
  std::printf("\n== Figure 1(b): 256B write bandwidth (GB/s) ==\n");
  std::printf("%8s %10s %10s\n", "threads", "seq", "rnd");
  for (const auto& r : flatstore::g_b) {
    std::printf("%8d %10.2f %10.2f\n", r.threads, r.seq_gbps, r.rnd_gbps);
  }
  std::printf("\n== Figure 1(c): write latency (ns) ==\n");
  std::printf("seq=%0.f rnd=%0.f in-place=%0.f\n", flatstore::g_lat_seq,
              flatstore::g_lat_rnd, flatstore::g_lat_inplace);

  flatstore::bench::BenchJson j("fig01_motivation");
  for (const auto& r : flatstore::g_a) {
    j.AddRow()
        .Str("figure", "1a")
        .Int("threads", static_cast<uint64_t>(r.threads))
        .Num("optane_mops", r.optane_mops)
        .Num("fastfair_mops", r.ff_mops);
  }
  for (const auto& r : flatstore::g_b) {
    j.AddRow()
        .Str("figure", "1b")
        .Int("threads", static_cast<uint64_t>(r.threads))
        .Num("seq_gbps", r.seq_gbps)
        .Num("rnd_gbps", r.rnd_gbps);
  }
  j.AddRow()
      .Str("figure", "1c")
      .Num("seq_ns", flatstore::g_lat_seq)
      .Num("rnd_ns", flatstore::g_lat_rnd)
      .Num("inplace_ns", flatstore::g_lat_inplace);
  j.Write();
  return 0;
}
