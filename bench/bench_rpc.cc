// §4.3 — FlatRPC vs. all-to-all queue pairs. The paper reports FlatRPC
// delivering 1.5x the throughput of the all-to-all arrangement at 288
// client threads (the NIC's QP cache thrashes once every (connection,
// core) pair owns a QP).
//
// A Get-only workload keeps the engine cheap so the RPC path dominates;
// the connection sweep shows the crossover as the QP working set passes
// the NIC cache size.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("FlatRPC vs all-to-all QPs (Get-only, Mops/s)");

void BM_Rpc(benchmark::State& state, bool all_to_all, const char* name) {
  const int conns = static_cast<int>(state.range(0));
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);

  core::ServerConfig cfg;
  cfg.num_conns = conns;
  cfg.client_window = 8;
  cfg.ops_per_conn =
      std::min<uint64_t>(64000, OpsPerPoint()) / static_cast<uint64_t>(conns);
  cfg.workload.key_space = 1 << 16;
  cfg.workload.get_ratio = 1.0;  // pure RPC exercise
  cfg.all_to_all_qps = all_to_all;
  Preload(rig.adapter.get(), cfg.workload,
          BenchKeys(cfg.workload.key_space));
  RunPoint(state, rig.adapter.get(), cfg, &g_table, name,
           "conns=" + std::to_string(conns));
}
void BM_FlatRpc(benchmark::State& state) { BM_Rpc(state, false, "FlatRPC"); }
void BM_AllToAll(benchmark::State& state) {
  BM_Rpc(state, true, "all-to-all");
}
BENCHMARK(BM_FlatRpc)->Arg(4)->Arg(16)->Arg(48)->Arg(96)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllToAll)->Arg(4)->Arg(16)->Arg(48)->Arg(96)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Open-loop offered-load sweep: Poisson arrivals at a fixed rate instead
// of the closed-loop window. Latency stays flat while the server keeps
// up, then hockey-sticks as offered load crosses capacity; the reported
// saturation throughput is the highest achieved rate across the sweep.
void BM_OfferedLoad(benchmark::State& state, bool all_to_all,
                    const char* name) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);

  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn =
      std::min<uint64_t>(64000, OpsPerPoint()) / kConns;
  cfg.workload.key_space = 1 << 16;
  cfg.workload.get_ratio = 1.0;
  cfg.all_to_all_qps = all_to_all;
  Preload(rig.adapter.get(), cfg.workload,
          BenchKeys(cfg.workload.key_space));
  double saturation = 0;
  for (auto _ : state) {
    saturation = OpenLoopSweep(rig.adapter.get(), cfg,
                               {4.0, 16.0, 64.0, 256.0}, &g_table, name);
  }
  state.counters["saturation_mops"] = saturation;
  Row row;
  row.system = name;
  row.config = "saturation";
  row.mops = saturation;
  g_table.Add(row);
}
void BM_OfferedFlat(benchmark::State& state) {
  BM_OfferedLoad(state, false, "FlatRPC-open");
}
void BM_OfferedAll(benchmark::State& state) {
  BM_OfferedLoad(state, true, "all-to-all-open");
}
BENCHMARK(BM_OfferedFlat)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OfferedAll)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("rpc");
  return 0;
}
