// Range scans on the hash store (DESIGN.md §11). Two parts:
//
//  * Microbench (host wall-clock): tier-backed merged scans
//    (FlatStore::Scan — tier L0 Seek + delta-set merge) vs the only
//    range query a pure hash index has, ScanFullIteration (enumerate
//    every index entry, sort, read). Swept over range lengths; CI's
//    bench-smoke asserts speedup >= 2 at range length >= 100.
//
//  * YCSB-E shaped simulation point (virtual time): 95 % short scans
//    from zipfian start keys + 5 % inserts through the full
//    client/server co-simulation, quoting Mops/s like the fig09 bench.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/flatstore.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Range scans: tier-backed merge vs hash full iteration");

constexpr uint64_t kScanKeys = 1 << 17;

core::FlatStoreOptions TierOptions(bool tier) {
  core::FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  fo.hash_initial_depth = 8;
  fo.tier_enabled = tier;
  return fo;
}

// Store preloaded with kScanKeys keys, fully tiered (a bounded suffix
// stays in the delta sets so the merge path is exercised too).
Rig MakeScanRig() {
  Rig rig = MakeFlatRig(TierOptions(true), /*pool_mb=*/1024);
  std::string value(64, 's');
  const uint64_t keys = BenchKeys(kScanKeys);
  for (uint64_t k = 0; k < keys; k++) rig.flat->Put(k, value);
  rig.flat->SealActiveLogChunks();
  for (uint64_t k = 0; k < 1024 && k < keys; k++) rig.flat->Put(k, value);
  while (rig.flat->RunTieringOnce() > 0) {
  }
  return rig;
}

BenchJson* g_json = nullptr;

void BM_ScanSweep(benchmark::State& state) {
  const auto range_len = static_cast<uint64_t>(state.range(0));
  const uint64_t keys = BenchKeys(kScanKeys);
  Rig rig = MakeScanRig();
  // Deterministic start keys spread over the space.
  const int iters = 32;
  std::vector<std::pair<uint64_t, std::string>> rows;
  double merged_us = 0, full_us = 0;
  uint64_t merged_found = 0, full_found = 0;
  for (auto _ : state) {
    for (int i = 0; i < iters; i++) {
      const uint64_t start = (static_cast<uint64_t>(i) * 2654435761u) % keys;
      rows.clear();
      auto t0 = std::chrono::steady_clock::now();
      merged_found += rig.flat->Scan(start, range_len, &rows);
      auto t1 = std::chrono::steady_clock::now();
      merged_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
      rows.clear();
      t0 = std::chrono::steady_clock::now();
      full_found += rig.flat->ScanFullIteration(start, range_len, &rows);
      t1 = std::chrono::steady_clock::now();
      full_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
    }
  }
  merged_us /= iters;
  full_us /= iters;
  const double speedup = merged_us > 0 ? full_us / merged_us : 0;
  state.counters["merged_us"] = merged_us;
  state.counters["full_iter_us"] = full_us;
  state.counters["speedup"] = speedup;
  if (merged_found != full_found) {
    std::fprintf(stderr, "scan mismatch: %llu vs %llu items\n",
                 static_cast<unsigned long long>(merged_found),
                 static_cast<unsigned long long>(full_found));
    std::abort();
  }
  g_json->AddRow()
      .Str("mode", "micro")
      .Int("range_len", range_len)
      .Int("keys", keys)
      .Num("merged_us", merged_us)
      .Num("full_iter_us", full_us)
      .Num("speedup", speedup);
  std::printf("range %5llu: merged %9.1f us   full-iter %9.1f us   %6.1fx\n",
              static_cast<unsigned long long>(range_len), merged_us, full_us,
              speedup);
}
BENCHMARK(BM_ScanSweep)
    ->Arg(10)->Arg(100)->Arg(1000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// YCSB-E shape through the co-simulation: zipfian start keys, scan
// lengths uniform in [1, 100], 5 % inserts.
void BM_YcsbE(benchmark::State& state) {
  Rig rig = MakeScanRig();
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.workload.key_space = BenchKeys(kScanKeys);
  cfg.workload.dist = workload::KeyDist::kZipfian;
  cfg.workload.scan_ratio = 0.95;
  cfg.workload.scan_len_max = 100;
  cfg.workload.value_len = 64;
  RunPoint(state, rig.adapter.get(), cfg, &g_table, "FlatStore-H+tier",
           "ycsb-e 95:5");
}
BENCHMARK(BM_YcsbE)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  flatstore::bench::BenchJson json("scan");
  flatstore::bench::g_json = &json;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  // The simulation rows ride in the same JSON as the micro rows.
  flatstore::bench::g_table.WriteJson("scan_sim");
  json.Write();
  return 0;
}
