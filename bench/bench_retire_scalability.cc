// Read-path retirement-synchronization scalability (host wall-clock).
//
// Measures the real (not simulated) cost of the synchronization that
// guards log-entry dereferences against cleaner frees, across serving
// thread counts, for a 90/10 get/put mix:
//
//  * epoch — the engine as built: each dereference pins the current epoch
//    with a store into a core-private cacheline (common/epoch.h).
//  * lock  — emulation of the retired design: every op additionally takes
//    a group-wide std::shared_mutex in shared mode (the atomic RMW on the
//    shared lock line is the cost being measured; a background thread
//    takes the lock exclusively at a cleaner-like cadence).
//
// Unlike the bench_fig* binaries this reports host wall-clock ops/s:
// the contended cacheline is a host-hardware effect the virtual-time
// model deliberately excludes (vt/costs.h kRetireSharedLockCost models
// its simulated charge; this bench shows the real-machine shape).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/flatstore.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace {

constexpr uint64_t kKeysPerCore = 4096;
constexpr uint32_t kValueLen = 64;
constexpr uint64_t kOpsPerThread = 300000;

struct ModeResult {
  double mops = 0;
  double wall_ms = 0;
};

ModeResult RunMode(int threads, bool emulate_lock) {
  pm::PmPool::Options po;
  po.size = 1ull << 30;
  pm::PmPool pool(po);
  core::FlatStoreOptions fo;
  fo.num_cores = threads;
  fo.group_size = threads;  // one socket-sized group, like the paper
  fo.hash_initial_depth = 6;
  auto store = core::FlatStore::Create(&pool, fo);

  // Per-core key sets (synchronous preload).
  std::vector<std::vector<uint64_t>> keys(static_cast<size_t>(threads));
  uint64_t k = 0;
  uint8_t value[kValueLen];
  std::memset(value, 0x42, sizeof(value));
  while (true) {
    const auto core = static_cast<size_t>(store->CoreForKey(k));
    if (keys[core].size() < kKeysPerCore) {
      keys[core].push_back(k);
      store->Put(k, std::string_view(reinterpret_cast<char*>(value),
                                     kValueLen));
    }
    bool full = true;
    for (const auto& v : keys) full = full && v.size() >= kKeysPerCore;
    if (full) break;
    k++;
  }

  // The emulated retire lock of the old design, plus its "cleaner":
  // a thread taking the lock exclusively every ~1 ms, as the unlink
  // critical sections used to.
  std::shared_mutex retire;
  std::atomic<bool> stop_cleaner{false};
  std::thread lock_cleaner;
  if (emulate_lock) {
    lock_cleaner = std::thread([&retire, &stop_cleaner] {
      // relaxed: plain stop flag, no data is published through it
      while (!stop_cleaner.load(std::memory_order_relaxed)) {
        {
          std::unique_lock<std::shared_mutex> g(retire);
          std::this_thread::sleep_for(std::chrono::microseconds(5));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  store->StartCleaners();
  std::atomic<uint64_t> total_ops{0};

  auto serve = [&](int core) {
    const auto& mine = keys[static_cast<size_t>(core)];
    uint64_t rng = 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(core) + 1);
    std::string v;
    v.reserve(512);
    uint64_t ops = 0;
    for (uint64_t i = 0; i < kOpsPerThread; i++) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const uint64_t key = mine[(rng >> 33) % mine.size()];
      const bool is_put = (rng >> 60) < 2;  // ~10 %
      if (emulate_lock) {
        std::shared_lock<std::shared_mutex> g(retire);
        if (is_put) {
          core::FlatStore::OpHandle h;
          if (store->BeginPut(core, key, value, kValueLen, &h) !=
              core::OpStatus::kOk) {
            store->Pump(core);
            store->Drain(core, SIZE_MAX, nullptr);
            continue;
          }
        } else {
          store->GetOnCore(core, key, &v);
        }
      } else {
        if (is_put) {
          core::FlatStore::OpHandle h;
          if (store->BeginPut(core, key, value, kValueLen, &h) !=
              core::OpStatus::kOk) {
            store->Pump(core);
            store->Drain(core, SIZE_MAX, nullptr);
            continue;
          }
        } else {
          store->GetOnCore(core, key, &v);
        }
      }
      ops++;
      if ((i & 31) == 0) {
        store->Pump(core);
        store->Drain(core, SIZE_MAX, nullptr);
      }
    }
    while (store->Inflight(core) > 0) {
      store->Pump(core);
      store->Drain(core, SIZE_MAX, nullptr);
    }
    // relaxed: statistics counter, read only after the threads join
    total_ops.fetch_add(ops, std::memory_order_relaxed);
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> servers;
  for (int c = 0; c < threads; c++) servers.emplace_back(serve, c);
  for (auto& t : servers) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  store->StopCleaners();
  if (emulate_lock) {
    // relaxed: plain stop flag, the join below is the synchronization
    stop_cleaner.store(true, std::memory_order_relaxed);
    lock_cleaner.join();
  }

  ModeResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.mops = static_cast<double>(total_ops.load()) / 1e6 /
           (r.wall_ms / 1e3);
  if (!emulate_lock) {
    std::printf("    [epoch stats] advances=%llu deferred_frees=%llu "
                "deferred_hwm=%llu\n",
                static_cast<unsigned long long>(store->epochs()->advances()),
                static_cast<unsigned long long>(
                    store->epochs()->deferred_frees()),
                static_cast<unsigned long long>(
                    store->epochs()->deferred_hwm()));
  }
  return r;
}

}  // namespace
}  // namespace flatstore

int main(int argc, char** argv) {
  std::printf("retire-path scalability, 90/10 get/put, %u B values, "
              "host wall-clock\n",
              flatstore::kValueLen);
  std::printf("%-8s %-8s %12s %12s\n", "threads", "mode", "wall_ms",
              "Mops/s");
  // Thread counts above the machine's core count are skipped (the numbers
  // would measure the scheduler, not the synchronization); pass a max
  // thread count as argv[1] to force the sweep anyway.
  const unsigned hw = argc > 1
                          ? static_cast<unsigned>(std::atoi(argv[1]))
                          : std::thread::hardware_concurrency();
  // Machine-readable mirror of the table (no bench_common.h here — this
  // binary doesn't link google-benchmark).
  std::FILE* json = std::fopen("BENCH_retire_scalability.json", "w");
  if (json != nullptr) std::fprintf(json, "{\"bench\": \"retire_scalability\", \"rows\": [");
  bool first = true;
  for (int t : {1, 2, 4, 8}) {
    if (hw != 0 && static_cast<unsigned>(t) > hw) break;
    for (const bool lock_mode : {false, true}) {
      const auto r = flatstore::RunMode(t, lock_mode);
      std::printf("%-8d %-8s %12.1f %12.2f\n", t,
                  lock_mode ? "lock" : "epoch", r.wall_ms, r.mops);
      if (json != nullptr) {
        std::fprintf(json,
                     "%s{\"threads\": %d, \"mode\": \"%s\", "
                     "\"wall_ms\": %.3f, \"mops\": %.6g}",
                     first ? "" : ", ", t, lock_mode ? "lock" : "epoch",
                     r.wall_ms, r.mops);
        first = false;
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "]}\n");
    std::fclose(json);
    std::printf("wrote BENCH_retire_scalability.json\n");
  }
  return 0;
}
