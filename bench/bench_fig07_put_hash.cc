// Figure 7 — Put performance of FlatStore-H vs. the hash baselines
// (CCEH, Level-Hashing), value length ∈ {8, 64, 128, 256, 512, 1024} B,
// under uniform and zipfian-0.99 key popularity.
//
// Expected shape (paper §5.1): FlatStore-H far ahead for small values
// (2.5-5.4x), the advantage shrinking toward parity at 1 KB where all
// systems are PM-bandwidth bound; skew hurts the in-place baselines more
// than FlatStore.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Figure 7: Put throughput (Mops/s), hash-indexed systems");

core::ServerConfig Config(uint32_t vlen, bool skew) {
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.workload.key_space = kKeySpace;
  cfg.workload.value_len = vlen;
  cfg.workload.dist =
      skew ? workload::KeyDist::kZipfian : workload::KeyDist::kUniform;
  return cfg;
}

std::string Label(uint32_t vlen, bool skew) {
  return std::string(skew ? "skew" : "uniform") + "/" +
         std::to_string(vlen) + "B";
}

void BM_FlatStoreH(benchmark::State& state) {
  const uint32_t vlen = static_cast<uint32_t>(state.range(0));
  const bool skew = state.range(1) != 0;
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);
  RunPoint(state, rig.adapter.get(), Config(vlen, skew), &g_table,
           "FlatStore-H", Label(vlen, skew));
}
BENCHMARK(BM_FlatStoreH)
    ->ArgsProduct({{8, 64, 128, 256, 512, 1024}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_HashBaseline(benchmark::State& state, core::BaselineKind kind) {
  const uint32_t vlen = static_cast<uint32_t>(state.range(0));
  const bool skew = state.range(1) != 0;
  core::BaselineStore::Options bo;
  bo.num_cores = kCores;
  bo.kind = kind;
  bo.cceh_initial_depth = 6;
  bo.level_initial_bits = 14;
  Rig rig = MakeBaselineRig(bo);
  RunPoint(state, rig.adapter.get(), Config(vlen, skew), &g_table,
           core::BaselineKindName(kind), Label(vlen, skew));
}
void BM_Cceh(benchmark::State& state) {
  BM_HashBaseline(state, core::BaselineKind::kCceh);
}
void BM_Level(benchmark::State& state) {
  BM_HashBaseline(state, core::BaselineKind::kLevelHashing);
}
BENCHMARK(BM_Cceh)
    ->ArgsProduct({{8, 64, 128, 256, 512, 1024}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Level)
    ->ArgsProduct({{8, 64, 128, 256, 512, 1024}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("fig07_put_hash");
  return 0;
}
