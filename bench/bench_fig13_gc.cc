// Figure 13 — garbage-collection efficiency, reworked as a sweep:
// update ratio {25, 50, 75 %} x cleaning threshold {0.6, 0.8, 0.9} under
// the ETC value mix in a deliberately small pool, plus a policy A/B at
// the 50 %-update point (cost-benefit + hot/cold segregation vs the
// legacy oldest-first live-ratio cleaner).
//
// Each point runs in time segments: serve, then one synchronous cleaner
// pass whose PM traffic lands at the head of the *next* segment's device
// window — the cleaner/serving interference of the paper's Fig. 13. The
// row reports steady-state throughput (mean of the final segments, once
// cleaning has ramped) and the cleaner's write-amplification ratio
// (bytes relocated / bytes reclaimed, from PmStats).
//
// Expected shape: WA grows with both knobs (more updates -> more
// survivors per victim at pick time; higher threshold -> fuller
// victims), and at every shared point cost-benefit beats the legacy
// policy on WA — it spends its budget on old, empty chunks first.

#include "bench_common.h"
#include "pm/pm_stats.h"

namespace flatstore {
namespace bench {
namespace {

struct GcPoint {
  std::string policy;
  double update_ratio;
  double live_ratio;
  double steady_mops;      // mean of the last kSteadyTail segments
  double wa_ratio;         // relocated / reclaimed
  uint64_t chunks_cleaned;
  uint64_t bytes_relocated;
  uint64_t bytes_reclaimed;
  uint64_t survivor_bytes_hot;
  uint64_t survivor_bytes_cold;
};
std::vector<GcPoint> g_points;

constexpr int kSegments = 12;
constexpr int kSteadyTail = 3;

GcPoint RunGcPoint(log::VictimQuery::Policy policy, bool segregate,
                   double update_ratio, double live_ratio) {
  core::FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  fo.hash_initial_depth = 6;
  fo.gc_policy = policy;
  fo.gc_segregate = segregate;
  fo.gc_live_ratio = live_ratio;
  fo.gc_cold_age = 256;
  // Pace the cleaner: one bounded pass per segment, below the churn
  // rate, so a victim backlog persists and selection ORDER matters (an
  // unpaced cleaner drains every eligible chunk each pass, making all
  // policies converge on the same cumulative totals). One victim in
  // flight per core keeps every pick a fresh, policy-driven choice over
  // the current backlog rather than a slot pinned at segment 1.
  fo.gc_quantum_bytes = 8ull << 20;
  fo.gc_max_victims = 1;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/256);

  core::ServerConfig cfg;
  cfg.num_conns = 8;
  cfg.client_window = 8;
  cfg.ops_per_conn = std::max<uint64_t>(200, OpsPerPoint() / 4);
  cfg.workload.key_space = BenchKeys(1 << 15);
  cfg.workload.etc_values = true;
  cfg.workload.dist = workload::KeyDist::kZipfian;
  cfg.workload.get_ratio = 1.0 - update_ratio;
  Preload(rig.adapter.get(), cfg.workload, cfg.workload.key_space);

  double steady_sum = 0;
  for (int seg = 0; seg < kSegments; seg++) {
    // Shift the working set every quarter of the run: the scrambled-
    // zipfian hot set is a function of the key-space modulus, so
    // shrinking it by one remaps every hot rank to a different key.
    // Each phase strands its chunks at whatever liveness they reached —
    // stable cold garbage at a spread of fullness levels. That is what
    // separates the policies: a FIFO cleaner plows through the stranded
    // cohort in seal order, paying up to the threshold's worth of
    // survivor copies per chunk, while cost-benefit spends the same
    // scarce budget on the emptiest stable chunks first (and segregation
    // keeps the relocated cold survivors out of future victims).
    cfg.workload.key_space =
        BenchKeys(1 << 15) - static_cast<uint64_t>(seg / (kSegments / 4));
    cfg.seed = static_cast<uint64_t>(seg) + 1;
    core::ServerResult r = core::RunServer(rig.adapter.get(), cfg);
    if (seg >= kSegments - kSteadyTail) steady_sum += r.mops;
    // Core clocks restart at zero each segment; clear the device window
    // *before* the cleaner pass so its PM traffic overlaps the next
    // segment's serving traffic (the interference under measurement).
    rig.device->Reset();
    vt::Clock cleaner_clock;
    vt::ScopedClock bind(&cleaner_clock);
    rig.flat->RunCleanersOnce();
  }

  const auto s = rig.pool->stats().Get();
  GcPoint p;
  p.policy =
      policy == log::VictimQuery::Policy::kCostBenefit ? "cost_benefit"
                                                       : "live_ratio";
  p.update_ratio = update_ratio;
  p.live_ratio = live_ratio;
  p.steady_mops = steady_sum / kSteadyTail;
  p.wa_ratio = pm::GcWriteAmp(s);
  p.chunks_cleaned = rig.flat->ChunksCleaned();
  p.bytes_relocated = s.gc_bytes_relocated;
  p.bytes_reclaimed = s.gc_bytes_reclaimed;
  p.survivor_bytes_hot = s.gc_survivor_bytes_hot;
  p.survivor_bytes_cold = s.gc_survivor_bytes_cold;
  return p;
}

void BM_GcSweep(benchmark::State& state) {
  for (auto _ : state) {
    g_points.clear();
    // Main sweep: the cost-benefit + segregation cleaner.
    for (double update : {0.25, 0.5, 0.75}) {
      for (double lr : {0.6, 0.8, 0.9}) {
        g_points.push_back(RunGcPoint(log::VictimQuery::Policy::kCostBenefit,
                                      /*segregate=*/true, update, lr));
      }
    }
    // Legacy arm at the 50 %-update column (the acceptance A/B).
    for (double lr : {0.6, 0.8, 0.9}) {
      g_points.push_back(RunGcPoint(log::VictimQuery::Policy::kLiveRatio,
                                    /*segregate=*/false, 0.5, lr));
    }
  }
  // Headline counters: the 50 % update / 0.9 threshold pair.
  for (const GcPoint& p : g_points) {
    if (p.update_ratio == 0.5 && p.live_ratio == 0.9) {
      const char* tag =
          p.policy == "cost_benefit" ? "cb_mops" : "legacy_mops";
      state.counters[tag] = p.steady_mops;
      const char* wtag = p.policy == "cost_benefit" ? "cb_wa" : "legacy_wa";
      state.counters[wtag] = p.wa_ratio;
    }
  }
}
BENCHMARK(BM_GcSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n== Figure 13: GC sweep (ETC values, zipfian, 256 MB pool) ==\n");
  std::printf("%-14s %8s %6s %10s %8s %10s %14s %14s\n", "policy", "update",
              "thresh", "Mops/s", "WA", "cleaned", "surv hot B",
              "surv cold B");
  for (const auto& p : flatstore::bench::g_points) {
    std::printf("%-14s %8.2f %6.2f %10.2f %8.3f %10lu %14lu %14lu\n",
                p.policy.c_str(), p.update_ratio, p.live_ratio,
                p.steady_mops, p.wa_ratio,
                static_cast<unsigned long>(p.chunks_cleaned),
                static_cast<unsigned long>(p.survivor_bytes_hot),
                static_cast<unsigned long>(p.survivor_bytes_cold));
  }
  flatstore::bench::BenchJson j("fig13_gc");
  for (const auto& p : flatstore::bench::g_points) {
    j.AddRow()
        .Str("policy", p.policy)
        .Num("update_ratio", p.update_ratio)
        .Num("live_ratio", p.live_ratio)
        .Num("mops", p.steady_mops)
        .Num("wa_ratio", p.wa_ratio)
        .Int("chunks_cleaned", p.chunks_cleaned)
        .Int("bytes_relocated", p.bytes_relocated)
        .Int("bytes_reclaimed", p.bytes_reclaimed)
        .Int("survivor_bytes_hot", p.survivor_bytes_hot)
        .Int("survivor_bytes_cold", p.survivor_bytes_cold);
  }
  j.Write();
  return 0;
}
