// Figure 13 — garbage-collection efficiency: FlatStore-H under the ETC
// workload (50 % Get) in a deliberately small pool, measured in time
// segments. Each segment reports the serving throughput and the log-
// cleaning rate (chunks/segment); GC is driven synchronously between
// segments so the run stays deterministic.
//
// Expected shape: throughput dips mildly (the paper reports ~10 %) once
// cleaning starts, then both the throughput and the cleaning rate hold
// steady — the cleaner keeps up without stalling the serving cores.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

struct Segment {
  int id;
  double mops;
  uint64_t chunks_cleaned;
  uint64_t free_chunks;
};
std::vector<Segment> g_segments;

void BM_GcTimeline(benchmark::State& state) {
  for (auto _ : state) {
    core::FlatStoreOptions fo;
    fo.num_cores = 8;
    fo.group_size = 8;
    fo.hash_initial_depth = 6;
    fo.gc_live_ratio = 0.9;  // small pool: clean aggressively
    Rig rig = MakeFlatRig(fo, /*pool_mb=*/768);

    core::ServerConfig cfg;
    cfg.num_conns = 24;
    cfg.client_window = 8;
    cfg.ops_per_conn = 4000;
    cfg.workload.key_space = 1 << 17;
    cfg.workload.etc_values = true;
    cfg.workload.dist = workload::KeyDist::kZipfian;
    cfg.workload.get_ratio = 0.5;
    Preload(rig.adapter.get(), cfg.workload, cfg.workload.key_space);

    uint64_t cleaned_before = 0;
    for (int seg = 0; seg < 12; seg++) {
      cfg.seed = static_cast<uint64_t>(seg) + 1;
      core::ServerResult r = core::RunServer(rig.adapter.get(), cfg);
      // Synchronous cleaning between segments (one simulated-core pass).
      vt::Clock cleaner_clock;
      {
        vt::ScopedClock bind(&cleaner_clock);
        rig.flat->RunCleanersOnce();
      }
      uint64_t cleaned_now = rig.flat->ChunksCleaned();
      g_segments.push_back({seg, r.mops, cleaned_now - cleaned_before,
                            rig.flat->allocator()->free_chunks()});
      cleaned_before = cleaned_now;
      // Core clocks restart at zero every segment; reset the device's
      // utilization window to match.
      rig.device->Reset();
    }
    state.counters["final_mops"] = g_segments.back().mops;
    state.counters["chunks_cleaned"] = static_cast<double>(cleaned_before);
  }
}
BENCHMARK(BM_GcTimeline)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n== Figure 13: GC timeline (ETC 50%% Get, small pool) ==\n");
  std::printf("%8s %10s %16s %12s\n", "segment", "Mops/s", "chunks cleaned",
              "free chunks");
  for (const auto& s : flatstore::bench::g_segments) {
    std::printf("%8d %10.2f %16lu %12lu\n", s.id, s.mops,
                static_cast<unsigned long>(s.chunks_cleaned),
                static_cast<unsigned long>(s.free_chunks));
  }
  flatstore::bench::BenchJson j("fig13_gc");
  for (const auto& s : flatstore::bench::g_segments) {
    j.AddRow()
        .Int("segment", static_cast<uint64_t>(s.id))
        .Num("mops", s.mops)
        .Int("chunks_cleaned", s.chunks_cleaned)
        .Int("free_chunks", s.free_chunks);
  }
  j.Write();
  return 0;
}
