// Scale-out headline: aggregate throughput across sockets × shards ×
// client nodes.
//
// Three sweeps plus an open-loop saturation set, all 64 B Puts:
//
//  * socket scaling (one shard) — 1-socket/8-core vs 2-socket/16-core
//    with NUMA placement on and off. Placement on should land near 2×
//    (per-socket DIMM sets double the PM bandwidth and every core's
//    persists, chunks, and index probes stay local); placement off pays
//    remote persists on ~half the flush traffic plus interleaved index
//    misses, and lands visibly below the placed arm.
//  * shard scaling — 1/2/4 independent one-socket shards behind the
//    consistent-hash router, one shared client fleet. Shards share
//    nothing, so aggregate Mops/s should scale near-linearly.
//  * client nodes — fixed 2-shard cluster under a growing fleet.
//  * open loop — the 2-shard cluster under Poisson offered load below,
//    near, and beyond saturation.
//
// Aggregate rows carry cluster-level metrics; per-shard rows (system
// "per-shard") expose each shard's p50/p99 so imbalance is visible.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Scale-out: sockets x shards x client nodes (64B Put)");

struct ClusterRig {
  std::vector<Rig> rigs;
  std::vector<core::EngineAdapter*> adapters;
};

ClusterRig MakeCluster(int nshards, int sockets, int cores_per_shard,
                       bool placement, uint64_t pool_mb) {
  ClusterRig cluster;
  cluster.rigs.reserve(static_cast<size_t>(nshards));
  for (int s = 0; s < nshards; s++) {
    core::FlatStoreOptions fo;
    fo.num_cores = cores_per_shard;
    // Socket-sized groups (the paper's choice); the engine re-aligns the
    // group to the socket boundary when placement is on.
    fo.group_size =
        sockets > 1 ? (cores_per_shard + sockets - 1) / sockets
                    : cores_per_shard;
    fo.hash_initial_depth = 6;
    fo.socket_local_placement = placement;
    cluster.rigs.push_back(MakeFlatRig(fo, pool_mb, sockets));
    cluster.adapters.push_back(cluster.rigs.back().adapter.get());
  }
  return cluster;
}

core::ServerConfig BaseConfig(int conns) {
  core::ServerConfig cfg;
  cfg.num_conns = conns;
  cfg.client_window = 8;
  cfg.ops_per_conn =
      std::max<uint64_t>(1, OpsPerPoint() / static_cast<uint64_t>(conns));
  cfg.workload.key_space = kKeySpace;
  cfg.workload.value_len = 64;
  return cfg;
}

void AddClusterRows(const core::ClusterResult& result, const char* label) {
  Row row;
  row.system = "aggregate";
  row.config = label;
  row.mops = result.mops;
  row.ops = result.ops;
  row.sim_ns = result.sim_ns;
  row.p50_ns = result.latency.Percentile(50);
  row.p99_ns = result.latency.Percentile(99);
  g_table.Add(row);
  for (size_t s = 0; s < result.shards.size(); s++) {
    const core::ServerResult& sh = result.shards[s];
    Row r;
    r.system = "per-shard";
    r.config = std::string(label) + "/s" + std::to_string(s);
    r.mops = sh.mops;
    r.ops = sh.ops;
    r.sim_ns = sh.sim_ns;
    r.p50_ns = sh.latency.Percentile(50);
    r.p99_ns = sh.latency.Percentile(99);
    g_table.Add(r);
  }
}

void RunClusterPoint(benchmark::State& state, int nshards, int sockets,
                     int cores_per_shard, bool placement, int conns,
                     uint64_t pool_mb, const char* label,
                     double offered_mops = 0) {
  ClusterRig cluster =
      MakeCluster(nshards, sockets, cores_per_shard, placement, pool_mb);
  core::ClusterConfig cc;
  cc.server = BaseConfig(conns);
  if (offered_mops > 0) {
    cc.server.open_loop = true;
    cc.server.offered_mops = offered_mops;
  }
  core::ClusterResult result;
  for (auto _ : state) {
    result = core::RunCluster(cluster.adapters, cc);
  }
  state.counters["agg_mops"] = result.mops;
  AddClusterRows(result, label);
}

// ---- socket scaling (single shard, placement A/B) ----

// Weak scaling: the client fleet grows with the server (6 connections
// per core, the kConns:kCores default ratio) so neither arm is
// client-bound.
void BM_Sockets(benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      RunClusterPoint(state, 1, 1, 8, true, 48, 1024, "sock1");
      break;
    case 1:
      RunClusterPoint(state, 1, 2, 16, true, 96, 1024, "sock2-placed");
      break;
    default:
      RunClusterPoint(state, 1, 2, 16, false, 96, 1024, "sock2-spread");
      break;
  }
}
BENCHMARK(BM_Sockets)->Arg(0)->Arg(1)->Arg(2)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- shard scaling (one-socket shards behind the router) ----

void BM_Shards(benchmark::State& state) {
  const int nshards = static_cast<int>(state.range(0));
  const std::string label = "shards" + std::to_string(nshards);
  // Weak scaling again: 48 client connections per 8-core shard.
  RunClusterPoint(state, nshards, 1, 8, true, 48 * nshards, 512,
                  label.c_str());
}
BENCHMARK(BM_Shards)->Arg(1)->Arg(2)->Arg(4)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- client-node sweep (fixed 2-shard cluster) ----

void BM_ClientNodes(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const std::string label = "shards2-conns" + std::to_string(conns);
  RunClusterPoint(state, 2, 1, 8, true, conns, 512, label.c_str());
}
BENCHMARK(BM_ClientNodes)->Arg(24)->Arg(48)->Arg(96)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- open-loop offered load (2-shard cluster) ----

void BM_OpenLoop(benchmark::State& state) {
  const double offered =
      static_cast<double>(state.range(0)) / 10.0;  // tenths of a Mops
  char label[48];
  std::snprintf(label, sizeof(label), "shards2-offered=%.1f", offered);
  RunClusterPoint(state, 2, 1, 8, true, kConns, 512, label, offered);
}
BENCHMARK(BM_OpenLoop)->Arg(20)->Arg(80)->Arg(320)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.MetaInt("sockets", 2).MetaInt("shards", 4);
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("scaleout");
  return 0;
}
