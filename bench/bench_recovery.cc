// §3.5 / DESIGN.md §11 — recovery performance and the tier's bounded-
// recovery claim: recovery time tracks the LIVE-KEY COUNT, not the log
// size. The paper reports replaying 1 billion KV items in ~40 s
// (≈25 M items/s) — linear in the log. This bench holds the live key
// set fixed (FLATSTORE_BENCH_LOGSIZE keys, default 256 K) and sweeps
// the log HISTORY: 1x / 2x / 4x full-keyspace overwrite rounds.
//
//   no_tier — no background maintenance: the log accumulates every
//             round's entries and crash recovery replays all of them,
//             so time grows linearly with history.
//   tier    — each round runs the background seal + clean + tier
//             passes: dead chunks are reclaimed, live chunks convert
//             into tier nodes (existing keys take the in-place packed
//             update, so the node count stays at the live-key count).
//             Recovery loads the tier (O(live keys)) and replays only
//             the fixed-size un-tiered suffix — flat across the sweep.
//
// Per-phase timings come from FlatStore::recovery_stats(): tier load
// (node walk + index duel-inserts), log-suffix replay, and the usage /
// index-rebuild pass. CI's bench-smoke asserts recovery_ms(4x) <=
// 1.3 * recovery_ms(1x) for the tier arm.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/flatstore.h"

namespace flatstore {
namespace {

uint64_t LiveKeys() {
  static const uint64_t v =
      bench::EnvScale("FLATSTORE_BENCH_LOGSIZE", 1ull << 17);
  return v;
}

// Just under the 256 B embed limit: each entry is ~264 B in the log, so
// one overwrite round spans multiple 4 MB chunks per core — the seal +
// clean + tier passes have real chunks to work on even at smoke scale.
constexpr size_t kValueLen = 240;

// Fixed un-tiered suffix: what recovery replays in the tier arm no
// matter how much history the (tiered) log prefix accumulated.
constexpr uint64_t kSuffixItems = 1 << 12;

core::FlatStoreOptions Options(bool tier) {
  core::FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  fo.hash_initial_depth = 8;
  fo.tier_enabled = tier;
  return fo;
}

// Writes `rounds` full overwrite passes over a fixed LiveKeys() key
// space. The tier arm interleaves the background maintenance the engine
// would run anyway (seal + cleaner + tiering) after every round, so the
// un-tiered remainder stays a bounded suffix; the no_tier arm does no
// maintenance and its log grows with history.
std::unique_ptr<pm::PmPool> LoadedPool(uint64_t rounds, bool tier) {
  pm::PmPool::Options o;
  o.size = 1024ull << 20;
  auto pool = std::make_unique<pm::PmPool>(o);
  auto store = core::FlatStore::Create(pool.get(), Options(tier));
  std::string value(kValueLen, 'x');
  const uint64_t live = LiveKeys();
  for (uint64_t r = 0; r < rounds; r++) {
    for (uint64_t k = 0; k < live; k++) store->Put(k, value);
    if (tier) {
      store->SealActiveLogChunks();
      while (store->RunCleanersOnce() > 0) {
      }
      while (store->RunTieringOnce() > 0) {
      }
    }
  }
  if (tier) {
    // The fixed un-tiered suffix recovery will replay.
    for (uint64_t k = 0; k < kSuffixItems && k < live; k++) {
      store->Put(k, value);
    }
  }
  return pool;  // no Shutdown: Open takes the crash-recovery path
}

struct Arm {
  const char* name;
  bool tier;
};

void RunArm(benchmark::State& state, const Arm& arm, bench::BenchJson* json) {
  const auto mult = static_cast<uint64_t>(state.range(0));
  const uint64_t live = LiveKeys();
  const uint64_t history = live * mult;
  auto pool = LoadedPool(mult, arm.tier);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto store = core::FlatStore::Open(pool.get(), Options(arm.tier));
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const auto& rs = store->recovery_stats();
    state.counters["recovery_ms"] = ms;
    state.counters["chunks_replayed"] =
        static_cast<double>(rs.chunks_replayed);
    state.counters["chunks_skipped_tiered"] =
        static_cast<double>(rs.chunks_skipped_tiered);
    if (store->Size() != live) {
      std::fprintf(stderr, "recovery lost items (%llu != %llu)\n",
                   static_cast<unsigned long long>(store->Size()),
                   static_cast<unsigned long long>(live));
      std::abort();
    }
    json->AddRow()
        .Str("arm", arm.name)
        .Int("logsize_mult", mult)
        .Int("live_keys", live)
        .Int("history_items", history)
        .Num("recovery_ms", ms)
        .Num("tier_load_ms", static_cast<double>(rs.tier_load_ns) / 1e6)
        .Num("replay_ms", static_cast<double>(rs.replay_ns) / 1e6)
        .Num("usage_ms", static_cast<double>(rs.usage_ns) / 1e6)
        .Int("tier_nodes_loaded", rs.tier_nodes_loaded)
        .Int("chunks_replayed", rs.chunks_replayed)
        .Int("chunks_skipped_tiered", rs.chunks_skipped_tiered)
        .Num("history_items_per_sec",
             static_cast<double>(history) / (ms / 1e3));
    std::printf(
        "%-8s %llux: %8.1f ms  (tier %6.1f + replay %6.1f + usage %6.1f)"
        "  replayed %llu chunks, tiered-skip %llu\n",
        arm.name, static_cast<unsigned long long>(mult), ms,
        static_cast<double>(rs.tier_load_ns) / 1e6,
        static_cast<double>(rs.replay_ns) / 1e6,
        static_cast<double>(rs.usage_ns) / 1e6,
        static_cast<unsigned long long>(rs.chunks_replayed),
        static_cast<unsigned long long>(rs.chunks_skipped_tiered));
  }
}

bench::BenchJson* g_json = nullptr;

void BM_RecoveryNoTier(benchmark::State& state) {
  RunArm(state, {"no_tier", false}, g_json);
}
void BM_RecoveryTier(benchmark::State& state) {
  RunArm(state, {"tier", true}, g_json);
}

BENCHMARK(BM_RecoveryNoTier)
    ->Arg(1)->Arg(2)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecoveryTier)
    ->Arg(1)->Arg(2)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);

// Clean-shutdown checkpoint load, for the §3.5 comparison row.
void BM_CleanShutdownRecovery(benchmark::State& state) {
  const uint64_t items = LiveKeys();
  auto pool = LoadedPool(1, false);
  {
    auto store = core::FlatStore::Open(pool.get(), Options(false));
    store->Shutdown();
  }
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto store = core::FlatStore::Open(pool.get(), Options(false));
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    state.counters["recovery_ms"] = ms;
    g_json->AddRow()
        .Str("arm", "clean_checkpoint")
        .Int("logsize_mult", 1)
        .Int("live_keys", items)
        .Int("history_items", items)
        .Num("recovery_ms", ms)
        .Num("history_items_per_sec",
             static_cast<double>(items) / (ms / 1e3));
    store->Shutdown();  // re-arm for potential repeats
  }
}
BENCHMARK(BM_CleanShutdownRecovery)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flatstore

int main(int argc, char** argv) {
  flatstore::bench::BenchJson json("recovery");
  json.MetaInt("live_keys", flatstore::LiveKeys());
  json.MetaInt("suffix_items", flatstore::kSuffixItems);
  flatstore::g_json = &json;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n== Recovery sweep (%llu live keys; history = live x mult; tier "
      "arm replays only the %llu-item suffix) ==\n",
      static_cast<unsigned long long>(flatstore::LiveKeys()),
      static_cast<unsigned long long>(flatstore::kSuffixItems));
  json.Write();
  return 0;
}
