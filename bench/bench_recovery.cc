// §3.5 — recovery performance. The paper reports replaying 1 billion KV
// items in ~40 s (≈25 M items/s). This bench loads a scaled-down store,
// then measures (a) crash-recovery replay rate (items/s of OpLog scan +
// index rebuild + bitmap reconstruction, host time) and (b) clean-
// shutdown checkpoint load rate, which skips the index rebuild.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/flatstore.h"

namespace flatstore {
namespace {

constexpr uint64_t kItems = 1 << 20;  // 1M items (paper: 1B, scaled)

core::FlatStoreOptions Options() {
  core::FlatStoreOptions fo;
  fo.num_cores = 4;
  fo.group_size = 4;
  fo.hash_initial_depth = 8;
  return fo;
}

std::unique_ptr<pm::PmPool> LoadedPool() {
  pm::PmPool::Options o;
  o.size = 1024ull << 20;
  auto pool = std::make_unique<pm::PmPool>(o);
  auto store = core::FlatStore::Create(pool.get(), Options());
  std::string value(24, 'x');
  for (uint64_t k = 0; k < kItems; k++) store->Put(k, value);
  return pool;
}

double g_crash_items_per_sec = 0;
double g_clean_items_per_sec = 0;

void BM_CrashRecovery(benchmark::State& state) {
  auto pool = LoadedPool();
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto store = core::FlatStore::Open(pool.get(), Options());
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    g_crash_items_per_sec = static_cast<double>(kItems) / secs;
    state.counters["items_per_sec"] = g_crash_items_per_sec;
    if (store->Size() != kItems) {
      std::fprintf(stderr, "recovery lost items!\n");
      std::abort();
    }
  }
}
BENCHMARK(BM_CrashRecovery)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_CleanShutdownRecovery(benchmark::State& state) {
  auto pool = LoadedPool();
  {
    auto store = core::FlatStore::Open(pool.get(), Options());
    store->Shutdown();
  }
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto store = core::FlatStore::Open(pool.get(), Options());
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    g_clean_items_per_sec = static_cast<double>(kItems) / secs;
    state.counters["items_per_sec"] = g_clean_items_per_sec;
    // Re-arm the clean flag for potential repeats.
    store->Shutdown();
  }
}
BENCHMARK(BM_CleanShutdownRecovery)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n== Recovery rate (%lu items; paper: 1B items / ~40 s) ==\n",
              static_cast<unsigned long>(flatstore::kItems));
  std::printf("crash replay:        %.1f M items/s\n",
              flatstore::g_crash_items_per_sec / 1e6);
  std::printf("checkpoint (clean):  %.1f M items/s\n",
              flatstore::g_clean_items_per_sec / 1e6);
  flatstore::bench::BenchJson j("recovery");
  j.AddRow()
      .Str("mode", "crash_replay")
      .Int("items", flatstore::kItems)
      .Num("items_per_sec", flatstore::g_crash_items_per_sec);
  j.AddRow()
      .Str("mode", "clean_checkpoint")
      .Int("items", flatstore::kItems)
      .Num("items_per_sec", flatstore::g_clean_items_per_sec);
  j.Write();
  return 0;
}
