// Batched read pipeline — MultiGet batch-size sweep. Read-heavy ETC
// (5 % Put / 95 % Get) under uniform and zipfian key draws, sweeping the
// server's read batch over 1, 2, 4, 8, 16, 32 for FlatStore-H and
// FlatStore-M. Batch 1 is the legacy per-request read path (the control);
// larger batches amortize one epoch pin across the batch, overlap the
// index-probe cache misses behind prefetches, and issue the log/block
// value reads back-to-back so the PM device services them concurrently.
//
// Expected shape: throughput rises with the batch until the memory-level
// parallelism model saturates (vt::kMemParallelism ways), with batch >= 8
// clearly above batch 1 and batch 1 within noise of the pre-batching
// numbers (it is byte-for-byte the same code path).

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("MultiGet batch sweep (ETC 5:95, Mops/s)");

constexpr uint64_t kMgKeys = 1 << 18;  // preloaded key range

core::ServerConfig Config(workload::KeyDist dist, int read_batch) {
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.read_batch = read_batch;
  cfg.workload.key_space = kMgKeys;
  cfg.workload.etc_values = true;
  cfg.workload.dist = dist;
  cfg.workload.get_ratio = 0.95;
  return cfg;
}

void RunSweep(benchmark::State& state, Rig& rig, const char* name) {
  const workload::KeyDist dist = state.range(0) == 0
                                     ? workload::KeyDist::kUniform
                                     : workload::KeyDist::kZipfian;
  const int read_batch = static_cast<int>(state.range(1));
  auto cfg = Config(dist, read_batch);
  Preload(rig.adapter.get(), cfg.workload, BenchKeys(kMgKeys));
  const char* dist_name =
      dist == workload::KeyDist::kUniform ? "uniform" : "zipfian";
  RunPoint(state, rig.adapter.get(), cfg, &g_table, name,
           std::string(dist_name) + " b=" + std::to_string(read_batch));
}

void BM_FlatStoreH(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/3072);
  RunSweep(state, rig, "FlatStore-H");
}
void BM_FlatStoreM(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.index = core::IndexKind::kMasstree;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/3072);
  RunSweep(state, rig, "FlatStore-M");
}

// range(0): 0 = uniform, 1 = zipfian; range(1): read batch.
#define MG_SWEEP(fn) \
  BENCHMARK(fn)->ArgsProduct({{0, 1}, {1, 2, 4, 8, 16, 32}}) \
      ->Iterations(1)->Unit(benchmark::kMillisecond)
MG_SWEEP(BM_FlatStoreH);
MG_SWEEP(BM_FlatStoreM);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("multiget");
  return 0;
}
