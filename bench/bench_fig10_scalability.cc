// Figure 10 — multicore scalability: FlatStore-H and FlatStore-M Put
// throughput (64 B values) as server cores grow, uniform and zipfian.
//
// Expected shape: near-linear scaling into the 20-core range, then
// flattening as the PM device saturates; skew scales almost as well as
// uniform because horizontal batching spreads the persist work ("the
// busiest core" does not bottleneck FlatStore). The bench also sweeps the
// HB group size at a fixed core count (the paper's socket-sized groups
// are the sweet spot — DESIGN.md §6 ablation).

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Figure 10: scalability (64B Put, Mops/s)");

core::ServerConfig Config(bool skew, int cores) {
  core::ServerConfig cfg;
  cfg.num_conns = std::max(8, cores * 3);
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / static_cast<uint64_t>(cfg.num_conns);
  cfg.workload.key_space = kKeySpace;
  cfg.workload.value_len = 64;
  cfg.workload.dist =
      skew ? workload::KeyDist::kZipfian : workload::KeyDist::kUniform;
  return cfg;
}

void BM_Scale(benchmark::State& state, core::IndexKind kind,
              const char* name) {
  const int cores = static_cast<int>(state.range(0));
  const bool skew = state.range(1) != 0;
  core::FlatStoreOptions fo;
  fo.num_cores = cores;
  // The paper distributes cores evenly across two sockets and groups per
  // socket: one group up to 16 cores, two equal groups beyond.
  fo.group_size = cores <= 16 ? cores : (cores + 1) / 2;
  fo.index = kind;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);
  RunPoint(state, rig.adapter.get(), Config(skew, cores), &g_table, name,
           std::string(skew ? "skew" : "uniform") + "/" +
               std::to_string(cores) + "cores");
}
void BM_ScaleH(benchmark::State& state) {
  BM_Scale(state, core::IndexKind::kHash, "FlatStore-H");
}
void BM_ScaleM(benchmark::State& state) {
  BM_Scale(state, core::IndexKind::kMasstree, "FlatStore-M");
}
BENCHMARK(BM_ScaleH)
    ->ArgsProduct({{2, 4, 8, 16, 24, 32}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleM)
    ->ArgsProduct({{2, 4, 8, 16, 24, 32}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Two-socket mode: cores split across two sockets (per-socket DIMM sets,
// per-socket log/chunk placement). Placement on should stay near-linear
// versus the 1-socket arm at half the cores; placement off (interleaved
// chunks + indexes, no group alignment) goes sublinear — every second
// persist and index miss pays the cross-socket surcharge.
void BM_Scale2Sock(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const bool placed = state.range(1) != 0;
  core::FlatStoreOptions fo;
  fo.num_cores = cores;
  fo.group_size = (cores + 1) / 2;  // one group per socket
  fo.hash_initial_depth = 6;
  fo.socket_local_placement = placed;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/2048, /*num_sockets=*/2);
  RunPoint(state, rig.adapter.get(), Config(/*skew=*/false, cores),
           &g_table, "FlatStore-H",
           std::string(placed ? "2sock-placed" : "2sock-spread") + "/" +
               std::to_string(cores) + "cores");
}
BENCHMARK(BM_Scale2Sock)
    ->ArgsProduct({{8, 16, 32}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Group-size ablation at 16 cores (DESIGN.md §6).
void BM_GroupSize(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  core::FlatStoreOptions fo;
  fo.num_cores = 16;
  fo.group_size = group;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo);
  RunPoint(state, rig.adapter.get(), Config(/*skew=*/false, 16), &g_table,
           "FlatStore-H", "group=" + std::to_string(group));
}
BENCHMARK(BM_GroupSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.MetaInt("sockets", 2);
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("fig10_scalability");
  return 0;
}
