// Figure 9 — Facebook ETC pool (production workload emulation, §5.2):
// trimodal item sizes (40 % tiny 1-13 B, 55 % small 14-300 B, 5 % large),
// zipfian 0.99 over tiny+small, with Put:Get ratios 100:0, 50:50, 5:95.
// Hash group: FlatStore-H vs CCEH vs Level-Hashing; tree group:
// FlatStore-M vs FPTree vs FAST&FAIR.
//
// Expected shape: FlatStore-H ~2-4x the hash baselines at 100 % Put,
// converging as the Get ratio rises (reads take the same volatile-index
// path everywhere); FlatStore-M keeps an edge even at 5:95 because tree
// Puts stay expensive for the persistent trees.

#include "bench_common.h"

namespace flatstore {
namespace bench {
namespace {

Table g_table("Figure 9: Facebook ETC throughput (Mops/s)");

constexpr uint64_t kEtcKeys = 1 << 18;  // preloaded key range

core::ServerConfig Config(int put_pct) {
  core::ServerConfig cfg;
  cfg.num_conns = kConns;
  cfg.client_window = 8;
  cfg.ops_per_conn = OpsPerPoint() / kConns;
  cfg.workload.key_space = kEtcKeys;
  cfg.workload.etc_values = true;
  cfg.workload.dist = workload::KeyDist::kZipfian;
  cfg.workload.get_ratio = (100 - put_pct) / 100.0;
  return cfg;
}

std::string Label(int put_pct) {
  return std::to_string(put_pct) + ":" + std::to_string(100 - put_pct);
}

void RunEtc(benchmark::State& state, Rig& rig, const char* name) {
  const int put_pct = static_cast<int>(state.range(0));
  auto cfg = Config(put_pct);
  // The pool is preloaded so Gets hit (the paper preloads the key range).
  Preload(rig.adapter.get(), cfg.workload, BenchKeys(kEtcKeys));
  RunPoint(state, rig.adapter.get(), cfg, &g_table, name, Label(put_pct));
}

void BM_FlatStoreH(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.hash_initial_depth = 6;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/3072);
  RunEtc(state, rig, "FlatStore-H");
}
void BM_FlatStoreM(benchmark::State& state) {
  core::FlatStoreOptions fo;
  fo.num_cores = kCores;
  fo.group_size = kCores;
  fo.index = core::IndexKind::kMasstree;
  Rig rig = MakeFlatRig(fo, /*pool_mb=*/3072);
  RunEtc(state, rig, "FlatStore-M");
}
void BM_Baseline(benchmark::State& state, core::BaselineKind kind) {
  core::BaselineStore::Options bo;
  bo.num_cores = kCores;
  bo.kind = kind;
  bo.cceh_initial_depth = 6;
  bo.level_initial_bits = 14;
  Rig rig = MakeBaselineRig(bo, /*pool_mb=*/3072);
  RunEtc(state, rig, core::BaselineKindName(kind));
}
void BM_Cceh(benchmark::State& state) {
  BM_Baseline(state, core::BaselineKind::kCceh);
}
void BM_Level(benchmark::State& state) {
  BM_Baseline(state, core::BaselineKind::kLevelHashing);
}
void BM_FpTree(benchmark::State& state) {
  BM_Baseline(state, core::BaselineKind::kFpTree);
}
void BM_FastFair(benchmark::State& state) {
  BM_Baseline(state, core::BaselineKind::kFastFair);
}

#define ETC_SWEEP(fn) \
  BENCHMARK(fn)->Arg(100)->Arg(50)->Arg(5)->Iterations(1)->Unit( \
      benchmark::kMillisecond)
ETC_SWEEP(BM_FlatStoreH);
ETC_SWEEP(BM_Cceh);
ETC_SWEEP(BM_Level);
ETC_SWEEP(BM_FlatStoreM);
ETC_SWEEP(BM_FpTree);
ETC_SWEEP(BM_FastFair);

}  // namespace
}  // namespace bench
}  // namespace flatstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flatstore::bench::g_table.Print();
  flatstore::bench::g_table.WriteJson("fig09_etc");
  return 0;
}
