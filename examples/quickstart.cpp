// Quickstart: create a FlatStore on an emulated PM pool, do basic KV
// operations, shut down cleanly, and reopen from the checkpoint.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/flatstore.h"

using flatstore::core::FlatStore;
using flatstore::core::FlatStoreOptions;

int main() {
  // 1. An emulated persistent-memory pool (stands in for a DAX mapping).
  flatstore::pm::PmPool::Options pool_opts;
  pool_opts.size = 256ull << 20;  // 256 MB
  flatstore::pm::PmPool pool(pool_opts);

  // 2. A FlatStore-H instance: 4 server cores, pipelined horizontal
  //    batching, per-core CCEH volatile index.
  FlatStoreOptions opts;
  opts.num_cores = 4;
  opts.group_size = 4;
  auto store = FlatStore::Create(&pool, opts);

  // 3. Basic operations through the synchronous API.
  store->Put(1, "hello flatstore");
  store->Put(2, std::string(1000, 'x'));  // large value -> allocator block
  std::string value;
  if (store->Get(1, &value)) {
    std::printf("key 1 -> \"%s\"\n", value.c_str());
  }
  store->Get(2, &value);
  std::printf("key 2 -> %zu bytes\n", value.size());

  store->Put(1, "overwritten");  // versions bump, old entry retired
  store->Get(1, &value);
  std::printf("key 1 -> \"%s\" (after overwrite)\n", value.c_str());

  store->Delete(2);
  std::printf("key 2 present after delete? %s\n",
              store->Get(2, &value) ? "yes" : "no");

  std::printf("live keys: %lu\n",
              static_cast<unsigned long>(store->Size()));

  // 4. Normal shutdown: checkpoint the volatile index to PM (§3.5).
  store->Shutdown();
  store.reset();

  // 5. Reopen: the checkpoint restores the index without log replay.
  auto reopened = FlatStore::Open(&pool, opts);
  reopened->Get(1, &value);
  std::printf("after reopen, key 1 -> \"%s\"\n", value.c_str());
  std::printf("quickstart OK\n");
  return 0;
}
