// Scenario: head-to-head server shootout. Runs the same YCSB-style
// write-intensive workload against FlatStore-H, FlatStore-M, and the four
// persistent-index baselines under the identical simulated network, then
// prints a comparison table — a miniature of the paper's §5 evaluation.
//
//   $ ./build/examples/kv_server

#include <cstdio>

#include "core/server.h"

using namespace flatstore;

namespace {

core::ServerConfig Workload() {
  core::ServerConfig cfg;
  cfg.num_conns = 16;
  cfg.client_window = 8;
  cfg.ops_per_conn = 2000;
  cfg.workload.key_space = 1 << 18;
  cfg.workload.value_len = 64;
  cfg.workload.get_ratio = 0.10;  // write-intensive
  cfg.workload.dist = workload::KeyDist::kZipfian;
  return cfg;
}

void Report(const char* name, const core::ServerResult& r) {
  std::printf("%-16s %8.2f Mops/s   p50 %6.1f us   p99 %6.1f us\n", name,
              r.mops, r.latency.Percentile(50) / 1000.0,
              r.latency.Percentile(99) / 1000.0);
}

void RunFlat(core::IndexKind kind) {
  pm::PmDevice device;
  pm::PmPool::Options po;
  po.size = 1024ull << 20;
  po.device = &device;
  pm::PmPool pool(po);
  core::FlatStoreOptions fo;
  fo.num_cores = 8;
  fo.group_size = 8;
  fo.index = kind;
  fo.hash_initial_depth = 6;
  auto store = core::FlatStore::Create(&pool, fo);
  core::FlatStoreAdapter adapter(store.get());
  Report(core::IndexKindName(kind), core::RunServer(&adapter, Workload()));
}

void RunBaseline(core::BaselineKind kind) {
  pm::PmDevice device;
  pm::PmPool::Options po;
  po.size = 1024ull << 20;
  po.device = &device;
  pm::PmPool pool(po);
  core::BaselineStore::Options bo;
  bo.num_cores = 8;
  bo.kind = kind;
  bo.cceh_initial_depth = 6;
  bo.level_initial_bits = 13;
  auto store = core::BaselineStore::Create(&pool, bo);
  core::BaselineAdapter adapter(store.get());
  Report(core::BaselineKindName(kind), core::RunServer(&adapter, Workload()));
}

}  // namespace

int main() {
  std::printf("KV server shootout: 8 cores, 16 conns x 8 window, 64 B\n");
  std::printf("values, zipfian(0.99), 90%% Put — simulated time.\n\n");
  RunFlat(core::IndexKind::kHash);
  RunFlat(core::IndexKind::kMasstree);
  RunBaseline(core::BaselineKind::kCceh);
  RunBaseline(core::BaselineKind::kLevelHashing);
  RunBaseline(core::BaselineKind::kFpTree);
  RunBaseline(core::BaselineKind::kFastFair);
  std::printf("\ndone.\n");
  return 0;
}
