// Scenario: crash consistency demonstration. Runs a workload, cuts power
// after a random number of cacheline flushes (mid-operation!), rolls the
// pool back to its durable image, recovers, and verifies the durability
// contract — then does it again from the recovered state.
//
//   $ ./build/examples/crash_recovery

#include <cstdio>
#include <map>
#include <string>

#include "common/random.h"
#include "core/flatstore.h"

using namespace flatstore;

namespace {

std::string ValueFor(uint64_t key, uint64_t round) {
  std::string v = "v" + std::to_string(round) + "-k" + std::to_string(key);
  v.resize(32 + key % 300, '.');
  return v;
}

}  // namespace

int main() {
  pm::PmPool::Options po;
  po.size = 256ull << 20;
  po.crash_tracking = true;  // shadow image: only flushed lines survive
  pm::PmPool pool(po);

  core::FlatStoreOptions fo;
  fo.num_cores = 2;
  fo.group_size = 2;
  auto store = core::FlatStore::Create(&pool, fo);

  Rng rng(2026);
  std::map<uint64_t, std::string> acked;  // ops fully durable before the cut

  for (int round = 0; round < 3; round++) {
    // Phase 1: writes that definitely complete.
    for (uint64_t k = 0; k < 200; k++) {
      std::string v = ValueFor(k, static_cast<uint64_t>(round));
      store->Put(k, v);
      acked[k] = v;
    }
    // Phase 2: cut power after a random number of flushes.
    pool.SetFlushBudget(static_cast<int64_t>(50 + rng.Uniform(300)));
    uint64_t boundary_key = UINT64_MAX;
    for (uint64_t k = 0; k < 200 && !pool.PowerLost(); k++) {
      std::string v = ValueFor(k, static_cast<uint64_t>(round) + 100);
      store->Put(k, v);
      if (!pool.PowerLost()) {
        acked[k] = v;
      } else {
        boundary_key = k;  // may or may not have survived — both legal
      }
    }
    std::printf("round %d: power lost mid-stream (boundary key %lu)\n",
                round, static_cast<unsigned long>(boundary_key));

    store.reset();
    pool.SimulateCrash();  // discard every unflushed line

    store = core::FlatStore::Open(&pool, fo);  // replay the OpLogs
    int verified = 0;
    for (const auto& [k, v] : acked) {
      if (k == boundary_key) continue;
      std::string got;
      if (!store->Get(k, &got) || got != v) {
        std::printf("  DURABILITY VIOLATION at key %lu!\n",
                    static_cast<unsigned long>(k));
        return 1;
      }
      verified++;
    }
    std::printf("  recovered %lu keys, %d acknowledged writes verified\n",
                static_cast<unsigned long>(store->Size()), verified);
  }
  std::printf("crash_recovery OK: every acknowledged write survived\n");
  return 0;
}
