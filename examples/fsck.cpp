// fsck — build a pool through several lifecycle phases (load, crash,
// recover, GC, checkpoint) and run the offline consistency checker after
// each phase. Demonstrates the FsckPool API; also a handy manual smoke
// test of the persistent format.
//
//   $ ./build/examples/fsck

#include <cstdio>

#include "core/flatstore.h"
#include "core/fsck.h"

using namespace flatstore;

namespace {

void Check(const pm::PmPool& pool, const char* phase) {
  core::FsckReport r = core::FsckPool(pool);
  std::printf("%-28s %s\n", phase, r.Summary().c_str());
  for (const auto& issue : r.issues) {
    std::printf("    [%s] %s\n", issue.fatal ? "ERROR" : "warn",
                issue.what.c_str());
  }
}

}  // namespace

int main() {
  pm::PmPool::Options po;
  po.size = 256ull << 20;
  po.crash_tracking = true;
  pm::PmPool pool(po);

  core::FlatStoreOptions opts;
  opts.num_cores = 4;
  opts.group_size = 4;
  opts.gc_live_ratio = 0.9;

  auto store = core::FlatStore::Create(&pool, opts);
  Check(pool, "after format:");

  for (uint64_t k = 0; k < 5000; k++) {
    store->Put(k, std::string(40 + k % 400, char('a' + k % 26)));
  }
  for (uint64_t k = 0; k < 500; k++) store->Delete(k * 9);
  Check(pool, "after load + deletes:");

  store->CheckpointNow();
  Check(pool, "after online checkpoint:");

  for (int round = 0; round < 30; round++) {
    for (uint64_t k = 0; k < 5000; k++) {
      store->Put(k, std::string(120, char('a' + (k + round) % 26)));
    }
    store->RunCleanersOnce();
  }
  Check(pool, "after GC churn:");

  store.reset();
  pool.SimulateCrash();
  Check(pool, "after crash (pre-recovery):");

  store = core::FlatStore::Open(&pool, opts);
  std::printf("%-28s recovered %lu keys\n", "after recovery:",
              static_cast<unsigned long>(store->Size()));
  Check(pool, "after recovery:");
  return 0;
}
