// Scenario: a Facebook-ETC-style object cache (the workload §2.1 of the
// paper motivates: small, write-intensive items under heavy skew).
//
// Preloads the ETC trimodal key space, serves a mixed Get/Put stream
// through the full server simulation (FlatRPC + pipelined HB), and prints
// throughput, latency percentiles, and batching statistics.
//
//   $ ./build/examples/etc_cache

#include <cstdio>

#include "core/server.h"

using namespace flatstore;

int main() {
  pm::PmDevice device;  // virtual-time Optane model
  pm::PmPool::Options pool_opts;
  pool_opts.size = 1024ull << 20;
  pool_opts.device = &device;
  pm::PmPool pool(pool_opts);

  core::FlatStoreOptions opts;
  opts.num_cores = 8;
  opts.group_size = 8;
  opts.hash_initial_depth = 6;
  auto store = core::FlatStore::Create(&pool, opts);
  core::FlatStoreAdapter adapter(store.get());

  core::ServerConfig cfg;
  cfg.num_conns = 24;
  cfg.client_window = 8;
  cfg.ops_per_conn = 4000;
  cfg.workload.key_space = 1 << 17;
  cfg.workload.etc_values = true;                     // trimodal sizes
  cfg.workload.dist = workload::KeyDist::kZipfian;    // hot keys
  cfg.workload.get_ratio = 0.75;                      // cache-style mix

  std::printf("preloading %lu ETC items...\n",
              static_cast<unsigned long>(cfg.workload.key_space));
  core::Preload(&adapter, cfg.workload, cfg.workload.key_space);

  std::printf("serving %lu requests over %d connections...\n",
              static_cast<unsigned long>(cfg.ops_per_conn) * cfg.num_conns,
              cfg.num_conns);
  core::ServerResult r = core::RunServer(&adapter, cfg);

  std::printf("\n--- ETC cache run ---\n");
  std::printf("throughput : %.2f Mops/s (simulated)\n", r.mops);
  std::printf("latency    : p50 %.1f us, p99 %.1f us\n",
              r.latency.Percentile(50) / 1000.0,
              r.latency.Percentile(99) / 1000.0);
  std::printf("HB batches : %lu (avg %.1f entries/batch)\n",
              static_cast<unsigned long>(store->hb()->batches()),
              static_cast<double>(store->hb()->batched_entries()) /
                  std::max<uint64_t>(1, store->hb()->batches()));
  auto stats = pool.stats().Get();
  std::printf("PM traffic : %lu line flushes, %lu fences\n",
              static_cast<unsigned long>(stats.lines_flushed),
              static_cast<unsigned long>(stats.fences));
  std::printf("live keys  : %lu\n",
              static_cast<unsigned long>(store->Size()));
  return 0;
}
