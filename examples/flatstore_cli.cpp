// flatstore_cli — scriptable command-line front end for a FlatStore pool.
//
// Commands are read from argv (each argument is one command) or, with no
// arguments, from stdin (one per line). The pool lives in process memory
// (the PM emulation), so this is a sandbox for exploring the engine:
//
//   put <key> <value>      store a value
//   get <key>              read a value
//   del <key>              delete a key
//   scan <start> <n>       ordered scan (Masstree mode)
//   fill <n> <len>         bulk-load n keys with len-byte values
//   stats                  engine + PM statistics
//   gc                     one synchronous cleaning pass
//   checkpoint             online index checkpoint
//   crash                  simulate power loss + recover
//   fsck                   offline consistency check
//   help / quit
//
// Example:
//   ./build/examples/flatstore_cli "fill 1000 100" stats "get 42" fsck

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flatstore.h"
#include "core/fsck.h"

using namespace flatstore;

namespace {

struct Cli {
  std::unique_ptr<pm::PmPool> pool;
  std::unique_ptr<core::FlatStore> store;
  core::FlatStoreOptions opts;

  Cli() {
    pm::PmPool::Options po;
    po.size = 512ull << 20;
    po.crash_tracking = true;  // enables the `crash` command
    pool = std::make_unique<pm::PmPool>(po);
    opts.num_cores = 4;
    opts.group_size = 4;
    opts.index = core::IndexKind::kMasstree;  // scans available
    store = core::FlatStore::Create(pool.get(), opts);
  }

  // Executes one command line; returns false on `quit`.
  bool Run(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') return true;

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "put <k> <v> | get <k> | del <k> | scan <start> <n> |\n"
          "fill <n> <len> | stats | gc | checkpoint | crash | fsck | quit\n");
    } else if (cmd == "put") {
      uint64_t k;
      std::string v;
      if (!(in >> k >> v)) return Usage("put <key> <value>");
      store->Put(k, v);
      std::printf("ok\n");
    } else if (cmd == "get") {
      uint64_t k;
      if (!(in >> k)) return Usage("get <key>");
      std::string v;
      if (store->Get(k, &v)) {
        std::printf("%s\n", v.c_str());
      } else {
        std::printf("(not found)\n");
      }
    } else if (cmd == "del") {
      uint64_t k;
      if (!(in >> k)) return Usage("del <key>");
      std::printf("%s\n", store->Delete(k) ? "deleted" : "(not found)");
    } else if (cmd == "scan") {
      uint64_t start, n;
      if (!(in >> start >> n)) return Usage("scan <start> <n>");
      std::vector<std::pair<uint64_t, std::string>> out;
      store->Scan(start, n, &out);
      for (const auto& [k, v] : out) {
        std::printf("%lu -> %.40s%s\n", static_cast<unsigned long>(k),
                    v.c_str(), v.size() > 40 ? "..." : "");
      }
      std::printf("(%zu results)\n", out.size());
    } else if (cmd == "fill") {
      uint64_t n, len;
      if (!(in >> n >> len)) return Usage("fill <n> <len>");
      for (uint64_t k = 0; k < n; k++) {
        store->Put(k, std::string(len, char('a' + k % 26)));
      }
      std::printf("filled %lu keys\n", static_cast<unsigned long>(n));
    } else if (cmd == "stats") {
      auto s = pool->stats().Get();
      std::printf("live keys        : %lu\n",
                  static_cast<unsigned long>(store->Size()));
      std::printf("PM line flushes  : %lu\n",
                  static_cast<unsigned long>(s.lines_flushed));
      std::printf("PM fences        : %lu\n",
                  static_cast<unsigned long>(s.fences));
      std::printf("HB batches       : %lu (avg %.2f entries)\n",
                  static_cast<unsigned long>(store->hb()->batches()),
                  store->hb()->batches()
                      ? static_cast<double>(store->hb()->batched_entries()) /
                            store->hb()->batches()
                      : 0.0);
      std::printf("free chunks      : %lu / %lu\n",
                  static_cast<unsigned long>(store->allocator()->free_chunks()),
                  static_cast<unsigned long>(store->allocator()->total_chunks()));
      std::printf("chunks cleaned   : %lu\n",
                  static_cast<unsigned long>(store->ChunksCleaned()));
    } else if (cmd == "gc") {
      std::printf("freed %zu chunks\n", store->RunCleanersOnce());
    } else if (cmd == "checkpoint") {
      store->CheckpointNow();
      std::printf("checkpointed %lu keys\n",
                  static_cast<unsigned long>(store->Size()));
    } else if (cmd == "crash") {
      store.reset();
      pool->SimulateCrash();
      store = core::FlatStore::Open(pool.get(), opts);
      std::printf("crashed + recovered: %lu keys\n",
                  static_cast<unsigned long>(store->Size()));
    } else if (cmd == "fsck") {
      core::FsckReport r = core::FsckPool(*pool);
      std::printf("%s\n", r.Summary().c_str());
      for (const auto& issue : r.issues) {
        std::printf("  [%s] %s\n", issue.fatal ? "ERROR" : "warn",
                    issue.what.c_str());
      }
    } else {
      std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    }
    return true;
  }

  bool Usage(const char* usage) {
    std::printf("usage: %s\n", usage);
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (argc > 1) {
    for (int i = 1; i < argc; i++) {
      if (!cli.Run(argv[i])) break;
    }
    return 0;
  }
  std::string line;
  std::printf("flatstore> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!cli.Run(line)) break;
    std::printf("flatstore> ");
    std::fflush(stdout);
  }
  return 0;
}
