// fs_lint CLI.
//
//   fs_lint [options] <path>...
//
// Paths may be files or directories (directories are walked recursively
// for .h/.cc). All paths form ONE interprocedural run: function summaries
// are built across every file before rules execute, so a helper defined
// in src/pm discharges obligations at call sites in src/core.
//
// Options:
//   --json <file|->          write the full JSON report (violations,
//                            waiver registry, stats)
//   --report <file|->        write the markdown waiver registry
//   --baseline <file>        suppress findings recorded in the baseline;
//                            exit 1 only for NEW findings
//   --write-baseline <file>  write the current findings as the baseline
//                            and exit 0
//   --dump-cfg <file>        debug: print every function CFG parsed from
//                            one file
//
// Exit codes: 0 clean (or all findings baselined), 1 findings, 2 usage /
// unreadable baseline.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cfg.h"
#include "lint.h"

namespace {

int Usage() {
  std::cerr << "usage: fs_lint [--json FILE] [--report FILE] "
               "[--baseline FILE] [--write-baseline FILE] "
               "[--dump-cfg FILE] <path>...\n";
  return 2;
}

bool WriteOut(const std::string& dest, const std::string& text) {
  if (dest == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(dest, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "fs_lint: cannot write " << dest << "\n";
    return false;
  }
  out << text;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_out, report_out, baseline_in, baseline_out, dump_cfg;
  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    auto need_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (a == "--json") {
      if (!need_value(&json_out)) return Usage();
    } else if (a == "--report") {
      if (!need_value(&report_out)) return Usage();
    } else if (a == "--baseline") {
      if (!need_value(&baseline_in)) return Usage();
    } else if (a == "--write-baseline") {
      if (!need_value(&baseline_out)) return Usage();
    } else if (a == "--dump-cfg") {
      if (!need_value(&dump_cfg)) return Usage();
    } else if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      return Usage();
    } else {
      roots.push_back(a);
    }
  }

  if (!dump_cfg.empty()) {
    std::ifstream in(dump_cfg, std::ios::binary);
    if (!in) {
      std::cerr << "fs_lint: cannot open " << dump_cfg << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    fslint::ParsedFile pf = fslint::Parse(dump_cfg, ss.str());
    for (const fslint::FunctionDef& fn : pf.fns) {
      std::cout << fslint::DumpCfg(fn, pf.lex);
    }
    return 0;
  }

  if (roots.empty()) return Usage();

  fslint::LintResult res = fslint::LintPaths(roots);

  if (!json_out.empty() && !WriteOut(json_out, fslint::ToJson(res))) return 2;
  if (!report_out.empty() && !WriteOut(report_out, fslint::ToReport(res))) {
    return 2;
  }
  if (!baseline_out.empty()) {
    if (!WriteOut(baseline_out, fslint::SaveBaseline(res))) return 2;
    std::cout << "fs_lint: baseline written (" << res.violations.size()
              << " findings)\n";
    return 0;
  }

  std::vector<fslint::Violation> report = res.violations;
  if (!baseline_in.empty()) {
    std::ifstream in(baseline_in, std::ios::binary);
    if (!in) {
      std::cerr << "fs_lint: cannot open baseline " << baseline_in << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::map<std::string, int> base;
    if (!fslint::LoadBaseline(ss.str(), &base)) {
      std::cerr << "fs_lint: malformed baseline " << baseline_in << "\n";
      return 2;
    }
    report = fslint::DiffBaseline(res.violations, base);
    if (report.size() != res.violations.size()) {
      std::cerr << "fs_lint: " << res.violations.size() - report.size()
                << " finding(s) suppressed by baseline\n";
    }
  }

  for (const fslint::Violation& v : report) {
    std::cout << fslint::Format(v) << "\n";
  }
  if (!report.empty()) {
    std::cerr << "fs_lint: " << report.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
