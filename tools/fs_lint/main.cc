// fs_lint CLI: lints each path argument (file or directory tree) and
// prints one line per violation; exit status 1 when any were found.
//
// Usage: fs_lint <path>...

#include <cstdio>

#include "lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path>...\n", argv[0]);
    return 2;
  }
  size_t total = 0;
  for (int i = 1; i < argc; i++) {
    for (const fslint::Violation& v : fslint::LintTree(argv[i])) {
      std::printf("%s\n", fslint::Format(v).c_str());
      total++;
    }
  }
  if (total > 0) {
    std::fprintf(stderr, "fs_lint: %zu violation(s)\n", total);
    return 1;
  }
  return 0;
}
