#include "summary.h"

#include <algorithm>

namespace fslint {
namespace {

bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",  "switch",   "catch",  "return",
      "sizeof", "alignof",  "new",    "delete",   "throw",  "decltype",
      "static_assert", "alignas", "noexcept", "assert", "defined",
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast"};
  return kw.count(s) > 0;
}

bool IsGuardType(const std::string& s, bool* shared) {
  if (s == "LockGuard" || s == "lock_guard" || s == "unique_lock" ||
      s == "scoped_lock") {
    *shared = false;
    return true;
  }
  if (s == "SharedLockGuard" || s == "shared_lock") {
    *shared = true;
    return true;
  }
  return false;
}

bool IsLockTag(const std::string& s) {
  return s == "defer_lock" || s == "adopt_lock" || s == "try_to_lock" ||
         s == "std";
}

// True when the function's comment range carries `marker`. The range
// covers the body plus a small window above the signature so a waiver on
// the line before the declarator counts; marker_lo keeps the window from
// reaching into the previous function's body.
bool FnHasMarker(const FunctionDef& fn, const LexFile& lex,
                 const std::string& marker) {
  int lo = std::max(0, fn.marker_lo);
  int hi = std::min(static_cast<int>(lex.comments.size()) - 1, fn.end_line);
  for (int l = lo; l <= hi; l++) {
    if (lex.comments[static_cast<size_t>(l)].find(marker) !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string Qualify(const FunctionDef& fn, const std::string& cap) {
  if (cap.empty() || fn.class_name.empty()) return cap;
  // Already-qualified or chained expressions stay as written.
  if (cap.find("::") != std::string::npos) return cap;
  return fn.class_name + "::" + cap;
}

}  // namespace

bool InLambdaSpan(const FunctionDef& fn, int tok) {
  for (const auto& sp : fn.lambda_spans) {
    if (tok >= sp.first && tok < sp.second) return true;
  }
  return false;
}

void ForEachCall(const FunctionDef& fn, const CfgNode& node,
                 const LexFile& lex,
                 const std::function<void(const std::string&, int)>& cb) {
  const auto& T = lex.toks;
  for (int k = node.first_tok; k + 1 < node.last_tok; k++) {
    if (InLambdaSpan(fn, k)) continue;
    const Tok& t = T[static_cast<size_t>(k)];
    if (t.kind != Tok::kIdent || IsCallKeyword(t.text)) continue;
    if (!T[static_cast<size_t>(k) + 1].Is("(")) continue;
    cb(t.text, k);
  }
}

std::string ExprBefore(const LexFile& lex, int end) {
  const auto& T = lex.toks;
  int k = end - 1;
  std::vector<const std::string*> parts;
  bool want_ident = true;
  while (k >= 0) {
    const Tok& t = T[static_cast<size_t>(k)];
    if (want_ident) {
      if (t.kind != Tok::kIdent) break;
      parts.push_back(&t.text);
      want_ident = false;
    } else {
      if (!(t.Is("::") || t.Is(".") || t.Is("->"))) break;
      parts.push_back(&t.text);
      want_ident = true;
    }
    k--;
  }
  if (!parts.empty() && want_ident) parts.pop_back();  // dangling separator
  std::string out;
  for (size_t i = parts.size(); i-- > 0;) out += *parts[i];
  if (out.compare(0, 6, "this->") == 0) out = out.substr(6);
  return out;
}

std::vector<LockEvent> ScanLockEvents(const FunctionDef& fn,
                                      const CfgNode& node,
                                      const LexFile& lex) {
  std::vector<LockEvent> out;
  const auto& T = lex.toks;
  auto match = [&](int open) {  // index of ')' matching T[open] == '('
    int depth = 0;
    for (int j = open; j < node.last_tok; j++) {
      if (T[static_cast<size_t>(j)].Is("(")) depth++;
      if (T[static_cast<size_t>(j)].Is(")")) {
        depth--;
        if (depth == 0) return j;
      }
    }
    return node.last_tok;
  };
  for (int k = node.first_tok; k < node.last_tok; k++) {
    if (InLambdaSpan(fn, k)) continue;
    const Tok& t = T[static_cast<size_t>(k)];
    if (t.kind != Tok::kIdent) continue;

    // Member lock calls: expr.lock() / expr->unlock_shared() ...
    if ((t.text == "lock" || t.text == "unlock" || t.text == "lock_shared" ||
         t.text == "unlock_shared") &&
        k + 1 < node.last_tok && T[static_cast<size_t>(k) + 1].Is("(") &&
        k > node.first_tok &&
        (T[static_cast<size_t>(k) - 1].Is(".") ||
         T[static_cast<size_t>(k) - 1].Is("->"))) {
      LockEvent e;
      e.kind = t.text[0] == 'u' ? LockEvent::kRelease : LockEvent::kAcquire;
      e.shared = t.text.size() > 6;  // *_shared
      e.cap = ExprBefore(lex, k - 1);
      e.tok = k;
      e.line = t.line;
      if (!e.cap.empty()) out.push_back(std::move(e));
      continue;
    }

    // Scoped guard construction: GuardType[<...>] [name] ( caps... )
    bool shared = false;
    if (IsGuardType(t.text, &shared)) {
      // Not a guard when it is a member access (x.lock_guard etc).
      if (k > node.first_tok && (T[static_cast<size_t>(k) - 1].Is(".") ||
                                 T[static_cast<size_t>(k) - 1].Is("->"))) {
        continue;
      }
      int j = k + 1;
      if (j < node.last_tok && T[static_cast<size_t>(j)].Is("<")) {
        int depth = 0;
        for (; j < node.last_tok; j++) {
          if (T[static_cast<size_t>(j)].Is("<")) depth++;
          if (T[static_cast<size_t>(j)].Is(">")) depth--;
          if (T[static_cast<size_t>(j)].Is(">>")) depth -= 2;
          if (depth <= 0) {
            j++;
            break;
          }
        }
      }
      if (j < node.last_tok && T[static_cast<size_t>(j)].kind == Tok::kIdent) {
        j++;  // variable name
      }
      if (j >= node.last_tok || !T[static_cast<size_t>(j)].Is("(")) continue;
      int close = match(j);
      // Split the arguments on top-level commas.
      int arg_start = j + 1, depth = 0;
      for (int m = j + 1; m <= close; m++) {
        bool is_close = m == close;
        if (!is_close && T[static_cast<size_t>(m)].Is("(")) depth++;
        if (!is_close && T[static_cast<size_t>(m)].Is(")")) depth--;
        if (is_close || (depth == 0 && T[static_cast<size_t>(m)].Is(","))) {
          if (m > arg_start) {
            std::string cap;
            for (int x = arg_start; x < m; x++) {
              const Tok& a = T[static_cast<size_t>(x)];
              if (a.Is("&") || a.Is("*")) continue;
              if (a.IsIdent("this") && x + 1 < m &&
                  T[static_cast<size_t>(x) + 1].Is("->")) {
                x++;
                continue;
              }
              cap += a.text;
            }
            if (!cap.empty() && !IsLockTag(cap) &&
                cap.compare(0, 5, "std::") != 0) {
              LockEvent e;
              e.kind = LockEvent::kScopedAcquire;
              e.shared = shared;
              e.cap = std::move(cap);
              e.tok = k;
              e.line = t.line;
              out.push_back(std::move(e));
            }
          }
          arg_start = m + 1;
        }
      }
      k = close;
    }
  }
  return out;
}

// --------------------------------------------------------------------------

bool SummaryDb::CalleePersists(const std::string& n) const {
  if (IsPersistIntrinsic(n)) return true;
  const FnSummary* s = Find(n);
  return s != nullptr && s->may_persist;
}
bool SummaryDb::CalleeAlwaysFences(const std::string& n) const {
  if (IsFenceIntrinsic(n)) return true;
  const FnSummary* s = Find(n);
  return s != nullptr && s->always_fences;
}
bool SummaryDb::CalleeLeavesUnfenced(const std::string& n) const {
  const FnSummary* s = Find(n);
  return s != nullptr && s->may_leave_unfenced;
}
bool SummaryDb::CalleeReadsLog(const std::string& n) const {
  const FnSummary* s = Find(n);
  return s != nullptr && s->reads_log_unpinned;
}
const std::set<std::string>* SummaryDb::CalleeAcquires(
    const std::string& n) const {
  const FnSummary* s = Find(n);
  return s != nullptr && !s->acquires.empty() ? &s->acquires : nullptr;
}

const FnSummary* SummaryDb::Find(const std::string& base_name) const {
  auto it = by_name_.find(base_name);
  return it == by_name_.end() ? nullptr : &it->second;
}

void SummaryDb::Build(const std::vector<const ParsedFile*>& files) {
  struct Def {
    const ParsedFile* pf;
    const FunctionDef* fn;
    bool may_persist = false;
    bool always_fences = false;
    std::set<std::string> acquires;
  };
  std::vector<Def> defs;
  by_name_.clear();
  for (const ParsedFile* pf : files) {
    for (const FunctionDef& fn : pf->fns) {
      if (fn.is_lambda || fn.name.empty()) continue;
      Def d;
      d.pf = pf;
      d.fn = &fn;
      defs.push_back(std::move(d));
      FnSummary& s = by_name_[fn.name];
      s.defined = true;
      s.defs++;
      // Contract markers are direct facts; no propagation needed.
      if (FnHasMarker(fn, pf->lex, "fs-lint: deferred-fence")) {
        s.may_leave_unfenced = true;
      }
      if (FnHasMarker(fn, pf->lex, "fs-lint: epoch-held")) {
        s.reads_log_unpinned = true;
      }
    }
  }

  // Fixed point for the call-graph facts. Every per-definition fact is
  // monotone nondecreasing, so iteration terminates; 10 passes bound the
  // cost on pathological inputs.
  for (int pass = 0; pass < 10; pass++) {
    bool changed = false;
    for (Def& d : defs) {
      const FunctionDef& fn = *d.fn;
      const LexFile& lex = d.pf->lex;

      bool may_persist = false;
      std::set<std::string> acq;
      for (const std::string& c : fn.acquires_caps) {
        acq.insert(Qualify(fn, c));
      }
      std::vector<bool> fences(fn.nodes.size(), false);
      for (size_t n = 0; n < fn.nodes.size(); n++) {
        const CfgNode& nd = fn.nodes[n];
        ForEachCall(fn, nd, lex, [&](const std::string& name, int) {
          if (CalleePersists(name)) may_persist = true;
          if (CalleeAlwaysFences(name)) fences[n] = true;
          if (const auto* ca = CalleeAcquires(name)) {
            acq.insert(ca->begin(), ca->end());
          }
        });
        for (const LockEvent& e : ScanLockEvents(fn, nd, lex)) {
          if (e.kind != LockEvent::kRelease) acq.insert(Qualify(fn, e.cap));
        }
      }

      // Must-analysis: does every entry→exit path cross a fence? Greatest
      // fixed point with optimistic (true) initialization.
      size_t nn = fn.nodes.size();
      std::vector<std::vector<int>> preds(nn);
      for (size_t n = 0; n < nn; n++) {
        for (int s : fn.nodes[n].succ) {
          preds[static_cast<size_t>(s)].push_back(static_cast<int>(n));
        }
      }
      // Only nodes reachable from the entry participate: dead code after
      // a CHECK(false) (`return 0;` pacifying the compiler) must not drag
      // the must-fact down.
      std::vector<bool> reach(nn, false);
      {
        std::vector<int> stack = {FunctionDef::kEntry};
        while (!stack.empty()) {
          int n = stack.back();
          stack.pop_back();
          if (reach[static_cast<size_t>(n)]) continue;
          reach[static_cast<size_t>(n)] = true;
          for (int s : fn.nodes[static_cast<size_t>(n)].succ) {
            stack.push_back(s);
          }
        }
      }
      std::vector<bool> out_fenced(nn, true);
      out_fenced[FunctionDef::kEntry] = fences[FunctionDef::kEntry];
      bool ch = true;
      while (ch) {
        ch = false;
        for (size_t n = 0; n < nn; n++) {
          if (n == FunctionDef::kEntry || !reach[n]) continue;
          bool in = false;
          bool any_pred = false;
          for (int p : preds[n]) {
            if (!reach[static_cast<size_t>(p)]) continue;
            in = any_pred ? in && out_fenced[static_cast<size_t>(p)]
                          : out_fenced[static_cast<size_t>(p)];
            any_pred = true;
          }
          in = in && any_pred;
          // A noreturn statement never reaches the exit normally; it must
          // not drag "always fences" down (abort paths owe no fence).
          bool o = in || fences[n] || fn.nodes[n].is_noreturn;
          if (o != out_fenced[n]) {
            out_fenced[n] = o;
            ch = true;
          }
        }
      }
      bool always_fences =
          reach[FunctionDef::kExit] && out_fenced[FunctionDef::kExit];

      if (may_persist != d.may_persist || always_fences != d.always_fences ||
          acq != d.acquires) {
        d.may_persist = may_persist;
        d.always_fences = always_fences;
        d.acquires = std::move(acq);
        changed = true;
      }
    }
    // Merge per-definition facts into the by-name view the next pass (and
    // the rules) read: OR for may-facts, AND for the must-fact.
    for (auto& kv : by_name_) {
      kv.second.may_persist = false;
      kv.second.acquires.clear();
    }
    std::map<std::string, bool> all_fence;
    for (const Def& d : defs) {
      FnSummary& s = by_name_[d.fn->name];
      s.may_persist = s.may_persist || d.may_persist;
      s.acquires.insert(d.acquires.begin(), d.acquires.end());
      auto it = all_fence.find(d.fn->name);
      if (it == all_fence.end()) {
        all_fence[d.fn->name] = d.always_fences;
      } else {
        it->second = it->second && d.always_fences;
      }
    }
    for (auto& kv : all_fence) by_name_[kv.first].always_fences = kv.second;
    if (!changed) break;
  }
}

}  // namespace fslint
