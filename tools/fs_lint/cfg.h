// fs_lint function extraction and per-function control-flow graphs.
//
// Parse() walks a token stream (lex.h), recognizes function definitions
// with the same scope heuristics the original lexical lint used
// (namespace / type / function classification of each brace), and builds
// a basic-block CFG per function body:
//
//  * if/else, while, for (classic and range), do/while, switch with case
//    fallthrough, break, continue, return, try/catch.
//  * Node 0 is the synthetic entry, node 1 the synthetic exit; `return`
//    statements edge straight to the exit.
//  * Every compound statement owns a scope id; a synthetic scope-exit
//    node is emitted where the block closes so dataflow can kill facts
//    established by scoped objects (epoch guards, lock guards) at the
//    end of their scope. Returns bypass scope exits — facts simply stop
//    mattering.
//  * Lambdas encountered inside a statement are lifted into their own
//    FunctionDef (named `<enclosing>::[lambda@<line>]`) and their token
//    range is recorded in the enclosing function's `lambda_spans`, so
//    rule scanners do not attribute a lambda body's tokens to the
//    statement that merely defines it.
//
// The CFG is deliberately syntactic: no types, no name resolution beyond
// the qualified-name text of the declarator. goto is treated as a plain
// statement (the codebase has none).

#ifndef FLATSTORE_TOOLS_FS_LINT_CFG_H_
#define FLATSTORE_TOOLS_FS_LINT_CFG_H_

#include <string>
#include <utility>
#include <vector>

#include "lex.h"

namespace fslint {

struct CfgNode {
  int first_tok = 0, last_tok = 0;  // [first, last) span into LexFile.toks
  std::vector<int> succ;
  bool is_return = false;
  // Statement that never falls through (abort/exit/throw/CHECK(false)):
  // edges to the exit like a return, but rules that audit "every path out
  // of the function" skip it — a crash path owes no fence.
  bool is_noreturn = false;
  int line = 0;            // representative (first-token) 0-based line
  int scope_id = 0;        // innermost scope the statement lives in
  int scope_exit_of = -1;  // >= 0: synthetic exit node for that scope id
};

struct FunctionDef {
  std::string name;        // declarator's last identifier ("AppendBatch")
  std::string qual;        // qualified text ("OpLog::AppendBatch")
  std::string class_name;  // "OpLog" when the declarator is qualified
  std::string signature;   // cleaned header text, for messages
  bool is_hot = false;
  bool is_lambda = false;
  int sig_line = 0;   // 0-based line of the opening brace
  int end_line = 0;   // 0-based line of the closing brace
  // First line a function-level `fs-lint:` marker may sit on and still
  // apply to this function: sig_line - 5, clamped so the window never
  // reaches into the previous function's body (whose trailing waivers
  // must not leak into this one).
  int marker_lo = 0;
  int body_first = 0, body_last = 0;  // token span of the body
  std::vector<CfgNode> nodes;         // [0] = entry, [1] = exit
  std::vector<std::pair<int, int>> lambda_spans;  // token ranges to skip
  // Thread-safety annotation arguments captured from the header.
  std::vector<std::string> requires_caps;
  std::vector<std::string> acquires_caps;
  std::vector<std::string> releases_caps;

  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;
};

struct ParsedFile {
  std::string path;
  LexFile lex;
  std::vector<FunctionDef> fns;
};

ParsedFile Parse(const std::string& path, const std::string& contents);

// True when any CFG path connects `from` to `to` (used by tests).
bool Reaches(const FunctionDef& fn, int from, int to);

// Multi-line debug rendering of a CFG (used by tests and --dump-cfg).
std::string DumpCfg(const FunctionDef& fn, const LexFile& lex);

}  // namespace fslint

#endif  // FLATSTORE_TOOLS_FS_LINT_CFG_H_
