// fs_lint tokenizer.
//
// Splits a C++ translation unit into a flat token stream plus a per-line
// comment map. String and character literals are blanked (their contents
// can never produce tokens), comments are collected per line for waiver
// lookup, and preprocessor directives (including backslash continuations)
// are invisible: macro bodies contain parens and braces that are not code
// in this translation unit.
//
// The token stream is what the CFG builder (cfg.h) and every rule scanner
// operate on; nothing downstream ever re-reads raw source text.

#ifndef FLATSTORE_TOOLS_FS_LINT_LEX_H_
#define FLATSTORE_TOOLS_FS_LINT_LEX_H_

#include <string>
#include <vector>

namespace fslint {

struct Tok {
  enum Kind { kIdent, kNumber, kPunct };
  Kind kind = kPunct;
  std::string text;
  int line = 0;  // 0-based source line

  bool Is(const char* s) const { return text == s; }
  bool IsIdent(const char* s) const { return kind == kIdent && text == s; }
};

struct LexFile {
  std::vector<Tok> toks;
  // comments[i] = concatenated comment text appearing on source line i.
  std::vector<std::string> comments;
  int num_lines = 0;
};

LexFile Lex(const std::string& contents);

// Waiver / tag lookup: true when `marker` occurs in a comment on `line`
// or within `window` comment-bearing lines above it (0-based line).
bool HasNearbyComment(const LexFile& lex, int line, const std::string& marker,
                      int window);

// Extracts the reason inside the parentheses following `marker` in
// `comment`; returns false when the marker is absent. An absent or empty
// parenthesized reason yields an empty string.
bool WaiverReason(const std::string& comment, const std::string& marker,
                  std::string* reason);

}  // namespace fslint

#endif  // FLATSTORE_TOOLS_FS_LINT_LEX_H_
