#include "lex.h"

#include <cctype>
#include <cstring>

namespace fslint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the rules care about. Longest-match-first;
// everything else tokenizes as a single character.
const char* const kPuncts[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

}  // namespace

LexFile Lex(const std::string& contents) {
  LexFile out;
  // First pass: split into code/comment per character, like the original
  // lexical lint, so literals and comments can never produce tokens.
  enum class St { kCode, kString, kRawString, kChar, kLineComment, kBlockComment };
  St st = St::kCode;
  std::string code;        // full text with literals/comments blanked
  code.reserve(contents.size());
  std::vector<std::string> comments(1);
  int line = 0;
  std::string raw_delim;  // raw-string closing delimiter ")<delim>\""
  for (size_t i = 0; i < contents.size(); i++) {
    char c = contents[i];
    char n = i + 1 < contents.size() ? contents[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // Unterminated ordinary literals at EOL (invalid C++) reset so one
      // bad line can't poison the file. Raw strings legitimately span
      // lines and stay open.
      if (st == St::kString || st == St::kChar) st = St::kCode;
      code += '\n';
      comments.emplace_back();
      line++;
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          i++;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          i++;
        } else if (c == 'R' && n == '"' &&
                   (code.empty() || !IsIdentChar(code.back()))) {
          // Raw string literal R"delim(...)delim".
          size_t p = i + 2;
          std::string d;
          while (p < contents.size() && contents[p] != '(' &&
                 contents[p] != '\n' && d.size() < 16) {
            d += contents[p++];
          }
          if (p < contents.size() && contents[p] == '(') {
            raw_delim = ")" + d + "\"";
            st = St::kRawString;
            code += ' ';
            i = p;  // consume through the opening '('
          } else {
            code += c;  // not actually a raw string
          }
        } else if (c == '"') {
          st = St::kString;
          code += ' ';
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of numbers, not char
          // literals.
          if (!code.empty() &&
              std::isdigit(static_cast<unsigned char>(code.back()))) {
            code += ' ';
          } else {
            st = St::kChar;
            code += ' ';
          }
        } else {
          code += c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          i++;
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kRawString:
        if (c == ')' &&
            contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c == '\n') {
          code += '\n';
          comments.emplace_back();
          line++;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          i++;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kLineComment:
        comments[static_cast<size_t>(line)] += c;
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          st = St::kCode;
          i++;
        } else {
          comments[static_cast<size_t>(line)] += c;
        }
        break;
    }
  }
  out.num_lines = line + 1;
  out.comments = std::move(comments);

  // Second pass: tokenize the blanked code, skipping preprocessor lines.
  size_t i = 0;
  line = 0;
  bool at_line_start = true;   // only whitespace so far on this line
  bool pp = false;             // inside a #directive (incl. continuations)
  while (i < code.size()) {
    char c = code[i];
    if (c == '\n') {
      if (pp) {
        // A '\' as the last non-blank character continues the directive.
        size_t j = i;
        while (j > 0 && (code[j - 1] == ' ' || code[j - 1] == '\t')) j--;
        pp = j > 0 && code[j - 1] == '\\';
      }
      line++;
      i++;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    if (at_line_start && c == '#') pp = true;
    at_line_start = false;
    if (pp) {
      i++;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < code.size() && IsIdentChar(code[j])) j++;
      out.toks.push_back({Tok::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < code.size() &&
             (IsIdentChar(code[j]) || code[j] == '.' ||
              ((code[j] == '+' || code[j] == '-') &&
               (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                code[j - 1] == 'p' || code[j - 1] == 'P')))) {
        j++;
      }
      out.toks.push_back({Tok::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t len = std::strlen(p);
      if (code.compare(i, len, p) == 0) {
        out.toks.push_back({Tok::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.toks.push_back({Tok::kPunct, std::string(1, c), line});
      i++;
    }
  }
  return out;
}

bool HasNearbyComment(const LexFile& lex, int line, const std::string& marker,
                      int window) {
  for (int l = line; l >= 0 && l >= line - window; l--) {
    if (l < static_cast<int>(lex.comments.size()) &&
        lex.comments[static_cast<size_t>(l)].find(marker) !=
            std::string::npos) {
      return true;
    }
  }
  return false;
}

bool WaiverReason(const std::string& comment, const std::string& marker,
                  std::string* reason) {
  size_t pos = comment.find(marker);
  if (pos == std::string::npos) return false;
  size_t open = comment.find('(', pos + marker.size() - 1);
  if (open == std::string::npos) {
    reason->clear();
    return true;
  }
  size_t close = comment.find(')', open);
  *reason = comment.substr(open + 1, close == std::string::npos
                                         ? std::string::npos
                                         : close - open - 1);
  while (!reason->empty() && std::isspace(static_cast<unsigned char>(
                                 reason->front()))) {
    reason->erase(reason->begin());
  }
  while (!reason->empty() &&
         std::isspace(static_cast<unsigned char>(reason->back()))) {
    reason->pop_back();
  }
  return true;
}

}  // namespace fslint
