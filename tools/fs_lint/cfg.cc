#include "cfg.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace fslint {
namespace {

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch", "catch",  "return",
      "sizeof", "alignof", "new",   "delete", "throw",  "case",
      "do",     "else",    "goto",  "decltype", "static_assert",
      "alignas", "noexcept"};
  return kw.count(s) > 0;
}

// Statements that never fall through: the path dies here, so exit-path
// rules (fence-after-persist) must not treat them as a way out of the
// function. Only literal `CHECK(false)` / `assert(0)` forms count — a
// conditional CHECK can pass.
bool IsNoreturnStmt(const std::vector<Tok>& T, size_t i, size_t end) {
  if (i >= end) return false;
  if (T[i].IsIdent("throw")) return true;
  size_t k = i;
  if (T[k].IsIdent("std") && k + 2 < end && T[k + 1].Is("::")) k += 2;
  if (T[k].kind != Tok::kIdent || k + 1 >= end || !T[k + 1].Is("(")) {
    return false;
  }
  const std::string& id = T[k].text;
  if (id == "abort" || id == "exit" || id == "_exit" || id == "_Exit" ||
      id == "quick_exit" || id == "terminate" ||
      id == "__builtin_unreachable" || id == "__builtin_trap") {
    return true;
  }
  if ((id == "FLATSTORE_CHECK" || id == "FLATSTORE_DCHECK" ||
       id == "assert") &&
      k + 2 < end &&
      (T[k + 2].IsIdent("false") ||
       (T[k + 2].kind == Tok::kNumber && T[k + 2].text == "0"))) {
    return true;
  }
  return false;
}

bool IsAnnotationMacro(const std::string& s) {
  static const std::set<std::string> an = {
      "REQUIRES",       "REQUIRES_SHARED",  "ACQUIRE",
      "ACQUIRE_SHARED", "RELEASE",          "RELEASE_SHARED",
      "RELEASE_GENERIC", "TRY_ACQUIRE",     "TRY_ACQUIRE_SHARED",
      "EXCLUDES",       "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
      "RETURN_CAPABILITY", "GUARDED_BY",    "PT_GUARDED_BY",
      "ACQUIRED_BEFORE", "ACQUIRED_AFTER",  "CAPABILITY",
      "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS"};
  return an.count(s) > 0;
}

// Strips `template < ... >` sequences from a header token-index list (the
// parameter list would otherwise contribute `class` / `typename` tokens
// that confuse scope classification and name finding).
std::vector<size_t> StripTemplates(const std::vector<Tok>& T,
                                   const std::vector<size_t>& hdr) {
  std::vector<size_t> out;
  for (size_t k = 0; k < hdr.size(); k++) {
    if (T[hdr[k]].IsIdent("template") && k + 1 < hdr.size() &&
        T[hdr[k + 1]].Is("<")) {
      int depth = 0;
      k++;  // at '<'
      for (; k < hdr.size(); k++) {
        if (T[hdr[k]].Is("<")) depth++;
        if (T[hdr[k]].Is(">")) {
          depth--;
          if (depth == 0) break;
        }
        if (T[hdr[k]].Is(">>")) depth -= 2;  // nested close
        if (depth <= 0) break;
      }
      continue;
    }
    out.push_back(hdr[k]);
  }
  return out;
}

std::string CleanSignature(const std::vector<Tok>& T,
                           const std::vector<size_t>& hdr) {
  std::string out;
  for (size_t k : hdr) {
    const std::string& s = T[k].text;
    if (!out.empty() && (std::isalnum(static_cast<unsigned char>(s[0])) ||
                         s[0] == '_' || s == "::")) {
      if (out.back() != ':' && out.back() != '(' && s != "::" && s != "(" &&
          s != ")") {
        out += ' ';
      }
    }
    out += s;
    if (out.size() > 80) break;
  }
  if (out.size() > 60) out = out.substr(0, 57) + "...";
  return out;
}

// --------------------------------------------------------------------------
// CFG builder
// --------------------------------------------------------------------------

class Builder {
 public:
  Builder(const LexFile& lex, FunctionDef* fn,
          std::vector<FunctionDef>* lambdas)
      : T(lex.toks), lex_(lex), fn_(fn), lambdas_(lambdas) {}

  void Build(size_t body_first, size_t body_last) {
    fn_->nodes.clear();
    NewNode(0, 0, 0);  // entry
    NewNode(0, 0, 0);  // exit
    size_t i = body_first;
    std::vector<int> outs =
        ParseStmts(i, body_last, {FunctionDef::kEntry}, NewScope());
    Connect(outs, FunctionDef::kExit);
  }

 private:
  const std::vector<Tok>& T;
  const LexFile& lex_;
  FunctionDef* fn_;
  std::vector<FunctionDef>* lambdas_;
  int next_scope_ = 0;
  std::vector<std::vector<int>*> brk_;  // break collection, innermost last
  std::vector<int> cont_;               // continue targets

  int NewScope() { return next_scope_++; }

  int NewNode(size_t a, size_t b, int scope) {
    CfgNode n;
    n.first_tok = static_cast<int>(a);
    n.last_tok = static_cast<int>(b);
    n.scope_id = scope;
    if (!T.empty()) {
      n.line = T[a < T.size() ? a : T.size() - 1].line;
    }
    fn_->nodes.push_back(n);
    return static_cast<int>(fn_->nodes.size()) - 1;
  }

  void Edge(int from, int to) {
    auto& s = fn_->nodes[static_cast<size_t>(from)].succ;
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }
  void Connect(const std::vector<int>& preds, int node) {
    for (int p : preds) Edge(p, node);
  }

  // Index of the token matching the opener at `i` (handles (), [], {}).
  size_t Match(size_t i, size_t end) const {
    const std::string& open = T[i].text;
    std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
    int depth = 0;
    for (size_t j = i; j < end; j++) {
      if (T[j].text == open) depth++;
      if (T[j].text == close) {
        depth--;
        if (depth == 0) return j;
      }
    }
    return end;
  }

  static std::vector<int> Union(std::vector<int> a, const std::vector<int>& b) {
    for (int x : b) {
      if (std::find(a.begin(), a.end(), x) == a.end()) a.push_back(x);
    }
    return a;
  }

  // Parses statements until `end` (exclusive) or an unmatched '}'.
  std::vector<int> ParseStmts(size_t& i, size_t end, std::vector<int> preds,
                              int scope) {
    while (i < end && !T[i].Is("}")) {
      preds = ParseStmt(i, end, std::move(preds), scope);
    }
    return preds;
  }

  std::vector<int> ParseStmt(size_t& i, size_t end, std::vector<int> preds,
                             int scope) {
    if (i >= end) return preds;
    const Tok& t = T[i];

    if (t.Is(";")) {  // empty statement
      i++;
      return preds;
    }

    if (t.Is("{")) {  // compound
      size_t close = Match(i, end);
      int s = NewScope();
      size_t j = i + 1;
      std::vector<int> outs = ParseStmts(j, close, std::move(preds), s);
      i = close < end ? close + 1 : end;
      if (outs.empty()) return {};  // every path returned/broke
      int ex = NewNode(close, close, scope);
      fn_->nodes[static_cast<size_t>(ex)].scope_exit_of = s;
      Connect(outs, ex);
      return {ex};
    }

    if (t.IsIdent("if")) {
      size_t p = i + 1;
      if (p < end && T[p].IsIdent("constexpr")) p++;
      if (p >= end || !T[p].Is("(")) return ParseSimple(i, end, preds, scope);
      size_t close = Match(p, end);
      int cond = NewNode(p, close + 1, scope);
      Connect(preds, cond);
      size_t j = close + 1;
      std::vector<int> outs = ParseStmt(j, end, {cond}, scope);
      if (j < end && T[j].IsIdent("else")) {
        size_t k = j + 1;
        std::vector<int> outs2 = ParseStmt(k, end, {cond}, scope);
        i = k;
        return Union(std::move(outs), outs2);
      }
      i = j;
      outs.push_back(cond);
      return outs;
    }

    if (t.IsIdent("while")) {
      size_t p = i + 1;
      if (p >= end || !T[p].Is("(")) return ParseSimple(i, end, preds, scope);
      size_t close = Match(p, end);
      int cond = NewNode(p, close + 1, scope);
      Connect(preds, cond);
      std::vector<int> brks;
      brk_.push_back(&brks);
      cont_.push_back(cond);
      size_t j = close + 1;
      std::vector<int> outs = ParseStmt(j, end, {cond}, scope);
      cont_.pop_back();
      brk_.pop_back();
      Connect(outs, cond);  // back edge
      i = j;
      brks.push_back(cond);  // loop may not run / exits when cond fails
      return brks;
    }

    if (t.IsIdent("do")) {
      int anchor = NewNode(i, i, scope);
      Connect(preds, anchor);
      std::vector<int> brks;
      brk_.push_back(&brks);
      cont_.push_back(-1);  // patched below: continue jumps to the cond
      std::vector<int> pending_continues;
      // We cannot know the cond node id yet; collect continue nodes.
      cont_pending_.push_back(&pending_continues);
      size_t j = i + 1;
      std::vector<int> outs = ParseStmt(j, end, {anchor}, scope);
      cont_pending_.pop_back();
      cont_.pop_back();
      brk_.pop_back();
      // expect: while ( cond ) ;
      size_t close = j;
      int cond;
      if (j < end && T[j].IsIdent("while") && j + 1 < end &&
          T[j + 1].Is("(")) {
        close = Match(j + 1, end);
        cond = NewNode(j + 1, close + 1, scope);
        if (close + 1 < end && T[close + 1].Is(";")) close++;
        i = close + 1;
      } else {
        cond = NewNode(j, j, scope);
        i = j;
      }
      Connect(outs, cond);
      Connect(pending_continues, cond);
      Edge(cond, anchor);  // back edge: body runs again
      brks.push_back(cond);
      return brks;
    }

    if (t.IsIdent("for")) {
      size_t p = i + 1;
      if (p >= end || !T[p].Is("(")) return ParseSimple(i, end, preds, scope);
      size_t close = Match(p, end);
      // Classic for: split init from cond/inc at the first ';' directly
      // inside the parens; range-for has none and stays one node.
      size_t semi = close;
      int depth = 0;
      for (size_t k = p + 1; k < close; k++) {
        if (T[k].Is("(") || T[k].Is("[") || T[k].Is("{")) depth++;
        if (T[k].Is(")") || T[k].Is("]") || T[k].Is("}")) depth--;
        if (depth == 0 && T[k].Is(";")) {
          semi = k;
          break;
        }
      }
      int head;
      if (semi < close) {
        int init = NewNode(p + 1, semi, scope);
        Connect(preds, init);
        head = NewNode(semi + 1, close, scope);
        Edge(init, head);
      } else {
        head = NewNode(p, close + 1, scope);
        Connect(preds, head);
      }
      std::vector<int> brks;
      brk_.push_back(&brks);
      cont_.push_back(head);
      size_t j = close + 1;
      std::vector<int> outs = ParseStmt(j, end, {head}, scope);
      cont_.pop_back();
      brk_.pop_back();
      Connect(outs, head);  // back edge (through the increment tokens)
      i = j;
      brks.push_back(head);
      return brks;
    }

    if (t.IsIdent("switch")) {
      size_t p = i + 1;
      if (p >= end || !T[p].Is("(")) return ParseSimple(i, end, preds, scope);
      size_t close = Match(p, end);
      int head = NewNode(p, close + 1, scope);
      Connect(preds, head);
      size_t j = close + 1;
      if (j >= end || !T[j].Is("{")) {  // single-statement switch body
        std::vector<int> outs = ParseStmt(j, end, {head}, scope);
        i = j;
        outs.push_back(head);
        return outs;
      }
      size_t body_close = Match(j, end);
      int s = NewScope();
      std::vector<int> brks;
      brk_.push_back(&brks);
      std::vector<int> cur;  // fallthrough preds
      bool has_default = false;
      size_t k = j + 1;
      while (k < body_close) {
        if (T[k].IsIdent("case") || T[k].IsIdent("default")) {
          has_default |= T[k].IsIdent("default");
          size_t lbl = k;
          while (k < body_close && !T[k].Is(":")) k++;
          int arm = NewNode(lbl, k, s);
          k++;  // past ':'
          Edge(head, arm);
          Connect(cur, arm);  // fallthrough from the previous arm
          cur = {arm};
          continue;
        }
        cur = ParseStmt(k, body_close, std::move(cur), s);
      }
      brk_.pop_back();
      i = body_close < end ? body_close + 1 : end;
      std::vector<int> outs = Union(std::move(brks), cur);
      if (!has_default) outs.push_back(head);
      return outs;
    }

    if (t.IsIdent("return")) {
      size_t j = ScanSimple(i, end);
      int n = NewNode(i, j, scope);
      fn_->nodes[static_cast<size_t>(n)].is_return = true;
      Connect(preds, n);
      Edge(n, FunctionDef::kExit);
      i = j;
      return {};
    }

    if (t.IsIdent("break")) {
      int n = NewNode(i, i + 1, scope);
      Connect(preds, n);
      if (!brk_.empty()) brk_.back()->push_back(n);
      i += 2;  // 'break' ';'
      return {};
    }

    if (t.IsIdent("continue")) {
      int n = NewNode(i, i + 1, scope);
      Connect(preds, n);
      if (!cont_.empty()) {
        if (cont_.back() >= 0) {
          Edge(n, cont_.back());
        } else if (!cont_pending_.empty()) {
          cont_pending_.back()->push_back(n);
        }
      }
      i += 2;
      return {};
    }

    if (t.IsIdent("try")) {
      int anchor = NewNode(i, i, scope);
      Connect(preds, anchor);
      size_t j = i + 1;
      std::vector<int> outs = ParseStmt(j, end, {anchor}, scope);
      while (j < end && T[j].IsIdent("catch")) {
        size_t p = j + 1;
        size_t close = p < end && T[p].Is("(") ? Match(p, end) : p;
        size_t k = close + 1;
        // A catch arm is entered from anywhere inside the try; the anchor
        // is the conservative source.
        std::vector<int> catch_outs = ParseStmt(k, end, {anchor}, scope);
        outs = Union(std::move(outs), catch_outs);
        j = k;
      }
      i = j;
      return outs;
    }

    // Label (`retry:`) — skip the label, parse the labelled statement.
    if (t.kind == Tok::kIdent && i + 1 < end && T[i + 1].Is(":") &&
        !IsControlKeyword(t.text)) {
      i += 2;
      return ParseStmt(i, end, std::move(preds), scope);
    }

    return ParseSimple(i, end, std::move(preds), scope);
  }

  // Scans one simple statement: to the ';' closing it at nesting depth 0,
  // lifting any lambda bodies out into their own FunctionDefs. Returns
  // the index just past the ';' (or at an unmatched '}').
  size_t ScanSimple(size_t i, size_t end) {
    int depth = 0;
    size_t j = i;
    while (j < end) {
      const Tok& t = T[j];
      if (t.Is("[")) {
        // Attribute [[...]] or lambda introducer or subscript.
        bool subscript =
            j > i && (T[j - 1].kind == Tok::kIdent ||
                      T[j - 1].kind == Tok::kNumber || T[j - 1].Is(")") ||
                      T[j - 1].Is("]")) &&
            !T[j - 1].IsIdent("return") && !IsControlKeyword(T[j - 1].text);
        size_t rb = Match(j, end);
        if (!subscript && rb < end) {
          size_t k = rb + 1;
          if (k < end && T[k].Is("(")) k = Match(k, end) + 1;
          // Skip specifiers / trailing return up to a small budget.
          size_t budget = 24;
          while (k < end && budget-- > 0 && !T[k].Is("{") && !T[k].Is(";") &&
                 !T[k].Is(",") && !T[k].Is(")")) {
            if (T[k].Is("(")) {
              k = Match(k, end) + 1;
              continue;
            }
            k++;
          }
          if (k < end && T[k].Is("{")) {
            size_t body_close = Match(k, end);
            LiftLambda(j, k + 1, body_close);
            j = body_close + 1;
            continue;
          }
        }
        j = rb < end ? rb + 1 : end;
        continue;
      }
      if (t.Is("(") || t.Is("{")) {
        depth++;
      } else if (t.Is(")") || t.Is("}")) {
        if (depth == 0 && t.Is("}")) return j;  // enclosing block closes
        depth--;
      } else if (t.Is(";") && depth == 0) {
        return j + 1;
      }
      j++;
    }
    return end;
  }

  std::vector<int> ParseSimple(size_t& i, size_t end, std::vector<int> preds,
                               int scope) {
    size_t j = ScanSimple(i, end);
    int n = NewNode(i, j, scope);
    Connect(preds, n);
    bool noret = IsNoreturnStmt(T, i, j);
    i = j;
    if (noret) {
      fn_->nodes[static_cast<size_t>(n)].is_noreturn = true;
      Edge(n, FunctionDef::kExit);
      return {};
    }
    return {n};
  }

  void LiftLambda(size_t intro, size_t body_first, size_t body_close) {
    FunctionDef lam;
    lam.is_lambda = true;
    lam.name = "[lambda]";
    lam.qual = fn_->qual.empty() ? fn_->name : fn_->qual;
    lam.qual += "::[lambda@" + std::to_string(T[intro].line + 1) + "]";
    lam.class_name = fn_->class_name;
    lam.signature = lam.qual;
    lam.sig_line = T[intro].line;
    lam.end_line = body_close < T.size() ? T[body_close].line : 0;
    lam.body_first = static_cast<int>(body_first);
    lam.body_last = static_cast<int>(body_close);
    Builder b(lex_, &lam, lambdas_);
    b.Build(body_first, body_close);
    // The inner builder may have lifted further nested lambdas; our own
    // span (superset) is recorded after so the enclosing skip test hits
    // the widest range first.
    fn_->lambda_spans.push_back(
        {static_cast<int>(intro), static_cast<int>(body_close + 1)});
    lambdas_->push_back(std::move(lam));
  }

  std::vector<std::vector<int>*> cont_pending_;  // do/while continue fixups
};

// --------------------------------------------------------------------------
// Top-level function extraction
// --------------------------------------------------------------------------

struct HeaderInfo {
  std::string name, qual, class_name, signature;
  bool is_hot = false;
  std::vector<std::string> requires_caps, acquires_caps, releases_caps;
};

std::string JoinCap(const std::vector<Tok>& T, size_t a, size_t b) {
  std::string out;
  for (size_t k = a; k < b; k++) {
    if (T[k].IsIdent("this")) {
      // `this->cap` names the same capability as `cap`.
      if (k + 1 < b && T[k + 1].Is("->")) k++;
      continue;
    }
    out += T[k].text;
  }
  return out;
}

void CollectAnnotations(const std::vector<Tok>& T,
                        const std::vector<size_t>& hdr, HeaderInfo* out) {
  for (size_t k = 0; k + 1 < hdr.size(); k++) {
    const std::string& id = T[hdr[k]].text;
    if (T[hdr[k]].kind != Tok::kIdent || !IsAnnotationMacro(id)) continue;
    if (!T[hdr[k + 1]].Is("(")) continue;
    // Find the matching ')' within the header list.
    int depth = 0;
    size_t close = k + 1;
    for (size_t m = k + 1; m < hdr.size(); m++) {
      if (T[hdr[m]].Is("(")) depth++;
      if (T[hdr[m]].Is(")")) {
        depth--;
        if (depth == 0) {
          close = m;
          break;
        }
      }
    }
    std::vector<std::string>* dst = nullptr;
    if (id == "REQUIRES" || id == "REQUIRES_SHARED") {
      dst = &out->requires_caps;
    } else if (id == "ACQUIRE" || id == "ACQUIRE_SHARED") {
      dst = &out->acquires_caps;
    } else if (id == "RELEASE" || id == "RELEASE_SHARED" ||
               id == "RELEASE_GENERIC") {
      dst = &out->releases_caps;
    }
    if (dst == nullptr) continue;
    // Split the argument range on top-level commas.
    size_t arg_start = k + 2;
    int d2 = 0;
    for (size_t m = k + 2; m <= close; m++) {
      bool is_close = m == close;
      if (!is_close && T[hdr[m]].Is("(")) d2++;
      if (!is_close && T[hdr[m]].Is(")")) d2--;
      if (is_close || (d2 == 0 && T[hdr[m]].Is(","))) {
        if (m > arg_start) {
          std::string cap = JoinCap(T, hdr[arg_start], hdr[m - 1] + 1);
          if (!cap.empty() && cap != "true" && cap != "false") {
            dst->push_back(cap);
          }
        }
        arg_start = m + 1;
      }
    }
  }
}

HeaderInfo AnalyzeHeader(const std::vector<Tok>& T,
                         const std::vector<size_t>& raw_hdr) {
  HeaderInfo out;
  std::vector<size_t> hdr = StripTemplates(T, raw_hdr);
  out.signature = CleanSignature(T, hdr);
  for (size_t k : hdr) {
    if (T[k].IsIdent("FS_HOT")) out.is_hot = true;
  }
  CollectAnnotations(T, hdr, &out);

  // Truncate at a ctor-init list (`) :`) so member initializers don't
  // masquerade as the parameter list.
  std::vector<size_t> h = hdr;
  for (size_t k = 0; k + 1 < h.size(); k++) {
    if (T[h[k]].Is(")") && T[h[k + 1]].Is(":")) {
      h.resize(k + 1);
      break;
    }
  }
  // `operator` declarators.
  for (size_t k = 0; k < h.size(); k++) {
    if (T[h[k]].IsIdent("operator")) {
      std::string nm = "operator";
      for (size_t m = k + 1; m < h.size() && m < k + 3; m++) {
        if (T[h[m]].Is("(") && nm != "operator") break;
        nm += T[h[m]].text;
      }
      out.name = nm;
      return out;
    }
  }
  // Last '(' (at paren depth 0) preceded by a plausible declarator ident.
  int depth = 0;
  size_t best = h.size();
  for (size_t k = 0; k < h.size(); k++) {
    if (T[h[k]].Is("(")) {
      if (depth == 0 && k > 0 && T[h[k - 1]].kind == Tok::kIdent &&
          !IsControlKeyword(T[h[k - 1]].text) &&
          !IsAnnotationMacro(T[h[k - 1]].text)) {
        best = k - 1;
      }
      depth++;
    } else if (T[h[k]].Is(")")) {
      depth--;
    }
  }
  if (best == h.size()) return out;
  out.name = T[h[best]].text;
  // Walk back `Qualifier ::` pairs for the qualified name.
  std::string qual = out.name;
  size_t k = best;
  while (k >= 2 && T[h[k - 1]].Is("::") && T[h[k - 2]].kind == Tok::kIdent) {
    if (out.class_name.empty()) out.class_name = T[h[k - 2]].text;
    qual = T[h[k - 2]].text + "::" + qual;
    k -= 2;
  }
  if (k >= 1 && T[h[k - 1]].Is("~")) out.name = "~" + out.name;
  out.qual = qual;
  return out;
}

}  // namespace

ParsedFile Parse(const std::string& path, const std::string& contents) {
  ParsedFile pf;
  pf.path = path;
  pf.lex = Lex(contents);
  const std::vector<Tok>& T = pf.lex.toks;

  enum class Scope { kNamespace, kType, kOther, kInit };
  std::vector<Scope> scopes;
  std::vector<std::string> type_names;  // innermost enclosing class/struct
  std::vector<size_t> header;
  size_t i = 0;
  while (i < T.size()) {
    const Tok& t = T[i];
    if (t.Is("{")) {
      std::vector<size_t> h = StripTemplates(T, header);
      bool ns_kw = false, type_kw = false;
      for (size_t k : h) {
        if (T[k].IsIdent("namespace")) ns_kw = true;
        if (T[k].IsIdent("class") || T[k].IsIdent("struct") ||
            T[k].IsIdent("union") || T[k].IsIdent("enum")) {
          type_kw = true;
        }
      }
      bool initializer = !h.empty() && T[h.back()].Is("=");
      bool has_parens = false, ctor_list = false;
      for (size_t k = 0; k < h.size(); k++) {
        if (T[h[k]].Is("(")) has_parens = true;
        if (k + 1 < h.size() && T[h[k]].Is(")") && T[h[k + 1]].Is(":")) {
          ctor_list = true;
        }
      }
      // A brace directly after an identifier while a `) :` init list is
      // open is a member brace-initializer, not the body.
      bool init_brace =
          ctor_list && i > 0 &&
          (T[i - 1].kind == Tok::kIdent || T[i - 1].Is(">"));
      if (ns_kw) {
        scopes.push_back(Scope::kNamespace);
        header.clear();
        i++;
      } else if (type_kw) {
        scopes.push_back(Scope::kType);
        // The type name is the last identifier before any base-class list.
        std::string tn;
        for (size_t k = 0; k < h.size(); k++) {
          if (T[h[k]].Is(":")) break;
          if (T[h[k]].kind == Tok::kIdent && !IsAnnotationMacro(T[h[k]].text) &&
              !T[h[k]].IsIdent("class") && !T[h[k]].IsIdent("struct") &&
              !T[h[k]].IsIdent("union") && !T[h[k]].IsIdent("enum") &&
              !T[h[k]].IsIdent("final") && !T[h[k]].IsIdent("alignas")) {
            tn = T[h[k]].text;
          }
        }
        type_names.push_back(tn);
        header.clear();
        i++;
      } else if (init_brace) {
        scopes.push_back(Scope::kInit);  // keeps the header accumulating
        i++;
      } else if (has_parens && !initializer) {
        size_t close = i < T.size() ? [&] {
          int depth = 0;
          for (size_t j = i; j < T.size(); j++) {
            if (T[j].Is("{")) depth++;
            if (T[j].Is("}")) {
              depth--;
              if (depth == 0) return j;
            }
          }
          return T.size();
        }() : T.size();
        HeaderInfo hi = AnalyzeHeader(T, header);
        FunctionDef fn;
        fn.name = hi.name;
        fn.qual = hi.qual.empty() ? hi.name : hi.qual;
        fn.class_name = hi.class_name;
        // Methods defined inline in a class body belong to that class.
        if (fn.class_name.empty() && !type_names.empty()) {
          fn.class_name = type_names.back();
          if (!fn.class_name.empty()) {
            fn.qual = fn.class_name + "::" + fn.name;
          }
        }
        fn.signature = hi.signature;
        fn.is_hot = hi.is_hot;
        fn.requires_caps = hi.requires_caps;
        fn.acquires_caps = hi.acquires_caps;
        fn.releases_caps = hi.releases_caps;
        fn.sig_line = t.line;
        fn.end_line = close < T.size() ? T[close].line : t.line;
        fn.body_first = static_cast<int>(i + 1);
        fn.body_last = static_cast<int>(close);
        std::vector<FunctionDef> lambdas;
        Builder b(pf.lex, &fn, &lambdas);
        b.Build(i + 1, close);
        pf.fns.push_back(std::move(fn));
        for (auto& l : lambdas) pf.fns.push_back(std::move(l));
        header.clear();
        i = close + 1;
      } else {
        scopes.push_back(Scope::kOther);
        header.clear();
        i++;
      }
    } else if (t.Is("}")) {
      bool keep = !scopes.empty() && scopes.back() == Scope::kInit;
      if (!scopes.empty()) {
        if (scopes.back() == Scope::kType && !type_names.empty()) {
          type_names.pop_back();
        }
        scopes.pop_back();
      }
      if (!keep) header.clear();
      i++;
    } else if (t.Is(";")) {
      header.clear();
      i++;
    } else {
      header.push_back(i);
      i++;
    }
  }
  for (FunctionDef& fn : pf.fns) {
    fn.marker_lo = std::max(0, fn.sig_line - 5);
    for (const FunctionDef& g : pf.fns) {
      if (&g == &fn) continue;
      if (g.end_line < fn.sig_line && g.end_line + 1 > fn.marker_lo) {
        fn.marker_lo = g.end_line + 1;
      }
    }
  }
  return pf;
}

bool Reaches(const FunctionDef& fn, int from, int to) {
  std::vector<bool> seen(fn.nodes.size(), false);
  std::vector<int> stack = {from};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (seen[static_cast<size_t>(n)]) continue;
    seen[static_cast<size_t>(n)] = true;
    for (int s : fn.nodes[static_cast<size_t>(n)].succ) stack.push_back(s);
  }
  return false;
}

std::string DumpCfg(const FunctionDef& fn, const LexFile& lex) {
  std::ostringstream ss;
  ss << fn.qual << " (" << fn.nodes.size() << " nodes)\n";
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    const CfgNode& nd = fn.nodes[n];
    ss << "  n" << n;
    if (n == FunctionDef::kEntry) ss << " [entry]";
    if (n == FunctionDef::kExit) ss << " [exit]";
    if (nd.is_return) ss << " [return]";
    if (nd.is_noreturn) ss << " [noreturn]";
    if (nd.scope_exit_of >= 0) ss << " [scope-exit " << nd.scope_exit_of << "]";
    ss << " line " << nd.line + 1 << " ->";
    for (int s : nd.succ) ss << " n" << s;
    ss << "  |";
    for (int k = nd.first_tok; k < nd.last_tok && k < nd.first_tok + 8; k++) {
      ss << " " << lex.toks[static_cast<size_t>(k)].text;
    }
    ss << "\n";
  }
  return ss.str();
}

}  // namespace fslint
