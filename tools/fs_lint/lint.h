// fs_lint — FlatStore's project-specific persist-protocol / concurrency
// lint (see DESIGN.md "Static analysis").
//
// A deliberately simple lexical analyzer (no clang AST) that enforces the
// four rules no generic tool knows about this codebase:
//
//  1. fence-after-persist: every `Persist(...)` in a function must be
//     followed by a `Fence()` / `PersistFence(...)` before any `return`
//     (or the function end), or the function carries an explicit
//     `// fs-lint: deferred-fence(<reason>)` waiver. Persist without an
//     ordering point is the dominant PM bug class; the crash explorer can
//     only find the interleavings it happens to probe — this rule covers
//     every call site on every commit.
//
//  2. pm-store: outside `src/pm`, raw `memcpy`/`memset` into — or raw
//     pointer stores through — a PM-derived pointer (anything obtained
//     via `At()`, `PtrAt<>()`, `base()`, `superblock()`, `registry()`,
//     `tails()`, `HeaderOf()`) must reach a Persist-family call later in
//     the same function or carry `// fs-lint: pm-write(<reason>)`. The
//     allocator's lazily-persisted bitmap is the showcase waiver.
//
//  3. relaxed-needs-reason: every `memory_order_relaxed` must carry a
//     `// relaxed: <reason>` tag on the same line or within the five
//     preceding lines, unless the file declares a blanket
//     `// fs-lint: relaxed-default(<reason>)`.
//
//  4. hot-path: a function marked `FS_HOT` (the PR 1 allocation-free
//     serving paths) must not heap-allocate or block on a lock
//     (`new`, `malloc`, `push_back`, `emplace_back`, `resize`, `reserve`,
//     `lock_guard`/`unique_lock`/`shared_lock`/`scoped_lock`/`LockGuard`,
//     `.lock()`); `try_lock` is allowed (HB leader election never
//     blocks). Waive with `// fs-lint: hot-ok(<reason>)`.
//
//  5. remote-write: outside `src/pm` and `src/net` (the router /
//     replication fabric is the sanctioned cross-socket path), a PM write
//     (rule 2's store forms) through a pointer that *names* another
//     socket's memory — the identifier or its obtaining expression
//     contains `remote` or `peer` — must carry
//     `// fs-lint: remote-write(<reason>)`. Naming is the contract:
//     NUMA-placed code that deliberately touches a non-home socket says
//     so in the pointer's name (`remote_chunk`, `peer_tail`), and the
//     lint turns that intention into a reviewable waiver. The socket
//     surcharge makes accidental remote writes slow; this makes them
//     visible at review time.
//
// Every waiver must carry a non-empty reason inside the parentheses; an
// empty waiver is itself a violation.

#ifndef FLATSTORE_TOOLS_FS_LINT_LINT_H_
#define FLATSTORE_TOOLS_FS_LINT_LINT_H_

#include <string>
#include <vector>

namespace fslint {

struct Violation {
  std::string file;  // path as given
  int line = 0;      // 1-based
  std::string rule;  // rule slug, e.g. "fence-after-persist"
  std::string message;
};

// Lints one translation unit. `path` is used for reporting and for the
// src/pm exemption (rules 1 and 2 are skipped for files whose path has a
// "pm" directory component — the persistence layer itself implements the
// primitives the rules are about).
std::vector<Violation> LintFile(const std::string& path,
                                const std::string& contents);

// Reads and lints the file at `path`. Missing files produce a violation.
std::vector<Violation> LintPath(const std::string& path);

// Recursively lints every .h/.cc file under `root` (or the single file
// `root` itself).
std::vector<Violation> LintTree(const std::string& root);

// "file:line: [rule] message" formatting.
std::string Format(const Violation& v);

}  // namespace fslint

#endif  // FLATSTORE_TOOLS_FS_LINT_LINT_H_
