// fs_lint — FlatStore's project-specific persist-protocol / concurrency
// lint (see DESIGN.md "Static analysis").
//
// v2 is control-flow-aware and interprocedural: every file is tokenized
// (lex.h), each function body becomes a basic-block CFG (cfg.h), a
// whole-run function-summary database (summary.h) resolves what callees
// persist / fence / pin / acquire, and the rules are forward dataflow
// problems over the CFG. No clang AST; the analysis stays syntactic and
// fast enough to run on every commit.
//
// Rules (slugs as reported):
//
//  1. fence-after-persist: on every CFG path from a `Persist(...)` (or a
//     call to a `fs-lint: deferred-fence` helper, which leaves bytes
//     unfenced by contract) to a `return` / the function exit there must
//     be a `Fence()` / `PersistFence(...)` / call to a helper that fences
//     on all of its own paths. Waive with
//     `// fs-lint: deferred-fence(<reason>)`.
//
//  2. pm-store: outside `src/pm`, raw `memcpy`/`memset` into — or raw
//     pointer stores through — a PM-derived pointer (obtained via `At()`,
//     `PtrAt<>()`, `base()`, `superblock()`, `registry()`, `tails()`,
//     `HeaderOf()`, transitively through local pointer copies) must reach
//     a Persist-family call (or a may-persist callee) on some later path,
//     or carry `// fs-lint: pm-write(<reason>)`.
//
//  3. relaxed-needs-reason: every `memory_order_relaxed` must carry a
//     `// relaxed: <reason>` tag on the same line or within the five
//     preceding lines, unless the file declares a blanket
//     `// fs-lint: relaxed-default(<reason>)`.
//
//  4. hot-path: a function marked `FS_HOT` must not heap-allocate or
//     block on a lock; `try_lock` is allowed. Waive with
//     `// fs-lint: hot-ok(<reason>)`. The rule is automatically relaxed
//     for bench/ and tests/harness (measurement scaffolding is not a
//     serving path).
//
//  5. remote-write: outside `src/pm` and `src/net`, a PM write through a
//     pointer that *names* another socket's memory (`remote`/`peer` in
//     the identifier or its obtaining expression) must carry
//     `// fs-lint: remote-write(<reason>)`.
//
//  6. persist-before-publish: a store that *publishes* state — a store
//     through a pointer derived from `superblock()` / `registry()` /
//     `tails()`, or a release-store to a tail/commit/registry-named
//     atomic — must not execute while an earlier Persist / PM write on
//     the same path is still unfenced: crash recovery could see the
//     publication without the data. Waive with
//     `// fs-lint: publish-ok(<reason>)`.
//
//  7. epoch-pin: log memory must only be decoded (`DecodeEntry`,
//     `ChainedChunkReader`, `LogReader`, or a callee annotated
//     `fs-lint: epoch-held`) while an epoch pin (`common::Guard` /
//     `GuestGuard` in scope, or a manual `Pin()`/`PinGuest()`) is held on
//     every path. Annotating a function `// fs-lint: epoch-held(<reason>)`
//     moves the obligation to its callers. Site waiver:
//     `// fs-lint: unpinned-read(<reason>)` (offline/recovery readers).
//     `src/pm` and `src/log` are exempt (they implement the primitives).
//
//  8. lock-order-cycle: lock acquisitions (scoped guards, bare `lock()`)
//     build a global acquired-while-held digraph, call sites expanding to
//     the callee's transitive acquisition set; any cycle is reported with
//     a witness site per edge. Waive an edge with
//     `// fs-lint: lock-order(<reason>)` at the witness.
//
// Every waiver must carry a non-empty reason inside the parentheses; an
// empty waiver is itself a violation (waiver-needs-reason). All waivers
// feed the registry in LintResult::waivers (rendered by `fs_lint
// --report`).

#ifndef FLATSTORE_TOOLS_FS_LINT_LINT_H_
#define FLATSTORE_TOOLS_FS_LINT_LINT_H_

#include <map>
#include <string>
#include <vector>

namespace fslint {

struct Violation {
  std::string file;  // path as given
  int line = 0;      // 1-based
  std::string rule;  // rule slug, e.g. "fence-after-persist"
  std::string message;
};

// One waiver/annotation comment, for the registry.
struct Waiver {
  std::string file;
  int line = 0;        // 1-based
  std::string marker;  // "deferred-fence", "pm-write", ...
  std::string reason;
};

struct LintResult {
  std::vector<Violation> violations;
  std::vector<Waiver> waivers;
  int files = 0;
  int functions = 0;
};

// Full interprocedural run: parses every .h/.cc under the roots (a root
// may also be a single file), builds the function-summary database over
// all of them, then applies the rules. Unreadable roots/files produce
// explicit "io" violations instead of being skipped silently. Violations
// are deduplicated and sorted by (file, line, rule).
LintResult LintPaths(const std::vector<std::string>& roots);

// Lints one translation unit in isolation (summaries are built from this
// file only). `path` is used for reporting and the layer exemptions.
std::vector<Violation> LintFile(const std::string& path,
                                const std::string& contents);

// Reads and lints the file at `path`. Missing files produce a violation.
std::vector<Violation> LintPath(const std::string& path);

// Recursively lints every .h/.cc file under `root` (or the single file
// `root` itself) as one interprocedural run.
std::vector<Violation> LintTree(const std::string& root);

// "file:line: [rule] message" formatting.
std::string Format(const Violation& v);

// ---- machine-readable output and baseline differential ------------------

// JSON report: {"version":1,"violations":[...],"waivers":[...],"stats":{}}.
std::string ToJson(const LintResult& r);

// Markdown waiver registry (embedded into DESIGN.md by --report).
std::string ToReport(const LintResult& r);

// Baseline key: file|rule|message with line-number-ish fragments (":<n>",
// "line <n>") blanked so findings keep matching as code shifts.
std::string BaselineKey(const Violation& v);

// Serialized baseline: {"version":1,"findings":{"<key>":count,...}}.
std::string SaveBaseline(const LintResult& r);

// Parses a baseline previously produced by SaveBaseline. Returns false on
// malformed input.
bool LoadBaseline(const std::string& json, std::map<std::string, int>* out);

// Violations not covered by the baseline: for each key, occurrences
// beyond the baselined count survive (in file/line order).
std::vector<Violation> DiffBaseline(const std::vector<Violation>& vs,
                                    const std::map<std::string, int>& base);

}  // namespace fslint

#endif  // FLATSTORE_TOOLS_FS_LINT_LINT_H_
