#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "cfg.h"
#include "summary.h"

namespace fslint {
namespace {

// How many lines above a site a waiver / `// relaxed:` comment may sit
// and still cover it (multi-line statements and a short comment block).
constexpr int kWaiverWindow = 5;

// Waiver markers. Every one must carry a non-empty reason.
const char* const kMarkers[] = {
    "deferred-fence", "pm-write",        "hot-ok",
    "remote-write",   "relaxed-default", "publish-ok",
    "unpinned-read",  "epoch-held",      "lock-order",
    "fence-guarded",
};

bool HasPathComponent(const std::string& path, const char* comp) {
  std::filesystem::path p(path);
  for (const auto& part : p) {
    if (part == comp) return true;
  }
  return false;
}

bool IsPmLayer(const std::string& path) {
  std::filesystem::path p(path);
  for (const auto& part : p.parent_path()) {
    if (part == "pm") return true;
  }
  return false;
}
bool IsNetLayer(const std::string& path) {
  std::filesystem::path p(path);
  for (const auto& part : p.parent_path()) {
    if (part == "net") return true;
  }
  return false;
}
bool IsLogLayer(const std::string& path) {
  std::filesystem::path p(path);
  for (const auto& part : p.parent_path()) {
    if (part == "log") return true;
  }
  return false;
}
// Measurement scaffolding is not a serving path: the hot-path rule is
// relaxed under bench/ and tests/harness (but never for lint fixtures).
bool HotRuleRelaxed(const std::string& path) {
  return HasPathComponent(path, "bench") || HasPathComponent(path, "harness");
}

bool NamesRemote(const std::string& s) {
  std::string low;
  low.reserve(s.size());
  for (char c : s) {
    low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return low.find("remote") != std::string::npos ||
         low.find("peer") != std::string::npos;
}

bool NamesPublish(const std::string& s) {
  std::string low;
  low.reserve(s.size());
  for (char c : s) {
    low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const char* w : {"tail", "commit", "checkpoint", "superblock",
                        "registry"}) {
    if (low.find(w) != std::string::npos) return true;
  }
  return false;
}

// Marker present in the function's comment range (body plus a small
// window above the signature)?
bool MarkerInFn(const FunctionDef& fn, const LexFile& lex,
                const std::string& marker) {
  int lo = std::max(0, fn.marker_lo);
  int hi = std::min(static_cast<int>(lex.comments.size()) - 1, fn.end_line);
  for (int l = lo; l <= hi; l++) {
    if (lex.comments[static_cast<size_t>(l)].find(marker) !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

bool SiteWaived(const LexFile& lex, int line, const char* marker) {
  return HasNearbyComment(lex, line, std::string("fs-lint: ") + marker + "(",
                          kWaiverWindow);
}

// ---- PM taint -----------------------------------------------------------

// 0 = not a PM source at token k; 1 = PM-derived; 2 = PM-derived and a
// *publication* root (superblock/registry/tails — the pointers recovery
// follows first).
int SourceAt(const std::vector<Tok>& T, int k, int end) {
  const Tok& t = T[static_cast<size_t>(k)];
  if (t.kind != Tok::kIdent) return 0;
  bool call_next = k + 1 < end && (T[static_cast<size_t>(k) + 1].Is("(") ||
                                   T[static_cast<size_t>(k) + 1].Is("<"));
  if (!call_next) return 0;
  if (t.text == "At") {
    if (k > 0 && (T[static_cast<size_t>(k) - 1].Is(".") ||
                  T[static_cast<size_t>(k) - 1].Is("->"))) {
      return 1;
    }
    return 0;
  }
  if (t.text == "PtrAt" || t.text == "base" || t.text == "HeaderOf") return 1;
  if (t.text == "superblock" || t.text == "registry" || t.text == "tails") {
    return 2;
  }
  return 0;
}

struct Taint {
  std::string name;
  bool remote = false;
  bool publish = false;
};

const Taint* FindTaint(const std::vector<Taint>& ts, const std::string& n) {
  for (const Taint& t : ts) {
    if (t.name == n) return &t;
  }
  return nullptr;
}

// ---- per-node events ----------------------------------------------------

struct Event {
  enum Kind {
    kPersist,       // Persist(...) — pending fence + dirty
    kPersistCall,   // call to a may-persist helper (satisfies rule 2)
    kFence,         // Fence()/PersistFence() or an always-fences callee
    kUnfencedCall,  // call to a deferred-fence helper — pending + dirty
    kPmStore,       // raw PM store / memcpy into PM — dirty
    kPublish,       // publishing store (checked against dirty state)
    kLogRead,       // DecodeEntry / reader ctor / epoch-held callee
    kPinScoped,     // Guard/GuestGuard construction (scope-keyed)
    kPinManual,     // Pin()/PinGuest()
    kUnpinManual,   // Unpin()/UnpinGuest()
    kLockAcquire,   // cap acquired here (scope >= 0 when RAII)
    kLockRelease,   // cap released here
    kCalleeLocks,   // callee transitively acquires cap (edge only)
  };
  Kind kind;
  int tok = 0;
  int line = 0;  // 0-based
  std::string text;
  bool remote = false;
  bool publish = false;
  int scope = -1;
};

struct FnAnalysis {
  std::vector<std::vector<Event>> events;  // indexed by CFG node
  bool fence_waived = false;
  bool epoch_held = false;
};

std::string JoinToks(const std::vector<Tok>& T, int a, int b) {
  std::string out;
  for (int k = a; k < b; k++) {
    if (!out.empty()) out += ' ';
    out += T[static_cast<size_t>(k)].text;
  }
  return out;
}

// Scans assignments and memcpy/memset calls in `node` for PM stores,
// publish stores and taint definitions (taints accumulate in `taints`,
// flow-insensitively like v1, but with pointer-copy propagation).
void ScanStoresAndTaints(const FunctionDef& fn, const CfgNode& node,
                         const LexFile& lex, bool collect_taints,
                         std::vector<Taint>* taints,
                         std::vector<Event>* events) {
  const auto& T = lex.toks;
  int stmt_start = node.first_tok;
  int depth = 0;
  for (int k = node.first_tok; k < node.last_tok; k++) {
    if (InLambdaSpan(fn, k)) continue;
    const Tok& t = T[static_cast<size_t>(k)];
    if (t.Is("(") || t.Is("[") || t.Is("{")) depth++;
    if (t.Is(")") || t.Is("]") || t.Is("}")) depth--;
    if (t.Is(";") && depth == 0) {
      stmt_start = k + 1;
      continue;
    }
    if (depth != 0) continue;

    bool plain_assign = t.Is("=");
    bool compound = t.Is("+=") || t.Is("-=") || t.Is("*=") || t.Is("/=") ||
                    t.Is("%=") || t.Is("&=") || t.Is("|=") || t.Is("^=");
    if (!plain_assign && !compound) continue;

    // RHS extent: up to the statement's ';' (or node end).
    int rhs_end = k + 1;
    int d2 = 0;
    while (rhs_end < node.last_tok) {
      const Tok& r = T[static_cast<size_t>(rhs_end)];
      if (r.Is("(") || r.Is("[") || r.Is("{")) d2++;
      if (r.Is(")") || r.Is("]") || r.Is("}")) d2--;
      if (r.Is(";") && d2 == 0) break;
      rhs_end++;
    }

    // Taint definition: `name = <expr mentioning a PM source or an
    // already-tainted pointer>`.
    if (collect_taints && plain_assign && k > node.first_tok &&
        T[static_cast<size_t>(k) - 1].kind == Tok::kIdent) {
      const std::string& name = T[static_cast<size_t>(k) - 1].text;
      int src = 0;
      bool remote = NamesRemote(name);
      bool publish = false;
      for (int r = k + 1; r < rhs_end; r++) {
        int s = SourceAt(T, r, rhs_end);
        src = std::max(src, s);
        const Tok& rt = T[static_cast<size_t>(r)];
        if (rt.kind == Tok::kIdent) {
          if (NamesRemote(rt.text)) remote = true;
          if (const Taint* tv = FindTaint(*taints, rt.text)) {
            src = std::max(src, 1);
            remote = remote || tv->remote;
            publish = publish || tv->publish;
          }
        }
      }
      if (src > 0) {
        publish = publish || src == 2;
        const Taint* prev = FindTaint(*taints, name);
        if (prev == nullptr) {
          taints->push_back({name, remote, publish});
        }
      }
    }

    if (events == nullptr) continue;

    // The statement that *binds* a tainted pointer is a declaration, not
    // a store — `char* dst = pool->At(off)` must not read as `*dst = ...`.
    std::string def_name;
    if (plain_assign && k > node.first_tok &&
        T[static_cast<size_t>(k) - 1].kind == Tok::kIdent) {
      for (int r = k + 1; r < rhs_end; r++) {
        if (SourceAt(T, r, rhs_end) > 0 ||
            (T[static_cast<size_t>(r)].kind == Tok::kIdent &&
             FindTaint(*taints, T[static_cast<size_t>(r)].text) != nullptr)) {
          def_name = T[static_cast<size_t>(k) - 1].text;
          break;
        }
      }
    }

    // Store through a PM pointer: the LHS mentions a PM source or a
    // tainted pointer in a dereferencing shape (`*p`, `p->f`, `p[i]`).
    bool pm = false, deref = false, publish = false, remote = false;
    std::string what;
    for (int l = stmt_start; l < k; l++) {
      const Tok& lt = T[static_cast<size_t>(l)];
      int s = SourceAt(T, l, k);
      if (s > 0) {
        pm = true;
        if (s == 2) publish = true;
        if (what.empty()) what = "store through '" + lt.text + "()'";
      }
      if (lt.Is("->") || lt.Is("[")) {
        if (pm) deref = true;
      }
      if (lt.kind != Tok::kIdent) continue;
      if (lt.text == def_name) continue;  // declarator, not a use
      const Taint* tv = FindTaint(*taints, lt.text);
      if (tv == nullptr) continue;
      // A leading `*` is a dereference only when it cannot be a declarator
      // (`char* dst` / `Foo<T>* p` have a type token before the star).
      bool star_deref = false;
      if (l > stmt_start && T[static_cast<size_t>(l) - 1].Is("*")) {
        star_deref =
            l - 1 == stmt_start ||
            (T[static_cast<size_t>(l) - 2].kind != Tok::kIdent &&
             !T[static_cast<size_t>(l) - 2].Is(">"));
      }
      bool shaped =
          star_deref ||
          (l + 1 < k && (T[static_cast<size_t>(l) + 1].Is("->") ||
                         T[static_cast<size_t>(l) + 1].Is("[")));
      if (!shaped) continue;
      pm = true;
      deref = true;
      remote = remote || tv->remote;
      publish = publish || tv->publish;
      if (what.empty()) what = "store through '" + lt.text + "'";
    }
    if (stmt_start < k && T[static_cast<size_t>(stmt_start)].Is("*")) {
      if (pm) deref = true;
    }
    if (pm && deref) {
      std::string lhs = JoinToks(T, stmt_start, k);
      if (NamesRemote(lhs)) remote = true;
      if (NamesPublish(lhs)) publish = true;
      if (publish) {
        events->push_back({Event::kPublish, stmt_start, t.line, lhs, remote,
                           true, -1});
      }
      events->push_back(
          {Event::kPmStore, stmt_start, t.line, what, remote, publish, -1});
    }
  }
}

void ScanCallsAndGuards(const FunctionDef& fn, const CfgNode& node,
                        const LexFile& lex, const SummaryDb& db,
                        const std::vector<Taint>& taints,
                        std::vector<Event>* events) {
  const auto& T = lex.toks;

  ForEachCall(fn, node, lex, [&](const std::string& name, int k) {
    int line = T[static_cast<size_t>(k)].line;
    if (name == "Persist") {
      events->push_back({Event::kPersist, k, line, name, false, false, -1});
      return;
    }
    if (name == "PersistFence") {
      events->push_back({Event::kPersist, k, line, name, false, false, -1});
      events->push_back({Event::kFence, k, line, name, false, false, -1});
      return;
    }
    if (name == "Fence") {
      events->push_back({Event::kFence, k, line, name, false, false, -1});
      return;
    }
    if (name == "Pin" || name == "PinGuest") {
      events->push_back({Event::kPinManual, k, line, name, false, false, -1});
      return;
    }
    if (name == "Unpin" || name == "UnpinGuest") {
      events->push_back(
          {Event::kUnpinManual, k, line, name, false, false, -1});
      return;
    }
    if (name == "DecodeEntry") {
      events->push_back({Event::kLogRead, k, line, name, false, false, -1});
      return;
    }
    if (db.CalleeAlwaysFences(name)) {
      if (db.CalleePersists(name)) {
        events->push_back(
            {Event::kPersistCall, k, line, name, false, false, -1});
      }
      events->push_back({Event::kFence, k, line, name, false, false, -1});
    } else if (db.CalleeLeavesUnfenced(name)) {
      events->push_back(
          {Event::kUnfencedCall, k, line, name, false, false, -1});
    } else if (db.CalleePersists(name)) {
      events->push_back(
          {Event::kPersistCall, k, line, name, false, false, -1});
    }
    if (db.CalleeReadsLog(name)) {
      events->push_back({Event::kLogRead, k, line, name, false, false, -1});
    }
    if (const auto* acq = db.CalleeAcquires(name)) {
      for (const std::string& cap : *acq) {
        events->push_back(
            {Event::kCalleeLocks, k, line, cap, false, false, -1});
      }
    }

    // memcpy/memset into PM (rule 2): evaluate the first argument.
    if (name == "memcpy" || name == "memset") {
      int open = k + 1;
      int close = open, d = 0;
      int arg_end = -1;
      for (int j = open; j < node.last_tok; j++) {
        if (T[static_cast<size_t>(j)].Is("(")) d++;
        if (T[static_cast<size_t>(j)].Is(")")) {
          d--;
          if (d == 0) {
            close = j;
            break;
          }
        }
        if (d == 1 && T[static_cast<size_t>(j)].Is(",") && arg_end < 0) {
          arg_end = j;
        }
      }
      if (arg_end < 0) arg_end = close;
      int taint = 0;
      bool remote = false, publish = false;
      for (int j = open + 1; j < arg_end; j++) {
        int s = SourceAt(T, j, arg_end);
        taint = std::max(taint, s);
        const Tok& a = T[static_cast<size_t>(j)];
        if (a.kind == Tok::kIdent) {
          if (NamesRemote(a.text)) remote = true;
          if (const Taint* tv = FindTaint(taints, a.text)) {
            taint = std::max(taint, 1);
            remote = remote || tv->remote;
            publish = publish || tv->publish;
          }
        }
      }
      if (taint > 0) {
        publish = publish || taint == 2;
        if (publish) {
          events->push_back({Event::kPublish, k, line,
                             JoinToks(T, open + 1, arg_end), remote, true,
                             -1});
        }
        events->push_back(
            {Event::kPmStore, k, line, name + "()", remote, publish, -1});
      }
    }
  });

  // Reader constructions (`ChainedChunkReader r(pool, off)`), epoch guard
  // constructions (`Guard g(&mgr, slot)`), release-stores.
  for (int k = node.first_tok; k < node.last_tok; k++) {
    if (InLambdaSpan(fn, k)) continue;
    const Tok& t = T[static_cast<size_t>(k)];
    if (t.kind != Tok::kIdent) continue;
    bool member = k > node.first_tok &&
                  (T[static_cast<size_t>(k) - 1].Is(".") ||
                   T[static_cast<size_t>(k) - 1].Is("->"));
    bool ctor_form =
        !member && k + 2 < node.last_tok &&
        T[static_cast<size_t>(k) + 1].kind == Tok::kIdent &&
        T[static_cast<size_t>(k) + 2].Is("(");
    if ((t.text == "ChainedChunkReader" || t.text == "LogReader") &&
        ctor_form) {
      events->push_back(
          {Event::kLogRead, k, t.line, t.text, false, false, -1});
    }
    if ((t.text == "Guard" || t.text == "GuestGuard") && ctor_form) {
      events->push_back({Event::kPinScoped, k, t.line, t.text, false, false,
                         node.scope_id});
    }
    if (t.text == "store" && member && k + 1 < node.last_tok &&
        T[static_cast<size_t>(k) + 1].Is("(")) {
      // Release-store to a publish-named atomic.
      int d = 0, close = k + 1;
      bool release = false;
      for (int j = k + 1; j < node.last_tok; j++) {
        if (T[static_cast<size_t>(j)].Is("(")) d++;
        if (T[static_cast<size_t>(j)].Is(")")) {
          d--;
          if (d == 0) {
            close = j;
            break;
          }
        }
        if (T[static_cast<size_t>(j)].IsIdent("memory_order_release") ||
            T[static_cast<size_t>(j)].IsIdent("memory_order_seq_cst")) {
          release = true;
        }
      }
      (void)close;
      if (release) {
        std::string chain = ExprBefore(lex, k - 1);
        if (NamesPublish(chain)) {
          events->push_back(
              {Event::kPublish, k, t.line, chain, false, true, -1});
        }
      }
    }
  }

  // Lock events last so sorting by token keeps intra-token order stable.
  for (const LockEvent& e : ScanLockEvents(fn, node, lex)) {
    std::string cap = e.cap;
    if (!fn.class_name.empty() && cap.find("::") == std::string::npos) {
      cap = fn.class_name + "::" + cap;
    }
    Event ev;
    ev.kind = e.kind == LockEvent::kRelease ? Event::kLockRelease
                                            : Event::kLockAcquire;
    ev.tok = e.tok;
    ev.line = e.line;
    ev.text = cap;
    ev.scope = e.kind == LockEvent::kScopedAcquire ? node.scope_id : -1;
    events->push_back(std::move(ev));
  }
}

FnAnalysis AnalyzeEvents(const FunctionDef& fn, const LexFile& lex,
                         const SummaryDb& db) {
  FnAnalysis fa;
  fa.events.resize(fn.nodes.size());
  fa.fence_waived = MarkerInFn(fn, lex, "fs-lint: deferred-fence");
  fa.epoch_held = MarkerInFn(fn, lex, "fs-lint: epoch-held");

  // Flow-insensitive taint pre-pass (two rounds for copy propagation).
  std::vector<Taint> taints;
  for (int round = 0; round < 2; round++) {
    for (const CfgNode& nd : fn.nodes) {
      ScanStoresAndTaints(fn, nd, lex, true, &taints, nullptr);
    }
  }
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    ScanStoresAndTaints(fn, fn.nodes[n], lex, false, &taints,
                        &fa.events[n]);
    ScanCallsAndGuards(fn, fn.nodes[n], lex, db, taints, &fa.events[n]);
    std::stable_sort(fa.events[n].begin(), fa.events[n].end(),
                     [](const Event& a, const Event& b) {
                       return a.tok < b.tok;
                     });
  }
  return fa;
}

// ---- generic forward dataflow -------------------------------------------

template <typename S>
struct Flow {
  std::vector<std::optional<S>> in, out;
};

// Forward dataflow to fixpoint. `join` folds two states (union for may,
// intersection for must); unreachable nodes keep nullopt (TOP).
template <typename S, typename TransferFn, typename JoinFn>
Flow<S> RunForward(const FunctionDef& fn, const S& entry, TransferFn transfer,
                   JoinFn join) {
  size_t nn = fn.nodes.size();
  std::vector<std::vector<int>> preds(nn);
  for (size_t n = 0; n < nn; n++) {
    for (int s : fn.nodes[n].succ) {
      preds[static_cast<size_t>(s)].push_back(static_cast<int>(n));
    }
  }
  Flow<S> f;
  f.in.resize(nn);
  f.out.resize(nn);
  for (int iter = 0; iter < 200; iter++) {
    bool changed = false;
    for (size_t n = 0; n < nn; n++) {
      std::optional<S> in;
      if (n == FunctionDef::kEntry) in = entry;
      for (int p : preds[n]) {
        const auto& po = f.out[static_cast<size_t>(p)];
        if (!po) continue;
        in = in ? join(*in, *po) : *po;
      }
      if (!in) continue;
      S out = transfer(static_cast<int>(n), *in);
      if (!f.in[n] || !(*f.in[n] == *in)) {
        f.in[n] = std::move(*in);
        changed = true;
      }
      if (!f.out[n] || !(*f.out[n] == out)) {
        f.out[n] = std::move(out);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return f;
}

template <typename S>
S UnionJoin(const S& a, const S& b) {
  S r = a;
  r.insert(b.begin(), b.end());
  return r;
}
template <typename S>
S IntersectJoin(const S& a, const S& b) {
  S r;
  for (const auto& x : a) {
    if (b.count(x)) r.insert(x);
  }
  return r;
}

// ---- rules --------------------------------------------------------------

struct FileCtx {
  const ParsedFile* pf;
  bool pm_layer, net_layer, log_layer, hot_relaxed;
  LintResult* res;
};

void Emit(FileCtx& cx, int line0, const char* rule, std::string msg) {
  cx.res->violations.push_back(
      {cx.pf->path, line0 + 1, rule, std::move(msg)});
}

// Rule 1: fence-after-persist, on the CFG, interprocedural.
void RuleFenceAfterPersist(FileCtx& cx, const FunctionDef& fn,
                           const FnAnalysis& fa) {
  if (cx.pm_layer) return;
  const LexFile& lex = cx.pf->lex;
  using S = std::set<int>;  // 0-based lines of pending (unfenced) persists
  auto transfer = [&](int n, const S& in) {
    S s = in;
    for (const Event& e : fa.events[static_cast<size_t>(n)]) {
      switch (e.kind) {
        case Event::kPersist:
          // fence-guarded: the fence happens later in this function under
          // a flag the dataflow cannot correlate (`if (need) Fence()`).
          // Unlike deferred-fence this does NOT export an obligation to
          // callers — the function still discharges it internally.
          if (SiteWaived(lex, e.line, "fence-guarded")) break;
          s.insert(e.line);
          break;
        case Event::kUnfencedCall:
          s.insert(e.line);
          break;
        case Event::kFence:
          s.clear();
          break;
        default:
          break;
      }
    }
    return s;
  };
  Flow<S> f = RunForward<S>(fn, S{}, transfer, UnionJoin<S>);
  if (fa.fence_waived) return;
  auto report = [&](int line0) {
    Emit(cx, line0, "fence-after-persist",
         "Persist() is not followed by Fence()/PersistFence() on this "
         "path out of '" +
             fn.signature +
             "'; fence it or waive with // fs-lint: "
             "deferred-fence(<reason>)");
  };
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    if (!fn.nodes[n].is_return || !f.out[n]) continue;
    if (!f.out[n]->empty()) report(fn.nodes[n].line);
  }
  // Fall-through exit: only via non-return predecessors (returns already
  // reported themselves).
  S at_end;
  bool reachable = false;
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    const CfgNode& nd = fn.nodes[n];
    if (nd.is_return || nd.is_noreturn || !f.out[n]) continue;
    if (std::find(nd.succ.begin(), nd.succ.end(), FunctionDef::kExit) ==
        nd.succ.end()) {
      continue;
    }
    reachable = true;
    at_end.insert(f.out[n]->begin(), f.out[n]->end());
  }
  if (reachable && !at_end.empty()) report(fn.end_line);
}

// Rule 2 + 5: pm-store / remote-write.
void RulePmStore(FileCtx& cx, const FunctionDef& fn, const FnAnalysis& fa) {
  if (cx.pm_layer) return;
  const LexFile& lex = cx.pf->lex;
  // Persist-capable nodes (intrinsic or may-persist callee), with the
  // last persist token per node for intra-node ordering.
  std::vector<int> persist_tok(fn.nodes.size(), -1);
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    for (const Event& e : fa.events[n]) {
      if (e.kind == Event::kPersist || e.kind == Event::kPersistCall) {
        persist_tok[n] = std::max(persist_tok[n], e.tok);
      }
    }
  }
  auto reaches_persist = [&](int from, int tok) {
    if (persist_tok[static_cast<size_t>(from)] > tok) return true;
    std::vector<bool> seen(fn.nodes.size(), false);
    std::vector<int> stack(fn.nodes[static_cast<size_t>(from)].succ);
    while (!stack.empty()) {
      int n = stack.back();
      stack.pop_back();
      if (seen[static_cast<size_t>(n)]) continue;
      seen[static_cast<size_t>(n)] = true;
      if (persist_tok[static_cast<size_t>(n)] >= 0) return true;
      for (int s : fn.nodes[static_cast<size_t>(n)].succ) stack.push_back(s);
    }
    return false;
  };
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    for (const Event& e : fa.events[n]) {
      if (e.kind != Event::kPmStore) continue;
      if (e.remote && !cx.net_layer &&
          !SiteWaived(lex, e.line, "remote-write")) {
        Emit(cx, e.line, "remote-write",
             e.text +
                 " targets remote-socket PM (remote/peer-named pointer) "
                 "in '" +
                 fn.signature +
                 "'; route it through the net layer or waive with "
                 "// fs-lint: remote-write(<reason>)");
      }
      if (reaches_persist(static_cast<int>(n), e.tok)) continue;
      if (SiteWaived(lex, e.line, "pm-write")) continue;
      Emit(cx, e.line, "pm-store",
           e.text +
               " writes a PM-derived pointer without reaching a "
               "Persist in '" +
               fn.signature +
               "'; persist it or waive with // fs-lint: "
               "pm-write(<reason>)");
    }
  }
}

// Rule 6: persist-before-publish.
void RulePersistBeforePublish(FileCtx& cx, const FunctionDef& fn,
                              const FnAnalysis& fa) {
  if (cx.pm_layer) return;
  const LexFile& lex = cx.pf->lex;
  using S = std::set<int>;  // 0-based lines of unfenced persists/PM writes
  auto apply = [&](int n, const S& in,
                   const std::function<void(const Event&, const S&)>& on) {
    S s = in;
    for (const Event& e : fa.events[static_cast<size_t>(n)]) {
      switch (e.kind) {
        case Event::kPublish:
          if (on) on(e, s);
          break;
        case Event::kPersist:
          if (SiteWaived(lex, e.line, "fence-guarded")) break;
          s.insert(e.line);
          break;
        case Event::kUnfencedCall:
          s.insert(e.line);
          break;
        case Event::kPmStore:
          // A publish store is the *publication*, not pending payload: a
          // run of superblock-field stores must not flag one another.
          // Its durability is rule 2's job (it must reach a Persist).
          if (!e.publish) s.insert(e.line);
          break;
        case Event::kFence:
          s.clear();
          break;
        default:
          break;
      }
    }
    return s;
  };
  auto transfer = [&](int n, const S& in) { return apply(n, in, nullptr); };
  Flow<S> f = RunForward<S>(fn, S{}, transfer, UnionJoin<S>);
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    if (!f.in[n]) continue;
    apply(static_cast<int>(n), *f.in[n], [&](const Event& e, const S& dirty) {
      if (dirty.empty()) return;
      if (SiteWaived(lex, e.line, "publish-ok")) return;
      std::ostringstream lines;
      int shown = 0;
      for (int l : dirty) {
        if (shown++) lines << ", ";
        if (shown > 3) {
          lines << "...";
          break;
        }
        lines << l + 1;
      }
      Emit(cx, e.line, "persist-before-publish",
           "store publishes '" + e.text + "' in '" + fn.signature +
               "' while the persist/PM write at line " + lines.str() +
               " is not yet fenced; recovery could see the publication "
               "without the data — Fence() first or waive with "
               "// fs-lint: publish-ok(<reason>)");
    });
  }
}

// Rule 7: epoch-pin discipline.
void RuleEpochPin(FileCtx& cx, const FunctionDef& fn, const FnAnalysis& fa) {
  if (cx.pm_layer || cx.log_layer) return;
  if (fa.epoch_held) return;  // the caller owns the pin, by contract
  const LexFile& lex = cx.pf->lex;
  // Must-analysis: set of active pin keys. Scoped pins are keyed by the
  // scope id of their construction and die at that scope's exit node;
  // manual Pin() is key -1 and dies at Unpin().
  using S = std::set<int>;
  auto apply = [&](int n, const S& in,
                   const std::function<void(const Event&, const S&)>& on) {
    S s = in;
    const CfgNode& nd = fn.nodes[static_cast<size_t>(n)];
    if (nd.scope_exit_of >= 0) s.erase(nd.scope_exit_of);
    for (const Event& e : fa.events[static_cast<size_t>(n)]) {
      switch (e.kind) {
        case Event::kLogRead:
          if (on) on(e, s);
          break;
        case Event::kPinScoped:
          s.insert(e.scope);
          break;
        case Event::kPinManual:
          s.insert(-1);
          break;
        case Event::kUnpinManual:
          s.erase(-1);
          break;
        default:
          break;
      }
    }
    return s;
  };
  auto transfer = [&](int n, const S& in) { return apply(n, in, nullptr); };
  Flow<S> f = RunForward<S>(fn, S{}, transfer, IntersectJoin<S>);
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    if (!f.in[n]) continue;
    apply(static_cast<int>(n), *f.in[n], [&](const Event& e, const S& pins) {
      if (!pins.empty()) return;
      if (SiteWaived(lex, e.line, "unpinned-read")) return;
      Emit(cx, e.line, "epoch-pin",
           "'" + e.text + "' reads log memory without an epoch pin held "
           "on every path in '" +
               fn.signature +
               "'; hold common::Guard/GuestGuard across the read, "
               "annotate the function // fs-lint: epoch-held(<reason>), "
               "or waive with // fs-lint: unpinned-read(<reason>)");
    });
  }
}

// Rule 3: relaxed-needs-reason (file scope).
void RuleRelaxed(FileCtx& cx, bool blanket) {
  if (blanket) return;
  const LexFile& lex = cx.pf->lex;
  for (const Tok& t : lex.toks) {
    if (!t.IsIdent("memory_order_relaxed")) continue;
    if (HasNearbyComment(lex, t.line, "relaxed:", kWaiverWindow)) continue;
    Emit(cx, t.line, "relaxed-needs-reason",
         "memory_order_relaxed without a '// relaxed: <reason>' "
         "justification (or file-level fs-lint: relaxed-default)");
  }
}

// Rule 4: hot-path (token scan over the body, lambdas included — code in
// a lambda defined on a hot path runs on that hot path).
void RuleHotPath(FileCtx& cx, const FunctionDef& fn) {
  if (!fn.is_hot || cx.hot_relaxed) return;
  const LexFile& lex = cx.pf->lex;
  const auto& T = lex.toks;
  auto waived = [&](int line) {
    return SiteWaived(lex, line, "hot-ok");
  };
  for (int k = fn.body_first; k < fn.body_last; k++) {
    const Tok& t = T[static_cast<size_t>(k)];
    if (t.kind != Tok::kIdent) continue;
    bool call = k + 1 < fn.body_last && T[static_cast<size_t>(k) + 1].Is("(");
    static const std::set<std::string> kAlloc = {
        "malloc", "calloc", "realloc", "push_back", "emplace_back",
        "resize", "reserve"};
    if (call && kAlloc.count(t.text) && !waived(t.line)) {
      Emit(cx, t.line, "hot-path",
           t.text + "() in FS_HOT function '" + fn.signature +
               "' (serving paths are allocation-free)");
      continue;
    }
    if (t.text == "new" && !waived(t.line)) {
      Emit(cx, t.line, "hot-path",
           "operator new in FS_HOT function '" + fn.signature + "'");
      continue;
    }
    static const std::set<std::string> kGuards = {
        "lock_guard", "unique_lock", "shared_lock",
        "scoped_lock", "LockGuard",  "SharedLockGuard"};
    if (kGuards.count(t.text) && !waived(t.line)) {
      Emit(cx, t.line, "hot-path",
           t.text + " in FS_HOT function '" + fn.signature +
               "' (blocking locks are banned; try_lock is allowed)");
      continue;
    }
    if (t.text == "lock" && call && k > fn.body_first &&
        (T[static_cast<size_t>(k) - 1].Is(".") ||
         T[static_cast<size_t>(k) - 1].Is("->")) &&
        k + 2 < fn.body_last && T[static_cast<size_t>(k) + 2].Is(")") &&
        !waived(t.line)) {
      Emit(cx, t.line, "hot-path",
           "blocking lock() call in FS_HOT function '" + fn.signature +
               "'");
    }
  }
}

// Rule 8 support: per-function may-held analysis emitting global edges.
struct LockEdge {
  std::string from, to;
  std::string file;  // witness
  int line = 0;      // 1-based
  bool waived = false;
};

void CollectLockEdges(FileCtx& cx, const FunctionDef& fn,
                      const FnAnalysis& fa,
                      std::map<std::pair<std::string, std::string>,
                               LockEdge>* edges) {
  const LexFile& lex = cx.pf->lex;
  // Held set: (cap, scope) pairs; scope -1 = held until unlock.
  using Held = std::set<std::pair<std::string, int>>;
  auto apply = [&](int n, const Held& in,
                   const std::function<void(const Event&, const Held&)>& on) {
    Held s = in;
    const CfgNode& nd = fn.nodes[static_cast<size_t>(n)];
    if (nd.scope_exit_of >= 0) {
      for (auto it = s.begin(); it != s.end();) {
        it = it->second == nd.scope_exit_of ? s.erase(it) : std::next(it);
      }
    }
    for (const Event& e : fa.events[static_cast<size_t>(n)]) {
      switch (e.kind) {
        case Event::kLockAcquire:
          if (on) on(e, s);
          s.insert({e.text, e.scope});
          break;
        case Event::kCalleeLocks:
          if (on) on(e, s);
          break;
        case Event::kLockRelease:
          for (auto it = s.begin(); it != s.end();) {
            it = it->first == e.text ? s.erase(it) : std::next(it);
          }
          break;
        default:
          break;
      }
    }
    return s;
  };
  Held entry;
  for (const std::string& cap : fn.requires_caps) {
    std::string c = cap;
    if (!fn.class_name.empty() && c.find("::") == std::string::npos) {
      c = fn.class_name + "::" + c;
    }
    entry.insert({c, -1});
  }
  auto transfer = [&](int n, const Held& in) { return apply(n, in, nullptr); };
  Flow<Held> f = RunForward<Held>(fn, entry, transfer, UnionJoin<Held>);
  for (size_t n = 0; n < fn.nodes.size(); n++) {
    if (!f.in[n]) continue;
    apply(static_cast<int>(n), *f.in[n],
          [&](const Event& e, const Held& held) {
            for (const auto& h : held) {
              if (h.first == e.text) continue;
              auto key = std::make_pair(h.first, e.text);
              if (edges->count(key)) continue;
              LockEdge edge;
              edge.from = h.first;
              edge.to = e.text;
              edge.file = cx.pf->path;
              edge.line = e.line + 1;
              edge.waived = SiteWaived(lex, e.line, "lock-order");
              (*edges)[key] = std::move(edge);
            }
          });
  }
}

void ReportLockCycles(
    const std::map<std::pair<std::string, std::string>, LockEdge>& edges,
    std::vector<Violation>* out) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& kv : edges) {
    if (kv.second.waived) continue;
    adj[kv.first.first].push_back(kv.first.second);
  }
  auto reaches = [&](const std::string& from, const std::string& to) {
    std::vector<std::string> stack = {from};
    std::set<std::string> seen;
    while (!stack.empty()) {
      std::string n = stack.back();
      stack.pop_back();
      if (n == to) return true;
      if (!seen.insert(n).second) continue;
      auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (const std::string& s : it->second) stack.push_back(s);
    }
    return false;
  };
  for (const auto& kv : edges) {
    const LockEdge& e = kv.second;
    if (e.waived) continue;
    if (!reaches(e.to, e.from)) continue;
    out->push_back(
        {e.file, e.line, "lock-order-cycle",
         "acquiring '" + e.to + "' while holding '" + e.from +
             "' completes a lock-order cycle ('" + e.from +
             "' is also acquired while '" + e.to +
             "' is held elsewhere); fix the ordering or waive with "
             "// fs-lint: lock-order(<reason>)"});
  }
}

// ---- per-file driver ----------------------------------------------------

void AnalyzeFile(
    const ParsedFile& pf, const SummaryDb& db, LintResult* res,
    std::map<std::pair<std::string, std::string>, LockEdge>* edges) {
  FileCtx cx{&pf, IsPmLayer(pf.path), IsNetLayer(pf.path),
             IsLogLayer(pf.path), HotRuleRelaxed(pf.path), res};
  const LexFile& lex = pf.lex;

  // Waiver registry + empty-reason violations + blanket relaxed waiver.
  bool relaxed_blanket = false;
  for (int l = 0; l < static_cast<int>(lex.comments.size()); l++) {
    const std::string& c = lex.comments[static_cast<size_t>(l)];
    if (c.find("fs-lint:") == std::string::npos) continue;
    for (const char* m : kMarkers) {
      std::string marker = std::string("fs-lint: ") + m + "(";
      std::string reason;
      if (!WaiverReason(c, marker, &reason)) continue;
      if (std::string(m) == "relaxed-default") relaxed_blanket = true;
      res->waivers.push_back({pf.path, l + 1, m, reason});
      if (reason.empty()) {
        std::string msg =
            std::string(m) == "relaxed-default"
                ? "fs-lint: relaxed-default waiver without a reason"
                : marker + "...) waiver without a reason";
        Emit(cx, l, "waiver-needs-reason", std::move(msg));
      }
    }
  }

  RuleRelaxed(cx, relaxed_blanket);

  for (const FunctionDef& fn : pf.fns) {
    FnAnalysis fa = AnalyzeEvents(fn, lex, db);
    RuleFenceAfterPersist(cx, fn, fa);
    RulePmStore(cx, fn, fa);
    RulePersistBeforePublish(cx, fn, fa);
    RuleEpochPin(cx, fn, fa);
    if (!fn.is_lambda) RuleHotPath(cx, fn);
    CollectLockEdges(cx, fn, fa, edges);
    res->functions++;
  }
  res->files++;
}

void FinishResult(LintResult* res,
                  const std::map<std::pair<std::string, std::string>,
                                 LockEdge>& edges) {
  ReportLockCycles(edges, &res->violations);
  auto& vs = res->violations;
  std::sort(vs.begin(), vs.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  vs.erase(std::unique(vs.begin(), vs.end(),
                       [](const Violation& a, const Violation& b) {
                         return a.file == b.file && a.line == b.line &&
                                a.rule == b.rule && a.message == b.message;
                       }),
           vs.end());
  std::sort(res->waivers.begin(), res->waivers.end(),
            [](const Waiver& a, const Waiver& b) {
              return std::tie(a.marker, a.file, a.line) <
                     std::tie(b.marker, b.file, b.line);
            });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---- public API ---------------------------------------------------------

LintResult LintPaths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  LintResult res;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      fs::recursive_directory_iterator it(root, ec), end;
      if (ec) {
        res.violations.push_back(
            {root, 0, "io", "cannot walk directory: " + ec.message()});
        continue;
      }
      for (; it != end; it.increment(ec)) {
        if (ec) {
          res.violations.push_back(
              {root, 0, "io", "cannot walk directory: " + ec.message()});
          break;
        }
        if (!it->is_regular_file(ec)) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc") files.push_back(it->path().string());
      }
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      res.violations.push_back({f, 0, "io", "cannot open file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
      res.violations.push_back({f, 0, "io", "read error"});
      continue;
    }
    parsed.push_back(Parse(f, ss.str()));
  }

  SummaryDb db;
  std::vector<const ParsedFile*> ptrs;
  ptrs.reserve(parsed.size());
  for (const ParsedFile& pf : parsed) ptrs.push_back(&pf);
  db.Build(ptrs);

  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  for (const ParsedFile& pf : parsed) AnalyzeFile(pf, db, &res, &edges);
  FinishResult(&res, edges);
  return res;
}

std::vector<Violation> LintFile(const std::string& path,
                                const std::string& contents) {
  LintResult res;
  ParsedFile pf = Parse(path, contents);
  SummaryDb db;
  db.Build({&pf});
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  AnalyzeFile(pf, db, &res, &edges);
  FinishResult(&res, edges);
  return std::move(res.violations);
}

std::vector<Violation> LintPath(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return LintFile(path, ss.str());
}

std::vector<Violation> LintTree(const std::string& root) {
  return LintPaths({root}).violations;
}

std::string Format(const Violation& v) {
  std::ostringstream ss;
  ss << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return ss.str();
}

std::string ToJson(const LintResult& r) {
  std::ostringstream ss;
  ss << "{\n  \"version\": 1,\n  \"violations\": [";
  for (size_t i = 0; i < r.violations.size(); i++) {
    const Violation& v = r.violations[i];
    ss << (i ? ",\n    " : "\n    ") << "{\"file\": \"" << JsonEscape(v.file)
       << "\", \"line\": " << v.line << ", \"rule\": \""
       << JsonEscape(v.rule) << "\", \"message\": \""
       << JsonEscape(v.message) << "\"}";
  }
  ss << (r.violations.empty() ? "" : "\n  ") << "],\n  \"waivers\": [";
  for (size_t i = 0; i < r.waivers.size(); i++) {
    const Waiver& w = r.waivers[i];
    ss << (i ? ",\n    " : "\n    ") << "{\"file\": \"" << JsonEscape(w.file)
       << "\", \"line\": " << w.line << ", \"marker\": \""
       << JsonEscape(w.marker) << "\", \"reason\": \""
       << JsonEscape(w.reason) << "\"}";
  }
  ss << (r.waivers.empty() ? "" : "\n  ")
     << "],\n  \"stats\": {\"files\": " << r.files
     << ", \"functions\": " << r.functions
     << ", \"violations\": " << r.violations.size()
     << ", \"waivers\": " << r.waivers.size() << "}\n}\n";
  return ss.str();
}

std::string ToReport(const LintResult& r) {
  std::ostringstream ss;
  ss << "<!-- generated by `fs_lint --report`; do not edit by hand -->\n";
  ss << "Scanned " << r.files << " files / " << r.functions
     << " functions; " << r.waivers.size() << " waivers, "
     << r.violations.size() << " open findings.\n\n";
  ss << "| Marker | File | Line | Reason |\n";
  ss << "|--------|------|------|--------|\n";
  for (const Waiver& w : r.waivers) {
    ss << "| `" << w.marker << "` | `" << w.file << "` | " << w.line
       << " | " << (w.reason.empty() ? "**(missing)**" : w.reason)
       << " |\n";
  }
  return ss.str();
}

std::string BaselineKey(const Violation& v) {
  std::string msg;
  msg.reserve(v.message.size());
  for (size_t i = 0; i < v.message.size(); i++) {
    char c = v.message[i];
    bool digit_run = false;
    if (c == ':' && i + 1 < v.message.size() &&
        std::isdigit(static_cast<unsigned char>(v.message[i + 1]))) {
      digit_run = true;
      msg += ":#";
      i++;
    } else if (std::isdigit(static_cast<unsigned char>(c)) &&
               (i == 0 || !std::isalnum(static_cast<unsigned char>(
                              v.message[i - 1])))) {
      digit_run = true;
      msg += '#';
    } else {
      msg += c;
    }
    if (digit_run) {
      while (i + 1 < v.message.size() &&
             std::isdigit(static_cast<unsigned char>(v.message[i + 1]))) {
        i++;
      }
    }
  }
  return v.file + "|" + v.rule + "|" + msg;
}

std::string SaveBaseline(const LintResult& r) {
  std::map<std::string, int> counts;
  for (const Violation& v : r.violations) counts[BaselineKey(v)]++;
  std::ostringstream ss;
  ss << "{\n  \"version\": 1,\n  \"findings\": {";
  size_t i = 0;
  for (const auto& kv : counts) {
    ss << (i++ ? ",\n    " : "\n    ") << "\"" << JsonEscape(kv.first)
       << "\": " << kv.second;
  }
  ss << (counts.empty() ? "" : "\n  ") << "}\n}\n";
  return ss.str();
}

bool LoadBaseline(const std::string& json, std::map<std::string, int>* out) {
  out->clear();
  size_t pos = json.find("\"findings\"");
  if (pos == std::string::npos) return false;
  pos = json.find('{', pos);
  if (pos == std::string::npos) return false;
  pos++;
  while (pos < json.size()) {
    while (pos < json.size() &&
           std::isspace(static_cast<unsigned char>(json[pos]))) {
      pos++;
    }
    if (pos < json.size() && json[pos] == '}') return true;
    if (pos >= json.size() || json[pos] != '"') return false;
    pos++;
    std::string key;
    while (pos < json.size() && json[pos] != '"') {
      if (json[pos] == '\\' && pos + 1 < json.size()) {
        pos++;
        switch (json[pos]) {
          case 'n':
            key += '\n';
            break;
          case 't':
            key += '\t';
            break;
          default:
            key += json[pos];
        }
      } else {
        key += json[pos];
      }
      pos++;
    }
    if (pos >= json.size()) return false;
    pos++;  // closing quote
    while (pos < json.size() &&
           (std::isspace(static_cast<unsigned char>(json[pos])) ||
            json[pos] == ':')) {
      pos++;
    }
    int value = 0;
    bool any = false;
    while (pos < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[pos]))) {
      value = value * 10 + (json[pos] - '0');
      pos++;
      any = true;
    }
    if (!any) return false;
    (*out)[key] = value;
    while (pos < json.size() &&
           (std::isspace(static_cast<unsigned char>(json[pos])) ||
            json[pos] == ',')) {
      pos++;
    }
  }
  return false;
}

std::vector<Violation> DiffBaseline(const std::vector<Violation>& vs,
                                    const std::map<std::string, int>& base) {
  std::map<std::string, int> budget = base;
  std::vector<Violation> out;
  for (const Violation& v : vs) {
    auto it = budget.find(BaselineKey(v));
    if (it != budget.end() && it->second > 0) {
      it->second--;
      continue;
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace fslint
