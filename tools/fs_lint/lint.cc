#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace fslint {
namespace {

// How many lines above a site a `// relaxed:` / waiver comment may sit
// and still cover it (multi-line statements and a short comment block).
constexpr int kWaiverWindow = 5;

// One source line split into executable code and comment text. String
// and character literals are blanked out of `code` so tokens inside them
// never match; comments are collected separately for waiver detection.
struct Line {
  std::string code;
  std::string comment;
};

std::vector<Line> SplitLines(const std::string& contents) {
  std::vector<Line> lines;
  Line cur;
  enum class St { kCode, kString, kChar, kLineComment, kBlockComment };
  St st = St::kCode;
  for (size_t i = 0; i < contents.size(); i++) {
    char c = contents[i];
    char n = i + 1 < contents.size() ? contents[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // Unterminated strings/chars at EOL (shouldn't happen in valid
      // C++) reset to code so one bad line can't poison the file.
      if (st == St::kString || st == St::kChar) st = St::kCode;
      lines.push_back(std::move(cur));
      cur = Line();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          i++;  // skip second '/'
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          i++;
        } else if (c == '"') {
          st = St::kString;
          cur.code += ' ';
        } else if (c == '\'') {
          st = St::kChar;
          cur.code += ' ';
        } else {
          cur.code += c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          i++;
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          i++;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kLineComment:
        cur.comment += c;
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          st = St::kCode;
          i++;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

bool ContainsWord(const std::string& s, const std::string& word) {
  size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                                    s[pos - 1])) &&
                                s[pos - 1] != '_');
    size_t end = pos + word.size();
    bool right_ok =
        end >= s.size() ||
        (!std::isalnum(static_cast<unsigned char>(s[end])) && s[end] != '_');
    if (left_ok && right_ok) return true;
    pos++;
  }
  return false;
}

// True when `s` contains `name` immediately followed by '(' (allowing
// whitespace) at a word boundary — a call or declaration of `name`.
bool ContainsCall(const std::string& s, const std::string& name) {
  size_t pos = 0;
  while ((pos = s.find(name, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                                    s[pos - 1])) &&
                                s[pos - 1] != '_');
    size_t end = pos + name.size();
    while (end < s.size() &&
           std::isspace(static_cast<unsigned char>(s[end]))) {
      end++;
    }
    if (left_ok && end < s.size() && s[end] == '(') return true;
    pos++;
  }
  return false;
}

// Waiver / tag lookup: `marker` on the same line or up to kWaiverWindow
// comment-bearing lines above `line` (0-based index into `lines`).
bool HasNearbyComment(const std::vector<Line>& lines, int line,
                      const std::string& marker) {
  for (int l = line; l >= 0 && l >= line - kWaiverWindow; l--) {
    if (lines[static_cast<size_t>(l)].comment.find(marker) !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

// Extracts the reason inside the parentheses following `marker`; returns
// false when the marker is absent.
bool WaiverReason(const std::string& comment, const std::string& marker,
                  std::string* reason) {
  size_t pos = comment.find(marker);
  if (pos == std::string::npos) return false;
  size_t open = comment.find('(', pos + marker.size() - 1);
  if (open == std::string::npos) {
    reason->clear();
    return true;
  }
  size_t close = comment.find(')', open);
  *reason = comment.substr(open + 1, close == std::string::npos
                                         ? std::string::npos
                                         : close - open - 1);
  // Trim whitespace.
  while (!reason->empty() && std::isspace(static_cast<unsigned char>(
                                 reason->front()))) {
    reason->erase(reason->begin());
  }
  while (!reason->empty() &&
         std::isspace(static_cast<unsigned char>(reason->back()))) {
    reason->pop_back();
  }
  return true;
}

bool IsPmLayer(const std::string& path) {
  std::filesystem::path p(path);
  for (const auto& part : p.parent_path()) {
    if (part == "pm") return true;
  }
  return false;
}

bool IsNetLayer(const std::string& path) {
  std::filesystem::path p(path);
  for (const auto& part : p.parent_path()) {
    if (part == "net") return true;
  }
  return false;
}

// Remote-socket naming marker (rule 5): identifiers / expressions that
// announce cross-socket memory.
bool NamesRemote(const std::string& s) {
  std::string low;
  low.reserve(s.size());
  for (char c : s) {
    low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return low.find("remote") != std::string::npos ||
         low.find("peer") != std::string::npos;
}

// First argument of the call to `fn` found in `code`, or "" when absent.
std::string FirstArgOf(const std::string& code, const std::string& fn) {
  size_t pos = 0;
  while ((pos = code.find(fn, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                                    code[pos - 1])) &&
                                code[pos - 1] != '_');
    size_t i = pos + fn.size();
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      i++;
    }
    if (!left_ok || i >= code.size() || code[i] != '(') {
      pos++;
      continue;
    }
    int depth = 0;
    size_t start = i + 1;
    for (size_t j = start; j < code.size(); j++) {
      char c = code[j];
      if (c == '(' || c == '[' || c == '{' || c == '<') depth++;
      if (c == ')' || c == ']' || c == '}' || c == '>') {
        if (c == ')' && depth == 0) return code.substr(start, j - start);
        depth--;
      }
      if (c == ',' && depth == 0) return code.substr(start, j - start);
    }
    return code.substr(start);
  }
  return "";
}

const char* const kTaintSources[] = {"->At",     ".At",          "PtrAt",
                                     "base",     "superblock",   "registry",
                                     "tails",    "HeaderOf"};

bool MentionsTaintSource(const std::string& expr) {
  for (const char* src : kTaintSources) {
    size_t pos = expr.find(src);
    if (pos == std::string::npos) continue;
    // `PtrAt` is a template call (`PtrAt<T>(...)`); the rest must be
    // calls. Either way the next non-name char being '(' or '<' is
    // enough for a lexical check.
    size_t end = pos + std::strlen(src);
    if (end < expr.size() && (expr[end] == '(' || expr[end] == '<')) {
      return true;
    }
  }
  return false;
}

struct PendingPmStore {
  int line;  // 0-based
  std::string what;
};

// A PM-derived pointer binding. `remote` marks bindings whose name or
// obtaining expression names cross-socket memory (rule 5).
struct Taint {
  std::string name;
  bool remote = false;
};

struct FunctionState {
  int start_line = 0;        // 0-based line of the opening brace
  int body_depth = 0;        // brace depth of the body
  bool is_hot = false;
  std::string name_hint;     // signature text, for messages
  int unfenced_persist = -1;  // 0-based line of the last unfenced Persist
  bool fence_waived = false;
  std::vector<int> pending_returns;  // returns seen while unfenced
  std::vector<PendingPmStore> pm_stores;
  std::vector<int> persist_lines;  // every Persist/PersistFence call line
  std::vector<Taint> tainted;  // identifiers bound to PM pointers
};

// 0 = not PM-derived, 1 = PM-derived, 2 = PM-derived and remote-named.
int TaintOf(const FunctionState& fn, const std::string& expr) {
  int taint = 0;
  if (MentionsTaintSource(expr)) taint = NamesRemote(expr) ? 2 : 1;
  for (const auto& v : fn.tainted) {
    if (!ContainsWord(expr, v.name)) continue;
    taint = std::max(taint, v.remote ? 2 : 1);
  }
  return taint;
}

// Truncates and cleans a signature for use in messages.
std::string NameHint(std::string sig) {
  // Collapse whitespace runs.
  std::string out;
  bool ws = false;
  for (char c : sig) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      ws = true;
      continue;
    }
    if (ws && !out.empty()) out += ' ';
    ws = false;
    out += c;
  }
  if (out.size() > 60) out = out.substr(0, 57) + "...";
  return out;
}

}  // namespace

std::vector<Violation> LintFile(const std::string& path,
                                const std::string& contents) {
  std::vector<Violation> out;
  const bool pm_layer = IsPmLayer(path);
  const bool net_layer = IsNetLayer(path);
  const std::vector<Line> lines = SplitLines(contents);

  // File-level blanket waiver for the relaxed rule.
  bool relaxed_blanket = false;
  for (const Line& l : lines) {
    std::string reason;
    if (WaiverReason(l.comment, "fs-lint: relaxed-default(", &reason)) {
      relaxed_blanket = true;
      if (reason.empty()) {
        out.push_back({path,
                       static_cast<int>(&l - lines.data()) + 1,
                       "waiver-needs-reason",
                       "fs-lint: relaxed-default waiver without a reason"});
      }
    }
  }

  // Scope tracking. `scopes` mirrors brace depth; FunctionState is live
  // while inside a function body.
  enum class Scope { kNamespace, kType, kFunction, kOther };
  std::vector<Scope> scopes;
  FunctionState fn;
  bool in_function = false;
  std::string header;  // code accumulated since the last ';' / '{' / '}'

  static const std::regex kTaintDef(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*=\s*[^=;]*(->At\s*\(|\.At\s*\(|PtrAt\s*<|->base\s*\(\s*\)|superblock\s*\(\s*\)|registry\s*\(\s*\)|tails\s*\(|HeaderOf\s*\())");
  static const std::regex kTemplateHdr(R"(template\s*<[^<>]*>)");

  auto finish_function = [&](int end_line) {
    if (fn.unfenced_persist >= 0) fn.pending_returns.push_back(end_line);
    if (!fn.fence_waived) {
      for (int r : fn.pending_returns) {
        out.push_back(
            {path, r + 1, "fence-after-persist",
             "Persist() is not followed by Fence()/PersistFence() on this "
             "path out of '" +
                 fn.name_hint +
                 "'; fence it or waive with // fs-lint: "
                 "deferred-fence(<reason>)"});
      }
    }
    for (const PendingPmStore& st : fn.pm_stores) {
      bool persisted_later = false;
      for (int pl : fn.persist_lines) {
        if (pl >= st.line) {
          persisted_later = true;
          break;
        }
      }
      if (persisted_later) continue;
      if (HasNearbyComment(lines, st.line, "fs-lint: pm-write(")) continue;
      out.push_back({path, st.line + 1, "pm-store",
                     st.what +
                         " writes a PM-derived pointer without reaching a "
                         "Persist in '" +
                         fn.name_hint +
                         "'; persist it or waive with // fs-lint: "
                         "pm-write(<reason>)"});
    }
  };

  bool pp_continuation = false;  // previous line was a '\'-continued #directive

  for (size_t li = 0; li < lines.size(); li++) {
    std::string code = lines[li].code;
    const std::string& comment = lines[li].comment;

    // Preprocessor lines (and their backslash continuations) are invisible
    // to every rule and to brace/scope tracking: macro definitions contain
    // parens and braces that are not code in this translation unit.
    {
      size_t first = code.find_first_not_of(" \t");
      bool is_pp = pp_continuation ||
                   (first != std::string::npos && code[first] == '#');
      size_t last = code.find_last_not_of(" \t");
      pp_continuation =
          is_pp && last != std::string::npos && code[last] == '\\';
      if (is_pp) code.clear();
    }

    // --- waiver bookkeeping (reasons must be non-empty) ---
    for (const char* marker :
         {"fs-lint: deferred-fence(", "fs-lint: pm-write(",
          "fs-lint: hot-ok(", "fs-lint: remote-write("}) {
      std::string reason;
      if (WaiverReason(comment, marker, &reason) && reason.empty()) {
        out.push_back({path, static_cast<int>(li) + 1, "waiver-needs-reason",
                       std::string(marker) + "...) waiver without a reason"});
      }
    }
    if (in_function &&
        comment.find("fs-lint: deferred-fence(") != std::string::npos) {
      fn.fence_waived = true;
    }

    // --- rule 3: relaxed-needs-reason (applies everywhere) ---
    if (!relaxed_blanket &&
        code.find("memory_order_relaxed") != std::string::npos &&
        !HasNearbyComment(lines, static_cast<int>(li), "relaxed:")) {
      out.push_back({path, static_cast<int>(li) + 1, "relaxed-needs-reason",
                     "memory_order_relaxed without a '// relaxed: <reason>' "
                     "justification (or file-level fs-lint: "
                     "relaxed-default)"});
    }

    // --- in-function token rules ---
    if (in_function) {
      // rule 1: fence-after-persist.
      if (!pm_layer) {
        if (ContainsCall(code, "PersistFence") || ContainsCall(code, "Fence")) {
          fn.unfenced_persist = -1;
          fn.persist_lines.push_back(static_cast<int>(li));
        }
        if (ContainsCall(code, "Persist")) {
          fn.unfenced_persist = static_cast<int>(li);
          fn.persist_lines.push_back(static_cast<int>(li));
        }
        if (ContainsWord(code, "return") && fn.unfenced_persist >= 0) {
          fn.pending_returns.push_back(static_cast<int>(li));
          // One report per un-fenced Persist, not per return.
          fn.unfenced_persist = -1;
        }

        // rule 2: pm-store. New taints first, then violating stores.
        // rule 5: remote-write fires at the store line itself (persisting
        // a remote write later does not make it local).
        auto flag_remote = [&](const std::string& what) {
          if (net_layer) return;  // sanctioned cross-socket fabric
          if (HasNearbyComment(lines, static_cast<int>(li),
                               "fs-lint: remote-write(")) {
            return;
          }
          out.push_back(
              {path, static_cast<int>(li) + 1, "remote-write",
               what +
                   " targets remote-socket PM (remote/peer-named pointer) "
                   "in '" +
                   fn.name_hint +
                   "'; route it through the net layer or waive with "
                   "// fs-lint: remote-write(<reason>)"});
        };
        std::smatch m;
        std::string rest = code;
        std::vector<std::string> tainted_here;
        while (std::regex_search(rest, m, kTaintDef)) {
          fn.tainted.push_back({m[1].str(), NamesRemote(m[0].str())});
          tainted_here.push_back(m[1].str());
          rest = m.suffix().str();
        }
        for (const char* f : {"memcpy", "memset"}) {
          std::string arg = FirstArgOf(code, f);
          if (arg.empty()) continue;
          const int taint = TaintOf(fn, arg);
          if (taint == 0) continue;
          fn.pm_stores.push_back(
              {static_cast<int>(li), std::string(f) + "()"});
          if (taint == 2) flag_remote(std::string(f) + "()");
        }
        // Raw stores through a tainted pointer: `v->f = `, `v[i] = `,
        // `*v = ` (compound assignments included; == excluded). A line
        // that taints `v` IS its declaration/rebinding — the `*` there is
        // the declarator, not a dereference — so it is never a store.
        for (const Taint& v : fn.tainted) {
          if (std::find(tainted_here.begin(), tainted_here.end(), v.name) !=
              tainted_here.end()) {
            continue;
          }
          std::regex store(
              R"((\*\s*)?\b)" + v.name +
              R"(\b\s*(->\s*[A-Za-z_][A-Za-z0-9_]*|\[[^\]]*\])*\s*([|&^+\-*\/%]?=)([^=]|$))");
          std::smatch sm;
          if (std::regex_search(code, sm, store)) {
            // Require either a dereference form or a plain `*v =`.
            bool deref = sm[1].matched || sm[2].matched;
            if (deref) {
              fn.pm_stores.push_back({static_cast<int>(li),
                                      "store through '" + v.name + "'"});
              if (v.remote) flag_remote("store through '" + v.name + "'");
              break;
            }
          }
        }
      }

      // rule 4: hot-path.
      if (fn.is_hot &&
          !HasNearbyComment(lines, static_cast<int>(li), "fs-lint: hot-ok(")) {
        static const char* const kAllocCalls[] = {
            "malloc", "calloc", "realloc", "push_back", "emplace_back",
            "resize", "reserve"};
        for (const char* f : kAllocCalls) {
          if (ContainsCall(code, f)) {
            out.push_back({path, static_cast<int>(li) + 1, "hot-path",
                           std::string(f) +
                               "() in FS_HOT function '" + fn.name_hint +
                               "' (serving paths are allocation-free)"});
          }
        }
        if (ContainsWord(code, "new") &&
            code.find("new_") == std::string::npos) {
          out.push_back({path, static_cast<int>(li) + 1, "hot-path",
                         "operator new in FS_HOT function '" + fn.name_hint +
                             "'"});
        }
        static const char* const kLockTokens[] = {
            "lock_guard", "unique_lock", "shared_lock", "scoped_lock",
            "LockGuard",  "SharedLockGuard"};
        for (const char* t : kLockTokens) {
          if (ContainsWord(code, t)) {
            out.push_back({path, static_cast<int>(li) + 1, "hot-path",
                           std::string(t) + " in FS_HOT function '" +
                               fn.name_hint +
                               "' (blocking locks are banned; try_lock is "
                               "allowed)"});
          }
        }
        // `.lock()` / `->lock()` but not `try_lock()` / `unlock()`.
        static const std::regex kBlockingLock(
            R"((\.|->)lock\s*\(\s*\))");
        if (std::regex_search(code, kBlockingLock)) {
          out.push_back({path, static_cast<int>(li) + 1, "hot-path",
                         "blocking lock() call in FS_HOT function '" +
                             fn.name_hint + "'"});
        }
      }
    }

    // --- brace / scope tracking ---
    for (char c : code) {
      if (c == '{') {
        if (in_function) {
          scopes.push_back(Scope::kOther);  // plain block inside a body
        } else {
          std::string h = std::regex_replace(header, kTemplateHdr, " ");
          bool type_kw = ContainsWord(h, "class") ||
                         ContainsWord(h, "struct") ||
                         ContainsWord(h, "union") || ContainsWord(h, "enum");
          bool ns_kw = ContainsWord(h, "namespace");
          // Trailing '=' marks a brace initializer.
          std::string t = h;
          while (!t.empty() && std::isspace(static_cast<unsigned char>(
                                   t.back()))) {
            t.pop_back();
          }
          bool initializer = !t.empty() && t.back() == '=';
          bool has_parens = h.find('(') != std::string::npos;
          if (ns_kw) {
            scopes.push_back(Scope::kNamespace);
          } else if (type_kw) {
            scopes.push_back(Scope::kType);
          } else if (has_parens && !initializer) {
            scopes.push_back(Scope::kFunction);
            in_function = true;
            fn = FunctionState();
            fn.start_line = static_cast<int>(li);
            fn.body_depth = static_cast<int>(scopes.size());
            fn.is_hot = ContainsWord(h, "FS_HOT");
            fn.name_hint = NameHint(h);
            // A deferred-fence waiver may sit just above the signature
            // as well as anywhere in the body.
            fn.fence_waived = HasNearbyComment(
                lines, static_cast<int>(li), "fs-lint: deferred-fence(");
          } else {
            scopes.push_back(Scope::kOther);
          }
        }
        header.clear();
      } else if (c == '}') {
        if (!scopes.empty()) {
          if (scopes.back() == Scope::kFunction) {
            finish_function(static_cast<int>(li));
            in_function = false;
          }
          scopes.pop_back();
        }
        header.clear();
      } else if (c == ';') {
        header.clear();
      } else {
        header += c;
      }
    }
  }
  return out;
}

std::vector<Violation> LintPath(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return LintFile(path, ss.str());
}

std::vector<Violation> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  std::vector<std::string> files;
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(e.path().string());
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    std::vector<Violation> v = LintPath(f);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::string Format(const Violation& v) {
  std::ostringstream ss;
  ss << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return ss.str();
}

}  // namespace fslint
