// fs_lint interprocedural function summaries.
//
// Pass 1 of the analyzer parses every file under the analysis roots and
// records, per function definition, the facts rules need at call sites:
//
//  * may_persist       — some path issues a Persist/PersistFence (directly
//                        or through a callee).
//  * always_fences     — every path from entry to exit crosses a Fence /
//                        PersistFence (directly or through a callee); a
//                        call to such a helper discharges pending persists
//                        in the caller exactly like a literal Fence().
//  * may_leave_unfenced— the function carries a `fs-lint: deferred-fence`
//                        waiver: it intentionally leaves persisted bytes
//                        unfenced and the caller owns the fence. A call
//                        site to it *generates* a pending-persist fact.
//  * reads_log_unpinned— the function carries a `fs-lint: epoch-held`
//                        annotation: it decodes log memory and requires
//                        the caller to hold an epoch pin across the call.
//  * acquires          — every lock capability the function may acquire
//                        anywhere inside (transitively through callees);
//                        feeds the global lock-order graph.
//
// The database is keyed by the *base* callee name (`AppendBatch`, not
// `OpLog::AppendBatch`) because call sites are matched textually without
// type resolution. Same-named functions merge with the safe direction:
// OR for may-facts, AND for must-facts. Persist/Fence/PersistFence are
// hardcoded intrinsics and never consult the database.

#ifndef FLATSTORE_TOOLS_FS_LINT_SUMMARY_H_
#define FLATSTORE_TOOLS_FS_LINT_SUMMARY_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg.h"

namespace fslint {

struct FnSummary {
  bool defined = false;
  bool may_persist = false;
  bool always_fences = false;
  bool may_leave_unfenced = false;
  bool reads_log_unpinned = false;
  std::set<std::string> acquires;  // qualified capability names
  int defs = 0;                    // how many definitions merged in
};

class SummaryDb {
 public:
  // Builds summaries for every function in `files` and iterates the
  // call-graph facts to a fixed point.
  void Build(const std::vector<const ParsedFile*>& files);

  const FnSummary* Find(const std::string& base_name) const;

  static bool IsPersistIntrinsic(const std::string& n) {
    return n == "Persist" || n == "PersistFence";
  }
  static bool IsFenceIntrinsic(const std::string& n) {
    return n == "Fence" || n == "PersistFence";
  }

  // Call-site queries folding intrinsics over the database.
  bool CalleePersists(const std::string& n) const;
  bool CalleeAlwaysFences(const std::string& n) const;
  bool CalleeLeavesUnfenced(const std::string& n) const;
  bool CalleeReadsLog(const std::string& n) const;
  const std::set<std::string>* CalleeAcquires(const std::string& n) const;

  size_t size() const { return by_name_.size(); }

 private:
  std::map<std::string, FnSummary> by_name_;
};

// ---- shared token-scan helpers ------------------------------------------

// True when token index `tok` of `fn`'s file lies inside a lifted lambda
// body; the enclosing function's scanners must skip such tokens.
bool InLambdaSpan(const FunctionDef& fn, int tok);

// Invokes `cb(name, tok_index)` for every call-looking site (`ident (`)
// inside `node`, skipping control keywords and lambda spans.
void ForEachCall(const FunctionDef& fn, const CfgNode& node,
                 const LexFile& lex,
                 const std::function<void(const std::string&, int)>& cb);

// Renders the object expression ending just before token `end` (exclusive)
// as text: identifier chains joined by `::`, `.`, `->`. `this->` prefixes
// are stripped so `this->mu_` and `mu_` name the same capability.
std::string ExprBefore(const LexFile& lex, int end);

struct LockEvent {
  enum Kind { kAcquire, kRelease, kScopedAcquire } kind;
  bool shared = false;
  std::string cap;  // unqualified expression text ("mu_", "node.latch")
  int tok = 0;
  int line = 0;  // 0-based
};

// Finds lock()/unlock()/lock_shared()/unlock_shared() calls and scoped
// guard constructions (LockGuard, SharedLockGuard, std::lock_guard,
// unique_lock, shared_lock, scoped_lock) inside `node`. try_lock is never
// an event. Deferred/adopt tag arguments are not capabilities.
std::vector<LockEvent> ScanLockEvents(const FunctionDef& fn,
                                      const CfgNode& node,
                                      const LexFile& lex);

}  // namespace fslint

#endif  // FLATSTORE_TOOLS_FS_LINT_SUMMARY_H_
