// Counters of persistence traffic issued against an emulated PM pool.
//
// Several of the paper's claims are about *counts* rather than time (e.g.,
// batching reduces a batch of N Puts from 3N persists to N+2). Unit tests
// assert those counts directly from these statistics.
//
// fs-lint: relaxed-default(every atomic in this file is a monotonic stat counter read after the measured phase quiesces; no cross-thread ordering is implied by any of them)

#ifndef FLATSTORE_PM_PM_STATS_H_
#define FLATSTORE_PM_PM_STATS_H_

#include <atomic>
#include <cstdint>

namespace flatstore {
namespace pm {

// Victim live-ratio histogram granularity (log cleaning, §3.4): bucket i
// counts retired victims whose live-byte ratio at pick time fell in
// [i/10, (i+1)/10).
inline constexpr int kGcLiveHistoBuckets = 10;

// Thread-safe counters; cheap relaxed increments on the persist path.
class PmStats {
 public:
  // Plain-value snapshot of the counters.
  struct Snapshot {
    uint64_t persist_calls = 0;   // Persist() invocations
    uint64_t lines_flushed = 0;   // cachelines written to media
    uint64_t fences = 0;          // Fence() invocations
    uint64_t bytes_persisted = 0; // sum of Persist() range lengths
    // Epoch-based retirement (common/epoch.h): global-epoch advances,
    // deferred chunk frees executed, and the deferred queue's high-water
    // mark — the reclamation lag a stalled reader can build up.
    uint64_t epoch_advances = 0;
    uint64_t epoch_deferred_frees = 0;
    uint64_t epoch_deferred_hwm = 0;
    // Log cleaning write-amplification accounting (§3.4). Relocated =
    // survivor bytes the cleaner re-appended; reclaimed = committed data
    // bytes of retired victim chunks. The cleaner's write amplification
    // is relocated/reclaimed — also the survivor-bytes-per-reclaimed-byte
    // segregation-effectiveness metric; split per survivor temperature.
    uint64_t gc_bytes_relocated = 0;
    uint64_t gc_bytes_reclaimed = 0;
    uint64_t gc_survivor_bytes_hot = 0;
    uint64_t gc_survivor_bytes_cold = 0;
    uint64_t gc_victims = 0;  // victim chunks retired
    uint64_t gc_victim_live_histo[kGcLiveHistoBuckets] = {};
  };

  void AddPersist(uint64_t lines, uint64_t bytes) {
    persist_calls_.fetch_add(1, std::memory_order_relaxed);
    lines_flushed_.fetch_add(lines, std::memory_order_relaxed);
    bytes_persisted_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void AddFence() { fences_.fetch_add(1, std::memory_order_relaxed); }

  void AddEpochAdvance() {
    epoch_advances_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddDeferredFrees(uint64_t n) {
    epoch_deferred_frees_.fetch_add(n, std::memory_order_relaxed);
  }
  void UpdateEpochDeferredHwm(uint64_t depth) {
    uint64_t hwm = epoch_deferred_hwm_.load(std::memory_order_relaxed);
    while (depth > hwm && !epoch_deferred_hwm_.compare_exchange_weak(
                              hwm, depth, std::memory_order_relaxed)) {
    }
  }

  // --- log-cleaning write amplification (§3.4) ---
  void AddGcRelocated(uint64_t bytes, bool cold) {
    gc_bytes_relocated_.fetch_add(bytes, std::memory_order_relaxed);
    (cold ? gc_survivor_bytes_cold_ : gc_survivor_bytes_hot_)
        .fetch_add(bytes, std::memory_order_relaxed);
  }
  // One victim retired: `committed` data bytes return to the allocator,
  // `live_ratio` is the victim's live-byte ratio when it was picked.
  void AddGcVictimRetired(uint64_t committed, double live_ratio) {
    gc_bytes_reclaimed_.fetch_add(committed, std::memory_order_relaxed);
    gc_victims_.fetch_add(1, std::memory_order_relaxed);
    int b = static_cast<int>(live_ratio * kGcLiveHistoBuckets);
    if (b < 0) b = 0;
    if (b >= kGcLiveHistoBuckets) b = kGcLiveHistoBuckets - 1;
    gc_victim_live_histo_[b].fetch_add(1, std::memory_order_relaxed);
  }

  // Returns current values.
  Snapshot Get() const {
    Snapshot s;
    s.persist_calls = persist_calls_.load(std::memory_order_relaxed);
    s.lines_flushed = lines_flushed_.load(std::memory_order_relaxed);
    s.fences = fences_.load(std::memory_order_relaxed);
    s.bytes_persisted = bytes_persisted_.load(std::memory_order_relaxed);
    s.epoch_advances = epoch_advances_.load(std::memory_order_relaxed);
    s.epoch_deferred_frees =
        epoch_deferred_frees_.load(std::memory_order_relaxed);
    s.epoch_deferred_hwm =
        epoch_deferred_hwm_.load(std::memory_order_relaxed);
    s.gc_bytes_relocated =
        gc_bytes_relocated_.load(std::memory_order_relaxed);
    s.gc_bytes_reclaimed =
        gc_bytes_reclaimed_.load(std::memory_order_relaxed);
    s.gc_survivor_bytes_hot =
        gc_survivor_bytes_hot_.load(std::memory_order_relaxed);
    s.gc_survivor_bytes_cold =
        gc_survivor_bytes_cold_.load(std::memory_order_relaxed);
    s.gc_victims = gc_victims_.load(std::memory_order_relaxed);
    for (int i = 0; i < kGcLiveHistoBuckets; i++) {
      s.gc_victim_live_histo[i] =
          gc_victim_live_histo_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  // Zeroes all counters.
  void Reset() {
    persist_calls_.store(0, std::memory_order_relaxed);
    lines_flushed_.store(0, std::memory_order_relaxed);
    fences_.store(0, std::memory_order_relaxed);
    bytes_persisted_.store(0, std::memory_order_relaxed);
    epoch_advances_.store(0, std::memory_order_relaxed);
    epoch_deferred_frees_.store(0, std::memory_order_relaxed);
    epoch_deferred_hwm_.store(0, std::memory_order_relaxed);
    gc_bytes_relocated_.store(0, std::memory_order_relaxed);
    gc_bytes_reclaimed_.store(0, std::memory_order_relaxed);
    gc_survivor_bytes_hot_.store(0, std::memory_order_relaxed);
    gc_survivor_bytes_cold_.store(0, std::memory_order_relaxed);
    gc_victims_.store(0, std::memory_order_relaxed);
    for (auto& b : gc_victim_live_histo_) {
      b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> persist_calls_{0};
  std::atomic<uint64_t> lines_flushed_{0};
  std::atomic<uint64_t> fences_{0};
  std::atomic<uint64_t> bytes_persisted_{0};
  std::atomic<uint64_t> epoch_advances_{0};
  std::atomic<uint64_t> epoch_deferred_frees_{0};
  std::atomic<uint64_t> epoch_deferred_hwm_{0};
  std::atomic<uint64_t> gc_bytes_relocated_{0};
  std::atomic<uint64_t> gc_bytes_reclaimed_{0};
  std::atomic<uint64_t> gc_survivor_bytes_hot_{0};
  std::atomic<uint64_t> gc_survivor_bytes_cold_{0};
  std::atomic<uint64_t> gc_victims_{0};
  std::atomic<uint64_t> gc_victim_live_histo_[kGcLiveHistoBuckets] = {};
};

// Difference of two snapshots (after - before).
inline PmStats::Snapshot Delta(const PmStats::Snapshot& before,
                               const PmStats::Snapshot& after) {
  PmStats::Snapshot d;
  d.persist_calls = after.persist_calls - before.persist_calls;
  d.lines_flushed = after.lines_flushed - before.lines_flushed;
  d.fences = after.fences - before.fences;
  d.bytes_persisted = after.bytes_persisted - before.bytes_persisted;
  d.gc_bytes_relocated = after.gc_bytes_relocated - before.gc_bytes_relocated;
  d.gc_bytes_reclaimed = after.gc_bytes_reclaimed - before.gc_bytes_reclaimed;
  d.gc_survivor_bytes_hot =
      after.gc_survivor_bytes_hot - before.gc_survivor_bytes_hot;
  d.gc_survivor_bytes_cold =
      after.gc_survivor_bytes_cold - before.gc_survivor_bytes_cold;
  d.gc_victims = after.gc_victims - before.gc_victims;
  for (int i = 0; i < kGcLiveHistoBuckets; i++) {
    d.gc_victim_live_histo[i] =
        after.gc_victim_live_histo[i] - before.gc_victim_live_histo[i];
  }
  return d;
}

// The cleaner's write amplification: survivor bytes rewritten per byte of
// victim data reclaimed (0 when nothing was reclaimed yet).
inline double GcWriteAmp(const PmStats::Snapshot& s) {
  return s.gc_bytes_reclaimed == 0
             ? 0.0
             : static_cast<double>(s.gc_bytes_relocated) /
                   static_cast<double>(s.gc_bytes_reclaimed);
}

}  // namespace pm
}  // namespace flatstore

#endif  // FLATSTORE_PM_PM_STATS_H_
