#include "pm/pm_pool.h"

#include <mutex>

namespace flatstore {
namespace pm {

const char* PmPool::CrashModeName(CrashMode mode) {
  switch (mode) {
    case CrashMode::kClean:
      return "clean";
    case CrashMode::kTorn:
      return "torn";
    case CrashMode::kUnordered:
      return "unordered";
    case CrashMode::kEviction:
      return "eviction";
  }
  return "?";
}

PmPool::PmPool(const Options& options)
    : size_(AlignUp(options.size, 4ull << 20)),
      num_sockets_(options.num_sockets),
      device_(options.device) {
  FLATSTORE_CHECK(num_sockets_ >= 1 && num_sockets_ <= vt::kMaxSockets);
  if (device_ != nullptr) {
    FLATSTORE_CHECK_GE(device_->num_sockets(), num_sockets_)
        << "pool spans more sockets than the device models";
  }
  socket_span_ =
      AlignUp(size_ / static_cast<uint64_t>(num_sockets_), 4ull << 20);
  mem_ = NewPageAlignedZeroed(size_);
  if (options.crash_tracking) {
    shadow_ = NewPageAlignedZeroed(size_);
  }
}

void PmPool::Persist(const void* p, uint64_t len) {
  if (len == 0) return;
  const uint64_t begin = OffsetOf(p);
  const uint64_t first = CachelineAlignDown(begin);
  const uint64_t last = CachelineAlignDown(begin + len - 1);
  const uint64_t lines = (last - first) / kCachelineSize + 1;
  stats_.AddPersist(lines, len);

  vt::Clock* clock = vt::CurrentClock();
  for (uint64_t off = first; off <= last; off += kCachelineSize) {
    // Crash model: the line reaches the durable image only while the
    // flush budget lasts, subject to the active crash mode.
    if (shadow_) CrashTrackLine(off);
    // Timing model.
    if (clock != nullptr) {
      clock->Advance(vt::kClwbIssueCost);
      if (device_ != nullptr) {
        const int socket = SocketOf(off);
        uint64_t issue = clock->now();
        // A flush targeting another socket's DIMMs crosses the
        // inter-socket link before the remote controller accepts it.
        if (num_sockets_ > 1 && socket != clock->socket()) {
          issue += vt::kRemoteSocketPersistPenalty;
        }
        uint64_t completion = device_->FlushLine(off, issue, socket);
        clock->RaisePendingFence(completion + vt::kPmFlushLatency);
      }
    }
  }
}

void PmPool::CrashTrackLine(uint64_t off) {
  bool durable = true;
  bool exhausted_now = false;
  // relaxed: the budget is a test-only flush counter; the CAS below only
  // needs atomicity, not ordering with the data being flushed.
  int64_t b = flush_budget_.load(std::memory_order_relaxed);
  if (b >= 0) {
    while (b > 0 && !flush_budget_.compare_exchange_weak(
                        b, b - 1, std::memory_order_relaxed)) {
    }
    durable = b > 0;
    // This flush took the budget from 1 to 0: it is the line the power
    // cut catches, and the point where mode-specific damage resolves.
    exhausted_now = (b == 1);
  }
  switch (crash_mode_) {
    case CrashMode::kClean:
      if (durable) {
        std::memcpy(shadow_.get() + off, mem_.get() + off, kCachelineSize);
      }
      break;
    case CrashMode::kTorn:
      if (durable) {
        if (exhausted_now) {
          TearLineIntoShadow(off);
        } else {
          std::memcpy(shadow_.get() + off, mem_.get() + off, kCachelineSize);
        }
      }
      break;
    case CrashMode::kUnordered:
      if (durable) {
        LockGuard<SpinLock> g(pending_lock_);
        PendingLine& pl = pending_.emplace_back();
        pl.off = off;
        std::memcpy(pl.data, mem_.get() + off, kCachelineSize);
        if (exhausted_now) ResolvePendingAtLossLocked();
      }
      break;
    case CrashMode::kEviction:
      if (durable) {
        std::memcpy(shadow_.get() + off, mem_.get() + off, kCachelineSize);
      }
      if (exhausted_now) ResolveEviction();
      break;
  }
  if (exhausted_now) loss_resolved_ = true;
}

uint64_t PmPool::NextCrashRand() {
  // splitmix64 — cheap, and a (mode, seed) pair fully determines every
  // draw, which is what makes explorer repro lines deterministic.
  uint64_t z = (crash_rng_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void PmPool::TearLineIntoShadow(uint64_t off) {
  constexpr int kWords = kCachelineSize / 8;
  const char* src = mem_.get() + off;
  char* dst = shadow_.get() + off;
  const uint64_t r = NextCrashRand();
  if (r & 1) {
    // Aligned prefix of 0..8 words — the common store-buffer drain shape.
    const uint64_t words = (r >> 1) % (kWords + 1);
    std::memcpy(dst, src, words * 8);
  } else {
    // Arbitrary 8-byte-word subset of the line.
    const uint64_t mask = (r >> 1) & 0xFF;
    for (int w = 0; w < kWords; w++) {
      if (mask & (1ull << w)) std::memcpy(dst + w * 8, src + w * 8, 8);
    }
  }
}

void PmPool::CommitPendingLocked() {
  for (const PendingLine& pl : pending_) {
    std::memcpy(shadow_.get() + pl.off, pl.data, kCachelineSize);
  }
  pending_.clear();
}

void PmPool::ResolvePendingAtLossLocked() {
  // The cut landed between a Persist and its Fence: each in-flight line
  // independently may or may not have drained, still in issue order.
  for (const PendingLine& pl : pending_) {
    if (NextCrashRand() & 1) {
      std::memcpy(shadow_.get() + pl.off, pl.data, kCachelineSize);
    }
  }
  pending_.clear();
}

void PmPool::ResolveEviction() {
  // Every line whose live content was never flushed may persist anyway.
  // The RNG is consumed only for dirty lines, so the draw sequence depends
  // only on the dirty set — deterministic for a deterministic workload.
  for (uint64_t off = 0; off < size_; off += kCachelineSize) {
    char* s = shadow_.get() + off;
    const char* m = mem_.get() + off;
    if (std::memcmp(m, s, kCachelineSize) != 0 && (NextCrashRand() & 1)) {
      std::memcpy(s, m, kCachelineSize);
    }
  }
  loss_resolved_ = true;
}

void PmPool::ChargeRead(const void* p, uint64_t len) {
  vt::Clock* clock = vt::CurrentClock();
  if (clock == nullptr) return;
  clock->AdvanceTo(ChargeReadAt(p, len, clock->now()));
}

uint64_t PmPool::ChargeReadAt(const void* p, uint64_t len,
                              uint64_t issue_time) {
  const uint64_t begin = OffsetOf(p);
  const int socket = SocketOf(begin);
  // A load homed on another socket pays the link round trip on top of the
  // media read; the lines of one call pipeline, so the surcharge applies
  // once per dereference, not per line.
  const uint64_t surcharge =
      (num_sockets_ > 1 && socket != vt::CurrentSocket())
          ? vt::kRemoteSocketLoadPenalty
          : 0;
  if (device_ == nullptr) {
    return issue_time + vt::kPmReadLatency + surcharge;
  }
  uint64_t lines = len == 0 ? 1 : CachelineSpan(begin, len);
  if (lines > 4) lines = 4;  // streaming reads pipeline beyond one block
  uint64_t completion = issue_time;
  for (uint64_t i = 0; i < lines; i++) {
    completion = device_->ReadLine(CachelineAlignDown(begin) +
                                       i * kCachelineSize,
                                   issue_time, socket);
  }
  return completion + surcharge;
}

void PmPool::Fence() {
  stats_.AddFence();
  if (shadow_ && crash_mode_ == CrashMode::kUnordered) {
    LockGuard<SpinLock> g(pending_lock_);
    CommitPendingLocked();
  }
  if (vt::Clock* clock = vt::CurrentClock()) {
    clock->AdvanceTo(clock->pending_fence());
    clock->ClearPendingFence();
    clock->Advance(vt::kFenceCost);
  }
}

void PmPool::SetCrashMode(CrashMode mode, uint64_t seed) {
  FLATSTORE_CHECK(shadow_ != nullptr) << "crash modes require crash_tracking";
  crash_mode_ = mode;
  // Decorrelate nearby seeds; seed 0 is as good as any other.
  crash_rng_ = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  loss_resolved_ = false;
  LockGuard<SpinLock> g(pending_lock_);
  pending_.clear();
}

void PmPool::SimulateCrash() {
  FLATSTORE_CHECK(shadow_ != nullptr)
      << "SimulateCrash requires crash_tracking";
  // If the power cut is this crash itself (budget never exhausted),
  // resolve in-flight adversarial state as of this instant: unfenced
  // flushes may drain in any subset, dirty lines may evict.
  if (!loss_resolved_) {
    if (crash_mode_ == CrashMode::kUnordered) {
      LockGuard<SpinLock> g(pending_lock_);
      ResolvePendingAtLossLocked();
    } else if (crash_mode_ == CrashMode::kEviction) {
      ResolveEviction();
    }
  }
  {
    LockGuard<SpinLock> g(pending_lock_);
    pending_.clear();
  }
  std::memcpy(mem_.get(), shadow_.get(), size_);
  // relaxed: re-arming the test budget; no ordering required.
  flush_budget_.store(-1, std::memory_order_relaxed);
  loss_resolved_ = false;
}

}  // namespace pm
}  // namespace flatstore
