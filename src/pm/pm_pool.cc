#include "pm/pm_pool.h"

namespace flatstore {
namespace pm {

PmPool::PmPool(const Options& options)
    : size_(AlignUp(options.size, 4ull << 20)), device_(options.device) {
  mem_ = std::make_unique<char[]>(size_);
  std::memset(mem_.get(), 0, size_);
  if (options.crash_tracking) {
    shadow_ = std::make_unique<char[]>(size_);
    std::memset(shadow_.get(), 0, size_);
  }
}

void PmPool::Persist(const void* p, uint64_t len) {
  if (len == 0) return;
  const uint64_t begin = OffsetOf(p);
  const uint64_t first = CachelineAlignDown(begin);
  const uint64_t last = CachelineAlignDown(begin + len - 1);
  const uint64_t lines = (last - first) / kCachelineSize + 1;
  stats_.AddPersist(lines, len);

  vt::Clock* clock = vt::CurrentClock();
  for (uint64_t off = first; off <= last; off += kCachelineSize) {
    // Crash model: the line reaches the durable image only while the
    // flush budget lasts.
    if (shadow_) {
      bool durable = true;
      int64_t b = flush_budget_.load(std::memory_order_relaxed);
      if (b >= 0) {
        while (b > 0 && !flush_budget_.compare_exchange_weak(
                            b, b - 1, std::memory_order_relaxed)) {
        }
        durable = b > 0;
      }
      if (durable) {
        std::memcpy(shadow_.get() + off, mem_.get() + off, kCachelineSize);
      }
    }
    // Timing model.
    if (clock != nullptr) {
      clock->Advance(vt::kClwbIssueCost);
      if (device_ != nullptr) {
        uint64_t completion = device_->FlushLine(off, clock->now());
        clock->RaisePendingFence(completion + vt::kPmFlushLatency);
      }
    }
  }
}

void PmPool::ChargeRead(const void* p, uint64_t len) {
  vt::Clock* clock = vt::CurrentClock();
  if (clock == nullptr) return;
  if (device_ == nullptr) {
    clock->Advance(vt::kPmReadLatency);
    return;
  }
  const uint64_t begin = OffsetOf(p);
  uint64_t lines = len == 0 ? 1 : CachelineSpan(begin, len);
  if (lines > 4) lines = 4;  // streaming reads pipeline beyond one block
  uint64_t completion = 0;
  for (uint64_t i = 0; i < lines; i++) {
    completion = device_->ReadLine(CachelineAlignDown(begin) +
                                       i * kCachelineSize,
                                   clock->now());
  }
  clock->AdvanceTo(completion);
}

void PmPool::Fence() {
  stats_.AddFence();
  if (vt::Clock* clock = vt::CurrentClock()) {
    clock->AdvanceTo(clock->pending_fence());
    clock->ClearPendingFence();
    clock->Advance(vt::kFenceCost);
  }
}

void PmPool::SimulateCrash() {
  FLATSTORE_CHECK(shadow_ != nullptr)
      << "SimulateCrash requires crash_tracking";
  std::memcpy(mem_.get(), shadow_.get(), size_);
  flush_budget_.store(-1, std::memory_order_relaxed);
}

}  // namespace pm
}  // namespace flatstore
