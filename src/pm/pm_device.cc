// fs-lint: relaxed-default(every atomic here is emulated-device timing state — per-DIMM work/tmax clocks and write-cache slots of the latency model; the model is advisory and tolerates stale reads by design, so no site implies cross-thread ordering)

#include "pm/pm_device.h"

#include <algorithm>

#include "common/cacheline.h"
#include "common/hash.h"
#include "common/logging.h"

namespace flatstore {
namespace pm {

using vt::kPmBlockService;
using vt::kPmCoalescedService;
using vt::kPmDimms;
using vt::kPmInPlaceDelay;
using vt::kPmInPlaceWindow;
using vt::kPmInterleave;
using vt::kPmReadLatency;
using vt::kPmSeqBlockService;
using vt::kPmWcEntries;
using vt::kPmWcWindow;

PmDevice::PmDevice(int num_sockets)
    : num_sockets_(num_sockets), recent_lines_(kLineTableSize) {
  FLATSTORE_CHECK(num_sockets >= 1 && num_sockets <= vt::kMaxSockets);
}

void PmDevice::Reset() {
  for (auto& d : dimms_) {
    d.work.store(0, std::memory_order_relaxed);
    d.tmax.store(0, std::memory_order_relaxed);
    d.wc_victim.store(0, std::memory_order_relaxed);
    for (auto& e : d.wc) {
      e.block.store(UINT64_MAX, std::memory_order_relaxed);
      e.expire.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& s : recent_lines_) {
    s.line.store(UINT64_MAX, std::memory_order_relaxed);
    s.time.store(0, std::memory_order_relaxed);
  }
}

uint64_t PmDevice::FlushLine(uint64_t line_off, uint64_t issue_time,
                             int socket) {
  FLATSTORE_DCHECK(socket >= 0 && socket < num_sockets_);
  const uint64_t line = CachelineIndex(line_off);
  const uint64_t block = PmBlockIndex(line_off);
  Dimm& dimm = DimmFor(socket, line_off);

  // Repeated-flush-same-line penalty (paper §2.3, ~800 ns). The table is a
  // direct-mapped cache keyed by line index; collisions simply evict.
  LineSlot& slot = recent_lines_[HashKey(line) & (kLineTableSize - 1)];
  if (slot.line.load(std::memory_order_relaxed) == line) {
    uint64_t last = slot.time.load(std::memory_order_relaxed);
    if (issue_time < last + kPmInPlaceWindow) {
      issue_time = last + kPmInPlaceDelay;
    }
  }

  // Write-combining buffer lookup: same open block coalesces, the block
  // immediately after an open block continues a sequential stream.
  uint64_t service = kPmBlockService;
  WcEntry* update = nullptr;
  for (auto& e : dimm.wc) {
    uint64_t b = e.block.load(std::memory_order_relaxed);
    if (b == UINT64_MAX) continue;
    if (issue_time > e.expire.load(std::memory_order_relaxed)) continue;
    if (b == block) {
      service = kPmCoalescedService;
      update = &e;
      break;
    }
    if (b + 1 == block) {
      service = kPmSeqBlockService;
      update = &e;
      break;
    }
  }

  const uint64_t completion =
      issue_time + service + QueueDelay(dimm, issue_time, service);

  // Update / install the open-block entry.
  if (update == nullptr) {
    uint32_t v = dimm.wc_victim.fetch_add(1, std::memory_order_relaxed);
    update = &dimm.wc[v % kPmWcEntries];
  }
  update->block.store(block, std::memory_order_relaxed);
  update->expire.store(completion + kPmWcWindow, std::memory_order_relaxed);

  slot.line.store(line, std::memory_order_relaxed);
  slot.time.store(completion, std::memory_order_relaxed);
  return completion;
}

uint64_t PmDevice::QueueDelay(Dimm& dimm, uint64_t issue_time,
                              uint64_t service) {
  // Utilization-based queueing (see header): rho = issued service over
  // the simulated span; delay = service * rho / (1 - rho). The span floor
  // keeps start-of-run estimates sane.
  constexpr uint64_t kUtilSpanFloor = 20000;  // 20 us
  uint64_t tm = dimm.tmax.load(std::memory_order_relaxed);
  while (issue_time > tm &&
         !dimm.tmax.compare_exchange_weak(tm, issue_time,
                                          std::memory_order_relaxed)) {
  }
  const uint64_t work =
      dimm.work.fetch_add(service, std::memory_order_relaxed) + service;
  const double span = static_cast<double>(
      std::max(std::max(tm, issue_time), kUtilSpanFloor));
  double rho = static_cast<double>(work) / span;
  if (rho > 0.98) rho = 0.98;
  return static_cast<uint64_t>(static_cast<double>(service) * rho /
                               (1.0 - rho));
}

uint64_t PmDevice::ReadLine(uint64_t line_off, uint64_t issue_time,
                            int socket) {
  FLATSTORE_DCHECK(socket >= 0 && socket < num_sockets_);
  Dimm& dimm = DimmFor(socket, line_off);
  return issue_time + kPmReadLatency +
         QueueDelay(dimm, issue_time, vt::kPmReadService);
}

}  // namespace pm
}  // namespace flatstore
