// Emulated persistent-memory pool.
//
// A PmPool is a contiguous DRAM region standing in for a DAX-mapped Optane
// namespace. Code mutates it through ordinary pointers and then makes
// ranges durable with Persist()/Fence(), mirroring clwb+sfence.
//
// Two orthogonal capabilities:
//
//  * Timing (optional `device`): every flushed cacheline is charged to the
//    calling core's virtual clock via the PmDevice model. Fence() advances
//    the clock to the completion of all outstanding flushes.
//
//  * Crash model (optional `crash_tracking`): the pool keeps a shadow image
//    holding only data that was explicitly persisted. SimulateCrash()
//    rolls the live region back to the shadow — every store that was not
//    followed by Persist()+Fence() is lost, at cacheline granularity. This
//    is the *adversarial* persistence model (real hardware may persist
//    more via cache evictions, never less), which is exactly what crash-
//    consistency tests want. A flush *budget* lets tests cut power after
//    an arbitrary number of line flushes, including mid-operation.

#ifndef FLATSTORE_PM_PM_POOL_H_
#define FLATSTORE_PM_PM_POOL_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/cacheline.h"
#include "common/logging.h"
#include "pm/pm_device.h"
#include "pm/pm_stats.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace pm {

// An emulated PM region. Thread-safe for Persist/Fence on disjoint lines
// (concurrent persists of the same line would be an engine-level race).
class PmPool {
 public:
  struct Options {
    // Pool size in bytes (rounded up to 4 MB).
    uint64_t size = 64ull << 20;
    // Keep a shadow image for SimulateCrash().
    bool crash_tracking = false;
    // Optional timing model; flushes are free when null.
    PmDevice* device = nullptr;
  };

  explicit PmPool(const Options& options);
  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  // Base address / size of the emulated region.
  char* base() const { return mem_.get(); }
  uint64_t size() const { return size_; }

  // Pointer <-> pool-offset conversion. Offsets are what gets stored in
  // PM-resident pointers (`Ptr` fields) so pools are relocatable.
  uint64_t OffsetOf(const void* p) const {
    auto off = static_cast<uint64_t>(static_cast<const char*>(p) - mem_.get());
    FLATSTORE_DCHECK(off < size_);
    return off;
  }
  void* At(uint64_t off) const {
    FLATSTORE_DCHECK(off < size_);
    return mem_.get() + off;
  }
  template <typename T>
  T* PtrAt(uint64_t off) const {
    return reinterpret_cast<T*>(At(off));
  }

  // Flushes every cacheline overlapping [p, p+len): charges clwb issue
  // cost, sends each line to the device model, and (in crash mode) copies
  // the lines into the shadow image. Durability is only guaranteed after
  // the next Fence().
  void Persist(const void* p, uint64_t len);

  // Charges a synchronous read of [p, p+len) from PM media: one device
  // read per touched cacheline (capped at one 256 B block's worth of
  // lines per call for large values — streaming reads pipeline), sharing
  // DIMM bandwidth with writes. No-op without a bound clock/device.
  void ChargeRead(const void* p, uint64_t len);

  // Orders all previously issued flushes (sfence): advances the calling
  // core's clock to the latest flush completion.
  void Fence();

  // Persist + Fence (the common "persist this datum now" pattern).
  void PersistFence(const void* p, uint64_t len) {
    Persist(p, len);
    Fence();
  }

  // --- crash model ---

  // True if this pool keeps a shadow image.
  bool crash_tracking() const { return shadow_ != nullptr; }

  // Rolls the live region back to the last persisted image. Caller must
  // guarantee no concurrent access. Also resets the flush budget.
  void SimulateCrash();

  // After `n` more line flushes, the pool "loses power": subsequent
  // flushes stop reaching the shadow image. Pass a negative value to
  // disable the budget (default).
  void SetFlushBudget(int64_t n) {
    flush_budget_.store(n, std::memory_order_relaxed);
  }

  // True once the budget has been exhausted.
  bool PowerLost() const {
    return flush_budget_.load(std::memory_order_relaxed) == 0;
  }

  // --- stats ---
  PmStats& stats() { return stats_; }
  const PmStats& stats() const { return stats_; }

 private:
  uint64_t size_;
  std::unique_ptr<char[]> mem_;
  std::unique_ptr<char[]> shadow_;  // null unless crash_tracking
  PmDevice* device_;
  PmStats stats_;
  std::atomic<int64_t> flush_budget_{-1};
};

}  // namespace pm
}  // namespace flatstore

#endif  // FLATSTORE_PM_PM_POOL_H_
