// Emulated persistent-memory pool.
//
// A PmPool is a contiguous DRAM region standing in for a DAX-mapped Optane
// namespace. Code mutates it through ordinary pointers and then makes
// ranges durable with Persist()/Fence(), mirroring clwb+sfence.
//
// Two orthogonal capabilities:
//
//  * Timing (optional `device`): every flushed cacheline is charged to the
//    calling core's virtual clock via the PmDevice model. Fence() advances
//    the clock to the completion of all outstanding flushes.
//
//  * Crash model (optional `crash_tracking`): the pool keeps a shadow image
//    holding only data that was explicitly persisted. SimulateCrash()
//    rolls the live region back to the shadow — every store that was not
//    followed by Persist()+Fence() is lost. A flush *budget* lets tests
//    cut power after an arbitrary number of line flushes, including
//    mid-operation.
//
// The default crash mode (kClean) loses unflushed data atomically at 64 B
// granularity. Real PM is nastier in three ways, each modelled by an
// adversarial CrashMode (see the enum): flushes caught by the cut persist
// 8-byte subsets (torn lines), flushes between a Persist and its Fence
// complete in any order (unordered persistence), and dirty lines the code
// never flushed may persist anyway via cache eviction. The crash-state
// explorer (tests/harness/crash_explorer.h) enumerates power cuts at every
// flush index under each of these modes.

#ifndef FLATSTORE_PM_PM_POOL_H_
#define FLATSTORE_PM_PM_POOL_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "common/cacheline.h"
#include "common/logging.h"
#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "pm/pm_device.h"
#include "pm/pm_stats.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace pm {

// An emulated PM region. Thread-safe for Persist/Fence on disjoint lines
// (concurrent persists of the same line would be an engine-level race).
// The adversarial crash modes are test-orchestration state: arm them from
// the single thread that drives a crash scenario.
class PmPool {
 public:
  struct Options {
    // Pool size in bytes (rounded up to 4 MB).
    uint64_t size = 64ull << 20;
    // Keep a shadow image for SimulateCrash().
    bool crash_tracking = false;
    // Optional timing model; flushes are free when null.
    PmDevice* device = nullptr;
    // Sockets the region spans: the pool is split into num_sockets
    // contiguous spans, each homed on one socket's DIMM set. Accesses
    // from a core on another socket (vt::CurrentSocket()) pay the
    // cross-socket surcharges. 1 (the default) reproduces the
    // single-socket model exactly.
    int num_sockets = 1;
  };

  // How the shadow image behaves around the flush-budget power cut.
  // `seed` makes every random choice deterministic: a failing (mode,
  // budget, seed) triple is a complete repro.
  enum class CrashMode : uint8_t {
    // Budgeted flushes reach the shadow whole-line, in issue order; the
    // cut happens cleanly after the budget-th flush. (Default; this is
    // the historical model.)
    kClean = 0,
    // The line whose flush exhausts the budget is *caught* by the cut:
    // only a seed-chosen 8-byte-aligned subset (often a prefix) of it
    // persists, modelling PM's 8-byte atomic write unit. Earlier flushes
    // persist whole, later ones not at all.
    kTorn = 1,
    // Flushed lines are buffered and only reach the shadow at the next
    // Fence(), mirroring clwb's weak ordering: when the cut lands between
    // a Persist and its Fence, a seed-chosen *subset* of the in-flight
    // lines persists, in issue order. Lines fenced before the cut persist
    // whole.
    kUnordered = 2,
    // Budgeted flushes behave like kClean, but at the cut every dirty
    // line the code never flushed *may* persist too (seed-chosen),
    // modelling cache evictions. Recovery must never depend on
    // unflushed data being lost.
    kEviction = 3,
  };
  static const char* CrashModeName(CrashMode mode);

  explicit PmPool(const Options& options);
  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  // Base address / size of the emulated region.
  char* base() const { return mem_.get(); }
  uint64_t size() const { return size_; }

  // --- NUMA topology ---

  int num_sockets() const { return num_sockets_; }

  // Socket owning the byte at pool offset `off`: the pool is cut into
  // num_sockets contiguous, 4 MB-aligned spans (so allocator chunks never
  // straddle a socket boundary). Always 0 on single-socket pools.
  int SocketOf(uint64_t off) const {
    FLATSTORE_DCHECK(off < size_);
    const int s = static_cast<int>(off / socket_span_);
    return s < num_sockets_ ? s : num_sockets_ - 1;
  }
  int SocketOfPtr(const void* p) const { return SocketOf(OffsetOf(p)); }

  // Pointer <-> pool-offset conversion. Offsets are what gets stored in
  // PM-resident pointers (`Ptr` fields) so pools are relocatable.
  uint64_t OffsetOf(const void* p) const {
    auto off = static_cast<uint64_t>(static_cast<const char*>(p) - mem_.get());
    FLATSTORE_DCHECK(off < size_);
    return off;
  }
  void* At(uint64_t off) const {
    FLATSTORE_DCHECK(off < size_);
    return mem_.get() + off;
  }
  template <typename T>
  T* PtrAt(uint64_t off) const {
    return reinterpret_cast<T*>(At(off));
  }

  // Flushes every cacheline overlapping [p, p+len): charges clwb issue
  // cost, sends each line to the device model, and (in crash mode) copies
  // the lines into the shadow image. Durability is only guaranteed after
  // the next Fence().
  void Persist(const void* p, uint64_t len);

  // Charges a synchronous read of [p, p+len) from PM media: one device
  // read per touched cacheline (capped at one 256 B block's worth of
  // lines per call for large values — streaming reads pipeline), sharing
  // DIMM bandwidth with writes. No-op without a bound clock/device.
  void ChargeRead(const void* p, uint64_t len);

  // Like ChargeRead, but issues the media reads stamped at `issue_time`
  // and returns the completion instant WITHOUT advancing the calling
  // clock. Batched reads (MultiGet) overlap independent dereferences by
  // issuing them back-to-back at one instant and advancing to each
  // completion only as the data is consumed.
  uint64_t ChargeReadAt(const void* p, uint64_t len, uint64_t issue_time);

  // Orders all previously issued flushes (sfence): advances the calling
  // core's clock to the latest flush completion. In kUnordered mode this
  // is also the point where buffered flushes commit to the shadow.
  void Fence();

  // Persist + Fence (the common "persist this datum now" pattern).
  void PersistFence(const void* p, uint64_t len) {
    Persist(p, len);
    Fence();
  }

  // --- crash model ---

  // True if this pool keeps a shadow image.
  bool crash_tracking() const { return shadow_ != nullptr; }

  // Rolls the live region back to the last persisted image (resolving any
  // still-in-flight unordered/eviction state first — an unfenced flush is
  // never guaranteed). Caller must guarantee no concurrent access. Also
  // resets the flush budget and re-arms the cut for the next cycle; the
  // crash mode and its seed stream carry over.
  void SimulateCrash();

  // After `n` more line flushes, the pool "loses power": subsequent
  // flushes stop reaching the shadow image. Pass a negative value to
  // disable the budget (default). Re-arming also re-enables the
  // mode-specific cut behaviour for the next exhaustion.
  void SetFlushBudget(int64_t n) {
    // relaxed: test-orchestration knob, set while the engine is quiesced.
    flush_budget_.store(n, std::memory_order_relaxed);
    loss_resolved_ = false;
  }

  // True once the budget has been exhausted.
  bool PowerLost() const {
    // relaxed: test-orchestration read; no ordering with flush traffic.
    return flush_budget_.load(std::memory_order_relaxed) == 0;
  }

  // Selects the adversarial behaviour applied at the next budget
  // exhaustion. Requires crash_tracking. The seed fully determines the
  // torn subset / in-flight subset / evicted set.
  void SetCrashMode(CrashMode mode, uint64_t seed);
  CrashMode crash_mode() const { return crash_mode_; }

  // --- stats ---
  PmStats& stats() { return stats_; }
  const PmStats& stats() const { return stats_; }

 private:
  // A flush buffered between Persist and Fence (kUnordered only). The
  // snapshot is taken at issue time, as clwb may write back any content
  // the line held between issue and fence.
  struct PendingLine {
    uint64_t off;
    uint8_t data[kCachelineSize];
  };

  // Crash-model bookkeeping for one line flush (only called with a
  // shadow). Returns whether the flush was within budget.
  void CrashTrackLine(uint64_t off);

  uint64_t NextCrashRand();
  // Copies a seed-chosen 8-byte-aligned subset of the line at `off` into
  // the shadow (the torn-write model).
  void TearLineIntoShadow(uint64_t off);
  // Commits / coin-flips the kUnordered pending buffer (caller holds
  // pending_lock_).
  void CommitPendingLocked() REQUIRES(pending_lock_);
  void ResolvePendingAtLossLocked() REQUIRES(pending_lock_);
  // kEviction: every line whose live content differs from the shadow may
  // persist, per seeded coin flip.
  void ResolveEviction();

  // The pool buffer emulates a DAX mapping, which is page-aligned; the
  // alignas(64) PM-resident structs (tail lines, index buckets) rely on
  // it. Plain new char[] only guarantees 16 bytes (UBSan catches the
  // resulting misaligned member accesses), hence the aligned allocation.
  struct PageAlignedDeleter {
    void operator()(char* p) const {
      ::operator delete[](p, std::align_val_t{4096});
    }
  };
  using PageAlignedBuf = std::unique_ptr<char[], PageAlignedDeleter>;
  static PageAlignedBuf NewPageAlignedZeroed(uint64_t size) {
    auto* p = static_cast<char*>(
        ::operator new[](size, std::align_val_t{4096}));
    std::memset(p, 0, size);
    return PageAlignedBuf(p);
  }

  uint64_t size_;
  int num_sockets_;
  uint64_t socket_span_;  // bytes per socket (4 MB multiple)
  PageAlignedBuf mem_;
  PageAlignedBuf shadow_;  // null unless crash_tracking
  PmDevice* device_;
  PmStats stats_;
  std::atomic<int64_t> flush_budget_{-1};

  CrashMode crash_mode_ = CrashMode::kClean;
  uint64_t crash_rng_ = 0x9E3779B97F4A7C15ull;
  // Set once the budget exhaustion has been acted on (torn line written,
  // pending subset chosen, evictions applied); later flushes are dropped
  // without further side effects until the budget is re-armed.
  bool loss_resolved_ = false;
  SpinLock pending_lock_;
  std::vector<PendingLine> pending_ GUARDED_BY(pending_lock_);
};

}  // namespace pm
}  // namespace flatstore

#endif  // FLATSTORE_PM_PM_POOL_H_
