// Virtual-time performance model of an Optane-DCPMM-like device.
//
// The device receives cacheline flushes (from PmPool::Persist) stamped with
// the issuing core's simulated time and returns the media completion time.
// It models the effects the paper's design exploits or avoids:
//
//  * 256 B internal blocks: each flushed line occupies its DIMM for a full
//    block-service time unless it coalesces with an open block in the
//    write-combining buffer (so flushing 4 lines of one block costs little
//    more than flushing 1 — this is why 16-byte log entries batch well).
//  * Non-scalable bandwidth: each of the 4 DIMMs is a serial resource; once
//    concurrent flushers saturate them, extra threads only queue
//    (paper Fig. 1(a), 1(b) high-thread regime).
//  * Sequential advantage at low concurrency: an open write-combining
//    stream services the *next* block cheaper; with many concurrent
//    writers the small WC buffer thrashes and sequential ≈ random
//    (paper §2.3 observation 1).
//  * In-place re-flush delay: flushing a line that was flushed within the
//    last ~1 µs stalls ~800 ns (paper §2.3 observation 2) — this penalizes
//    in-place index updates under skew and is why FlatStore pads batches
//    to cacheline boundaries.
//
// Queueing: flushes arrive stamped with *per-core* virtual times that are
// not globally ordered, so a strict busy-until chain would ratchet every
// core to the maximum clock and fabricate serialization. Instead each
// DIMM keeps an order-insensitive utilization estimate (service time
// issued / simulated time span) and charges an M/D/1-style queueing delay
// service * rho / (1 - rho): light load adds almost nothing, saturation
// adds steeply growing waits — reproducing the non-scalable bandwidth
// curve without cross-clock coupling.
//
// All state updates are lock-free; benign timestamp races only perturb the
// model by nanoseconds.

#ifndef FLATSTORE_PM_PM_DEVICE_H_
#define FLATSTORE_PM_PM_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "vt/costs.h"

namespace flatstore {
namespace pm {

// One emulated PM device (per-socket sets of interleaved DIMMs). Shared by
// all cores. A multi-socket machine has kPmDimms DIMMs *per socket*, each
// socket's set behind its own memory controller — so aggregate PM
// bandwidth scales with sockets, exactly the resource the NUMA-aware
// placement tries to exploit and naive placement wastes on link traffic.
class PmDevice {
 public:
  explicit PmDevice(int num_sockets = 1);
  PmDevice(const PmDevice&) = delete;
  PmDevice& operator=(const PmDevice&) = delete;

  int num_sockets() const { return num_sockets_; }

  // Issues a flush of the cacheline at pool offset `line_off` (must be
  // 64 B aligned) at simulated time `issue_time`, on `socket`'s DIMM set.
  // Returns the simulated time at which the line is durable on media.
  uint64_t FlushLine(uint64_t line_off, uint64_t issue_time, int socket = 0);

  // Charges a media read of one cacheline at `issue_time` on `socket`'s
  // DIMM set. Reads share the DIMM's bandwidth with writes (they
  // contribute to the utilization estimate and suffer the same queueing
  // delay), plus the fixed media read latency. Returns the completion
  // time.
  uint64_t ReadLine(uint64_t line_off, uint64_t issue_time, int socket = 0);

  // Clears queues / WC buffers / in-place tracking (between experiments).
  void Reset();

 private:
  // Open-block entry of a DIMM's write-combining buffer.
  struct WcEntry {
    std::atomic<uint64_t> block{UINT64_MAX};
    std::atomic<uint64_t> expire{0};
  };

  struct alignas(64) Dimm {
    std::atomic<uint64_t> work{0};  // total service ns issued
    std::atomic<uint64_t> tmax{0};  // latest issue timestamp seen
    std::atomic<uint32_t> wc_victim{0};
    WcEntry wc[vt::kPmWcEntries];
  };

  // Computes the utilization-based queueing delay of one request and
  // accounts its service into the DIMM.
  static uint64_t QueueDelay(Dimm& dimm, uint64_t issue_time,
                             uint64_t service);

  // Tracking table for the repeated-flush-same-line penalty.
  struct LineSlot {
    std::atomic<uint64_t> line{UINT64_MAX};
    std::atomic<uint64_t> time{0};
  };
  static constexpr size_t kLineTableSize = 1 << 16;

  // DIMM for (socket, line): each socket owns a contiguous slice of
  // kPmDimms entries; addresses interleave across the slice.
  Dimm& DimmFor(int socket, uint64_t line_off) {
    return dimms_[static_cast<size_t>(socket) * vt::kPmDimms +
                  (line_off / vt::kPmInterleave) % vt::kPmDimms];
  }

  int num_sockets_;
  Dimm dimms_[vt::kMaxSockets * vt::kPmDimms];
  std::vector<LineSlot> recent_lines_;
};

}  // namespace pm
}  // namespace flatstore

#endif  // FLATSTORE_PM_PM_DEVICE_H_
