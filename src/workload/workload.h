// Workload generators for the paper's evaluation (§5).
//
// Two families:
//  * YCSB-style microbenchmarks (§5.1): fixed value length, uniform or
//    scrambled-zipfian (0.99) key popularity over a fixed key range,
//    configurable Put/Get/Delete/Scan mix (scan_ratio > 0 gives the
//    YCSB-E shape: short ranges from zipfian start keys).
//  * Facebook ETC pool emulation (§5.2): trimodal item sizes — 40 % tiny
//    (1–13 B), 55 % small (14–300 B), 5 % large (> 300 B) — zipfian access
//    over the tiny+small sets and uniform access over the large set, with
//    per-key stable sizes.
//
// Generators are deterministic per seed so every engine under comparison
// sees the same request stream.

#ifndef FLATSTORE_WORKLOAD_WORKLOAD_H_
#define FLATSTORE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>

#include "common/random.h"

namespace flatstore {
namespace workload {

// One generated request.
enum class OpType : uint8_t { kPut = 1, kGet = 2, kDelete = 3, kScan = 4 };

struct Op {
  OpType type;
  uint64_t key;
  uint32_t value_len;  // Put only
  uint32_t scan_len;   // Scan only: number of keys to range-read
};

// Key popularity distribution.
enum class KeyDist { kUniform, kZipfian };

// Generator configuration.
struct Config {
  uint64_t key_space = 1ull << 20;
  KeyDist dist = KeyDist::kUniform;
  double zipf_theta = 0.99;  // the paper's default skewness
  double get_ratio = 0.0;    // fraction of Gets
  double delete_ratio = 0.0; // fraction of Deletes
  // Fraction of range scans (YCSB-E shape: zipfian start keys via `dist`,
  // scan length uniform in [1, scan_len_max]).
  double scan_ratio = 0.0;
  uint32_t scan_len_max = 100;
  // Value sizing: fixed length, or the ETC trimodal distribution.
  bool etc_values = false;
  uint32_t value_len = 64;   // when !etc_values
};

// Deterministic request stream.
class Generator {
 public:
  Generator(const Config& config, uint64_t seed);

  // Next request.
  Op Next();

  // Stable ETC value length of `key` (also used to preload stores).
  static uint32_t EtcValueLen(uint64_t key, uint64_t key_space);

  const Config& config() const { return config_; }

 private:
  uint64_t NextKey();

  Config config_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  uint64_t etc_small_space_;  // tiny+small portion of the key space
};

// ETC size-class boundaries (fractions of the key space, paper §5.2).
inline constexpr double kEtcTinyFrac = 0.40;
inline constexpr double kEtcSmallFrac = 0.55;  // tiny+small = 95 %
inline constexpr uint32_t kEtcTinyMax = 13;
inline constexpr uint32_t kEtcSmallMax = 300;
inline constexpr uint32_t kEtcLargeMax = 4096;  // ring-transportable cap

}  // namespace workload
}  // namespace flatstore

#endif  // FLATSTORE_WORKLOAD_WORKLOAD_H_
