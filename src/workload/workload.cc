#include "workload/workload.h"

#include "common/hash.h"
#include "common/logging.h"

namespace flatstore {
namespace workload {

Generator::Generator(const Config& config, uint64_t seed)
    : config_(config), rng_(seed) {
  FLATSTORE_CHECK(config_.key_space > 0);
  FLATSTORE_CHECK(config_.get_ratio + config_.delete_ratio +
                      config_.scan_ratio <=
                  1.0);
  FLATSTORE_CHECK(config_.scan_len_max > 0);
  etc_small_space_ = static_cast<uint64_t>(
      static_cast<double>(config_.key_space) *
      (kEtcTinyFrac + kEtcSmallFrac));
  if (config_.dist == KeyDist::kZipfian) {
    const uint64_t space =
        config_.etc_values ? etc_small_space_ : config_.key_space;
    zipf_ = std::make_unique<ZipfianGenerator>(space, config_.zipf_theta,
                                               seed ^ 0x5EEDF00Dull);
  }
}

uint32_t Generator::EtcValueLen(uint64_t key, uint64_t key_space) {
  // Per-key stable size: the class comes from the key's position in the
  // key space, the size within the class from a hash of the key.
  const auto tiny_end = static_cast<uint64_t>(
      static_cast<double>(key_space) * kEtcTinyFrac);
  const auto small_end = static_cast<uint64_t>(
      static_cast<double>(key_space) * (kEtcTinyFrac + kEtcSmallFrac));
  const uint64_t h = HashKey(key, 0xE7C);
  if (key < tiny_end) return 1 + static_cast<uint32_t>(h % kEtcTinyMax);
  if (key < small_end) {
    return kEtcTinyMax + 1 +
           static_cast<uint32_t>(h % (kEtcSmallMax - kEtcTinyMax));
  }
  // Large: "much higher variability" — log-uniform in (300, 4096].
  const double frac = static_cast<double>(h % 10000) / 10000.0;
  const double lo = kEtcSmallMax + 1, hi = kEtcLargeMax;
  return static_cast<uint32_t>(lo * std::pow(hi / lo, frac));
}

uint64_t Generator::NextKey() {
  if (config_.etc_values) {
    // 5 % of ops hit the uniformly-chosen large set; the rest follow the
    // (possibly zipfian) distribution over tiny+small.
    if (rng_.NextDouble() < 1.0 - kEtcTinyFrac - kEtcSmallFrac) {
      return etc_small_space_ +
             rng_.Uniform(config_.key_space - etc_small_space_);
    }
    if (zipf_ != nullptr) return zipf_->Next() % etc_small_space_;
    return rng_.Uniform(etc_small_space_);
  }
  if (zipf_ != nullptr) return zipf_->Next();
  return rng_.Uniform(config_.key_space);
}

Op Generator::Next() {
  Op op;
  op.key = NextKey();
  op.scan_len = 0;
  const double r = rng_.NextDouble();
  if (r < config_.get_ratio) {
    op.type = OpType::kGet;
    op.value_len = 0;
  } else if (r < config_.get_ratio + config_.delete_ratio) {
    op.type = OpType::kDelete;
    op.value_len = 0;
  } else if (r < config_.get_ratio + config_.delete_ratio +
                     config_.scan_ratio) {
    op.type = OpType::kScan;
    op.value_len = 0;
    op.scan_len =
        1 + static_cast<uint32_t>(rng_.Uniform(config_.scan_len_max));
  } else {
    op.type = OpType::kPut;
    op.value_len = config_.etc_values
                       ? EtcValueLen(op.key, config_.key_space)
                       : config_.value_len;
  }
  return op;
}

}  // namespace workload
}  // namespace flatstore
