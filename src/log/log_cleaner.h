// Log cleaning (paper §3.4).
//
// Each horizontal-batching group gets one background cleaner thread that
// walks the OpLogs of the group's cores, picks sealed chunks whose live
// ratio fell below a threshold, copies the surviving entries into fresh
// chunks (committed via the chunk's used_final, journaled in the chunk
// registry), re-points the volatile index at the copies with atomic CAS,
// and returns the victim chunks to the allocator.
//
// Liveness rules:
//  * Put entry: live iff the index still maps its key to exactly this
//    entry (offset *and* version) — address equality makes concurrent
//    supersedes unambiguous.
//  * Delete tombstone: live while an older chunk (sequence <= the
//    tombstone's covered sequence) still exists for this core — once the
//    chunk holding the overwritten version is gone, no stale Put can
//    resurrect the key during replay, and the tombstone may die
//    (the paper's "safely reclaimed only after all the log entries
//    related to this KV item have been reclaimed").
//
// Synchronization with the serving core: index updates race benignly
// through CAS; physically freeing a victim chunk is deferred through the
// engine's epoch manager (common/epoch.h). The cleaner *unlinks* the
// victim (marks it retired, CAS-swings the index at the relocated
// copies) and schedules the actual ReleaseChunk with Defer(); it runs
// only after every serving core has advanced past the epoch in which the
// unlink happened — so a reader that decoded an entry pointer before the
// swing can never observe the chunk being freed under it. The read side
// costs one core-local store per dereference instead of the shared-line
// RMW the old per-group retire lock required.

#ifndef FLATSTORE_LOG_LOG_CLEANER_H_
#define FLATSTORE_LOG_LOG_CLEANER_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "index/kv_index.h"
#include "log/oplog.h"

namespace flatstore {
namespace log {

// Engine-provided hooks.
struct CleanerHooks {
  // Volatile index partition holding `key`. NOTE: keyed by *key*, not by
  // the log-owning core — horizontal batching stores stolen entries in
  // the leader's log, so a chunk freely mixes keys owned by every core of
  // the group.
  std::function<index::KvIndex*(uint64_t key)> index_for_key;
  // Epoch manager guarding the engine's log-entry dereferences. Victim
  // chunks are freed through its deferred queue (see file comment).
  common::EpochManager* epochs = nullptr;
};

// One group's cleaner.
class LogCleaner {
 public:
  struct Options {
    double live_ratio = 0.6;   // victim threshold (fraction of live entries)
    size_t max_victims = 4;    // chunks per pass per core
    // Only clean while the allocator has fewer free chunks than this
    // (0 = always clean when victims exist).
    uint64_t free_chunk_watermark = 0;
  };

  // Cleans cores [first_core, last_core) of `logs`.
  LogCleaner(std::vector<OpLog*> logs, int first_core, int last_core,
             CleanerHooks hooks, const Options& options,
             alloc::LazyAllocator* alloc);
  ~LogCleaner();

  LogCleaner(const LogCleaner&) = delete;
  LogCleaner& operator=(const LogCleaner&) = delete;

  // One synchronous cleaning pass: unlinks victims, then reclaims every
  // deferred free that has become epoch-safe. Returns unlinked + freed
  // chunk counts (victims unlinked this pass are freed by this same call
  // when no reader is pinned — e.g. single-threaded benchmark drivers).
  size_t RunOnce();

  // Background-thread control (idempotent).
  void Start();
  void Stop();

  // --- statistics (Fig. 13) ---
  uint64_t chunks_cleaned() const {
    // relaxed: monotonic stat counter, no ordering required.
    return chunks_cleaned_.load(std::memory_order_relaxed);
  }
  uint64_t entries_copied() const {
    // relaxed: monotonic stat counter, no ordering required.
    return entries_copied_.load(std::memory_order_relaxed);
  }
  uint64_t entries_dropped() const {
    // relaxed: monotonic stat counter, no ordering required.
    return entries_dropped_.load(std::memory_order_relaxed);
  }

 private:
  // Cleans one victim chunk of one core; returns true if it was freed.
  bool CleanChunk(int core, uint64_t chunk_off);

  std::vector<OpLog*> logs_;
  int first_core_, last_core_;
  CleanerHooks hooks_;
  Options options_;
  alloc::LazyAllocator* alloc_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> chunks_cleaned_{0};
  std::atomic<uint64_t> entries_copied_{0};
  std::atomic<uint64_t> entries_dropped_{0};
};

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_LOG_CLEANER_H_
