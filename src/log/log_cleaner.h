// Log cleaning (paper §3.4).
//
// Each horizontal-batching group gets one background cleaner thread that
// walks the OpLogs of the group's cores, picks victim chunks, copies the
// surviving entries into fresh chunks (committed via the chunk's
// used_final, journaled in the chunk registry), re-points the volatile
// index at the copies with atomic CAS, and returns the victim chunks to
// the allocator.
//
// Victim selection (OpLog::PickVictims) is policy-driven: the default
// cost-benefit policy ranks chunks by (1 - u) * age / (1 + u) over
// incrementally maintained per-chunk live-byte counters (RAMCloud/LFS);
// the legacy live-ratio threshold policy is kept behind Options::policy
// for A/B comparison.
//
// Cleaning is *pipelined and incremental*: each victim is a CleaningJob
// that moves through scan -> relocate -> retire stages in bounded slices.
// RunOnce advances every in-flight job round-robin until a per-quantum
// byte budget is exhausted, so one pass can overlap the scan of one
// victim with the relocation of another, and a pass interrupted by PM
// pressure *resumes* where it stopped instead of restarting the victim
// (already-relocated survivors are durable and their index entries
// already swung). The allocator's MemoryPressure signal raises the
// budget before the pool runs dry (backpressure).
//
// Survivors are segregated by temperature (§3.4 hot/cold): a victim
// whose last overwrite is older than Options::cold_age — or that already
// lives in the cold lane — relocates into the cold cleaner chunk, so
// stable data clusters into near-fully-live chunks that future passes
// skip. Effectiveness is measured as survivor-bytes-per-reclaimed-byte
// (pm::GcWriteAmp), split per temperature in PmStats.
//
// Liveness rules:
//  * Put entry: live iff the index still maps its key to exactly this
//    entry (offset *and* version) — address equality makes concurrent
//    supersedes unambiguous.
//  * Delete tombstone: live while an older chunk (sequence <= the
//    tombstone's covered sequence) still exists for this core — once the
//    chunk holding the overwritten version is gone, no stale Put can
//    resurrect the key during replay, and the tombstone may die
//    (the paper's "safely reclaimed only after all the log entries
//    related to this KV item have been reclaimed").
//
// Transaction chains (§5.3): surviving chain members carry the txn
// header bit, and recovery only replays members covered by a valid
// commit record — so relocation must never separate a live member from a
// covering commit. Each relocation sub-batch groups its txn members
// back-to-back (verbatim bytes, after the plain entries) and appends one
// fresh commit record over exactly those copies; victims' original
// commit records are dropped (born dead, like the serving path's).
//
// Synchronization with the serving core: index updates race benignly
// through CAS; physically freeing a victim chunk is deferred through the
// engine's epoch manager (common/epoch.h). The cleaner *unlinks* the
// victim (marks it retired, CAS-swings the index at the relocated
// copies) and schedules the actual ReleaseChunk with Defer(); it runs
// only after every serving core has advanced past the epoch in which the
// unlink happened — so a reader that decoded an entry pointer before the
// swing can never observe the chunk being freed under it.

#ifndef FLATSTORE_LOG_LOG_CLEANER_H_
#define FLATSTORE_LOG_LOG_CLEANER_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "index/kv_index.h"
#include "log/oplog.h"

namespace flatstore {
namespace log {

// Engine-provided hooks.
struct CleanerHooks {
  // Volatile index partition holding `key`. NOTE: keyed by *key*, not by
  // the log-owning core — horizontal batching stores stolen entries in
  // the leader's log, so a chunk freely mixes keys owned by every core of
  // the group.
  std::function<index::KvIndex*(uint64_t key)> index_for_key;
  // Epoch manager guarding the engine's log-entry dereferences. Victim
  // chunks are freed through its deferred queue (see file comment).
  common::EpochManager* epochs = nullptr;
  // Tier resurrection veto (DESIGN.md §11), set when the engine runs an
  // ordered persistent tier. Returns true if the tier holds a node for
  // `key` whose packed word differs from `packed`: dropping a tombstone
  // then would let the stale tier node resurrect the key at recovery, so
  // the tombstone must stay live until the tiering pass updates the node
  // past it. Null when no tier exists (the MinSeq bound alone is safe).
  std::function<bool(uint64_t key, uint64_t packed)> tier_stale;
};

// One group's cleaner.
class LogCleaner {
 public:
  struct Options {
    // Victim-selection policy. kCostBenefit is the default; kLiveRatio is
    // the legacy threshold policy, kept for A/B comparison (Fig. 13).
    VictimQuery::Policy policy = VictimQuery::Policy::kCostBenefit;
    // kLiveRatio: the victim threshold (fraction of live entries).
    // kCostBenefit: eligibility cap — chunks at or above this live ratio
    // are never worth relocating.
    double live_ratio = 0.6;
    size_t max_victims = 4;    // in-flight cleaning jobs per core
    // Only start new cleaning work while the allocator has fewer free
    // chunks than this (0 = always clean when victims exist). In-flight
    // jobs always run to completion.
    uint64_t free_chunk_watermark = 0;
    // Per-RunOnce byte budget over scanned + relocated bytes (0 =
    // unbounded, the synchronous-test default). Under allocator pressure
    // level 1 the budget is multiplied by `pressure_boost`; at level 2 it
    // is unbounded — reclaim beats pacing when the pool is nearly dry.
    uint64_t quantum_bytes = 0;
    uint64_t pressure_boost = 4;
    // Hot/cold survivor segregation (§3.4). A victim whose write-clock
    // age at pick time is >= cold_age — or that already sits in the cold
    // lane — relocates its survivors into the cold cleaner chunk.
    bool segregate = true;
    uint64_t cold_age = 512;
    // Tier handoff (DESIGN.md §11): when set, cold-lane cleaner chunks
    // are not re-cleaned — they are the tiering pass's preferred
    // candidates, so their stable survivors flow into the ordered tier
    // instead of bouncing between cold cleaner chunks.
    bool exclude_cold_from_victims = false;
  };

  // Cleans cores [first_core, last_core) of `logs`.
  LogCleaner(std::vector<OpLog*> logs, int first_core, int last_core,
             CleanerHooks hooks, const Options& options,
             alloc::LazyAllocator* alloc);
  ~LogCleaner();

  LogCleaner(const LogCleaner&) = delete;
  LogCleaner& operator=(const LogCleaner&) = delete;

  // One cleaning quantum: advances every in-flight job (refilling from
  // victim selection first) within the byte budget, then reclaims every
  // deferred free that has become epoch-safe. Returns retired + freed
  // chunk counts (victims retired this pass are freed by this same call
  // when no reader is pinned — e.g. single-threaded benchmark drivers).
  // With the default unbounded budget a pass drains all eligible victims
  // end-to-end, preserving the old one-shot semantics.
  size_t RunOnce();

  // Background-thread control (idempotent).
  void Start();
  void Stop();

  // --- statistics (Fig. 13) ---
  uint64_t chunks_cleaned() const {
    // relaxed: monotonic stat counter, no ordering required.
    return chunks_cleaned_.load(std::memory_order_relaxed);
  }
  uint64_t entries_copied() const {
    // relaxed: monotonic stat counter, no ordering required.
    return entries_copied_.load(std::memory_order_relaxed);
  }
  uint64_t entries_dropped() const {
    // relaxed: monotonic stat counter, no ordering required.
    return entries_dropped_.load(std::memory_order_relaxed);
  }
  // In-flight cleaning jobs (a nonzero value after a bounded RunOnce
  // means the pass was interrupted mid-victim and will resume).
  size_t jobs_in_flight() const;

 private:
  // A victim chunk moving through the cleaning pipeline. All fields are
  // cleaner-state guarded by run_lock_ (the job list is mutated by
  // RunOnce, which may be called from the background thread or from a
  // synchronous driver).
  struct Survivor {
    uint64_t old_off;
    uint64_t key;
    uint32_t version;
    uint32_t len;
    bool txn;  // txn-chain member: needs a covering commit on relocation
  };
  enum class Stage : uint8_t { kScan, kRelocate, kRetire, kDone };
  struct CleaningJob {
    int core = 0;
    uint64_t chunk_off = 0;
    uint64_t committed = 0;  // frozen extent (victims are sealed); these
                             // bytes count as reclaimed at retire time
    Stage stage = Stage::kScan;
    uint64_t scan_pos = 0;       // reader position; resumable
    size_t reloc_pos = 0;        // survivors already durably relocated
    std::vector<Survivor> survivors;
    bool cold = false;           // survivor temperature lane
    uint64_t age_clock = 0;      // victim's last-write stamp (inherited)
    double pick_live_ratio = 0;  // live ratio at pick time (WA histogram)
  };

  // Starts new jobs from victim selection up to max_victims per core,
  // skipping chunks that already have a job in flight.
  void RefillJobs() REQUIRES(run_lock_);

  // Advances one job by one bounded slice (scan slice, relocation
  // sub-batch, or the retire step), deducting consumed bytes from
  // `*budget`. Returns true if any progress was made (false = budget
  // exhausted or relocation blocked on PM space; the job resumes later).
  bool AdvanceJob(CleaningJob& job, uint64_t* budget) REQUIRES(run_lock_);

  std::vector<OpLog*> logs_;
  int first_core_, last_core_;
  CleanerHooks hooks_;
  Options options_;
  alloc::LazyAllocator* alloc_;

  // Serializes cleaning passes and guards the job pipeline: RunOnce may
  // be driven by the background thread and by synchronous callers
  // (tests, benchmarks) concurrently.
  mutable SpinLock run_lock_;
  std::vector<CleaningJob> jobs_ GUARDED_BY(run_lock_);

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> chunks_cleaned_{0};
  std::atomic<uint64_t> entries_copied_{0};
  std::atomic<uint64_t> entries_dropped_{0};
};

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_LOG_CLEANER_H_
