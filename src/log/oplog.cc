#include "log/oplog.h"

#include <cstring>

#include "common/cacheline.h"
#include "log/log_entry.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace log {

OpLog::OpLog(RootArea* root, alloc::LazyAllocator* alloc, int core,
             const Options& options)
    : root_(root), alloc_(alloc), core_(core), options_(options) {}

OpLog::OpLog(RootArea* root, alloc::LazyAllocator* alloc, int core)
    : OpLog(root, alloc, core, Options()) {}

bool OpLog::EnsureRoom(uint64_t bytes, bool cleaner) {
  FLATSTORE_CHECK_LE(bytes, kLogDataBytes) << "batch larger than a chunk";
  uint64_t& chunk = cleaner ? cleaner_chunk_ : chunk_;
  uint64_t& cursor = cleaner ? cleaner_cursor_ : cursor_;

  if (chunk != 0) {
    const uint64_t used = cursor - (chunk + kLogDataOff);
    if (used + bytes <= kLogDataBytes) return true;
    // Rollover: seal the full chunk so recovery knows its extent even
    // after the tail record moves on.
    SealChunk(chunk, used);
  }

  uint64_t fresh = alloc_->AllocRawChunk(core_);
  if (fresh == 0) return false;
  // Fresh log chunks must decode as empty: zero the data region (a reused
  // chunk holds stale bytes that must not replay).
  std::memset(root_->pool()->At(fresh + alloc::kChunkHeaderSize), 0,
              alloc::kChunkSize - alloc::kChunkHeaderSize);
  auto* hdr = root_->pool()->PtrAt<LogChunkHeader>(fresh +
                                                   alloc::kChunkHeaderSize);
  hdr->used_final = 0;
  root_->pool()->PersistFence(hdr, sizeof(LogChunkHeader));

  const uint32_t seq = next_chunk_seq_++;
  uint64_t slot = root_->RegisterChunk(fresh, core_, seq);
  {
    std::lock_guard<SpinLock> g(usage_lock_);
    ChunkUsage& u = usage_[fresh];
    u.seq = seq;
    u.cleaner = cleaner;
    u.registry_slot = slot;
  }
  chunk = fresh;
  cursor = fresh + kLogDataOff;
  return true;
}

void OpLog::SealChunk(uint64_t chunk_off, uint64_t used) {
  auto* hdr = root_->pool()->PtrAt<LogChunkHeader>(chunk_off +
                                                   alloc::kChunkHeaderSize);
  hdr->used_final = used;
  root_->pool()->PersistFence(hdr, sizeof(uint64_t));
  std::lock_guard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  FLATSTORE_CHECK(it != usage_.end());
  it->second.sealed = true;
}

uint64_t OpLog::WriteEntries(uint64_t* cursor, const EntryRef* entries,
                             size_t n, uint64_t* offsets) {
  pm::PmPool* pool = root_->pool();
  const uint64_t start = *cursor;
  uint64_t pos = start;
  for (size_t i = 0; i < n; i++) {
    std::memcpy(pool->At(pos), entries[i].data, entries[i].len);
    vt::Charge(vt::CostMemcpy(entries[i].len));
    offsets[i] = pos;
    pos += entries[i].len;
  }
  // Zero the padding bytes explicitly: they share the final entry's line,
  // so the persist below makes them durable too. Without this, a chunk
  // that is freed and later reused could expose *stale entries from its
  // previous incarnation* inside the padding gap after a crash (the
  // fresh-chunk memset in EnsureRoom is volatile).
  const uint64_t padded = options_.pad_batches ? CachelineAlignUp(pos) : pos;
  if (padded > pos) std::memset(pool->At(pos), 0, padded - pos);
  // One persist sweep over every touched line — this is where batching
  // pays: 16-byte entries share lines, so N entries cost ~N/4 line
  // flushes instead of N.
  pool->Persist(pool->At(start), padded - start);
  // Cacheline-align the next batch so it never re-flushes our last line
  // (§3.2 "Padding"; the ablation bench disables this).
  *cursor = padded;
  return pos;  // end of the entries themselves (commit point)
}

bool OpLog::AppendBatch(const EntryRef* entries, size_t n,
                        uint64_t* offsets) {
  if (n == 0) return true;
  uint64_t bytes = 0;
  for (size_t i = 0; i < n; i++) bytes += entries[i].len;
  if (!EnsureRoom(bytes + kCachelineSize, /*cleaner=*/false)) return false;

  const uint64_t end = WriteEntries(&cursor_, entries, n, offsets);
  root_->pool()->Fence();  // entries durable before the tail moves

  tail_ = end;
  tail_seq_++;
  root_->WriteTail(core_, tail_seq_, tail_);
  root_->pool()->Fence();

  AccountBatch(chunk_, entries, n);
  batches_++;
  entries_ += n;
  return true;
}

bool OpLog::CleanerAppendBatch(const EntryRef* entries, size_t n,
                               uint64_t* offsets) {
  if (n == 0) return true;
  uint64_t bytes = 0;
  for (size_t i = 0; i < n; i++) bytes += entries[i].len;
  if (!EnsureRoom(bytes + kCachelineSize, /*cleaner=*/true)) return false;

  const uint64_t end = WriteEntries(&cleaner_cursor_, entries, n, offsets);
  root_->pool()->Fence();
  // Commit through the chunk's used_final (the cleaner has no tail
  // record); must be durable before the index is re-pointed at the
  // copies.
  auto* hdr = root_->pool()->PtrAt<LogChunkHeader>(cleaner_chunk_ +
                                                   alloc::kChunkHeaderSize);
  hdr->used_final = end - (cleaner_chunk_ + kLogDataOff);
  root_->pool()->PersistFence(hdr, sizeof(uint64_t));

  AccountBatch(cleaner_chunk_, entries, n);
  return true;
}

void OpLog::AccountBatch(uint64_t chunk, const EntryRef* entries, size_t n) {
  uint32_t tombs = 0;
  uint32_t max_covered = 0;
  for (size_t i = 0; i < n; i++) {
    if ((entries[i].data[0] & 0x3) ==
        static_cast<uint8_t>(OpType::kDelete)) {
      tombs++;
      // Covered sequence sits in the tombstone's Ptr field (40 bits).
      uint32_t covered = static_cast<uint32_t>(
          entry_internal::Get40(entries[i].data + 11));
      max_covered = std::max(max_covered, covered);
    }
  }
  std::lock_guard<SpinLock> g(usage_lock_);
  ChunkUsage& u = usage_[chunk];
  u.total += static_cast<uint32_t>(n);
  u.live += static_cast<uint32_t>(n);
  u.tombs += tombs;
  u.max_covered_seq = std::max(u.max_covered_seq, max_covered);
}

void OpLog::SealActiveChunk() {
  if (chunk_ == 0) return;
  SealChunk(chunk_, cursor_ - (chunk_ + kLogDataOff));
  chunk_ = 0;
  cursor_ = 0;
}

void OpLog::RotateCleanerChunk() {
  if (cleaner_chunk_ == 0) return;
  SealChunk(cleaner_chunk_, cleaner_cursor_ - (cleaner_chunk_ + kLogDataOff));
  cleaner_chunk_ = 0;
  cleaner_cursor_ = 0;
}

void OpLog::NoteDead(uint64_t entry_off) {
  const uint64_t chunk_off = AlignDown(entry_off, alloc::kChunkSize);
  std::lock_guard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  if (it != usage_.end() && it->second.live > 0) it->second.live--;
}

void OpLog::NoteLiveLost(uint64_t entry_off) {
  const uint64_t chunk_off = AlignDown(entry_off, alloc::kChunkSize);
  std::lock_guard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  if (it != usage_.end()) it->second.live++;
}

std::map<uint64_t, ChunkUsage> OpLog::UsageSnapshot() const {
  std::lock_guard<SpinLock> g(usage_lock_);
  return usage_;
}

std::vector<uint64_t> OpLog::PickVictims(double live_ratio,
                                         size_t max) const {
  std::vector<std::pair<uint32_t, uint64_t>> candidates;  // (seq, chunk)
  {
    std::lock_guard<SpinLock> g(usage_lock_);
    uint64_t min_seq = UINT64_MAX;
    for (const auto& [off, u] : usage_) min_seq = std::min<uint64_t>(min_seq, u.seq);
    for (const auto& [off, u] : usage_) {
      if (!u.sealed) continue;                       // still being written
      if (u.retired) continue;     // unlinked, free already in flight
      if (off == chunk_ || off == cleaner_chunk_) continue;
      // Never retire the chunk the durable tail record points into, even
      // when it is sealed (forced rotation seals before the tail moves).
      // Unregistering it would leave a crash-time tail referencing a
      // freed — and possibly reused — chunk.
      if (tail_ != 0 && AlignDown(tail_, alloc::kChunkSize) == off) continue;
      if (u.total == 0) continue;
      // Tombstones whose covered chunks are all gone are as good as dead:
      // discount them so tombstone-only chunks become victims too (the
      // cleaner verifies exact liveness before dropping anything).
      uint32_t dead_tombs =
          (u.tombs > 0 && min_seq > u.max_covered_seq) ? u.tombs : 0;
      uint32_t effective_live =
          u.live > dead_tombs ? u.live - dead_tombs : 0;
      if (static_cast<double>(effective_live) / u.total < live_ratio) {
        candidates.push_back({u.seq, off});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<uint64_t> out;
  for (size_t i = 0; i < candidates.size() && i < max; i++) {
    out.push_back(candidates[i].second);
  }
  return out;
}

uint64_t OpLog::MinSeq() const {
  std::lock_guard<SpinLock> g(usage_lock_);
  uint64_t min_seq = UINT64_MAX;
  for (const auto& [off, u] : usage_) {
    if (u.seq < min_seq) min_seq = u.seq;
  }
  return min_seq;
}

uint64_t OpLog::CommittedBytes(uint64_t chunk_off) const {
  {
    std::lock_guard<SpinLock> g(usage_lock_);
    auto it = usage_.find(chunk_off);
    if (it != usage_.end() && !it->second.sealed) {
      // The serving chunk's extent is bounded by the tail; the cleaner
      // chunk's by used_final (maintained per cleaner batch).
      if (chunk_off == chunk_) {
        return tail_ == 0 ? 0 : tail_ - (chunk_off + kLogDataOff);
      }
    }
  }
  return root_->pool()
      ->PtrAt<LogChunkHeader>(chunk_off + alloc::kChunkHeaderSize)
      ->used_final;
}

void OpLog::BeginRetire(uint64_t chunk_off) {
  std::lock_guard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  FLATSTORE_CHECK(it != usage_.end());
  FLATSTORE_CHECK(!it->second.retired) << "double retire of chunk "
                                       << chunk_off;
  it->second.retired = true;
}

void OpLog::ReleaseChunk(uint64_t chunk_off) {
  uint64_t slot;
  {
    std::lock_guard<SpinLock> g(usage_lock_);
    auto it = usage_.find(chunk_off);
    FLATSTORE_CHECK(it != usage_.end());
    slot = it->second.registry_slot;
    usage_.erase(it);
  }
  root_->UnregisterChunk(slot);
  alloc_->FreeRawChunk(chunk_off);
  // Freeing a chunk invalidates any armed online checkpoint: its index
  // snapshot may reference entries that lived here.
  Superblock* sb = root_->superblock();
  if (sb->clean_shutdown != 0) {
    sb->clean_shutdown = 0;
    root_->pool()->PersistFence(&sb->clean_shutdown, 4);
  }
}

void OpLog::AdoptRecoveredState(uint64_t tail, uint64_t tail_seq,
                                std::map<uint64_t, ChunkUsage> usage) {
  std::lock_guard<SpinLock> g(usage_lock_);
  usage_ = std::move(usage);
  tail_ = tail;
  tail_seq_ = tail_seq;
  chunk_ = 0;
  cursor_ = 0;
  cleaner_chunk_ = 0;
  cleaner_cursor_ = 0;
  uint32_t max_seq = 0;
  for (const auto& [off, u] : usage_) {
    max_seq = std::max(max_seq, u.seq);
    if (tail != 0 && off == AlignDown(tail, alloc::kChunkSize) && !u.sealed) {
      chunk_ = off;
      cursor_ = options_.pad_batches ? CachelineAlignUp(tail) : tail;
    }
  }
  next_chunk_seq_ = max_seq + 1;
}

}  // namespace log
}  // namespace flatstore
