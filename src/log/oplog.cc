#include "log/oplog.h"

#include <cstring>

#include "common/cacheline.h"
#include "log/log_entry.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace log {

OpLog::OpLog(RootArea* root, alloc::LazyAllocator* alloc, int core,
             const Options& options)
    : root_(root), alloc_(alloc), core_(core), options_(options) {}

OpLog::OpLog(RootArea* root, alloc::LazyAllocator* alloc, int core)
    : OpLog(root, alloc, core, Options()) {}

bool OpLog::EnsureRoom(uint64_t bytes, Lane lane) {
  FLATSTORE_CHECK_LE(bytes, kLogDataBytes) << "batch larger than a chunk";
  const bool cleaner = lane != kServing;
  std::atomic<uint64_t>& chunk =
      cleaner ? cleaner_chunk_[lane - kCleanerHot] : chunk_;
  uint64_t& cursor = cleaner ? cleaner_cursor_[lane - kCleanerHot] : cursor_;
  // relaxed: each cursor has exactly one writer (this thread); the load
  // reads our own previous store. Cross-thread readers go through the
  // acquire accessors.
  const uint64_t cur = chunk.load(std::memory_order_relaxed);

  if (cur != 0) {
    const uint64_t used = cursor - (cur + kLogDataOff);
    if (used + bytes <= kLogDataBytes) return true;
    // Rollover: seal the full chunk so recovery knows its extent even
    // after the tail record moves on.
    SealChunk(cur, used);
  }

  uint64_t fresh = alloc_->AllocRawChunk(core_);
  if (fresh == 0) return false;
  // Fresh log chunks must decode as empty: zero the data region (a reused
  // chunk holds stale bytes that must not replay).
  std::memset(root_->pool()->At(fresh + alloc::kChunkHeaderSize), 0,
              alloc::kChunkSize - alloc::kChunkHeaderSize);
  auto* hdr = root_->pool()->PtrAt<LogChunkHeader>(fresh +
                                                   alloc::kChunkHeaderSize);
  hdr->used_final = 0;
  root_->pool()->PersistFence(hdr, sizeof(LogChunkHeader));

  // relaxed: the fetch_add only needs atomicity — serving and cleaner
  // rollovers may race here; uniqueness is the contract, not ordering.
  // (This was a plain `next_chunk_seq_++` before the thread-safety pass:
  // a lost update could hand two chunks the same sequence number and
  // break the tombstone-liveness bound in PickVictims.)
  const uint32_t seq = next_chunk_seq_.fetch_add(1, std::memory_order_relaxed);
  uint64_t slot = root_->RegisterChunk(fresh, core_, seq, cleaner);
  {
    LockGuard<SpinLock> g(usage_lock_);
    ChunkUsage& u = usage_[fresh];
    u.seq = seq;
    u.cleaner = cleaner;
    u.temp = lane == kCleanerCold ? Temp::kCold : Temp::kHot;
    u.registry_slot = slot;
  }
  // Release publishes the zeroed data region and usage record to the
  // cleaner's acquire loads before it can see the new chunk offset.
  chunk.store(fresh, std::memory_order_release);
  cursor = fresh + kLogDataOff;
  return true;
}

void OpLog::SealChunk(uint64_t chunk_off, uint64_t used) {
  auto* hdr = root_->pool()->PtrAt<LogChunkHeader>(chunk_off +
                                                   alloc::kChunkHeaderSize);
  hdr->used_final = used;
  root_->pool()->PersistFence(hdr, sizeof(uint64_t));
  LockGuard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  FLATSTORE_CHECK(it != usage_.end());
  it->second.sealed = true;
}

uint64_t OpLog::WriteEntries(uint64_t* cursor, const EntryRef* entries,
                             size_t n, uint64_t* offsets) {
  pm::PmPool* pool = root_->pool();
  const uint64_t start = *cursor;
  uint64_t pos = start;
  for (size_t i = 0; i < n; i++) {
    std::memcpy(pool->At(pos), entries[i].data, entries[i].len);
    vt::Charge(vt::CostMemcpy(entries[i].len));
    offsets[i] = pos;
    pos += entries[i].len;
  }
  // Zero the padding bytes explicitly: they share the final entry's line,
  // so the persist below makes them durable too. Without this, a chunk
  // that is freed and later reused could expose *stale entries from its
  // previous incarnation* inside the padding gap after a crash (the
  // fresh-chunk memset in EnsureRoom is volatile).
  const uint64_t padded = options_.pad_batches ? CachelineAlignUp(pos) : pos;
  if (padded > pos) std::memset(pool->At(pos), 0, padded - pos);
  // One persist sweep over every touched line — this is where batching
  // pays: 16-byte entries share lines, so N entries cost ~N/4 line
  // flushes instead of N.
  // fs-lint: deferred-fence(callers fence the batch: AppendBatch before moving the tail record, CleanerAppendBatch before committing used_final)
  pool->Persist(pool->At(start), padded - start);
  // Cacheline-align the next batch so it never re-flushes our last line
  // (§3.2 "Padding"; the ablation bench disables this).
  *cursor = padded;
  return pos;  // end of the entries themselves (commit point)
}

bool OpLog::AppendBatch(const EntryRef* entries, size_t n,
                        uint64_t* offsets) {
  if (n == 0) return true;
  uint64_t bytes = 0;
  for (size_t i = 0; i < n; i++) bytes += entries[i].len;
  if (!EnsureRoom(bytes + kCachelineSize, kServing)) return false;

  const uint64_t end = WriteEntries(&cursor_, entries, n, offsets);
  root_->pool()->Fence();  // entries durable before the tail moves

  // relaxed: single writer — reads our own previous store.
  const uint64_t seq = tail_seq_.load(std::memory_order_relaxed) + 1;
  // Release: the cleaner's acquire load of tail_ must observe the entry
  // bytes written above before it trusts the extent.
  tail_.store(end, std::memory_order_release);
  tail_seq_.store(seq, std::memory_order_release);
  root_->WriteTail(core_, seq, end);
  root_->pool()->Fence();

  // One logical tick per serving batch (the cost-benefit age unit).
  // relaxed: monotonic counter, single serving writer.
  write_clock_.fetch_add(1, std::memory_order_relaxed);
  // relaxed: our own store from EnsureRoom this batch.
  AccountBatch(chunk_.load(std::memory_order_relaxed), entries, n,
               /*cleaner=*/false, /*age_clock=*/0);
  batches_++;
  entries_ += n;
  return true;
}

bool OpLog::CleanerAppendBatch(const EntryRef* entries, size_t n,
                               uint64_t* offsets, Temp temp,
                               uint64_t age_clock) {
  if (n == 0) return true;
  uint64_t bytes = 0;
  for (size_t i = 0; i < n; i++) bytes += entries[i].len;
  const Lane lane = CleanerLane(temp);
  if (!EnsureRoom(bytes + kCachelineSize, lane)) return false;

  const uint64_t end =
      WriteEntries(&cleaner_cursor_[lane - kCleanerHot], entries, n, offsets);
  root_->pool()->Fence();
  // relaxed: cleaner_chunk_ has a single writer — the cleaner itself.
  const uint64_t cchunk =
      cleaner_chunk_[lane - kCleanerHot].load(std::memory_order_relaxed);
  // Commit through the chunk's used_final (the cleaner has no tail
  // record); must be durable before the index is re-pointed at the
  // copies.
  auto* hdr =
      root_->pool()->PtrAt<LogChunkHeader>(cchunk + alloc::kChunkHeaderSize);
  hdr->used_final = end - (cchunk + kLogDataOff);
  root_->pool()->PersistFence(hdr, sizeof(uint64_t));

  AccountBatch(cchunk, entries, n, /*cleaner=*/true, age_clock);
  return true;
}

void OpLog::AccountBatch(uint64_t chunk, const EntryRef* entries, size_t n,
                         bool cleaner, uint64_t age_clock) {
  uint32_t tombs = 0;
  uint32_t max_covered = 0;
  uint64_t bytes = 0;
  for (size_t i = 0; i < n; i++) {
    bytes += entries[i].len;
    if ((entries[i].data[0] & 0x3) ==
        static_cast<uint8_t>(OpType::kDelete)) {
      tombs++;
      // Covered sequence sits in the tombstone's Ptr field (40 bits).
      uint32_t covered = static_cast<uint32_t>(
          entry_internal::Get40(entries[i].data + 11));
      max_covered = std::max(max_covered, covered);
    }
  }
  // relaxed: logical stamp — monotonicity per chunk is all that matters.
  const uint64_t now = write_clock_.load(std::memory_order_relaxed);
  LockGuard<SpinLock> g(usage_lock_);
  ChunkUsage& u = usage_[chunk];
  u.total += static_cast<uint32_t>(n);
  u.live += static_cast<uint32_t>(n);
  u.tombs += tombs;
  u.max_covered_seq = std::max(u.max_covered_seq, max_covered);
  u.total_bytes += bytes;
  u.live_bytes += bytes;
  // Serving appends stamp "now"; relocation chunks inherit the victim's
  // stamp so survivors keep their age instead of looking freshly written.
  u.last_write_clock = cleaner ? std::max(u.last_write_clock, age_clock)
                               : now;
}

void OpLog::SealActiveChunk() {
  // relaxed: serving-thread-owned cursor; see EnsureRoom.
  const uint64_t chunk = chunk_.load(std::memory_order_relaxed);
  if (chunk == 0) return;
  SealChunk(chunk, cursor_ - (chunk + kLogDataOff));
  chunk_.store(0, std::memory_order_release);
  cursor_ = 0;
}

void OpLog::RotateCleanerChunk() {
  for (int t = 0; t < kNumTemps; t++) {
    // relaxed: cleaner-thread-owned cursor; see EnsureRoom.
    const uint64_t chunk = cleaner_chunk_[t].load(std::memory_order_relaxed);
    if (chunk == 0) continue;
    SealChunk(chunk, cleaner_cursor_[t] - (chunk + kLogDataOff));
    cleaner_chunk_[t].store(0, std::memory_order_release);
    cleaner_cursor_[t] = 0;
  }
}

void OpLog::AdjustLive(uint64_t entry_off, uint32_t entry_len, int dir) {
  const uint64_t chunk_off = AlignDown(entry_off, alloc::kChunkSize);
  if (entry_len == 0) {
    // Length unknown: decode the entry in place (its bytes are durable
    // and immutable once appended). Tolerate failure — tests poke
    // arbitrary offsets to drive victim selection.
    const uint64_t chunk_end = chunk_off + alloc::kChunkSize;
    DecodedEntry e;
    if (DecodeEntry(
            static_cast<const uint8_t*>(root_->pool()->At(entry_off)),
            std::min<uint64_t>(kMaxEntrySize, chunk_end - entry_off), &e)) {
      entry_len = e.entry_len;
    }
  }
  // relaxed: logical stamp — monotonicity per chunk is all that matters.
  const uint64_t now = write_clock_.load(std::memory_order_relaxed);
  LockGuard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  if (it == usage_.end()) return;
  ChunkUsage& u = it->second;
  if (dir < 0) {
    if (u.live > 0) u.live--;
    u.live_bytes -= std::min<uint64_t>(u.live_bytes, entry_len);
    // A death is an overwrite/delete event: the chunk is "recently
    // active", so cost-benefit deprioritizes it while its live ratio is
    // still falling (LFS: clean cold, stable garbage first).
    u.last_write_clock = std::max(u.last_write_clock, now);
  } else {
    u.live++;
    u.live_bytes += entry_len;
  }
}

void OpLog::NoteDead(uint64_t entry_off, uint32_t entry_len) {
  AdjustLive(entry_off, entry_len, -1);
}

void OpLog::NoteLiveLost(uint64_t entry_off, uint32_t entry_len) {
  AdjustLive(entry_off, entry_len, +1);
}

std::map<uint64_t, ChunkUsage> OpLog::UsageSnapshot() const {
  LockGuard<SpinLock> g(usage_lock_);
  return usage_;
}

std::vector<VictimInfo> OpLog::PickVictims(const VictimQuery& query) const {
  struct Candidate {
    double score;   // kCostBenefit ordering key (unused for kLiveRatio)
    uint32_t seq;
    VictimInfo info;
  };
  std::vector<Candidate> candidates;
  // Acquire snapshot of the serving cursor: the serving thread publishes
  // these with release stores (they are NOT protected by usage_lock_).
  const uint64_t active_chunk = chunk_.load(std::memory_order_acquire);
  uint64_t active_cleaner[kNumTemps];
  for (int t = 0; t < kNumTemps; t++) {
    active_cleaner[t] = cleaner_chunk_[t].load(std::memory_order_acquire);
  }
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  // relaxed: logical clock snapshot; slight lag only shifts every age
  // equally within this pick.
  const uint64_t now = write_clock_.load(std::memory_order_relaxed);
  {
    LockGuard<SpinLock> g(usage_lock_);
    uint64_t min_seq = UINT64_MAX;
    for (const auto& [off, u] : usage_) {
      min_seq = std::min<uint64_t>(min_seq, u.seq);
    }
    for (const auto& [off, u] : usage_) {
      if (!u.sealed) continue;                       // still being written
      if (u.retired) continue;     // unlinked, free already in flight
      if (u.busy) continue;        // claimed by a cleaner job / tiering
      if (off == active_chunk) continue;
      if (off == active_cleaner[0] || off == active_cleaner[1]) continue;
      // Never retire the chunk the durable tail record points into, even
      // when it is sealed (forced rotation seals before the tail moves).
      // Unregistering it would leave a crash-time tail referencing a
      // freed — and possibly reused — chunk.
      if (tail != 0 && AlignDown(tail, alloc::kChunkSize) == off) continue;
      if (u.total == 0) continue;
      // Tombstones whose covered chunks are all gone are as good as dead:
      // discount them so tombstone-only chunks become victims too (the
      // cleaner verifies exact liveness before dropping anything).
      const uint32_t dead_tombs =
          (u.tombs > 0 && min_seq > u.max_covered_seq) ? u.tombs : 0;
      const uint32_t effective_live =
          u.live > dead_tombs ? u.live - dead_tombs : 0;
      // kLiveRatio keeps the legacy entry-count ratio; kCostBenefit uses
      // the byte-granular counters (falling back to counts for chunks
      // that predate them, e.g. hand-built test fixtures).
      const double count_ratio =
          static_cast<double>(effective_live) / u.total;
      double ratio = count_ratio;
      if (query.policy == VictimQuery::Policy::kCostBenefit &&
          u.total_bytes > 0) {
        const uint64_t dead_tomb_bytes =
            static_cast<uint64_t>(dead_tombs) * kPtrEntrySize;
        const uint64_t eff_live_bytes =
            u.live_bytes > dead_tomb_bytes ? u.live_bytes - dead_tomb_bytes
                                           : 0;
        ratio = static_cast<double>(eff_live_bytes) /
                static_cast<double>(u.total_bytes);
      }
      // Cold-lane chunks are packed with proven-stable survivors and
      // will not decay much further: cleaning one at high liveness is
      // almost pure copying. Gate them at half the configured threshold
      // so the budget goes to chunks whose dead fraction can still grow.
      const double cap = (u.cleaner && u.temp == Temp::kCold)
                             ? query.live_ratio * 0.5
                             : query.live_ratio;
      if (ratio >= cap) continue;
      Candidate c;
      c.seq = u.seq;
      c.info.chunk_off = off;
      c.info.live_ratio = ratio;
      c.info.age = now > u.last_write_clock ? now - u.last_write_clock : 0;
      c.info.last_write_clock = u.last_write_clock;
      c.info.from_cold_chunk = u.cleaner && u.temp == Temp::kCold;
      c.info.from_cleaner_chunk = u.cleaner;
      // RAMCloud/LFS cost-benefit: benefit = freeable space x age of the
      // data; cost = read the chunk + rewrite the live part (1 + u).
      c.score = (1.0 - ratio) * static_cast<double>(c.info.age) /
                (1.0 + ratio);
      candidates.push_back(c);
    }
  }
  if (query.policy == VictimQuery::Policy::kCostBenefit) {
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.seq < b.seq;  // ties: oldest first (deterministic)
              });
  } else {
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.seq < b.seq;  // legacy: oldest sequence first
              });
  }
  std::vector<VictimInfo> out;
  for (size_t i = 0; i < candidates.size() && i < query.max; i++) {
    out.push_back(candidates[i].info);
  }
  return out;
}

std::vector<uint64_t> OpLog::PickVictims(double live_ratio,
                                         size_t max) const {
  VictimQuery q;
  q.policy = VictimQuery::Policy::kLiveRatio;
  q.live_ratio = live_ratio;
  q.max = max;
  std::vector<uint64_t> out;
  for (const VictimInfo& v : PickVictims(q)) out.push_back(v.chunk_off);
  return out;
}

uint64_t OpLog::MinSeq() const {
  LockGuard<SpinLock> g(usage_lock_);
  uint64_t min_seq = UINT64_MAX;
  for (const auto& [off, u] : usage_) {
    if (u.seq < min_seq) min_seq = u.seq;
  }
  return min_seq;
}

uint64_t OpLog::CommittedBytes(uint64_t chunk_off) const {
  {
    // Acquire pairs with the serving path's release stores: observing
    // tail_ >= an entry's end implies the entry bytes are visible.
    const uint64_t active_chunk = chunk_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    LockGuard<SpinLock> g(usage_lock_);
    auto it = usage_.find(chunk_off);
    if (it != usage_.end() && !it->second.sealed) {
      // The serving chunk's extent is bounded by the tail; the cleaner
      // chunk's by used_final (maintained per cleaner batch).
      if (chunk_off == active_chunk) {
        return tail == 0 ? 0 : tail - (chunk_off + kLogDataOff);
      }
    }
  }
  return root_->pool()
      ->PtrAt<LogChunkHeader>(chunk_off + alloc::kChunkHeaderSize)
      ->used_final;
}

bool OpLog::ClaimChunk(uint64_t chunk_off) {
  LockGuard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  if (it == usage_.end() || it->second.retired || it->second.busy) {
    return false;
  }
  it->second.busy = true;
  return true;
}

void OpLog::UnclaimChunk(uint64_t chunk_off) {
  LockGuard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  if (it != usage_.end()) it->second.busy = false;
}

std::vector<OpLog::TierCandidate> OpLog::PickTierCandidates(
    uint64_t min_age, double min_live_ratio, size_t max) {
  struct Candidate {
    bool cold;
    uint32_t seq;
    TierCandidate tc;
  };
  std::vector<Candidate> candidates;
  const uint64_t active_chunk = chunk_.load(std::memory_order_acquire);
  uint64_t active_cleaner[kNumTemps];
  for (int t = 0; t < kNumTemps; t++) {
    active_cleaner[t] = cleaner_chunk_[t].load(std::memory_order_acquire);
  }
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  // relaxed: logical clock snapshot, same contract as PickVictims.
  const uint64_t now = write_clock_.load(std::memory_order_relaxed);
  {
    LockGuard<SpinLock> g(usage_lock_);
    for (const auto& [off, u] : usage_) {
      if (!u.sealed || u.retired || u.busy) continue;
      if (off == active_chunk) continue;
      if (off == active_cleaner[0] || off == active_cleaner[1]) continue;
      // The durable tail record must keep pointing into a replayable log
      // chunk, so the tail chunk never tiers (same rule as PickVictims).
      if (tail != 0 && AlignDown(tail, alloc::kChunkSize) == off) continue;
      // A chunk with no live entries contributes nothing to the tier but
      // would leak 4 MB forever; leave it for the cleaner to free.
      if (u.total == 0 || u.live == 0) continue;
      const double ratio = static_cast<double>(u.live) / u.total;
      if (ratio < min_live_ratio) continue;
      const uint64_t age =
          now > u.last_write_clock ? now - u.last_write_clock : 0;
      if (age < min_age) continue;
      Candidate c;
      c.cold = u.cleaner && u.temp == Temp::kCold;
      c.seq = u.seq;
      c.tc.chunk_off = off;
      c.tc.seq = u.seq;
      c.tc.registry_slot = u.registry_slot;
      candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.cold != b.cold) return a.cold;  // cold lane first
                return a.seq < b.seq;                 // then oldest
              });
    std::vector<TierCandidate> out;
    for (size_t i = 0; i < candidates.size() && i < max; i++) {
      usage_[candidates[i].tc.chunk_off].busy = true;  // claim
      out.push_back(candidates[i].tc);
    }
    return out;
  }
}

void OpLog::DetachForTier(uint64_t chunk_off) {
  LockGuard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  FLATSTORE_CHECK(it != usage_.end())
      << "DetachForTier on unknown chunk " << chunk_off;
  FLATSTORE_CHECK(it->second.busy)
      << "DetachForTier without a claim on chunk " << chunk_off;
  // No UnregisterChunk, no FreeRawChunk, no checkpoint disarm: the chunk
  // stays registered (with its persistent kChunkTiered flag) and its
  // bytes stay allocated — tier nodes alias entries inside it. An armed
  // checkpoint also stays valid for the same reason.
  usage_.erase(it);
}

void OpLog::BeginRetire(uint64_t chunk_off) {
  LockGuard<SpinLock> g(usage_lock_);
  auto it = usage_.find(chunk_off);
  FLATSTORE_CHECK(it != usage_.end());
  FLATSTORE_CHECK(!it->second.retired) << "double retire of chunk "
                                       << chunk_off;
  it->second.retired = true;
}

void OpLog::ReleaseChunk(uint64_t chunk_off) {
  uint64_t slot;
  {
    LockGuard<SpinLock> g(usage_lock_);
    auto it = usage_.find(chunk_off);
    FLATSTORE_CHECK(it != usage_.end());
    slot = it->second.registry_slot;
    usage_.erase(it);
  }
  root_->UnregisterChunk(slot);
  alloc_->FreeRawChunk(chunk_off);
  // Freeing a chunk invalidates any armed online checkpoint: its index
  // snapshot may reference entries that lived here.
  Superblock* sb = root_->superblock();
  if (sb->clean_shutdown != 0) {
    sb->clean_shutdown = 0;
    root_->pool()->PersistFence(&sb->clean_shutdown, 4);
  }
}

void OpLog::AdoptRecoveredState(uint64_t tail, uint64_t tail_seq,
                                std::map<uint64_t, ChunkUsage> usage) {
  LockGuard<SpinLock> g(usage_lock_);
  usage_ = std::move(usage);
  // Recovery is single-threaded (no cleaner or serving threads yet), but
  // release keeps the publication contract uniform.
  tail_.store(tail, std::memory_order_release);
  tail_seq_.store(tail_seq, std::memory_order_release);
  chunk_.store(0, std::memory_order_release);
  cursor_ = 0;
  for (int t = 0; t < kNumTemps; t++) {
    cleaner_chunk_[t].store(0, std::memory_order_release);
    cleaner_cursor_[t] = 0;
  }
  uint32_t max_seq = 0;
  for (auto& [off, u] : usage_) {
    max_seq = std::max(max_seq, u.seq);
    // The logical write clock is volatile; re-seed chunk ages from the
    // allocation sequence so cost-benefit ordering survives recovery
    // (older chunks stay older).
    if (u.last_write_clock == 0) u.last_write_clock = u.seq;
    if (tail != 0 && off == AlignDown(tail, alloc::kChunkSize) && !u.sealed) {
      chunk_.store(off, std::memory_order_release);
      cursor_ = options_.pad_batches ? CachelineAlignUp(tail) : tail;
    }
  }
  next_chunk_seq_.store(max_seq + 1, std::memory_order_release);
  // relaxed: single-threaded recovery; clock must land past every seeded
  // chunk stamp so fresh ages are non-negative.
  write_clock_.store(max_seq + 1, std::memory_order_relaxed);
}

}  // namespace log
}  // namespace flatstore
