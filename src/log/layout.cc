#include "log/layout.h"

#include <atomic>
#include <cstring>

#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace log {

void RootArea::Format(int num_cores) {
  FLATSTORE_CHECK(num_cores >= 1 && num_cores <= kMaxCores);
  std::memset(pool_->base(), 0, alloc::kChunkSize);
  // The zeroed root chunk (tail slots, registry) is made durable before
  // any superblock field so a torn format can never pair fresh fields
  // with stale metadata.
  pool_->PersistFence(pool_->base(), alloc::kChunkSize);
  Superblock* sb = superblock();
  sb->num_cores = static_cast<uint32_t>(num_cores);
  sb->clean_shutdown = 0;
  sb->checkpoint_off = 0;
  sb->checkpoint_items = 0;
  sb->pool_size = pool_->size();
  pool_->Persist(sb, sizeof(Superblock));
  pool_->Fence();
  // The magic is the pool's validity bit: it becomes durable only after
  // every other field is fenced. Writing it first risked a cacheline
  // eviction persisting a "valid" magic over an otherwise torn format,
  // which Open() would then trust.
  sb->magic = kSuperblockMagic;
  pool_->PersistFence(&sb->magic, sizeof(sb->magic));
}

uint64_t RootArea::ReadTail(int core, uint64_t* seq) const {
  const CoreTailArea* area = tails(core);
  uint64_t best_seq = 0, best_tail = 0;
  for (const auto& line : area->lines) {
    const TailSlot& slot = line.slot;
    if (slot.seq > best_seq && slot.check == TailCheck(slot.seq, slot.tail)) {
      best_seq = slot.seq;
      best_tail = slot.tail;
    }
  }
  *seq = best_seq;
  return best_tail;
}

void RootArea::WriteTail(int core, uint64_t seq, uint64_t tail) {
  FLATSTORE_DCHECK(seq > 0);
  CoreTailArea* area = tails(core);
  auto& line = area->lines[seq % kTailSlots];
  line.slot.seq = seq;
  line.slot.tail = tail;
  line.slot.check = TailCheck(seq, tail);
  // fs-lint: deferred-fence(the tail record is the batch commit point — AppendBatch issues the fence so one sfence covers the whole g-persist, paper section 3.3)
  pool_->Persist(&line, sizeof(TailSlot));
}

uint64_t RootArea::RegisterChunk(uint64_t chunk_off, int core, uint32_t seq,
                                 bool cleaner) {
  ChunkRecord* recs = registry();
  const uint64_t flagged = chunk_off | (cleaner ? kChunkCleaner : 0);
  // Claim a free slot; CAS-protected so concurrent cores don't collide.
  // Start probing at a hash of the chunk offset to spread occupancy.
  uint64_t start = (chunk_off / alloc::kChunkSize) % kRegistrySlots;
  for (uint64_t i = 0; i < kRegistrySlots; i++) {
    uint64_t s = (start + i) % kRegistrySlots;
    uint64_t expected = 0;
    if (std::atomic_ref<uint64_t>(recs[s].chunk_off)
            .compare_exchange_strong(expected, flagged | kChunkProvisional,
                                     std::memory_order_acq_rel)) {
      // Two-step durable commit (see kChunkProvisional): persist the full
      // record while still provisional, then flip to the final offset with
      // a single 8-byte — hence tear-proof — persist.
      recs[s].core = static_cast<uint32_t>(core);
      recs[s].seq = seq;
      pool_->PersistFence(&recs[s], sizeof(ChunkRecord));
      std::atomic_ref<uint64_t>(recs[s].chunk_off)
          .store(flagged, std::memory_order_release);
      pool_->PersistFence(&recs[s].chunk_off, sizeof(uint64_t));
      vt::Charge(vt::kCpuCas);
      {
        LockGuard<SpinLock> g(mirror_lock_);
        mirror_[chunk_off] = {core, seq, false};
      }
      return s;
    }
  }
  FLATSTORE_CHECK(false) << "chunk registry exhausted";
  return 0;
}

void RootArea::UnregisterChunk(uint64_t slot_index) {
  FLATSTORE_DCHECK(slot_index < kRegistrySlots);
  ChunkRecord* rec = &registry()[slot_index];
  {
    LockGuard<SpinLock> g(mirror_lock_);
    mirror_.erase(rec->chunk_off & ~kChunkFlagsMask);
  }
  std::atomic_ref<uint64_t>(rec->chunk_off)
      .store(0, std::memory_order_release);
  pool_->PersistFence(rec, sizeof(ChunkRecord));
}

bool RootArea::ChunkInfo(uint64_t chunk_off, int* core, uint32_t* seq) const {
  LockGuard<SpinLock> g(mirror_lock_);
  auto it = mirror_.find(chunk_off);
  if (it == mirror_.end()) return false;
  *core = it->second.core;
  *seq = it->second.seq;
  return true;
}

bool RootArea::ChunkTiered(uint64_t chunk_off) const {
  LockGuard<SpinLock> g(mirror_lock_);
  auto it = mirror_.find(chunk_off);
  return it != mirror_.end() && it->second.tiered;
}

void RootArea::SetChunkTiered(uint64_t slot_index) {
  FLATSTORE_DCHECK(slot_index < kRegistrySlots);
  ChunkRecord* rec = &registry()[slot_index];
  const uint64_t cur =
      std::atomic_ref<uint64_t>(rec->chunk_off).load(std::memory_order_acquire);
  FLATSTORE_CHECK(cur != 0 && (cur & kChunkProvisional) == 0)
      << "SetChunkTiered on a free/provisional slot";
  // Single 8-byte flagged store: atomic under torn writes, so the flag is
  // the tear-proof commit point of the whole chunk conversion. Every tier
  // node this chunk feeds was persisted and fenced by the caller first.
  std::atomic_ref<uint64_t>(rec->chunk_off)
      .store(cur | kChunkTiered, std::memory_order_release);
  pool_->PersistFence(&rec->chunk_off, sizeof(uint64_t));
  {
    LockGuard<SpinLock> g(mirror_lock_);
    auto it = mirror_.find(cur & ~kChunkFlagsMask);
    // fs-lint: pm-write(DRAM registry mirror, not persistent memory)
    if (it != mirror_.end()) it->second.tiered = true;
  }
}

void RootArea::RebuildMirror() {
  LockGuard<SpinLock> g(mirror_lock_);
  mirror_.clear();
  const ChunkRecord* recs = registry();
  for (uint64_t s = 0; s < kRegistrySlots; s++) {
    const uint64_t off = recs[s].chunk_off;
    if (off != 0 && (off & kChunkProvisional) == 0) {
      mirror_[off & ~kChunkFlagsMask] = {static_cast<int>(recs[s].core),
                                         recs[s].seq,
                                         (off & kChunkTiered) != 0};
    }
  }
}

uint64_t RootArea::ScrubProvisionalRecords() {
  ChunkRecord* recs = registry();
  uint64_t scrubbed = 0;
  for (uint64_t s = 0; s < kRegistrySlots; s++) {
    if (recs[s].chunk_off & kChunkProvisional) {
      std::atomic_ref<uint64_t>(recs[s].chunk_off)
          .store(0, std::memory_order_release);
      pool_->PersistFence(&recs[s], sizeof(ChunkRecord));
      scrubbed++;
    }
  }
  return scrubbed;
}

}  // namespace log
}  // namespace flatstore
