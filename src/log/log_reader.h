// Sequential reader over one log chunk's committed bytes.
//
// Entries are appended in batches that are padded to cacheline boundaries
// (§3.2), so the byte stream is: [batch entries][zero padding][batch
// entries]... The reader decodes entries back-to-back; on hitting
// undecodable bytes (zero padding or a torn, uncommitted suffix) it skips
// to the next cacheline boundary and retries once — a failure *at* a line
// boundary ends the chunk. This is sound because chunks are zero-filled
// when (re)allocated and batches always begin on a line boundary.

#ifndef FLATSTORE_LOG_LOG_READER_H_
#define FLATSTORE_LOG_LOG_READER_H_

#include <cstdint>

#include "common/cacheline.h"
#include "log/log_entry.h"
#include "log/oplog.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace log {

// Iterates the committed entries of a single log chunk.
class LogChunkReader {
 public:
  // `committed` = committed data length (bytes from the chunk's data
  // start), i.e. OpLog::CommittedBytes or the replayer's tail bound.
  LogChunkReader(const pm::PmPool* pool, uint64_t chunk_off,
                 uint64_t committed)
      : base_(static_cast<const uint8_t*>(pool->At(chunk_off + kLogDataOff))),
        chunk_data_off_(chunk_off + kLogDataOff),
        committed_(committed) {}

  // Decodes the next entry; returns false at end of committed data.
  // `*entry_off` receives the entry's absolute pool offset.
  bool Next(DecodedEntry* out, uint64_t* entry_off) {
    while (pos_ < committed_) {
      if (DecodeEntry(base_ + pos_, committed_ - pos_, out)) {
        *entry_off = chunk_data_off_ + pos_;
        pos_ += out->entry_len;
        return true;
      }
      // Padding or truncation: try the next line boundary, unless we are
      // already on one (then the stream has ended).
      const uint64_t aligned = CachelineAlignUp(pos_ + 1);
      if (pos_ % kCachelineSize == 0) return false;
      pos_ = aligned;
    }
    return false;
  }

  // Bytes consumed so far.
  uint64_t position() const { return pos_; }

  // Resumes a previously interrupted scan: `pos` must be a value returned
  // by position() for this chunk (an entry or padding boundary). The
  // incremental cleaner uses this to continue a quantum-bounded scan
  // without re-decoding the prefix.
  void SeekTo(uint64_t pos) { pos_ = pos; }

 private:
  const uint8_t* base_;
  uint64_t chunk_data_off_;
  uint64_t committed_;
  uint64_t pos_ = 0;
};

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_LOG_READER_H_
