// Sequential readers over one log chunk's committed bytes.
//
// Entries are appended in batches that are padded to cacheline boundaries
// (§3.2), so the byte stream is: [batch entries][zero padding][batch
// entries]... The reader decodes entries back-to-back; on hitting
// undecodable bytes (zero padding or a torn, uncommitted suffix) it skips
// to the next cacheline boundary and retries once — a failure *at* a line
// boundary ends the chunk. This is sound because chunks are zero-filled
// when (re)allocated and batches always begin on a line boundary.
//
// ChainedChunkReader layers transaction-chain framing on top: members of
// a chain (txn-flagged entries) are withheld until a commit record
// validates the chain (count, contiguity, byte length, checksum), then
// yielded followed by the commit itself. Chains with no valid commit are
// dropped entirely — the all-or-nothing crash semantic.

#ifndef FLATSTORE_LOG_LOG_READER_H_
#define FLATSTORE_LOG_LOG_READER_H_

#include <cstdint>

#include "common/cacheline.h"
#include "common/hash.h"
#include "log/log_entry.h"
#include "log/oplog.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace log {

// Iterates the committed entries of a single log chunk.
class LogChunkReader {
 public:
  // `committed` = committed data length (bytes from the chunk's data
  // start), i.e. OpLog::CommittedBytes or the replayer's tail bound.
  LogChunkReader(const pm::PmPool* pool, uint64_t chunk_off,
                 uint64_t committed)
      : base_(static_cast<const uint8_t*>(pool->At(chunk_off + kLogDataOff))),
        chunk_data_off_(chunk_off + kLogDataOff),
        committed_(committed) {}

  // Decodes the next entry; returns false at end of committed data.
  // `*entry_off` receives the entry's absolute pool offset.
  bool Next(DecodedEntry* out, uint64_t* entry_off) {
    while (pos_ < committed_) {
      if (DecodeEntry(base_ + pos_, committed_ - pos_, out)) {
        *entry_off = chunk_data_off_ + pos_;
        pos_ += out->entry_len;
        return true;
      }
      // Padding or truncation: try the next line boundary, unless we are
      // already on one (then the stream has ended).
      const uint64_t aligned = CachelineAlignUp(pos_ + 1);
      if (pos_ % kCachelineSize == 0) return false;
      pos_ = aligned;
    }
    return false;
  }

  // Bytes consumed so far.
  uint64_t position() const { return pos_; }

  // Resumes a previously interrupted scan: `pos` must be a value returned
  // by position() for this chunk (an entry or padding boundary). The
  // incremental cleaner uses this to continue a quantum-bounded scan
  // without re-decoding the prefix.
  void SeekTo(uint64_t pos) { pos_ = pos; }

 private:
  const uint8_t* base_;
  uint64_t chunk_data_off_;
  uint64_t committed_;
  uint64_t pos_ = 0;
};

// Chunk reader that enforces transaction-chain atomicity (§5.3): a chain
// of txn-flagged members is yielded only once its commit record verifies
//   * member count   == the commit's Version field,
//   * contiguity     == members back-to-back, commit right after,
//   * byte length    == the commit's Ptr field,
//   * Hash64(bytes)  == the commit's Key field,
// in which case the members come out in log order followed by the commit
// itself (consumers skip OpType::kTxnCommit for index work). A chain that
// reaches a plain entry, an invalid commit, or end-of-chunk first is
// dropped and counted — a torn or aborted transaction "never happened".
// Non-chain entries pass through unchanged.
class ChainedChunkReader {
 public:
  ChainedChunkReader(const pm::PmPool* pool, uint64_t chunk_off,
                     uint64_t committed)
      : raw_(pool, chunk_off, committed), pool_(pool) {}

  bool Next(DecodedEntry* out, uint64_t* entry_off) {
    while (true) {
      if (emit_pos_ < emit_count_) {
        *out = pend_[emit_pos_].e;
        *entry_off = pend_[emit_pos_].off;
        emit_pos_++;
        return true;
      }
      if (emit_count_ > 0) {  // finished emitting a validated chain
        emit_count_ = emit_pos_ = 0;
        pend_count_ = 0;
      }
      DecodedEntry e;
      uint64_t off;
      if (!raw_.Next(&e, &off)) {
        DropPending();  // chunk ended mid-chain: no commit, never happened
        return false;
      }
      if (e.op == OpType::kTxnCommit) {
        if (ChainValid(e, off)) {
          pend_[pend_count_] = {e, off};  // commit yields last
          emit_count_ = pend_count_ + 1;
          emit_pos_ = 0;
          continue;
        }
        dropped_entries_ += pend_count_ + 1;
        orphan_chains_++;
        pend_count_ = 0;
        continue;
      }
      if (e.txn) {
        // A member not contiguous with the buffered chain starts a new
        // chain (the old one can no longer meet any commit's frame).
        if (pend_count_ > 0 && off != next_off_) DropPending();
        if (pend_count_ == kMaxTxnChain) DropPending();  // overlong: bogus
        if (pend_count_ == 0) chain_start_ = off;
        pend_[pend_count_++] = {e, off};
        next_off_ = off + e.entry_len;
        continue;
      }
      DropPending();  // plain entry interrupts any buffered chain
      *out = e;
      *entry_off = off;
      return true;
    }
  }

  uint64_t position() const { return raw_.position(); }
  // Chains dropped for want of a valid commit record, and the total
  // entries (members + bad commits) discarded with them.
  uint64_t orphan_chains() const { return orphan_chains_; }
  uint64_t dropped_entries() const { return dropped_entries_; }

 private:
  struct Pending {
    DecodedEntry e;
    uint64_t off;
  };

  bool ChainValid(const DecodedEntry& commit, uint64_t commit_off) const {
    return pend_count_ > 0 &&
           commit.version == static_cast<uint32_t>(pend_count_) &&
           next_off_ == commit_off &&
           commit.ptr == commit_off - chain_start_ &&
           Hash64(pool_->At(chain_start_), commit.ptr) == commit.key;
  }

  void DropPending() {
    if (pend_count_ == 0) return;
    dropped_entries_ += pend_count_;
    orphan_chains_++;
    pend_count_ = 0;
  }

  LogChunkReader raw_;
  const pm::PmPool* pool_;
  Pending pend_[kMaxTxnChain + 1];  // members + the commit record
  size_t pend_count_ = 0;
  size_t emit_pos_ = 0;
  size_t emit_count_ = 0;
  uint64_t chain_start_ = 0;  // pool offset of the first buffered member
  uint64_t next_off_ = 0;     // expected offset of the next member
  uint64_t orphan_chains_ = 0;
  uint64_t dropped_entries_ = 0;
};

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_LOG_READER_H_
