#include "log/log_cleaner.h"

#include <chrono>

#include "log/log_reader.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace log {

LogCleaner::LogCleaner(std::vector<OpLog*> logs, int first_core,
                       int last_core, CleanerHooks hooks,
                       const Options& options, alloc::LazyAllocator* alloc)
    : logs_(std::move(logs)),
      first_core_(first_core),
      last_core_(last_core),
      hooks_(std::move(hooks)),
      options_(options),
      alloc_(alloc) {
  FLATSTORE_CHECK(first_core_ >= 0 &&
                  last_core_ <= static_cast<int>(logs_.size()));
  FLATSTORE_CHECK(hooks_.epochs != nullptr)
      << "LogCleaner requires an epoch manager for deferred chunk frees";
}

LogCleaner::~LogCleaner() { Stop(); }

void LogCleaner::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    // The cleaner is a simulated core of its own: its CPU/PM work lands
    // on this clock, and its device traffic contends with serving cores
    // through the shared PmDevice (the Fig. 13 interference).
    vt::Clock clock;
    vt::ScopedClock bind(&clock);
    // relaxed: run flag; Stop() joins the thread, which orders everything.
    while (running_.load(std::memory_order_relaxed)) {
      if (RunOnce() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void LogCleaner::Stop() {
  // relaxed: run flag; the join below is the ordering point.
  running_.store(false, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

size_t LogCleaner::RunOnce() {
  if (options_.free_chunk_watermark != 0 &&
      alloc_->free_chunks() >= options_.free_chunk_watermark) {
    // Still reclaim what earlier passes deferred — readers may have
    // advanced since.
    return hooks_.epochs->ReclaimDeferred();
  }
  size_t unlinked = 0;
  for (int core = first_core_; core < last_core_; core++) {
    auto victims =
        logs_[core]->PickVictims(options_.live_ratio, options_.max_victims);
    for (uint64_t chunk : victims) {
      if (CleanChunk(core, chunk)) unlinked++;
    }
    // Expose relocated survivors (tombstones in particular) to future
    // victim selection.
    if (unlinked > 0) logs_[core]->RotateCleanerChunk();
  }
  // Run the deferred frees that have become epoch-safe (including this
  // pass's victims whenever no reader is currently pinned).
  return unlinked + hooks_.epochs->ReclaimDeferred();
}

bool LogCleaner::CleanChunk(int core, uint64_t chunk_off) {
  OpLog* log = logs_[core];
  pm::PmPool* pool = log->root()->pool();

  // Pass 1: collect the survivors.
  struct Survivor {
    uint64_t old_off;
    uint64_t key;
    uint32_t version;
    bool tombstone;
  };
  std::vector<Survivor> survivors;
  std::vector<OpLog::EntryRef> refs;

  const uint64_t committed = log->CommittedBytes(chunk_off);
  const uint64_t min_seq = log->MinSeq();
  LogChunkReader reader(pool, chunk_off, committed);
  DecodedEntry e;
  uint64_t off;
  while (reader.Next(&e, &off)) {
    vt::Charge(vt::kCpuSlotProbe + vt::kPmReadLatency / 8);
    const uint64_t packed = PackIndexValue(off, e.version);
    index::KvIndex* index = hooks_.index_for_key(e.key);
    uint64_t cur = 0;
    bool live = index->Get(e.key, &cur) && cur == packed;
    if (live && e.op == OpType::kDelete && e.ptr < min_seq) {
      // Tombstone whose covered chunk is gone: no stale Put can
      // resurrect the key anymore, so both the tombstone and its index
      // entry may die (paper §3.4's "safely reclaimed" condition).
      if (index->EraseIfEqual(e.key, packed)) live = false;
    }
    if (!live) {
      // relaxed: monotonic stat counter, no ordering required.
      entries_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    survivors.push_back({off, e.key, e.version, e.op == OpType::kDelete});
    refs.push_back({static_cast<const uint8_t*>(pool->At(off)),
                    e.entry_len});
  }

  // Pass 2: relocate the survivors (one batched copy into the cleaner
  // chain), then swing the index with CAS.
  std::vector<uint64_t> new_offs(refs.size());
  if (!refs.empty()) {
    if (!log->CleanerAppendBatch(refs.data(), refs.size(),
                                 new_offs.data())) {
      return false;  // PM pressure: abort this victim
    }
    for (size_t i = 0; i < survivors.size(); i++) {
      const Survivor& s = survivors[i];
      const uint64_t expected = PackIndexValue(s.old_off, s.version);
      const uint64_t desired = PackIndexValue(new_offs[i], s.version);
      if (hooks_.index_for_key(s.key)->CompareExchange(s.key, expected,
                                                       desired)) {
        // relaxed: monotonic stat counter, no ordering required.
        entries_copied_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Superseded while we copied: the copy is garbage.
        log->NoteDead(new_offs[i]);
        // relaxed: monotonic stat counter, no ordering required.
      entries_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Pass 3: unlink now, free later. A serving core may still hold an
  // entry pointer it decoded through the index *before* the CAS swings
  // above, so the physical free waits until every core has advanced past
  // the current epoch. BeginRetire keeps the chunk out of future victim
  // selection while the free is in flight.
  log->BeginRetire(chunk_off);
  hooks_.epochs->Defer([log, chunk_off] { log->ReleaseChunk(chunk_off); });
  // relaxed: monotonic stat counter, no ordering required.
  chunks_cleaned_.fetch_add(1, std::memory_order_relaxed);
  vt::Charge(vt::kCpuCas);
  return true;
}

}  // namespace log
}  // namespace flatstore
