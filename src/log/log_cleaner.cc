#include "log/log_cleaner.h"

#include <chrono>

#include "log/log_reader.h"
#include "pm/pm_stats.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace log {

namespace {
// Pipeline slice bounds: one scan slice / relocation sub-batch per
// AdvanceJob call, so a bounded RunOnce interleaves stages across
// victims instead of draining one victim end-to-end.
constexpr uint64_t kScanSliceBytes = 256 * 1024;
constexpr size_t kRelocSubBatch = 32;
}  // namespace

LogCleaner::LogCleaner(std::vector<OpLog*> logs, int first_core,
                       int last_core, CleanerHooks hooks,
                       const Options& options, alloc::LazyAllocator* alloc)
    : logs_(std::move(logs)),
      first_core_(first_core),
      last_core_(last_core),
      hooks_(std::move(hooks)),
      options_(options),
      alloc_(alloc) {
  FLATSTORE_CHECK(first_core_ >= 0 &&
                  last_core_ <= static_cast<int>(logs_.size()));
  FLATSTORE_CHECK(hooks_.epochs != nullptr)
      << "LogCleaner requires an epoch manager for deferred chunk frees";
}

LogCleaner::~LogCleaner() { Stop(); }

void LogCleaner::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    // The cleaner is a simulated core of its own: its CPU/PM work lands
    // on this clock, and its device traffic contends with serving cores
    // through the shared PmDevice (the Fig. 13 interference).
    vt::Clock clock;
    vt::ScopedClock bind(&clock);
    // relaxed: run flag; Stop() joins the thread, which orders everything.
    while (running_.load(std::memory_order_relaxed)) {
      if (RunOnce() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void LogCleaner::Stop() {
  // relaxed: run flag; the join below is the ordering point.
  running_.store(false, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

size_t LogCleaner::jobs_in_flight() const {
  LockGuard<SpinLock> g(run_lock_);
  return jobs_.size();
}

size_t LogCleaner::RunOnce() {
  LockGuard<SpinLock> g(run_lock_);
  const int pressure = alloc_->MemoryPressure();
  if (jobs_.empty() && pressure == 0 &&
      options_.free_chunk_watermark != 0 &&
      alloc_->free_chunks() >= options_.free_chunk_watermark) {
    // Nothing to clean yet. Still reclaim what earlier passes deferred —
    // readers may have advanced since.
    return hooks_.epochs->ReclaimDeferred();
  }

  // Backpressure: the byte budget grows with allocator pressure — boost
  // below the watermark, unbounded when the pool is nearly dry (level 2:
  // reclaiming beats pacing).
  uint64_t budget = UINT64_MAX;
  if (options_.quantum_bytes != 0 && pressure < 2) {
    budget = options_.quantum_bytes *
             (pressure == 1 ? options_.pressure_boost : 1);
  }

  size_t retired = 0;
  std::vector<int> rotate_cores;
  bool progressed = true;
  while (budget > 0 && progressed) {
    // Top up to max_victims in-flight jobs per core. Re-refilling every
    // round (not just once per pass) makes max_victims an in-flight cap
    // rather than a per-pass total: a boosted or unbounded budget can
    // retire many victims in one pass even with max_victims = 1.
    RefillJobs();
    if (jobs_.empty()) break;
    progressed = false;
    for (auto it = jobs_.begin(); it != jobs_.end() && budget > 0;) {
      if (AdvanceJob(*it, &budget)) progressed = true;
      if (it->stage == Stage::kDone) {
        retired++;
        rotate_cores.push_back(it->core);
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Expose relocated survivors (tombstones in particular) to future
  // victim selection.
  for (size_t i = 0; i < rotate_cores.size(); i++) {
    const int core = rotate_cores[i];
    bool seen = false;
    for (size_t j = 0; j < i; j++) seen = seen || rotate_cores[j] == core;
    if (!seen) logs_[core]->RotateCleanerChunk();
  }

  // Run the deferred frees that have become epoch-safe (including this
  // pass's victims whenever no reader is currently pinned).
  return retired + hooks_.epochs->ReclaimDeferred();
}

void LogCleaner::RefillJobs() {
  for (int core = first_core_; core < last_core_; core++) {
    size_t in_flight = 0;
    for (const CleaningJob& j : jobs_) {
      if (j.core == core) in_flight++;
    }
    if (in_flight >= options_.max_victims) continue;

    VictimQuery q;
    q.policy = options_.policy;
    q.live_ratio = options_.live_ratio;
    q.max = options_.max_victims;
    for (const VictimInfo& v : logs_[core]->PickVictims(q)) {
      if (in_flight >= options_.max_victims) break;
      // Tier handoff: cold-lane chunks drain into the ordered tier
      // instead of being re-cleaned (their stable survivors would only
      // bounce between cold cleaner chunks).
      if (options_.exclude_cold_from_victims && v.from_cold_chunk) continue;
      bool dup = false;
      for (const CleaningJob& j : jobs_) {
        dup = dup || (j.core == core && j.chunk_off == v.chunk_off);
      }
      if (dup) continue;
      // Claim the chunk so the tiering pass can never convert-and-detach
      // it while this job is in flight (the claim is consumed when
      // ReleaseChunk erases the chunk). A failed claim means the tiering
      // pass got there between PickVictims and here.
      if (!logs_[core]->ClaimChunk(v.chunk_off)) continue;
      CleaningJob job;
      job.core = core;
      job.chunk_off = v.chunk_off;
      job.committed = logs_[core]->CommittedBytes(v.chunk_off);
      job.age_clock = v.last_write_clock;
      job.pick_live_ratio = v.live_ratio;
      // Temperature classification (§3.4): survivors of a long-stable
      // victim — or of a chunk already in the cold lane — are cold. The
      // cleaner-chunk rule is generational: an entry relocated a second
      // time has already outlived one full decay cycle, so it is demoted
      // regardless of its chunk's write-clock age (with large chunks the
      // tail of a zipfian keeps restamping even stone-cold victims).
      job.cold = options_.segregate &&
                 (v.from_cold_chunk || v.from_cleaner_chunk ||
                  v.age >= options_.cold_age);
      jobs_.push_back(std::move(job));
      in_flight++;
    }
  }
}

bool LogCleaner::AdvanceJob(CleaningJob& job, uint64_t* budget) {
  OpLog* log = logs_[job.core];
  pm::PmPool* pool = log->root()->pool();

  if (job.stage == Stage::kScan) {
    // One bounded scan slice: collect survivors, resumable at any entry
    // boundary via the saved reader position.
    const uint64_t slice = std::min<uint64_t>(*budget, kScanSliceBytes);
    if (slice == 0) return false;
    LogChunkReader reader(pool, job.chunk_off, job.committed);
    reader.SeekTo(job.scan_pos);
    const uint64_t min_seq = log->MinSeq();
    const uint64_t start = reader.position();
    DecodedEntry e;
    uint64_t off;
    bool end_of_chunk = false;
    while (reader.position() - start < slice) {
      if (!reader.Next(&e, &off)) {
        end_of_chunk = true;
        break;
      }
      vt::Charge(vt::kCpuSlotProbe + vt::kPmReadLatency / 8);
      if (e.op == OpType::kTxnCommit) {
        // Commit records are born dead (never indexed); the relocation
        // stage emits a fresh commit over whichever members survive.
        // relaxed: monotonic stat counter, no ordering required.
        entries_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const uint64_t packed = PackIndexValue(off, e.version);
      index::KvIndex* index = hooks_.index_for_key(e.key);
      uint64_t cur = 0;
      bool live = index->Get(e.key, &cur) && cur == packed;
      if (live && e.op == OpType::kDelete && e.ptr < min_seq &&
          (!hooks_.tier_stale || !hooks_.tier_stale(e.key, packed))) {
        // Tombstone whose covered chunk is gone: no stale Put can
        // resurrect the key anymore, so both the tombstone and its index
        // entry may die (paper §3.4's "safely reclaimed" condition).
        // With a tier, DetachForTier raises MinSeq past chunks whose
        // entries still exist — the tier_stale veto keeps the tombstone
        // until no stale tier node could resurrect the key at recovery.
        if (index->EraseIfEqual(e.key, packed)) live = false;
      }
      if (!live) {
        // relaxed: monotonic stat counter, no ordering required.
        entries_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      job.survivors.push_back({off, e.key, e.version, e.entry_len, e.txn});
    }
    const uint64_t consumed = reader.position() - start;
    *budget -= std::min(*budget, consumed);
    job.scan_pos = reader.position();
    if (end_of_chunk || job.scan_pos >= job.committed) {
      job.stage = Stage::kRelocate;
    }
    // Zero consumed bytes with no stage change means an empty slice.
    return consumed > 0 || job.stage != Stage::kScan;
  }

  if (job.stage == Stage::kRelocate) {
    if (job.reloc_pos >= job.survivors.size()) {
      job.stage = Stage::kRetire;
      return true;
    }
    // One relocation sub-batch: durable copy (used_final committed by
    // CleanerAppendBatch), then swing the index. A PM-pressure failure
    // leaves the job parked at reloc_pos — already-relocated survivors
    // stay durable and re-pointed, so the pass *resumes* rather than
    // restarting the victim (the old cleaner aborted the whole chunk
    // here and re-scanned it on the next pass).
    const size_t k =
        std::min(kRelocSubBatch, job.survivors.size() - job.reloc_pos);
    // Partition the sub-batch: plain entries first, then txn-chain
    // members back-to-back, so ONE fresh commit record can cover every
    // relocated member contiguously — recovery drops members without a
    // covering commit, so a chain must never be split from one (§5.3).
    // Member bytes are copied verbatim (the txn bit stays set): replay's
    // checksum and fsck's byte-identical duplicate rule both hash the
    // copies exactly as the serving core wrote the originals.
    size_t order[kRelocSubBatch];
    size_t plains = 0;
    size_t txns = 0;
    for (size_t i = 0; i < k; i++) {
      if (!job.survivors[job.reloc_pos + i].txn) order[plains++] = i;
    }
    for (size_t i = 0; i < k; i++) {
      if (job.survivors[job.reloc_pos + i].txn) order[plains + txns++] = i;
    }
    OpLog::EntryRef refs[kRelocSubBatch + 1];
    uint64_t new_offs[kRelocSubBatch + 1];
    uint8_t chain_scratch[kRelocSubBatch * kMaxEntrySize];
    uint8_t commit_buf[kPtrEntrySize];
    uint64_t bytes = 0;
    uint64_t chain_bytes = 0;
    for (size_t i = 0; i < k; i++) {
      const Survivor& s = job.survivors[job.reloc_pos + order[i]];
      const auto* src = static_cast<const uint8_t*>(pool->At(s.old_off));
      refs[i] = {src, s.len};
      bytes += s.len;
      if (s.txn) {
        std::memcpy(chain_scratch + chain_bytes, src, s.len);
        chain_bytes += s.len;
      }
    }
    size_t n_refs = k;
    if (txns > 0) {
      EncodeTxnCommit(commit_buf, static_cast<uint32_t>(txns), chain_bytes,
                      Hash64(chain_scratch, chain_bytes));
      refs[k] = {commit_buf, kPtrEntrySize};
      bytes += kPtrEntrySize;
      n_refs = k + 1;
    }
    const Temp temp = job.cold ? Temp::kCold : Temp::kHot;
    if (!log->CleanerAppendBatch(refs, n_refs, new_offs, temp,
                                 job.age_clock)) {
      return false;  // PM pressure: park; resumes at reloc_pos
    }
    log->root()->pool()->stats().AddGcRelocated(bytes, job.cold);
    // The fresh commit record is born dead, like the serving path's.
    if (txns > 0) log->NoteDead(new_offs[k], kPtrEntrySize);
    for (size_t i = 0; i < k; i++) {
      const Survivor& s = job.survivors[job.reloc_pos + order[i]];
      const uint64_t expected = PackIndexValue(s.old_off, s.version);
      const uint64_t desired = PackIndexValue(new_offs[i], s.version);
      if (hooks_.index_for_key(s.key)->CompareExchange(s.key, expected,
                                                       desired)) {
        // relaxed: monotonic stat counter, no ordering required.
        entries_copied_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Superseded while we copied: the copy is garbage.
        log->NoteDead(new_offs[i], s.len);
        // relaxed: monotonic stat counter, no ordering required.
        entries_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    job.reloc_pos += k;
    *budget -= std::min(*budget, bytes);
    if (job.reloc_pos >= job.survivors.size()) job.stage = Stage::kRetire;
    return true;
  }

  // Stage::kRetire — unlink now, free later. A serving core may still
  // hold an entry pointer it decoded through the index *before* the CAS
  // swings above, so the physical free waits until every core has
  // advanced past the current epoch. BeginRetire keeps the chunk out of
  // future victim selection while the free is in flight.
  log->BeginRetire(job.chunk_off);
  const uint64_t chunk_off = job.chunk_off;
  hooks_.epochs->Defer([log, chunk_off] { log->ReleaseChunk(chunk_off); });
  log->root()->pool()->stats().AddGcVictimRetired(job.committed,
                                                  job.pick_live_ratio);
  // relaxed: monotonic stat counter, no ordering required.
  chunks_cleaned_.fetch_add(1, std::memory_order_relaxed);
  vt::Charge(vt::kCpuCas);
  job.stage = Stage::kDone;
  return true;
}

}  // namespace log
}  // namespace flatstore
