// Compacted log-entry format (paper Fig. 3).
//
// Two encodings, bit-for-bit as the figure lays them out:
//
//   ptr-based   (16 B): Op[0:2) Emd[2:4) Version[4:24) Key[24:88) Ptr[88:128)
//   value-based (12+v): Op[0:2) Emd[2:4) Version[4:24) Key[24:88) Size[88:96)
//                       Value[96 : 96+8v)
//
// * Version is the 20-bit per-key version used by log cleaning to decide
//   entry liveness (§3.4) and by recovery to order duplicates (§3.5).
// * Ptr is 40 bits with the low 8 address bits dismissed — the allocator
//   only hands out 256 B-aligned blocks — so 48-bit offsets fit ("40+8
//   bits of pointers are capable of indexing 128 TB of NVM space").
// * Size stores (length - 1), covering inline values of 1..256 B.
// * Delete entries are tombstones; their Ptr field carries the sequence
//   number of the log chunk that held the overwritten version, which is
//   what lets the cleaner decide when the tombstone itself may die.
//
// Transactions reuse the same two encodings plus a third 16 B record:
//
// * A *chain member* is an ordinary Put/Delete entry with bit 3 of the
//   header set (the bit between Emd[2] and Version[4:24), unused by the
//   base format). Members of one transaction are laid out back-to-back.
// * A *commit record* (Op = 3) terminates a chain: its Version field
//   carries the member count, its Key field a 64-bit XXH64 checksum over
//   the chain's raw bytes, and its Ptr field the chain's byte length —
//   enough for replay to locate, bound, and verify the chain it commits.
//   A chain whose commit record is missing or fails verification never
//   happened: recovery drops every member (all-or-nothing).
//
// The 64-bit *packed index value* {entry offset : 44, version : 20} stored
// in the volatile index is also defined here.

#ifndef FLATSTORE_LOG_LOG_ENTRY_H_
#define FLATSTORE_LOG_LOG_ENTRY_H_

#include <cstdint>
#include <cstring>

#include "common/logging.h"

namespace flatstore {
namespace log {

// Operation type; 0 is deliberately invalid so zero-filled PM never
// decodes as an entry.
enum class OpType : uint8_t {
  kInvalid = 0,
  kPut = 1,
  kDelete = 2,
  kTxnCommit = 3,  // transaction commit record (chain terminator)
};

inline constexpr uint32_t kVersionBits = 20;
inline constexpr uint32_t kVersionMask = (1u << kVersionBits) - 1;
inline constexpr uint32_t kPtrEntrySize = 16;
inline constexpr uint32_t kValueEntryHeader = 12;
// Values up to this size are embedded in the log entry (paper: 256 B,
// "enough to saturate the bandwidth of Optane DCPMM").
inline constexpr uint32_t kMaxInlineValue = 256;

// Largest possible encoded entry.
inline constexpr uint32_t kMaxEntrySize = kValueEntryHeader + kMaxInlineValue;

// Header bit marking a Put/Delete as a transaction-chain member (bit 3,
// unused by the base format: Op[0:2) Emd[2] <here> Version[4:24)).
inline constexpr uint32_t kTxnMemberBit = 1u << 3;

// Upper bound on chain members a reader will buffer; chains are staged as
// one fused HB group, so batch::HbEngine::kMaxBatch (64) bounds them.
inline constexpr uint32_t kMaxTxnChain = 64;

// A decoded view of one entry (value pointer aliases the log memory).
struct DecodedEntry {
  OpType op = OpType::kInvalid;
  bool embedded = false;
  bool txn = false;            // transaction-chain member flag
  uint32_t version = 0;        // kTxnCommit: chain member count
  uint64_t key = 0;            // kTxnCommit: chain checksum (XXH64)
  uint64_t ptr = 0;            // ptr-based Put: block pool offset;
                               // Delete: covered chunk sequence;
                               // kTxnCommit: chain byte length
  const uint8_t* value = nullptr;  // embedded Put only
  uint32_t value_len = 0;
  uint32_t entry_len = 0;
};

namespace entry_internal {

inline void PutHeader(uint8_t* dst, OpType op, bool emd, uint32_t version,
                      uint64_t key) {
  const uint32_t h = static_cast<uint32_t>(op) |
                     (emd ? 1u << 2 : 0u) | ((version & kVersionMask) << 4);
  dst[0] = static_cast<uint8_t>(h);
  dst[1] = static_cast<uint8_t>(h >> 8);
  dst[2] = static_cast<uint8_t>(h >> 16);
  std::memcpy(dst + 3, &key, 8);
}

inline void Put40(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 5; i++) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint64_t Get40(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 5; i++) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

}  // namespace entry_internal

// Size of the encoding chosen for a Put of `value_len` bytes.
inline uint32_t PutEntrySize(uint32_t value_len) {
  return (value_len > 0 && value_len <= kMaxInlineValue)
             ? kValueEntryHeader + value_len
             : kPtrEntrySize;
}

// Encodes a ptr-based Put (value stored out of log at `block_off`, which
// must be 256 B aligned). Returns the entry length (16).
inline uint32_t EncodePutPtr(uint8_t* dst, uint64_t key, uint32_t version,
                             uint64_t block_off) {
  FLATSTORE_DCHECK((block_off & 0xFF) == 0);
  entry_internal::PutHeader(dst, OpType::kPut, /*emd=*/false, version, key);
  entry_internal::Put40(dst + 11, block_off >> 8);
  return kPtrEntrySize;
}

// Encodes a value-based Put with the value embedded (1..256 B).
inline uint32_t EncodePutValue(uint8_t* dst, uint64_t key, uint32_t version,
                               const void* value, uint32_t value_len) {
  FLATSTORE_DCHECK(value_len >= 1 && value_len <= kMaxInlineValue);
  entry_internal::PutHeader(dst, OpType::kPut, /*emd=*/true, version, key);
  dst[11] = static_cast<uint8_t>(value_len - 1);
  std::memcpy(dst + 12, value, value_len);
  return kValueEntryHeader + value_len;
}

// Encodes a Delete tombstone. `covered_seq` is the chunk sequence holding
// the version this delete overwrites (0 if the key only ever lived here).
inline uint32_t EncodeDelete(uint8_t* dst, uint64_t key, uint32_t version,
                             uint64_t covered_seq) {
  entry_internal::PutHeader(dst, OpType::kDelete, /*emd=*/false, version, key);
  entry_internal::Put40(dst + 11, covered_seq);
  return kPtrEntrySize;
}

// Flags an already-encoded Put/Delete as a transaction-chain member.
inline void MarkTxnMember(uint8_t* entry) {
  entry[0] = static_cast<uint8_t>(entry[0] | kTxnMemberBit);
}

// Encodes a transaction commit record: `members` chain entries totalling
// `chain_bytes`, laid out immediately before this record, with `checksum`
// = Hash64 over those bytes. Returns the entry length (16).
inline uint32_t EncodeTxnCommit(uint8_t* dst, uint32_t members,
                                uint64_t chain_bytes, uint64_t checksum) {
  FLATSTORE_DCHECK(members >= 1 && members <= kMaxTxnChain);
  entry_internal::PutHeader(dst, OpType::kTxnCommit, /*emd=*/false, members,
                            checksum);
  entry_internal::Put40(dst + 11, chain_bytes);
  return kPtrEntrySize;
}

// Decodes the entry at `src` (at most `max_len` readable bytes). Returns
// false for invalid/truncated bytes (zero-filled tail of a chunk).
inline bool DecodeEntry(const uint8_t* src, uint64_t max_len,
                        DecodedEntry* out) {
  // The shortest legal entry is a value-based Put of 1 byte (13 bytes);
  // a ptr-based entry needs 16. Check the common 12-byte prefix first.
  if (max_len < kValueEntryHeader) return false;
  const uint32_t h = static_cast<uint32_t>(src[0]) |
                     (static_cast<uint32_t>(src[1]) << 8) |
                     (static_cast<uint32_t>(src[2]) << 16);
  const auto op = static_cast<OpType>(h & 0x3);
  if (op == OpType::kInvalid) return false;
  out->op = op;
  out->embedded = op != OpType::kTxnCommit && ((h >> 2) & 1);
  out->txn = (h & kTxnMemberBit) != 0;
  out->version = h >> 4;
  std::memcpy(&out->key, src + 3, 8);
  if (out->embedded) {
    const uint32_t vlen = static_cast<uint32_t>(src[11]) + 1;
    if (kValueEntryHeader + vlen > max_len) return false;
    out->value = src + 12;
    out->value_len = vlen;
    out->ptr = 0;
    out->entry_len = kValueEntryHeader + vlen;
  } else {
    if (max_len < kPtrEntrySize) return false;
    out->ptr = entry_internal::Get40(src + 11);
    if (out->op == OpType::kPut) out->ptr <<= 8;
    out->value = nullptr;
    out->value_len = 0;
    out->entry_len = kPtrEntrySize;
  }
  return true;
}

// ---- packed index value {offset:44, version:20} ------------------------

inline constexpr uint64_t PackIndexValue(uint64_t entry_off,
                                         uint32_t version) {
  return (entry_off << kVersionBits) | (version & kVersionMask);
}
inline constexpr uint64_t UnpackOffset(uint64_t packed) {
  return packed >> kVersionBits;
}
inline constexpr uint32_t UnpackVersion(uint64_t packed) {
  return static_cast<uint32_t>(packed & kVersionMask);
}

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_LOG_ENTRY_H_
