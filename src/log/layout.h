// Persistent-pool layout: superblock, per-core tail slots, chunk registry.
//
// Chunk 0 of the pool is reserved for FlatStore's root metadata:
//
//   [0,      4 KB)   Superblock — magic, geometry, shutdown flag,
//                    checkpoint location.
//   [4 KB,  36 KB)   Tail slots — per core, 8 rotating {seq, tail} records
//                    in 8 distinct cachelines. The tail pointer is the Put
//                    commit point and is persisted once per batch; rotating
//                    it across lines sidesteps the ~800 ns penalty for
//                    re-flushing the same cacheline at batch rate
//                    (DESIGN.md §3.1; the paper persists a single tail
//                    pointer and does not discuss this interaction).
//   [36 KB,  4 MB)   Chunk registry — one 16 B persistent record per 4 MB
//                    pool chunk registered as an OpLog segment. This
//                    generalizes the paper's "journal field (a predefined
//                    area in PM)" that tracks chunk addresses during GC:
//                    here *every* log chunk is journaled at allocation, so
//                    recovery enumerates OpLog segments without walking a
//                    fragile linked list.
//
// The allocator region starts at chunk 1.

#ifndef FLATSTORE_LOG_LAYOUT_H_
#define FLATSTORE_LOG_LAYOUT_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "alloc/lazy_allocator.h"
#include "common/cacheline.h"
#include "common/logging.h"
#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace log {

inline constexpr uint64_t kSuperblockMagic = 0xF1A757025B10C4ull;
inline constexpr int kMaxCores = 64;
inline constexpr int kTailSlots = 8;  // rotating tail records per core

// Root metadata at pool offset 0.
struct Superblock {
  uint64_t magic;
  uint32_t num_cores;
  uint32_t clean_shutdown;   // 1 = checkpoint is valid
  uint64_t checkpoint_off;   // first checkpoint chunk (0 = none)
  uint64_t checkpoint_items; // entries in the checkpoint
  uint64_t pool_size;
  // Per-core log position at checkpoint time: recovery replays only the
  // entries beyond these (paper §3.5: "checkpoint the volatile index into
  // PMs periodically"). A final-shutdown checkpoint simply leaves nothing
  // beyond them.
  uint64_t ckpt_tail[64];
  uint32_t ckpt_seq[64];
  // Ordered persistent tier (DESIGN.md §11). tier_root_off is the first
  // arena chunk of the tier (0 = no tier was ever created); the tier's
  // own arena chain and level-0 list hang off it, so recovery finds every
  // tier structure from this one word. tier_frontier_seq[c] is advisory:
  // the highest chunk sequence core c has converted into the tier (the
  // per-chunk kChunkTiered registry flags are the ground truth — leader
  // steals mean tiering order need not be contiguous in seq).
  uint64_t tier_root_off;
  uint32_t tier_frontier_seq[64];
};
static_assert(sizeof(Superblock) <= 4096);

// One rotating tail record. The record with the highest seq whose check
// word validates wins. A tail record is 24 bytes but real PM only writes
// 8 bytes atomically: a power cut can tear the slot's flush so that e.g.
// the new seq persists while the new tail does not. The check word binds
// seq and tail together — a torn slot fails validation and recovery falls
// back to the best older slot, losing only unacknowledged batches.
struct TailSlot {
  uint64_t seq;
  uint64_t tail;   // pool offset one past the last committed log byte
  uint64_t check;  // TailCheck(seq, tail)
};

// Mixes seq and tail into the slot check word (splitmix64 finalizer). The
// |1 means an all-zero slot (never written, or fully torn away) can never
// validate, since a valid check word is always odd and zero is not.
inline constexpr uint64_t TailCheck(uint64_t seq, uint64_t tail) {
  uint64_t z = seq * 0x9E3779B97F4A7C15ull + tail;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return (z ^ (z >> 31)) | 1ull;
}

// Per-core tail area: 8 slots, one per cacheline.
struct alignas(64) CoreTailArea {
  struct alignas(64) Line {
    TailSlot slot;
    uint8_t pad[64 - sizeof(TailSlot)];
  } lines[kTailSlots];
};
static_assert(sizeof(CoreTailArea) == 64 * kTailSlots);

// Persistent registry record for one OpLog chunk.
struct ChunkRecord {
  uint64_t chunk_off;  // 0 = slot free; low bit = provisional (see below)
  uint32_t core;
  uint32_t seq;        // per-core monotone sequence
};
static_assert(sizeof(ChunkRecord) == 16);

// Low bit of ChunkRecord::chunk_off while the record's core/seq fields
// have not yet been durably committed. Chunk offsets are 4 MB-aligned, so
// the bit is free. RegisterChunk commits in two fenced steps: (1) claim
// the slot as chunk_off|kChunkProvisional and persist the whole record,
// (2) store the final chunk_off and persist that one word (8-byte atomic
// even under torn writes). A crash can therefore never leave a committed
// offset paired with garbage core/seq fields; recovery scrubs provisional
// records and fsck reports them as benign crash artifacts.
inline constexpr uint64_t kChunkProvisional = 1;

// Bit 1 of ChunkRecord::chunk_off marks a chunk written by the log
// cleaner's relocation path. Persisted so fsck can apply the
// half-relocated-victim rule after a crash: a key appearing at the same
// version in two chunks is a legal cleaner artifact only when the copies
// are byte-identical AND at least one sits in a cleaner-flagged chunk.
inline constexpr uint64_t kChunkCleaner = 2;

// Bit 2 of ChunkRecord::chunk_off marks a chunk whose live entries have
// been converted into the ordered persistent tier (DESIGN.md §11). The
// single 8-byte flag store is the conversion commit point: recovery skips
// tiered chunks during log replay (their live entries reach the index via
// the tier's durable level-0 list instead) but keeps their bytes allocated
// forever, because tier nodes alias value bytes inside them.
inline constexpr uint64_t kChunkTiered = 4;

// All flag bits stashed in the 4 MB-aligned chunk_off. Every registry
// reader must mask these before treating the value as an offset.
inline constexpr uint64_t kChunkFlagsMask =
    kChunkProvisional | kChunkCleaner | kChunkTiered;

inline constexpr uint64_t kTailAreaOff = 4096;
inline constexpr uint64_t kRegistryOff =
    kTailAreaOff + sizeof(CoreTailArea) * kMaxCores;
inline constexpr uint64_t kRegistrySlots =
    (alloc::kChunkSize - kRegistryOff) / sizeof(ChunkRecord);

// Accessor for the root structures of a pool. Also keeps a DRAM mirror of
// the chunk registry (chunk offset -> {owning core, sequence}) so that the
// engine can route entry retirements to the right OpLog in O(1).
class RootArea {
 public:
  explicit RootArea(pm::PmPool* pool) : pool_(pool) {
    FLATSTORE_CHECK_GE(pool->size(), 2 * alloc::kChunkSize);
  }

  Superblock* superblock() const { return pool_->PtrAt<Superblock>(0); }

  CoreTailArea* tails(int core) const {
    FLATSTORE_DCHECK(core >= 0 && core < kMaxCores);
    return pool_->PtrAt<CoreTailArea>(kTailAreaOff +
                                      sizeof(CoreTailArea) *
                                          static_cast<uint64_t>(core));
  }

  ChunkRecord* registry() const {
    return pool_->PtrAt<ChunkRecord>(kRegistryOff);
  }

  // Formats a brand-new pool: writes and persists the superblock and
  // zeroes the tail/registry areas.
  void Format(int num_cores);

  // True if the pool carries a valid superblock.
  bool IsFormatted() const {
    return superblock()->magic == kSuperblockMagic;
  }

  // Reads the committed tail of `core` (highest-seq slot); returns the
  // sequence number through `*seq` (0 when no tail was ever written).
  uint64_t ReadTail(int core, uint64_t* seq) const;

  // Writes the next tail record for `core` into the rotating slot and
  // persists that single line (no fence; caller fences the batch).
  void WriteTail(int core, uint64_t seq, uint64_t tail);

  // Registers / unregisters an OpLog chunk. Persist + fence included.
  // Returns the registry slot index. `cleaner` stamps the persistent
  // kChunkCleaner flag (relocation chunks; see the flag comment).
  uint64_t RegisterChunk(uint64_t chunk_off, int core, uint32_t seq,
                         bool cleaner = false);
  void UnregisterChunk(uint64_t slot_index);

  // Stamps the persistent kChunkTiered flag on an already-committed
  // registry record: a single 8-byte flagged store + persist + fence, so
  // the flag flips atomically even under torn writes. This is the tier
  // conversion commit point (DESIGN.md §11).
  void SetChunkTiered(uint64_t slot_index);

  // DRAM-mirror lookup: fills {core, seq} of a registered log chunk.
  // Returns false for unregistered chunks.
  bool ChunkInfo(uint64_t chunk_off, int* core, uint32_t* seq) const;

  // True if the registered chunk carries the persistent tiered flag.
  bool ChunkTiered(uint64_t chunk_off) const;

  // Rebuilds the DRAM mirror from the persistent registry (recovery).
  // Provisional records are skipped — their core/seq may be garbage.
  void RebuildMirror();

  // Frees registry slots left provisional by a crash mid-RegisterChunk
  // (persist + fence per scrubbed slot). Returns how many were scrubbed.
  // Recovery runs this before trusting the registry.
  uint64_t ScrubProvisionalRecords();

  pm::PmPool* pool() const { return pool_; }

 private:
  struct MirrorEntry {
    int core;
    uint32_t seq;
    bool tiered;
  };

  pm::PmPool* pool_;
  mutable SpinLock mirror_lock_;
  std::unordered_map<uint64_t, MirrorEntry> mirror_ GUARDED_BY(mirror_lock_);
};

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_LAYOUT_H_
