// Per-core compacted operation log (paper §3.2).
//
// An OpLog is an append-only sequence of compacted log entries stored in
// 4 MB raw chunks from the lazy-persist allocator. Each chunk is journaled
// in the pool's chunk registry; the per-core rotating tail record is the
// Put commit point. Batches are appended contiguously and padded to the
// next cacheline so adjacent batches never share a line (§3.2 "Padding").
//
// Two writers exist per OpLog, never contending on the same cursor:
//  * the serving path (AppendBatch) — called by whichever core is the
//    current horizontal-batching leader, under the group's collection
//    protocol (leaders append stolen entries to *their own* log);
//  * the cleaner path (CleanerAppendBatch) — the background log cleaner
//    copies surviving entries into fresh chunks whose committed length is
//    the in-chunk `used_final` field rather than the tail record.
//
// Chunk-usage accounting (live/total entries per chunk) feeds victim
// selection for log cleaning (§3.4).

#ifndef FLATSTORE_LOG_OPLOG_H_
#define FLATSTORE_LOG_OPLOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "log/layout.h"
#include "log/log_entry.h"

namespace flatstore {
namespace log {

// In-chunk header of a log chunk, placed right after the allocator's
// chunk header. `used_final` is the committed data length for every chunk
// that the tail record does not cover (sealed serving chunks and cleaner
// chunks).
struct LogChunkHeader {
  uint64_t used_final;
  uint8_t pad[56];
};
static_assert(sizeof(LogChunkHeader) == 64);

// Offset of entry data within a log chunk.
inline constexpr uint64_t kLogDataOff =
    alloc::kChunkHeaderSize + sizeof(LogChunkHeader);
inline constexpr uint64_t kLogDataBytes = alloc::kChunkSize - kLogDataOff;

// Survivor placement temperature for the cleaner's relocation chunks
// (§3.4 hot/cold segregation): cold survivors — keys not overwritten for
// a long time — are relocated together so future passes skip their
// (stable, near-fully-live) chunks.
enum class Temp : uint8_t { kHot = 0, kCold = 1 };
inline constexpr int kNumTemps = 2;

// Volatile usage record of one log chunk. The byte-granular counters and
// the last-write clock are maintained incrementally on append / delete /
// overwrite — victim selection never rescans a chunk.
struct ChunkUsage {
  uint32_t seq = 0;          // per-core allocation sequence
  uint32_t total = 0;        // entries ever appended
  uint32_t live = 0;         // entries still referenced
  uint32_t tombs = 0;        // tombstones appended
  uint32_t max_covered_seq = 0;  // newest chunk any tombstone here covers
  uint64_t total_bytes = 0;  // entry bytes ever appended
  uint64_t live_bytes = 0;   // entry bytes still referenced
  // Logical write-clock stamp (OpLog::write_clock, ticks once per serving
  // batch) of the last event touching this chunk: an append into it or a
  // death of one of its entries. Cost-benefit victim selection uses
  // write_clock - last_write_clock as the chunk's age; relocated chunks
  // inherit their victims' stamps so survivors keep their age.
  uint64_t last_write_clock = 0;
  bool sealed = false;       // used_final is the committed length
  bool cleaner = false;      // written by the cleaner path
  Temp temp = Temp::kHot;    // cleaner chunks: survivor temperature lane
  bool retired = false;      // unlinked; physical free deferred (epochs)
  // Claimed for exclusive background processing: either an in-flight
  // cleaner job or a tier conversion. Claimed chunks are invisible to
  // both PickVictims and PickTierCandidates, so the cleaner can never
  // reach BeginRetire on a chunk the tiering pass detached (and vice
  // versa). Volatile only.
  bool busy = false;
  uint64_t registry_slot = 0;
};

// One victim chunk chosen by PickVictims, with the pick-time metrics the
// cleaner threads through its staged pipeline (live ratio feeds the WA
// histogram; age feeds survivor temperature classification).
struct VictimInfo {
  uint64_t chunk_off = 0;
  double live_ratio = 0;        // effective live-byte ratio at pick time
  uint64_t age = 0;             // write-clock distance at pick time
  uint64_t last_write_clock = 0;
  bool from_cold_chunk = false;  // victim was a cleaner cold-lane chunk
  bool from_cleaner_chunk = false;  // victim held relocated survivors
};

// Victim-selection policy (§3.4).
struct VictimQuery {
  enum class Policy : uint8_t {
    kLiveRatio,    // legacy: any sealed chunk below the live_ratio cap,
                   // oldest sequence first
    kCostBenefit,  // RAMCloud/LFS-style: rank by (1-u)*age/(1+u)
  };
  Policy policy = Policy::kCostBenefit;
  // kLiveRatio: the victim threshold. kCostBenefit: eligibility cap —
  // chunks at or above this live ratio are never worth relocating.
  double live_ratio = 0.98;
  size_t max = 4;
};

// One core's operation log.
class OpLog {
 public:
  struct Options {
    // Pad each batch to the next cacheline (§3.2). Disabled only by the
    // ablation benchmark.
    bool pad_batches = true;
  };

  OpLog(RootArea* root, alloc::LazyAllocator* alloc, int core,
        const Options& options);
  OpLog(RootArea* root, alloc::LazyAllocator* alloc, int core);

  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;

  // One encoded entry to append (see log/log_entry.h encoders).
  struct EntryRef {
    const uint8_t* data;
    uint32_t len;
  };

  // Serving path: appends `n` entries as one batch — contiguous copy, one
  // persist sweep over the touched lines, one rotating tail record, two
  // fences. Fills `offsets[i]` with each entry's pool offset. Returns
  // false when PM space is exhausted.
  bool AppendBatch(const EntryRef* entries, size_t n, uint64_t* offsets);

  // Cleaner path: same append mechanics, but into the cleaner's chunk
  // chain for `temp` and committed via the chunk's `used_final` field.
  // `age_clock` is the victim's last-write stamp — the relocation chunk
  // inherits it (max across batches) so survivors keep their age.
  // The two-arg form appends to the hot lane.
  bool CleanerAppendBatch(const EntryRef* entries, size_t n,
                          uint64_t* offsets, Temp temp = Temp::kHot,
                          uint64_t age_clock = 0);

  // Marks the entry at `entry_off` dead (superseded or deleted) and
  // advances the chunk's last-write clock — a chunk losing entries is
  // "hot" for victim selection. `entry_len` subtracts from the chunk's
  // live bytes; 0 = decode the entry in place to learn its length.
  void NoteDead(uint64_t entry_off, uint32_t entry_len = 0);

  // Marks the entry at `entry_off` live again (failed relocation CAS —
  // the copy became garbage instead of the original).
  void NoteLiveLost(uint64_t entry_off, uint32_t entry_len = 0);

  // --- introspection / GC support ---

  // Committed tail (pool offset; 0 before the first append). Written by
  // the serving path, read by the cleaner (victim selection must spare
  // the tail chunk) — acquire pairs with AppendBatch's release.
  uint64_t tail() const { return tail_.load(std::memory_order_acquire); }
  uint64_t tail_seq() const {
    return tail_seq_.load(std::memory_order_acquire);
  }
  int core() const { return core_; }

  // Snapshot of per-chunk usage, keyed by chunk offset.
  std::map<uint64_t, ChunkUsage> UsageSnapshot() const;

  // Chooses sealed chunks whose live ratio is below `live_ratio`,
  // excluding chunks the cleaner itself wrote that are still its current
  // chunk. Returns chunk offsets, oldest sequence first.
  std::vector<uint64_t> PickVictims(double live_ratio, size_t max) const;

  // Policy-driven victim selection over the incremental per-chunk
  // counters (never rescans). kLiveRatio reproduces the legacy ordering;
  // kCostBenefit ranks by benefit/cost = (1 - u) * age / (1 + u) with
  // u = effective live-byte ratio and age = write-clock distance since
  // the chunk's last append/death (ties: older sequence first).
  std::vector<VictimInfo> PickVictims(const VictimQuery& query) const;

  // Logical write clock: ticks once per serving AppendBatch. Purely
  // logical so cleaner decisions stay flush-deterministic for the crash
  // explorer (no wall time, no randomness).
  uint64_t write_clock() const {
    // relaxed: monotonic logical counter; readers tolerate slight lag.
    return write_clock_.load(std::memory_order_relaxed);
  }

  // Oldest sequence number among this core's registered chunks
  // (UINT64_MAX when the log is empty) — tombstone reclamation bound.
  uint64_t MinSeq() const;

  // Returns the committed data length of `chunk_off` ([0, kLogDataBytes]).
  uint64_t CommittedBytes(uint64_t chunk_off) const;

  // Marks a victim as unlinked: the cleaner has re-pointed the index away
  // from it and queued the physical free with the epoch manager. Keeps
  // the chunk out of PickVictims until ReleaseChunk runs.
  void BeginRetire(uint64_t chunk_off);

  // Unregisters and frees a victim chunk after cleaning (§3.4 final
  // step). With epoch-based retirement this runs from the deferred-free
  // queue, one grace period after BeginRetire.
  void ReleaseChunk(uint64_t chunk_off);

  // --- tiering handoff (DESIGN.md §11) ---

  // Claims a chunk for exclusive background processing. Returns false if
  // the chunk is unknown, retired, or already claimed. The claim is
  // dropped by UnclaimChunk, or consumed by the claimant's terminal step
  // (ReleaseChunk for cleaner jobs, DetachForTier for conversions).
  bool ClaimChunk(uint64_t chunk_off);
  void UnclaimChunk(uint64_t chunk_off);

  struct TierCandidate {
    uint64_t chunk_off = 0;
    uint32_t seq = 0;
    uint64_t registry_slot = 0;
  };

  // Chooses sealed chunks ready for tier conversion: at least `min_age`
  // write-clock ticks idle, live-entry ratio at or above
  // `min_live_ratio` (mostly-dead chunks are better freed by the
  // cleaner than leaked into the tier), never the serving/tail/cleaner
  // chunks. Cold cleaner chunks come first (the PR 5 cold lane drains
  // into the tier), then oldest sequence. Every returned chunk is
  // claimed; the caller must DetachForTier or UnclaimChunk it.
  std::vector<TierCandidate> PickTierCandidates(uint64_t min_age,
                                                double min_live_ratio,
                                                size_t max);

  // Forgets a chunk converted into the tier: erased from the usage map
  // (never again a victim, candidate, or MinSeq contributor) but neither
  // unregistered nor freed — tier nodes alias its entry bytes forever.
  // The caller must have set the persistent kChunkTiered flag first.
  void DetachForTier(uint64_t chunk_off);

  // Seals the current serving chunk at its present extent; the next
  // append starts a fresh chunk. This is forced log rotation: it makes a
  // partially filled chunk eligible for victim selection without writing
  // 4 MB of traffic, which crash tests use to build small, deterministic
  // GC scenarios. The committed tail is unaffected.
  void SealActiveChunk();

  // Seals the cleaner's current chunks (both temperature lanes) so
  // future passes may victimize them (relocated tombstones would
  // otherwise hide in them forever). The next cleaner append starts a
  // fresh chunk. No-op for lanes that have none.
  void RotateCleanerChunk();

  // --- recovery support (paper §3.5) ---

  // Adopts state reconstructed by replay: per-chunk usage plus the
  // serving cursor (the chunk containing `tail`).
  void AdoptRecoveredState(uint64_t tail, uint64_t tail_seq,
                           std::map<uint64_t, ChunkUsage> usage);

  // Number of batches appended (stats).
  uint64_t batches() const { return batches_; }
  uint64_t entries_appended() const { return entries_; }

  RootArea* root() const { return root_; }

 private:
  // Append lanes: one serving cursor plus one cleaner cursor per
  // temperature.
  enum Lane : int { kServing = 0, kCleanerHot = 1, kCleanerCold = 2 };
  static Lane CleanerLane(Temp t) {
    return t == Temp::kCold ? kCleanerCold : kCleanerHot;
  }

  // Ensures the lane's cursor has room for `bytes`; rolls over to a
  // fresh chunk when needed. Returns false on out-of-space.
  bool EnsureRoom(uint64_t bytes, Lane lane);

  // Seals the chunk containing `cursor` at `cursor` bytes used.
  void SealChunk(uint64_t chunk_off, uint64_t used);

  // Copies + persists a batch at the cursor; shared by both paths.
  uint64_t WriteEntries(uint64_t* cursor, const EntryRef* entries, size_t n,
                        uint64_t* offsets);

  // Batch accounting shared by both append paths (usage_lock_ taken
  // inside): counts entries/tombstones/bytes into `chunk`'s usage record
  // and stamps its last-write clock (serving: the ticked clock; cleaner:
  // the inherited `age_clock`).
  void AccountBatch(uint64_t chunk, const EntryRef* entries, size_t n,
                    bool cleaner, uint64_t age_clock);

  // Shared body of NoteDead/NoteLiveLost: resolves the entry length
  // (decoding in place when unknown) and adjusts live counters by `dir`.
  void AdjustLive(uint64_t entry_off, uint32_t entry_len, int dir);

  RootArea* root_;
  alloc::LazyAllocator* alloc_;
  int core_;
  Options options_;

  // Serving cursor. `chunk_`, `tail_` and `tail_seq_` have a single
  // writer (the serving path) but are read concurrently by the cleaner
  // thread (PickVictims must spare the active and tail chunks;
  // CommittedBytes bounds the serving chunk's extent by the tail), so
  // they are atomics: the serving path publishes with release stores and
  // the cleaner reads with acquire. They used to be plain uint64_t —
  // a data race the thread-safety pass surfaced (the old code read them
  // under usage_lock_, which the writer never held).
  std::atomic<uint64_t> chunk_{0};   // current serving chunk (0 = none)
  uint64_t cursor_ = 0;  // next write position; serving-thread-confined
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> tail_seq_{0};

  // Cleaner cursors, one per temperature lane (§3.4 segregation):
  // `cleaner_chunk_[t]` is read by PickVictims and written on rollover;
  // `cleaner_cursor_[t]` is cleaner-thread-confined.
  std::atomic<uint64_t> cleaner_chunk_[kNumTemps] = {};
  uint64_t cleaner_cursor_[kNumTemps] = {};

  // Logical write clock (see write_clock()); ticked by the serving
  // append path, read by victim selection and NoteDead.
  std::atomic<uint64_t> write_clock_{0};

  // Chunk allocation sequence. fetch_add'ed by BOTH append paths'
  // rollovers (serving leader and cleaner run concurrently); the old
  // plain `next_chunk_seq_++` could hand two chunks the same sequence
  // number, corrupting the tombstone-liveness bound (MinSeq vs
  // max_covered_seq) that victim selection relies on.
  std::atomic<uint32_t> next_chunk_seq_{1};
  uint64_t batches_ = 0;   // serving-thread stats
  uint64_t entries_ = 0;

  mutable SpinLock usage_lock_;
  std::map<uint64_t, ChunkUsage> usage_ GUARDED_BY(usage_lock_);
};

}  // namespace log
}  // namespace flatstore

#endif  // FLATSTORE_LOG_OPLOG_H_
