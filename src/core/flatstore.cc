#include "core/flatstore.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/hash.h"
#include "index/cceh.h"
#include "index/fast_fair.h"
#include "index/masstree.h"
#include "index/numa_sharded_index.h"
#include "log/log_reader.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace core {

namespace {

// Key-routing hash seed: independent of the hashes used inside the index
// structures so routing does not correlate with bucket choice.
constexpr uint64_t kRoutingSeed = 0xC04E;

// Wrap-aware 20-bit version comparison: `a` strictly newer than `b`.
bool VersionNewer(uint32_t a, uint32_t b) {
  const uint32_t d = (a - b) & log::kVersionMask;
  return d != 0 && d < (1u << (log::kVersionBits - 1));
}

// Recovery upsert duel: installs `packed` for `key` unless the index
// already holds a strictly newer version. Entries route to the owning
// partition of their *key* (stolen entries live in other cores' logs),
// so the upsert must stay atomic under concurrent replay threads: a CAS
// loop over Get + CompareExchange/Upsert keeps the newest version.
void DuelInsert(index::KvIndex* idx, uint64_t key, uint64_t packed) {
  while (true) {
    uint64_t cur = 0;
    if (!idx->Get(key, &cur)) {
      uint64_t old;
      if (!idx->Upsert(key, packed, &old)) break;  // inserted
      // Raced with another replayer: our Upsert overwrote its value —
      // restore the duel by comparing and possibly swapping back.
      cur = old;
      if (VersionNewer(log::UnpackVersion(cur), log::UnpackVersion(packed))) {
        idx->CompareExchange(key, packed, cur);
      }
      break;
    }
    if (!VersionNewer(log::UnpackVersion(packed), log::UnpackVersion(cur))) {
      break;
    }
    if (idx->CompareExchange(key, cur, packed)) break;
    // CAS lost; re-read and retry.
  }
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// Checkpoint chunk layout (after the allocator header):
//   uint64 next_chunk_off; uint64 count; {key, packed} pairs...
struct CheckpointHeader {
  uint64_t next;
  uint64_t count;
};
constexpr uint64_t kCheckpointPairs =
    (alloc::kChunkSize - alloc::kChunkHeaderSize - sizeof(CheckpointHeader)) /
    16;

}  // namespace

const char* TxnStatusName(TxnStatus status) {
  switch (status) {
    case TxnStatus::kCommitted:
      return "committed";
    case TxnStatus::kCasMismatch:
      return "cas-mismatch";
    case TxnStatus::kBusy:
      return "busy";
    case TxnStatus::kBackpressure:
      return "backpressure";
    case TxnStatus::kNoSpace:
      return "no-space";
  }
  return "?";
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return "FlatStore-H";
    case IndexKind::kMasstree:
      return "FlatStore-M";
    case IndexKind::kFastFairVolatile:
      return "FlatStore-FF";
  }
  return "?";
}

FlatStore::FlatStore(pm::PmPool* pool, const FlatStoreOptions& options)
    : pool_(pool), options_(options) {
  FLATSTORE_CHECK(options_.num_cores >= 1 &&
                  options_.num_cores <= log::kMaxCores);
  FLATSTORE_CHECK_GE(options_.group_size, 1);
  root_ = std::make_unique<log::RootArea>(pool);
  alloc_ = std::make_unique<alloc::LazyAllocator>(
      pool, alloc::kChunkSize, pool->size() - alloc::kChunkSize,
      options_.num_cores);
  if (options_.gc_backpressure_watermark > 0) {
    alloc_->SetFreeChunkLowWatermark(options_.gc_backpressure_watermark);
  }
  if (!options_.socket_local_placement) {
    // Placement-off A/B arm: chunks (log segments + value blocks) are
    // dealt round-robin across sockets instead of core-locally.
    alloc_->SetSocketInterleave(true);
  }
  if (options_.socket_local_placement && pool_->num_sockets() > 1) {
    // An HB leader appends follower entries to its *own* OpLog, whose
    // segments sit on the leader's socket — a batching group straddling a
    // socket boundary would persist half its entries over the link every
    // batch. Shrink the group size until each group's cores share a
    // socket (the paper groups by socket for exactly this reason).
    auto aligned = [this](int gs) {
      for (int first = 0; first < options_.num_cores; first += gs) {
        const int last = std::min(first + gs, options_.num_cores) - 1;
        if (alloc_->SocketForCore(first) != alloc_->SocketForCore(last)) {
          return false;
        }
      }
      return true;
    };
    while (options_.group_size > 1 && !aligned(options_.group_size)) {
      options_.group_size--;
    }
  }
  log::OpLog::Options log_opts;
  log_opts.pad_batches = options_.pad_batches;
  std::vector<log::OpLog*> raw_logs;
  for (int c = 0; c < options_.num_cores; c++) {
    logs_.push_back(std::make_unique<log::OpLog>(root_.get(), alloc_.get(),
                                                 c, log_opts));
    raw_logs.push_back(logs_.back().get());
    cores_.push_back(std::make_unique<CoreState>());
  }
  hb_ = std::make_unique<batch::HbEngine>(std::move(raw_logs),
                                          options_.group_size,
                                          options_.batch_mode);
  // One owned epoch slot per serving core; Scan/Size and foreign threads
  // use guest slots. Reclamation counters mirror into the pool's stats.
  epochs_ = std::make_unique<common::EpochManager>(
      options_.num_cores, /*guest_slots=*/16, &pool_->stats());
  BuildIndexes();
}

FlatStore::~FlatStore() { StopCleaners(); }

void FlatStore::BuildIndexes() {
  indexes_.clear();
  const int sockets = pool_->num_sockets();
  const bool place = options_.socket_local_placement && sockets > 1;
  // Non-placed volatile nodes: socket-agnostic on single-socket pools
  // (the historical model, zero surcharge), page-interleaved on
  // multi-socket pools with placement off (half the remote surcharge on
  // every node miss — the A/B baseline).
  const int spread_home =
      sockets > 1 ? vt::kSocketInterleaved : vt::kSocketNone;
  switch (options_.index) {
    case IndexKind::kHash:
      // Per-core CCEH partitions: with placement on, each partition is
      // homed on its core's socket, so the serving core's probes are
      // always local.
      for (int c = 0; c < options_.num_cores; c++) {
        index::PmContext ctx;
        ctx.home_socket = place ? SocketForCore(c) : spread_home;
        indexes_.push_back(std::make_unique<index::Cceh>(
            ctx, options_.hash_initial_depth));
      }
      break;
    case IndexKind::kMasstree:
      if (place) {
        std::vector<std::unique_ptr<index::OrderedKvIndex>> shards;
        for (int s = 0; s < sockets; s++) {
          index::PmContext ctx;
          ctx.home_socket = s;
          shards.push_back(std::make_unique<index::Masstree>(ctx));
        }
        indexes_.push_back(std::make_unique<index::NumaShardedIndex>(
            std::move(shards), options_.num_cores, kRoutingSeed));
      } else {
        index::PmContext ctx;
        ctx.home_socket = spread_home;
        indexes_.push_back(std::make_unique<index::Masstree>(ctx));
      }
      break;
    case IndexKind::kFastFairVolatile:
      if (place) {
        std::vector<std::unique_ptr<index::OrderedKvIndex>> shards;
        for (int s = 0; s < sockets; s++) {
          index::PmContext ctx;
          ctx.home_socket = s;
          shards.push_back(std::make_unique<index::FastFair>(ctx));
        }
        indexes_.push_back(std::make_unique<index::NumaShardedIndex>(
            std::move(shards), options_.num_cores, kRoutingSeed));
      } else {
        index::PmContext ctx;
        ctx.home_socket = spread_home;
        indexes_.push_back(std::make_unique<index::FastFair>(ctx));
      }
      break;
  }
}

index::KvIndex* FlatStore::IndexForCore(int core) const {
  return options_.index == IndexKind::kHash ? indexes_[core].get()
                                            : indexes_[0].get();
}

int FlatStore::CoreForKey(uint64_t key) const {
  return static_cast<int>(HashKey(key, kRoutingSeed) %
                          static_cast<uint64_t>(options_.num_cores));
}

std::unique_ptr<FlatStore> FlatStore::Create(pm::PmPool* pool,
                                             const FlatStoreOptions& options) {
  log::RootArea root(pool);
  root.Format(options.num_cores);
  std::unique_ptr<FlatStore> store(new FlatStore(pool, options));
  // Create the tier eagerly so tier_ is settled before any cleaner or
  // serving thread can observe it (no lock needed on the read side).
  if (options.tier_enabled) store->EnsureTier();
  return store;
}

std::unique_ptr<FlatStore> FlatStore::Open(pm::PmPool* pool,
                                           const FlatStoreOptions& options) {
  {
    log::RootArea probe(pool);
    FLATSTORE_CHECK(probe.IsFormatted()) << "pool has no FlatStore";
    FLATSTORE_CHECK_EQ(probe.superblock()->num_cores,
                       static_cast<uint32_t>(options.num_cores))
        << "num_cores mismatch with the on-PM superblock";
  }
  std::unique_ptr<FlatStore> store(new FlatStore(pool, options));
  log::Superblock* sb = store->root_->superblock();
  const bool clean = sb->clean_shutdown != 0;
  // Reset the flag first (paper §3.5: "checks and reset the state").
  sb->clean_shutdown = 0;
  pool->PersistFence(&sb->clean_shutdown, 4);
  if (clean) {
    store->LoadCheckpoint();
    store->Recover(/*rebuild_index=*/false);
  } else {
    store->Recover(/*rebuild_index=*/true);
  }
  // Recover loaded the tier if the pool has one; otherwise create it now
  // (before any threads) when this open opts in.
  if (options.tier_enabled && store->tier_ == nullptr) store->EnsureTier();
  return store;
}

// ---- asynchronous protocol ---------------------------------------------

OpStatus FlatStore::BeginPut(int core, uint64_t key,
                                        const void* value, uint32_t len,
                                        OpHandle* handle) {
  FLATSTORE_DCHECK(core == CoreForKey(key));
  FLATSTORE_DCHECK(len >= 1);
  CoreState& cs = *cores_[core];

  // Version chaining: continue from the newest in-flight write on this
  // key, else from the index.
  uint32_t version;
  if (const InflightKey* inflight = cs.inflight_keys.Find(key)) {
    version = (inflight->last_version + 1) & log::kVersionMask;
  } else {
    uint64_t cur = 0;
    version = IndexForCore(core)->Get(key, &cur)
                  ? (log::UnpackVersion(cur) + 1) & log::kVersionMask
                  : 1;
  }

  uint8_t buf[log::kMaxEntrySize];
  uint32_t elen;
  uint64_t block = 0;
  if (len <= log::kMaxInlineValue) {
    elen = log::EncodePutValue(buf, key, version, value, len);
  } else {
    // l-persist: store the record out of log as (v_len, value), persist.
    block = alloc_->Alloc(core, len + 8);
    if (block == 0) return OpStatus::kNoSpace;
    char* dst = static_cast<char*>(pool_->At(block));
    uint64_t len64 = len;
    std::memcpy(dst, &len64, 8);
    std::memcpy(dst + 8, value, len);
    vt::Charge(vt::CostMemcpy(len));
    pool_->Persist(dst, len + 8);
    pool_->Fence();
    elen = log::EncodePutPtr(buf, key, version, block);
  }

  if (!hb_->Stage(core, buf, elen, handle)) {
    if (block != 0) alloc_->Free(block);
    return OpStatus::kBackpressure;
  }
  cs.Push({*handle, key, version, false, 0});
  InflightKey& fly = cs.inflight_keys.GetOrInsert(key);
  fly.count++;
  fly.last_version = version;
  return OpStatus::kOk;
}

OpStatus FlatStore::BeginDelete(int core, uint64_t key,
                                           OpHandle* handle) {
  FLATSTORE_DCHECK(core == CoreForKey(key));
  CoreState& cs = *cores_[core];

  uint32_t version;
  const InflightKey* inflight = cs.inflight_keys.Find(key);
  uint64_t cur = 0;
  const bool indexed = IndexForCore(core)->Get(key, &cur);
  if (inflight != nullptr) {
    // Chain behind the in-flight writes. (A delete behind a pending
    // delete is rare and resolves as a redundant tombstone.)
    version = (inflight->last_version + 1) & log::kVersionMask;
  } else {
    if (!indexed) return OpStatus::kNotFound;
    common::EpochManager::Guard g(epochs_.get(), core);
    vt::Charge(vt::kEpochPinCost);
    log::DecodedEntry e;
    if (log::DecodeEntry(static_cast<const uint8_t*>(
                             pool_->At(log::UnpackOffset(cur))),
                         log::kMaxEntrySize, &e) &&
        e.op == log::OpType::kDelete) {
      return OpStatus::kNotFound;  // already deleted (tombstone)
    }
    version = (log::UnpackVersion(cur) + 1) & log::kVersionMask;
  }

  // The tombstone remembers which chunk held the overwritten version so
  // the cleaner knows when the tombstone itself may die (§3.4). With
  // in-flight chained writes this is best effort (a GC heuristic).
  uint32_t covered_seq = 0;
  if (indexed) {
    const uint64_t old_chunk =
        AlignDown(log::UnpackOffset(cur), alloc::kChunkSize);
    int owner;
    root_->ChunkInfo(old_chunk, &owner, &covered_seq);
  }

  uint8_t buf[log::kPtrEntrySize];
  uint32_t elen = log::EncodeDelete(buf, key, version, covered_seq);
  if (!hb_->Stage(core, buf, elen, handle)) return OpStatus::kBackpressure;
  cs.Push({*handle, key, version, true, covered_seq});
  InflightKey& fly = cs.inflight_keys.GetOrInsert(key);
  fly.count++;
  fly.last_version = version;
  return OpStatus::kOk;
}

size_t FlatStore::Pump(int core) { return hb_->TryPersist(core); }

// fs-lint: epoch-held(called from Drain under the per-round epoch guard)
// The decoded entry cannot be retired while that guard is held.
void FlatStore::RetireOld(uint64_t old_packed) {
  const uint64_t old_off = log::UnpackOffset(old_packed);
  const uint64_t chunk = AlignDown(old_off, alloc::kChunkSize);
  log::DecodedEntry e;
  const bool decoded =
      log::DecodeEntry(static_cast<const uint8_t*>(pool_->At(old_off)),
                       log::kMaxEntrySize, &e);
  int owner;
  uint32_t seq;
  if (root_->ChunkInfo(chunk, &owner, &seq)) {
    // Decode-before-NoteDead hands the entry length down so the chunk's
    // live-byte counter (cost-benefit victim selection) stays exact
    // without a second in-place decode.
    logs_[owner]->NoteDead(old_off, decoded ? e.entry_len : 0);
  }
  if (decoded && e.op == log::OpType::kPut && !e.embedded) {
    // "The freed data block can be reused immediately" (§3.2): the
    // conflict queue serializes same-key ops, so no reader still needs it.
    alloc_->Free(e.ptr);
  }
}

size_t FlatStore::Drain(int core, size_t max, std::vector<Completion>* out) {
  CoreState& cs = *cores_[core];
  index::KvIndex* idx = IndexForCore(core);
  size_t n = 0;
  while (n < max && cs.pend_count > 0) {
    // Gather the completed FIFO prefix for one round, up to a leader
    // batch's worth, so the index updates below can run as a two-phase
    // prefetch-interleaved wave instead of a probe-per-op random walk.
    uint64_t offs[batch::HbEngine::kMaxBatch];
    uint64_t dones[batch::HbEngine::kMaxBatch];
    const size_t cap = std::min(max - n, batch::HbEngine::kMaxBatch);
    size_t round = 0;
    while (round < cap && round < cs.pend_count) {
      const PendingOp& op =
          cs.pending[(cs.pend_head + round) % batch::HbEngine::kPoolSlots];
      if (!hb_->IsDone(core, op.handle, &offs[round], &dones[round])) break;
      round++;
    }
    if (round == 0) break;
    // Follower semantics differ by mode (paper Fig. 4): under *naive* HB
    // the followers wait synchronously for the leader's persist, so their
    // clocks jump to the batch completion; under *pipelined* HB the
    // follower's CPU stayed free (it kept polling new requests), so its
    // clock does NOT jump — only the response (sent by the caller) must
    // not precede `done` (carried in the Completion).
    if (options_.batch_mode == batch::BatchMode::kNaiveHB) {
      if (vt::Clock* clock = vt::CurrentClock()) {
        for (size_t r = 0; r < round; r++) clock->AdvanceTo(dones[r]);
      }
    }

    {
      // One pin covers the round's index updates and retirements.
      common::EpochManager::Guard g(epochs_.get(), core);
      vt::Charge(vt::kEpochPinCost);
      // Tombstones stay in the index (pointing at the delete entry) so
      // per-key versions remain monotonic across delete + re-put; reads
      // treat them as absent. The cleaner retires them (§3.4).
      index::LookupHint hints[batch::HbEngine::kMaxBatch];
      uint64_t olds[batch::HbEngine::kMaxBatch];
      bool retire[batch::HbEngine::kMaxBatch];
      const int ways =
          round > static_cast<size_t>(vt::kMemParallelism)
              ? vt::kMemParallelism
              : static_cast<int>(round);
      {
        vt::ScopedOverlap overlap(ways);
        // Phase A: locate + prefetch every op's insert position. FIFO
        // order is preserved below, so a duplicate key in the round is
        // applied oldest-first; its later hints may go stale as earlier
        // inserts split/resize nodes, which InsertWithHint detects and
        // revalidates (same discipline as GetWithHint).
        for (size_t r = 0; r < round; r++) {
          const PendingOp& op =
              cs.pending[(cs.pend_head + r) % batch::HbEngine::kPoolSlots];
          if (op.txn_commit) continue;  // commit records index nothing
          idx->PrefetchInsert(op.key, &hints[r]);
        }
        // Phase B: complete the inserts on warm lines.
        for (size_t r = 0; r < round; r++) {
          const PendingOp& op =
              cs.pending[(cs.pend_head + r) % batch::HbEngine::kPoolSlots];
          olds[r] = 0;
          if (op.txn_commit) {
            retire[r] = false;
            continue;
          }
          retire[r] = idx->InsertWithHint(
              op.key, log::PackIndexValue(offs[r], op.version), &olds[r],
              hints[r]);
        }
      }
      for (size_t r = 0; r < round; r++) {
        const PendingOp& op =
            cs.pending[(cs.pend_head + r) % batch::HbEngine::kPoolSlots];
        if (op.txn_commit) {
          // A commit record is born dead: nothing ever points at it, so
          // account it to its chunk's dead bytes immediately (it still
          // guards the chain's replay until the cleaner relocates or
          // retires the chunk).
          RetireOld(log::PackIndexValue(offs[r], 0));
        } else if (retire[r]) {
          RetireOld(olds[r]);
        }
      }
    }
    if (TierActive()) {
      // New entries land in un-tiered chunks: record their keys in the
      // delta set so ScanMerged can enumerate them (DESIGN.md §11).
      LockGuard<SpinLock> dg(cs.delta_lock);
      for (size_t r = 0; r < round; r++) {
        const PendingOp& op =
            cs.pending[(cs.pend_head + r) % batch::HbEngine::kPoolSlots];
        if (!op.txn_commit) cs.delta.insert(op.key);
      }
    }
    for (size_t r = 0; r < round; r++) {
      const PendingOp& op = cs.Front();
      // A txn surfaces exactly one Completion — the commit record's —
      // once the whole fused group is durable; members complete silently.
      if (out != nullptr && !op.txn_member) {
        out->push_back({op.handle, op.key, dones[r]});
      }
      hb_->Release(core, op.handle);
      if (!op.txn_commit) {
        InflightKey* fly = cs.inflight_keys.Find(op.key);
        FLATSTORE_DCHECK(fly != nullptr);
        if (--fly->count == 0) cs.inflight_keys.Erase(op.key);
      }
      cs.Pop();
      n++;
    }
  }
  return n;
}

size_t FlatStore::Inflight(int core) const {
  return cores_[core]->pend_count;
}

bool FlatStore::KeyBusy(int core, uint64_t key) const {
  return cores_[core]->inflight_keys.Contains(key);
}

void FlatStore::ReadValue(const log::DecodedEntry& e,
                          std::string* value) const {
  if (e.embedded) {
    // The value rides in the log entry, which GetOnCore already fetched.
    vt::Charge(vt::CostMemcpy(e.value_len));
    value->assign(reinterpret_cast<const char*>(e.value), e.value_len);
    return;
  }
  const char* block = static_cast<const char*>(pool_->At(e.ptr));
  uint64_t len;
  std::memcpy(&len, block, 8);
  pool_->ChargeRead(block, len + 8);
  vt::Charge(vt::CostMemcpy(len));
  value->assign(block + 8, len);
}

bool FlatStore::GetOnCore(int core, uint64_t key, std::string* value) {
  // Pin before the index lookup: the entry pointer read from the index
  // stays dereferenceable until Unpin even if the cleaner unlinks its
  // chunk concurrently (the physical free waits a grace period).
  common::EpochManager::Guard g(epochs_.get(), core);
  vt::Charge(vt::kEpochPinCost);
  index::KvIndex* idx = IndexForCore(core);
  uint64_t packed;
  if (!idx->Get(key, &packed)) return false;
  const uint64_t off = log::UnpackOffset(packed);
  pool_->ChargeRead(pool_->At(off), log::kPtrEntrySize);  // entry fetch
  log::DecodedEntry e;
  bool ok = log::DecodeEntry(static_cast<const uint8_t*>(pool_->At(off)),
                             log::kMaxEntrySize, &e);
  if (!ok) {
    int owner = -1;
    uint32_t seq = 0;
    bool reg = root_->ChunkInfo(AlignDown(off, alloc::kChunkSize), &owner,
                                &seq);
    FLATSTORE_CHECK(ok) << "index pointed at an invalid entry: key=" << key
                        << " off=" << off
                        << " ver=" << log::UnpackVersion(packed)
                        << " chunk_registered=" << reg << " owner=" << owner
                        << " seq=" << seq << " byte0="
                        << int(*static_cast<const uint8_t*>(pool_->At(off)));
  }
  if (e.op == log::OpType::kDelete) return false;  // tombstone
  ReadValue(e, value);
  return true;
}

size_t FlatStore::MultiGetOnCore(int core, const uint64_t* keys, size_t n,
                                 ReadResult* results) {
  FLATSTORE_CHECK_LE(n, kMaxReadBatch);
  if (n == 0) return 0;
  // One pin covers every entry dereference in the batch.
  common::EpochManager::Guard g(epochs_.get(), core);
  vt::Charge(vt::kEpochPinCost);
  index::KvIndex* idx = IndexForCore(core);
  CoreState& cs = *cores_[core];

  index::LookupHint hints[kMaxReadBatch];
  uint64_t packed[kMaxReadBatch];
  uint64_t ready[kMaxReadBatch];  // read-completion times (phases C/D)
  const int ways =
      n > static_cast<size_t>(vt::kMemParallelism)
          ? vt::kMemParallelism
          : static_cast<int>(n);

  size_t served = 0;
  {
    vt::ScopedOverlap overlap(ways);
    // Phase A: conflict check + locate/prefetch every key.
    for (size_t i = 0; i < n; i++) {
      results[i].value.clear();
      if (cs.inflight_keys.Contains(keys[i])) {
        results[i].status = GetResult::kDeferred;
        continue;
      }
      results[i].status = GetResult::kAbsent;  // provisional until phase B
      idx->PrefetchGet(keys[i], &hints[i]);
    }
    // Phase B: finish the probes on (mostly) warm lines.
    for (size_t i = 0; i < n; i++) {
      if (results[i].status == GetResult::kDeferred) continue;
      results[i].status = idx->GetWithHint(keys[i], hints[i], &packed[i])
                              ? GetResult::kFound
                              : GetResult::kAbsent;
      served++;
    }
  }

  // Phase C: issue every log-entry header read at one instant; advance to
  // each completion only when that entry is decoded, so independent PM/
  // DRAM fetches overlap instead of serializing as in GetOnCore.
  vt::Clock* clock = vt::CurrentClock();
  const uint64_t issue = clock != nullptr ? clock->now() : 0;
  for (size_t i = 0; i < n; i++) {
    if (results[i].status != GetResult::kFound) continue;
    const void* entry = pool_->At(log::UnpackOffset(packed[i]));
    __builtin_prefetch(entry, 0, 3);
    if (clock != nullptr) {
      vt::Charge(vt::kPrefetchIssueCost);
      ready[i] = pool_->ChargeReadAt(entry, log::kPtrEntrySize, issue);
    }
  }

  // Decode in order; embedded values complete here, out-of-log blocks are
  // issued as a second overlapped read wave (phase D) and consumed below.
  log::DecodedEntry entries[kMaxReadBatch];
  for (size_t i = 0; i < n; i++) {
    if (results[i].status != GetResult::kFound) continue;
    if (clock != nullptr) clock->AdvanceTo(ready[i]);
    const uint64_t off = log::UnpackOffset(packed[i]);
    log::DecodedEntry& e = entries[i];
    bool ok = log::DecodeEntry(static_cast<const uint8_t*>(pool_->At(off)),
                               log::kMaxEntrySize, &e);
    FLATSTORE_CHECK(ok) << "index pointed at an invalid entry: key="
                        << keys[i] << " off=" << off;
    if (e.op == log::OpType::kDelete) {
      results[i].status = GetResult::kAbsent;  // tombstone
      continue;
    }
    if (e.embedded) {
      vt::Charge(vt::CostMemcpy(e.value_len));
      results[i].value.assign(reinterpret_cast<const char*>(e.value),
                              e.value_len);
      e.ptr = 0;  // no phase-D read
    } else if (clock != nullptr) {
      const char* block = static_cast<const char*>(pool_->At(e.ptr));
      uint64_t len;
      std::memcpy(&len, block, 8);
      ready[i] = pool_->ChargeReadAt(block, len + 8, clock->now());
    }
  }

  // Phase D: consume the out-of-log value blocks.
  for (size_t i = 0; i < n; i++) {
    if (results[i].status != GetResult::kFound) continue;
    const log::DecodedEntry& e = entries[i];
    if (e.embedded || e.ptr == 0) continue;
    if (clock != nullptr) clock->AdvanceTo(ready[i]);
    const char* block = static_cast<const char*>(pool_->At(e.ptr));
    uint64_t len;
    std::memcpy(&len, block, 8);
    vt::Charge(vt::CostMemcpy(len));
    results[i].value.assign(block + 8, len);
  }
  return served;
}

size_t FlatStore::BeginWriteBatch(int core, const WriteOp* ops, size_t n,
                                  OpHandle* handles, OpStatus* statuses) {
  static_assert(kMaxWriteBatch <= batch::HbEngine::kMaxBatch,
                "a client batch must fit in one fused HB group");
  FLATSTORE_CHECK_LE(n, kMaxWriteBatch);
  if (n == 0) return 0;
  CoreState& cs = *cores_[core];
  index::KvIndex* idx = IndexForCore(core);

  // All per-batch state is stack-resident (the serving path stays
  // allocation-free).
  uint8_t bufs[kMaxWriteBatch][log::kMaxEntrySize];
  log::OpLog::EntryRef refs[kMaxWriteBatch];
  uint64_t blocks[kMaxWriteBatch];  // out-of-log value blocks (0 = none)
  uint32_t versions[kMaxWriteBatch];
  uint32_t covered[kMaxWriteBatch];
  size_t slot_of[kMaxWriteBatch];  // op index -> fused-group position
  index::LookupHint hints[kMaxWriteBatch];
  uint64_t packed[kMaxWriteBatch];
  bool indexed[kMaxWriteBatch];

  // The tombstone-liveness probe below dereferences log entries; one pin
  // covers the whole batch.
  common::EpochManager::Guard g(epochs_.get(), core);
  vt::Charge(vt::kEpochPinCost);

  {
    const int ways =
        n > static_cast<size_t>(vt::kMemParallelism)
            ? vt::kMemParallelism
            : static_cast<int>(n);
    vt::ScopedOverlap overlap(ways);
    // Phase A: issue every version-resolution probe with prefetches.
    // Keys with in-flight writes chain off the in-flight table instead,
    // but still need the probe when they are tombstones (covered_seq).
    for (size_t i = 0; i < n; i++) {
      statuses[i] = OpStatus::kOk;
      blocks[i] = 0;
      idx->PrefetchGet(ops[i].key, &hints[i]);
    }
    // Phase B: complete the probes on warm lines.
    for (size_t i = 0; i < n; i++) {
      packed[i] = 0;
      indexed[i] = idx->GetWithHint(ops[i].key, hints[i], &packed[i]);
    }
  }

  // Phase C: resolve versions, encode entries, l-persist out-of-log
  // values. Every block Persist below shares the single Fence after the
  // loop (batched l-persist: independent value streams need one drain).
  size_t staged = 0;
  bool fenced_needed = false;
  bool nospace = false;
  for (size_t i = 0; i < n; i++) {
    const WriteOp& op = ops[i];
    // Version chaining, newest first: an earlier op of this batch on the
    // same key, else the newest in-flight write, else the indexed entry.
    uint32_t version = 0;
    bool chained = false;
    for (size_t j = i; j-- > 0;) {
      if (ops[j].key == op.key && statuses[j] == OpStatus::kOk) {
        version = (versions[j] + 1) & log::kVersionMask;
        chained = true;
        break;
      }
    }
    if (!chained) {
      if (const InflightKey* fly = cs.inflight_keys.Find(op.key)) {
        version = (fly->last_version + 1) & log::kVersionMask;
        chained = true;
      }
    }
    uint32_t elen;
    if (op.tombstone) {
      if (!chained) {
        if (!indexed[i]) {
          statuses[i] = OpStatus::kNotFound;
          continue;
        }
        log::DecodedEntry e;
        if (log::DecodeEntry(static_cast<const uint8_t*>(
                                 pool_->At(log::UnpackOffset(packed[i]))),
                             log::kMaxEntrySize, &e) &&
            e.op == log::OpType::kDelete) {
          statuses[i] = OpStatus::kNotFound;  // already a tombstone
          continue;
        }
        version = (log::UnpackVersion(packed[i]) + 1) & log::kVersionMask;
      }
      // Best-effort covered-chunk hint for tombstone GC (§3.4), as in
      // BeginDelete.
      covered[i] = 0;
      if (indexed[i]) {
        const uint64_t old_chunk =
            AlignDown(log::UnpackOffset(packed[i]), alloc::kChunkSize);
        int owner;
        root_->ChunkInfo(old_chunk, &owner, &covered[i]);
      }
      elen = log::EncodeDelete(bufs[i], op.key, version, covered[i]);
    } else {
      FLATSTORE_DCHECK(op.len >= 1);
      if (!chained) {
        version =
            indexed[i] ? (log::UnpackVersion(packed[i]) + 1) & log::kVersionMask
                       : 1;
      }
      covered[i] = 0;
      if (op.len <= log::kMaxInlineValue) {
        elen = log::EncodePutValue(bufs[i], op.key, version, op.value, op.len);
      } else {
        const uint64_t block = alloc_->Alloc(core, op.len + 8);
        if (block == 0) {
          statuses[i] = OpStatus::kNoSpace;
          nospace = true;
          break;
        }
        char* dst = static_cast<char*>(pool_->At(block));
        uint64_t len64 = op.len;
        std::memcpy(dst, &len64, 8);
        std::memcpy(dst + 8, op.value, op.len);
        vt::Charge(vt::CostMemcpy(op.len));
        // fs-lint: fence-guarded(drained by the one Fence below under the flag)
        // Abort paths free the blocks; dead data needs no fence.
        pool_->Persist(dst, op.len + 8);
        fenced_needed = true;
        blocks[i] = block;
        elen = log::EncodePutPtr(bufs[i], op.key, version, block);
      }
    }
    versions[i] = version;
    refs[staged] = {bufs[i], elen};
    slot_of[i] = staged;
    staged++;
  }
  if (fenced_needed) pool_->Fence();  // one drain for all l-persists

  if (nospace) {
    // PM exhausted mid-batch: abort the whole batch (nothing staged) so
    // the caller sees a clean all-or-nothing failure.
    for (size_t i = 0; i < n; i++) {
      if (blocks[i] != 0) alloc_->Free(blocks[i]);
      if (statuses[i] == OpStatus::kOk) statuses[i] = OpStatus::kNoSpace;
    }
    return 0;
  }
  if (staged == 0) return 0;  // every op was a not-found delete

  // Phase D: stage the batch as ONE fused group — all-or-nothing.
  uint64_t fused_handles[kMaxWriteBatch];
  if (!hb_->StageBatch(core, refs, staged, fused_handles)) {
    for (size_t i = 0; i < n; i++) {
      if (blocks[i] != 0) alloc_->Free(blocks[i]);
      if (statuses[i] == OpStatus::kOk) statuses[i] = OpStatus::kBackpressure;
    }
    return 0;
  }
  for (size_t i = 0; i < n; i++) {
    if (statuses[i] != OpStatus::kOk) continue;
    const OpHandle h = fused_handles[slot_of[i]];
    handles[i] = h;
    cs.Push({h, ops[i].key, versions[i], ops[i].tombstone, covered[i]});
    InflightKey& fly = cs.inflight_keys.GetOrInsert(ops[i].key);
    fly.count++;
    fly.last_version = versions[i];
  }
  return staged;
}

size_t FlatStore::MultiPutOnCore(int core, const WriteOp* ops, size_t n,
                                 OpStatus* statuses) {
  OpHandle handles[kMaxWriteBatch];
  size_t staged;
  while (true) {
    staged = BeginWriteBatch(core, ops, n, handles, statuses);
    if (staged > 0) break;
    bool backpressure = false;
    for (size_t i = 0; i < n; i++) {
      backpressure |= statuses[i] == OpStatus::kBackpressure;
    }
    // Not backpressure => nothing will ever stage (all kNotFound /
    // kNoSpace) — done.
    if (!backpressure) return 0;
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  while (Inflight(core) > 0) {
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  return staged;
}

// ---- transactions (§5.3) -------------------------------------------------

TxnStatus FlatStore::BeginTxn(int core, const TxnOp* ops, size_t n,
                              OpHandle* commit_handle, size_t* failed_op) {
  static_assert(kMaxTxnOps + 1 <= batch::HbEngine::kMaxBatch,
                "a txn chain plus its commit record must fit one fused group");
  static_assert(kMaxTxnOps <= log::kMaxTxnChain,
                "readers must be able to buffer a whole chain");
  FLATSTORE_CHECK_LE(n, kMaxTxnOps);
  *commit_handle = kNoOpHandle;
  if (failed_op != nullptr) *failed_op = n;
  if (n == 0) return TxnStatus::kCommitted;
  CoreState& cs = *cores_[core];
  index::KvIndex* idx = IndexForCore(core);

  // Conflict detection: §3.3's conflict queue widened to whole txns — any
  // key with in-flight writes fails the txn up front, so the current-value
  // reads below (kCas compares, kRmw inputs) see stable committed state
  // and the version chains cannot interleave with a concurrent drain.
  for (size_t i = 0; i < n; i++) {
    FLATSTORE_DCHECK(core == CoreForKey(ops[i].key));
    if (cs.inflight_keys.Contains(ops[i].key)) {
      if (failed_op != nullptr) *failed_op = i;
      return TxnStatus::kBusy;
    }
  }

  // Entry dereferences below need the pin (the cleaner may unlink chunks).
  common::EpochManager::Guard g(epochs_.get(), core);
  vt::Charge(vt::kEpochPinCost);

  index::LookupHint hints[kMaxTxnOps];
  uint64_t packed[kMaxTxnOps];
  bool indexed[kMaxTxnOps];
  {
    const int ways = n > static_cast<size_t>(vt::kMemParallelism)
                         ? vt::kMemParallelism
                         : static_cast<int>(n);
    vt::ScopedOverlap overlap(ways);
    // Phase A/B: prefetch-interleaved probes, as in BeginWriteBatch.
    for (size_t i = 0; i < n; i++) idx->PrefetchGet(ops[i].key, &hints[i]);
    for (size_t i = 0; i < n; i++) {
      packed[i] = 0;
      indexed[i] = idx->GetWithHint(ops[i].key, hints[i], &packed[i]);
    }
  }

  // Members encode back-to-back into one stack buffer with the commit
  // record last, so the refs handed to StageBatch alias contiguous bytes
  // laid out exactly as they will land in the log.
  uint8_t chain[kMaxTxnOps * log::kMaxEntrySize + log::kPtrEntrySize];
  uint64_t member_start[kMaxTxnOps];
  uint32_t member_len[kMaxTxnOps];
  uint64_t blocks[kMaxTxnOps];  // out-of-log value blocks (0 = none)
  uint32_t versions[kMaxTxnOps];
  uint32_t covered[kMaxTxnOps];
  bool staged_member[kMaxTxnOps];
  bool tombstone[kMaxTxnOps];
  // Post-op logical state, for in-txn read-your-writes: value pointers
  // alias the chain (inline) or the fresh value block (out-of-log).
  bool present_after[kMaxTxnOps];
  const uint8_t* val_after[kMaxTxnOps];
  uint32_t len_after[kMaxTxnOps];
  uint8_t rmw_out[log::kMaxInlineValue];

  uint64_t chain_len = 0;
  size_t members = 0;
  bool fence_needed = false;

  auto abort_blocks = [&](size_t upto) {
    for (size_t i = 0; i < upto; i++) {
      if (blocks[i] != 0) alloc_->Free(blocks[i]);
    }
  };

  for (size_t i = 0; i < n; i++) {
    const TxnOp& op = ops[i];
    blocks[i] = 0;
    staged_member[i] = false;
    tombstone[i] = false;

    // Resolve the key's pre-op state with in-txn visibility: the newest
    // earlier op on this key wins, else the committed index entry.
    bool present = false;
    const uint8_t* cur = nullptr;
    uint32_t cur_len = 0;
    int last_same = -1;
    for (size_t j = i; j-- > 0;) {
      if (ops[j].key == op.key) {
        last_same = static_cast<int>(j);
        break;
      }
    }
    if (last_same >= 0) {
      present = present_after[last_same];
      cur = val_after[last_same];
      cur_len = len_after[last_same];
    } else if (indexed[i]) {
      const uint64_t off = log::UnpackOffset(packed[i]);
      pool_->ChargeRead(pool_->At(off), log::kPtrEntrySize);
      log::DecodedEntry e;
      const bool ok = log::DecodeEntry(
          static_cast<const uint8_t*>(pool_->At(off)), log::kMaxEntrySize,
          &e);
      FLATSTORE_CHECK(ok) << "index pointed at an invalid entry: key="
                          << op.key << " off=" << off;
      if (e.op != log::OpType::kDelete) {
        present = true;
        if (e.embedded) {
          cur = e.value;
          cur_len = e.value_len;
        } else {
          const uint8_t* block =
              static_cast<const uint8_t*>(pool_->At(e.ptr));
          uint64_t len64;
          std::memcpy(&len64, block, 8);
          pool_->ChargeRead(block, len64 + 8);
          cur = block + 8;
          cur_len = static_cast<uint32_t>(len64);
        }
      }
    }

    // Version chaining: the newest earlier *member* on this key, else the
    // indexed version (tombstones included — versions stay monotonic
    // across delete + re-put), else a fresh chain.
    uint32_t version = 1;
    {
      int last_member = -1;
      for (size_t j = i; j-- > 0;) {
        if (ops[j].key == op.key && staged_member[j]) {
          last_member = static_cast<int>(j);
          break;
        }
      }
      if (last_member >= 0) {
        version = (versions[last_member] + 1) & log::kVersionMask;
      } else if (indexed[i]) {
        version = (log::UnpackVersion(packed[i]) + 1) & log::kVersionMask;
      }
    }

    // Resolve the op to a staged member (or skip / abort).
    const void* new_val = nullptr;
    uint32_t new_len = 0;
    bool is_tomb = false;
    switch (op.kind) {
      case TxnOpKind::kPut:
        new_val = op.value;
        new_len = op.len;
        break;
      case TxnOpKind::kDelete:
        if (!present) {
          // Logical no-op: the key is already absent. Stage nothing, so
          // the chain carries only effective ops.
          present_after[i] = false;
          val_after[i] = nullptr;
          len_after[i] = 0;
          continue;
        }
        is_tomb = true;
        break;
      case TxnOpKind::kCas: {
        const bool match =
            op.expected == nullptr
                ? !present
                : (present && cur_len == op.expected_len &&
                   std::memcmp(cur, op.expected, cur_len) == 0);
        if (!match) {
          abort_blocks(i);
          if (failed_op != nullptr) *failed_op = i;
          return TxnStatus::kCasMismatch;
        }
        new_val = op.value;
        new_len = op.len;
        break;
      }
      case TxnOpKind::kRmw: {
        const uint32_t out_len =
            op.rmw(op.rmw_ctx, present ? cur : nullptr,
                   present ? cur_len : 0, rmw_out, log::kMaxInlineValue);
        FLATSTORE_CHECK(out_len >= 1 && out_len <= log::kMaxInlineValue)
            << "RMW output must be 1.." << log::kMaxInlineValue << " bytes";
        new_val = rmw_out;
        new_len = out_len;
        break;
      }
    }

    uint8_t* dst = chain + chain_len;
    uint32_t elen;
    covered[i] = 0;
    if (is_tomb) {
      // Best-effort covered-chunk hint for tombstone GC (§3.4).
      if (indexed[i]) {
        const uint64_t old_chunk =
            AlignDown(log::UnpackOffset(packed[i]), alloc::kChunkSize);
        int owner;
        root_->ChunkInfo(old_chunk, &owner, &covered[i]);
      }
      elen = log::EncodeDelete(dst, op.key, version, covered[i]);
      tombstone[i] = true;
      present_after[i] = false;
      val_after[i] = nullptr;
      len_after[i] = 0;
    } else {
      FLATSTORE_DCHECK(new_len >= 1);
      if (new_len <= log::kMaxInlineValue) {
        elen = log::EncodePutValue(dst, op.key, version, new_val, new_len);
        val_after[i] = dst + log::kValueEntryHeader;
      } else {
        // l-persist, fence shared below (batched as in BeginWriteBatch).
        const uint64_t block = alloc_->Alloc(core, new_len + 8);
        if (block == 0) {
          abort_blocks(i);
          return TxnStatus::kNoSpace;
        }
        char* bdst = static_cast<char*>(pool_->At(block));
        uint64_t len64 = new_len;
        std::memcpy(bdst, &len64, 8);
        std::memcpy(bdst + 8, new_val, new_len);
        vt::Charge(vt::CostMemcpy(new_len));
        // fs-lint: fence-guarded(drained by the one Fence below under the flag)
        // Abort paths free the blocks; dead data needs no fence.
        pool_->Persist(bdst, new_len + 8);
        fence_needed = true;
        blocks[i] = block;
        elen = log::EncodePutPtr(dst, op.key, version, block);
        val_after[i] = reinterpret_cast<const uint8_t*>(bdst) + 8;
      }
      present_after[i] = true;
      len_after[i] = new_len;
    }
    log::MarkTxnMember(dst);
    member_start[i] = chain_len;
    member_len[i] = elen;
    versions[i] = version;
    staged_member[i] = true;
    chain_len += elen;
    members++;
  }
  if (fence_needed) pool_->Fence();  // one drain for all l-persists

  if (members == 0) return TxnStatus::kCommitted;  // every op was a no-op

  // Commit record: member count, chain byte length, XXH64 over the chain
  // bytes exactly as they will appear in the log.
  const uint64_t checksum = Hash64(chain, chain_len);
  uint8_t* commit = chain + chain_len;
  const uint32_t commit_len = log::EncodeTxnCommit(
      commit, static_cast<uint32_t>(members), chain_len, checksum);

  // Stage as ONE fused group: the leader writes members + commit through
  // a single AppendBatch, so the physical chain is contiguous and covered
  // by one persist sweep and one fence pair — all-or-nothing on crash.
  log::OpLog::EntryRef refs[kMaxTxnOps + 1];
  uint64_t fused_handles[kMaxTxnOps + 1];
  size_t slot = 0;
  for (size_t i = 0; i < n; i++) {
    if (!staged_member[i]) continue;
    refs[slot] = {chain + member_start[i], member_len[i]};
    slot++;
  }
  refs[slot] = {commit, commit_len};
  if (!hb_->StageBatch(core, refs, members + 1, fused_handles)) {
    abort_blocks(n);
    return TxnStatus::kBackpressure;
  }

  slot = 0;
  for (size_t i = 0; i < n; i++) {
    if (!staged_member[i]) continue;
    cs.Push({fused_handles[slot], ops[i].key, versions[i], tombstone[i],
             covered[i], /*txn_member=*/true, /*txn_commit=*/false});
    InflightKey& fly = cs.inflight_keys.GetOrInsert(ops[i].key);
    fly.count++;
    fly.last_version = versions[i];
    slot++;
  }
  cs.Push({fused_handles[members], /*key=*/0, /*version=*/0,
           /*tombstone=*/false, /*covered_seq=*/0, /*txn_member=*/false,
           /*txn_commit=*/true});
  *commit_handle = fused_handles[members];
  return TxnStatus::kCommitted;
}

TxnStatus FlatStore::CommitTxnOnCore(int core, const TxnOp* ops, size_t n,
                                     size_t* failed_op) {
  OpHandle commit_handle;
  TxnStatus st;
  while (true) {
    st = BeginTxn(core, ops, n, &commit_handle, failed_op);
    if (st != TxnStatus::kBusy && st != TxnStatus::kBackpressure) break;
    // Same-core in-flight ops belong to this thread's protocol: drain
    // them and retry.
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  if (st != TxnStatus::kCommitted) return st;
  while (Inflight(core) > 0) {
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  return st;
}

FlatStore::Txn& FlatStore::Txn::Put(uint64_t key, std::string_view value) {
  Staged s;
  s.kind = TxnOpKind::kPut;
  s.key = key;
  s.value.assign(value.data(), value.size());
  ops_.push_back(std::move(s));
  return *this;
}

FlatStore::Txn& FlatStore::Txn::Delete(uint64_t key) {
  Staged s;
  s.kind = TxnOpKind::kDelete;
  s.key = key;
  ops_.push_back(std::move(s));
  return *this;
}

FlatStore::Txn& FlatStore::Txn::Cas(uint64_t key,
                                    std::optional<std::string> expected,
                                    std::string_view value) {
  Staged s;
  s.kind = TxnOpKind::kCas;
  s.key = key;
  s.value.assign(value.data(), value.size());
  if (expected.has_value()) {
    s.expected = std::move(*expected);
  } else {
    s.expect_absent = true;
  }
  ops_.push_back(std::move(s));
  return *this;
}

FlatStore::Txn& FlatStore::Txn::Rmw(
    uint64_t key, std::function<std::string(std::string_view, bool)> fn) {
  Staged s;
  s.kind = TxnOpKind::kRmw;
  s.key = key;
  s.rmw = std::move(fn);
  ops_.push_back(std::move(s));
  return *this;
}

bool FlatStore::Txn::Get(uint64_t key, std::string* value) {
  std::string cur;
  bool present = store_->GetOnCore(store_->CoreForKey(key), key, &cur);
  for (const Staged& s : ops_) {
    if (s.key != key) continue;
    switch (s.kind) {
      case TxnOpKind::kPut:
      case TxnOpKind::kCas:  // preview assumes the compare succeeds
        cur = s.value;
        present = true;
        break;
      case TxnOpKind::kDelete:
        present = false;
        cur.clear();
        break;
      case TxnOpKind::kRmw:
        cur = s.rmw(std::string_view(cur), present);
        present = true;
        break;
    }
  }
  if (present && value != nullptr) *value = cur;
  return present;
}

uint32_t FlatStore::Txn::RmwTrampoline(void* ctx, const void* cur,
                                       uint32_t cur_len, uint8_t* out,
                                       uint32_t cap) {
  auto* fn =
      static_cast<std::function<std::string(std::string_view, bool)>*>(ctx);
  const std::string result =
      (*fn)(cur != nullptr
                ? std::string_view(static_cast<const char*>(cur), cur_len)
                : std::string_view(),
            cur != nullptr);
  FLATSTORE_CHECK(!result.empty() && result.size() <= cap);
  std::memcpy(out, result.data(), result.size());
  return static_cast<uint32_t>(result.size());
}

TxnStatus FlatStore::Txn::Commit(size_t* failed_op) {
  FLATSTORE_CHECK_LE(ops_.size(), kMaxTxnOps);
  if (ops_.empty()) return TxnStatus::kCommitted;
  TxnOp ops[kMaxTxnOps];
  int core = -1;
  for (size_t i = 0; i < ops_.size(); i++) {
    Staged& s = ops_[i];
    const int c = store_->CoreForKey(s.key);
    if (core < 0) core = c;
    FLATSTORE_CHECK_EQ(core, c) << "txn keys must route to one core";
    TxnOp& op = ops[i];
    op.kind = s.kind;
    op.key = s.key;
    op.value = s.value.data();
    op.len = static_cast<uint32_t>(s.value.size());
    op.expected = nullptr;
    op.expected_len = 0;
    if (s.kind == TxnOpKind::kCas && !s.expect_absent) {
      op.expected = s.expected.data();
      op.expected_len = static_cast<uint32_t>(s.expected.size());
    }
    op.rmw = nullptr;
    op.rmw_ctx = nullptr;
    if (s.kind == TxnOpKind::kRmw) {
      op.rmw = &RmwTrampoline;
      op.rmw_ctx = &s.rmw;
    }
  }
  const TxnStatus st =
      store_->CommitTxnOnCore(core, ops, ops_.size(), failed_op);
  // Success consumes the staged ops; a failed txn keeps them so callers
  // can retry (e.g. after a pump/drain or with a fresh Cas expectation).
  if (st == TxnStatus::kCommitted) ops_.clear();
  return st;
}

// ---- synchronous wrappers ------------------------------------------------

void FlatStore::Put(uint64_t key, std::string_view value) {
  const int core = CoreForKey(key);
  OpHandle h;
  while (true) {
    OpStatus st =
        BeginPut(core, key, value.data(),
                 static_cast<uint32_t>(value.size()), &h);
    if (st == OpStatus::kOk) break;
    FLATSTORE_CHECK(st == OpStatus::kBusy || st == OpStatus::kBackpressure)
        << "Put failed (PM exhausted?)";
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  while (Inflight(core) > 0) {
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
}

bool FlatStore::Get(uint64_t key, std::string* value) {
  return GetOnCore(CoreForKey(key), key, value);
}

bool FlatStore::Delete(uint64_t key) {
  const int core = CoreForKey(key);
  OpHandle h;
  while (true) {
    OpStatus st = BeginDelete(core, key, &h);
    if (st == OpStatus::kNotFound) return false;
    if (st == OpStatus::kOk) break;
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  while (Inflight(core) > 0) {
    Pump(core);
    Drain(core, SIZE_MAX, nullptr);
  }
  return true;
}

uint64_t FlatStore::Scan(uint64_t start_key, uint64_t count,
                         std::vector<std::pair<uint64_t, std::string>>* out) {
  auto* ordered = dynamic_cast<index::OrderedKvIndex*>(indexes_[0].get());
  if (ordered == nullptr) {
    FLATSTORE_CHECK(TierActive())
        << "Scan on FlatStore-H requires the persistent tier "
           "(FlatStoreOptions::tier_enabled)";
    return ScanMerged(start_key, count, out);
  }
  // Scanned entries may live in any group's logs; a single guest pin
  // holds reclamation off store-wide for the scan's duration.
  common::EpochManager::GuestGuard guard(epochs_.get());
  vt::Charge(vt::kEpochPinCost);
  uint64_t produced = 0;
  uint64_t cursor = start_key;
  bool exhausted = false;
  while (produced < count && !exhausted) {
    std::vector<index::KvPair> pairs;
    const uint64_t want = count - produced + 16;  // slack for tombstones
    uint64_t got = ordered->Scan(cursor, want, &pairs);
    exhausted = got < want;
    for (const auto& p : pairs) {
      if (produced >= count) break;
      log::DecodedEntry e;
      bool ok = log::DecodeEntry(
          static_cast<const uint8_t*>(pool_->At(log::UnpackOffset(p.value))),
          log::kMaxEntrySize, &e);
      FLATSTORE_CHECK(ok);
      if (e.op == log::OpType::kDelete) continue;  // tombstone
      std::string v;
      ReadValue(e, &v);
      out->emplace_back(p.key, std::move(v));
      produced++;
    }
    if (!pairs.empty()) {
      if (pairs.back().key == UINT64_MAX) break;
      cursor = pairs.back().key + 1;
    }
  }
  return produced;
}

bool FlatStore::CanScan() const {
  return tier_ != nullptr ||
         dynamic_cast<index::OrderedKvIndex*>(indexes_[0].get()) != nullptr;
}

uint64_t FlatStore::ScanFullIteration(
    uint64_t start_key, uint64_t count,
    std::vector<std::pair<uint64_t, std::string>>* out) {
  common::EpochManager::GuestGuard guard(epochs_.get());
  vt::Charge(vt::kEpochPinCost);
  // Pass 1: harvest every qualifying key from every core's index. A hash
  // index has no order, so there is no way to stop early — the whole
  // table is touched no matter how short the range.
  std::vector<std::pair<uint64_t, uint64_t>> hits;  // {key, packed}
  for (auto& idx : indexes_) {
    idx->ForEach([&](uint64_t key, uint64_t packed) {
      if (key >= start_key) hits.emplace_back(key, packed);
    });
  }
  std::sort(hits.begin(), hits.end());
  uint64_t produced = 0;
  for (const auto& h : hits) {
    if (produced >= count) break;
    log::DecodedEntry e;
    const bool ok = log::DecodeEntry(
        static_cast<const uint8_t*>(pool_->At(log::UnpackOffset(h.second))),
        log::kMaxEntrySize, &e);
    FLATSTORE_CHECK(ok);
    if (e.op == log::OpType::kDelete) continue;  // tombstone
    std::string v;
    ReadValue(e, &v);
    out->emplace_back(h.first, std::move(v));
    produced++;
  }
  return produced;
}

// Hash-index scan (DESIGN.md §11): keys come in order from a windowed
// k-way merge of the tier's L0 list and the per-core delta sets; values
// are read authoritatively back through the volatile index, so a stale
// tier node or a racy delta membership costs one wasted probe, never
// correctness.
uint64_t FlatStore::ScanMerged(
    uint64_t start_key, uint64_t count,
    std::vector<std::pair<uint64_t, std::string>>* out) {
  // A single guest pin holds reclamation off store-wide for the scan's
  // duration (entries may live in any group's logs). Tier nodes need no
  // pin: arena chunks are never freed.
  common::EpochManager::GuestGuard guard(epochs_.get());
  vt::Charge(vt::kEpochPinCost);
  uint64_t produced = 0;
  uint64_t cursor = start_key;
  std::vector<uint64_t> keys;
  while (produced < count) {
    const uint64_t want = count - produced + 16;  // slack for tombstones
    keys.clear();
    // Window bound: a source that filled its quota may still hold keys
    // below another source's last emitted key, so only keys up to the
    // smallest truncated source's last key are completely merged.
    uint64_t bound = UINT64_MAX;
    bool truncated = false;
    if (tier_ != nullptr) {
      uint64_t taken = 0;
      tier::PersistentTier::Iterator it = tier_->Seek(cursor);
      while (it.Valid() && taken < want) {
        keys.push_back(it.key());
        taken++;
        it.Next();
      }
      if (taken == want && it.Valid()) {
        truncated = true;
        bound = std::min(bound, keys.back());
      }
    }
    for (auto& csp : cores_) {
      LockGuard<SpinLock> dg(csp->delta_lock);
      auto it = csp->delta.lower_bound(cursor);
      uint64_t taken = 0;
      uint64_t last = 0;
      while (it != csp->delta.end() && taken < want) {
        last = *it;
        keys.push_back(last);
        taken++;
        ++it;
      }
      if (taken == want && it != csp->delta.end()) {
        truncated = true;
        bound = std::min(bound, last);
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (uint64_t k : keys) {
      if (produced >= count) break;
      if (truncated && k > bound) break;
      uint64_t packed = 0;
      if (!IndexForCore(CoreForKey(k))->Get(k, &packed)) continue;
      log::DecodedEntry e;
      const bool ok = log::DecodeEntry(
          static_cast<const uint8_t*>(pool_->At(log::UnpackOffset(packed))),
          log::kMaxEntrySize, &e);
      FLATSTORE_CHECK(ok);
      if (e.op == log::OpType::kDelete) continue;  // tombstone
      std::string v;
      ReadValue(e, &v);
      out->emplace_back(k, std::move(v));
      produced++;
    }
    if (!truncated || bound == UINT64_MAX) break;  // sources exhausted
    cursor = bound + 1;
  }
  return produced;
}

uint64_t FlatStore::Size() const {
  // Tombstones live in the index, so count only Put-pointing entries.
  // Size() may run from any thread: use a guest pin.
  common::EpochManager::GuestGuard guard(epochs_.get());
  uint64_t n = 0;
  for (const auto& idx : indexes_) {
    idx->ForEach([&](uint64_t, uint64_t packed) {
      log::DecodedEntry e;
      // fs-lint: unpinned-read(covered by the GuestGuard Size holds above)
      // The analyzer scopes pins per function and cannot see across the
      // lambda boundary.
      if (log::DecodeEntry(static_cast<const uint8_t*>(
                               pool_->At(log::UnpackOffset(packed))),
                           log::kMaxEntrySize, &e) &&
          e.op == log::OpType::kPut) {
        n++;
      }
    });
  }
  return n;
}

uint64_t FlatStore::ChunksCleaned() const {
  uint64_t n = 0;
  for (const auto& c : cleaners_) n += c->chunks_cleaned();
  return n;
}

// ---- log cleaning ---------------------------------------------------------

void FlatStore::EnsureCleaners() {
  if (!cleaners_.empty()) return;
  std::vector<log::OpLog*> raw;
  for (auto& l : logs_) raw.push_back(l.get());
  log::CleanerHooks hooks;
  hooks.index_for_key = [this](uint64_t key) {
    return IndexForCore(CoreForKey(key));
  };
  hooks.epochs = epochs_.get();
  // Tier resurrection veto (DESIGN.md §11): a tombstone may die only
  // when no tier node could resurrect its key at recovery — the tier
  // never saw the key, or its node already points at this tombstone.
  // Wired even when tier_enabled is off: a pool that carries a tier from
  // an earlier run must keep honouring the invariant.
  hooks.tier_stale = [this](uint64_t key, uint64_t packed) {
    uint64_t tp = 0;
    return tier_ != nullptr && tier_->Get(key, &tp) && tp != packed;
  };
  log::LogCleaner::Options opts;
  opts.policy = options_.gc_policy;
  opts.live_ratio = options_.gc_live_ratio;
  opts.free_chunk_watermark = options_.gc_free_chunk_watermark;
  opts.quantum_bytes = options_.gc_quantum_bytes;
  opts.max_victims = options_.gc_max_victims;
  opts.segregate = options_.gc_segregate;
  opts.cold_age = options_.gc_cold_age;
  // With the tier on, cold-lane survivors stop bouncing between cleaner
  // chunks — the tiering pass is their exit (DESIGN.md §11).
  opts.exclude_cold_from_victims = options_.tier_enabled;
  for (int first = 0; first < options_.num_cores;
       first += options_.group_size) {
    const int last = std::min(first + options_.group_size,
                              options_.num_cores);
    cleaners_.push_back(std::make_unique<log::LogCleaner>(
        raw, first, last, hooks, opts, alloc_.get()));
  }
}

void FlatStore::StartCleaners() {
  EnsureCleaners();
  for (auto& c : cleaners_) c->Start();
  cleaners_running_ = true;
}

size_t FlatStore::RunCleanersOnce() {
  EnsureCleaners();
  size_t freed = 0;
  for (auto& c : cleaners_) freed += c->RunOnce();
  return freed;
}

void FlatStore::SealActiveLogChunks() {
  for (auto& l : logs_) l->SealActiveChunk();
}

void FlatStore::StopCleaners() {
  for (auto& c : cleaners_) c->Stop();
  cleaners_running_ = false;
  // Run whatever frees the stopped cleaners left deferred, so shutdown /
  // checkpoint paths see a settled chunk population (a ReleaseChunk
  // running after a checkpoint would invalidate it).
  if (epochs_ != nullptr) epochs_->DrainDeferred();
}

// ---- ordered persistent tier (DESIGN.md §11) -------------------------------

std::vector<int> FlatStore::SocketCores() const {
  std::vector<int> sc(static_cast<size_t>(pool_->num_sockets()), 0);
  std::vector<bool> seen(sc.size(), false);
  for (int c = 0; c < options_.num_cores; c++) {
    const int s = alloc_->SocketForCore(c);
    if (s >= 0 && s < static_cast<int>(sc.size()) && !seen[s]) {
      sc[s] = c;
      seen[s] = true;
    }
  }
  return sc;
}

// Callers serialize: Create/Open before any threads, RunTieringOnce
// under tier_lock_.
void FlatStore::EnsureTier() {
  if (tier_ != nullptr) return;
  tier_ = tier::PersistentTier::Create(pool_, alloc_.get(),
                                       pool_->num_sockets(), SocketCores());
  FLATSTORE_CHECK(tier_ != nullptr) << "no PM space for the tier root";
  // Publish: Create fully persisted and fenced the root chunk, so this
  // 8-byte root-pointer store is the atomic commit of the tier's birth.
  log::Superblock* sb = root_->superblock();
  sb->tier_root_off = tier_->root_off();
  pool_->PersistFence(&sb->tier_root_off, 8);
}

size_t FlatStore::RunTieringOnce() {
  LockGuard<SpinLock> g(tier_lock_);
  EnsureTier();
  size_t converted = 0;
  for (int c = 0; c < options_.num_cores; c++) {
    const std::vector<log::OpLog::TierCandidate> cands =
        logs_[c]->PickTierCandidates(options_.tier_age,
                                     options_.tier_min_live_ratio,
                                     options_.tier_max_chunks);
    for (size_t i = 0; i < cands.size(); i++) {
      if (ConvertChunk(c, cands[i])) {
        converted++;
        continue;
      }
      // Arena growth failed (PM exhausted): release every unconverted
      // claim and stop — the pass retries once space frees up.
      for (size_t j = i; j < cands.size(); j++) {
        logs_[c]->UnclaimChunk(cands[j].chunk_off);
      }
      return converted;
    }
  }
  return converted;
}

bool FlatStore::ConvertChunk(int core,
                             const log::OpLog::TierCandidate& cand) {
  // Gather the chunk's live entries — including live tombstones — as
  // {key, current packed} pairs. Liveness is address equality with the
  // index (the cleaner's rule), so two entries can never tie on a key
  // and the sorted batch is duplicate-free.
  std::vector<tier::TierEntry> entries;
  {
    common::EpochManager::GuestGuard guard(epochs_.get());
    vt::Charge(vt::kEpochPinCost);
    const uint64_t committed =
        pool_
            ->PtrAt<log::LogChunkHeader>(cand.chunk_off +
                                         alloc::kChunkHeaderSize)
            ->used_final;
    log::ChainedChunkReader reader(pool_, cand.chunk_off, committed);
    log::DecodedEntry e;
    uint64_t off;
    while (reader.Next(&e, &off)) {
      if (e.op == log::OpType::kTxnCommit) continue;  // born dead
      const uint64_t packed = log::PackIndexValue(off, e.version);
      uint64_t cur = 0;
      if (!IndexForCore(CoreForKey(e.key))->Get(e.key, &cur) ||
          cur != packed) {
        continue;  // superseded
      }
      entries.push_back(
          {e.key, packed, alloc_->SocketForCore(CoreForKey(e.key))});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const tier::TierEntry& a, const tier::TierEntry& b) {
              return a.key < b.key;
            });
  if (!entries.empty() &&
      !tier_->InsertBatch(entries.data(), entries.size())) {
    return false;  // arena exhausted; published nodes are idempotent
  }
  // Conversion commit point: the persistent kChunkTiered flag flips the
  // chunk from "replayed" to "represented by the tier" in one fenced
  // 8-byte store. Before it, recovery still replays the chunk and the
  // freshly inserted tier nodes are harmless duplicates in the version
  // duel; after it, recovery loads the nodes instead.
  root_->SetChunkTiered(cand.registry_slot);
  // Advisory frontier: newest tiered sequence per core (diagnostics;
  // ground truth stays the per-chunk registry flags).
  log::Superblock* sb = root_->superblock();
  if (cand.seq > sb->tier_frontier_seq[core]) {
    sb->tier_frontier_seq[core] = cand.seq;
    pool_->PersistFence(&sb->tier_frontier_seq[core],
                        sizeof(sb->tier_frontier_seq[core]));
  }
  logs_[core]->DetachForTier(cand.chunk_off);
  // The batch's keys are now tier-discoverable: drop them from the
  // delta sets (racy against a concurrent re-dirtying write — benign,
  // see CoreState::delta).
  for (const tier::TierEntry& te : entries) {
    CoreState& cs = *cores_[CoreForKey(te.key)];
    LockGuard<SpinLock> dg(cs.delta_lock);
    cs.delta.erase(te.key);
  }
  chunks_tiered_++;
  return true;
}

// ---- shutdown / recovery ---------------------------------------------------

void FlatStore::WriteCheckpoint() {
  // Disarm any previous checkpoint before touching the fields it covers.
  // A crash mid-rewrite must fall back to full log replay — otherwise it
  // could pair the *old* checkpoint chain with the *new* ckpt_tail[] and
  // silently skip every acknowledged op between the two.
  log::Superblock* sb0 = root_->superblock();
  if (sb0->clean_shutdown != 0) {
    sb0->clean_shutdown = 0;
    pool_->PersistFence(&sb0->clean_shutdown, 4);
  }
  // Record the per-core log positions the checkpoint covers.
  for (int c = 0; c < options_.num_cores; c++) {
    sb0->ckpt_tail[c] = logs_[c]->tail();
    uint32_t seq = 0;
    int owner;
    if (sb0->ckpt_tail[c] != 0) {
      root_->ChunkInfo(AlignDown(sb0->ckpt_tail[c], alloc::kChunkSize),
                       &owner, &seq);
    }
    sb0->ckpt_seq[c] = seq;
  }
  pool_->Persist(sb0, sizeof(log::Superblock));
  pool_->Fence();

  // Gather every (key, packed) pair.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (const auto& idx : indexes_) {
    idx->ForEach(
        [&](uint64_t k, uint64_t v) { pairs.push_back({k, v}); });
  }
  log::Superblock* sb = root_->superblock();
  sb->checkpoint_items = pairs.size();
  uint64_t prev_field_off = pool_->OffsetOf(&sb->checkpoint_off);
  uint64_t* prev_field = &sb->checkpoint_off;
  *prev_field = 0;

  size_t i = 0;
  while (i < pairs.size()) {
    uint64_t chunk = alloc_->AllocRawChunk(0);
    FLATSTORE_CHECK_NE(chunk, 0u) << "no space for index checkpoint";
    auto* hdr = pool_->PtrAt<CheckpointHeader>(chunk +
                                               alloc::kChunkHeaderSize);
    hdr->next = 0;
    auto* data = reinterpret_cast<uint64_t*>(hdr + 1);
    uint64_t n = std::min<uint64_t>(kCheckpointPairs, pairs.size() - i);
    for (uint64_t j = 0; j < n; j++) {
      data[2 * j] = pairs[i + j].first;
      data[2 * j + 1] = pairs[i + j].second;
    }
    hdr->count = n;
    i += n;
    pool_->Persist(hdr, sizeof(CheckpointHeader) + n * 16);
    // Link from the previous chunk (or the superblock). One fence below
    // covers payload and link together rather than fencing the payload
    // first: the chain stays dead until CheckpointNow fences
    // clean_shutdown=1 after the full rewrite, so recovery never follows
    // a link whose payload is still in flight.
    // fs-lint: publish-ok(chain gated by clean_shutdown, fenced post-rewrite)
    // A torn chain is never dereferenced.
    *prev_field = chunk;
    pool_->Persist(pool_->At(prev_field_off), 8);
    pool_->Fence();
    prev_field = &hdr->next;
    prev_field_off = pool_->OffsetOf(prev_field);
  }
  pool_->PersistFence(&sb->checkpoint_items, 8);
}

void FlatStore::LoadCheckpoint() {
  log::Superblock* sb = root_->superblock();
  uint64_t chunk = sb->checkpoint_off;
  uint64_t loaded = 0;
  while (chunk != 0) {
    auto* hdr = pool_->PtrAt<CheckpointHeader>(chunk +
                                               alloc::kChunkHeaderSize);
    const auto* data = reinterpret_cast<const uint64_t*>(hdr + 1);
    for (uint64_t j = 0; j < hdr->count; j++) {
      const uint64_t key = data[2 * j];
      IndexForCore(CoreForKey(key))->Insert(key, data[2 * j + 1]);
      loaded++;
    }
    chunk = hdr->next;
  }
  FLATSTORE_CHECK_EQ(loaded, sb->checkpoint_items);
  // Consume the checkpoint: its chunks are *not* marked during recovery,
  // so they return to the free pool.
  sb->checkpoint_off = 0;
  sb->checkpoint_items = 0;
  pool_->PersistFence(&sb->checkpoint_off, 16);
}

void FlatStore::CheckpointNow() {
  // Pause cleaners: a chunk freed mid-checkpoint would leave the
  // checkpointed index pointing at recycled memory. Resume afterwards
  // only if background threads were actually running — RunCleanersOnce
  // instantiates cleaner objects without threads, and spawning threads
  // here would break callers relying on synchronous-only cleaning.
  const bool resume = cleaners_running_;
  StopCleaners();
  for (int c = 0; c < options_.num_cores; c++) {
    FLATSTORE_CHECK_EQ(Inflight(c), 0u) << "CheckpointNow with in-flight ops";
  }
  WriteCheckpoint();
  log::Superblock* sb = root_->superblock();
  sb->clean_shutdown = 1;
  pool_->PersistFence(&sb->clean_shutdown, 4);
  if (resume) StartCleaners();
}

void FlatStore::Shutdown() {
  StopCleaners();
  for (int c = 0; c < options_.num_cores; c++) {
    FLATSTORE_CHECK_EQ(Inflight(c), 0u) << "Shutdown with in-flight ops";
  }
  WriteCheckpoint();
  alloc_->PersistMetadata();  // paper: "flushes the bitmap of each chunk"
  log::Superblock* sb = root_->superblock();
  sb->clean_shutdown = 1;
  pool_->PersistFence(&sb->clean_shutdown, 4);
}

void FlatStore::Recover(bool rebuild_index) {
  recovery_stats_ = RecoveryStats{};
  // A crash inside RegisterChunk can leave provisional records whose
  // core/seq fields are garbage; free those slots before trusting the
  // registry (their chunks were empty — nothing committed points there).
  root_->ScrubProvisionalRecords();
  root_->RebuildMirror();
  alloc_->StartRecovery();

  // Phase 0: the ordered tier (DESIGN.md §11). Every tier node
  // duel-inserts into the index on ANY open — crash or clean. The
  // cleaner's tier_stale veto guarantees no stale node survives for an
  // erased key, and the version duel resolves both directions against
  // checkpoint pairs and suffix replay, so the duel is always safe and —
  // for chunks tiered after the last checkpoint — necessary.
  const auto tier_t0 = std::chrono::steady_clock::now();
  if (root_->superblock()->tier_root_off != 0 && tier_ == nullptr) {
    tier_ = tier::PersistentTier::Open(
        pool_, alloc_.get(), pool_->num_sockets(), SocketCores(),
        root_->superblock()->tier_root_off,
        [this](uint64_t key, uint64_t packed) {
          DuelInsert(IndexForCore(CoreForKey(key)), key, packed);
        });
    tier_->ForEachArenaChunk(
        [this](uint64_t off) { alloc_->MarkRawChunkAllocated(off); });
    recovery_stats_.tier_nodes_loaded = tier_->node_count();
  }
  recovery_stats_.tier_load_ns = ElapsedNs(tier_t0);

  // Enumerate registered log chunks grouped by owning core.
  struct Rec {
    uint64_t slot;
    uint64_t chunk;
    uint32_t seq;
    bool cleaner;  // persisted kChunkCleaner flag (relocation chunk)
  };
  std::vector<std::vector<Rec>> per_core(
      static_cast<size_t>(options_.num_cores));
  const log::ChunkRecord* regs = root_->registry();
  for (uint64_t s = 0; s < log::kRegistrySlots; s++) {
    if (regs[s].chunk_off == 0) continue;
    FLATSTORE_CHECK_LT(regs[s].core,
                       static_cast<uint32_t>(options_.num_cores));
    if ((regs[s].chunk_off & log::kChunkTiered) != 0) {
      // Tiered chunk: represented by the tier's nodes. Its memory stays
      // allocated forever (nodes alias its entry bytes) but it is
      // neither replayed nor usage-tracked — this skip is what makes
      // recovery track the live-key count instead of the log size.
      alloc_->MarkRawChunkAllocated(regs[s].chunk_off &
                                    ~log::kChunkFlagsMask);
      recovery_stats_.chunks_skipped_tiered++;
      continue;
    }
    per_core[regs[s].core].push_back(
        {s, regs[s].chunk_off & ~log::kChunkFlagsMask, regs[s].seq,
         (regs[s].chunk_off & log::kChunkCleaner) != 0});
    recovery_stats_.chunks_replayed++;
  }
  for (auto& v : per_core) {
    std::sort(v.begin(), v.end(),
              [](const Rec& a, const Rec& b) { return a.seq < b.seq; });
  }

  // Per-core tails and committed extents.
  std::vector<uint64_t> tails(per_core.size(), 0);
  std::vector<uint64_t> tail_seqs(per_core.size(), 0);
  for (size_t c = 0; c < per_core.size(); c++) {
    tails[c] = root_->ReadTail(static_cast<int>(c), &tail_seqs[c]);
  }
  auto committed_bytes = [&](int core, uint64_t chunk) -> uint64_t {
    if (tails[core] != 0 &&
        AlignDown(tails[core], alloc::kChunkSize) == chunk) {
      return tails[core] - (chunk + log::kLogDataOff);
    }
    return pool_
        ->PtrAt<log::LogChunkHeader>(chunk + alloc::kChunkHeaderSize)
        ->used_final;
  };

  // Pass 1: rebuild the volatile index, newest version wins. After a
  // clean open the checkpoint already provided the index as of the
  // recorded per-core positions — replay only the suffix beyond them
  // (delta replay; empty after a final shutdown).
  //
  // Replay runs with one host thread per core's log, as in the paper
  // ("the server cores need to rebuild the in-memory index ... by
  // scanning their OpLogs"). Entries route to the owning partition of
  // their *key* (stolen entries live in other cores' logs), so the
  // duelling-version upsert must be atomic: a CAS loop over Get +
  // CompareExchange/Upsert keeps the newest version under concurrency.
  const auto replay_t0 = std::chrono::steady_clock::now();
  {
    const log::Superblock* sb = root_->superblock();
    auto replay_core = [&](size_t c) {
      const uint64_t ckpt_tail = rebuild_index ? 0 : sb->ckpt_tail[c];
      const uint32_t ckpt_seq = rebuild_index ? 0 : sb->ckpt_seq[c];
      for (const Rec& r : per_core[c]) {
        if (!rebuild_index && ckpt_tail != 0 && r.seq < ckpt_seq) continue;
        // The chained reader enforces txn atomicity (§5.3): members of a
        // chain surface only behind a valid commit record; a torn or
        // aborted chain is dropped wholesale — it "never happened".
        // fs-lint: unpinned-read(recovery is offline; no cleaner runs yet)
        // No chunk can be retired during the scan.
        log::ChainedChunkReader reader(pool_, r.chunk,
                                       committed_bytes(static_cast<int>(c),
                                                       r.chunk));
        log::DecodedEntry e;
        uint64_t off;
        while (reader.Next(&e, &off)) {
          if (e.op == log::OpType::kTxnCommit) continue;  // no index entry
          if (!rebuild_index && ckpt_tail != 0 && r.seq == ckpt_seq &&
              off < ckpt_tail) {
            continue;  // covered by the checkpoint
          }
          DuelInsert(IndexForCore(CoreForKey(e.key)),
                     e.key, log::PackIndexValue(off, e.version));
        }
      }
    };
    if (per_core.size() > 1) {
      std::vector<std::thread> replayers;
      for (size_t c = 0; c < per_core.size(); c++) {
        replayers.emplace_back(replay_core, c);
      }
      for (auto& t : replayers) t.join();
    } else {
      replay_core(0);
    }
    // Tombstone index entries are retained on purpose: they keep per-key
    // versions monotonic across delete + re-put cycles.
  }
  recovery_stats_.replay_ns = ElapsedNs(replay_t0);

  const auto usage_t0 = std::chrono::steady_clock::now();
  // Tier-resident value blocks: pass 2 walks only un-tiered chunks, so
  // out-of-log blocks owned by current tier-resident entries are marked
  // here against the settled post-replay index. Stale nodes' blocks were
  // already freed at supersede time — marking them would leak.
  if (tier_ != nullptr) {
    tier_->ForEach([this](uint64_t key, uint64_t packed) {
      uint64_t cur = 0;
      if (!IndexForCore(CoreForKey(key))->Get(key, &cur) || cur != packed) {
        return;
      }
      log::DecodedEntry e;
      // fs-lint: unpinned-read(recovery is offline; no cleaner runs yet)
      // No chunk can be retired during the walk.
      if (log::DecodeEntry(static_cast<const uint8_t*>(
                               pool_->At(log::UnpackOffset(packed))),
                           log::kMaxEntrySize, &e) &&
          e.op == log::OpType::kPut && !e.embedded) {
        alloc_->MarkBlockAllocated(e.ptr);
      }
    });
  }

  // Pass 2: chunk usage and allocator bitmaps — per-core independent, so
  // it parallelizes like pass 1 (allocator marking is chunk-locked).
  auto pass2_core = [&](size_t c) {
    std::map<uint64_t, log::ChunkUsage> usage;
    for (const Rec& r : per_core[c]) {
      const uint64_t committed = committed_bytes(static_cast<int>(c), r.chunk);
      const bool is_tail_chunk =
          tails[c] != 0 &&
          AlignDown(tails[c], alloc::kChunkSize) == r.chunk;
      log::ChunkUsage u;
      u.seq = r.seq;
      u.sealed = !is_tail_chunk;
      u.cleaner = r.cleaner;
      u.registry_slot = r.slot;

      // Chain-aware, as in pass 1: orphaned members never surface, so
      // their bytes count as neither total nor live (they are garbage the
      // cleaner will collect with the chunk).
      // fs-lint: unpinned-read(recovery is offline; no cleaner runs yet)
      // No chunk can be retired during the scan.
      log::ChainedChunkReader reader(pool_, r.chunk, committed);
      log::DecodedEntry e;
      uint64_t off;
      while (reader.Next(&e, &off)) {
        u.total++;
        u.total_bytes += e.entry_len;
        if (e.op == log::OpType::kTxnCommit) {
          // Commit records are born dead (never indexed) but counted in
          // the totals, matching the serving path's immediate NoteDead.
          continue;
        }
        uint64_t cur = 0;
        const bool live =
            IndexForCore(CoreForKey(e.key))->Get(e.key, &cur) &&
            cur == log::PackIndexValue(off, e.version);
        if (live && e.op == log::OpType::kPut && !e.embedded) {
          alloc_->MarkBlockAllocated(e.ptr);
        }
        if (e.op == log::OpType::kDelete) {
          u.tombs++;
          u.max_covered_seq =
              std::max(u.max_covered_seq, static_cast<uint32_t>(e.ptr));
        }
        if (live) {
          u.live++;
          u.live_bytes += e.entry_len;
          if (TierActive()) {
            // Rebuild the delta set: this key's current entry is in an
            // un-tiered chunk, so ScanMerged must learn it from here.
            CoreState& dcs = *cores_[CoreForKey(e.key)];
            LockGuard<SpinLock> dg(dcs.delta_lock);
            dcs.delta.insert(e.key);
          }
        }
      }

      if (u.total == 0 && !is_tail_chunk) {
        // Pre-registered but never written (crash at rollover): reclaim.
        root_->UnregisterChunk(r.slot);
        continue;
      }
      alloc_->MarkRawChunkAllocated(r.chunk);
      usage[r.chunk] = u;
    }
    logs_[c]->AdoptRecoveredState(tails[c], tail_seqs[c], std::move(usage));
  };
  if (per_core.size() > 1) {
    std::vector<std::thread> workers;
    for (size_t c = 0; c < per_core.size(); c++) {
      workers.emplace_back(pass2_core, c);
    }
    for (auto& t : workers) t.join();
  } else {
    pass2_core(0);
  }
  alloc_->FinishRecovery();
  recovery_stats_.usage_ns = ElapsedNs(usage_t0);
}

}  // namespace core
}  // namespace flatstore
