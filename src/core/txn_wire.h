// Wire codec for the FlatRPC transaction op (§5.3).
//
// A kTxn request packs its operations into Request::value:
//
//   u8 count
//   per op:
//     u8  kind   (0 = put, 1 = delete, 2 = cas)
//     u8  flags  (bit 0: the CAS expects the key absent)
//     u64 key    (little-endian)
//     put/cas:                    u32 len          + len value bytes
//     cas with expected present:  u32 expected_len + expected bytes
//
// kRmw has no wire form (callbacks cannot be serialized); clients run
// read-modify-write as a Get followed by a CAS txn.
//
// Decoded TxnOps point INTO the wire buffer — they stay valid only while
// the message buffer does. FlatStore::BeginTxn copies every member byte
// into its chain before returning, so submitting straight off the ring
// is safe.

#ifndef FLATSTORE_CORE_TXN_WIRE_H_
#define FLATSTORE_CORE_TXN_WIRE_H_

#include <cstdint>
#include <cstring>

#include "core/flatstore.h"

namespace flatstore {
namespace core {

namespace txn_wire_internal {

inline bool PutBytes(uint8_t* buf, uint32_t cap, uint32_t* pos,
                     const void* src, uint32_t n) {
  if (static_cast<uint64_t>(*pos) + n > cap) return false;
  std::memcpy(buf + *pos, src, n);
  *pos += n;
  return true;
}

}  // namespace txn_wire_internal

// Encodes `ops` into `buf` (capacity `cap`). Returns the encoded length,
// or 0 when the ops do not fit or an op has no wire form (kRmw).
inline uint32_t EncodeTxnOps(uint8_t* buf, uint32_t cap, const TxnOp* ops,
                             size_t n) {
  if (n > 255 || cap < 1) return 0;
  uint32_t pos = 0;
  buf[pos++] = static_cast<uint8_t>(n);
  for (size_t i = 0; i < n; i++) {
    const TxnOp& op = ops[i];
    uint8_t kind;
    switch (op.kind) {
      case TxnOpKind::kPut:
        kind = 0;
        break;
      case TxnOpKind::kDelete:
        kind = 1;
        break;
      case TxnOpKind::kCas:
        kind = 2;
        break;
      default:
        return 0;  // kRmw: no wire form
    }
    const bool expect_absent =
        op.kind == TxnOpKind::kCas && op.expected == nullptr;
    uint8_t hdr[10];
    hdr[0] = kind;
    hdr[1] = expect_absent ? 1 : 0;
    std::memcpy(hdr + 2, &op.key, 8);
    if (!txn_wire_internal::PutBytes(buf, cap, &pos, hdr, 10)) return 0;
    if (op.kind != TxnOpKind::kDelete) {
      if (!txn_wire_internal::PutBytes(buf, cap, &pos, &op.len, 4)) return 0;
      if (!txn_wire_internal::PutBytes(buf, cap, &pos, op.value, op.len)) {
        return 0;
      }
    }
    if (op.kind == TxnOpKind::kCas && !expect_absent) {
      if (!txn_wire_internal::PutBytes(buf, cap, &pos, &op.expected_len, 4)) {
        return 0;
      }
      if (!txn_wire_internal::PutBytes(buf, cap, &pos, op.expected,
                                       op.expected_len)) {
        return 0;
      }
    }
  }
  return pos;
}

// Decodes a wire txn of `len` bytes into `ops` (at most `cap` of them);
// `*n` receives the op count. Value/expected pointers alias `buf`.
// Returns false on any malformed, truncated, or overlong input.
inline bool DecodeTxnOps(const uint8_t* buf, uint32_t len, TxnOp* ops,
                         size_t cap, size_t* n) {
  if (len < 1) return false;
  uint32_t pos = 0;
  const size_t count = buf[pos++];
  if (count > cap) return false;
  for (size_t i = 0; i < count; i++) {
    if (static_cast<uint64_t>(pos) + 10 > len) return false;
    TxnOp& op = ops[i];
    op = TxnOp{};
    const uint8_t kind = buf[pos];
    const uint8_t flags = buf[pos + 1];
    std::memcpy(&op.key, buf + pos + 2, 8);
    pos += 10;
    switch (kind) {
      case 0:
        op.kind = TxnOpKind::kPut;
        break;
      case 1:
        op.kind = TxnOpKind::kDelete;
        break;
      case 2:
        op.kind = TxnOpKind::kCas;
        break;
      default:
        return false;
    }
    if (op.kind != TxnOpKind::kDelete) {
      if (static_cast<uint64_t>(pos) + 4 > len) return false;
      std::memcpy(&op.len, buf + pos, 4);
      pos += 4;
      if (op.len == 0 || static_cast<uint64_t>(pos) + op.len > len) {
        return false;
      }
      op.value = buf + pos;
      pos += op.len;
    }
    if (op.kind == TxnOpKind::kCas && (flags & 1) == 0) {
      if (static_cast<uint64_t>(pos) + 4 > len) return false;
      std::memcpy(&op.expected_len, buf + pos, 4);
      pos += 4;
      if (static_cast<uint64_t>(pos) + op.expected_len > len) return false;
      op.expected = buf + pos;
      pos += op.expected_len;
    }
  }
  *n = count;
  return pos == len;
}

}  // namespace core
}  // namespace flatstore

#endif  // FLATSTORE_CORE_TXN_WIRE_H_
