#include "core/fsck.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "alloc/lazy_allocator.h"
#include "log/layout.h"
#include "log/log_reader.h"
#include "tier/tier.h"

namespace flatstore {
namespace core {

namespace {

// Mirrors the private checkpoint layout in flatstore.cc.
struct CheckpointHeader {
  uint64_t next;
  uint64_t count;
};

struct Checker {
  const pm::PmPool& pool;
  FsckReport report;

  void Fatal(std::string what) {
    report.ok = false;
    report.issues.push_back({true, std::move(what)});
  }
  void Warn(std::string what) {
    report.issues.push_back({false, std::move(what)});
  }
};

}  // namespace

std::string FsckReport::Summary() const {
  std::ostringstream out;
  out << (ok ? "OK" : "CORRUPT") << ": " << log_chunks << " log chunks, "
      << log_entries << " entries (" << tombstones << " tombstones), "
      << live_keys << " live keys, " << value_blocks << " value blocks, "
      << txn_commits << " txn commits, " << orphan_chains
      << " orphan chains, " << checkpoint_items << " checkpointed pairs, "
      << tiered_chunks << " tiered chunks, " << tier_nodes
      << " tier nodes in " << tier_arena_chunks << " arena chunks";
  int fatals = 0, warns = 0;
  for (const FsckIssue& i : issues) (i.fatal ? fatals : warns)++;
  out << "; " << fatals << " errors, " << warns << " warnings";
  return out.str();
}

FsckReport FsckPool(const pm::PmPool& pool) {
  Checker c{pool, {}};
  auto* mutable_pool = const_cast<pm::PmPool*>(&pool);

  // --- superblock ---
  const auto* sb = mutable_pool->PtrAt<log::Superblock>(0);
  if (sb->magic != log::kSuperblockMagic) {
    c.Fatal("superblock magic mismatch (pool not formatted?)");
    return c.report;
  }
  if (sb->num_cores == 0 || sb->num_cores > log::kMaxCores) {
    c.Fatal("superblock num_cores out of range: " +
            std::to_string(sb->num_cores));
    return c.report;
  }
  if (sb->pool_size != pool.size()) {
    c.Warn("superblock pool_size " + std::to_string(sb->pool_size) +
           " != actual " + std::to_string(pool.size()));
  }
  const int cores = static_cast<int>(sb->num_cores);

  // --- tail records ---
  log::RootArea root(mutable_pool);
  std::vector<uint64_t> tails(static_cast<size_t>(cores));
  for (int core = 0; core < cores; core++) {
    // Slots that fail their check word are torn-write artifacts: benign
    // (ReadTail skips them and falls back to the previous record), but
    // worth surfacing.
    const log::CoreTailArea* area = root.tails(core);
    for (int s = 0; s < log::kTailSlots; s++) {
      const log::TailSlot& slot = area->lines[s].slot;
      if ((slot.seq != 0 || slot.tail != 0 || slot.check != 0) &&
          slot.check != log::TailCheck(slot.seq, slot.tail)) {
        c.Warn("core " + std::to_string(core) + " tail slot " +
               std::to_string(s) + " fails its check word (torn write)");
      }
    }
    uint64_t seq;
    tails[core] = root.ReadTail(core, &seq);
    if (tails[core] != 0 && tails[core] >= pool.size()) {
      c.Fatal("core " + std::to_string(core) + " tail beyond pool: " +
              std::to_string(tails[core]));
      tails[core] = 0;
    }
  }

  // --- chunk registry ---
  struct ChunkRec {
    uint64_t off;
    int core;
    uint32_t seq;
    bool cleaner;  // persisted kChunkCleaner flag (relocation chunk)
    bool tiered;   // persisted kChunkTiered flag (tier-converted chunk)
  };
  std::vector<ChunkRec> chunks;
  std::set<uint64_t> chunk_offs;
  std::map<uint64_t, bool> cleaner_chunks;  // chunk off -> cleaner flag
  const log::ChunkRecord* regs = root.registry();
  for (uint64_t s = 0; s < log::kRegistrySlots; s++) {
    if (regs[s].chunk_off == 0) continue;
    if (regs[s].chunk_off & log::kChunkProvisional) {
      // Crash mid-RegisterChunk: the slot was claimed but never committed
      // (its core/seq may be garbage). Recovery scrubs these on open.
      c.Warn("registry slot " + std::to_string(s) +
             " is provisional (crash during chunk registration)");
      continue;
    }
    const uint64_t off = regs[s].chunk_off & ~log::kChunkFlagsMask;
    const bool cleaner = (regs[s].chunk_off & log::kChunkCleaner) != 0;
    const bool tiered = (regs[s].chunk_off & log::kChunkTiered) != 0;
    if (off % alloc::kChunkSize != 0 || off == 0 ||
        off + alloc::kChunkSize > pool.size()) {
      c.Fatal("registry slot " + std::to_string(s) +
              ": bad chunk offset " + std::to_string(off));
      continue;
    }
    if (regs[s].core >= sb->num_cores) {
      c.Fatal("registry slot " + std::to_string(s) + ": bad core " +
              std::to_string(regs[s].core));
      continue;
    }
    if (!chunk_offs.insert(off).second) {
      c.Fatal("chunk " + std::to_string(off) + " registered twice");
      continue;
    }
    const auto* ch = mutable_pool->PtrAt<alloc::ChunkHeader>(off);
    if (ch->magic != alloc::kChunkMagic) {
      c.Fatal("registered chunk " + std::to_string(off) +
              " has no allocator magic");
      continue;
    }
    if (ch->size_class != 0) {
      c.Warn("registered log chunk " + std::to_string(off) +
             " carries a value size class");
    }
    chunks.push_back(
        {off, static_cast<int>(regs[s].core), regs[s].seq, cleaner, tiered});
    cleaner_chunks[off] = cleaner;
    if (tiered) c.report.tiered_chunks++;
  }
  c.report.log_chunks = chunks.size();

  // Per-core: sequences must be unique.
  {
    std::map<int, std::set<uint32_t>> seqs;
    for (const ChunkRec& r : chunks) {
      if (!seqs[r.core].insert(r.seq).second) {
        c.Fatal("core " + std::to_string(r.core) + " has two chunks with seq " +
                std::to_string(r.seq));
      }
    }
  }

  // Tail containment.
  for (int core = 0; core < cores; core++) {
    if (tails[core] == 0) continue;
    const uint64_t tail_chunk = AlignDown(tails[core], alloc::kChunkSize);
    bool found = false;
    for (const ChunkRec& r : chunks) {
      if (r.off == tail_chunk) {
        found = true;
        if (r.core != core) {
          c.Fatal("core " + std::to_string(core) +
                  " tail lies in a chunk registered to core " +
                  std::to_string(r.core));
        }
      }
    }
    if (!found) {
      c.Fatal("core " + std::to_string(core) +
              " tail points into an unregistered chunk");
    }
  }

  // --- walk every chunk; dry-run replay ---
  struct Winner {
    uint64_t off;
    uint32_t version;
    bool tombstone;
    uint64_t ptr;  // 0 for inline
  };
  std::unordered_map<uint64_t, Winner> replay;
  auto version_newer = [](uint32_t a, uint32_t b) {
    const uint32_t d = (a - b) & log::kVersionMask;
    return d != 0 && d < (1u << (log::kVersionBits - 1));
  };

  for (const ChunkRec& r : chunks) {
    if (r.tiered) {
      // Tier-converted chunk: recovery never replays it — the tier's
      // nodes represent its live entries (validated in the tier walk
      // below), and its dead bytes are permanent. Keep it out of the
      // dry-run replay so fsck's winner map matches what recovery builds.
      continue;
    }
    const auto* hdr = mutable_pool->PtrAt<log::LogChunkHeader>(
        r.off + alloc::kChunkHeaderSize);
    uint64_t committed = hdr->used_final;
    const uint64_t tail = tails[r.core];
    if (tail != 0 && AlignDown(tail, alloc::kChunkSize) == r.off) {
      committed = tail - (r.off + log::kLogDataOff);
    }
    if (committed > log::kLogDataBytes) {
      c.Fatal("chunk " + std::to_string(r.off) + " committed length " +
              std::to_string(committed) + " exceeds capacity");
      continue;
    }
    // Chain-aware walk (§5.3): txn members surface only behind a valid
    // commit record, exactly as recovery will replay them; chains without
    // one are counted and warned about below.
    // fs-lint: unpinned-read(offline pool; no serving thread or cleaner runs)
    // Nothing can retire the chunk mid-walk.
    log::ChainedChunkReader reader(mutable_pool, r.off, committed);
    log::DecodedEntry e;
    uint64_t off;
    uint64_t entries_here = 0;
    while (reader.Next(&e, &off)) {
      entries_here++;
      c.report.log_entries++;
      if (e.op == log::OpType::kTxnCommit) {
        // Commit records never join the replay map (their Key field is a
        // checksum, not a key).
        c.report.txn_commits++;
        continue;
      }
      if (e.op == log::OpType::kDelete) c.report.tombstones++;
      if (e.op == log::OpType::kPut && !e.embedded) {
        if (e.ptr == 0 || e.ptr + 8 > pool.size()) {
          c.Fatal("entry at " + std::to_string(off) +
                  " has out-of-pool value ptr " + std::to_string(e.ptr));
          continue;
        }
      }
      auto it = replay.find(e.key);
      if (it == replay.end() ||
          version_newer(e.version, it->second.version)) {
        replay[e.key] = {off, e.version, e.op == log::OpType::kDelete,
                         e.embedded ? 0 : e.ptr};
      } else if (it->second.version == e.version &&
                 it->second.off != off) {
        // Half-relocated-victim rule: a crash between a relocation
        // sub-batch's used_final commit and the victim's retirement
        // legally leaves the same version at two offsets — but only as
        // byte-identical copies, at least one of which sits in a chunk
        // carrying the persistent cleaner flag. Replay is idempotent
        // over such pairs (same key, version, and value).
        const auto* a =
            static_cast<const uint8_t*>(mutable_pool->At(it->second.off));
        const auto* b = static_cast<const uint8_t*>(mutable_pool->At(off));
        if (!std::equal(b, b + e.entry_len, a)) {
          c.Fatal("key " + std::to_string(e.key) +
                  ": two different entries share version " +
                  std::to_string(e.version));
        } else {
          const uint64_t other_chunk =
              AlignDown(it->second.off, alloc::kChunkSize);
          const bool other_cleaner = cleaner_chunks.count(other_chunk) != 0 &&
                                     cleaner_chunks[other_chunk];
          if (!r.cleaner && !other_cleaner) {
            c.Warn("key " + std::to_string(e.key) + " version " +
                   std::to_string(e.version) +
                   " duplicated outside any cleaner-flagged chunk");
          }
        }
      }
    }
    if (reader.position() < committed &&
        reader.position() + kCachelineSize <= committed) {
      c.Warn("chunk " + std::to_string(r.off) + " scan stopped " +
             std::to_string(committed - reader.position()) +
             " bytes before its committed length");
    }
    if (reader.orphan_chains() > 0) {
      // Benign (recovery drops them: a torn or aborted txn "never
      // happened") but worth surfacing — it marks how close a crash came
      // to the commit point.
      c.Warn("chunk " + std::to_string(r.off) + " has " +
             std::to_string(reader.orphan_chains()) +
             " txn chain(s) without a valid commit record (" +
             std::to_string(reader.dropped_entries()) +
             " entries dropped as never-committed)");
      c.report.orphan_chains += reader.orphan_chains();
      c.report.orphan_entries += reader.dropped_entries();
    }
    (void)entries_here;
  }

  // --- ordered tier (DESIGN.md §11) ---
  if (sb->tier_root_off != 0) {
    const uint64_t troot = sb->tier_root_off;
    bool tier_ok = true;
    std::set<uint64_t> arena;
    if (troot % alloc::kChunkSize != 0 ||
        troot + alloc::kChunkSize > pool.size()) {
      c.Fatal("tier root offset out of range: " + std::to_string(troot));
      tier_ok = false;
    }
    const auto* troot_hdr = tier_ok
                                ? mutable_pool->PtrAt<tier::TierRoot>(
                                      troot + alloc::kChunkHeaderSize +
                                      sizeof(tier::ArenaHeader))
                                : nullptr;
    if (tier_ok && troot_hdr->magic != tier::kTierMagic) {
      c.Fatal("tier root magic mismatch at " + std::to_string(troot));
      tier_ok = false;
    }
    // Arena chain: in bounds, acyclic, disjoint from the log registry.
    uint64_t chunk = tier_ok ? troot : 0;
    while (chunk != 0) {
      if (chunk % alloc::kChunkSize != 0 ||
          chunk + alloc::kChunkSize > pool.size() ||
          !arena.insert(chunk).second) {
        c.Fatal("tier arena chain broken at " + std::to_string(chunk));
        tier_ok = false;
        break;
      }
      if (chunk_offs.count(chunk) != 0) {
        c.Fatal("tier arena chunk " + std::to_string(chunk) +
                " is also a registered log chunk");
      }
      const auto* ah = mutable_pool->PtrAt<tier::ArenaHeader>(
          chunk + alloc::kChunkHeaderSize);
      if (ah->used >
          alloc::kChunkSize - alloc::kChunkHeaderSize -
              sizeof(tier::ArenaHeader)) {
        c.Fatal("tier arena chunk " + std::to_string(chunk) +
                " used mark beyond capacity");
        tier_ok = false;
        break;
      }
      chunk = ah->next;
    }
    c.report.tier_arena_chunks = arena.size();
    // L0 walk: strictly ascending keys (which also proves acyclicity);
    // every node's packed word decodes to a valid log entry. Nodes join
    // the replay map through the same version duel recovery runs — a
    // stale node (superseded after its chunk tiered) simply loses to the
    // newer un-tiered entry.
    uint64_t node_off = tier_ok ? troot_hdr->head0 : 0;
    uint64_t prev_key = 0;
    bool first = true;
    while (node_off != 0) {
      if (arena.count(AlignDown(node_off, alloc::kChunkSize)) == 0) {
        c.Fatal("tier node at " + std::to_string(node_off) +
                " lies outside the arena chain");
        break;
      }
      const auto* n = mutable_pool->PtrAt<tier::TierNode>(node_off);
      if (n->height < 1 || n->height > tier::kMaxHeight) {
        c.Fatal("tier node at " + std::to_string(node_off) +
                " has bad height " + std::to_string(n->height));
        break;
      }
      if (!first && n->key <= prev_key) {
        c.Fatal("tier L0 keys not strictly ascending at node " +
                std::to_string(node_off));
        break;
      }
      const uint64_t eoff = log::UnpackOffset(n->packed);
      const uint32_t ever = log::UnpackVersion(n->packed);
      log::DecodedEntry e;
      // fs-lint: unpinned-read(offline pool; no serving thread or cleaner)
      if (eoff == 0 || eoff >= pool.size() ||
          !log::DecodeEntry(
              static_cast<const uint8_t*>(mutable_pool->At(eoff)),
              log::kMaxEntrySize, &e) ||
          e.key != n->key) {
        c.Fatal("tier node for key " + std::to_string(n->key) +
                " points at an invalid entry (off " + std::to_string(eoff) +
                ")");
      } else {
        auto it = replay.find(e.key);
        if (it == replay.end() || version_newer(ever, it->second.version)) {
          replay[e.key] = {eoff, ever, e.op == log::OpType::kDelete,
                           e.embedded || e.op == log::OpType::kDelete
                               ? 0
                               : e.ptr};
        } else if (it->second.version == ever && it->second.off != eoff) {
          // Same key + version at two offsets: legal only as
          // byte-identical copies (the half-relocated-victim rule; the
          // tier aliases the cleaner's cold-lane copies).
          const auto* a = static_cast<const uint8_t*>(
              mutable_pool->At(it->second.off));
          const auto* b =
              static_cast<const uint8_t*>(mutable_pool->At(eoff));
          if (!std::equal(b, b + e.entry_len, a)) {
            c.Fatal("key " + std::to_string(e.key) +
                    ": tier node and log entry share version " +
                    std::to_string(ever) + " with different bytes");
          }
        }
      }
      c.report.tier_nodes++;
      prev_key = n->key;
      first = false;
      node_off = n->next[0];
    }
  }

  // Winning value blocks: bounds + overlap.
  std::map<uint64_t, uint64_t> blocks;  // off -> len
  for (const auto& [key, w] : replay) {
    if (w.tombstone) continue;
    c.report.live_keys++;
    if (w.ptr == 0) continue;
    c.report.value_blocks++;
    uint64_t len;
    std::memcpy(&len, mutable_pool->At(w.ptr), 8);
    if (len > alloc::kChunkSize) {
      c.Fatal("value block at " + std::to_string(w.ptr) +
              " claims absurd length " + std::to_string(len));
      continue;
    }
    auto [it, fresh] = blocks.emplace(w.ptr, len + 8);
    if (!fresh) {
      c.Fatal("two live keys share value block " + std::to_string(w.ptr));
    }
  }
  uint64_t prev_end = 0;
  for (const auto& [off, len] : blocks) {
    if (off < prev_end) {
      c.Fatal("value blocks overlap at " + std::to_string(off));
    }
    prev_end = off + len;
  }

  // --- checkpoint chain ---
  if (sb->clean_shutdown != 0) {
    uint64_t chunk = sb->checkpoint_off;
    uint64_t items = 0;
    std::set<uint64_t> seen;
    while (chunk != 0) {
      if (chunk % alloc::kChunkSize != 0 ||
          chunk + alloc::kChunkSize > pool.size() ||
          !seen.insert(chunk).second) {
        c.Fatal("checkpoint chain broken at " + std::to_string(chunk));
        break;
      }
      const auto* hdr = mutable_pool->PtrAt<CheckpointHeader>(
          chunk + alloc::kChunkHeaderSize);
      items += hdr->count;
      chunk = hdr->next;
    }
    if (chunk == 0 && items != sb->checkpoint_items) {
      c.Fatal("checkpoint pair count " + std::to_string(items) +
              " != superblock " + std::to_string(sb->checkpoint_items));
    }
    c.report.checkpoint_items = items;
  }

  return c.report;
}

}  // namespace core
}  // namespace flatstore
