// Offline consistency checker for a FlatStore pool ("fsck").
//
// Walks the persistent structures without mutating them and
// cross-validates the invariants recovery depends on:
//
//   * superblock sanity (magic, core count, pool size);
//   * chunk registry: every record points at a chunk inside the allocator
//     region, owned by a valid core, with a monotone per-core sequence;
//   * every registered log chunk decodes cleanly up to its committed
//     length (used_final / tail), with no entry straddling the chunk end;
//   * tail records: rotating slots are internally consistent and the
//     winning tail lies inside a registered chunk of the right core;
//   * a dry-run replay: per-key version monotonicity is achievable (no
//     two entries of one key carry the same version at different
//     offsets unless byte-identical — the cleaner-duplicate case);
//   * transaction chains (§5.3): the walk uses the chain-aware reader,
//     so members only join the replay behind a valid commit record;
//     chains without one (torn or aborted transactions) are surfaced as
//     warnings — recovery legally drops them, but they flag how close a
//     crash came to the commit point;
//   * value blocks referenced by winning ptr-based entries lie inside
//     formatted chunks of a plausible size class and do not overlap;
//   * checkpoint chain (if armed): chunks readable, pair counts match;
//   * ordered tier (DESIGN.md §11, if rooted): the arena chain is
//     acyclic, in bounds, and disjoint from the log registry; the L0
//     list carries strictly ascending keys; every node's packed word
//     decodes to a valid log entry. Tier nodes join the dry-run replay
//     exactly as recovery duel-inserts them, while kChunkTiered chunks
//     sit out the entry walk (recovery skips them; the tier represents
//     their live entries).
//
// Used by examples/fsck.cpp and by tests to validate pools after crash
// and GC storms.

#ifndef FLATSTORE_CORE_FSCK_H_
#define FLATSTORE_CORE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pm/pm_pool.h"

namespace flatstore {
namespace core {

// One finding (error or warning).
struct FsckIssue {
  bool fatal;
  std::string what;
};

// Aggregate result of a check run.
struct FsckReport {
  bool ok = true;                 // no fatal issues
  std::vector<FsckIssue> issues;  // everything found
  // Statistics gathered while walking.
  uint64_t log_chunks = 0;
  uint64_t log_entries = 0;
  uint64_t tombstones = 0;
  uint64_t live_keys = 0;         // keys after dry-run replay
  uint64_t value_blocks = 0;      // winning out-of-log blocks
  uint64_t checkpoint_items = 0;
  uint64_t txn_commits = 0;       // valid transaction commit records
  uint64_t orphan_chains = 0;     // txn chains lacking a valid commit
  uint64_t orphan_entries = 0;    // entries dropped with those chains
  uint64_t tiered_chunks = 0;     // registered chunks with kChunkTiered
  uint64_t tier_arena_chunks = 0; // chunks in the tier's arena chain
  uint64_t tier_nodes = 0;        // nodes on the tier's L0 list

  // Human-readable summary.
  std::string Summary() const;
};

// Checks the pool. Read-only; safe on a quiesced store or a crash image.
FsckReport FsckPool(const pm::PmPool& pool);

}  // namespace core
}  // namespace flatstore

#endif  // FLATSTORE_CORE_FSCK_H_
