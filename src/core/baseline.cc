#include "core/baseline.h"

#include <cstring>

#include "common/hash.h"
#include "index/cceh.h"
#include "index/fast_fair.h"
#include "index/fptree.h"
#include "index/level_hashing.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace core {

namespace {
constexpr uint64_t kRoutingSeed = 0xC04E;  // same routing as FlatStore
}

const char* BaselineKindName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kCceh:
      return "CCEH";
    case BaselineKind::kLevelHashing:
      return "Level-Hashing";
    case BaselineKind::kFpTree:
      return "FPTree";
    case BaselineKind::kFastFair:
      return "FAST&FAIR";
  }
  return "?";
}

BaselineStore::BaselineStore(pm::PmPool* pool, const Options& options)
    : pool_(pool), options_(options) {
  FLATSTORE_CHECK_GE(options_.num_cores, 1);
  alloc_ = std::make_unique<alloc::LazyAllocator>(
      pool, alloc::kChunkSize, pool->size() - alloc::kChunkSize,
      options_.num_cores);
  switch (options_.kind) {
    case BaselineKind::kCceh:
      for (int c = 0; c < options_.num_cores; c++) {
        indexes_.push_back(std::make_unique<index::Cceh>(
            index::PmContext{pool_, alloc_.get(), c},
            options_.cceh_initial_depth));
      }
      break;
    case BaselineKind::kLevelHashing:
      for (int c = 0; c < options_.num_cores; c++) {
        indexes_.push_back(std::make_unique<index::LevelHashing>(
            index::PmContext{pool_, alloc_.get(), c},
            options_.level_initial_bits));
      }
      break;
    case BaselineKind::kFpTree:
      indexes_.push_back(std::make_unique<index::FpTree>(
          index::PmContext{pool_, alloc_.get(), 0}));
      break;
    case BaselineKind::kFastFair:
      indexes_.push_back(std::make_unique<index::FastFair>(
          index::PmContext{pool_, alloc_.get(), 0}));
      break;
  }
}

std::unique_ptr<BaselineStore> BaselineStore::Create(pm::PmPool* pool,
                                                     const Options& options) {
  return std::unique_ptr<BaselineStore>(new BaselineStore(pool, options));
}

int BaselineStore::CoreForKey(uint64_t key) const {
  return static_cast<int>(HashKey(key, kRoutingSeed) %
                          static_cast<uint64_t>(options_.num_cores));
}

index::KvIndex* BaselineStore::IndexForCore(int core) const {
  return sharded() ? indexes_[core].get() : indexes_[0].get();
}

void BaselineStore::PutOnCore(int core, uint64_t key, const void* value,
                              uint32_t len) {
  // ① store + persist the record out of index (v_len, value).
  uint64_t block = alloc_->Alloc(core, len + 8);
  FLATSTORE_CHECK_NE(block, 0u) << "PM exhausted";
  char* dst = static_cast<char*>(pool_->At(block));
  uint64_t len64 = len;
  std::memcpy(dst, &len64, 8);
  std::memcpy(dst + 8, value, len);
  vt::Charge(vt::CostMemcpy(len));
  pool_->Persist(dst, len + 8);
  pool_->Fence();

  // ③ update the persistent index (its own flushes happen inside).
  uint64_t old = 0;
  if (IndexForCore(core)->Upsert(key, block, &old)) {
    // Out-of-place update for crash consistency (§3.2); the old block is
    // freed after the insert completes.
    alloc_->Free(old);
  }
}

bool BaselineStore::GetOnCore(int core, uint64_t key,
                              std::string* value) const {
  uint64_t block;
  if (!IndexForCore(core)->Get(key, &block)) return false;
  const char* src = static_cast<const char*>(pool_->At(block));
  uint64_t len;
  std::memcpy(&len, src, 8);
  pool_->ChargeRead(src, len + 8);
  vt::Charge(vt::CostMemcpy(len));
  value->assign(src + 8, len);
  return true;
}

bool BaselineStore::DeleteOnCore(int core, uint64_t key) {
  uint64_t old = 0;
  if (!IndexForCore(core)->Erase(key, &old)) return false;
  alloc_->Free(old);
  return true;
}

uint64_t BaselineStore::Scan(
    uint64_t start_key, uint64_t count,
    std::vector<std::pair<uint64_t, std::string>>* out) const {
  auto* ordered = dynamic_cast<index::OrderedKvIndex*>(indexes_[0].get());
  FLATSTORE_CHECK(ordered != nullptr) << "Scan requires a tree baseline";
  std::vector<index::KvPair> pairs;
  ordered->Scan(start_key, count, &pairs);
  for (const auto& p : pairs) {
    const char* src = static_cast<const char*>(pool_->At(p.value));
    uint64_t len;
    std::memcpy(&len, src, 8);
    pool_->ChargeRead(src, len + 8);
    vt::Charge(vt::CostMemcpy(len));
    out->emplace_back(p.key, std::string(src + 8, len));
  }
  return pairs.size();
}

uint64_t BaselineStore::Size() const {
  uint64_t n = 0;
  for (const auto& idx : indexes_) n += idx->Size();
  return n;
}

}  // namespace core
}  // namespace flatstore
