// Multi-core server runtime + simulated clients.
//
// Reproduces the paper's experimental setup: clients post requests
// asynchronously over FlatRPC to key-hash-selected server cores
// ("default client batchsize is 8", §5); each server core runs a poll →
// process → g-persist → respond loop on its own virtual clock; the
// pipelined-HB follower path keeps polling new requests while waiting for
// leaders. Throughput is total completed operations over the maximum
// simulated core time; latency is measured at the (simulated) client.
//
// The runtime drives any engine through EngineAdapter, so FlatStore
// variants and the persistent-index baselines run under the *identical*
// request stream and network model — exactly what the paper's comparison
// requires.

#ifndef FLATSTORE_CORE_SERVER_H_
#define FLATSTORE_CORE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/baseline.h"
#include "core/flatstore.h"
#include "net/flatrpc.h"
#include "workload/workload.h"

namespace flatstore {
namespace core {

// Per-core asynchronous engine interface the server loop drives.
class EngineAdapter {
 public:
  enum class Submit {
    kPending,
    kDoneNow,
    kNotFound,
    kBusy,
    kBackpressure,
    kCasMismatch,   // txn only: a compare failed; nothing was applied
    kUnsupported,   // txn only: engine has no transaction support
  };

  virtual ~EngineAdapter() = default;

  virtual int num_cores() const = 0;
  virtual int CoreForKey(uint64_t key) const = 0;
  // Socket `core`'s serving thread is bound to; the runtime stamps each
  // core clock's socket from this, which is what makes remote-socket
  // surcharges bite. Default: everything on socket 0.
  virtual int SocketForCore(int core) const {
    (void)core;
    return 0;
  }
  virtual const char* Name() const = 0;

  // Submits a Put/Delete on `core`. kPending completions surface through
  // Drain with the same `tag`.
  virtual Submit SubmitPut(int core, uint64_t key, const void* value,
                           uint32_t len, uint64_t tag) = 0;
  virtual Submit SubmitDelete(int core, uint64_t key, uint64_t tag) = 0;

  // Immediate read.
  virtual bool Get(int core, uint64_t key, std::string* value) = 0;

  // Immediate range read: up to `count` live pairs with key >= start_key,
  // served on `core`. Returns false if the engine has no ordered access
  // path (the server answers kUnsupported); engines that do set *found.
  virtual bool Scan(int core, uint64_t start_key, uint64_t count,
                    uint64_t* found) {
    (void)core;
    (void)start_key;
    (void)count;
    (void)found;
    return false;
  }

  // True while a write on `key` is still in flight on `core` (a Get must
  // wait — the conflict queue).
  virtual bool KeyBusy(int core, uint64_t key) const {
    (void)core;
    (void)key;
    return false;
  }

  // Batched immediate read: fills results[i] for keys[i]; keys with an
  // in-flight write come back GetResult::kDeferred and must be retried
  // after a drain. Returns the number of keys served (non-deferred).
  // Default: per-key KeyBusy + Get — engines without a batched pipeline
  // stay correct (and measurably serial). Requires n <= kMaxReadBatch.
  virtual size_t MultiGet(int core, const uint64_t* keys, size_t n,
                          ReadResult* results) {
    size_t served = 0;
    for (size_t i = 0; i < n; i++) {
      results[i].value.clear();
      if (KeyBusy(core, keys[i])) {
        results[i].status = GetResult::kDeferred;
        continue;
      }
      results[i].status = Get(core, keys[i], &results[i].value)
                              ? GetResult::kFound
                              : GetResult::kAbsent;
      served++;
    }
    return served;
  }

  // One write of a batched submission (the tag plays the same role as in
  // SubmitPut/SubmitDelete).
  struct WriteReq {
    uint64_t key;
    const void* value;
    uint32_t len;
    bool tombstone;
    uint64_t tag;
  };

  // Batched write admission: fills `out[i]` with each op's Submit status.
  // Engines with a fused write pipeline override this to stage the whole
  // batch as one group (one log reservation, one fence pair); the default
  // degrades to per-op submission so every engine stays correct under the
  // batched server loop. Requires n <= kMaxWriteBatch. Returns the number
  // admitted as kPending.
  virtual size_t SubmitWriteBatch(int core, const WriteReq* reqs, size_t n,
                                  Submit* out) {
    size_t pending = 0;
    for (size_t i = 0; i < n; i++) {
      out[i] = reqs[i].tombstone
                   ? SubmitDelete(core, reqs[i].key, reqs[i].tag)
                   : SubmitPut(core, reqs[i].key, reqs[i].value,
                               reqs[i].len, reqs[i].tag);
      if (out[i] == Submit::kPending) pending++;
    }
    return pending;
  }

  // Submits an atomic multi-op transaction (§5.3) on `core`. A kPending
  // txn surfaces through Drain as ONE completion with this `tag` once the
  // whole chain is durable; kDoneNow means the txn committed with no
  // effect (all ops were no-ops). kCasMismatch / kBusy / kBackpressure
  // stage nothing. Engines without txn support return kUnsupported.
  virtual Submit SubmitTxn(int core, const TxnOp* ops, size_t n,
                           uint64_t tag) {
    (void)core;
    (void)ops;
    (void)n;
    (void)tag;
    return Submit::kUnsupported;
  }

  // One g-persist attempt (no-op for synchronous engines). Returns the
  // number of entries persisted by this call.
  virtual size_t Pump(int core) = 0;

  // A completed pending op: its tag and the simulated instant its persist
  // finished (responses must not precede it).
  struct Done {
    uint64_t tag;
    uint64_t done_time;
  };

  // Appends newly completed pending ops.
  virtual size_t Drain(int core, std::vector<Done>* done) = 0;
};

// Adapter over FlatStore's async protocol.
class FlatStoreAdapter final : public EngineAdapter {
 public:
  explicit FlatStoreAdapter(FlatStore* store) : store_(store) {}
  int num_cores() const override { return store_->options().num_cores; }
  int CoreForKey(uint64_t key) const override {
    return store_->CoreForKey(key);
  }
  int SocketForCore(int core) const override {
    return store_->SocketForCore(core);
  }
  const char* Name() const override {
    return IndexKindName(store_->options().index);
  }
  Submit SubmitPut(int core, uint64_t key, const void* value, uint32_t len,
                   uint64_t tag) override;
  Submit SubmitDelete(int core, uint64_t key, uint64_t tag) override;
  bool Get(int core, uint64_t key, std::string* value) override {
    return store_->GetOnCore(core, key, value);
  }
  bool Scan(int core, uint64_t start_key, uint64_t count,
            uint64_t* found) override;
  size_t MultiGet(int core, const uint64_t* keys, size_t n,
                  ReadResult* results) override {
    return store_->MultiGetOnCore(core, keys, n, results);
  }
  bool KeyBusy(int core, uint64_t key) const override {
    return store_->KeyBusy(core, key);
  }
  size_t SubmitWriteBatch(int core, const WriteReq* reqs, size_t n,
                          Submit* out) override;
  Submit SubmitTxn(int core, const TxnOp* ops, size_t n,
                   uint64_t tag) override;
  size_t Pump(int core) override { return store_->Pump(core); }
  size_t Drain(int core, std::vector<Done>* done) override;

 private:
  struct PendingTag {
    FlatStore::OpHandle handle;
    uint64_t tag;
  };
  // FIFO ring of in-flight tags per core. Population is bounded by the
  // HB request pool (Stage backpressures before overflow), so a fixed
  // ring replaces the old vector whose front-erase was O(n) per drain.
  struct TagRing {
    std::unique_ptr<PendingTag[]> slots{
        new PendingTag[batch::HbEngine::kPoolSlots]};
    size_t head = 0;
    size_t count = 0;

    void Push(const PendingTag& t) {
      FLATSTORE_DCHECK(count < batch::HbEngine::kPoolSlots);
      slots[(head + count) % batch::HbEngine::kPoolSlots] = t;
      count++;
    }
    const PendingTag& At(size_t i) const {
      FLATSTORE_DCHECK(i < count);
      return slots[(head + i) % batch::HbEngine::kPoolSlots];
    }
    void PopN(size_t n) {
      FLATSTORE_DCHECK(n <= count);
      head = (head + n) % batch::HbEngine::kPoolSlots;
      count -= n;
    }
  };
  FlatStore* store_;
  std::vector<TagRing> pending_ = std::vector<TagRing>(log::kMaxCores);
  // Per-core completion scratch, reused across Drain calls so the serving
  // loop stops heap-allocating a vector per drain (steady state: zero
  // allocations once each core's vector reached its high-water capacity).
  std::vector<std::vector<FlatStore::Completion>> completions_ =
      std::vector<std::vector<FlatStore::Completion>>(log::kMaxCores);
};

// Adapter over the synchronous baseline engines.
class BaselineAdapter final : public EngineAdapter {
 public:
  explicit BaselineAdapter(BaselineStore* store) : store_(store) {}
  int num_cores() const override { return store_->num_cores(); }
  int CoreForKey(uint64_t key) const override {
    return store_->CoreForKey(key);
  }
  const char* Name() const override { return store_->Name(); }
  Submit SubmitPut(int core, uint64_t key, const void* value, uint32_t len,
                   uint64_t tag) override {
    (void)tag;
    store_->PutOnCore(core, key, value, len);
    return Submit::kDoneNow;
  }
  Submit SubmitDelete(int core, uint64_t key, uint64_t tag) override {
    (void)tag;
    return store_->DeleteOnCore(core, key) ? Submit::kDoneNow
                                           : Submit::kNotFound;
  }
  bool Get(int core, uint64_t key, std::string* value) override {
    return store_->GetOnCore(core, key, value);
  }
  size_t Pump(int) override { return 0; }
  size_t Drain(int, std::vector<Done>*) override { return 0; }

 private:
  BaselineStore* store_;
};

// Benchmark-run configuration.
struct ServerConfig {
  int num_conns = 8;          // simulated client connections
  int client_threads = 2;     // host threads driving the connections
  int client_window = 8;      // async requests in flight per connection
  uint64_t ops_per_conn = 10000;
  // Gets polled by a core in one quantum are served as a single MultiGet
  // batch of (up to) this size; <= 1 selects the legacy per-request read
  // path. Clamped to kMaxReadBatch.
  int read_batch = 16;
  // Puts/Deletes polled by a core in one quantum are admitted as one
  // fused write batch of (up to) this size (EngineAdapter::
  // SubmitWriteBatch) and their responses are posted as one doorbell
  // chain; <= 1 selects the legacy per-request write path. Clamped to
  // kMaxWriteBatch.
  int write_batch = 16;
  // When > 0, every txn_every-th write a connection issues goes out as a
  // kTxn request instead: an atomic batch of txn_size puts on same-core
  // keys (scanned upward from the workload key; member values capped at
  // 128 B so the encoded txn fits the message buffer). 0 disables
  // transactions. Engines without txn support answer kUnsupported, which
  // the client counts as completed.
  int txn_every = 0;
  int txn_size = 4;
  workload::Config workload;
  bool all_to_all_qps = false;
  uint64_t seed = 1;
  // Open-loop arrival process (offered-load sweeps): each connection
  // draws exponential inter-arrival gaps so the fleet offers
  // `offered_mops` million ops/s in aggregate, independent of service
  // progress. Requests are stamped with their *scheduled* arrival
  // instant and latency is measured from it, so driving the server past
  // saturation shows up as unbounded queueing delay instead of silently
  // throttling the offered load (the closed-loop default's behaviour).
  // The client window still bounds in-flight requests per connection;
  // window-full time counts as queueing latency.
  bool open_loop = false;
  double offered_mops = 1.0;  // aggregate across all connections
};

// Aggregated result of one run.
struct ServerResult {
  uint64_t ops = 0;
  uint64_t sim_ns = 0;    // max simulated core time
  double mops = 0;        // ops / sim time
  Histogram latency;      // client-observed, simulated ns
  double avg_batch = 0;   // mean HB batch size (FlatStore engines only)
  std::vector<uint64_t> core_ns;  // per-core simulated time
};

// Runs the full client/server simulation until every connection finishes
// its quota; returns aggregate metrics.
ServerResult RunServer(EngineAdapter* engine, const ServerConfig& config);

// ---- scale-out (sharded) deployment ----

// A cluster run drives N independent engine instances (shards) — each
// with its own FlatRPC fabric and per-core loops — from one simulated
// client-node fleet. Clients route each key to a shard through a
// consistent-hash ring (net::ShardRouter) and then to a core via the
// shard's own CoreForKey; shards share nothing, so the deployment's
// crash/recovery story is per-shard.
struct ClusterConfig {
  // Per-shard serving knobs + the client fleet (num_conns = client
  // nodes, each connected to every shard).
  ServerConfig server;
  // Consistent-hash points per shard.
  int router_vnodes = 64;
};

struct ClusterResult {
  uint64_t ops = 0;
  uint64_t sim_ns = 0;  // max simulated core time across all shards
  double mops = 0;      // aggregate ops over max shard time
  Histogram latency;    // client-observed, all shards merged
  std::vector<ServerResult> shards;  // per-shard breakdown
};

// Runs `shards.size()` engines as one cluster until every connection
// finishes its quota. With one shard this is byte-for-byte RunServer
// (same request stream, same virtual-time results) — the single-shard
// path *is* the shared loop.
ClusterResult RunCluster(const std::vector<EngineAdapter*>& shards,
                         const ClusterConfig& config);

// Convenience: bulk-load `keys` sequential keys through the engine's
// synchronous path before a measured run (the paper preloads the key
// range). Values use the workload's sizing rule.
void Preload(EngineAdapter* engine, const workload::Config& workload,
             uint64_t keys);

}  // namespace core
}  // namespace flatstore

#endif  // FLATSTORE_CORE_SERVER_H_
