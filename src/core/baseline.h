// Baseline persistent-index KV engines (paper §5, Table 1).
//
// Each baseline is a persistent index (CCEH, Level-Hashing, FPTree or
// FAST&FAIR, in persistent mode with every structural update flushed)
// storing all KV records out-of-index through the same lazy-persist
// allocator FlatStore uses — exactly the paper's setup: "All the compared
// index schemes store the KV records with our proposed Lazy-persist
// allocator, while only storing a pointer in the index".
//
// Partitioning follows the paper: hash baselines get one instance per
// server core with internal locks removed (requests are routed by key
// hash), tree baselines share one instance across all cores (to keep
// range queries meaningful).
//
// A Put performs the three PM updates §2.2 describes: ① persist the
// record, ② allocator metadata (lazy here, as in the paper's setup),
// ③ the index's own flushes (slot writes, rehash/moves, shifts/splits) —
// which is precisely the write amplification FlatStore removes.

#ifndef FLATSTORE_CORE_BASELINE_H_
#define FLATSTORE_CORE_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "index/kv_index.h"
#include "log/layout.h"

namespace flatstore {
namespace core {

// Which persistent index backs the baseline.
enum class BaselineKind { kCceh, kLevelHashing, kFpTree, kFastFair };

const char* BaselineKindName(BaselineKind kind);

// A baseline engine instance.
class BaselineStore {
 public:
  struct Options {
    int num_cores = 4;
    BaselineKind kind = BaselineKind::kCceh;
    // Pre-sizing (the paper creates hash tables "with big enough size" and
    // measures before resizing).
    uint32_t cceh_initial_depth = 6;
    uint32_t level_initial_bits = 12;
  };

  // Builds the engine over `pool` (formats an allocator region; baselines
  // have no recovery story — the paper evaluates steady-state behaviour).
  static std::unique_ptr<BaselineStore> Create(pm::PmPool* pool,
                                               const Options& options);

  BaselineStore(const BaselineStore&) = delete;
  BaselineStore& operator=(const BaselineStore&) = delete;

  // Server core responsible for `key` (same routing as FlatStore).
  int CoreForKey(uint64_t key) const;

  // Synchronous per-core operations (the baselines have no batching; each
  // op persists before returning, as the original systems do).
  void PutOnCore(int core, uint64_t key, const void* value, uint32_t len);
  bool GetOnCore(int core, uint64_t key, std::string* value) const;
  bool DeleteOnCore(int core, uint64_t key);

  // Convenience single-threaded wrappers.
  void Put(uint64_t key, std::string_view value) {
    PutOnCore(CoreForKey(key), key, value.data(),
              static_cast<uint32_t>(value.size()));
  }
  bool Get(uint64_t key, std::string* value) const {
    return GetOnCore(CoreForKey(key), key, value);
  }
  bool Delete(uint64_t key) { return DeleteOnCore(CoreForKey(key), key); }

  // Ordered scan (tree baselines only).
  uint64_t Scan(uint64_t start_key, uint64_t count,
                std::vector<std::pair<uint64_t, std::string>>* out) const;

  uint64_t Size() const;
  int num_cores() const { return options_.num_cores; }
  const char* Name() const { return BaselineKindName(options_.kind); }
  index::KvIndex* IndexForCore(int core) const;
  alloc::LazyAllocator* allocator() { return alloc_.get(); }

 private:
  BaselineStore(pm::PmPool* pool, const Options& options);

  bool sharded() const {
    return options_.kind == BaselineKind::kCceh ||
           options_.kind == BaselineKind::kLevelHashing;
  }

  pm::PmPool* pool_;
  Options options_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  std::vector<std::unique_ptr<index::KvIndex>> indexes_;
};

}  // namespace core
}  // namespace flatstore

#endif  // FLATSTORE_CORE_BASELINE_H_
