#include "core/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>

#include "common/random.h"
#include "core/txn_wire.h"
#include "net/shard_router.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace core {

// ---- FlatStoreAdapter -----------------------------------------------------

EngineAdapter::Submit FlatStoreAdapter::SubmitPut(int core, uint64_t key,
                                                  const void* value,
                                                  uint32_t len,
                                                  uint64_t tag) {
  FlatStore::OpHandle h;
  switch (store_->BeginPut(core, key, value, len, &h)) {
    case OpStatus::kOk:
      pending_[core].Push({h, tag});
      return Submit::kPending;
    case OpStatus::kBusy:
      return Submit::kBusy;
    case OpStatus::kBackpressure:
      return Submit::kBackpressure;
    default:
      FLATSTORE_CHECK(false) << "PM exhausted during benchmark";
      return Submit::kBackpressure;
  }
}

EngineAdapter::Submit FlatStoreAdapter::SubmitDelete(int core, uint64_t key,
                                                     uint64_t tag) {
  FlatStore::OpHandle h;
  switch (store_->BeginDelete(core, key, &h)) {
    case OpStatus::kOk:
      pending_[core].Push({h, tag});
      return Submit::kPending;
    case OpStatus::kNotFound:
      return Submit::kNotFound;
    case OpStatus::kBusy:
      return Submit::kBusy;
    default:
      return Submit::kBackpressure;
  }
}

bool FlatStoreAdapter::Scan(int core, uint64_t start_key, uint64_t count,
                            uint64_t* found) {
  (void)core;  // the merge spans all cores; any core may serve it
  if (!store_->CanScan()) return false;
  std::vector<std::pair<uint64_t, std::string>> rows;
  *found = store_->Scan(start_key, count, &rows);
  return true;
}

size_t FlatStoreAdapter::SubmitWriteBatch(int core, const WriteReq* reqs,
                                          size_t n, Submit* out) {
  FLATSTORE_CHECK_LE(n, kMaxWriteBatch);
  WriteOp ops[kMaxWriteBatch];
  FlatStore::OpHandle handles[kMaxWriteBatch];
  OpStatus statuses[kMaxWriteBatch];
  for (size_t i = 0; i < n; i++) {
    ops[i] = {reqs[i].key, reqs[i].value, reqs[i].len, reqs[i].tombstone};
  }
  store_->BeginWriteBatch(core, ops, n, handles, statuses);
  size_t pending = 0;
  for (size_t i = 0; i < n; i++) {
    switch (statuses[i]) {
      case OpStatus::kOk:
        // Staging order == op order among kOk ops, so the tag ring stays
        // aligned with the engine's FIFO drains.
        pending_[core].Push({handles[i], reqs[i].tag});
        out[i] = Submit::kPending;
        pending++;
        break;
      case OpStatus::kNotFound:
        out[i] = Submit::kNotFound;
        break;
      case OpStatus::kNoSpace:
        FLATSTORE_CHECK(false) << "PM exhausted during benchmark";
        break;
      default:
        out[i] = Submit::kBackpressure;
        break;
    }
  }
  return pending;
}

EngineAdapter::Submit FlatStoreAdapter::SubmitTxn(int core, const TxnOp* ops,
                                                  size_t n, uint64_t tag) {
  FlatStore::OpHandle commit;
  switch (store_->BeginTxn(core, ops, n, &commit)) {
    case TxnStatus::kCommitted:
      if (commit == FlatStore::kNoOpHandle) return Submit::kDoneNow;
      // A txn drains as ONE completion (the commit record's), so pushing
      // just the commit handle keeps the tag ring FIFO-aligned.
      pending_[core].Push({commit, tag});
      return Submit::kPending;
    case TxnStatus::kCasMismatch:
      return Submit::kCasMismatch;
    case TxnStatus::kBusy:
      return Submit::kBusy;
    case TxnStatus::kBackpressure:
      return Submit::kBackpressure;
    case TxnStatus::kNoSpace:
      FLATSTORE_CHECK(false) << "PM exhausted during benchmark";
      break;
  }
  return Submit::kBackpressure;
}

size_t FlatStoreAdapter::Drain(int core, std::vector<Done>* done) {
  std::vector<FlatStore::Completion>& completions = completions_[core];
  completions.clear();
  store_->Drain(core, SIZE_MAX, &completions);
  if (completions.empty()) return 0;
  // Completions come back in FIFO order, matching pending_.
  TagRing& pend = pending_[core];
  FLATSTORE_CHECK_GE(pend.count, completions.size());
  for (size_t i = 0; i < completions.size(); i++) {
    FLATSTORE_DCHECK(pend.At(i).handle == completions[i].handle);
    done->push_back({pend.At(i).tag, completions[i].done_time});
  }
  pend.PopN(completions.size());
  return completions.size();
}

// ---- deterministic co-simulation -------------------------------------------

namespace {

// Per-core server state across scheduling quanta.
struct CoreLoop {
  vt::Clock clock;
  // In-flight writes in submission order. Tags are assigned sequentially
  // and the engine drains FIFO, so completions always match the front —
  // a deque replaces the old per-op hash-map insert/erase.
  struct PendingWrite {
    uint64_t tag;
    int conn;
    net::Request req;
  };
  std::deque<PendingWrite> pending;
  // Read batch for the MultiGet path: Gets admitted this quantum plus
  // deferred leftovers (keys whose writes were in flight) carried over.
  struct ReadSlot {
    int conn;
    net::Request req;
  };
  std::vector<ReadSlot> reads;
  std::vector<uint64_t> read_keys;       // scratch, sized kMaxReadBatch
  std::vector<ReadResult> read_results;  // scratch, sized kMaxReadBatch
  // Write batch for the fused MultiPut path: Puts/Deletes admitted this
  // quantum plus backpressured leftovers (fused staging is all-or-
  // nothing) carried over.
  struct WriteSlot {
    int conn;
    net::Request req;
  };
  std::vector<WriteSlot> writes;
  std::vector<EngineAdapter::WriteReq> write_reqs;     // scratch
  std::vector<EngineAdapter::Submit> write_status;     // scratch
  uint64_t next_tag = 1;
  uint64_t completed = 0;

  CoreLoop() {
    reads.reserve(kMaxReadBatch);
    read_keys.resize(kMaxReadBatch);
    read_results.resize(kMaxReadBatch);
    writes.reserve(kMaxWriteBatch);
    write_reqs.resize(kMaxWriteBatch);
    write_status.resize(kMaxWriteBatch);
  }
};

// Posts the response for an already-served read.
void PostReadResponse(net::FlatRpc& rpc, int core, int conn,
                      const net::Request& req, const ReadResult& r) {
  net::Response resp;
  resp.type = req.type;
  resp.seq = req.seq;
  resp.value_len = 0;
  if (r.status == GetResult::kFound) {
    resp.status = net::MsgStatus::kOk;
    resp.value_len = static_cast<uint32_t>(
        std::min<size_t>(r.value.size(), net::kMaxMsgValue));
    std::memcpy(resp.value, r.value.data(), resp.value_len);
  } else {
    resp.status = net::MsgStatus::kNotFound;
  }
  rpc.PostResponse(core, conn, &resp, 0);
}

void RespondNow(net::FlatRpc& rpc, int core, int conn,
                const net::Request& req, EngineAdapter* engine,
                uint64_t not_before = 0, bool chained = false) {
  net::Response resp;
  resp.type = req.type;
  resp.seq = req.seq;
  resp.value_len = 0;
  resp.status = net::MsgStatus::kOk;
  if (req.type == net::MsgType::kGet) {
    std::string value;
    if (engine->Get(core, req.key, &value)) {
      resp.value_len = static_cast<uint32_t>(
          std::min<size_t>(value.size(), net::kMaxMsgValue));
      std::memcpy(resp.value, value.data(), resp.value_len);
    } else {
      resp.status = net::MsgStatus::kNotFound;
    }
  } else if (req.type == net::MsgType::kScan) {
    // Range read: the request's value_len carries the scan length; the
    // response carries only the hit count (the per-item read work is
    // charged on this core's clock inside Scan).
    uint64_t found = 0;
    if (engine->Scan(core, req.key, req.value_len, &found)) {
      resp.value_len = sizeof(found);
      std::memcpy(resp.value, &found, sizeof(found));
    } else {
      resp.status = net::MsgStatus::kUnsupported;
    }
  }
  rpc.PostResponse(core, conn, &resp, not_before, chained);
}

// Phase 1 of a server core's scheduling quantum: poll a burst of
// requests, run their l-persist, stage their log entries. All cores run
// phase 1 before any runs phase 2 (persist), mirroring the real system
// where cores poll concurrently — otherwise a leader would never find
// sibling entries to steal. Returns true if any work happened.
//
// Quanta are dispatched round-robin from a single host thread so the
// interleaving -- and therefore every virtual-time result -- is
// deterministic for a given seed (host scheduling must not leak into the
// model; the concurrent deployment is exercised by the test suite).
bool CorePollStep(EngineAdapter* engine, net::FlatRpc& rpc, int core,
                  CoreLoop& state, int read_batch, int write_batch,
                  bool respect_arrival, uint64_t arrival_horizon) {
  vt::ScopedClock bind(&state.clock);
  bool progress = false;
  const bool batched = read_batch > 1;
  const bool wbatched = write_batch > 1;

  // Poll and admit a bounded burst (user-level polling, per-core
  // processing -- paper 3.1).
  for (int burst = 0; burst < 16; burst++) {
    int conn;
    // Open loop admits in arrival order (earliest scheduled stamp first);
    // closed loop keeps the round-robin poll.
    net::Request* req = respect_arrival
                            ? rpc.PollEarliestRequest(core, &conn)
                            : rpc.PollRequest(core, &conn);
    if (req == nullptr) break;
    if (respect_arrival) {
      // Open loop: requests are stamped with *scheduled* (possibly
      // future) arrivals. A core may only admit a request that has
      // already arrived by its own clock, or the globally earliest
      // pending one (the event horizon — some core must idle-advance to
      // it or the simulation stalls). Without this, lockstep poll passes
      // would fuse requests hundreds of microseconds apart into one
      // persist batch and report queueing delay that never happened.
      const uint64_t arr = rpc.ArrivalTime(*req);
      if (arr > state.clock.now() && arr > arrival_horizon) break;
    }
    if (batched && req->type == net::MsgType::kGet &&
        state.reads.size() >= static_cast<size_t>(read_batch)) {
      // Batch full: the Get stays at its ring head for the next quantum.
      break;
    }
    if (wbatched && req->type != net::MsgType::kGet &&
        state.writes.size() >= static_cast<size_t>(write_batch)) {
      // Write batch full: the op stays at its ring head likewise.
      break;
    }
    state.clock.AdvanceTo(rpc.ArrivalTime(*req));
    vt::Charge(vt::kRpcProcessCost);

    if (req->type == net::MsgType::kGet) {
      if (batched) {
        // Admit into this quantum's read batch; the conflict check runs
        // inside MultiGet (busy keys come back kDeferred and are carried
        // to the next quantum instead of head-of-line-blocking the ring).
        state.reads.push_back({conn, *req});
        rpc.PopRequest(core, conn);
        progress = true;
        continue;
      }
      if (engine->KeyBusy(core, req->key)) continue;  // conflict queue
      RespondNow(rpc, core, conn, *req, engine);
      rpc.PopRequest(core, conn);
      state.completed++;
      progress = true;
      continue;
    }

    if (req->type == net::MsgType::kScan) {
      // Scans are served inline and never batched: each is its own
      // ordered traversal. Writes still in flight on scanned keys are
      // simply not visible yet — same read-your-persisted semantics as
      // the index the scan merges over.
      RespondNow(rpc, core, conn, *req, engine);
      rpc.PopRequest(core, conn);
      state.completed++;
      progress = true;
      continue;
    }

    if (req->type == net::MsgType::kTxn) {
      // Transactions are submitted immediately (never folded into the
      // fused write batch: the txn is already its own all-or-nothing
      // group). Decode BEFORE PopRequest — the decoded ops alias the ring
      // buffer, and BeginTxn copies every member byte into its chain
      // before returning.
      net::Response resp;
      resp.type = req->type;
      resp.seq = req->seq;
      resp.value_len = 0;
      TxnOp ops[kMaxTxnOps];
      size_t nops = 0;
      if (!DecodeTxnOps(req->value, req->value_len, ops, kMaxTxnOps,
                        &nops)) {
        resp.status = net::MsgStatus::kUnsupported;
        rpc.PostResponse(core, conn, &resp, 0);
        rpc.PopRequest(core, conn);
        state.completed++;
        progress = true;
        continue;
      }
      const uint64_t tag = state.next_tag++;
      switch (engine->SubmitTxn(core, ops, nops, tag)) {
        case EngineAdapter::Submit::kPending:
          state.pending.push_back({tag, conn, *req});
          rpc.PopRequest(core, conn);
          progress = true;
          break;
        case EngineAdapter::Submit::kDoneNow:
          resp.status = net::MsgStatus::kOk;
          rpc.PostResponse(core, conn, &resp, 0);
          rpc.PopRequest(core, conn);
          state.completed++;
          progress = true;
          break;
        case EngineAdapter::Submit::kCasMismatch:
          resp.status = net::MsgStatus::kCasMismatch;
          rpc.PostResponse(core, conn, &resp, 0);
          rpc.PopRequest(core, conn);
          state.completed++;
          progress = true;
          break;
        case EngineAdapter::Submit::kNotFound:
        case EngineAdapter::Submit::kUnsupported:
          resp.status = net::MsgStatus::kUnsupported;
          rpc.PostResponse(core, conn, &resp, 0);
          rpc.PopRequest(core, conn);
          state.completed++;
          progress = true;
          break;
        case EngineAdapter::Submit::kBusy:
          // A txn key has in-flight writes: the request stays at its
          // ring's head and retries after a future drain, while the core
          // keeps serving the other connections (same rule as single
          // writes below).
          break;
        case EngineAdapter::Submit::kBackpressure:
          burst = 16;  // pool full: stop admitting until a pump/drain
          break;
      }
      continue;
    }

    if (wbatched) {
      // Admit into this quantum's fused write batch, submitted below.
      state.writes.push_back({conn, *req});
      rpc.PopRequest(core, conn);
      progress = true;
      continue;
    }

    const uint64_t tag = state.next_tag++;
    EngineAdapter::Submit st;
    if (req->type == net::MsgType::kPut) {
      st = engine->SubmitPut(core, req->key, req->value, req->value_len,
                             tag);
    } else {
      st = engine->SubmitDelete(core, req->key, tag);
    }
    switch (st) {
      case EngineAdapter::Submit::kPending:
        state.pending.push_back({tag, conn, *req});
        rpc.PopRequest(core, conn);
        progress = true;
        break;
      case EngineAdapter::Submit::kDoneNow:
      case EngineAdapter::Submit::kNotFound:
        RespondNow(rpc, core, conn, *req, engine);
        rpc.PopRequest(core, conn);
        state.completed++;
        progress = true;
        break;
      case EngineAdapter::Submit::kBusy:
        // Conflict queue: this request stays at its ring's head and is
        // retried after a future drain (paper 3.3 Discussion) — but the
        // core keeps serving the *other* connections' buffers, otherwise
        // one hot key would head-of-line-block the whole core under skew.
        break;
      case EngineAdapter::Submit::kBackpressure:
        // Request pool full: stop admitting until a pump/drain cycle.
        burst = 16;
        break;
      case EngineAdapter::Submit::kCasMismatch:
      case EngineAdapter::Submit::kUnsupported:
        // Txn-only statuses; single Put/Delete never produces them.
        FLATSTORE_DCHECK(false);
        break;
    }
  }

  // Stage the accumulated writes as ONE fused batch before any read is
  // served: a same-quantum Put→Get pair on one key then defers the Get
  // through the in-flight table, preserving the legacy path's ordering.
  // Backpressured ops (fused staging is all-or-nothing) stay in `writes`
  // and retry next quantum, after a pump/drain cycle freed pool slots.
  if (wbatched && !state.writes.empty()) {
    const size_t n = state.writes.size();
    for (size_t i = 0; i < n; i++) {
      const net::Request& r = state.writes[i].req;
      state.write_reqs[i] = {r.key, r.value, r.value_len,
                             r.type == net::MsgType::kDelete,
                             state.next_tag++};
    }
    engine->SubmitWriteBatch(core, state.write_reqs.data(), n,
                             state.write_status.data());
    size_t kept = 0;
    for (size_t i = 0; i < n; i++) {
      switch (state.write_status[i]) {
        case EngineAdapter::Submit::kPending:
          state.pending.push_back({state.write_reqs[i].tag,
                                   state.writes[i].conn,
                                   state.writes[i].req});
          progress = true;
          break;
        case EngineAdapter::Submit::kDoneNow:
        case EngineAdapter::Submit::kNotFound:
          RespondNow(rpc, core, state.writes[i].conn, state.writes[i].req,
                     engine);
          state.completed++;
          progress = true;
          break;
        default:  // kBusy / kBackpressure: carry to the next quantum
          state.writes[kept++] = state.writes[i];
          break;
      }
    }
    state.writes.resize(kept);
  }

  // Serve the accumulated read batch in one prefetch-interleaved pass.
  // Deferred keys (write in flight) stay in `reads` and retry next
  // quantum, after the persist step has had a chance to drain the
  // blocking write; they never livelock because persist steps always
  // make progress on staged writes.
  if (batched && !state.reads.empty()) {
    const size_t n = state.reads.size();
    for (size_t i = 0; i < n; i++) {
      state.read_keys[i] = state.reads[i].req.key;
    }
    engine->MultiGet(core, state.read_keys.data(), n,
                     state.read_results.data());
    size_t kept = 0;
    for (size_t i = 0; i < n; i++) {
      // A carried-over (backpressured, not yet staged) write on this key
      // is invisible to the engine's in-flight table; defer the read so
      // it cannot overtake that write.
      if (state.read_results[i].status != GetResult::kDeferred &&
          !state.writes.empty()) {
        for (const auto& w : state.writes) {
          if (w.req.key == state.reads[i].req.key) {
            state.read_results[i].status = GetResult::kDeferred;
            break;
          }
        }
      }
      if (state.read_results[i].status == GetResult::kDeferred) {
        state.reads[kept++] = state.reads[i];
        continue;
      }
      PostReadResponse(rpc, core, state.reads[i].conn, state.reads[i].req,
                       state.read_results[i]);
      state.completed++;
      progress = true;
    }
    state.reads.resize(kept);
  }

  return progress;
}

// Phase 2: g-persist (leader election / self-batching) + the volatile
// phase (index updates in Drain) + responses.
bool CorePersistStep(EngineAdapter* engine, net::FlatRpc& rpc, int core,
                     CoreLoop& state,
                     std::vector<EngineAdapter::Done>& done_scratch,
                     bool coalesce_responses) {
  vt::ScopedClock bind(&state.clock);
  bool progress = false;
  if (engine->Pump(core) > 0) progress = true;

  done_scratch.clear();
  if (engine->Drain(core, &done_scratch) > 0) {
    // Under the batched write path the drain's responses go out as one
    // doorbell chain: the first verb pays the MMIO/handoff, the rest ride
    // it (net::FlatRpc::PostResponse `chained`).
    bool chain_open = false;
    for (const auto& d : done_scratch) {
      FLATSTORE_CHECK(!state.pending.empty());
      const CoreLoop::PendingWrite& w = state.pending.front();
      FLATSTORE_CHECK_EQ(w.tag, d.tag);  // drains complete in submit order
      RespondNow(rpc, core, w.conn, w.req, engine, d.done_time,
                 coalesce_responses && chain_open);
      chain_open = true;
      state.pending.pop_front();
      state.completed++;
    }
    progress = true;
  }
  return progress;
}

// One simulated client connection.
struct Conn {
  // In-flight window is capped at 8 (the response ring size, checked in
  // RunServer), so a fixed array with swap-erase replaces the old
  // seq->post-time hash map and its per-request node allocations.
  static constexpr size_t kMaxWindow = 8;
  struct Posted {
    uint64_t seq;
    uint64_t post_time;
  };

  int id;
  uint64_t clock = 0;  // connection-local simulated time
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t next_seq = 1;
  Posted posted[kMaxWindow];
  size_t nposted = 0;
  std::unique_ptr<workload::Generator> gen;
  // Open-loop arrival schedule (ServerConfig::open_loop): scheduled
  // instant of the last posted request and the exponential gap state.
  uint64_t next_arrival = 0;
  double mean_gap = 0;  // ns between this connection's arrivals
  Rng arrival_rng{1};
  Histogram latency;
};

// One shard's runtime: its engine, RPC fabric, and per-core loop state.
// RunServer is the one-shard special case; RunCluster keeps a vector.
struct ShardRt {
  EngineAdapter* engine = nullptr;
  std::unique_ptr<net::FlatRpc> rpc;
  std::vector<CoreLoop> cores;
  Histogram latency;  // client-observed latency of ops this shard served
};

// Drains any delivered responses into the connection's accounting (and
// the serving shard's latency histogram).
void DrainResponses(net::FlatRpc& rpc, Conn* conn, Histogram* shard_latency) {
  net::Response resp;
  while (rpc.PollResponse(conn->id, &resp)) {
    const uint64_t arrival = net::FlatRpc::ResponseArrival(resp);
    conn->clock = std::max(conn->clock, arrival);
    size_t i = 0;
    while (i < conn->nposted && conn->posted[i].seq != resp.seq) i++;
    FLATSTORE_CHECK_LT(i, conn->nposted) << "response for unknown seq";
    const uint64_t lat = arrival - conn->posted[i].post_time;
    conn->latency.Record(lat);
    if (shard_latency != nullptr) shard_latency->Record(lat);
    conn->posted[i] = conn->posted[--conn->nposted];
    conn->completed++;
  }
}

// One scheduling quantum of a connection: fill the request window across
// the shard fleet, drain responses from every shard. Returns true while
// the connection has work left. With one shard the routing collapses to
// the unsharded path (the router is not even consulted).
bool ConnStep(ShardRt* shards, size_t nshards,
              const net::ShardRouter* router, Conn* conn,
              const ServerConfig& config, const uint8_t* value) {
  while (conn->issued < config.ops_per_conn &&
         conn->nposted < static_cast<size_t>(config.client_window)) {
    workload::Op op = conn->gen->Next();
    const int shard_id =
        nshards == 1 ? 0 : router->ShardForKey(op.key);
    ShardRt& shard = shards[shard_id];
    EngineAdapter* engine = shard.engine;
    net::FlatRpc& rpc = *shard.rpc;
    net::Request req;
    req.seq = conn->next_seq;
    req.key = op.key;
    switch (op.type) {
      case workload::OpType::kPut:
        if (config.txn_every > 0 &&
            conn->issued % static_cast<uint64_t>(config.txn_every) ==
                static_cast<uint64_t>(config.txn_every) - 1) {
          // Every txn_every-th write goes out as an atomic multi-put:
          // txn_size puts on same-core keys, scanned upward from the
          // workload key so the whole txn routes to one core (and, in a
          // cluster, to one shard — a txn never spans shards). Member
          // values are capped at 128 B so the encoded txn always fits
          // the message buffer.
          req.type = net::MsgType::kTxn;
          const int target = engine->CoreForKey(op.key);
          const size_t want = std::min<size_t>(
              static_cast<size_t>(std::max(config.txn_size, 1)),
              kMaxTxnOps);
          const uint32_t len =
              std::max<uint32_t>(1, std::min<uint32_t>(op.value_len, 128));
          TxnOp ops[kMaxTxnOps];
          size_t nops = 0;
          for (uint64_t k = op.key; nops < want; k++) {
            if (nshards > 1 && router->ShardForKey(k) != shard_id) continue;
            if (engine->CoreForKey(k) != target) continue;
            ops[nops] = TxnOp{};
            ops[nops].kind = TxnOpKind::kPut;
            ops[nops].key = k;
            ops[nops].value = value;
            ops[nops].len = len;
            nops++;
          }
          req.value_len =
              EncodeTxnOps(req.value, net::kMaxMsgValue, ops, nops);
          FLATSTORE_CHECK_GT(req.value_len, 0u);
          break;
        }
        req.type = net::MsgType::kPut;
        req.value_len = std::min(op.value_len, net::kMaxMsgValue);
        std::memcpy(req.value, value, req.value_len);
        break;
      case workload::OpType::kGet:
        req.type = net::MsgType::kGet;
        req.value_len = 0;
        break;
      case workload::OpType::kDelete:
        req.type = net::MsgType::kDelete;
        req.value_len = 0;
        break;
      case workload::OpType::kScan:
        // value_len carries the scan length (no payload bytes ride along).
        req.type = net::MsgType::kScan;
        req.value_len = op.scan_len;
        break;
    }
    uint64_t scheduled = 0;
    if (config.open_loop) {
      // Poisson arrivals: the request is stamped with its *scheduled*
      // instant, decoupled from service progress. (If the window or ring
      // blocked earlier, scheduled may lag conn->clock — the server sees
      // a backlogged arrival, and latency from the scheduled instant
      // shows the queueing.)
      const double u = conn->arrival_rng.NextDouble();
      uint64_t gap =
          static_cast<uint64_t>(-conn->mean_gap * std::log1p(-u));
      if (gap == 0) gap = 1;
      scheduled = conn->next_arrival + gap;
      req.post_time = scheduled;
    } else {
      conn->clock += vt::kClientPostCost;
      req.post_time = conn->clock;
    }
    if (!rpc.PostRequest(conn->id, engine->CoreForKey(op.key), req)) {
      if (!config.open_loop) conn->clock -= vt::kClientPostCost;
      break;  // ring full; retry after draining responses
    }
    if (config.open_loop) {
      conn->next_arrival = scheduled;
      conn->clock = std::max(conn->clock, scheduled);
    }
    conn->posted[conn->nposted++] = {req.seq, req.post_time};
    conn->next_seq++;
    conn->issued++;
  }
  for (size_t s = 0; s < nshards; s++) {
    DrainResponses(*shards[s].rpc, conn, &shards[s].latency);
  }
  return conn->completed < config.ops_per_conn;
}

// Builds one shard's runtime: RPC fabric sized for the client fleet,
// per-core loop state, and each core clock stamped with its socket (the
// hook that makes cross-socket surcharges apply).
ShardRt MakeShardRt(EngineAdapter* engine, const ServerConfig& config) {
  ShardRt rt;
  rt.engine = engine;
  net::FlatRpc::Options ro;
  ro.num_cores = engine->num_cores();
  ro.num_conns = config.num_conns;
  ro.all_to_all = config.all_to_all_qps;
  rt.rpc = std::make_unique<net::FlatRpc>(ro);
  rt.cores.resize(static_cast<size_t>(engine->num_cores()));
  for (int c = 0; c < engine->num_cores(); c++) {
    rt.cores[c].clock.set_socket(engine->SocketForCore(c));
  }
  return rt;
}

std::vector<Conn> MakeConns(const ServerConfig& config) {
  std::vector<Conn> conns(static_cast<size_t>(config.num_conns));
  for (int i = 0; i < config.num_conns; i++) {
    conns[i].id = i;
    conns[i].gen = std::make_unique<workload::Generator>(
        config.workload, config.seed * 7919 + static_cast<uint64_t>(i));
    if (config.open_loop) {
      FLATSTORE_CHECK_GT(config.offered_mops, 0.0);
      // offered_mops is aggregate: each of num_conns connections offers
      // an equal slice, so its mean gap is nconns/rate (rate in ops/ns).
      conns[i].mean_gap = static_cast<double>(config.num_conns) * 1000.0 /
                          config.offered_mops;
      conns[i].arrival_rng =
          Rng(config.seed * 104729 + static_cast<uint64_t>(i) + 1);
    }
  }
  return conns;
}

// Deterministic round-robin co-simulation of connections and the shard
// fleet's cores. Within a sweep, poll and persist rounds alternate until
// the cores run dry: every core stages (phase 1) before any persists
// (phase 2) so leaders see their siblings' staged entries, and conflict-
// queue retries (hot keys under skew) get another chance as soon as the
// blocking op drains — not a whole sweep later. Shards interleave at
// core granularity, so a one-shard run executes the exact instruction
// sequence the pre-cluster loop did.
void RunLoop(std::vector<ShardRt>& shards, const net::ShardRouter* router,
             std::vector<Conn>& conns, const ServerConfig& config) {
  const int read_batch =
      std::min(config.read_batch, static_cast<int>(kMaxReadBatch));
  const int write_batch =
      std::min(config.write_batch, static_cast<int>(kMaxWriteBatch));
  const bool coalesce = write_batch > 1;
  std::vector<EngineAdapter::Done> done_scratch;
  uint8_t value[net::kMaxMsgValue];
  std::memset(value, 0x5A, sizeof(value));

  // Earliest pending arrival across every shard and core — the open-loop
  // event horizon recomputed before each poll pass. Closed loop never
  // consults it (requests carry past stamps).
  auto arrival_horizon = [&shards, &config]() -> uint64_t {
    uint64_t h = UINT64_MAX;
    if (!config.open_loop) return h;
    for (ShardRt& sh : shards) {
      for (int c = 0; c < sh.engine->num_cores(); c++) {
        int conn;
        net::Request* r = sh.rpc->PollEarliestRequest(c, &conn);
        if (r != nullptr) h = std::min(h, sh.rpc->ArrivalTime(*r));
      }
    }
    return h;
  };

  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (Conn& conn : conns) {
      if (ConnStep(shards.data(), shards.size(), router, &conn, config,
                   value)) {
        work_left = true;
      }
    }
    bool round_progress = true;
    while (round_progress) {
      round_progress = false;
      const uint64_t horizon = arrival_horizon();
      for (ShardRt& sh : shards) {
        for (int c = 0; c < sh.engine->num_cores(); c++) {
          if (CorePollStep(sh.engine, *sh.rpc, c, sh.cores[c], read_batch,
                           write_batch, config.open_loop, horizon)) {
            round_progress = true;
          }
        }
      }
      bool persist_progress = true;
      while (persist_progress) {
        persist_progress = false;
        for (ShardRt& sh : shards) {
          for (int c = 0; c < sh.engine->num_cores(); c++) {
            if (CorePersistStep(sh.engine, *sh.rpc, c, sh.cores[c],
                                done_scratch, coalesce)) {
              persist_progress = true;
              round_progress = true;
            }
          }
        }
      }
      // Open loop: refill the client windows after EVERY pass. Draining
      // the rings to empty first would let the cores chase the slowest
      // connection's lookahead (its 8th future stamp) while other
      // connections still have *earlier* arrivals to post — a host-order
      // barrier that breaks virtual-time causality and reports queueing
      // that never happened.
      if (config.open_loop) break;
    }
  }
  // Final sweep: cores finish in-flight persists, clients collect the
  // last responses.
  bool progress = true;
  while (progress) {
    progress = false;
    const uint64_t horizon = arrival_horizon();
    for (ShardRt& sh : shards) {
      for (int c = 0; c < sh.engine->num_cores(); c++) {
        if (CorePollStep(sh.engine, *sh.rpc, c, sh.cores[c], read_batch,
                         write_batch, config.open_loop, horizon)) {
          progress = true;
        }
        if (CorePersistStep(sh.engine, *sh.rpc, c, sh.cores[c],
                            done_scratch, coalesce)) {
          progress = true;
        }
      }
    }
    for (Conn& conn : conns) {
      const uint64_t before = conn.completed;
      for (ShardRt& sh : shards) {
        DrainResponses(*sh.rpc, &conn, &sh.latency);
      }
      if (conn.completed != before) progress = true;
    }
  }
}

// Per-shard metrics from its core loops (ops are counted server-side
// here; the aggregate counts client-side completions — the totals match,
// the split per shard is only visible on the serving end).
ServerResult ShardResult(const ShardRt& sh) {
  ServerResult r;
  r.latency = sh.latency;
  for (const CoreLoop& s : sh.cores) {
    r.ops += s.completed;
    r.core_ns.push_back(s.clock.now());
    r.sim_ns = std::max(r.sim_ns, s.clock.now());
  }
  if (r.sim_ns > 0) {
    r.mops = static_cast<double>(r.ops) * 1000.0 /
             static_cast<double>(r.sim_ns);
  }
  return r;
}

}  // namespace

ServerResult RunServer(EngineAdapter* engine, const ServerConfig& config) {
  FLATSTORE_CHECK_LE(config.client_window, 8)
      << "client window exceeds the response ring size";
  std::vector<ShardRt> shards;
  shards.push_back(MakeShardRt(engine, config));
  std::vector<Conn> conns = MakeConns(config);
  RunLoop(shards, nullptr, conns, config);

  ServerResult result;
  for (const Conn& c : conns) {
    result.ops += c.completed;
    result.latency.Merge(c.latency);
  }
  for (const CoreLoop& s : shards[0].cores) {
    result.core_ns.push_back(s.clock.now());
    result.sim_ns = std::max(result.sim_ns, s.clock.now());
  }
  if (result.sim_ns > 0) {
    result.mops = static_cast<double>(result.ops) * 1000.0 /
                  static_cast<double>(result.sim_ns);
  }
  return result;
}

ClusterResult RunCluster(const std::vector<EngineAdapter*>& engines,
                         const ClusterConfig& config) {
  FLATSTORE_CHECK_GE(engines.size(), 1u);
  FLATSTORE_CHECK_LE(config.server.client_window, 8)
      << "client window exceeds the response ring size";
  net::ShardRouter router(config.router_vnodes);
  for (size_t s = 0; s < engines.size(); s++) {
    router.AddShard(static_cast<int>(s));
  }
  std::vector<ShardRt> shards;
  shards.reserve(engines.size());
  for (EngineAdapter* e : engines) {
    shards.push_back(MakeShardRt(e, config.server));
  }
  std::vector<Conn> conns = MakeConns(config.server);
  RunLoop(shards, &router, conns, config.server);

  ClusterResult result;
  for (const Conn& c : conns) {
    result.ops += c.completed;
    result.latency.Merge(c.latency);
  }
  for (const ShardRt& sh : shards) {
    result.shards.push_back(ShardResult(sh));
    result.sim_ns = std::max(result.sim_ns, result.shards.back().sim_ns);
  }
  if (result.sim_ns > 0) {
    result.mops = static_cast<double>(result.ops) * 1000.0 /
                  static_cast<double>(result.sim_ns);
  }
  return result;
}

void Preload(EngineAdapter* engine, const workload::Config& workload,
             uint64_t keys) {
  std::vector<uint8_t> value(net::kMaxMsgValue, 0x5A);
  for (uint64_t k = 0; k < keys; k++) {
    const uint32_t len =
        workload.etc_values
            ? workload::Generator::EtcValueLen(k, workload.key_space)
            : workload.value_len;
    const int core = engine->CoreForKey(k);
    uint64_t tag = k + 1;
    while (true) {
      auto st = engine->SubmitPut(core, k, value.data(), len, tag);
      if (st == EngineAdapter::Submit::kDoneNow) break;
      if (st == EngineAdapter::Submit::kPending) {
        std::vector<EngineAdapter::Done> done;
        while (engine->Drain(core, &done) == 0) engine->Pump(core);
        break;
      }
      engine->Pump(core);
      std::vector<EngineAdapter::Done> done;
      engine->Drain(core, &done);
    }
  }
}

}  // namespace core
}  // namespace flatstore
